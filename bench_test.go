// Package repro's root benchmarks regenerate every table (T1-T5) and
// figure (F1-F9) of the evaluation plan through the testing.B interface:
//
//	go test -bench=. -benchmem
//
// Each iteration runs the experiment's quick configuration; the full
// sweeps are produced by cmd/vfpgabench. Custom metrics report the
// simulated virtual time per table so regressions in the *model* (not
// just in the Go code) are visible.
package repro

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/techmap"
	"repro/internal/trace"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.Config{Seed: 1, Quick: true}
	var rows int
	var virtualMs float64
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tbl.Rows)
		virtualMs = sumMakespans(tbl)
	}
	b.ReportMetric(float64(rows), "rows")
	if virtualMs > 0 {
		b.ReportMetric(virtualMs, "virtual_ms")
	}
}

// sumMakespans totals the makespan column (when present) so that changes
// to the simulated model — not just the Go implementation — show up in
// benchmark output.
func sumMakespans(tbl *trace.Table) float64 {
	col := -1
	for i, c := range tbl.Columns {
		if strings.Contains(c, "makespan") {
			col = i
			break
		}
	}
	if col < 0 {
		return 0
	}
	total := 0.0
	for _, row := range tbl.Rows {
		if v, err := strconv.ParseFloat(row[col], 64); err == nil {
			total += v
		}
	}
	return total
}

// pinRange binds circuit ports to consecutive device pins from 0.
func pinRange(nIn, nOut int) *bitstream.PinBinding {
	b := &bitstream.PinBinding{}
	p := 0
	for i := 0; i < nIn; i++ {
		b.In = append(b.In, p)
		p++
	}
	for i := 0; i < nOut; i++ {
		b.Out = append(b.Out, p)
		p++
	}
	return b
}

func BenchmarkT1DynamicLoadingOverhead(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkT2StatePreemption(b *testing.B)        { benchExperiment(b, "T2") }
func BenchmarkT3Partitioning(b *testing.B)           { benchExperiment(b, "T3") }
func BenchmarkT4Overlay(b *testing.B)                { benchExperiment(b, "T4") }
func BenchmarkT5IOMux(b *testing.B)                  { benchExperiment(b, "T5") }
func BenchmarkF1VirtualCapacity(b *testing.B)        { benchExperiment(b, "F1") }
func BenchmarkF2SchedulingModes(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3MergedVsDynamic(b *testing.B)        { benchExperiment(b, "F3") }
func BenchmarkF4Fragmentation(b *testing.B)          { benchExperiment(b, "F4") }
func BenchmarkF5Pagination(b *testing.B)             { benchExperiment(b, "F5") }
func BenchmarkF6Segmentation(b *testing.B)           { benchExperiment(b, "F6") }
func BenchmarkF7Applications(b *testing.B)           { benchExperiment(b, "F7") }
func BenchmarkF8MultiBoard(b *testing.B)             { benchExperiment(b, "F8") }
func BenchmarkF9AmorphousRegions(b *testing.B)       { benchExperiment(b, "F9") }
func BenchmarkA1OptimizerAblation(b *testing.B)      { benchExperiment(b, "A1") }

// --- CAD-flow micro-benchmarks: the substrate costs behind every table ---

func BenchmarkFlowTechmapMul8(b *testing.B) {
	nl := netlist.Multiplier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := techmap.Map(nl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowPlaceALU8(b *testing.B) {
	m, err := techmap.Map(netlist.ALU(8))
	if err != nil {
		b.Fatal(err)
	}
	w, h := place.Shape(m.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(m, w, h, place.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowRouteALU8(b *testing.B) {
	m, err := techmap.Map(netlist.ALU(8))
	if err != nil {
		b.Fatal(err)
	}
	w, h := place.Shape(m.NumCells())
	p, err := place.Place(m, w, h, place.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(p, 12, route.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowCompileStripCounter16(b *testing.B) {
	nl := netlist.Counter(16)
	tm := fabric.DefaultTiming()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.CompileStrip(nl, 16, 12, compile.Options{Seed: uint64(i), Timing: &tm}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileStrip measures the concurrent compile cache's hot
// path: after the first iteration every lookup is a pure hit, so ns/op
// and allocs/op reflect cache overhead, not compilation.
func BenchmarkCompileStrip(b *testing.B) {
	nl := netlist.Counter(16)
	tm := fabric.DefaultTiming()
	sc := compile.NewStripCache(compile.DefaultCacheCapacity)
	opt := compile.Options{Seed: 1, Timing: &tm}
	if _, err := sc.CompileStrip(nl, 16, 12, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.CompileStrip(nl, 16, 12, opt); err != nil {
			b.Fatal(err)
		}
	}
	st := sc.Stats()
	b.ReportMetric(st.HitRate(), "hit_rate")
}

// BenchmarkHarnessQuick runs the whole quick harness through the
// parallel runner once per iteration — the end-to-end number the -jobs
// worker pool is meant to improve.
func BenchmarkHarnessQuick(b *testing.B) {
	cfg := bench.Config{Seed: 1, Quick: true, Jobs: runtime.NumCPU()}
	exps := bench.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range bench.Run(cfg, exps) {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.Exp.ID, o.Err)
			}
		}
	}
}

func BenchmarkFabricStepCounter16(b *testing.B) {
	tm := fabric.DefaultTiming()
	c, err := compile.CompileStrip(netlist.Counter(16), 16, 12, compile.Options{Seed: 1, Timing: &tm})
	if err != nil {
		b.Fatal(err)
	}
	dev := fabric.NewDevice(fabric.Geometry{Cols: 8, Rows: 16, TracksPerChannel: 12, PinsPerSide: 16})
	binding := pinRange(c.BS.NumIn, c.BS.NumOut)
	if _, _, err := c.BS.Apply(dev, 0, 0, binding); err != nil {
		b.Fatal(err)
	}
	dev.SetPin(binding.In[0], true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchmarksSmoke keeps `go test ./...` exercising the root wrappers
// without -bench.
func TestBenchmarksSmoke(t *testing.T) {
	for _, id := range []string{"T2", "F3"} {
		e, ok := bench.Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tbl, err := e.Run(bench.Config{Seed: 1, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		s := tbl.String()
		if !strings.Contains(s, "== "+id) {
			t.Fatalf("table header missing:\n%s", s)
		}
	}
}
