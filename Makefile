# Tier-1 gate plus the repo's own static verifier. `make check` is what
# CI (and every PR) must pass.

GO ?= go

.PHONY: check fmt vet build test race lint bench-quick

check: fmt vet build race test lint bench-quick

fmt:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed in:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The race gate covers the concurrency-bearing packages: the parallel
# experiment runner (bench), the compile cache (compile), the router
# scratch, and the simulation layers it drives.
race:
	$(GO) test -race ./internal/core/... ./internal/hostos/... ./internal/bench/... ./internal/compile/... ./internal/route/...

test:
	$(GO) test ./...

# Lint the whole circuit library (netlists + compiled bitstreams + pages).
lint:
	$(GO) run ./cmd/vfpgalint

# Quick end-to-end harness run; leaves a machine-readable perf record.
bench-quick:
	$(GO) run ./cmd/vfpgabench -quick -json BENCH_quick.json
