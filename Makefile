# Tier-1 gate plus the repo's own static verifier. `make check` is what
# CI (and every PR) must pass.

GO ?= go

.PHONY: check fmt vet build test race conformance lint bench-quick trace-demo serve-smoke

check: fmt vet build race conformance test lint bench-quick serve-smoke

fmt:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed in:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The race gate covers the concurrency-bearing packages: the parallel
# experiment runner (bench), the compile cache (compile), the service
# daemon (serve), the router scratch, and the simulation layers they
# drive.
race:
	$(GO) test -race ./internal/core/... ./internal/hostos/... ./internal/bench/... ./internal/compile/... ./internal/route/... ./internal/serve/...

test:
	$(GO) test ./...

# Lint the whole circuit library (netlists + compiled bitstreams + pages).
lint:
	$(GO) run ./cmd/vfpgalint

# The hostos.FPGA conformance suite and the golden merged-timeline
# determinism test, explicitly under -race (they also run in `race` and
# `test`; this target pins them as a named gate).
conformance:
	$(GO) test -race -run 'TestConformance|TestGoldenTimeline' ./internal/core/

# Quick end-to-end harness run; leaves a machine-readable perf record.
bench-quick:
	$(GO) run ./cmd/vfpgabench -quick -json BENCH_quick.json

# Render a merged scheduler+device timeline from the time-sharing example.
trace-demo:
	$(GO) run ./examples/timeshare

# End-to-end service smoke: boot vfpgad on an ephemeral port, drive it
# with vfpgaload (200 jobs, 8 concurrent closed-loop clients, lint-checked
# results), then SIGTERM it and require a clean drain. vfpgaload exits
# nonzero on any 5xx, transport error, failed job, or lint-dirty result;
# vfpgad exits nonzero if the drain does not complete.
serve-smoke:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 2 -managers dynamic,partition -rate 0 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -requests 200 -concurrency 8 -workload synthetic -check-lint; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke: ok"; else echo "serve-smoke: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke
