# Tier-1 gate plus the repo's own static verifier. `make check` is what
# CI (and every PR) must pass.

GO ?= go

.PHONY: check fmt vet build test race lint

check: fmt vet build race test lint

fmt:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed in:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./internal/core/... ./internal/hostos/...

test:
	$(GO) test ./...

# Lint the whole circuit library (netlists + compiled bitstreams + pages).
lint:
	$(GO) run ./cmd/vfpgalint
