# Tier-1 gate plus the repo's own static verifier. `make check` is what
# CI (and every PR) must pass.

GO ?= go

.PHONY: check fmt vet vet-analyzers build test race conformance lint cover fuzz-smoke bench-quick bench-serve bench-load trace-demo serve-smoke serve-smoke-faults serve-smoke-warm serve-smoke-defrag serve-smoke-fleet serve-smoke-trace

check: fmt vet vet-analyzers build race conformance test lint cover fuzz-smoke bench-quick bench-serve bench-load serve-smoke serve-smoke-faults serve-smoke-warm serve-smoke-defrag serve-smoke-fleet serve-smoke-trace

fmt:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed in:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repo's own analyzers (cmd/vfpgavet): ledger-only metrics writes,
# wall-clock use in deterministic packages, error-string matching,
# exposition hygiene, map-iteration leaks, lock protocol. Suppress a
# finding with `//vfpgavet:ignore <analyzers> -- reason`.
vet-analyzers:
	$(GO) run ./cmd/vfpgavet ./...

build:
	$(GO) build ./...

# The race gate covers the concurrency-bearing packages: the parallel
# experiment runner (bench), the compile cache (compile), the service
# daemon (serve), the fleet scheduler (fleet), the router scratch, and
# the simulation layers they drive.
race:
	$(GO) test -race ./internal/core/... ./internal/hostos/... ./internal/bench/... ./internal/compile/... ./internal/route/... ./internal/serve/... ./internal/fleet/... ./internal/loadgen/... ./cmd/vfpgaload/...

test:
	$(GO) test ./...

# Lint the whole circuit library (netlists + compiled bitstreams + pages).
lint:
	$(GO) run ./cmd/vfpgalint

# The hostos.FPGA conformance suite and the golden merged-timeline
# determinism test, explicitly under -race (they also run in `race` and
# `test`; this target pins them as a named gate).
conformance:
	$(GO) test -race -run 'TestConformance|TestGoldenTimeline' ./internal/core/

# Coverage: per-package summary, then a combined core+serve profile
# gated against the committed baseline — new subsystems must arrive with
# tests, or the gate trips.
cover:
	$(GO) test -cover ./internal/...
	@$(GO) test -coverprofile=.cover.out ./internal/core/ ./internal/serve/ ./internal/loadgen/ > /dev/null
	@total=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	base=$$(cat COVERAGE_BASELINE); \
	echo "combined core+serve coverage: $$total% (baseline $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { exit (t + 0 < b + 0) ? 1 : 0 }' \
		|| { echo "coverage dropped below the committed baseline"; rm -f .cover.out; exit 1; }
	@rm -f .cover.out

# Ten seconds of native fuzzing per target: enough to shake out crashes
# in the strict decoders without stalling CI. Corpora live under each
# package's testdata/fuzz/.
fuzz-smoke:
	$(GO) test ./internal/workload/ -run '^$$' -fuzz FuzzSpecDecode -fuzztime 10s
	$(GO) test ./internal/workload/ -run '^$$' -fuzz FuzzTraceDecode -fuzztime 10s
	$(GO) test ./internal/bitstream/ -run '^$$' -fuzz FuzzBitstreamParse -fuzztime 10s

# Quick end-to-end harness run; leaves a machine-readable perf record
# plus the cold-vs-warm serving latency record (BENCH_serve.json).
bench-quick:
	$(GO) run ./cmd/vfpgabench -quick -json BENCH_quick.json -serve-json BENCH_serve.json

# The warm-board guarantee as a gate: the Go benchmark runs both modes,
# and the serving record must show warm p50 at least 2x faster than a
# cold rebuild on the default board config.
bench-serve:
	$(GO) test ./internal/serve/ -run '^$$' -bench BenchmarkJobColdVsWarm -benchtime 5x
	$(GO) run ./cmd/vfpgabench -run none -serve-json BENCH_serve.json | grep "serve bench:"
	@speedup=$$(sed -n 's/.*"speedup_p50": \([0-9.]*\).*/\1/p' BENCH_serve.json); \
	echo "warm vs cold p50 speedup: $${speedup}x (gate: >= 2)"; \
	awk -v s="$$speedup" 'BEGIN { exit (s + 0 >= 2) ? 0 : 1 }' \
		|| { echo "warm serving is not at least 2x faster than cold"; exit 1; }

# The trace-driven load record as a gate: regenerate the "load" section
# of BENCH_serve.json and require the committed SLO to hold at recorded
# speed with an interior saturation point (met at the low probe AND
# broken before the high one — neither endpoint degenerate).
bench-load:
	$(GO) run ./cmd/vfpgabench -run none -serve-json BENCH_serve.json | grep "load bench:"
	@met=$$(grep -c '"met": true' BENCH_serve.json); \
	sat=$$(grep -c '"saturated": true' BENCH_serve.json); \
	if [ "$$met" -eq 1 ] && [ "$$sat" -eq 1 ]; then \
		echo "load bench: SLO held at recorded speed; saturation point is interior"; \
	else echo "load bench: degenerate saturation point"; exit 1; fi

# Render a merged scheduler+device timeline from the time-sharing example.
trace-demo:
	$(GO) run ./examples/timeshare

# End-to-end service smoke: boot vfpgad on an ephemeral port, drive it
# with vfpgaload (200 jobs, 8 concurrent closed-loop clients, lint-checked
# results), then SIGTERM it and require a clean drain. vfpgaload exits
# nonzero on any 5xx, transport error, failed job, or lint-dirty result;
# vfpgad exits nonzero if the drain does not complete.
serve-smoke:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 2 -managers dynamic,partition -rate 0 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -requests 200 -concurrency 8 -workload synthetic -check-lint; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke: ok"; else echo "serve-smoke: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke

# The same smoke under a pinned fault campaign: with this plan and three
# boards, exactly one board's derived stream escalates (injectors are
# rebuilt per job, so board outcomes are deterministic), its jobs rerun
# on the healthy boards, and the quarantine must be visible. vfpgaload
# exits nonzero on any untyped failure, any 5xx, or zero quarantined
# boards; vfpgad exits nonzero if the drain does not complete.
serve-smoke-faults:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 3 -managers dynamic -rate 0 \
		-faults "seed=1,retries=1,backoff=20us,config-error=0.13" > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -requests 200 -concurrency 8 -workload synthetic \
		-check-lint -allow-faults -expect-quarantine; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke-faults: ok"; else echo "serve-smoke-faults: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke

# The warm-board smoke: many jobs through few boards, so every board
# must serve the bulk of them from warm snapshot-restore resets.
# vfpgaload exits nonzero on any 5xx, transport error, failed job,
# lint-dirty result, or any board with zero warm resets; vfpgad exits
# nonzero if the drain does not complete.
serve-smoke-warm:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 2 -managers dynamic,partition -rate 0 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -requests 100 -concurrency 8 -workload synthetic -check-lint -expect-warm; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke-warm: ok"; else echo "serve-smoke-warm: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke

# The defragmentation smoke: amorphous boards on a narrow device, so the
# adoption cache leaves residual fragmentation after jobs and the
# idle-cycle compactor (armed at a low watermark) must run real passes.
# vfpgaload exits nonzero on any 5xx, transport error, failed job,
# lint-dirty result, or if no board ever compacted.
serve-smoke-defrag:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 2 -managers amorphous -cols 20 -rate 0 -compact-watermark 0.01 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -requests 60 -concurrency 4 -workload multimedia -check-lint -expect-compaction; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke-defrag: ok"; else echo "serve-smoke-defrag: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke

# The fleet smoke: one process serving 3 nodes x 2 boards behind the
# packing policy, 500 jobs through the round-robin loader. Node 1's
# boards run a deterministic always-escalate campaign, so the first job
# routed there quarantines the whole node mid-run; the fleet must
# re-route its jobs with zero untyped (or even typed) client-visible
# failures, end with node 1 out of the rotation
# (-expect-node-quarantine), and drain cleanly on SIGTERM.
serve-smoke-fleet:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -nodes 3 -boards-per-node 2 \
		-placement packing -managers dynamic -rate 0 \
		-faults "seed=1,retries=0,config-error@1" -fault-node 1 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -targets "http://$$addr,http://$$addr" -requests 500 -concurrency 8 \
		-workload multimedia -check-lint -expect-node-quarantine; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	if wait $$pid && [ $$ok -eq 1 ]; then echo "serve-smoke-fleet: ok"; else echo "serve-smoke-fleet: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke

# The trace smoke: replay the committed golden trace (60 jobs, 3
# tenants, all five scenario families) open-loop against a live vfpgad
# at 4x recorded pace, with the committed SLO enforced on the virtual
# replay. vfpgaload exits nonzero on any untyped failure, transport
# error, lint-dirty result, or SLO violation; the emitted CSV must be
# byte-identical to the committed golden (the wire-measured makespans
# reproduce the direct runner's exactly), and vfpgad must drain cleanly
# on SIGTERM.
serve-smoke-trace:
	@rm -rf .smoke && mkdir -p .smoke
	$(GO) build -o .smoke/vfpgad ./cmd/vfpgad
	$(GO) build -o .smoke/vfpgaload ./cmd/vfpgaload
	@set -e; \
	./.smoke/vfpgad -addr 127.0.0.1:0 -addr-file .smoke/addr -boards 4 -rate 0 > .smoke/vfpgad.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .smoke/addr ] && break; sleep 0.1; done; \
	[ -s .smoke/addr ] || { echo "vfpgad did not come up"; cat .smoke/vfpgad.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .smoke/addr); \
	if ./.smoke/vfpgaload -target "http://$$addr" -trace internal/loadgen/testdata/golden_trace.json \
		-pace 4 -slo 'p99<750ms' -check-lint \
		-csv-out .smoke/results.csv -json-out .smoke/results.json; then ok=1; else ok=0; fi; \
	kill -TERM $$pid; \
	wait $$pid || ok=0; \
	cmp -s .smoke/results.csv internal/loadgen/testdata/golden_results.csv || { echo "trace CSV diverged from golden"; ok=0; }; \
	if [ $$ok -eq 1 ]; then echo "serve-smoke-trace: ok"; else echo "serve-smoke-trace: FAILED"; cat .smoke/vfpgad.log; exit 1; fi
	@rm -rf .smoke
