# Tier-1 gate plus the repo's own static verifier. `make check` is what
# CI (and every PR) must pass.

GO ?= go

.PHONY: check fmt vet build test race conformance lint bench-quick trace-demo

check: fmt vet build race conformance test lint bench-quick

fmt:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed in:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The race gate covers the concurrency-bearing packages: the parallel
# experiment runner (bench), the compile cache (compile), the router
# scratch, and the simulation layers it drives.
race:
	$(GO) test -race ./internal/core/... ./internal/hostos/... ./internal/bench/... ./internal/compile/... ./internal/route/...

test:
	$(GO) test ./...

# Lint the whole circuit library (netlists + compiled bitstreams + pages).
lint:
	$(GO) run ./cmd/vfpgalint

# The hostos.FPGA conformance suite and the golden merged-timeline
# determinism test, explicitly under -race (they also run in `race` and
# `test`; this target pins them as a named gate).
conformance:
	$(GO) test -race -run 'TestConformance|TestGoldenTimeline' ./internal/core/

# Quick end-to-end harness run; leaves a machine-readable perf record.
bench-quick:
	$(GO) run ./cmd/vfpgabench -quick -json BENCH_quick.json

# Render a merged scheduler+device timeline from the time-sharing example.
trace-demo:
	$(GO) run ./examples/timeshare
