// Command vfpgalint runs the static verification passes over the
// circuit library: every netlist in the registry, its compiled
// bitstream, its page set, and (for combinational circuits, with
// -segments) its segmented stage chain.
//
// Usage:
//
//	vfpgalint                          # lint the whole library
//	vfpgalint -circuits adder8,crc16   # a subset
//	vfpgalint -json -fail-on warning   # machine-readable, strict
//	vfpgalint -passes comb-loop,net-drive -compile=false
//	vfpgalint -faults seed=7,config-error=0.05,readback-flip@3
//	vfpgalint -list                    # show the available passes
//
// The exit status is 0 when no diagnostic at or above the -fail-on
// severity was produced, 1 otherwise, and 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/version"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON lines")
	failOn := flag.String("fail-on", "error", "minimum severity that fails the run: error | warning | info | none")
	passList := flag.String("passes", "", "comma-separated pass subset (default: all)")
	circuits := flag.String("circuits", "", "comma-separated circuit subset (default: the whole registry)")
	doCompile := flag.Bool("compile", true, "also compile each circuit and lint the bitstream")
	segments := flag.Int("segments", 0, "additionally segment combinational circuits into N stages and lint the chain")
	pageCells := flag.Int("pagecells", 16, "page size for the page-coverage pass (0 disables)")
	cols := flag.Int("cols", 0, "device columns to bound bitstreams against (0 skips device checks)")
	rows := flag.Int("rows", 0, "device rows to bound bitstreams against (0 skips device checks)")
	seed := flag.Uint64("seed", 1, "placement seed for -compile")
	faults := flag.String("faults", "", "additionally validate a fault-injection plan, e.g. seed=7,config-error=0.05,readback-flip@3")
	verbose := flag.Bool("v", false, "also print info-severity diagnostics")
	list := flag.Bool("list", false, "list the available passes and exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("vfpgalint", version.String())
		return
	}
	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-18s %s\n", p.Name, p.Doc)
		}
		return
	}
	code, err := run(options{
		json: *jsonOut, failOn: *failOn, passes: *passList, circuits: *circuits,
		compile: *doCompile, segments: *segments, pageCells: *pageCells,
		cols: *cols, rows: *rows, seed: *seed, verbose: *verbose, faults: *faults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgalint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type options struct {
	json             bool
	failOn           string
	passes, circuits string
	compile          bool
	segments         int
	pageCells        int
	cols, rows       int
	seed             uint64
	verbose          bool
	faults           string
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func run(o options) (int, error) {
	var failSev lint.Severity
	failNever := false
	if o.failOn == "none" {
		failNever = true
	} else {
		var err error
		failSev, err = lint.ParseSeverity(o.failOn)
		if err != nil {
			return 0, err
		}
	}

	reg := netlist.Registry()
	names := splitList(o.circuits)
	if len(names) == 0 {
		for name := range reg {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	var geom *fabric.Geometry
	if o.cols > 0 && o.rows > 0 {
		g := fabric.DefaultGeometry()
		g.Cols, g.Rows = o.cols, o.rows
		geom = &g
	}

	opts := lint.Options{Passes: splitList(o.passes)}
	var targets []*lint.Target
	for _, name := range names {
		gen, ok := reg[name]
		if !ok {
			return 0, fmt.Errorf("unknown circuit %q", name)
		}
		nl := gen()
		t := &lint.Target{Netlist: nl, Geometry: geom, PageCells: o.pageCells}
		if o.segments > 1 && !nl.IsSequential() {
			stages, err := netlist.Segment(nl, o.segments)
			if err != nil {
				return 0, fmt.Errorf("segment %s: %w", name, err)
			}
			t.Segments = stages
		}
		if o.compile {
			c, err := compile.Compile(nl, compile.Options{Seed: o.seed})
			if err != nil {
				return 0, fmt.Errorf("compile %s: %w", name, err)
			}
			t.Bitstream = c.BS
		}
		targets = append(targets, t)
	}
	nCircuits := len(targets)
	if o.faults != "" {
		plan, err := fault.ParseSpec(o.faults)
		if err != nil {
			return 0, err
		}
		targets = append(targets, &lint.Target{Name: "fault-plan", FaultPlan: &plan})
	}

	diags, err := lint.Run(targets, opts)
	if err != nil {
		return 0, err
	}

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if d.Severity == lint.Info && !o.verbose {
			continue
		}
		if o.json {
			if err := enc.Encode(d); err != nil {
				return 0, err
			}
		} else {
			fmt.Println(d)
		}
	}
	if !o.json {
		fmt.Printf("%d circuit(s) linted: %d error(s), %d warning(s), %d info\n",
			nCircuits, lint.Count(diags, lint.Error), lint.Count(diags, lint.Warning), lint.Count(diags, lint.Info))
	}
	if failNever {
		return 0, nil
	}
	for _, d := range diags {
		if d.Severity >= failSev {
			return 1, nil
		}
	}
	return 0, nil
}
