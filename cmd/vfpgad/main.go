// Command vfpgad serves a pool of simulated VFPGA boards over HTTP.
// Tenants submit workload specs as JSON; each board runs jobs from its
// own bounded queue on its own goroutine, per-tenant token buckets
// throttle admission, and /metrics exposes the service in Prometheus
// text format.
//
// Usage:
//
//	vfpgad -addr :8080
//	vfpgad -boards 4 -managers dynamic,partition -queue 32
//	vfpgad -addr 127.0.0.1:0 -addr-file /tmp/vfpgad.addr
//	vfpgad -boards 3 -faults seed=7,retries=2,config-error=0.1
//
// SIGINT/SIGTERM stop intake, drain every accepted job, and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/version"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	boards := flag.Int("boards", 2, "number of boards in the pool")
	managers := flag.String("managers", "dynamic", "comma-separated manager list, cycled across boards")
	cols := flag.Int("cols", 32, "device columns per board")
	rows := flag.Int("rows", 16, "device rows per board")
	subBoards := flag.Int("sub-boards", 2, "sub-board count for multi-manager boards")
	sched := flag.String("sched", "rr", "host OS scheduler: fifo | rr | priority")
	slice := flag.Duration("slice", 10*time.Millisecond, "round-robin time slice")
	queue := flag.Int("queue", 16, "job queue depth per board")
	rate := flag.Float64("rate", 20, "per-tenant admitted jobs per second (<= 0 disables)")
	burst := flag.Float64("burst", 40, "per-tenant admission burst")
	seed := flag.Uint64("seed", 1, "compilation seed")
	faults := flag.String("faults", "", "fault-injection plan applied to every board (board i derives its own stream)")
	compactWatermark := flag.Float64("compact-watermark", 0.5, "fragmentation ratio at which an idle board defragments its device (<= 0 disables)")
	compactBudget := flag.Duration("compact-budget", 0, "virtual device time one compaction pass may spend on relocations (0 = unbounded)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgad", version.String())
		return
	}
	if err := run(*addr, *addrFile, *boards, *managers, *cols, *rows, *subBoards,
		*sched, *slice, *queue, *rate, *burst, *seed, *faults,
		*compactWatermark, *compactBudget); err != nil {
		fmt.Fprintf(os.Stderr, "vfpgad: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, boards int, managers string, cols, rows, subBoards int,
	sched string, slice time.Duration, queue int, rate, burst float64, seed uint64, faults string,
	compactWatermark float64, compactBudget time.Duration) error {
	if boards < 1 {
		return fmt.Errorf("need at least one board")
	}
	var plan *fault.Plan
	if faults != "" {
		p, err := fault.ParseSpec(faults)
		if err != nil {
			return err
		}
		plan = &p
	}
	mgrs := strings.Split(managers, ",")
	cfgs := make([]serve.BoardConfig, boards)
	for i := range cfgs {
		bc := serve.DefaultBoardConfig()
		bc.Manager = strings.TrimSpace(mgrs[i%len(mgrs)])
		bc.Cols, bc.Rows = cols, rows
		bc.SubBoards = subBoards
		bc.Sched = sched
		bc.Slice = sim.Time(slice.Nanoseconds())
		bc.Seed = seed
		bc.QueueDepth = queue
		cfgs[i] = bc
	}

	srv, err := serve.New(serve.Config{
		Boards:           cfgs,
		Tenant:           serve.TenantLimits{Rate: rate, Burst: burst},
		Version:          "vfpgad " + version.String(),
		Faults:           plan,
		CompactWatermark: compactWatermark,
		CompactBudget:    sim.Time(compactBudget.Nanoseconds()),
	})
	if err != nil {
		return err
	}
	if plan != nil {
		fmt.Printf("vfpgad: fault injection armed: %s\n", plan)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		// Written after Listen succeeds, so a reader that sees the file can
		// connect immediately — the smoke test polls for it.
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("vfpgad: %d board(s) listening on %s\n", boards, ln.Addr())

	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("vfpgad: draining")

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	fmt.Println("vfpgad: drained, bye")
	return nil
}
