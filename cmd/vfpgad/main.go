// Command vfpgad serves a pool of simulated VFPGA boards over HTTP.
// Tenants submit workload specs as JSON; each board runs jobs from its
// own bounded queue on its own goroutine, per-tenant token buckets
// throttle admission, and /metrics exposes the service in Prometheus
// text format.
//
// With -nodes > 1 the process runs a whole fleet: each node wraps its
// own pool of boards (one simulated daemon), and a placement policy
// routes jobs across nodes. The HTTP API is unchanged, plus GET
// /v1/fleet for routing inspection; admission budgets span the fleet.
//
// Usage:
//
//	vfpgad -addr :8080
//	vfpgad -boards 4 -managers dynamic,partition -queue 32
//	vfpgad -addr 127.0.0.1:0 -addr-file /tmp/vfpgad.addr
//	vfpgad -boards 3 -faults seed=7,retries=2,config-error=0.1
//	vfpgad -nodes 3 -boards-per-node 2 -placement packing
//	vfpgad -nodes 3 -faults seed=1,config-error=0.9 -fault-node 1
//
// SIGINT/SIGTERM stop intake, drain every accepted job, and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/version"
)

// options collects the flag values; one struct keeps the single-daemon
// and fleet paths on the same configuration.
type options struct {
	addr, addrFile   string
	boards           int
	nodes            int
	boardsPerNode    int
	placement        string
	managers         string
	cols, rows       int
	subBoards        int
	sched            string
	slice            time.Duration
	queue            int
	rate, burst      float64
	seed             uint64
	faults           string
	faultNode        int
	compactWatermark float64
	compactBudget    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.IntVar(&o.boards, "boards", 2, "number of boards in the pool (single-node mode)")
	flag.IntVar(&o.nodes, "nodes", 1, "number of nodes; > 1 serves a fleet from this one process")
	flag.IntVar(&o.boardsPerNode, "boards-per-node", 0, "boards per fleet node (0 = the -boards value)")
	flag.StringVar(&o.placement, "placement", "packing", "fleet placement policy: firstfit | packing | random")
	flag.StringVar(&o.managers, "managers", "dynamic", "comma-separated manager list, cycled across boards")
	flag.IntVar(&o.cols, "cols", 32, "device columns per board")
	flag.IntVar(&o.rows, "rows", 16, "device rows per board")
	flag.IntVar(&o.subBoards, "sub-boards", 2, "sub-board count for multi-manager boards")
	flag.StringVar(&o.sched, "sched", "rr", "host OS scheduler: fifo | rr | priority")
	flag.DurationVar(&o.slice, "slice", 10*time.Millisecond, "round-robin time slice")
	flag.IntVar(&o.queue, "queue", 16, "job queue depth per board")
	flag.Float64Var(&o.rate, "rate", 20, "per-tenant admitted jobs per second, fleet-wide (<= 0 disables)")
	flag.Float64Var(&o.burst, "burst", 40, "per-tenant admission burst")
	flag.Uint64Var(&o.seed, "seed", 1, "compilation seed")
	flag.StringVar(&o.faults, "faults", "", "fault-injection plan applied per board (board i derives its own stream)")
	flag.IntVar(&o.faultNode, "fault-node", -1, "restrict -faults to this node's boards (fleet mode; -1 arms every node)")
	flag.Float64Var(&o.compactWatermark, "compact-watermark", 0.5, "fragmentation ratio at which an idle board defragments its device (<= 0 disables)")
	flag.DurationVar(&o.compactBudget, "compact-budget", 0, "virtual device time one compaction pass may spend on relocations (0 = unbounded)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgad", version.String())
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "vfpgad: %v\n", err)
		os.Exit(1)
	}
}

// service is the part of serve.Server and fleet.Server the daemon loop
// needs.
type service interface {
	Handler() http.Handler
	Start()
	Drain()
}

func (o options) boardConfigs(n int) []serve.BoardConfig {
	mgrs := strings.Split(o.managers, ",")
	cfgs := make([]serve.BoardConfig, n)
	for i := range cfgs {
		bc := serve.DefaultBoardConfig()
		bc.Manager = strings.TrimSpace(mgrs[i%len(mgrs)])
		bc.Cols, bc.Rows = o.cols, o.rows
		bc.SubBoards = o.subBoards
		bc.Sched = o.sched
		bc.Slice = sim.Time(o.slice.Nanoseconds())
		bc.Seed = o.seed
		bc.QueueDepth = o.queue
		cfgs[i] = bc
	}
	return cfgs
}

func run(o options) error {
	if o.boards < 1 || o.nodes < 1 {
		return fmt.Errorf("need at least one board and one node")
	}
	var plan *fault.Plan
	if o.faults != "" {
		p, err := fault.ParseSpec(o.faults)
		if err != nil {
			return err
		}
		plan = &p
	}
	limits := serve.TenantLimits{Rate: o.rate, Burst: o.burst}
	ver := "vfpgad " + version.String()

	var srv service
	var banner string
	if o.nodes > 1 {
		per := o.boardsPerNode
		if per <= 0 {
			per = o.boards
		}
		nodeCfgs := make([][]serve.BoardConfig, o.nodes)
		for i := range nodeCfgs {
			nodeCfgs[i] = o.boardConfigs(per)
		}
		fs, err := fleet.NewServer(fleet.ServerConfig{
			Nodes:            nodeCfgs,
			Policy:           o.placement,
			Seed:             o.seed,
			Tenant:           limits,
			Version:          ver,
			Faults:           plan,
			FaultNode:        o.faultNode,
			CompactWatermark: o.compactWatermark,
			CompactBudget:    sim.Time(o.compactBudget.Nanoseconds()),
		})
		if err != nil {
			return err
		}
		srv = fs
		banner = fmt.Sprintf("%d node(s) x %d board(s), placement=%s,", o.nodes, per, o.placement)
	} else {
		ss, err := serve.New(serve.Config{
			Boards:           o.boardConfigs(o.boards),
			Tenant:           limits,
			Version:          ver,
			Faults:           plan,
			CompactWatermark: o.compactWatermark,
			CompactBudget:    sim.Time(o.compactBudget.Nanoseconds()),
		})
		if err != nil {
			return err
		}
		srv = ss
		banner = fmt.Sprintf("%d board(s)", o.boards)
	}
	if plan != nil {
		scope := ""
		if o.nodes > 1 && o.faultNode >= 0 {
			scope = fmt.Sprintf(" (node %d only)", o.faultNode)
		}
		fmt.Printf("vfpgad: fault injection armed%s: %s\n", scope, plan)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.addrFile != "" {
		// Written after Listen succeeds, so a reader that sees the file can
		// connect immediately — the smoke test polls for it.
		if err := os.WriteFile(o.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("vfpgad: %s listening on %s\n", banner, ln.Addr())

	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("vfpgad: draining")

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	fmt.Println("vfpgad: drained, bye")
	return nil
}
