package main

// Regression tests for the client-side accounting: service latency must
// exclude Retry-After waits (the closed-loop 429 split), and the trace
// executor must round-robin targets and produce positional outcomes.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// stubSleep replaces the injectable sleep for the duration of a test so
// throttle paths run instantly while still being accounted.
func stubSleep(t *testing.T) {
	t.Helper()
	old := sleep
	sleep = func(time.Duration) {}
	t.Cleanup(func() { sleep = old })
}

// fakeDaemon is a minimal vfpgad look-alike: accepts submissions,
// optionally 429s the first N poll requests per job with a Retry-After
// hint, then reports the job done with a fixed makespan.
type fakeDaemon struct {
	retryAfterPolls int // 429 this many polls per job before answering
	makespan        sim.Time
	faultKind       string // when set, jobs fail with this typed kind

	mu        sync.Mutex
	submitted int
	polls     map[string]int
	tenants   []string
}

func (f *fakeDaemon) server(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req serve.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.submitted++
		id := fmt.Sprintf("j%03d", f.submitted)
		f.tenants = append(f.tenants, req.Tenant)
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.SubmitResponse{ID: id})
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		f.mu.Lock()
		if f.polls == nil {
			f.polls = map[string]int{}
		}
		f.polls[id]++
		throttle := f.polls[id] <= f.retryAfterPolls
		f.mu.Unlock()
		if throttle {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		js := serve.JobStatus{ID: id, State: serve.StateDone, Result: &serve.JobResult{Makespan: f.makespan, LintClean: true}}
		if f.faultKind != "" {
			js = serve.JobStatus{ID: id, State: serve.StateFailed, FaultKind: f.faultKind}
		}
		json.NewEncoder(w).Encode(js)
	})
	mux.HandleFunc("/v1/boards", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]serve.BoardInfo{{ID: 0}, {ID: 1}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// The closed-loop fix: two Retry-After:2 throttles while polling must
// land in the tenant's throttle account — 4s of waits — while the
// reported service latency stays near the actual wall time, not 4s+.
func TestClosedLoopSplitsThrottleWaitFromServiceLatency(t *testing.T) {
	stubSleep(t)
	fd := &fakeDaemon{retryAfterPolls: 2, makespan: 123}
	srv := fd.server(t)
	ts := newTargetSet([]string{srv.URL})
	st := &stats{codes: map[int]int{}}
	spec, err := workload.BuiltinSpec("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	runOne(client, ts, "alpha", &spec, false, false, time.Now().Add(30*time.Second), st)

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.completed != 1 || st.failed != 0 {
		t.Fatalf("completed=%d failed=%d", st.completed, st.failed)
	}
	a := st.tenants["alpha"]
	if a == nil {
		t.Fatal("no tenant account for alpha")
	}
	if a.throttled != 2 || a.waited != 4*time.Second {
		t.Fatalf("throttle account = %d waits / %s, want 2 / 4s", a.throttled, a.waited)
	}
	// The stubbed sleep means barely any wall time passed; with the 4s of
	// Retry-After waits subtracted, service latency must clamp near zero
	// rather than absorbing the throttle budget.
	if svc := time.Duration(a.svc.Quantile(0.5)); svc > time.Second {
		t.Fatalf("service latency %s absorbed the Retry-After waits", svc)
	}
	if a.completed != 1 {
		t.Fatalf("tenant completed = %d, want 1", a.completed)
	}
}

// Without throttling, service latency is a plain positive wall measure.
func TestClosedLoopServiceLatencyPositive(t *testing.T) {
	fd := &fakeDaemon{makespan: 99}
	srv := fd.server(t)
	ts := newTargetSet([]string{srv.URL})
	st := &stats{codes: map[int]int{}}
	spec, err := workload.BuiltinSpec("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	runOne(client, ts, "beta", &spec, false, false, time.Now().Add(30*time.Second), st)
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.tenants["beta"]
	if a == nil || a.completed != 1 {
		t.Fatalf("tenant account: %+v", a)
	}
	if a.throttled != 0 || a.waited != 0 {
		t.Fatalf("unthrottled run charged waits: %+v", a)
	}
	if a.svc.Quantile(0.5) <= 0 {
		t.Fatal("service latency must be positive")
	}
}

// executeTrace must keep outcomes positional, rotate targets, and carry
// the daemon's makespan into the virtual outcome.
func TestExecuteTraceRoundRobinAndOutcomes(t *testing.T) {
	stubSleep(t)
	fa := &fakeDaemon{makespan: 500}
	fb := &fakeDaemon{makespan: 500}
	sa, sb := fa.server(t), fb.server(t)
	ts := newTargetSet([]string{sa.URL, sb.URL})

	spec, err := workload.BuiltinSpec("telecom")
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Version: workload.TraceVersion, Seed: 1, Tenants: []string{"a"}}
	for i := 0; i < 6; i++ {
		tr.Entries = append(tr.Entries, workload.TraceEntry{At: sim.Time(i) * 1000, Tenant: "a", Spec: spec})
	}
	st := &stats{codes: map[int]int{}}
	outcomes, err := executeTrace(ts, tr, traceOpts{deadline: time.Now().Add(30 * time.Second)}, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for i, o := range outcomes {
		if o.Service != 500 || o.Failed {
			t.Fatalf("outcome %d: %+v", i, o)
		}
	}
	fa.mu.Lock()
	na := fa.submitted
	fa.mu.Unlock()
	fb.mu.Lock()
	nb := fb.submitted
	fb.mu.Unlock()
	if na+nb != 6 || na == 0 || nb == 0 {
		t.Fatalf("rotation skew: %d vs %d submissions", na, nb)
	}
	// Positional outcomes + the pure model = deterministic results: two
	// replays of what came over the wire are byte-identical.
	one, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 2, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 2, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := loadgen.EncodeSummary(one.Summary)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loadgen.EncodeSummary(two.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatal("replay of wire outcomes is not deterministic")
	}
}

// A typed fault failure is an outcome for the model's error breakdown;
// the replay must not abort.
func TestExecuteTraceTypedFaultIsOutcome(t *testing.T) {
	stubSleep(t)
	fd := &fakeDaemon{faultKind: "config-error"}
	srv := fd.server(t)
	ts := newTargetSet([]string{srv.URL})
	spec, err := workload.BuiltinSpec("storage")
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{
		Version: workload.TraceVersion, Seed: 1, Tenants: []string{"a"},
		Entries: []workload.TraceEntry{{At: 0, Tenant: "a", Spec: spec}},
	}
	st := &stats{codes: map[int]int{}}
	outcomes, err := executeTrace(ts, tr, traceOpts{deadline: time.Now().Add(30 * time.Second)}, st)
	if err != nil {
		t.Fatal(err)
	}
	if !outcomes[0].Failed || outcomes[0].FaultKind != "config-error" {
		t.Fatalf("outcome: %+v", outcomes[0])
	}
	if st.faulted != 1 || st.failed != 0 {
		t.Fatalf("faulted=%d failed=%d", st.faulted, st.failed)
	}
}

// queryServerCount sums boards across every target.
func TestQueryServerCount(t *testing.T) {
	fa := &fakeDaemon{}
	fb := &fakeDaemon{}
	sa, sb := fa.server(t), fb.server(t)
	ts := newTargetSet([]string{sa.URL, sb.URL})
	st := &stats{codes: map[int]int{}}
	if n := queryServerCount(ts, time.Now().Add(10*time.Second), st); n != 4 {
		t.Fatalf("queryServerCount = %d, want 4 (2 boards x 2 targets)", n)
	}
}
