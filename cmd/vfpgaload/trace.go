package main

// Trace modes: -record generates an open-loop workload trace offline;
// -trace replays a recorded trace against live daemons and runs the
// deterministic results pipeline over the measured outcomes.
//
// The division of labor with internal/loadgen: this file owns the wall
// clock (pacing submissions, HTTP, Retry-After windows) and produces
// one virtual-time Outcome per trace entry; every reported number —
// latency quantiles, throughput curve, saturation point — comes from
// loadgen's virtual replay model over those outcomes, so the emitted
// CSV/JSON is byte-identical across runs of the same trace.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

type genConfig struct {
	jobs    int
	arrival string
	mean    time.Duration
	on, off time.Duration
	seed    uint64
	tenants int
}

// runRecord generates a trace per the -gen-* flags and writes it.
func runRecord(path string, gc genConfig) int {
	cfg := loadgen.GenConfig{
		Arrival:      gc.arrival,
		Jobs:         gc.jobs,
		MeanInterval: sim.Time(gc.mean.Nanoseconds()),
		OnMean:       sim.Time(gc.on.Nanoseconds()),
		OffMean:      sim.Time(gc.off.Nanoseconds()),
		Seed:         gc.seed,
		Mix:          loadgen.DefaultMix(gc.tenants),
	}
	tr, err := loadgen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	data, err := tr.EncodeJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	fmt.Printf("vfpgaload: recorded %d entries over %s across %d tenants to %s\n",
		len(tr.Entries), time.Duration(tr.Duration()).Round(time.Millisecond), len(tr.Tenants), path)
	return 0
}

type traceOpts struct {
	speedup    float64
	pace       float64
	servers    int
	slo        string
	csvOut     string
	jsonOut    string
	admitRate  float64
	admitBurst float64
	deadline   time.Time
	checkLint  bool
}

// traceReport is the -json-out payload of a trace replay.
type traceReport struct {
	Trace      string                   `json:"trace"`
	Summary    loadgen.ReplaySummary    `json:"summary"`
	Curve      []loadgen.CurvePoint     `json:"curve,omitempty"`
	Saturation *loadgen.SaturationPoint `json:"saturation,omitempty"`
}

// runTrace replays the recorded trace against the target set and runs
// the results pipeline. Exit is nonzero on any untyped job failure,
// transport error, lint-dirty result (with -check-lint), or — when
// -slo is set — a baseline replay that violates it.
func runTrace(ts *targetSet, path string, opts traceOpts) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	tr, err := workload.DecodeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	st := &stats{codes: map[int]int{}}
	srvs := opts.servers
	if srvs <= 0 {
		if srvs = queryServerCount(ts, opts.deadline, st); srvs <= 0 {
			fmt.Fprintln(os.Stderr, "vfpgaload: could not count boards via /v1/boards; pass -servers")
			return 1
		}
	}

	outcomes, err := executeTrace(ts, tr, opts, st)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}

	cfg := loadgen.ModelConfig{
		Servers: srvs, Speedup: opts.speedup,
		AdmitRate: opts.admitRate, AdmitBurst: opts.admitBurst,
	}
	res, err := loadgen.Replay(tr, outcomes, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		return 1
	}
	report := traceReport{Trace: path, Summary: res.Summary}

	bad := false
	if opts.slo != "" {
		slo, err := loadgen.ParseSLO(opts.slo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
			return 1
		}
		curve, err := loadgen.Curve(tr, outcomes, cfg, loadgen.DefaultCurveSpeedups, slo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
			return 1
		}
		sat, err := loadgen.Saturate(tr, outcomes, cfg, slo,
			loadgen.SaturateLo, loadgen.SaturateHi, loadgen.SaturateIters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
			return 1
		}
		report.Curve, report.Saturation = curve, &sat
		if !slo.Met(&res.Summary) {
			fmt.Fprintf(os.Stderr, "vfpgaload: SLO %s violated: p99=%s\n",
				opts.slo, time.Duration(res.Summary.P99Ns))
			bad = true
		}
	}

	if opts.csvOut != "" {
		f, err := os.Create(opts.csvOut)
		if err == nil {
			err = loadgen.WriteCSV(f, res)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
			return 1
		}
	}
	if opts.jsonOut != "" {
		out, err := loadgen.EncodeSummary(report)
		if err == nil {
			err = os.WriteFile(opts.jsonOut, out, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
			return 1
		}
	}

	s := res.Summary
	fmt.Printf("vfpgaload: trace %s: %d jobs, %d completed, %d failed, %d throttled (virtual replay, speedup %.2f, %d servers)\n",
		path, s.Jobs, s.Completed, s.Failed, s.Throttled, s.Speedup, s.Servers)
	fmt.Printf("  latency p50=%s p95=%s p99=%s max=%s\n",
		time.Duration(s.P50Ns), time.Duration(s.P95Ns), time.Duration(s.P99Ns), time.Duration(s.MaxNs))
	fmt.Printf("  offered %.2f jobs/s, achieved %.2f jobs/s, makespan %s\n",
		s.OfferedPerSec, s.AchievedPerSec, time.Duration(s.MakespanNs).Round(time.Millisecond))
	if report.Saturation != nil {
		sat := report.Saturation
		fmt.Printf("  saturation under %s: speedup %.2f (%.2f jobs/s offered, p99=%s), met=%v saturated=%v\n",
			sat.SLO, sat.Point.Speedup, sat.Point.OfferedPerSec, time.Duration(sat.Point.P99Ns), sat.Met, sat.Saturated)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("  wire: %d submitted, %d completed, %d faulted, %d transport errors, %d retries after 429\n",
		st.submitted, st.completed, st.faulted, st.transport, st.retries)
	if st.failed > 0 || st.transport > 0 {
		bad = true
	}
	if opts.checkLint && st.lintDirty > 0 {
		fmt.Printf("  lint-dirty results: %d\n", st.lintDirty)
		bad = true
	}
	if bad {
		return 1
	}
	return 0
}

// executeTrace submits every entry (paced open-loop when -pace > 0,
// round-robin across the targets) and collects one virtual Outcome per
// entry. Submissions do not wait for each other: pacing follows the
// recorded arrival clock, not completions.
func executeTrace(ts *targetSet, tr *workload.Trace, opts traceOpts, st *stats) ([]loadgen.Outcome, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	outcomes := make([]loadgen.Outcome, len(tr.Entries))
	errs := make([]error, len(tr.Entries))
	// Bound in-flight jobs so huge traces cannot exhaust sockets; 64 is
	// far beyond any pool's aggregate queue depth.
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if opts.pace > 0 {
			due := start.Add(time.Duration(float64(e.At) / opts.pace))
			if d := time.Until(due); d > 0 {
				sleep(d)
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, e *workload.TraceEntry) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[i], errs[i] = submitAndAwait(client, ts, e.Tenant, &e.Spec, opts, st)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("entry %d (%s/%s): %w", i, tr.Entries[i].Tenant, tr.Entries[i].Spec.Scenario, err)
		}
	}
	return outcomes, nil
}

// submitAndAwait runs one trace entry over the wire: submit (honoring
// Retry-After windows), poll to a terminal state, and convert the
// result into a virtual Outcome. A typed injected-fault failure is an
// outcome; an untyped failure or exhausted transport is an error.
func submitAndAwait(client *http.Client, ts *targetSet, tenant string, spec *workload.Spec, opts traceOpts, st *stats) (loadgen.Outcome, error) {
	body, err := json.Marshal(serve.SubmitRequest{Tenant: tenant, Workload: *spec})
	if err != nil {
		panic(err) // trace specs passed Validate; marshal cannot fail
	}
	var sub serve.SubmitResponse
	var tgt *target
	for {
		if time.Now().After(opts.deadline) {
			return loadgen.Outcome{}, fmt.Errorf("deadline exceeded before submit")
		}
		t, wait := ts.pick()
		if t == nil {
			st.noteThrottleWait(tenant, wait)
			sleep(wait)
			continue
		}
		resp, err := doReq(client, http.MethodPost, t.url+"/v1/jobs", body, opts.deadline)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return loadgen.Outcome{}, err
		}
		code := resp.StatusCode
		st.code(code)
		if code == http.StatusTooManyRequests {
			t.noteThrottled(retryAfterWait(resp))
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return loadgen.Outcome{}, fmt.Errorf("submit: HTTP %d: %w", code, err)
		}
		if code != http.StatusAccepted {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return loadgen.Outcome{}, fmt.Errorf("submit: HTTP %d", code)
		}
		t.noteSubmitted()
		tgt = t
		break
	}
	st.mu.Lock()
	st.submitted++
	st.mu.Unlock()

	acceptedAt := time.Now()
	var waited time.Duration
	for {
		if time.Now().After(opts.deadline) {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return loadgen.Outcome{}, fmt.Errorf("deadline exceeded polling job %s", sub.ID)
		}
		resp, err := doReq(client, http.MethodGet, tgt.url+"/v1/jobs/"+sub.ID, nil, opts.deadline)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return loadgen.Outcome{}, err
		}
		st.code(resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := retryAfterWait(resp)
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			st.noteThrottleWait(tenant, wait)
			waited += wait
			sleep(wait)
			continue
		}
		var js serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return loadgen.Outcome{}, fmt.Errorf("poll job %s: %w", sub.ID, err)
		}
		switch js.State {
		case serve.StateDone:
			if js.Result == nil {
				st.mu.Lock()
				st.failed++
				st.mu.Unlock()
				return loadgen.Outcome{}, fmt.Errorf("job %s done without a result", sub.ID)
			}
			st.noteService(tenant, time.Since(acceptedAt)-waited)
			st.mu.Lock()
			st.completed++
			if opts.checkLint && !js.Result.LintClean {
				st.lintDirty++
			}
			st.mu.Unlock()
			return loadgen.Outcome{Service: js.Result.Makespan}, nil
		case serve.StateFailed:
			if js.FaultKind != "" {
				// A typed chaos-campaign casualty is data for the model's
				// error breakdown, not an infrastructure failure.
				st.mu.Lock()
				st.faulted++
				st.mu.Unlock()
				return loadgen.Outcome{Failed: true, FaultKind: js.FaultKind}, nil
			}
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return loadgen.Outcome{}, fmt.Errorf("job %s failed: %s", sub.ID, js.Error)
		}
		sleep(20 * time.Millisecond)
	}
}

// queryServerCount sums the board counts of every target's /v1/boards.
func queryServerCount(ts *targetSet, deadline time.Time, st *stats) int {
	client := &http.Client{Timeout: 30 * time.Second}
	total := 0
	for _, t := range ts.targets {
		resp, err := doReq(client, http.MethodGet, t.url+"/v1/boards", nil, deadline)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return -1
		}
		var infos []serve.BoardInfo
		err = json.NewDecoder(resp.Body).Decode(&infos)
		resp.Body.Close()
		if err != nil {
			return -1
		}
		total += len(infos)
	}
	return total
}
