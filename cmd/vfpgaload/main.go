// Command vfpgaload drives a running vfpgad with synthetic client
// load and reports the status-code and latency distribution — the
// smoke-test companion to vfpgad.
//
// Usage:
//
//	vfpgaload -target http://127.0.0.1:8080 -requests 200 -concurrency 8
//	vfpgaload -target http://127.0.0.1:8080 -workload telecom -tenants 4
//	vfpgaload -target http://127.0.0.1:8080 -requests 50 -check-lint
//
// Closed-loop: each of -concurrency workers submits, polls the job to
// completion, then submits again until -requests jobs are accounted
// for. 429s are retried after the server's Retry-After hint and do not
// count against -requests. Exits nonzero on any 5xx, any transport
// error, any failed job, or (with -check-lint) any lint-dirty result.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/version"
	"repro/internal/workload"
)

type stats struct {
	mu        sync.Mutex
	codes     map[int]int
	submitted int
	completed int
	failed    int
	lintDirty int
	transport int
	retries   int
}

func (s *stats) code(c int) {
	s.mu.Lock()
	s.codes[c]++
	s.mu.Unlock()
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "vfpgad base URL")
	requests := flag.Int("requests", 100, "total jobs to run to completion")
	concurrency := flag.Int("concurrency", 4, "concurrent closed-loop workers")
	tenants := flag.Int("tenants", 2, "number of distinct tenants to submit as")
	scenario := flag.String("workload", "synthetic", "workload scenario to submit")
	checkLint := flag.Bool("check-lint", false, "fail if any job result is not lint-clean")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgaload", version.String())
		return
	}

	spec, err := workload.BuiltinSpec(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		os.Exit(1)
	}

	st := &stats{codes: map[int]int{}}
	deadline := time.Now().Add(*timeout)
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(*requests) {
			return 0, false
		}
		next++
		return int(next - 1), true
	}

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				n, ok := take()
				if !ok || time.Now().After(deadline) {
					return
				}
				tenant := "tenant-" + strconv.Itoa(n%*tenants)
				runOne(client, *target, tenant, &spec, *checkLint, deadline, st)
			}
		}(w)
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("vfpgaload: %d submitted, %d completed, %d failed, %d transport errors, %d retries after 429\n",
		st.submitted, st.completed, st.failed, st.transport, st.retries)
	codes := make([]int, 0, len(st.codes))
	for c := range st.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  HTTP %d: %d\n", c, st.codes[c])
	}
	bad := st.failed > 0 || st.transport > 0
	for _, c := range codes {
		if c >= 500 {
			bad = true
		}
	}
	if *checkLint && st.lintDirty > 0 {
		fmt.Printf("  lint-dirty results: %d\n", st.lintDirty)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

// runOne submits one job (retrying 429 backpressure) and polls it to a
// terminal state.
func runOne(client *http.Client, target, tenant string, spec *workload.Spec, checkLint bool, deadline time.Time, st *stats) {
	body, err := json.Marshal(serve.SubmitRequest{Tenant: tenant, Workload: *spec})
	if err != nil {
		panic(err) // specs come from BuiltinSpec; marshal cannot fail
	}
	var sub serve.SubmitResponse
	for {
		if time.Now().After(deadline) {
			return
		}
		resp, err := client.Post(target+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return
		}
		code := resp.StatusCode
		st.code(code)
		if code == http.StatusTooManyRequests {
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			time.Sleep(wait)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if code != http.StatusAccepted || err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		break
	}
	st.mu.Lock()
	st.submitted++
	st.mu.Unlock()

	for {
		if time.Now().After(deadline) {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		resp, err := client.Get(target + "/v1/jobs/" + sub.ID)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return
		}
		st.code(resp.StatusCode)
		var js serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		switch js.State {
		case serve.StateDone:
			st.mu.Lock()
			st.completed++
			if checkLint && (js.Result == nil || !js.Result.LintClean) {
				st.lintDirty++
			}
			st.mu.Unlock()
			return
		case serve.StateFailed:
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
