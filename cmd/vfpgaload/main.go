// Command vfpgaload drives a running vfpgad with synthetic client
// load and reports the status-code and latency distribution — the
// smoke-test companion to vfpgad.
//
// Usage:
//
//	vfpgaload -target http://127.0.0.1:8080 -requests 200 -concurrency 8
//	vfpgaload -target http://127.0.0.1:8080 -workload telecom -tenants 4
//	vfpgaload -target http://127.0.0.1:8080 -requests 50 -check-lint
//	vfpgaload -targets http://10.0.0.1:8080,http://10.0.0.2:8080 -requests 500
//
// Closed-loop: each of -concurrency workers submits, polls the job to
// completion, then submits again until -requests jobs are accounted
// for. 429s are retried after the server's Retry-After hint — on the
// submit and the poll path alike — and do not count against -requests;
// transport errors (a daemon still binding its socket refuses
// connections briefly) are retried a bounded number of times. Exits
// nonzero on any 5xx, any persistent transport error, any failed job,
// or (with -check-lint) any lint-dirty result.
//
// With -targets, submissions round-robin across the endpoints. Each
// target keeps its own 429 account and Retry-After window: a throttled
// target sits out until its hint expires while the rotation continues
// over the others, and the per-target tallies are reported at the end.
// Polling always follows the job to the target that accepted it.
//
// Against a daemon running a fault campaign (vfpgad -faults),
// -allow-faults accepts job failures that carry a typed fault kind —
// they are counted separately, not as failures — and -expect-quarantine
// requires at least one board to end up quarantined. Against a fleet
// (vfpgad -nodes > 1), -expect-node-quarantine requires a whole node to
// have dropped out of the healthy rotation (via GET /v1/fleet).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
	istats "repro/internal/stats"
	"repro/internal/version"
	"repro/internal/workload"
)

// sleep is time.Sleep, injectable so tests can run the throttle paths
// without real waits.
var sleep = time.Sleep

// tenantAcct separates what the server did for a tenant from what it
// made the tenant wait for: service latency is accepted-submit to
// terminal status minus the Retry-After windows slept through, so a
// throttled tenant's 429 budget never pollutes its latency quantiles.
type tenantAcct struct {
	completed int
	svc       *istats.Sample
	throttled int
	waited    time.Duration
}

type stats struct {
	mu        sync.Mutex
	codes     map[int]int
	submitted int
	completed int
	failed    int
	faulted   int // failed with a typed injected-fault reason
	lintDirty int
	transport int
	retries   int
	tenants   map[string]*tenantAcct
}

func (s *stats) code(c int) {
	s.mu.Lock()
	s.codes[c]++
	s.mu.Unlock()
}

// tenantLocked returns the tenant's account; callers hold s.mu.
func (s *stats) tenantLocked(tenant string) *tenantAcct {
	if s.tenants == nil {
		s.tenants = map[string]*tenantAcct{}
	}
	a := s.tenants[tenant]
	if a == nil {
		a = &tenantAcct{svc: istats.NewSample(true)}
		s.tenants[tenant] = a
	}
	return a
}

// noteService records one completed job's service latency (throttle
// waits already excluded; negatives clamp to zero).
func (s *stats) noteService(tenant string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	a := s.tenantLocked(tenant)
	a.completed++
	a.svc.Observe(float64(d))
	s.mu.Unlock()
}

// noteThrottleWait records one 429-induced wait charged to the tenant.
func (s *stats) noteThrottleWait(tenant string, d time.Duration) {
	s.mu.Lock()
	a := s.tenantLocked(tenant)
	a.throttled++
	a.waited += d
	s.mu.Unlock()
}

// target is one endpoint of the rotation with its own backpressure
// account: how many submissions it accepted, how many 429s it returned,
// and until when its last Retry-After hint asks us to stay away.
type target struct {
	url string

	mu        sync.Mutex
	submitted int
	throttled int
	notBefore time.Time
}

func (t *target) noteSubmitted() {
	t.mu.Lock()
	t.submitted++
	t.mu.Unlock()
}

func (t *target) noteThrottled(wait time.Duration) {
	t.mu.Lock()
	t.throttled++
	if nb := time.Now().Add(wait); nb.After(t.notBefore) {
		t.notBefore = nb
	}
	t.mu.Unlock()
}

// targetSet rotates submissions round-robin, skipping targets inside
// their Retry-After window.
type targetSet struct {
	// targets is fixed at construction; each target self-synchronizes.
	targets []*target

	mu   sync.Mutex
	next int
}

func newTargetSet(urls []string) *targetSet {
	ts := &targetSet{}
	for _, u := range urls {
		ts.targets = append(ts.targets, &target{url: strings.TrimRight(u, "/")})
	}
	return ts
}

// pick returns the next target whose backoff window has passed, in
// round-robin order. When every target is backing off it returns nil
// and how long until the earliest window opens.
func (ts *targetSet) pick() (*target, time.Duration) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := time.Now()
	var soonest time.Duration
	for i := 0; i < len(ts.targets); i++ {
		t := ts.targets[(ts.next+i)%len(ts.targets)]
		t.mu.Lock()
		wait := t.notBefore.Sub(now)
		t.mu.Unlock()
		if wait <= 0 {
			ts.next = (ts.next + i + 1) % len(ts.targets)
			return t, 0
		}
		if soonest == 0 || wait < soonest {
			soonest = wait
		}
	}
	return nil, soonest
}

func main() {
	targetFlag := flag.String("target", "http://127.0.0.1:8080", "vfpgad base URL")
	targetsFlag := flag.String("targets", "", "comma-separated vfpgad base URLs; submissions round-robin across them (overrides -target)")
	requests := flag.Int("requests", 100, "total jobs to run to completion")
	concurrency := flag.Int("concurrency", 4, "concurrent closed-loop workers")
	tenants := flag.Int("tenants", 2, "number of distinct tenants to submit as")
	scenario := flag.String("workload", "synthetic", "workload scenario to submit")
	checkLint := flag.Bool("check-lint", false, "fail if any job result is not lint-clean")
	allowFaults := flag.Bool("allow-faults", false, "count job failures with a typed fault kind separately, not as failures")
	expectQuarantine := flag.Bool("expect-quarantine", false, "fail unless at least one board ends up quarantined")
	expectNodeQuarantine := flag.Bool("expect-node-quarantine", false, "fail unless at least one fleet node ends up unhealthy (needs a fleet target)")
	expectWarm := flag.Bool("expect-warm", false, "fail unless every board served at least one job via warm reset")
	expectCompaction := flag.Bool("expect-compaction", false, "fail unless the boards ran at least one idle-cycle compaction pass")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	showVersion := flag.Bool("version", false, "print the build version and exit")

	// Trace modes: -record writes a generated trace and exits; -trace
	// replays a recorded trace open-loop and reports model statistics.
	record := flag.String("record", "", "write a generated workload trace to this file and exit (no daemon needed)")
	tracePath := flag.String("trace", "", "replay the recorded trace at this path open-loop (overrides closed-loop mode)")
	speedup := flag.Float64("speedup", 1, "offered-load multiplier for the replay model: arrival times divide by this")
	pace := flag.Float64("pace", 0, "wall-clock pacing multiplier for -trace submissions; 0 submits without pacing (results are virtual-time either way)")
	servers := flag.Int("servers", 0, "server count for the replay model; 0 queries /v1/boards across the targets")
	sloFlag := flag.String("slo", "", "latency SLO like p99<50ms; with -trace, runs the saturation search and fails when the replay violates it")
	csvOut := flag.String("csv-out", "", "write per-request replay results as CSV to this file")
	jsonOut := flag.String("json-out", "", "write the replay summary (and curve/saturation with -slo) as JSON to this file")
	admitRate := flag.Float64("admit-rate", 0, "virtual per-tenant admission tokens per second in the replay model; 0 disables")
	admitBurst := flag.Float64("admit-burst", 0, "virtual per-tenant admission burst in the replay model")
	genJobs := flag.Int("gen-jobs", 60, "jobs to generate with -record")
	genArrival := flag.String("gen-arrival", "poisson", "arrival process for -record: poisson or onoff")
	genMean := flag.Duration("gen-mean", 100*time.Millisecond, "mean inter-arrival time for -record")
	genOn := flag.Duration("gen-on", time.Second, "mean on-phase length for -record with onoff arrivals")
	genOff := flag.Duration("gen-off", time.Second, "mean off-phase length for -record with onoff arrivals")
	genSeed := flag.Uint64("gen-seed", 1234, "generator seed for -record")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgaload", version.String())
		return
	}

	if *record != "" {
		os.Exit(runRecord(*record, genConfig{
			jobs: *genJobs, arrival: *genArrival, mean: *genMean,
			on: *genOn, off: *genOff, seed: *genSeed, tenants: *tenants,
		}))
	}

	urls := []string{*targetFlag}
	if *targetsFlag != "" {
		urls = nil
		for _, u := range strings.Split(*targetsFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "vfpgaload: -targets lists no endpoints")
		os.Exit(1)
	}
	ts := newTargetSet(urls)

	if *tracePath != "" {
		os.Exit(runTrace(ts, *tracePath, traceOpts{
			speedup: *speedup, pace: *pace, servers: *servers,
			slo: *sloFlag, csvOut: *csvOut, jsonOut: *jsonOut,
			admitRate: *admitRate, admitBurst: *admitBurst,
			deadline:  time.Now().Add(*timeout),
			checkLint: *checkLint,
		}))
	}

	spec, err := workload.BuiltinSpec(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpgaload: %v\n", err)
		os.Exit(1)
	}

	st := &stats{codes: map[int]int{}}
	deadline := time.Now().Add(*timeout)
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(*requests) {
			return 0, false
		}
		next++
		return int(next - 1), true
	}

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				n, ok := take()
				if !ok || time.Now().After(deadline) {
					return
				}
				tenant := "tenant-" + strconv.Itoa(n%*tenants)
				runOne(client, ts, tenant, &spec, *checkLint, *allowFaults, deadline, st)
			}
		}(w)
	}
	wg.Wait()

	probe := ts.targets[0].url
	quarantined := -1
	if *expectQuarantine {
		quarantined = countQuarantined(probe, deadline, st)
	}
	nodesOut := -1
	if *expectNodeQuarantine {
		nodesOut = countUnhealthyNodes(probe, deadline, st)
	}
	minWarm := int64(-1)
	if *expectWarm {
		minWarm = minWarmResets(probe, deadline, st)
	}
	compactions := int64(-1)
	if *expectCompaction {
		compactions = sumCompactions(probe, deadline, st)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("vfpgaload: %d submitted, %d completed, %d failed, %d faulted, %d transport errors, %d retries after 429\n",
		st.submitted, st.completed, st.failed, st.faulted, st.transport, st.retries)
	if len(ts.targets) > 1 {
		for _, t := range ts.targets {
			t.mu.Lock()
			fmt.Printf("  target %s: %d submitted, %d throttled (429)\n", t.url, t.submitted, t.throttled)
			t.mu.Unlock()
		}
	}
	codes := make([]int, 0, len(st.codes))
	for c := range st.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  HTTP %d: %d\n", c, st.codes[c])
	}
	names := make([]string, 0, len(st.tenants))
	for name := range st.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := st.tenants[name]
		fmt.Printf("  tenant %s: %d completed, service p50=%s p95=%s, %d throttle waits totaling %s\n",
			name, a.completed,
			time.Duration(a.svc.Quantile(0.5)).Round(time.Millisecond),
			time.Duration(a.svc.Quantile(0.95)).Round(time.Millisecond),
			a.throttled, a.waited.Round(time.Millisecond))
	}
	bad := st.failed > 0 || st.transport > 0
	for _, c := range codes {
		if c >= 500 {
			bad = true
		}
	}
	if *checkLint && st.lintDirty > 0 {
		fmt.Printf("  lint-dirty results: %d\n", st.lintDirty)
		bad = true
	}
	if *expectQuarantine {
		fmt.Printf("  quarantined boards: %d\n", quarantined)
		if quarantined < 1 {
			bad = true
		}
	}
	if *expectNodeQuarantine {
		fmt.Printf("  unhealthy nodes: %d\n", nodesOut)
		if nodesOut < 1 {
			bad = true
		}
	}
	if *expectWarm {
		fmt.Printf("  min warm resets per board: %d\n", minWarm)
		if minWarm < 1 {
			bad = true
		}
	}
	if *expectCompaction {
		fmt.Printf("  compaction passes across boards: %d\n", compactions)
		if compactions < 1 {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// transportRetries bounds how often a refused or dropped connection is
// retried before it counts as a transport error.
const transportRetries = 5

// doReq issues one request, retrying transport-level failures with a
// linear backoff. HTTP-level errors are the caller's business.
func doReq(client *http.Client, method, url string, body []byte, deadline time.Time) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= transportRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			break
		}
		var resp *http.Response
		var err error
		if method == http.MethodPost {
			resp, err = client.Post(url, "application/json", bytes.NewReader(body))
		} else {
			resp, err = client.Get(url)
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("deadline exceeded before %s %s", method, url)
	}
	return nil, lastErr
}

// retryAfterWait drains a 429 response and returns how long the server
// asked us to back off.
func retryAfterWait(resp *http.Response) time.Duration {
	wait := time.Second
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		wait = time.Duration(ra) * time.Second
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return wait
}

// countQuarantined asks /v1/boards how many boards ended the campaign
// out of service; -1 means the query itself failed.
func countQuarantined(target string, deadline time.Time, st *stats) int {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := doReq(client, http.MethodGet, target+"/v1/boards", nil, deadline)
	if err != nil {
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return -1
	}
	defer resp.Body.Close()
	var infos []serve.BoardInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return -1
	}
	n := 0
	for _, bi := range infos {
		if bi.Quarantined {
			n++
		}
	}
	return n
}

// countUnhealthyNodes asks /v1/fleet how many nodes dropped out of the
// healthy rotation; -1 means the query failed (e.g. a single-daemon
// target, which serves no /v1/fleet).
func countUnhealthyNodes(target string, deadline time.Time, st *stats) int {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := doReq(client, http.MethodGet, target+"/v1/fleet", nil, deadline)
	if err != nil {
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return -1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return -1
	}
	var info fleet.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return -1
	}
	n := 0
	for _, node := range info.Nodes {
		if !node.Healthy {
			n++
		}
	}
	return n
}

// minWarmResets asks /v1/boards for the smallest warm-reset count any
// board served; -1 means the query itself failed or there are no boards.
func minWarmResets(target string, deadline time.Time, st *stats) int64 {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := doReq(client, http.MethodGet, target+"/v1/boards", nil, deadline)
	if err != nil {
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return -1
	}
	defer resp.Body.Close()
	var infos []serve.BoardInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil || len(infos) == 0 {
		return -1
	}
	min := infos[0].WarmResets
	for _, bi := range infos[1:] {
		if bi.WarmResets < min {
			min = bi.WarmResets
		}
	}
	return min
}

// sumCompactions asks /v1/boards how many idle-cycle compaction passes
// ran across the pool; -1 means the query itself failed.
func sumCompactions(target string, deadline time.Time, st *stats) int64 {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := doReq(client, http.MethodGet, target+"/v1/boards", nil, deadline)
	if err != nil {
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return -1
	}
	defer resp.Body.Close()
	var infos []serve.BoardInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return -1
	}
	var n int64
	for _, bi := range infos {
		n += bi.Compactions
	}
	return n
}

// runOne submits one job (rotating targets, honoring each target's
// Retry-After window, and retrying transient transport errors) and polls
// it to a terminal state on the target that accepted it.
func runOne(client *http.Client, ts *targetSet, tenant string, spec *workload.Spec, checkLint, allowFaults bool, deadline time.Time, st *stats) {
	body, err := json.Marshal(serve.SubmitRequest{Tenant: tenant, Workload: *spec})
	if err != nil {
		panic(err) // specs come from BuiltinSpec; marshal cannot fail
	}
	var sub serve.SubmitResponse
	var tgt *target
	for {
		if time.Now().After(deadline) {
			return
		}
		t, wait := ts.pick()
		if t == nil {
			// Every target is inside its Retry-After window; sleep out the
			// earliest one rather than hammering a throttled fleet. The wait
			// is backpressure, charged to the tenant's throttle account.
			st.noteThrottleWait(tenant, wait)
			sleep(wait)
			continue
		}
		resp, err := doReq(client, http.MethodPost, t.url+"/v1/jobs", body, deadline)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return
		}
		code := resp.StatusCode
		st.code(code)
		if code == http.StatusTooManyRequests {
			t.noteThrottled(retryAfterWait(resp))
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			continue // the rotation moves on; this target sits out its window
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if code != http.StatusAccepted || err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		t.noteSubmitted()
		tgt = t
		break
	}
	st.mu.Lock()
	st.submitted++
	st.mu.Unlock()

	// Service latency starts at the accepted submit; Retry-After windows
	// slept through while polling are subtracted back out, so the
	// reported latency is the server's, not the throttle budget's.
	acceptedAt := time.Now()
	var waited time.Duration

	for {
		if time.Now().After(deadline) {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		resp, err := doReq(client, http.MethodGet, tgt.url+"/v1/jobs/"+sub.ID, nil, deadline)
		if err != nil {
			st.mu.Lock()
			st.transport++
			st.mu.Unlock()
			return
		}
		st.code(resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := retryAfterWait(resp)
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			st.noteThrottleWait(tenant, wait)
			waited += wait
			sleep(wait)
			continue
		}
		var js serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		switch js.State {
		case serve.StateDone:
			st.noteService(tenant, time.Since(acceptedAt)-waited)
			st.mu.Lock()
			st.completed++
			if checkLint && (js.Result == nil || !js.Result.LintClean) {
				st.lintDirty++
			}
			st.mu.Unlock()
			return
		case serve.StateFailed:
			st.mu.Lock()
			if allowFaults && js.FaultKind != "" {
				// A typed casualty of the fault campaign, not a bug.
				st.faulted++
			} else {
				st.failed++
			}
			st.mu.Unlock()
			return
		}
		sleep(20 * time.Millisecond)
	}
}
