// Command vfpgasim runs one workload scenario under a chosen FPGA
// manager and prints per-task metrics plus the manager's counters —
// the interactive companion to vfpgabench.
//
// Usage:
//
//	vfpgasim -scenario multimedia -manager dynamic
//	vfpgasim -scenario telecom -manager partition -sched rr -slice 5ms
//	vfpgasim -scenario synthetic -manager exclusive -tasks 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "multimedia", "multimedia | telecom | diagnosis | storage | synthetic")
	manager := flag.String("manager", "dynamic", "dynamic | partition | overlay | paged | exclusive | software | merged")
	sched := flag.String("sched", "rr", "fifo | rr | priority")
	slice := flag.Duration("slice", 10*time.Millisecond, "round-robin time slice")
	tasks := flag.Int("tasks", 6, "task count (synthetic scenario)")
	seed := flag.Uint64("seed", 1, "workload seed")
	cols := flag.Int("cols", 32, "device columns")
	rows := flag.Int("rows", 16, "device rows")
	gantt := flag.Bool("gantt", false, "print an ASCII scheduling timeline")
	lintFlag := flag.Bool("lint", false, "run the static verifier on the workload's circuits before simulating; abort on errors")
	flag.Parse()

	if err := run(*scenario, *manager, *sched, sim.Time(slice.Nanoseconds()), *tasks, *seed, *cols, *rows, *gantt, *lintFlag); err != nil {
		fmt.Fprintf(os.Stderr, "vfpgasim: %v\n", err)
		os.Exit(1)
	}
}

// lintCircuits runs the netlist- and bitstream-domain passes over every
// compiled workload circuit; error diagnostics abort the run before any
// simulated time is spent on a broken artifact.
func lintCircuits(set *workload.Set, e *core.Engine) error {
	var targets []*lint.Target
	for _, nl := range set.Circuits {
		t := &lint.Target{Netlist: nl}
		if c, ok := e.Lib[nl.Name]; ok {
			t.Bitstream = c.BS
		}
		targets = append(targets, t)
	}
	diags, err := lint.Run(targets, lint.Options{MinSeverity: lint.Warning})
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Printf("lint: %s\n", d)
	}
	if lint.HasErrors(diags) {
		return fmt.Errorf("lint found %d error(s); refusing to simulate broken circuits", len(lint.Errors(diags)))
	}
	fmt.Printf("lint: %d circuits verified, %d warning(s)\n", len(targets), lint.Count(diags, lint.Warning))
	return nil
}

func run(scenario, manager, sched string, slice sim.Time, tasks int, seed uint64, cols, rows int, gantt, doLint bool) error {
	var set *workload.Set
	switch scenario {
	case "multimedia":
		cfg := workload.DefaultMultimedia()
		cfg.Seed = seed
		set = workload.Multimedia(cfg)
	case "telecom":
		cfg := workload.DefaultTelecom()
		cfg.Seed = seed
		set = workload.Telecom(cfg)
	case "diagnosis":
		cfg := workload.DefaultDiagnosis()
		cfg.Seed = seed
		set = workload.Diagnosis(cfg)
	case "storage":
		cfg := workload.DefaultStorage()
		cfg.Seed = seed
		set = workload.Storage(cfg)
	case "synthetic":
		set = workload.Synthetic(workload.SyntheticConfig{
			Tasks: tasks, OpsPerTask: 6, EvalsPerOp: 30_000,
			ComputeTime: 300 * sim.Microsecond, SwitchProb: 0.3, Seed: seed,
		})
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = cols, rows
	opt.Seed = seed + 1
	k := sim.New()
	e := core.NewEngine(opt)
	fmt.Printf("compiling %d circuits for a %v device...\n", len(set.Circuits), opt.Geometry)
	for _, nl := range set.Circuits {
		if err := e.AddCircuit(nl); err != nil {
			return err
		}
		c := e.Lib[nl.Name]
		fmt.Printf("  %s\n", c)
	}
	if doLint {
		if err := lintCircuits(set, e); err != nil {
			return err
		}
	}

	var mgr hostos.FPGA
	switch manager {
	case "dynamic":
		mgr = core.NewDynamicLoader(k, e)
	case "partition":
		pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return err
		}
		mgr = pm
	case "overlay":
		// The most-used circuit (first in the set) stays resident.
		om, initCost, err := core.NewOverlayManager(k, e, set.CircuitNames()[:1])
		if err != nil {
			return err
		}
		fmt.Printf("overlay init download: %v\n", initCost)
		mgr = om
	case "paged":
		pl, err := core.NewPagedLoader(k, e, core.PagedConfig{PageCells: 16, Policy: core.LRU, Seed: seed})
		if err != nil {
			return err
		}
		mgr = pl
	case "exclusive":
		mgr = baseline.NewExclusive(k, e)
	case "software":
		mgr = baseline.NewSoftware(e, 20)
	case "merged":
		m, initCost, err := baseline.NewMerged(k, e, set.CircuitNames())
		if err != nil {
			return err
		}
		fmt.Printf("merged init download: %v\n", initCost)
		mgr = m
	default:
		return fmt.Errorf("unknown manager %q", manager)
	}

	osCfg := hostos.Config{TimeSlice: slice, CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond}
	switch sched {
	case "fifo":
		osCfg.Policy = hostos.FIFO
	case "rr":
		osCfg.Policy = hostos.RR
	case "priority":
		osCfg.Policy = hostos.Priority
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}
	osim := hostos.New(k, osCfg, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}
	var tlog *hostos.EventLog
	if gantt {
		tlog = hostos.NewEventLog(0)
		osim.AttachTrace(tlog)
	}
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		return fmt.Errorf("simulation ended with unfinished tasks")
	}

	tbl := &trace.Table{
		ID:      "RUN",
		Title:   fmt.Sprintf("%s under %s (%s, slice %v)", scenario, manager, sched, slice),
		Columns: []string{"task", "turnaround_ms", "cpu_ms", "hw_ms", "overhead_ms", "wait_ms", "block_ms", "preempts"},
	}
	for _, t := range osim.Tasks() {
		tbl.AddRow(t.Name,
			fmt.Sprintf("%.3f", t.Turnaround().Milliseconds()),
			fmt.Sprintf("%.3f", t.CPUTime.Milliseconds()),
			fmt.Sprintf("%.3f", t.HWTime.Milliseconds()),
			fmt.Sprintf("%.3f", t.Overhead.Milliseconds()),
			fmt.Sprintf("%.3f", t.ReadyWait.Milliseconds()),
			fmt.Sprintf("%.3f", t.BlockWait.Milliseconds()),
			t.Preemptions)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	m := &e.M
	fmt.Printf("makespan: %v   ctx switches: %d\n", osim.Makespan(), osim.CtxSwitches)
	fmt.Printf("manager: loads=%d evictions=%d readbacks=%d restores=%d rollbacks=%d\n",
		m.Loads.Value(), m.Evictions.Value(), m.Readbacks.Value(), m.Restores.Value(), m.Rollbacks.Value())
	fmt.Printf("         page faults=%d gc runs=%d relocations=%d blocks=%d muxed ops=%d\n",
		m.PageFaults.Value(), m.GCRuns.Value(), m.Relocations.Value(), m.Blocks.Value(), m.MuxedOps.Value())
	fmt.Printf("         config time=%v readback time=%v restore time=%v\n",
		m.ConfigTime, m.ReadbackTime, m.RestoreTime)
	fmt.Printf("device:  %d/%d CLBs configured at end, mean occupancy %.1f CLBs\n",
		e.Dev.UsedCells(), opt.Geometry.NumCLBs(), m.Util.Average(int64(k.Now())))
	if tlog != nil {
		fmt.Println()
		fmt.Println("timeline ('#' running, '.' ready, 'b' blocked):")
		fmt.Print(tlog.Gantt(100, osim.Makespan()))
	}
	if doLint {
		if pm, ok := mgr.(*core.PartitionManager); ok {
			diags := lint.RunTarget(pm.LintTarget(), lint.Options{MinSeverity: lint.Warning})
			for _, d := range diags {
				fmt.Printf("lint: %s\n", d)
			}
			if lint.HasErrors(diags) {
				return fmt.Errorf("partition-state invariants violated after the run")
			}
			fmt.Println("lint: final partition table and device configuration verified")
		}
	}
	return nil
}
