// Command vfpgasim runs one workload scenario under a chosen FPGA
// manager and prints per-task metrics plus the manager's counters —
// the interactive companion to vfpgabench.
//
// Usage:
//
//	vfpgasim -scenario multimedia -manager dynamic
//	vfpgasim -scenario telecom -manager partition -sched rr -slice 5ms
//	vfpgasim -scenario synthetic -manager exclusive -tasks 8
//	vfpgasim -scenario multimedia -manager dynamic -trace
//	vfpgasim -scenario telecom -manager multi -boards 2
//	vfpgasim -scenario multimedia -faults seed=7,retries=2,config-error=0.05 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "multimedia", "multimedia | telecom | diagnosis | storage | synthetic")
	manager := flag.String("manager", "dynamic", "dynamic | partition | amorphous | overlay | paged | multi | exclusive | software | merged")
	sched := flag.String("sched", "rr", "fifo | rr | priority")
	slice := flag.Duration("slice", 10*time.Millisecond, "round-robin time slice")
	tasks := flag.Int("tasks", 6, "task count (synthetic scenario)")
	seed := flag.Uint64("seed", 1, "workload seed")
	cols := flag.Int("cols", 32, "device columns")
	rows := flag.Int("rows", 16, "device rows")
	boards := flag.Int("boards", 2, "board count (multi manager)")
	gantt := flag.Bool("gantt", false, "print an ASCII scheduling timeline")
	traceFlag := flag.Bool("trace", false, "print the merged scheduler+device event timeline")
	lintFlag := flag.Bool("lint", false, "run the static verifier on the circuits before and on the device state after simulating; abort on errors")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=7,retries=2,config-error=0.05,readback-flip@3")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgasim", version.String())
		return
	}

	cfg := runConfig{
		scenario: *scenario, manager: *manager, sched: *sched,
		slice: sim.Time(slice.Nanoseconds()), tasks: *tasks, seed: *seed,
		cols: *cols, rows: *rows, boards: *boards,
		gantt: *gantt, trace: *traceFlag, lint: *lintFlag,
	}
	if *faults != "" {
		plan, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgasim: %v\n", err)
			os.Exit(1)
		}
		// ParseSpec only checks syntax; the fault-plan lint pass checks
		// semantics (probability mass per injection point, script
		// ordering, retry policy) so a bad campaign aborts here instead
		// of silently injecting the wrong thing.
		diags := lint.RunTarget(&lint.Target{Name: "faults", FaultPlan: &plan},
			lint.Options{Passes: []string{"fault-plan"}, MinSeverity: lint.Warning})
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "vfpgasim: %s\n", d)
		}
		if lint.HasErrors(diags) {
			fmt.Fprintf(os.Stderr, "vfpgasim: refusing to run a malformed fault plan\n")
			os.Exit(1)
		}
		cfg.faults = &plan
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vfpgasim: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	scenario, manager, sched string
	slice                    sim.Time
	tasks                    int
	seed                     uint64
	cols, rows, boards       int
	gantt, trace, lint       bool
	faults                   *fault.Plan
}

// lintCircuits runs the netlist- and bitstream-domain passes over every
// compiled workload circuit; error diagnostics abort the run before any
// simulated time is spent on a broken artifact.
func lintCircuits(set *workload.Set, e *core.Engine) error {
	var targets []*lint.Target
	for _, nl := range set.Circuits {
		t := &lint.Target{Netlist: nl}
		if c, ok := e.Lib[nl.Name]; ok {
			t.Bitstream = c.BS
		}
		targets = append(targets, t)
	}
	diags, err := lint.Run(targets, lint.Options{MinSeverity: lint.Warning})
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Printf("lint: %s\n", d)
	}
	if lint.HasErrors(diags) {
		return fmt.Errorf("lint found %d error(s); refusing to simulate broken circuits", len(lint.Errors(diags)))
	}
	fmt.Printf("lint: %d circuits verified, %d warning(s)\n", len(targets), lint.Count(diags, lint.Warning))
	return nil
}

// lintFinal audits the manager's live device state through its ledger
// view — every manager exposes one via core.LintTargeter.
func lintFinal(mgr hostos.FPGA) error {
	lt, ok := mgr.(core.LintTargeter)
	if !ok {
		return nil
	}
	diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Printf("lint: %s\n", d)
	}
	if lint.HasErrors(diags) {
		return fmt.Errorf("device-state invariants violated after the run")
	}
	fmt.Println("lint: final device state verified")
	return nil
}

func buildSet(cfg runConfig) (*workload.Set, error) {
	switch cfg.scenario {
	case "multimedia":
		c := workload.DefaultMultimedia()
		c.Seed = cfg.seed
		return workload.Multimedia(c), nil
	case "telecom":
		c := workload.DefaultTelecom()
		c.Seed = cfg.seed
		return workload.Telecom(c), nil
	case "diagnosis":
		c := workload.DefaultDiagnosis()
		c.Seed = cfg.seed
		return workload.Diagnosis(c), nil
	case "storage":
		c := workload.DefaultStorage()
		c.Seed = cfg.seed
		return workload.Storage(c), nil
	case "synthetic":
		return workload.Synthetic(workload.SyntheticConfig{
			Tasks: cfg.tasks, OpsPerTask: 6, EvalsPerOp: 30_000,
			ComputeTime: 300 * sim.Microsecond, SwitchProb: 0.3, Seed: cfg.seed,
		}), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", cfg.scenario)
	}
}

func run(cfg runConfig) (err error) {
	// Ledger operations that cannot return errors report an exhausted
	// fault-retry budget as a typed panic; surface it as a normal error.
	defer func() {
		if r := recover(); r != nil {
			if esc, ok := fault.AsEscalation(r); ok {
				err = fmt.Errorf("injected fault escalated: %w", esc)
				return
			}
			panic(r)
		}
	}()
	set, err := buildSet(cfg)
	if err != nil {
		return err
	}

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = cfg.cols, cfg.rows
	opt.Seed = cfg.seed + 1
	k := sim.New()
	e := core.NewEngine(opt)
	fmt.Printf("compiling %d circuits for a %v device...\n", len(set.Circuits), opt.Geometry)
	for _, nl := range set.Circuits {
		if err := e.AddCircuit(nl); err != nil {
			return err
		}
		c := e.Lib[nl.Name]
		fmt.Printf("  %s\n", c)
	}
	if cfg.lint {
		if err := lintCircuits(set, e); err != nil {
			return err
		}
	}

	engines := []*core.Engine{e}
	var mgr hostos.FPGA
	switch cfg.manager {
	case "dynamic":
		mgr = core.NewDynamicLoader(k, e)
	case "partition":
		pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return err
		}
		mgr = pm
	case "amorphous":
		mgr = core.NewAmorphousManager(k, e, core.DefaultAmorphousConfig())
	case "overlay":
		// The most-used circuit (first in the set) stays resident.
		om, initCost, err := core.NewOverlayManager(k, e, set.CircuitNames()[:1])
		if err != nil {
			return err
		}
		fmt.Printf("overlay init download: %v\n", initCost)
		mgr = om
	case "paged":
		pl, err := core.NewPagedLoader(k, e, core.PagedConfig{PageCells: 16, Policy: core.LRU, Seed: cfg.seed})
		if err != nil {
			return err
		}
		mgr = pl
	case "multi":
		if cfg.boards < 1 {
			return fmt.Errorf("multi manager needs at least one board")
		}
		// Each additional board is its own engine (device, pins, metrics)
		// with the circuits compiled into its own library.
		for i := 1; i < cfg.boards; i++ {
			be := core.NewEngine(opt)
			for _, nl := range set.Circuits {
				if err := be.AddCircuit(nl); err != nil {
					return err
				}
			}
			engines = append(engines, be)
		}
		mm, err := core.NewMultiManager(k, engines, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return err
		}
		mgr = mm
	case "exclusive":
		mgr = baseline.NewExclusive(k, e)
	case "software":
		mgr = baseline.NewSoftware(e, 20)
	case "merged":
		m, initCost, err := baseline.NewMerged(k, e, set.CircuitNames())
		if err != nil {
			return err
		}
		fmt.Printf("merged init download: %v\n", initCost)
		mgr = m
	default:
		return fmt.Errorf("unknown manager %q", cfg.manager)
	}

	if cfg.faults != nil {
		// Board i draws from its own derived stream, so adding boards
		// never perturbs the faults earlier boards see.
		for i, eng := range engines {
			eng.Ledger().InjectFaults(fault.NewInjector(cfg.faults.Derive(uint64(i))))
		}
		fmt.Printf("fault injection armed: %s\n", cfg.faults)
	}

	osCfg := hostos.Config{TimeSlice: cfg.slice, CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond}
	switch cfg.sched {
	case "fifo":
		osCfg.Policy = hostos.FIFO
	case "rr":
		osCfg.Policy = hostos.RR
	case "priority":
		osCfg.Policy = hostos.Priority
	default:
		return fmt.Errorf("unknown scheduler %q", cfg.sched)
	}
	osim := hostos.New(k, osCfg, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}
	var tlog *hostos.EventLog
	if cfg.gantt || cfg.trace {
		tlog = hostos.NewEventLog(0)
		osim.AttachTrace(tlog)
	}
	var devLogs []*core.DeviceLog
	if cfg.trace {
		for _, eng := range engines {
			dl := core.NewDeviceLog(0)
			eng.Ledger().AttachLog(dl)
			devLogs = append(devLogs, dl)
		}
	}
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		return fmt.Errorf("simulation ended with unfinished tasks")
	}

	tbl := &trace.Table{
		ID:      "RUN",
		Title:   fmt.Sprintf("%s under %s (%s, slice %v)", cfg.scenario, cfg.manager, cfg.sched, cfg.slice),
		Columns: []string{"task", "turnaround_ms", "cpu_ms", "hw_ms", "overhead_ms", "wait_ms", "block_ms", "preempts"},
	}
	for _, t := range osim.Tasks() {
		tbl.AddRow(t.Name,
			fmt.Sprintf("%.3f", t.Turnaround().Milliseconds()),
			fmt.Sprintf("%.3f", t.CPUTime.Milliseconds()),
			fmt.Sprintf("%.3f", t.HWTime.Milliseconds()),
			fmt.Sprintf("%.3f", t.Overhead.Milliseconds()),
			fmt.Sprintf("%.3f", t.ReadyWait.Milliseconds()),
			fmt.Sprintf("%.3f", t.BlockWait.Milliseconds()),
			t.Preemptions)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("makespan: %v   ctx switches: %d\n", osim.Makespan(), osim.CtxSwitches)
	for i, eng := range engines {
		m := &eng.M
		label := "manager:"
		if len(engines) > 1 {
			label = fmt.Sprintf("board %d:", i)
		}
		fmt.Printf("%s loads=%d evictions=%d readbacks=%d restores=%d rollbacks=%d\n",
			label, m.Loads.Value(), m.Evictions.Value(), m.Readbacks.Value(), m.Restores.Value(), m.Rollbacks.Value())
		fmt.Printf("         page faults=%d gc runs=%d relocations=%d blocks=%d muxed ops=%d\n",
			m.PageFaults.Value(), m.GCRuns.Value(), m.Relocations.Value(), m.Blocks.Value(), m.MuxedOps.Value())
		fmt.Printf("         config time=%v readback time=%v restore time=%v\n",
			m.ConfigTime, m.ReadbackTime, m.RestoreTime)
		if cfg.faults != nil {
			fmt.Printf("faults:  injected=%d retries=%d recoveries=%d escalations=%d fault time=%v\n",
				m.FaultsInjected.Value(), m.FaultRetries.Value(),
				m.FaultRecoveries.Value(), m.FaultEscalations.Value(), m.FaultTime)
			if inj := eng.Ledger().Injector(); inj != nil {
				fmt.Printf("         %s\n", inj.Summary())
			}
		}
		fmt.Printf("device:  %d/%d CLBs configured at end, mean occupancy %.1f CLBs\n",
			eng.Dev.UsedCells(), opt.Geometry.NumCLBs(), m.Util.Average(int64(k.Now())))
	}
	if tlog != nil && cfg.gantt {
		fmt.Println()
		fmt.Println("timeline ('#' running, '.' ready, 'b' blocked):")
		fmt.Print(tlog.Gantt(100, osim.Makespan()))
	}
	if cfg.trace {
		fmt.Println()
		fmt.Println("merged scheduler+device timeline:")
		if err := core.MergeTimeline(tlog, devLogs...).Render(os.Stdout); err != nil {
			return err
		}
	}
	if cfg.lint {
		if err := lintFinal(mgr); err != nil {
			return err
		}
	}
	return nil
}
