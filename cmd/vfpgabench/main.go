// Command vfpgabench regenerates every table and figure of the
// reproduction's evaluation plan (DESIGN.md §4). Each experiment
// operationalizes one qualitative claim of the paper.
//
// Usage:
//
//	vfpgabench                 # run everything, print tables
//	vfpgabench -run T1,F3      # run selected experiments
//	vfpgabench -quick          # reduced sweeps
//	vfpgabench -jobs 4         # worker-pool width (1 = serial)
//	vfpgabench -csv out/       # also write one CSV per table
//	vfpgabench -json perf.json # write a machine-readable perf record
//
// Experiments fan out across a worker pool (-jobs, default NumCPU) and
// the tables print in the usual order with byte-identical content for
// every -jobs value; only the wall-clock changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (T1..T5, F1..F10, A1), 'all', or 'none'")
	quick := flag.Bool("quick", false, "reduced sweeps")
	seed := flag.Uint64("seed", 1, "experiment seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent workers (1 = serial)")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files")
	jsonPath := flag.String("json", "", "file to write a perf record (JSON) to")
	serveJSONPath := flag.String("serve-json", "", "file to write the cold-vs-warm serving benchmark (JSON) to")
	serveJobs := flag.Int("serve-jobs", 10, "jobs per mode for the cold-vs-warm serving benchmark")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vfpgabench", version.String())
		return
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick, Jobs: *jobs, Now: time.Now}

	var selected []bench.Experiment
	switch *run {
	case "all":
		selected = bench.All()
	case "none": // skip experiments (useful with -serve-json alone)
	default:
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "vfpgabench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	outcomes := bench.Run(cfg, selected)
	wall := time.Since(start)

	failed := false
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: %s failed: %v\n", o.Exp.ID, o.Err)
			failed = true
			continue
		}
		if err := o.Table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: render %s: %v\n", o.Exp.ID, err)
			failed = true
			continue
		}
		fmt.Printf("   [%s ran in %v]\n\n", o.Exp.ID, o.Wall.Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(o.Exp.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vfpgabench: %v\n", err)
				failed = true
				continue
			}
			if err := o.Table.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "vfpgabench: csv %s: %v\n", o.Exp.ID, err)
				failed = true
			}
			f.Close()
		}
	}

	rec := bench.NewPerfRecord(cfg, outcomes, wall)
	cs := bench.CacheStats()
	fmt.Printf("%d experiments in %v (jobs=%d; serial estimate %v, speedup %.2fx)\n",
		len(outcomes), wall.Round(time.Millisecond), *jobs,
		time.Duration(rec.SerialEstMS*float64(time.Millisecond)).Round(time.Millisecond),
		rec.Speedup)
	fmt.Printf("compile cache: %d hits, %d misses, %d dedups (%.0f%% hit rate, %d/%d entries)\n",
		cs.Hits, cs.Misses, cs.Dedups, 100*cs.HitRate(), cs.Size, cs.Capacity)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: json: %v\n", err)
			failed = true
		}
		f.Close()
	}
	if *serveJSONPath != "" {
		if err := writeServeBench(*serveJSONPath, *serveJobs, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: serve bench: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeServeBench runs the cold-vs-warm serving benchmark on the default
// board plus the F10 fleet placement bake-off and the trace-driven load
// bench, and records all three in one JSON file: the cold/warm fields at
// top level (the speedup gate greps them there), the bake-off under
// "fleet", and the open-loop latency/saturation record under "load".
// Everything runs in virtual time and costs well under a second.
func writeServeBench(path string, jobs int, seed uint64) error {
	const scenario = "multimedia"
	spec, err := workload.BuiltinSpec(scenario)
	if err != nil {
		return err
	}
	rec, err := serve.BenchColdVsWarm(serve.DefaultBoardConfig(), &spec, scenario, jobs)
	if err != nil {
		return err
	}
	fcfg, err := bench.FleetBakeoffConfig(bench.Config{Seed: seed})
	if err != nil {
		return err
	}
	frec, err := fleet.RunBakeoffAll(fcfg, fleet.PolicyNames)
	if err != nil {
		return err
	}
	runFn, err := serve.NewDirectRunner(serve.DefaultBoardConfig())
	if err != nil {
		return err
	}
	lrec, err := loadgen.RunBench(loadgen.DefaultBenchConfig(), loadgen.DefaultBenchServers, loadgen.DefaultBenchSLO, runFn)
	if err != nil {
		return err
	}
	out := struct {
		serve.ColdWarmBench
		Fleet *fleet.BakeoffRecord `json:"fleet"`
		Load  *loadgen.BenchRecord `json:"load"`
	}{rec, frec, lrec}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve bench: warm p50 %v vs cold p50 %v (%.1fx); p95 %v vs %v (%.1fx) -> %s\n",
		time.Duration(rec.WarmP50NS), time.Duration(rec.ColdP50NS), rec.SpeedupP50,
		time.Duration(rec.WarmP95NS), time.Duration(rec.ColdP95NS), rec.SpeedupP95, path)
	for _, row := range frec.Rows {
		fmt.Printf("fleet bench: %-9s %d jobs, hw_util %.4f, p99 admit %.2fms, %d requeues\n",
			row.Policy, row.Jobs, row.HWUtil, row.P99AdmitMS, row.Requeues)
	}
	fmt.Printf("load bench: %d jobs on %d servers, baseline p99 %v (SLO %s), saturation at %.2fx = %.1f jobs/s offered\n",
		lrec.Baseline.Jobs, lrec.Baseline.Servers, time.Duration(lrec.Baseline.P99Ns),
		lrec.SLO, lrec.Saturation.Point.Speedup, lrec.Saturation.Point.OfferedPerSec)
	return nil
}
