// Command vfpgabench regenerates every table and figure of the
// reproduction's evaluation plan (DESIGN.md §4). Each experiment
// operationalizes one qualitative claim of the paper.
//
// Usage:
//
//	vfpgabench                 # run everything, print tables
//	vfpgabench -run T1,F3      # run selected experiments
//	vfpgabench -quick          # reduced sweeps
//	vfpgabench -csv out/       # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (T1..T5, F1..F7) or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps")
	seed := flag.Uint64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files")
	flag.Parse()

	cfg := bench.Config{Seed: *seed, Quick: *quick}

	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "vfpgabench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vfpgabench: render %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Printf("   [%s ran in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vfpgabench: %v\n", err)
				failed = true
				continue
			}
			if err := tbl.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "vfpgabench: csv %s: %v\n", e.ID, err)
				failed = true
			}
			f.Close()
		}
	}
	if failed {
		os.Exit(1)
	}
}
