// Package badpkg trips every vfpgavet analyzer exactly once; the CLI
// test drives the built binary over it and asserts the exit status and
// one diagnostic per analyzer.
//
//vfpgavet:deterministic
package badpkg

import (
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

func bump(met *core.Metrics) {
	met.Loads.Inc() // ledgeronly: metrics mutated outside internal/core
}

func now() int64 {
	return time.Now().UnixNano() // simclock: wall clock in a deterministic package
}

func matches(err error) bool {
	return strings.Contains(err.Error(), "boom") // typederr: string matching on an error
}

type metricsWriter struct{}

func (m *metricsWriter) family(name, help, typ string) {}

func (m *metricsWriter) int(name string, v int64, kv ...string) {}

func expose(m *metricsWriter) {
	m.int("vfpgad_orphan_total", 1) // metricsonce: series without a family
}

func leak(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // mapiter: iteration order leaks, no sort
	}
	return ks
}

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) peek() int {
	return s.n // lockproto: guarded field read without the lock
}
