// Package cleanpkg violates nothing; the CLI test asserts a clean run
// exits 0 with no output.
//
//vfpgavet:deterministic
package cleanpkg

import "sort"

func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
