package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the vfpgavet binary once into the test tempdir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vfpgavet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIReportsEveryAnalyzer(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-tests=false", "./testdata/src/badpkg")
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, ee.Stderr)
	}
	got := string(out)
	for _, want := range []string{
		"badpkg.go:17:2: core.Metrics.Loads mutated outside internal/core",
		"[ledgeronly]",
		"wall clock in deterministic package: time.Now",
		"[simclock]",
		"matching on an error string with strings.Contains",
		"[typederr]",
		`metric series "vfpgad_orphan_total" has no registered family`,
		"[metricsonce]",
		"append to ks inside range over map with no sort of ks",
		"[mapiter]",
		"s.n accessed without s.mu held",
		"[lockproto]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "\n"); n != 6 {
		t.Errorf("want 6 diagnostics, got %d:\n%s", n, got)
	}
}

func TestCLICleanRun(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-tests=false", "./testdata/src/cleanpkg")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("clean package reported findings: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("clean run produced output:\n%s", out)
	}
}

func TestCLIAnalyzerSubset(t *testing.T) {
	bin := buildBinary(t)
	// Only simclock selected: the other violations must not be reported.
	cmd := exec.Command(bin, "-tests=false", "-analyzers", "simclock", "./testdata/src/badpkg")
	out, _ := cmd.Output()
	got := string(out)
	if !strings.Contains(got, "[simclock]") || strings.Contains(got, "[mapiter]") {
		t.Fatalf("subset run output:\n%s", got)
	}
	// Unknown analyzer names are a usage error (exit 2).
	cmd = exec.Command(bin, "-analyzers", "nosuch", "./testdata/src/cleanpkg")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown analyzer accepted")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("unknown analyzer: %v, want exit 2", err)
	}
}
