// Command vfpgavet runs the project's custom static analyzers — the
// mechanical form of the architecture contracts from PRs 3-5 — over Go
// packages in this module. It is internal/lint's compile-time sibling:
// lint audits netlists, devices and fault plans at runtime; vfpgavet
// audits the source that produces them.
//
// Usage:
//
//	vfpgavet [-list] [-analyzers a,b] [-tests=false] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 diagnostics reported, 2 load or internal failure.
// Suppress a finding in place with
//
//	//vfpgavet:ignore name1,name2 -- reason
//
// and opt extra packages into the determinism analyzers with a
// //vfpgavet:deterministic comment anywhere in the package.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ledgeronly"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockproto"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/metricsonce"
	"repro/internal/analysis/simclock"
	"repro/internal/analysis/typederr"
	"repro/internal/version"
)

// all is the registered analyzer suite, in report order.
var all = []*analysis.Analyzer{
	ledgeronly.Analyzer,
	simclock.Analyzer,
	typederr.Analyzer,
	metricsonce.Analyzer,
	mapiter.Analyzer,
	lockproto.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vfpgavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list analyzers and exit")
		names       = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		tests       = fs.Bool("tests", true, "also analyze _test.go files and test packages")
		dir         = fs.String("C", "", "change to this directory before loading packages")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "vfpgavet", version.String())
		return 0
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(stderr, "vfpgavet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	_, pkgs, err := load.Load(load.Options{Dir: *dir, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "vfpgavet:", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "vfpgavet:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "vfpgavet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
