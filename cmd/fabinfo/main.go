// Command fabinfo inspects the device model and the circuit library: it
// compiles circuits through the full CAD flow (map, place, route,
// bitstream) and reports area, timing and configuration costs — the
// numbers the VFPGA managers make decisions with.
//
// Usage:
//
//	fabinfo                        # summary of the whole library
//	fabinfo -circuit mul8          # detail for one circuit
//	fabinfo -rows 24 -tracks 12    # change the target strip geometry
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	circuit := flag.String("circuit", "", "detail one library circuit (empty = summary of all)")
	rows := flag.Int("rows", 16, "strip height in CLB rows")
	tracks := flag.Int("tracks", 12, "routing tracks per channel")
	seed := flag.Uint64("seed", 1, "placement seed")
	pages := flag.Int("pages", 16, "page size in CLBs for the pagination report")
	dump := flag.String("dump", "", "write the compiled bitstream as JSON to this file (requires -circuit)")
	segment := flag.Int("segment", 0, "also report a k-way segmentation of the circuit (requires -circuit)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("fabinfo", version.String())
		return
	}
	if err := run(*circuit, *rows, *tracks, *seed, *pages, *dump, *segment); err != nil {
		fmt.Fprintf(os.Stderr, "fabinfo: %v\n", err)
		os.Exit(1)
	}
}

func run(circuit string, rows, tracks int, seed uint64, pageCells int, dump string, segment int) error {
	tm := fabric.DefaultTiming()
	geom := fabric.DefaultGeometry()
	fmt.Printf("reference device: %v, %d CLBs, full serial configuration %v\n",
		geom, geom.NumCLBs(), tm.FullConfigTime(geom))
	fmt.Printf("strip target: %d rows, %d tracks/channel, serial rate %d bit/s\n\n",
		rows, tracks, tm.SerialRateBits)

	reg := netlist.Registry()
	if circuit != "" {
		gen, ok := reg[circuit]
		if !ok {
			return fmt.Errorf("circuit %q not in library (try one of the summary names)", circuit)
		}
		return detail(gen(), rows, tracks, seed, pageCells, tm, dump, segment)
	}
	if dump != "" || segment > 0 {
		return fmt.Errorf("-dump and -segment require -circuit")
	}

	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	tbl := &trace.Table{
		ID:      "LIB",
		Title:   "circuit library through the full flow",
		Columns: []string{"circuit", "gates", "ffs", "cells", "strip", "depth", "clock", "config", "state_rw"},
	}
	for _, name := range names {
		nl := reg[name]()
		c, err := compile.CompileStrip(nl, rows, tracks, compile.Options{Seed: seed, Timing: &tm})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tbl.AddRow(name, nl.NumGates(), nl.NumDFFs(), c.Cells(),
			fmt.Sprintf("%dx%d", c.BS.W, c.BS.H), c.Mapped.Depth,
			c.ClockPeriod.String(), c.BS.ConfigCost(tm).String(),
			tm.ReadbackTime(c.BS.FFCells).String())
	}
	return tbl.Render(os.Stdout)
}

func detail(nl *netlist.Netlist, rows, tracks int, seed uint64, pageCells int, tm fabric.Timing, dump string, segment int) error {
	fmt.Printf("netlist:   %s\n", nl)
	c, err := compile.CompileStrip(nl, rows, tracks, compile.Options{Seed: seed, Timing: &tm})
	if err != nil {
		return err
	}
	fmt.Printf("mapped:    %s\n", c.Mapped)
	fmt.Printf("placed:    %dx%d strip, wirelength %d\n", c.Placed.W, c.Placed.H, c.Placed.Wirelength)
	fmt.Printf("routed:    %d connections, %d hops, max channel use %d/%d, %d iterations\n",
		len(c.Routed.Conns), c.BS.TotalHops, c.Routed.MaxUse, tracks, c.Routed.Iterations)
	fmt.Printf("bitstream: %s\n", c.BS)
	fmt.Printf("timing:    critical path %v, clock %v\n", c.BS.Delay, c.ClockPeriod)
	fmt.Printf("costs:     config %v, readback %v, restore %v\n",
		c.BS.ConfigCost(tm), tm.ReadbackTime(c.BS.FFCells), tm.RestoreTime(c.BS.FFCells))
	pages := c.BS.Pages(pageCells)
	fmt.Printf("paging:    %d pages of <=%d cells", len(pages), pageCells)
	if len(pages) > 0 {
		fmt.Printf(" (page config cost %v)", tm.PartialConfigTime(len(pages[0].Cells), 0))
	}
	fmt.Println()
	if segment > 0 {
		stages, err := netlist.Segment(nl, segment)
		if err != nil {
			return err
		}
		fmt.Printf("segments:  %d stages, gates %v\n", len(stages), netlist.SegmentSizes(stages))
		for _, st := range stages {
			sc, err := compile.CompileStrip(st, rows, tracks, compile.Options{Seed: seed, Timing: &tm})
			if err != nil {
				return err
			}
			fmt.Printf("           %s\n", sc)
		}
	}
	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.BS.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("bitstream JSON written to %s\n", dump)
	}
	return nil
}
