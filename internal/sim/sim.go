// Package sim implements the discrete-event simulation kernel that drives
// the whole VFPGA reproduction: the host operating system, the FPGA
// configuration ports, and the workloads all advance a single virtual
// clock through this kernel.
//
// The kernel is strictly deterministic: events scheduled for the same
// virtual time fire in (time, priority, sequence) order, where sequence is
// the order of scheduling. Virtual time is an int64 nanosecond count; it
// never touches the wall clock, so experiment results are bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, mirroring time.Duration constants but in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "1.5ms".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. It is returned by Schedule so that the
// caller can cancel it (e.g. a preemption timer that is no longer needed).
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
}

// Time returns the virtual time at which the event fires (or fired).
func (e *Event) Time() Time { return e.at }

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.fn == nil }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is ready
// to use at virtual time zero.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	fired   int64
}

// New returns a kernel at virtual time zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired returns the number of events executed so far.
func (k *Kernel) EventsFired() int64 { return k.fired }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for fn to run at absolute virtual time at. Events at
// equal times run in scheduling order. Scheduling in the past panics —
// that is always a logic error in a discrete-event model.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	return k.SchedulePri(at, 0, fn)
}

// SchedulePri schedules fn at time at with an explicit priority; among
// events at the same time, lower priority values fire first. The host OS
// uses priorities to order hardware completions before scheduler decisions.
func (k *Kernel) SchedulePri(at Time, priority int, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil function")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", at, k.now))
	}
	e := &Event{at: at, priority: priority, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run delay after the current time.
func (k *Kernel) After(delay Time, fn func()) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return k.Schedule(k.now+delay, fn)
}

// Cancel removes a scheduled event. Canceling an event that already fired
// or was already canceled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.fn == nil {
		return
	}
	e.fn = nil
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
}

// Step executes the single next event, advancing the clock to its time.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.fn == nil {
			continue // canceled while queued (defensive; Cancel removes eagerly)
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, and returns the final time.
func (k *Kernel) Run() Time {
	if k.running {
		panic("sim: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.Step() {
	}
	return k.now
}

// Reset returns the kernel to virtual time zero with an empty queue, as
// if freshly constructed. Pending events are dropped. Resetting while
// Run/RunUntil is executing panics — the event loop must have drained
// (or been abandoned) first.
func (k *Kernel) Reset() {
	if k.running {
		panic("sim: Reset during Run")
	}
	for _, e := range k.queue {
		if e != nil {
			e.fn = nil
			e.index = -1
		}
	}
	k.now = 0
	k.queue = nil
	k.seq = 0
	k.fired = 0
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock is advanced to the deadline even
// if the queue drained earlier. It returns the number of events fired.
func (k *Kernel) RunUntil(deadline Time) int64 {
	if k.running {
		panic("sim: RunUntil re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	start := k.fired
	for len(k.queue) > 0 && k.queue[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.fired - start
}
