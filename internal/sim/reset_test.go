package sim

import "testing"

// Reset must return a kernel to its zero state — clock, queue, sequence
// numbers, fired counter — so a warm board reusing the kernel replays
// exactly like a fresh one.
func TestKernelReset(t *testing.T) {
	k := New()
	var order []int
	k.Schedule(5*Microsecond, func() { order = append(order, 1) })
	k.Schedule(2*Microsecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 2 || k.EventsFired() != 2 {
		t.Fatalf("warm-up run fired %d events (order %v)", k.EventsFired(), order)
	}
	// Leave something pending so Reset has a queue to drop.
	k.Schedule(9*Microsecond, func() { t.Error("dropped event fired after Reset") })

	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 || k.EventsFired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d, want all zero",
			k.Now(), k.Pending(), k.EventsFired())
	}

	// The reset kernel must behave like a fresh one, including FIFO
	// order among same-time events (seq restarted).
	order = nil
	k.Schedule(3*Microsecond, func() { order = append(order, 1) })
	k.Schedule(3*Microsecond, func() { order = append(order, 2) })
	end := k.Run()
	if end != 3*Microsecond || len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("rerun after Reset: end=%v order=%v", end, order)
	}
}

// Resetting mid-run would corrupt the event loop; it must panic instead.
func TestKernelResetDuringRunPanics(t *testing.T) {
	k := New()
	k.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset during Run did not panic")
			}
		}()
		k.Reset()
	})
	k.Run()
}
