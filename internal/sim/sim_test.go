package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroKernel(t *testing.T) {
	var k Kernel
	if k.Now() != 0 || k.Pending() != 0 {
		t.Fatal("zero kernel not at time 0 with empty queue")
	}
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
}

func TestScheduleOrdering(t *testing.T) {
	k := New()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	k := New()
	var got []string
	k.SchedulePri(5, 1, func() { got = append(got, "low") })
	k.SchedulePri(5, 0, func() { got = append(got, "high") })
	k.Run()
	if got[0] != "high" || got[1] != "low" {
		t.Fatalf("priority order wrong: %v", got)
	}
}

func TestAfter(t *testing.T) {
	k := New()
	var at Time
	k.Schedule(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	k := New()
	k.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.Schedule(50, func() {})
	})
	k.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.Schedule(10, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event does not report canceled")
	}
	// Double-cancel and nil-cancel are no-ops.
	k.Cancel(e)
	k.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	k := New()
	var got []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, k.Schedule(Time(i*10), func() { got = append(got, i) }))
	}
	k.Cancel(events[2])
	k.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	n := k.RunUntil(25)
	if n != 2 || len(got) != 2 {
		t.Fatalf("RunUntil fired %d events (%v), want 2", n, got)
	}
	if k.Now() != 25 {
		t.Fatalf("clock = %v, want 25", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	k.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events did not fire: %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New()
	k.RunUntil(1000)
	if k.Now() != 1000 {
		t.Fatalf("idle clock = %v, want 1000", k.Now())
	}
}

func TestEventsFired(t *testing.T) {
	k := New()
	for i := 0; i < 7; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.Run()
	if k.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d, want 7", k.EventsFired())
	}
}

func TestCascadedScheduling(t *testing.T) {
	// An event chain where each event schedules the next; models a polling
	// loop. Ensures the kernel handles events scheduled during Run.
	k := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.After(10, tick)
		}
	}
	k.Schedule(0, tick)
	k.Run()
	if count != 100 {
		t.Fatalf("chain executed %d ticks, want 100", count)
	}
	if k.Now() != 990 {
		t.Fatalf("final time %v, want 990", k.Now())
	}
}

func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			k.Schedule(at, func() { fired = append(fired, at) })
		}
		k.Run()
		if len(fired) != len(raw) {
			return false
		}
		sorted := append([]Time(nil), fired...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{5, "5ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3s"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds conversion wrong")
	}
	if (3 * Millisecond).Milliseconds() != 3 {
		t.Fatal("Milliseconds conversion wrong")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		for j := 0; j < 1000; j++ {
			k.Schedule(Time(j%97), func() {})
		}
		k.Run()
	}
}
