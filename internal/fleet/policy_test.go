package fleet

import (
	"testing"

	"repro/internal/rng"
)

func view(healthy bool, queued int, boards ...BoardView) NodeView {
	return NodeView{Healthy: healthy, Queued: queued, Boards: boards}
}

func board(cols, largest int, frag float64) BoardView {
	return BoardView{Cols: cols, LargestFree: largest, FragRatio: frag}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range PolicyNames {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFirstFitPrefersFittingNode(t *testing.T) {
	p, _ := NewPolicy("firstfit", 0)
	nodes := []NodeView{
		view(true, 0, board(24, 4, 0.5)),  // too narrow
		view(false, 0, board(24, 24, 0)),  // unhealthy
		view(true, 9, board(24, 12, 0.1)), // first fit
		view(true, 0, board(24, 24, 0)),   // also fits, but later
	}
	idx, score, ok := p.Place(JobView{Width: 8}, nodes)
	if !ok || idx != 2 {
		t.Fatalf("Place = (%d, %v, %v), want node 2", idx, score, ok)
	}
	// No node fits: fall back to the least-queued healthy node (ties to
	// the first), in the penalty tier.
	idx, score, ok = p.Place(JobView{Width: 30}, nodes)
	if !ok || idx != 0 || score < nonFitPenalty {
		t.Fatalf("no-fit Place = (%d, %v, %v), want node 0 in penalty tier", idx, score, ok)
	}
}

func TestPackingPrefersTightFitAndLowQueue(t *testing.T) {
	p, _ := NewPolicy("packing", 0)
	nodes := []NodeView{
		view(true, 0, board(24, 20, 0.3)), // loose fit
		view(true, 0, board(24, 9, 0.0)),  // tight fit, less frag
		view(true, 5, board(24, 8, 0.0)),  // tightest, but queued
	}
	idx, _, ok := p.Place(JobView{Width: 8}, nodes)
	if !ok || idx != 1 {
		t.Fatalf("Place picked node %d, want 1 (tight fit, empty queue)", idx)
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	nodes := []NodeView{
		view(true, 0, board(24, 24, 0)),
		view(true, 0, board(24, 24, 0)),
		view(true, 0, board(24, 24, 0)),
	}
	a, _ := NewPolicy("random", 7)
	b, _ := NewPolicy("random", 7)
	for i := 0; i < 64; i++ {
		ia, _, _ := a.Place(JobView{Width: 4}, nodes)
		ib, _, _ := b.Place(JobView{Width: 4}, nodes)
		if ia != ib {
			t.Fatalf("call %d: same seed diverged (%d vs %d)", i, ia, ib)
		}
	}
}

// TestPackingNeverOverflowsWhenAlternativeFits is the packing safety
// property: over randomized fleets, packing never routes a strip to a
// node whose boards cannot currently hold it while some other healthy
// node shows a wide-enough contiguous free extent. The two-tier scoring
// (nonFitPenalty) is what guarantees it.
func TestPackingNeverOverflowsWhenAlternativeFits(t *testing.T) {
	p, _ := NewPolicy("packing", 0)
	src := rng.New(0xF10)
	for trial := 0; trial < 5000; trial++ {
		n := 2 + src.Intn(5)
		nodes := make([]NodeView, n)
		for i := range nodes {
			boards := make([]BoardView, 1+src.Intn(3))
			for b := range boards {
				cols := 8 + src.Intn(25)
				free := src.Intn(cols + 1)
				boards[b] = BoardView{
					Cols:        cols,
					LargestFree: free,
					FragRatio:   src.Float64(),
					Quarantined: src.Intn(8) == 0,
				}
			}
			nodes[i] = NodeView{
				ID:      i,
				Healthy: src.Intn(6) != 0,
				Queued:  src.Intn(10),
				Boards:  boards,
			}
		}
		w := 1 + src.Intn(32)
		idx, _, ok := p.Place(JobView{Width: w}, nodes)
		if !ok {
			continue
		}
		if nodes[idx].Fits(w) {
			continue
		}
		for i, nv := range nodes {
			if i != idx && nv.Healthy && nv.Fits(w) {
				t.Fatalf("trial %d: packing put a %d-col strip on node %d (largest_free too small) while node %d fits",
					trial, w, idx, i)
			}
		}
	}
}
