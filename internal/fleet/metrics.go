package fleet

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Fleet-level Prometheus text exposition, alongside (not replacing)
// each node's serve metrics: every family here is fleet-scoped
// (vfpgad_fleet_*) so a scrape of the front-end never collides with a
// scrape of an individual daemon. Same determinism contract as the
// serve exposition: fixed series order, no wall-clock values.

// metricsWriter accumulates families in emission order. It mirrors the
// serve writer (the metricsonce analyzer keys on this type name and
// method set, so exposition hygiene is enforced here too).
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) family(name, help, typ string) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series writes one sample line. Labels come as ordered key/value pairs.
func (m *metricsWriter) series(name string, value string, kv ...string) {
	if m.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(kv) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, kv[i], escapeLabel(kv[i+1]))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, m.err = io.WriteString(m.w, b.String())
}

func (m *metricsWriter) int(name string, v int64, kv ...string) {
	m.series(name, strconv.FormatInt(v, 10), kv...)
}

// float renders with a fixed four decimal places so a fixed scenario
// stays byte-identical across platforms.
func (m *metricsWriter) float(name string, v float64, kv ...string) {
	m.series(name, strconv.FormatFloat(v, 'f', 4, 64), kv...)
}

// writeMetrics renders the fleet exposition.
func (s *Server) writeMetrics(w io.Writer) error {
	m := &metricsWriter{w: w}
	sched := s.sched

	m.family("vfpgad_fleet_info", "Fleet identification; value is always 1.", "gauge")
	m.series("vfpgad_fleet_info", "1", "version", s.version, "policy", sched.Policy())

	m.family("vfpgad_fleet_nodes", "Number of nodes in the fleet.", "gauge")
	m.int("vfpgad_fleet_nodes", int64(len(sched.Nodes())))

	m.family("vfpgad_fleet_draining", "1 while the fleet is draining, 0 otherwise.", "gauge")
	draining := int64(0)
	if sched.IsDraining() {
		draining = 1
	}
	m.int("vfpgad_fleet_draining", draining)

	// Fleet-wide admission and job outcomes, per tenant: the shared
	// budget domain, not any single node's.
	tenants := s.adm.Snapshot()
	m.family("vfpgad_fleet_admission_total", "Fleet-wide submissions by admission decision.", "counter")
	for _, t := range tenants {
		m.int("vfpgad_fleet_admission_total", t.Admitted, "tenant", t.Tenant, "decision", "admitted")
		m.int("vfpgad_fleet_admission_total", t.Throttled, "tenant", t.Tenant, "decision", "throttled")
		m.int("vfpgad_fleet_admission_total", t.QueueFull, "tenant", t.Tenant, "decision", "queue_full")
	}
	m.family("vfpgad_fleet_jobs_total", "Finished jobs fleet-wide by outcome.", "counter")
	for _, t := range tenants {
		m.int("vfpgad_fleet_jobs_total", t.Completed, "tenant", t.Tenant, "outcome", "completed")
		m.int("vfpgad_fleet_jobs_total", t.Failed, "tenant", t.Tenant, "outcome", "failed")
	}

	// Routing decisions.
	m.family("vfpgad_fleet_routed_total", "Accepted placements by policy and node.", "counter")
	routed := sched.Routed()
	for i, n := range routed {
		m.int("vfpgad_fleet_routed_total", n, "policy", sched.Policy(), "node", strconv.Itoa(i))
	}
	m.family("vfpgad_fleet_reroutes_total", "Placements made after a node-level casualty displaced the job.", "counter")
	m.int("vfpgad_fleet_reroutes_total", sched.RerouteCount())

	// Placement score summary (lower is better; the policy's own
	// scale). The _sum/_count series belong to the summary family per
	// the exposition format; their names are built from a variable so
	// the analyzer's declared-family check keys on the summary name.
	p50, p95, scoreSum, scoreCount := sched.ScoreStats()
	scoreFamily := "vfpgad_fleet_placement_score"
	m.family("vfpgad_fleet_placement_score", "Placement score of accepted placements (policy scale; lower is better).", "summary")
	m.float("vfpgad_fleet_placement_score", p50, "quantile", "0.5")
	m.float("vfpgad_fleet_placement_score", p95, "quantile", "0.95")
	m.float(scoreFamily+"_sum", scoreSum)
	m.int(scoreFamily+"_count", scoreCount)

	// Per-node health, pressure and fragmentation — the inputs the
	// packing policy scores against, exported so a dashboard can replay
	// its decisions.
	m.family("vfpgad_fleet_node_healthy", "1 while the node has at least one non-quarantined board.", "gauge")
	for _, n := range sched.Nodes() {
		v := n.View()
		healthy := int64(0)
		if v.Healthy {
			healthy = 1
		}
		m.int("vfpgad_fleet_node_healthy", healthy, "node", strconv.Itoa(n.ID()))
	}
	m.family("vfpgad_fleet_node_queue_depth", "Queued plus running jobs across the node's boards.", "gauge")
	for _, n := range sched.Nodes() {
		m.int("vfpgad_fleet_node_queue_depth", int64(n.View().Queued), "node", strconv.Itoa(n.ID()))
	}
	m.family("vfpgad_fleet_node_fragmentation", "External-fragmentation ratio of the node's merged board view.", "gauge")
	for _, n := range sched.Nodes() {
		var frag core.FragStats
		for _, f := range n.Pool().FragSnapshots() {
			frag.Merge(f)
		}
		m.float("vfpgad_fleet_node_fragmentation", frag.Ratio(), "node", strconv.Itoa(n.ID()))
	}
	m.family("vfpgad_fleet_node_largest_free_cols", "Widest contiguous free column extent across the node's boards.", "gauge")
	for _, n := range sched.Nodes() {
		var frag core.FragStats
		for _, f := range n.Pool().FragSnapshots() {
			frag.Merge(f)
		}
		m.int("vfpgad_fleet_node_largest_free_cols", int64(frag.LargestFree), "node", strconv.Itoa(n.ID()))
	}
	m.family("vfpgad_fleet_node_board_requeues_total", "Jobs the node moved between its own boards after a quarantine.", "counter")
	for _, n := range sched.Nodes() {
		m.int("vfpgad_fleet_node_board_requeues_total", n.Pool().RequeueCount(), "node", strconv.Itoa(n.ID()))
	}
	return m.err
}
