package fleet

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The policy bake-off: a pure virtual-time replay of the fleet in the
// strip-packing-with-delays formulation (Angermeier et al.). Jobs are
// rectangles — strip width × service duration — arriving in a Poisson
// stream; each node packs accepted rectangles onto its boards' region
// maps and queues the rest FIFO with head-of-line blocking. The same
// precomputed arrival stream is replayed against each policy, so the
// only difference between rows is the routing decision — and the whole
// run is deterministic: virtual clock, seeded streams, no goroutines.

// JobClass is one rectangle shape in the churn mix.
type JobClass struct {
	Name     string   `json:"name"`
	Width    int      `json:"width_cols"`
	Duration sim.Time `json:"duration_ns"`
	Weight   int      `json:"weight"`
}

// BakeoffConfig parameterizes one replay.
type BakeoffConfig struct {
	Nodes         int        `json:"nodes"`
	BoardsPerNode int        `json:"boards_per_node"`
	Cols          int        `json:"cols"`
	Jobs          int        `json:"jobs"`
	Seed          uint64     `json:"seed"`
	MeanInterval  sim.Time   `json:"mean_interval_ns"` // mean job inter-arrival time
	Classes       []JobClass `json:"classes"`
	// FailNode, when >= 0, fails that node at FailAt: its queued and
	// running jobs displace and re-route, and it accepts nothing after.
	FailNode int      `json:"fail_node"`
	FailAt   sim.Time `json:"fail_at_ns"`
}

func (c BakeoffConfig) validate() error {
	if c.Nodes <= 0 || c.BoardsPerNode <= 0 || c.Cols <= 0 || c.Jobs <= 0 {
		return fmt.Errorf("fleet: bakeoff needs nodes, boards, cols and jobs > 0")
	}
	if c.MeanInterval <= 0 {
		return fmt.Errorf("fleet: bakeoff needs a positive mean arrival interval")
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("fleet: bakeoff needs at least one job class")
	}
	for _, cl := range c.Classes {
		if cl.Width <= 0 || cl.Width > c.Cols {
			return fmt.Errorf("fleet: class %q width %d outside (0, %d]", cl.Name, cl.Width, c.Cols)
		}
		if cl.Duration <= 0 || cl.Weight <= 0 {
			return fmt.Errorf("fleet: class %q needs positive duration and weight", cl.Name)
		}
	}
	if c.FailNode >= c.Nodes {
		return fmt.Errorf("fleet: fail node %d outside the %d-node fleet", c.FailNode, c.Nodes)
	}
	return nil
}

// BakeoffRow is one policy's outcome over the replay.
type BakeoffRow struct {
	Policy string `json:"policy"`
	Jobs   int    `json:"jobs"`
	// Completed counts jobs that finished; with one failed node out of
	// several it equals Jobs (every displaced job re-routes).
	Completed int `json:"completed"`
	// HWUtil is sustained hardware utilization: occupied column-time
	// over provisioned column-time (all boards × makespan).
	HWUtil float64 `json:"hw_util"`
	// Admission latency: arrival → final start (virtual ms).
	P50AdmitMS float64 `json:"p50_admit_ms"`
	P99AdmitMS float64 `json:"p99_admit_ms"`
	// Requeues counts jobs displaced by the node failure.
	Requeues int64 `json:"requeues"`
	// MeanScore is the mean placement score the policy assigned.
	MeanScore  float64 `json:"mean_score"`
	MakespanMS float64 `json:"makespan_ms"`
}

// BakeoffRecord is the fleet section of BENCH_serve.json.
type BakeoffRecord struct {
	Config BakeoffConfig `json:"config"`
	Rows   []BakeoffRow  `json:"rows"`
}

// bakeJob is one rectangle moving through the replay.
type bakeJob struct {
	id      int
	class   int
	arrival sim.Time
	start   sim.Time
	span    *core.Span
	node    int
	board   int
	gen     int // bumped when displaced; stale completion events skip
	running bool
	done    bool
}

// bakeNode is one node's replay state.
type bakeNode struct {
	healthy bool
	boards  []*core.RegionMap
	queue   []*bakeJob
	running []*bakeJob // in start order
}

func (n *bakeNode) view(id int) NodeView {
	v := NodeView{ID: id, Healthy: n.healthy, Queued: len(n.queue) + len(n.running)}
	for _, rm := range n.boards {
		f := rm.Frag()
		v.Boards = append(v.Boards, BoardView{
			Cols: rm.Cols(), LargestFree: f.LargestFree, FragRatio: f.Ratio(),
			Quarantined: !n.healthy,
		})
	}
	return v
}

// Event kinds, processed in (time, seq) order.
const (
	evArrival = iota
	evComplete
	evFail
)

type bakeEvent struct {
	t    sim.Time
	seq  int64
	kind int
	job  *bakeJob
	node int
	gen  int
}

type eventHeap []bakeEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(bakeEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *eventHeap) push(ev bakeEvent) { heap.Push(h, ev) }

// bakeoffSim is one policy's replay.
type bakeoffSim struct {
	cfg      BakeoffConfig
	policy   PlacementPolicy
	jobs     []*bakeJob
	nodes    []*bakeNode
	events   eventHeap
	seq      int64
	now      sim.Time
	makespan sim.Time
	busyArea int64 // completed column-time
	waits    *stats.Sample
	scores   *stats.Sample
	requeues int64
	finished int
	lost     int
}

// RunBakeoff replays the configured job stream against one policy and
// returns its row. The arrival stream is a pure function of the config,
// so every policy sees byte-identical inputs.
func RunBakeoff(cfg BakeoffConfig, policyName string) (BakeoffRow, error) {
	if err := cfg.validate(); err != nil {
		return BakeoffRow{}, err
	}
	policy, err := NewPolicy(policyName, cfg.Seed)
	if err != nil {
		return BakeoffRow{}, err
	}
	s := &bakeoffSim{
		cfg:    cfg,
		policy: policy,
		waits:  stats.NewSample(true),
		scores: stats.NewSample(false),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &bakeNode{healthy: true}
		for b := 0; b < cfg.BoardsPerNode; b++ {
			n.boards = append(n.boards, core.NewRegionMap(cfg.Cols))
		}
		s.nodes = append(s.nodes, n)
	}

	// The arrival stream: Poisson arrivals over a weighted class mix,
	// identical for every policy.
	src := rng.New(cfg.Seed)
	totalWeight := 0
	for _, cl := range cfg.Classes {
		totalWeight += cl.Weight
	}
	t := sim.Time(0)
	for i := 0; i < cfg.Jobs; i++ {
		t += sim.Time(src.ExpFloat64() * float64(cfg.MeanInterval))
		pick := src.Intn(totalWeight)
		class := 0
		for ci, cl := range cfg.Classes {
			if pick < cl.Weight {
				class = ci
				break
			}
			pick -= cl.Weight
		}
		j := &bakeJob{id: i, class: class, arrival: t, node: -1}
		s.jobs = append(s.jobs, j)
		s.push(bakeEvent{t: t, kind: evArrival, job: j})
	}
	if cfg.FailNode >= 0 {
		s.push(bakeEvent{t: cfg.FailAt, kind: evFail, node: cfg.FailNode})
	}

	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(bakeEvent)
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			s.place(ev.job)
		case evComplete:
			s.complete(ev)
		case evFail:
			s.fail(ev.node)
		}
	}

	row := BakeoffRow{
		Policy:     policy.Name(),
		Jobs:       cfg.Jobs,
		Completed:  s.finished,
		P50AdmitMS: s.waits.Quantile(0.5) / 1e6,
		P99AdmitMS: s.waits.Quantile(0.99) / 1e6,
		Requeues:   s.requeues,
		MeanScore:  s.scores.Mean(),
		MakespanMS: float64(s.makespan) / 1e6,
	}
	if s.makespan > 0 {
		provisioned := float64(cfg.Nodes*cfg.BoardsPerNode*cfg.Cols) * float64(s.makespan)
		row.HWUtil = float64(s.busyArea) / provisioned
	}
	return row, nil
}

// RunBakeoffAll replays the stream against each named policy in order.
func RunBakeoffAll(cfg BakeoffConfig, policies []string) (*BakeoffRecord, error) {
	rec := &BakeoffRecord{Config: cfg}
	for _, name := range policies {
		row, err := RunBakeoff(cfg, name)
		if err != nil {
			return nil, err
		}
		rec.Rows = append(rec.Rows, row)
	}
	return rec, nil
}

func (s *bakeoffSim) push(ev bakeEvent) {
	s.seq++
	ev.seq = s.seq
	s.events.push(ev)
}

func (s *bakeoffSim) class(j *bakeJob) JobClass { return s.cfg.Classes[j.class] }

// place routes one job through the policy into a node queue. A job with
// no healthy node left is lost (only possible when every node failed).
func (s *bakeoffSim) place(j *bakeJob) {
	views := make([]NodeView, len(s.nodes))
	for i, n := range s.nodes {
		views[i] = n.view(i)
	}
	cl := s.class(j)
	idx, score, ok := s.policy.Place(JobView{Width: cl.Width}, views)
	if !ok {
		s.lost++
		return
	}
	s.scores.Observe(score)
	j.node = idx
	s.nodes[idx].queue = append(s.nodes[idx].queue, j)
	s.dispatch(idx)
}

// dispatch starts queued jobs on the node while its queue head fits on
// some board — FIFO with head-of-line blocking, the delay half of
// strip-packing with delays. Best fit across boards: the tightest
// adequate free span, ties to the lowest board id.
func (s *bakeoffSim) dispatch(ni int) {
	n := s.nodes[ni]
	if !n.healthy {
		return
	}
	for len(n.queue) > 0 {
		j := n.queue[0]
		cl := s.class(j)
		bestBoard := -1
		var bestSpan *core.Span
		for bi, rm := range n.boards {
			if sp := rm.FindFree(cl.Width, core.BestFit); sp != nil {
				if bestSpan == nil || sp.W < bestSpan.W {
					bestBoard, bestSpan = bi, sp
				}
			}
		}
		if bestBoard < 0 {
			return
		}
		n.queue = n.queue[1:]
		j.span = n.boards[bestBoard].Alloc(bestSpan, cl.Width, j)
		j.board = bestBoard
		j.start = s.now
		j.running = true
		n.running = append(n.running, j)
		s.push(bakeEvent{t: s.now + cl.Duration, kind: evComplete, job: j, gen: j.gen})
	}
}

func (s *bakeoffSim) complete(ev bakeEvent) {
	j := ev.job
	if ev.gen != j.gen || j.done {
		return // displaced before finishing; a re-routed run is in flight
	}
	n := s.nodes[j.node]
	n.boards[j.board].Release(j.span)
	for i, r := range n.running {
		if r == j {
			n.running = append(n.running[:i], n.running[i+1:]...)
			break
		}
	}
	cl := s.class(j)
	j.done, j.running = true, false
	s.finished++
	s.busyArea += int64(cl.Width) * int64(cl.Duration)
	s.waits.Observe(float64(j.start - j.arrival))
	if s.now > s.makespan {
		s.makespan = s.now
	}
	s.dispatch(j.node)
}

// fail takes a node out: queued jobs and running jobs displace (in
// queue order, then start order — deterministic) and re-route through
// the policy, which sees the node unhealthy. Work a running job had
// done is lost; it restarts from scratch elsewhere, charging the
// failure's true cost to the latency tail.
func (s *bakeoffSim) fail(ni int) {
	n := s.nodes[ni]
	if !n.healthy {
		return
	}
	n.healthy = false
	displaced := make([]*bakeJob, 0, len(n.queue)+len(n.running))
	displaced = append(displaced, n.queue...)
	n.queue = nil
	for _, j := range n.running {
		n.boards[j.board].Release(j.span)
		j.gen++ // invalidate the in-flight completion event
		j.running = false
		displaced = append(displaced, j)
	}
	n.running = nil
	for _, j := range displaced {
		s.requeues++
		s.place(j)
	}
}
