// Package fleet scales the serve layer out to many daemons: a Node
// wraps one serve.Pool of boards (so a single process can simulate a
// whole rack of vfpgad instances), and a Scheduler routes incoming jobs
// across nodes through a pluggable PlacementPolicy. In the paper's
// host-OS analogy each node is one virtual device manager; the fleet
// layer is the placement half of the operating system above them —
// jobs are rectangles (strip width × duration) and placement is
// strip-packing with delays (Angermeier et al.), scored against each
// node's live fragmentation view.
//
// The scheduler owns fleet-wide concerns the per-daemon serve layer
// cannot see: one shared admission budget per tenant (so Retry-After
// reflects the whole fleet's capacity), whole-node failure handling
// (an escalated node's jobs re-route to healthy nodes), and routing
// telemetry (vfpgad_fleet_* families, /v1/fleet).
package fleet

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// JobView is the placement-relevant shape of a job: the widest compiled
// strip it will configure (its rectangle width, in columns) and its
// tenant.
type JobView struct {
	Width  int
	Tenant string
}

// BoardView is one board's capacity snapshot inside a node view.
type BoardView struct {
	Cols        int
	LargestFree int     // widest contiguous free extent (FragStats.LargestFree)
	FragRatio   float64 // external-fragmentation ratio (FragStats.Ratio)
	Quarantined bool
}

// NodeView is what a placement policy sees of one node: health, queue
// pressure and per-board fragmentation.
type NodeView struct {
	ID      int
	Healthy bool // at least one non-quarantined board, not draining
	Queued  int  // queued plus running jobs across the node's boards
	Boards  []BoardView
}

// Fits reports whether any healthy board of the node currently shows a
// contiguous free extent at least w columns wide.
func (v NodeView) Fits(w int) bool {
	for _, b := range v.Boards {
		if !b.Quarantined && b.LargestFree >= w {
			return true
		}
	}
	return false
}

// PlacementPolicy picks a node for a job given the fleet view.
// Implementations must be safe for concurrent use and deterministic
// given their construction seed and call sequence — the bake-off
// replays identical job streams through each policy and byte-compares
// the outcome.
type PlacementPolicy interface {
	Name() string
	// Place returns the index into nodes of the chosen node and the
	// score it assigned (lower is better; recorded for telemetry). ok
	// is false when no healthy node exists.
	Place(job JobView, nodes []NodeView) (idx int, score float64, ok bool)
}

// PolicyNames lists the built-in policies in presentation order.
var PolicyNames = []string{"firstfit", "packing", "random"}

// NewPolicy builds a built-in policy by name. seed only matters for
// "random".
func NewPolicy(name string, seed uint64) (PlacementPolicy, error) {
	switch name {
	case "firstfit":
		return firstFit{}, nil
	case "packing":
		return packing{}, nil
	case "random":
		return newRandomPolicy(seed), nil
	}
	return nil, fmt.Errorf("fleet: unknown placement policy %q (have %v)", name, PolicyNames)
}

// nonFitPenalty separates the two scoring tiers: any node with a wide
// enough free extent always scores below every node without one, so a
// policy never queues a job onto a node that cannot currently hold it
// while a fitting alternative exists.
const nonFitPenalty = 1e3

// firstFit takes the first healthy node whose boards currently fit the
// job, falling back to the least-queued healthy node — the Tetris
// player who always drops the piece at the leftmost spot.
type firstFit struct{}

func (firstFit) Name() string { return "firstfit" }

func (firstFit) Place(job JobView, nodes []NodeView) (int, float64, bool) {
	for i, n := range nodes {
		if n.Healthy && n.Fits(job.Width) {
			return i, float64(n.Queued), true
		}
	}
	best, bestQ := -1, 0
	for i, n := range nodes {
		if !n.Healthy {
			continue
		}
		if best < 0 || n.Queued < bestQ {
			best, bestQ = i, n.Queued
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, nonFitPenalty + float64(bestQ), true
}

// packing scores every healthy node by strip-packing fit: among nodes
// whose boards can hold the strip now, it minimizes queue pressure
// first, then the leftover of the tightest fitting extent (best fit)
// and the node's fragmentation ratio — so wide jobs go where wide holes
// are, narrow jobs avoid breaking them up, and load still spreads.
// Nodes that cannot currently fit the strip only ever score in the
// penalty tier.
type packing struct{}

func (packing) Name() string { return "packing" }

// packingScore is exported to the bake-off and property tests through
// Place; weights: a queued job costs a full point (it delays the strip
// by roughly one service time), leftover and fragmentation are
// tie-breakers within one queue level.
func (packing) score(job JobView, n NodeView) (float64, bool) {
	fits := false
	bestGap := 0.0
	var frag float64
	cols := 0
	for _, b := range n.Boards {
		if b.Quarantined {
			continue
		}
		if b.Cols > cols {
			cols = b.Cols
		}
		if b.LargestFree >= job.Width {
			gap := float64(b.LargestFree-job.Width) / float64(b.Cols)
			if !fits || gap < bestGap {
				bestGap = gap
			}
			fits = true
		}
		if b.FragRatio > frag {
			frag = b.FragRatio
		}
	}
	if !fits {
		return nonFitPenalty + float64(n.Queued), false
	}
	return float64(n.Queued) + 0.5*bestGap + 0.25*frag, true
}

func (p packing) Place(job JobView, nodes []NodeView) (int, float64, bool) {
	best, bestScore := -1, 0.0
	for i, n := range nodes {
		if !n.Healthy {
			continue
		}
		s, _ := p.score(job, n)
		if best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestScore, true
}

// randomPolicy is the control: a uniform pick among healthy nodes,
// blind to fit, fragmentation and queue depth.
type randomPolicy struct {
	mu  sync.Mutex
	src *rng.Source
}

func newRandomPolicy(seed uint64) *randomPolicy {
	return &randomPolicy{src: rng.New(seed)}
}

func (r *randomPolicy) Name() string { return "random" }

func (r *randomPolicy) Place(job JobView, nodes []NodeView) (int, float64, bool) {
	healthy := make([]int, 0, len(nodes))
	for i, n := range nodes {
		if n.Healthy {
			healthy = append(healthy, i)
		}
	}
	if len(healthy) == 0 {
		return 0, 0, false
	}
	r.mu.Lock()
	idx := healthy[r.src.Intn(len(healthy))]
	r.mu.Unlock()
	score := float64(nodes[idx].Queued)
	if !nodes[idx].Fits(job.Width) {
		score += nonFitPenalty
	}
	return idx, score, true
}
