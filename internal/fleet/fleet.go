package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/compile"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Routing errors mapped to HTTP statuses by the fleet server layer.
var (
	// ErrNoSuchNode rejects a pin to a node id outside the fleet (400).
	ErrNoSuchNode = errors.New("fleet: no such node")
	// ErrNoHealthyNode means every node is unhealthy or excluded (503).
	ErrNoHealthyNode = errors.New("fleet: no healthy node")
)

// Node is one simulated vfpgad: a serve.Pool of boards with an id in
// the fleet. Nodes share nothing but the concurrency-safe compile
// cache and the fleet-wide admission sink handed in through opts.
type Node struct {
	id   int
	cfgs []serve.BoardConfig
	pool *serve.Pool
}

// NewNode builds a node over the given boards.
func NewNode(id int, cfgs []serve.BoardConfig, opts serve.PoolOptions) (*Node, error) {
	p, err := serve.NewPool(cfgs, opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: node %d: %w", id, err)
	}
	return &Node{id: id, cfgs: append([]serve.BoardConfig(nil), cfgs...), pool: p}, nil
}

// ID returns the node's fleet id.
func (n *Node) ID() int { return n.id }

// Pool returns the node's board pool.
func (n *Node) Pool() *serve.Pool { return n.pool }

// View snapshots the node for placement: health, queue pressure and
// per-board fragmentation. A node is healthy while at least one board
// is not quarantined and the pool is not draining.
func (n *Node) View() NodeView {
	v := NodeView{ID: n.id}
	for _, bi := range n.pool.BoardInfos() {
		v.Boards = append(v.Boards, BoardView{
			Cols: bi.Cols, LargestFree: bi.LargestFreeCols,
			FragRatio: bi.Fragmentation, Quarantined: bi.Quarantined,
		})
		if !bi.Quarantined {
			v.Healthy = true
		}
		v.Queued += bi.QueueDepth
		if bi.State == "busy" {
			v.Queued++
		}
	}
	if n.pool.IsDraining() {
		v.Healthy = false
	}
	return v
}

// Job is one unit of work moving through the fleet: a serve job plus
// the routing envelope around it. The scheduler re-submits it to
// another node when a node-level casualty kills an attempt, so the
// inner serve.Job may change over the fleet job's lifetime.
type Job struct {
	id       string
	tenant   string
	spec     *workload.Spec
	trace    bool
	width    int
	pinNode  *int
	pinBoard *int
	ctx      context.Context
	cancel   context.CancelFunc
	// done is created at construction and closed exactly once in
	// finish; waiting on it needs no lock.
	done chan struct{}

	mu       sync.Mutex
	node     int
	attempts int
	excluded []bool // nodes already tried (queue-full or casualty)
	inner    *serve.Job
	final    *serve.JobStatus
}

// ID returns the fleet-assigned job id.
func (j *Job) ID() string { return j.id }

// Done is closed when the fleet job reaches a terminal state — after
// every re-route attempt, not just the first board's verdict.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the fleet job's context; the current attempt's derived
// context cancels with it.
func (j *Job) Cancel() { j.cancel() }

// JobStatus is a fleet job's status: the serve status plus the node it
// is (or last was) routed to and how many placements it took.
type JobStatus struct {
	serve.JobStatus
	Node     int `json:"node"`
	Attempts int `json:"attempts"`
}

// Status reports the fleet job. While the scheduler is between a failed
// attempt and its re-route the job reads as queued — clients never see
// a transient failure that the fleet is about to absorb.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	var st serve.JobStatus
	if j.final != nil {
		st = *j.final
	} else {
		st = j.inner.Status()
		if st.State == serve.StateFailed {
			st.State = serve.StateQueued
		}
	}
	st.ID = j.id
	return JobStatus{JobStatus: st, Node: j.node, Attempts: j.attempts}
}

// view returns the job's placement shape.
func (j *Job) view() JobView { return JobView{Width: j.width, Tenant: j.tenant} }

func (j *Job) setAttempt(node int, inner *serve.Job) {
	j.mu.Lock()
	j.node = node
	j.attempts++
	j.inner = inner
	j.mu.Unlock()
}

func (j *Job) currentInner() *serve.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.inner
}

func (j *Job) exclude(node int) {
	j.mu.Lock()
	j.excluded[node] = true
	j.mu.Unlock()
}

func (j *Job) excludedCopy() []bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]bool(nil), j.excluded...)
}

func (j *Job) finish(st serve.JobStatus) {
	j.mu.Lock()
	j.final = &st
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// Scheduler routes jobs across the fleet's nodes through a placement
// policy, owns the fleet-wide job table, and absorbs whole-node
// failures: when a node's casualty kills an attempt, the job re-routes
// to a healthy node it has not tried yet.
type Scheduler struct {
	// nodes, policy, cache and geom are set at construction and never
	// reassigned; wg is self-synchronized. All sit above mu, which
	// guards the fields below it.
	nodes  []*Node
	policy PlacementPolicy
	cache  *compile.StripCache
	geom   serve.BoardConfig // geometry for placement-width compiles
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int64
	routed   []int64 // accepted placements per node
	reroutes int64   // placements after a node-level casualty
	scores   *stats.Sample
	draining bool
}

// NewScheduler builds a scheduler over the nodes. cache should be the
// same strip cache the nodes' pools share (placement widths then come
// from the cache the jobs will hit); nil builds a private one.
func NewScheduler(nodes []*Node, policy PlacementPolicy, cache *compile.StripCache) (*Scheduler, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: a scheduler needs at least one node")
	}
	if policy == nil {
		return nil, fmt.Errorf("fleet: a scheduler needs a placement policy")
	}
	if cache == nil {
		cache = compile.NewStripCache(compile.DefaultCacheCapacity)
	}
	return &Scheduler{
		nodes:  nodes,
		policy: policy,
		cache:  cache,
		geom:   nodes[0].cfgs[0],
		jobs:   map[string]*Job{},
		routed: make([]int64, len(nodes)),
		scores: stats.NewSample(true),
	}, nil
}

// Nodes returns the fleet's nodes.
func (s *Scheduler) Nodes() []*Node { return s.nodes }

// Policy returns the active placement policy's name.
func (s *Scheduler) Policy() string { return s.policy.Name() }

// Start launches every node's board workers.
func (s *Scheduler) Start() {
	for _, n := range s.nodes {
		n.pool.Start()
	}
}

// Drain stops intake, drains every node concurrently, and waits for
// all routing watchers to finish. Safe to call more than once.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range s.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			n.pool.Drain()
		}(n)
	}
	wg.Wait()
	s.wg.Wait()
}

// IsDraining reports whether Drain has begun.
func (s *Scheduler) IsDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Request describes one submission into the fleet.
type Request struct {
	Tenant string
	Spec   *workload.Spec
	Trace  bool
	// Node pins the job to one node; nil lets the policy route it.
	Node *int
	// Board pins the job to one board of the routed (or pinned) node.
	Board *int
	// Ctx/Cancel bound the job's lifetime, as in serve.SubmitArgs.
	Ctx    context.Context
	Cancel context.CancelFunc
}

// Submit routes a job into the fleet and returns it. The admission
// decision is the server layer's; by the time Submit runs the job is
// admitted fleet-wide.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	width, err := serve.SpecWidth(s.cache, s.geom, req.Spec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := req.Ctx, req.Cancel
	if ctx == nil {
		ctx = context.Background()
	}
	if cancel == nil {
		ctx, cancel = context.WithCancel(ctx)
	}
	j := &Job{
		tenant: req.Tenant, spec: req.Spec, trace: req.Trace,
		width: width, pinNode: req.Node, pinBoard: req.Board,
		ctx: ctx, cancel: cancel,
		node: -1, excluded: make([]bool, len(s.nodes)),
		done: make(chan struct{}),
	}
	// Registration, the draining check and the watcher Add share one
	// critical section with Drain setting the flag, so a watcher is
	// never added after Drain's Wait has begun.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, serve.ErrDraining
	}
	s.seq++
	j.id = fmt.Sprintf("f%06d", s.seq)
	s.jobs[j.id] = j
	s.wg.Add(1)
	s.mu.Unlock()

	if err := s.place(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.wg.Done()
		cancel()
		return nil, err
	}
	go s.watch(j)
	return j, nil
}

// Job returns the fleet job by id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// place routes one attempt of j: policy choice, then submission into
// the chosen node's pool. A node that rejects the attempt with
// backpressure (queue full) or total board loss is excluded and the
// policy consulted again, so one hot or dead node never wedges intake
// while an alternative exists.
func (s *Scheduler) place(j *Job) error {
	if j.pinNode != nil {
		idx := *j.pinNode
		if idx < 0 || idx >= len(s.nodes) {
			return fmt.Errorf("%w: %d", ErrNoSuchNode, idx)
		}
		return s.placeOn(j, idx, 0)
	}
	for attempt := 0; attempt < len(s.nodes); attempt++ {
		views := s.views(j.excludedCopy())
		idx, score, ok := s.policy.Place(j.view(), views)
		if !ok {
			return ErrNoHealthyNode
		}
		err := s.placeOn(j, idx, score)
		if errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrNoHealthyBoard) {
			j.exclude(idx)
			continue
		}
		return err
	}
	return serve.ErrQueueFull
}

// placeOn submits one attempt to a specific node. Each attempt gets its
// own context derived from the fleet job's: the pool cancels it when
// the attempt finishes, which must not cancel a later attempt.
func (s *Scheduler) placeOn(j *Job, idx int, score float64) error {
	actx, acancel := context.WithCancel(j.ctx)
	inner, err := s.nodes[idx].pool.Submit(serve.SubmitArgs{
		Tenant: j.tenant, Spec: j.spec, Trace: j.trace,
		Board: j.pinBoard, Ctx: actx, Cancel: acancel,
	})
	if err != nil {
		return err
	}
	j.setAttempt(idx, inner)
	s.mu.Lock()
	s.routed[idx]++
	s.scores.Observe(score)
	s.mu.Unlock()
	return nil
}

// views snapshots every node, marking excluded ones unhealthy so the
// policy routes around them.
func (s *Scheduler) views(excluded []bool) []NodeView {
	views := make([]NodeView, len(s.nodes))
	for i, n := range s.nodes {
		views[i] = n.View()
		if i < len(excluded) && excluded[i] {
			views[i].Healthy = false
		}
	}
	return views
}

// watch follows one fleet job across attempts. The serve pool already
// absorbs board-level quarantines by requeueing inside the node; what
// reaches the fleet as a typed fault failure means the whole node is
// out of healthy boards — PR 5's quarantine/requeue generalized one
// level up: the job re-routes to a node it has not tried, and only
// fails when the fleet is out of nodes. Untyped failures (the job
// itself is broken) fail in place, as do node-pinned jobs.
func (s *Scheduler) watch(j *Job) {
	defer s.wg.Done()
	for {
		inner := j.currentInner()
		<-inner.Done()
		st := inner.Status()
		if st.State == serve.StateDone || st.FaultKind == "" || j.pinNode != nil {
			j.finish(st)
			return
		}
		j.mu.Lock()
		failedNode := j.node
		j.mu.Unlock()
		j.exclude(failedNode)
		s.mu.Lock()
		s.reroutes++
		s.mu.Unlock()
		if err := s.place(j); err != nil {
			st.Error = fmt.Sprintf("%s (re-route: %v)", st.Error, err)
			j.finish(st)
			return
		}
	}
}

// Routed returns accepted placements per node.
func (s *Scheduler) Routed() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.routed...)
}

// RerouteCount reports placements made after a node-level casualty.
func (s *Scheduler) RerouteCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reroutes
}

// ScoreStats summarizes the placement scores the policy assigned to
// accepted placements.
func (s *Scheduler) ScoreStats() (p50, p95, sum float64, count int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scores.Quantile(0.5), s.scores.Quantile(0.95), s.scores.Sum(), s.scores.Count()
}
