package fleet

// Fleet server tests: the HTTP surface over a 3-node fleet, the shared
// fleet-wide admission domain, and node-level casualty re-routing.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/workload"
)

// testClock is a hand-advanced admission clock.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// newTestFleet builds a started nodes×boards fleet of small dynamic
// boards; the cleanup drains it.
func newTestFleet(t *testing.T, cfg ServerConfig, nodes, boardsPer int) *Server {
	t.Helper()
	if cfg.Nodes == nil {
		for i := 0; i < nodes; i++ {
			row := make([]serve.BoardConfig, boardsPer)
			for k := range row {
				row[k] = serve.DefaultBoardConfig()
			}
			cfg.Nodes = append(cfg.Nodes, row)
		}
	}
	if cfg.Policy == "" {
		cfg.Policy = "firstfit"
	}
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	if cfg.FaultNode == 0 && cfg.Faults == nil {
		cfg.FaultNode = -1
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Drain)
	return s
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func submitBody(t *testing.T, tenant, scenario string) string {
	t.Helper()
	spec, err := workload.BuiltinSpec(scenario)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(serve.SubmitRequest{Tenant: tenant, Workload: spec})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// submitWait submits one job and waits for its terminal state.
func submitWait(t *testing.T, s *Server, tenant, scenario string) JobStatus {
	t.Helper()
	rec := do(t, s, "POST", "/v1/jobs", submitBody(t, tenant, scenario))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202 (body %s)", rec.Code, rec.Body)
	}
	var resp serve.SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Scheduler().Job(resp.ID)
	if !ok {
		t.Fatalf("job %s not registered", resp.ID)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", resp.ID)
	}
	return j.Status()
}

func TestFleetSubmitRoutesAndCompletes(t *testing.T) {
	s := newTestFleet(t, ServerConfig{}, 3, 2)
	for i := 0; i < 4; i++ {
		st := submitWait(t, s, "acme", "multimedia")
		if st.State != serve.StateDone {
			t.Fatalf("job %s: state %q (error %q)", st.ID, st.State, st.Error)
		}
		if st.Node < 0 || st.Node > 2 || st.Attempts != 1 {
			t.Fatalf("job %s: node %d attempts %d", st.ID, st.Node, st.Attempts)
		}
		// The job endpoint reports the fleet id and routed node.
		rec := do(t, s, "GET", "/v1/jobs/"+st.ID, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: %d", rec.Code)
		}
		var got JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != st.ID || got.Node != st.Node {
			t.Fatalf("GET job = %+v, want id %s node %d", got, st.ID, st.Node)
		}
	}

	// /v1/fleet accounts for every placement.
	var info Info
	if err := json.Unmarshal(do(t, s, "GET", "/v1/fleet", "").Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Policy != "firstfit" || info.Placements != 4 || info.Reroutes != 0 {
		t.Fatalf("fleet info = %+v", info)
	}
	if len(info.Nodes) != 3 {
		t.Fatalf("fleet info has %d nodes", len(info.Nodes))
	}
	var routed int64
	for _, n := range info.Nodes {
		routed += n.Routed
		if !n.Healthy {
			t.Fatalf("node %d unhealthy: %+v", n.ID, n)
		}
		if n.Frag.Cols == 0 || len(n.Boards) != 2 {
			t.Fatalf("node %d view incomplete: %+v", n.ID, n)
		}
	}
	if routed != 4 {
		t.Fatalf("routed %d, want 4", routed)
	}

	// /v1/boards flattens the fleet with node attribution.
	var boards []BoardInfo
	if err := json.Unmarshal(do(t, s, "GET", "/v1/boards", "").Body.Bytes(), &boards); err != nil {
		t.Fatal(err)
	}
	if len(boards) != 6 {
		t.Fatalf("boards: %d, want 6", len(boards))
	}

	// /healthz reports the fleet shape.
	var h serve.Health
	if err := json.Unmarshal(do(t, s, "GET", "/healthz", "").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Nodes != 3 || h.Boards != 6 || h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

func TestFleetRejectsBadPins(t *testing.T) {
	s := newTestFleet(t, ServerConfig{}, 2, 1)
	spec, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	nine, zero := 9, 0
	b, _ := json.Marshal(serve.SubmitRequest{Tenant: "acme", Workload: spec, Node: &nine})
	if rec := do(t, s, "POST", "/v1/jobs", string(b)); rec.Code != http.StatusBadRequest {
		t.Fatalf("node pin outside fleet: got %d, want 400", rec.Code)
	}
	b, _ = json.Marshal(serve.SubmitRequest{Tenant: "acme", Workload: spec, Board: &zero})
	if rec := do(t, s, "POST", "/v1/jobs", string(b)); rec.Code != http.StatusBadRequest {
		t.Fatalf("board pin without node pin: got %d, want 400", rec.Code)
	}
}

// TestFleetSharedAdmission is the Retry-After satellite: one admission
// domain spans the fleet, so a tenant's budget does not multiply with
// node count, and a 429's Retry-After reflects the earliest token of
// that single fleet-wide bucket.
func TestFleetSharedAdmission(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	s := newTestFleet(t, ServerConfig{
		Tenant: serve.TenantLimits{Rate: 0.5, Burst: 2},
		Now:    clock.now,
	}, 3, 1)

	// Burst of 2 admits fleet-wide — not 2 per node.
	for i := 0; i < 2; i++ {
		if st := submitWait(t, s, "acme", "multimedia"); st.State != serve.StateDone {
			t.Fatalf("burst job %d: %q (%s)", i, st.State, st.Error)
		}
	}
	rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "acme", "multimedia"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third burst submit: got %d, want 429 (3 nodes must not triple the budget)", rec.Code)
	}
	// At 0.5 tokens/s the next token is 2s out; the hint must say so
	// (rounded up), not 0 or a per-node figure.
	if ra := rec.Result().Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	// Waiting out the hint readmits.
	clock.advance(2 * time.Second)
	if st := submitWait(t, s, "acme", "multimedia"); st.State != serve.StateDone {
		t.Fatalf("post-wait job: %q (%s)", st.State, st.Error)
	}
	// Another tenant has its own fleet-wide bucket.
	if st := submitWait(t, s, "rival", "multimedia"); st.State != serve.StateDone {
		t.Fatalf("rival tenant: %q (%s)", st.State, st.Error)
	}
}

// TestFleetNodeCasualtyReroutes generalizes PR 5's board quarantine one
// level up: a node whose boards all escalate drains out of the rotation
// and its jobs re-route to healthy nodes, finishing with no client-visible
// failure.
func TestFleetNodeCasualtyReroutes(t *testing.T) {
	plan, err := fault.ParseSpec("seed=1,retries=0,config-error@1")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestFleet(t, ServerConfig{
		Faults:    &plan,
		FaultNode: 0, // only node 0's boards are armed
	}, 3, 2)

	// firstfit sends the first job to node 0. Its attempt escalates,
	// quarantining the board; the pool's own requeue hands it to the
	// sibling board, which also escalates — so one job takes the whole
	// node out before the fleet sees a single typed failure and
	// re-routes it. Later jobs route straight past the dead node.
	for i := 0; i < 4; i++ {
		st := submitWait(t, s, "acme", "multimedia")
		if st.State != serve.StateDone {
			t.Fatalf("job %d: %q (error %q, fault %q)", i, st.State, st.Error, st.FaultKind)
		}
	}

	var info Info
	if err := json.Unmarshal(do(t, s, "GET", "/v1/fleet", "").Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes[0].Healthy {
		t.Fatalf("node 0 still healthy after both boards escalated: %+v", info.Nodes[0])
	}
	if info.Reroutes != 1 {
		t.Fatalf("reroutes = %d, want 1 (node 0's casualty displaced one job)", info.Reroutes)
	}
	for _, n := range info.Nodes[1:] {
		if !n.Healthy {
			t.Fatalf("unarmed node %d went unhealthy", n.ID)
		}
	}

	// With node 0 out, new jobs route straight to healthy nodes.
	st := submitWait(t, s, "acme", "multimedia")
	if st.State != serve.StateDone || st.Node == 0 || st.Attempts != 1 {
		t.Fatalf("post-casualty job: %+v", st)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	s := newTestFleet(t, ServerConfig{Policy: "packing"}, 2, 1)
	if st := submitWait(t, s, "acme", "multimedia"); st.State != serve.StateDone {
		t.Fatalf("job: %q (%s)", st.State, st.Error)
	}
	body := do(t, s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"# TYPE vfpgad_fleet_info gauge",
		`vfpgad_fleet_info{version="test",policy="packing"} 1`,
		"vfpgad_fleet_nodes 2",
		`vfpgad_fleet_routed_total{policy="packing",node="0"}`,
		`vfpgad_fleet_routed_total{policy="packing",node="1"}`,
		"# TYPE vfpgad_fleet_placement_score summary",
		"vfpgad_fleet_placement_score_count 1",
		`vfpgad_fleet_node_fragmentation{node="0"}`,
		`vfpgad_fleet_node_largest_free_cols{node="1"}`,
		`vfpgad_fleet_admission_total{tenant="acme",decision="admitted"} 1`,
		`vfpgad_fleet_jobs_total{tenant="acme",outcome="completed"} 1`,
		"vfpgad_fleet_reroutes_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestFleetDrainRejectsNewWork(t *testing.T) {
	s := newTestFleet(t, ServerConfig{}, 2, 1)
	if st := submitWait(t, s, "acme", "multimedia"); st.State != serve.StateDone {
		t.Fatalf("job: %q", st.State)
	}
	s.Drain()
	rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "acme", "multimedia"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %d, want 503", rec.Code)
	}
	var h serve.Health
	if err := json.Unmarshal(do(t, s, "GET", "/healthz", "").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health status %q, want draining", h.Status)
	}
}
