package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func testBakeoffConfig(jobs int) BakeoffConfig {
	return BakeoffConfig{
		Nodes: 3, BoardsPerNode: 2, Cols: 24,
		Jobs: jobs, Seed: 42,
		MeanInterval: 40 * sim.Microsecond,
		Classes: []JobClass{
			{Name: "narrow", Width: 4, Duration: 300 * sim.Microsecond, Weight: 5},
			{Name: "medium", Width: 9, Duration: 500 * sim.Microsecond, Weight: 3},
			{Name: "wide", Width: 18, Duration: 800 * sim.Microsecond, Weight: 2},
		},
		FailNode: 1, FailAt: 5 * sim.Millisecond,
	}
}

func TestBakeoffDeterministic(t *testing.T) {
	cfg := testBakeoffConfig(800)
	a, err := RunBakeoffAll(cfg, PolicyNames)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBakeoffAll(cfg, PolicyNames)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replay not byte-identical:\n%s\n%s", ja, jb)
	}
}

func TestBakeoffCompletesEveryJob(t *testing.T) {
	cfg := testBakeoffConfig(600)
	rec, err := RunBakeoffAll(cfg, PolicyNames)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rec.Rows {
		if row.Completed != cfg.Jobs {
			t.Errorf("%s: completed %d of %d — displaced jobs lost", row.Policy, row.Completed, cfg.Jobs)
		}
		if row.Requeues == 0 {
			t.Errorf("%s: node %d failed at %v but no job was displaced", row.Policy, cfg.FailNode, cfg.FailAt)
		}
		if row.HWUtil <= 0 || row.HWUtil > 1 {
			t.Errorf("%s: hw_util %v outside (0, 1]", row.Policy, row.HWUtil)
		}
	}
}

func TestBakeoffValidates(t *testing.T) {
	bad := []BakeoffConfig{
		{},
		{Nodes: 1, BoardsPerNode: 1, Cols: 8, Jobs: 1, MeanInterval: 1,
			Classes: []JobClass{{Name: "x", Width: 9, Duration: 1, Weight: 1}}, FailNode: -1}, // wider than board
		{Nodes: 1, BoardsPerNode: 1, Cols: 8, Jobs: 1, MeanInterval: 1,
			Classes: []JobClass{{Name: "x", Width: 4, Duration: 1, Weight: 1}}, FailNode: 3}, // fail node outside fleet
	}
	for i, cfg := range bad {
		if _, err := RunBakeoff(cfg, "firstfit"); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := RunBakeoff(testBakeoffConfig(10), "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}
