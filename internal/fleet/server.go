package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ServerConfig parameterizes a fleet Server.
type ServerConfig struct {
	// Nodes describes the fleet: one board-config slice per node; at
	// least one node with at least one board is required.
	Nodes [][]serve.BoardConfig
	// Policy names the placement policy (see PolicyNames).
	Policy string
	// Seed feeds the random placement policy; other policies ignore it.
	Seed uint64
	// Tenant is the fleet-wide per-tenant admission limit: one shared
	// token bucket per tenant across every node, so a tenant throttled
	// here is out of budget on the whole fleet — never told to wait
	// while another node still has tokens.
	Tenant serve.TenantLimits
	// Version is reported by /healthz and /metrics.
	Version string
	// Now is the admission clock; nil means time.Now.
	Now func() time.Time
	// Faults arms boards with campaigns derived from this plan (board
	// k of node n gets Derive(n*perNode+k), fleet-wide unique). Nil
	// means no injection.
	Faults *fault.Plan
	// FaultNode, when >= 0, restricts the campaign to that node's
	// boards — the smoke uses it to take exactly one node out
	// deterministically. < 0 arms every node.
	FaultNode int
	// CompactWatermark / CompactBudget configure idle-cycle defrag on
	// every node's boards (see serve.Config).
	CompactWatermark float64
	CompactBudget    sim.Time
}

// Server is the fleet front-end: scheduler + fleet-wide admission +
// HTTP handlers. The API is wire-compatible with a single vfpgad (same
// endpoints and bodies) plus GET /v1/fleet for routing inspection.
type Server struct {
	sched   *Scheduler
	adm     *serve.Admission
	version string
	mux     *http.ServeMux
}

// NewServer builds the fleet server and its nodes. All nodes share one
// strip-compile cache and one admission domain.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: a fleet needs at least one node")
	}
	policy, err := NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	adm := serve.NewAdmission(cfg.Tenant, cfg.Now)
	cache := compile.NewStripCache(compile.DefaultCacheCapacity)
	nodes := make([]*Node, 0, len(cfg.Nodes))
	boardSeq := 0
	for i, bcfgs := range cfg.Nodes {
		boards := append([]serve.BoardConfig(nil), bcfgs...)
		for k := range boards {
			if cfg.Faults != nil && boards[k].Faults == nil && (cfg.FaultNode < 0 || cfg.FaultNode == i) {
				plan := cfg.Faults.Derive(uint64(boardSeq + k))
				boards[k].Faults = &plan
			}
		}
		boardSeq += len(boards)
		n, err := NewNode(i, boards, serve.PoolOptions{
			Outcomes:         adm,
			Cache:            cache,
			CompactWatermark: cfg.CompactWatermark,
			CompactBudget:    cfg.CompactBudget,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	sched, err := NewScheduler(nodes, policy, cache)
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched, adm: adm, version: cfg.Version}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/boards", s.handleBoards)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler returns the fleet scheduler.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Start launches every node's board workers.
func (s *Server) Start() { s.sched.Start() }

// Drain stops intake and blocks until every accepted job has finished
// on every node.
func (s *Server) Drain() { s.sched.Drain() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, serve.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "tenant is required")
		return
	}
	if err := req.Workload.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad workload: %v", err)
		return
	}
	if req.Board != nil && req.Node == nil {
		writeError(w, http.StatusBadRequest, "board pinning in a fleet requires a node pin too")
		return
	}

	// One admission decision for the whole fleet: the bucket is shared
	// across nodes, so a 429's Retry-After is the earliest token
	// fleet-wide — not the local bucket of whichever node would have
	// taken the job.
	if ok, retry := s.adm.Allow(req.Tenant); !ok {
		secs := int(retry / time.Second)
		if retry%time.Second != 0 || secs == 0 {
			secs++ // round up: retrying earlier than the hint just throttles again
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "tenant %q over admission rate", req.Tenant)
		return
	}

	// The job's context outlives the HTTP request: it governs the job's
	// whole lifetime, so a deadline set here still fires while queued.
	ctx, cancel := context.WithCancel(context.Background())
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	spec := req.Workload
	j, err := s.sched.Submit(Request{
		Tenant: req.Tenant, Spec: &spec, Trace: req.Trace,
		Node: req.Node, Board: req.Board,
		Ctx: ctx, Cancel: cancel,
	})
	switch {
	case errors.Is(err, serve.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	case errors.Is(err, ErrNoSuchNode), errors.Is(err, serve.ErrNoSuchBoard):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, serve.ErrBoardQuarantined):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, ErrNoHealthyNode), errors.Is(err, serve.ErrNoHealthyBoard):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, serve.ErrQueueFull):
		s.adm.NoteQueueFull(req.Tenant)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "every node's board queues are full")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := j.Status()
	writeJSON(w, http.StatusAccepted, serve.SubmitResponse{ID: j.ID(), Board: st.Board, Node: st.Node})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// BoardInfo is one entry of a fleet's GET /v1/boards: the node's board
// info plus which node it belongs to. Single-daemon clients that decode
// []serve.BoardInfo keep working — the extra key is ignored.
type BoardInfo struct {
	serve.BoardInfo
	Node int `json:"node"`
}

func (s *Server) handleBoards(w http.ResponseWriter, r *http.Request) {
	var infos []BoardInfo
	for _, n := range s.sched.Nodes() {
		for _, bi := range n.Pool().BoardInfos() {
			infos = append(infos, BoardInfo{BoardInfo: bi, Node: n.ID()})
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

// NodeInfo is one node's entry of GET /v1/fleet.
type NodeInfo struct {
	ID      int  `json:"id"`
	Healthy bool `json:"healthy"`
	Queued  int  `json:"queued"`
	// Routed counts placements accepted by this node.
	Routed int64 `json:"routed"`
	// BoardRequeues counts jobs the node moved between its own boards
	// after a board quarantine (node-internal; fleet-level re-routes are
	// in Info.Reroutes).
	BoardRequeues int64 `json:"board_requeues"`
	// Frag is the node's merged fragmentation view across boards — the
	// stats the packing policy scores against.
	Frag   core.FragStats    `json:"frag"`
	Boards []serve.BoardInfo `json:"boards"`
}

// Info is the body of GET /v1/fleet.
type Info struct {
	Policy     string     `json:"policy"`
	Draining   bool       `json:"draining"`
	Placements int64      `json:"placements"`
	Reroutes   int64      `json:"reroutes"`
	ScoreP50   float64    `json:"score_p50"`
	ScoreP95   float64    `json:"score_p95"`
	Nodes      []NodeInfo `json:"nodes"`
}

func (s *Server) fleetInfo() Info {
	p50, p95, _, count := s.sched.ScoreStats()
	info := Info{
		Policy:     s.sched.Policy(),
		Draining:   s.sched.IsDraining(),
		Placements: count,
		Reroutes:   s.sched.RerouteCount(),
		ScoreP50:   p50,
		ScoreP95:   p95,
	}
	routed := s.sched.Routed()
	for i, n := range s.sched.Nodes() {
		v := n.View()
		var frag core.FragStats
		for _, f := range n.Pool().FragSnapshots() {
			frag.Merge(f)
		}
		info.Nodes = append(info.Nodes, NodeInfo{
			ID: n.ID(), Healthy: v.Healthy, Queued: v.Queued,
			Routed: routed[i], BoardRequeues: n.Pool().RequeueCount(),
			Frag: frag, Boards: n.Pool().BoardInfos(),
		})
	}
	return info
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetInfo())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.sched.IsDraining() {
		status = "draining"
	}
	boards := 0
	for _, n := range s.sched.Nodes() {
		boards += len(n.Pool().BoardInfos())
	}
	writeJSON(w, http.StatusOK, serve.Health{
		Status: status, Version: s.version,
		Boards: boards, Nodes: len(s.sched.Nodes()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.writeMetrics(w)
}
