package bench

import (
	"testing"

	"repro/internal/fleet"
)

// TestF10Shape gates the bake-off's headline claim at full scale: over
// the 12k-job churn replay with a mid-run node casualty, the packing
// policy beats the random control on both sustained hardware
// utilization and p99 admission latency, and no policy loses a job.
// The replay is deterministic, so this is a regression gate, not a
// statistical assertion.
func TestF10Shape(t *testing.T) {
	cfg, err := FleetBakeoffConfig(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]fleet.BakeoffRow{}
	for _, name := range fleet.PolicyNames {
		row, err := fleet.RunBakeoff(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		rows[name] = row
		if row.Jobs < 10_000 {
			t.Errorf("%s: %d jobs, want >= 10000", name, row.Jobs)
		}
		if row.Completed != row.Jobs {
			t.Errorf("%s: %d of %d jobs completed", name, row.Completed, row.Jobs)
		}
		if row.Requeues == 0 {
			t.Errorf("%s: node %d's casualty displaced nothing", name, cfg.FailNode)
		}
	}
	packing, random := rows["packing"], rows["random"]
	if packing.HWUtil <= random.HWUtil {
		t.Errorf("packing hw_util %.4f does not beat random %.4f", packing.HWUtil, random.HWUtil)
	}
	if packing.P99AdmitMS >= random.P99AdmitMS {
		t.Errorf("packing p99 admit %.3fms does not beat random %.3fms", packing.P99AdmitMS, random.P99AdmitMS)
	}

	// The table renders one row per policy in PolicyNames order.
	tbl, err := F10PlacementBakeoff(Config{Seed: 42, Quick: true, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(fleet.PolicyNames) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(fleet.PolicyNames))
	}
	for i, name := range fleet.PolicyNames {
		if tbl.Rows[i][0] != name {
			t.Errorf("row %d policy %q, want %q", i, tbl.Rows[i][0], name)
		}
	}
}
