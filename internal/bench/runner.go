package bench

import (
	"encoding/json"
	"io"
	"strconv"
	"time"

	"repro/internal/trace"
)

// Outcome is one experiment's result from a harness run: its table (or
// error) plus the wall-clock time the runner spent on it.
type Outcome struct {
	Exp   Experiment
	Table *trace.Table
	Err   error
	Wall  time.Duration
}

// Run executes the experiments under cfg, fanning whole experiments out
// across up to cfg.Jobs worker goroutines, and returns the outcomes in
// input (presentation) order regardless of completion order. Each
// experiment additionally fans its own independent sweep points out with
// the same bound, so a single big experiment also scales with cores.
//
// Tables are byte-identical for every Jobs value: experiments share no
// mutable state (each sweep point owns its kernel and RNG streams), and
// the compile cache they do share is keyed by every input that affects
// its output.
func Run(cfg Config, exps []Experiment) []Outcome {
	out, _ := parMap(cfg.Jobs, len(exps), func(i int) (Outcome, error) {
		// Wall timing comes only from the injected clock: the harness
		// itself stays off the wall clock so its tables are a pure
		// function of Config (the simclock analyzer pins this).
		var start time.Time
		if cfg.Now != nil {
			start = cfg.Now()
		}
		tbl, err := exps[i].Run(cfg)
		o := Outcome{Exp: exps[i], Table: tbl, Err: err}
		if cfg.Now != nil {
			o.Wall = cfg.Now().Sub(start)
		}
		return o, nil
	})
	return out
}

// --- perf record (the BENCH_*.json trajectory) ---

// PerfCache is the compile-cache section of a perf record.
type PerfCache struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Dedups    int64   `json:"dedups"`
	Evictions int64   `json:"evictions"`
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// PerfExperiment is one experiment's line in a perf record.
type PerfExperiment struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Rows   int     `json:"rows"`
	Error  string  `json:"error,omitempty"`
}

// PerfFragRow is one manager's line of the F9 residency comparison,
// lifted from the experiment table into the perf record so the
// amorphous-vs-partition gap (fragmentation, sustained utilization,
// tail block latency) is tracked across PRs alongside wall-clock.
type PerfFragRow struct {
	Manager     string  `json:"manager"`
	MeanFrag    float64 `json:"mean_frag"`
	MaxFrag     float64 `json:"max_frag"`
	UtilMean    float64 `json:"util_mean_clbs"`
	HWUtil      float64 `json:"hw_util"`
	Blocks      int64   `json:"blocks"`
	P95BlockMS  float64 `json:"p95_block_ms"`
	Loads       int64   `json:"loads"`
	Relocations int64   `json:"relocations"`
	MakespanMS  float64 `json:"makespan_ms"`
}

// PerfRecord is the machine-readable performance summary of one harness
// run, written by `vfpgabench -json` so successive PRs can track harness
// wall-clock, parallel speedup and cache effectiveness over time.
type PerfRecord struct {
	Schema      string           `json:"schema"`
	Quick       bool             `json:"quick"`
	Seed        uint64           `json:"seed"`
	Jobs        int              `json:"jobs"`
	WallMS      float64          `json:"wall_ms"`
	SerialEstMS float64          `json:"serial_est_ms"`
	Speedup     float64          `json:"speedup"`
	Cache       PerfCache        `json:"cache"`
	Frag        []PerfFragRow    `json:"frag,omitempty"`
	Experiments []PerfExperiment `json:"experiments"`
}

// PerfSchema identifies the perf-record format.
const PerfSchema = "vfpgabench/perf-v1"

// NewPerfRecord summarizes a finished harness run. wall is the elapsed
// time of the whole run; the serial estimate is the sum of per-experiment
// walls (what -jobs 1 would roughly cost), so Speedup reports how much
// the fan-out actually bought on this machine.
func NewPerfRecord(cfg Config, outcomes []Outcome, wall time.Duration) *PerfRecord {
	r := &PerfRecord{
		Schema: PerfSchema,
		Quick:  cfg.Quick,
		Seed:   cfg.Seed,
		Jobs:   cfg.Jobs,
		WallMS: float64(wall) / float64(time.Millisecond),
	}
	for _, o := range outcomes {
		pe := PerfExperiment{
			ID:     o.Exp.ID,
			WallMS: float64(o.Wall) / float64(time.Millisecond),
		}
		if o.Table != nil {
			pe.Rows = len(o.Table.Rows)
		}
		if o.Err != nil {
			pe.Error = o.Err.Error()
		}
		r.SerialEstMS += pe.WallMS
		r.Experiments = append(r.Experiments, pe)
	}
	if r.WallMS > 0 {
		r.Speedup = r.SerialEstMS / r.WallMS
	}
	for _, o := range outcomes {
		if o.Exp.ID == "F9" && o.Table != nil {
			r.Frag = fragRows(o.Table)
		}
	}
	cs := CacheStats()
	r.Cache = PerfCache{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Dedups:    cs.Dedups,
		Evictions: cs.Evictions,
		Size:      cs.Size,
		Capacity:  cs.Capacity,
		HitRate:   cs.HitRate(),
	}
	return r
}

// fragRows parses the F9 table back into typed rows. Tables hold
// formatted strings; anything unparsable reads as zero — the record is
// telemetry, not a gate.
func fragRows(tbl *trace.Table) []PerfFragRow {
	col := map[string]int{}
	for i, c := range tbl.Columns {
		col[c] = i
	}
	f := func(row []string, name string) float64 {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return 0
		}
		v, _ := strconv.ParseFloat(row[i], 64)
		return v
	}
	rows := make([]PerfFragRow, 0, len(tbl.Rows))
	for _, row := range tbl.Rows {
		pr := PerfFragRow{
			MeanFrag:    f(row, "mean_frag"),
			MaxFrag:     f(row, "max_frag"),
			UtilMean:    f(row, "util_mean_clbs"),
			HWUtil:      f(row, "hw_util"),
			Blocks:      int64(f(row, "blocks")),
			P95BlockMS:  f(row, "p95_block_ms"),
			Loads:       int64(f(row, "loads")),
			Relocations: int64(f(row, "relocations")),
			MakespanMS:  f(row, "makespan_ms"),
		}
		if i, ok := col["manager"]; ok && i < len(row) {
			pr.Manager = row[i]
		}
		rows = append(rows, pr)
	}
	return rows
}

// WriteJSON writes the record as indented JSON.
func (r *PerfRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
