package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// F8MultiBoard — the paper's §2 outlook: "a computing system composed
// only of FPGA-based boards so that the whole system operation can be
// virtualized". The same total CLB budget is offered as one big board or
// as several smaller ones; the multi-board manager spreads tasks, but a
// circuit can never straddle boards, so wide circuits expose the
// granularity limit.
func F8MultiBoard(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F8",
		Title:   "One big board vs several small boards (same total area)",
		Note:    "paper §2: systems of FPGA boards virtualize like one device, down to the widest circuit",
		Columns: []string{"boards", "cols_each", "makespan_ms", "mean_block_ms", "loads", "blocks", "widest_fits"},
	}
	tasks := 10
	if cfg.Quick {
		tasks = 6
	}
	mkSet := func() *workload.Set {
		return workload.Synthetic(workload.SyntheticConfig{
			Tasks:       tasks,
			OpsPerTask:  5,
			EvalsPerOp:  40_000,
			ComputeTime: 300 * sim.Microsecond,
			SwitchProb:  0.2,
			Seed:        cfg.Seed + 37,
		})
	}
	const totalCols = 24
	splits := []int{1, 2, 4, 8}
	if cfg.Quick {
		splits = []int{1, 2, 4}
	}
	pcfg := core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true}
	rows, err := parRows(cfg.Jobs, len(splits), func(i int) ([]any, error) {
		boards := splits[i]
		cols := totalCols / boards
		opt := defaultOpt(cfg)
		opt.Geometry.Cols = cols

		set := mkSet()
		k := sim.New()
		var engines []*core.Engine
		var widest int
		for b := 0; b < boards; b++ {
			e, err := engineFor(opt, set.Circuits)
			if err != nil {
				return nil, err
			}
			engines = append(engines, e)
		}
		for _, c := range set.Circuits {
			if w := engines[0].Lib[c.Name].BS.W; w > widest {
				widest = w
			}
		}
		if widest > cols {
			return []any{boards, cols, "infeasible", "-", "-", "-",
				fmt.Sprintf("no (widest needs %d)", widest)}, nil
		}
		mm, err := core.NewMultiManager(k, engines, pcfg)
		if err != nil {
			return nil, err
		}
		// A short slice interleaves the tasks so concurrent partition
		// demand actually reaches the boards.
		osCfg := defaultOS()
		osCfg.TimeSlice = 1 * sim.Millisecond
		osim := hostos.New(k, osCfg, mm)
		mm.AttachOS(osim)
		set.Spawn(osim)
		k.Run()
		if !osim.AllDone() {
			return nil, fmt.Errorf("bench F8: unfinished tasks with %d boards", boards)
		}
		var meanBlock sim.Time
		for _, t := range osim.Tasks() {
			meanBlock += t.BlockWait / sim.Time(len(osim.Tasks()))
		}
		return []any{boards, cols, ms(osim.Makespan()), ms(meanBlock),
			mm.TotalLoads(), mm.TotalBlocks(), "yes"}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}
