package bench

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// renderAll renders every outcome's table in presentation order, exactly
// as cmd/vfpgabench prints them.
func renderAll(t *testing.T, outs []Outcome) string {
	t.Helper()
	var b strings.Builder
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Exp.ID, o.Err)
		}
		b.WriteString(o.Table.String())
	}
	return b.String()
}

// TestParallelHarnessByteIdentical is the determinism regression test for
// the parallel experiment engine: the full quick harness must render
// byte-identical tables at -jobs 1 and -jobs 8. Run under -race by `make
// check`, this also exercises the compile cache's singleflight path under
// real contention.
func TestParallelHarnessByteIdentical(t *testing.T) {
	serial := Run(Config{Seed: 1, Quick: true, Jobs: 1}, All())
	parallel := Run(Config{Seed: 1, Quick: true, Jobs: 8}, All())
	a, b := renderAll(t, serial), renderAll(t, parallel)
	if a != b {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("-jobs 1 and -jobs 8 tables differ near byte %d:\nserial:   ...%q\nparallel: ...%q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}

func TestRunPreservesOrderAndErrors(t *testing.T) {
	errBoom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok1", Title: "ok", Run: func(Config) (*trace.Table, error) {
			return &trace.Table{ID: "ok1"}, nil
		}},
		{ID: "bad", Title: "bad", Run: func(Config) (*trace.Table, error) {
			return nil, errBoom
		}},
		{ID: "ok2", Title: "ok", Run: func(Config) (*trace.Table, error) {
			return &trace.Table{ID: "ok2"}, nil
		}},
	}
	for _, jobs := range []int{1, 4} {
		outs := Run(Config{Jobs: jobs}, exps)
		if len(outs) != 3 {
			t.Fatalf("jobs=%d: %d outcomes", jobs, len(outs))
		}
		for i, o := range outs {
			if o.Exp.ID != exps[i].ID {
				t.Fatalf("jobs=%d: outcome %d is %s, want %s", jobs, i, o.Exp.ID, exps[i].ID)
			}
		}
		if outs[0].Err != nil || outs[2].Err != nil {
			t.Fatalf("jobs=%d: unexpected errors %v %v", jobs, outs[0].Err, outs[2].Err)
		}
		if !errors.Is(outs[1].Err, errBoom) {
			t.Fatalf("jobs=%d: want boom, got %v", jobs, outs[1].Err)
		}
	}
}

func TestParMapOrderAndFirstIndexError(t *testing.T) {
	vals, err := parMap(8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
	// The reported error must be the lowest-index one regardless of
	// completion order.
	err13 := errors.New("err@13")
	err70 := errors.New("err@70")
	_, err = parMap(8, 100, func(i int) (int, error) {
		switch i {
		case 13:
			return 0, err13
		case 70:
			return 0, err70
		}
		return i, nil
	})
	if !errors.Is(err, err13) {
		t.Fatalf("want err@13, got %v", err)
	}
}

func TestPerfRecordShape(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true, Jobs: 2}
	exps := []Experiment{
		{ID: "T2", Title: "t", Run: T2StatePreemption},
	}
	outs := Run(cfg, exps)
	rec := NewPerfRecord(cfg, outs, outs[0].Wall)
	if rec.Schema != PerfSchema || rec.Jobs != 2 || !rec.Quick {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if len(rec.Experiments) != 1 || rec.Experiments[0].ID != "T2" {
		t.Fatalf("experiments wrong: %+v", rec.Experiments)
	}
	if rec.Experiments[0].Rows == 0 {
		t.Fatal("row count missing")
	}
	if rec.Cache.Misses == 0 && rec.Cache.Hits == 0 {
		t.Fatal("cache counters never moved")
	}
	var b strings.Builder
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "vfpgabench/perf-v1"`, `"id": "T2"`, `"hit_rate"`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, b.String())
		}
	}
}

// Wall timing comes only from the injected clock: without one the
// harness never reads the wall clock and Wall stays zero; with one it
// measures. (The simclock analyzer keeps time.Now out of this package.)
func TestRunWallUsesInjectedClock(t *testing.T) {
	exps := []Experiment{{ID: "ok", Title: "ok", Run: func(Config) (*trace.Table, error) {
		return &trace.Table{ID: "ok"}, nil
	}}}
	outs := Run(Config{Jobs: 1}, exps)
	if outs[0].Wall != 0 {
		t.Fatalf("Wall without a clock = %v, want 0", outs[0].Wall)
	}
	var ticks int64
	fake := func() time.Time { ticks++; return time.Unix(0, ticks*int64(time.Millisecond)) }
	outs = Run(Config{Jobs: 1, Now: fake}, exps)
	if outs[0].Wall != time.Millisecond {
		t.Fatalf("Wall with a fake clock = %v, want 1ms", outs[0].Wall)
	}
}
