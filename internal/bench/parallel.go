package bench

import (
	"sync"

	"repro/internal/trace"
)

// parMap runs fn for every index in [0, n) and returns the results in
// index order.
//
// With jobs <= 1 (or a single item) it runs inline — exactly the serial
// path. With jobs > 1, up to jobs worker goroutines pull indices from a
// shared queue; every result and error lands in its own index slot, and
// the first error *by index* (not by completion time) is the one
// reported, so the observable outcome is independent of scheduling.
//
// Determinism contract for callers: fn must not touch state shared
// between indices. Every sweep point in this package builds its own
// sim.Kernel, engines and seeded RNG streams; the only shared structure
// is the compile cache, whose entries are pure functions of their keys.
func parMap[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if jobs > n {
		jobs = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parRows is parMap specialized to the common experiment shape: each
// sweep point yields exactly one table row. addRows appends them to a
// table in sweep order.
func parRows(jobs, n int, fn func(i int) ([]any, error)) ([][]any, error) {
	return parMap(jobs, n, fn)
}

// addRows appends pre-computed rows to tbl in order.
func addRows(tbl *trace.Table, rows [][]any) {
	for _, r := range rows {
		tbl.AddRow(r...)
	}
}
