// Package bench is the experiment harness: one runner per table (T1-T5)
// and figure (F1-F9) of the reproduction's evaluation plan (see DESIGN.md
// §4 — the paper itself publishes no quantitative results, so each runner
// operationalizes one of its qualitative claims).
//
// Runners are deterministic: the same Config produces byte-identical
// tables. Quick mode shrinks the sweeps for use under `go test -bench`.
package bench

import (
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a harness run.
type Config struct {
	Seed  uint64
	Quick bool // reduced sweeps (used by go test benchmarks)
	// Jobs bounds the worker fan-out: Run fans whole experiments and each
	// experiment fans its independent sweep points across up to Jobs
	// goroutines. 0 or 1 selects the serial path. Any value produces
	// byte-identical tables: every sweep point builds its own sim.Kernel
	// and seeded RNGs, and results are reassembled in presentation order.
	Jobs int
	// Now supplies the wall clock used only for Outcome.Wall timing.
	// The bench package itself never reads the real clock (its tables
	// must be deterministic), so callers that want wall times inject one
	// (cmd/vfpgabench passes time.Now); nil leaves Wall zero.
	Now func() time.Time
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*trace.Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Dynamic loading overhead vs reconfiguration mode", T1DynamicLoadingOverhead},
		{"T2", "Sequential preemption: save/restore vs rollback", T2StatePreemption},
		{"T3", "Fixed vs variable partitioning", T3Partitioning},
		{"T4", "Overlaying: resident common functions", T4Overlay},
		{"T5", "I/O pin multiplexing", T5IOMux},
		{"F1", "Virtual capacity: large application on small devices", F1VirtualCapacity},
		{"F2", "Exclusive vs dynamic vs partitioned scheduling", F2SchedulingModes},
		{"F3", "Merged circuit vs dynamic loading crossover", F3MergedVsDynamic},
		{"F4", "Fragmentation and garbage collection", F4Fragmentation},
		{"F5", "Pagination: page size x replacement policy", F5Pagination},
		{"F6", "Segmentation vs monolithic configuration", F6Segmentation},
		{"F7", "Application scenarios (multimedia, telecom, diagnosis)", F7Applications},
		{"F8", "Multi-board virtualization (one big vs several small)", F8MultiBoard},
		{"F9", "Amorphous regions vs variable partitions", F9AmorphousRegions},
		{"F10", "Fleet placement-policy bake-off under churn", F10PlacementBakeoff},
		{"A1", "Ablation: logic optimizer area/download savings", A1OptimizerAblation},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// benchGeometry is the default experiment device: 16 rows keeps strip
// compilation fast while leaving room for a dozen partitions.
func benchGeometry() fabric.Geometry {
	return fabric.Geometry{Cols: 32, Rows: 16, TracksPerChannel: 12, PinsPerSide: 48}
}

// --- circuit compilation cache ---
// Strip compilation (map+place+route) is deterministic and dominates
// experiment cost, so circuits are shared process-wide through the
// concurrent compile service in internal/compile: singleflight
// deduplication keeps parallel workers from compiling the same key twice,
// and the LRU bound keeps a long-lived process from growing forever. The
// cache key includes the *effective* seed (opt.Seed plus the circuit's
// position in its list), so a cached circuit is a pure function of the
// request — lookups are order-independent, which is what makes sharing
// the cache between concurrently running experiments deterministic.
var stripCache = compile.NewStripCache(compile.DefaultCacheCapacity)

// CacheStats reports the shared compile-cache counters (hits, misses,
// singleflight joins, evictions) accumulated by this process.
func CacheStats() compile.CacheStats { return stripCache.Stats() }

// engineFor builds an engine over geometry with the given circuits
// available, reusing cached compilations.
func engineFor(opt core.Options, circuits []*netlist.Netlist) (*core.Engine, error) {
	e := core.NewEngine(opt)
	for i, nl := range circuits {
		tm := opt.Timing
		c, err := stripCache.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
			compile.Options{Seed: opt.Seed + uint64(i), Timing: &tm})
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		e.Lib[nl.Name] = c
	}
	return e, nil
}

// runResult summarizes one simulated run.
type runResult struct {
	Makespan       sim.Time
	MeanTurnaround sim.Time
	MeanWait       sim.Time // ready + blocked
	MeanBlock      sim.Time
	TotalHW        sim.Time
	TotalOverhead  sim.Time
	Engine         *core.Engine
	OS             *hostos.OS
}

// runSet spawns the workload under the given manager factory and runs to
// completion. Managers exposing AttachOS (partitioning, exclusive) are
// wired to the OS for task unblocking.
func runSet(opt core.Options, osCfg hostos.Config, set *workload.Set,
	mk func(k *sim.Kernel, e *core.Engine) hostos.FPGA) (*runResult, error) {

	k := sim.New()
	e, err := engineFor(opt, set.Circuits)
	if err != nil {
		return nil, err
	}
	mgr := mk(k, e)
	osRef := hostos.New(k, osCfg, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osRef)
	}
	set.Spawn(osRef)
	k.Run()
	if !osRef.AllDone() {
		return nil, fmt.Errorf("bench: run ended with unfinished tasks (deadlock?)")
	}
	res := &runResult{Engine: e, OS: osRef, Makespan: osRef.Makespan()}
	n := sim.Time(len(osRef.Tasks()))
	for _, t := range osRef.Tasks() {
		res.MeanTurnaround += t.Turnaround() / n
		res.MeanWait += (t.ReadyWait + t.BlockWait) / n
		res.MeanBlock += t.BlockWait / n
		res.TotalHW += t.HWTime
		res.TotalOverhead += t.Overhead
	}
	return res, nil
}

// manager factories used across experiments.

func dynamicMgr(k *sim.Kernel, e *core.Engine) hostos.FPGA {
	return core.NewDynamicLoader(k, e)
}

func partitionMgr(cfg core.PartitionConfig) func(*sim.Kernel, *core.Engine) hostos.FPGA {
	return func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
		pm, err := core.NewPartitionManager(k, e, cfg)
		if err != nil {
			panic(err)
		}
		return pm
	}
}

// ms renders a sim.Time as milliseconds with 3 decimals.
func ms(t sim.Time) string { return fmt.Sprintf("%.3f", t.Milliseconds()) }
