package bench

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func defaultOpt(cfg Config) core.Options {
	opt := core.DefaultOptions()
	opt.Geometry = benchGeometry()
	opt.Seed = cfg.Seed + 1
	return opt
}

func defaultOS() hostos.Config {
	return hostos.Config{
		Policy:    hostos.RR,
		TimeSlice: 10 * sim.Millisecond,
		CtxSwitch: 50 * sim.Microsecond,
		Syscall:   10 * sim.Microsecond,
	}
}

// T1DynamicLoadingOverhead — the paper's §2/§3 feasibility claim:
// frequent reconfiguration is practical only with partial
// reconfiguration; full serial downloads (~200 ms class) restrict the
// FPGA to occasional reloading. One task alternates two algorithms; the
// compute-to-reconfigure ratio is swept via the hardware work per switch.
func T1DynamicLoadingOverhead(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "T1",
		Title:   "Dynamic loading: useful-work fraction vs reconfiguration mode",
		Note:    "paper §2-3: partial reconfiguration enables frequent reloading; full serial download does not",
		Columns: []string{"evals/op", "reconfig", "completion", "turnaround_ms", "hw_ms", "overhead_ms", "efficiency"},
	}
	evalSweep := []int64{1_000, 10_000, 100_000, 1_000_000}
	if cfg.Quick {
		evalSweep = []int64{1_000, 100_000}
	}
	modes := []struct {
		partial    bool
		completion core.CompletionMode
	}{
		{true, core.Apriori},
		{true, core.DoneSignal},
		{false, core.Apriori},
	}
	circuits := []*netlist.Netlist{netlist.Adder(8), netlist.ALU(8)}
	type point struct {
		evals      int64
		partial    bool
		completion core.CompletionMode
	}
	var points []point
	for _, evals := range evalSweep {
		for _, mode := range modes {
			points = append(points, point{evals, mode.partial, mode.completion})
		}
	}
	rows, err := parRows(cfg.Jobs, len(points), func(i int) ([]any, error) {
		pt := points[i]
		opt := defaultOpt(cfg)
		opt.Timing.PartialReconfig = pt.partial
		opt.Completion = pt.completion
		var prog []hostos.Op
		ops := 12
		if cfg.Quick {
			ops = 6
		}
		for i := 0; i < ops; i++ {
			c := circuits[i%2]
			prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: pt.evals}))
		}
		set := &workload.Set{
			Tasks:    []workload.TaskSpec{{Name: "alt", Program: prog}},
			Circuits: circuits,
		}
		res, err := runSet(opt, defaultOS(), set, dynamicMgr)
		if err != nil {
			return nil, err
		}
		t := res.OS.Tasks()[0]
		eff := float64(t.HWTime) / float64(t.Turnaround())
		reconfig := "full-only"
		if pt.partial {
			reconfig = "partial"
		}
		return []any{pt.evals, reconfig, pt.completion.String(),
			ms(t.Turnaround()), ms(t.HWTime), ms(t.Overhead), eff}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// T2StatePreemption — §3's preemption analysis for sequential circuits:
// save/restore preserves completed cycles at a readback cost, rollback
// redoes work, and non-preemptable ops overstay their slice.
func T2StatePreemption(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "T2",
		Title:   "Sequential-circuit preemption policies",
		Note:    "paper §3: preemption requires observable/controllable state; otherwise roll back or refuse",
		Columns: []string{"slice_ms", "policy", "hw_ms", "redone_ms", "overhead_ms", "preemptions", "readbacks", "turnaround_ms"},
	}
	slices := []sim.Time{1 * sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond}
	if cfg.Quick {
		slices = []sim.Time{2 * sim.Millisecond}
	}
	const cycles = 400_000
	circuits := []*netlist.Netlist{netlist.Counter(8)}
	type point struct {
		slice  sim.Time
		policy core.StatePolicy
	}
	var points []point
	for _, slice := range slices {
		for _, policy := range []core.StatePolicy{core.SaveRestore, core.Rollback, core.NonPreemptable} {
			points = append(points, point{slice, policy})
		}
	}
	rows, err := parRows(cfg.Jobs, len(points), func(i int) ([]any, error) {
		pt := points[i]
		opt := defaultOpt(cfg)
		opt.State = pt.policy
		osCfg := defaultOS()
		osCfg.TimeSlice = pt.slice
		set := &workload.Set{
			Tasks: []workload.TaskSpec{
				{Name: "hw", Program: []hostos.Op{hostos.UseFPGA(hostos.FPGARequest{Circuit: "counter8", Cycles: cycles})}},
				{Name: "cpu", Program: []hostos.Op{hostos.Compute(10 * sim.Millisecond)}},
			},
			Circuits: circuits,
		}
		res, err := runSet(opt, osCfg, set, dynamicMgr)
		if err != nil {
			return nil, err
		}
		hw := res.OS.Tasks()[0]
		pure := sim.Time(cycles) * res.Engine.Lib["counter8"].ClockPeriod
		return []any{fmt.Sprintf("%.0f", pt.slice.Milliseconds()), pt.policy.String(),
			ms(hw.HWTime), ms(hw.HWTime - pure), ms(hw.Overhead),
			hw.Preemptions, res.Engine.M.Readbacks.Value(), ms(hw.Turnaround())}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// T3Partitioning — §4: partitioning reduces reloads versus whole-device
// dynamic loading; fixed partitions are simple but rigid, variable ones
// adapt; rotation and GC trade management overhead for utilization.
func T3Partitioning(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "T3",
		Title:   "Partitioning strategies on a heterogeneous task mix",
		Note:    "paper §4: partitions cut reload traffic without impairing parallelism",
		Columns: []string{"manager", "makespan_ms", "mean_turnaround_ms", "mean_block_ms", "loads", "evictions", "blocks", "gc_runs"},
	}
	tasks := 8
	ops := 6
	if cfg.Quick {
		tasks, ops = 4, 4
	}
	mkSet := func() *workload.Set {
		return workload.Synthetic(workload.SyntheticConfig{
			Tasks:       tasks,
			OpsPerTask:  ops,
			EvalsPerOp:  30_000,
			ComputeTime: 300 * sim.Microsecond,
			SwitchProb:  0.25,
			Seed:        cfg.Seed + 7,
		})
	}
	managers := []struct {
		name string
		mk   func(*sim.Kernel, *core.Engine) hostos.FPGA
	}{
		{"dynamic (whole device)", dynamicMgr},
		{"fixed 4x8", partitionMgr(core.PartitionConfig{Mode: core.FixedPartitions, FixedWidths: []int{8, 8, 8, 8}, Rotate: true})},
		{"fixed 2x16", partitionMgr(core.PartitionConfig{Mode: core.FixedPartitions, FixedWidths: []int{16, 16}, Rotate: true})},
		{"variable first-fit", partitionMgr(core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.FirstFit, Rotate: true})},
		{"variable best-fit", partitionMgr(core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.BestFit, Rotate: true})},
		{"variable + GC", partitionMgr(core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true})},
	}
	rows, err := parRows(cfg.Jobs, len(managers), func(i int) ([]any, error) {
		m := managers[i]
		res, err := runSet(defaultOpt(cfg), defaultOS(), mkSet(), m.mk)
		if err != nil {
			return nil, err
		}
		e := res.Engine
		return []any{m.name, ms(res.Makespan), ms(res.MeanTurnaround), ms(res.MeanBlock),
			e.M.Loads.Value(), e.M.Evictions.Value(), e.M.Blocks.Value(), e.M.GCRuns.Value()}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// T4Overlay — §2 overlaying: keeping frequently used common functions
// resident removes their reload traffic; only rare functions swap through
// the overlay area.
func T4Overlay(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "T4",
		Title:   "Overlaying: resident set vs reload traffic",
		Note:    "paper §2: frequent common functions stay resident; rare ones share the overlay area",
		Columns: []string{"resident_set", "loads", "config_ms", "makespan_ms", "mean_turnaround_ms"},
	}
	hot := netlist.ALU(8)
	cold := []*netlist.Netlist{netlist.Multiplier(4), netlist.BarrelShifter(16), netlist.CRC(16, 0x8005)}
	circuits := append([]*netlist.Netlist{hot}, cold...)

	tasks := 6
	ops := 10
	if cfg.Quick {
		tasks, ops = 3, 6
	}
	mkSet := func() *workload.Set {
		src := rng.New(cfg.Seed + 11)
		set := &workload.Set{Circuits: circuits}
		for ti := 0; ti < tasks; ti++ {
			taskSrc := src.Split()
			var prog []hostos.Op
			for op := 0; op < ops; op++ {
				c := hot
				if taskSrc.Float64() > 0.6 {
					c = cold[taskSrc.Intn(len(cold))]
				}
				req := hostos.FPGARequest{Circuit: c.Name}
				if c.IsSequential() {
					req.Cycles = 20_000
				} else {
					req.Evaluations = 20_000
				}
				prog = append(prog, hostos.Compute(200*sim.Microsecond), hostos.UseFPGA(req))
			}
			set.Tasks = append(set.Tasks, workload.TaskSpec{Name: fmt.Sprintf("t%d", ti), Program: prog})
		}
		return set
	}
	residentSets := [][]string{
		{},
		{hot.Name},
		{hot.Name, cold[0].Name},
	}
	rows, err := parRows(cfg.Jobs, len(residentSets), func(i int) ([]any, error) {
		resident := residentSets[i]
		res, err := runSet(defaultOpt(cfg), defaultOS(), mkSet(),
			func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				om, _, err := core.NewOverlayManager(k, e, resident)
				if err != nil {
					panic(err)
				}
				return om
			})
		if err != nil {
			return nil, err
		}
		label := "none (pure overlay)"
		if len(resident) > 0 {
			label = fmt.Sprintf("%v", resident)
		}
		return []any{label, res.Engine.M.Loads.Value(), ms(res.Engine.M.ConfigTime),
			ms(res.Makespan), ms(res.MeanTurnaround)}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// T5IOMux — §2 input/output multiplexing: when virtual pins exceed the
// physical pins, transfers time-multiplex and throughput drops by the mux
// factor.
func T5IOMux(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "T5",
		Title:   "I/O multiplexing: virtual pins over fewer physical pins",
		Note:    "paper §2: multiplexing increases apparent I/O count at a throughput cost",
		Columns: []string{"phys_pins", "virt_pins", "mux_factor", "hw_ms", "slowdown"},
	}
	c := netlist.Adder(16) // 33 inputs + 17 outputs = 50 virtual pins
	virt := 50
	pinSweep := []int{16, 8, 4, 2} // pins per side -> 64, 32, 16, 8 pins
	if cfg.Quick {
		pinSweep = []int{16, 4}
	}
	// The slowdown column is relative to the first sweep point, so run the
	// points in parallel and derive the ratios during ordered assembly.
	type point struct {
		phys int
		hw   sim.Time
	}
	points, err := parMap(cfg.Jobs, len(pinSweep), func(i int) (point, error) {
		opt := defaultOpt(cfg)
		opt.Geometry.PinsPerSide = pinSweep[i]
		set := &workload.Set{
			Tasks: []workload.TaskSpec{{Name: "io", Program: []hostos.Op{
				hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 100_000}),
			}}},
			Circuits: []*netlist.Netlist{c},
		}
		res, err := runSet(opt, defaultOS(), set, dynamicMgr)
		if err != nil {
			return point{}, err
		}
		return point{phys: opt.Geometry.NumPins(), hw: res.OS.Tasks()[0].HWTime}, nil
	})
	if err != nil {
		return nil, err
	}
	baseHW := points[0].hw
	for _, pt := range points {
		mux := (virt + pt.phys - 1) / pt.phys
		if mux < 1 {
			mux = 1
		}
		tbl.AddRow(pt.phys, virt, mux, ms(pt.hw), float64(pt.hw)/float64(baseHW))
	}
	return tbl, nil
}

// F1VirtualCapacity — the headline claim: "map larger circuits on smaller
// FPGAs". An application whose stages together dwarf the device runs by
// loading one stage at a time; the cost is reconfiguration time.
func F1VirtualCapacity(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F1",
		Title:   "Virtual capacity: application cells / device cells vs slowdown",
		Note:    "paper §1/§5: smaller (cheaper) FPGAs run larger applications at bounded slowdown",
		Columns: []string{"device_cols", "device_cells", "app_cells", "size_ratio", "makespan_ms", "slowdown"},
	}
	stages := []*netlist.Netlist{
		netlist.Multiplier(4), netlist.ALU(8), netlist.BarrelShifter(16),
		netlist.PopCount(32), netlist.Adder(16), netlist.Comparator(16),
	}
	passes := 3
	if cfg.Quick {
		passes = 2
	}
	mkSet := func() *workload.Set {
		set := &workload.Set{Circuits: stages}
		var prog []hostos.Op
		for p := 0; p < passes; p++ {
			for _, s := range stages {
				prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: s.Name, Evaluations: 100_000}))
			}
		}
		set.Tasks = []workload.TaskSpec{{Name: "app", Program: prog}}
		return set
	}

	// Pre-compile at the bench geometry to learn widths and cells.
	opt := defaultOpt(cfg)
	probe, err := engineFor(opt, stages)
	if err != nil {
		return nil, err
	}
	appCells, sumW, maxW := 0, 0, 0
	for _, s := range stages {
		c := probe.Lib[s.Name]
		appCells += c.Cells()
		sumW += c.BS.W
		if c.BS.W > maxW {
			maxW = c.BS.W
		}
	}

	// widths in stage order, for resident-set planning.
	widths := make([]int, len(stages))
	for i, s := range stages {
		widths[i] = probe.Lib[s.Name].BS.W
	}
	// residentPrefix returns the largest k such that stages[0:k] stay
	// resident and the widest remaining stage still fits in the leftover
	// overlay area.
	residentPrefix := func(cols int) int {
		best := 0
		for k := 0; k <= len(widths); k++ {
			sum := 0
			for _, w := range widths[:k] {
				sum += w
			}
			rest := 0
			for _, w := range widths[k:] {
				if w > rest {
					rest = w
				}
			}
			if sum+rest <= cols {
				best = k
			}
		}
		return best
	}

	// Sweep from "everything fits" down to "one stage at a time".
	clamp := func(c int) int {
		if c < maxW+1 {
			return maxW + 1
		}
		return c
	}
	colSweep := []int{sumW + 2, clamp(3 * sumW / 4), clamp(sumW / 2), clamp(maxW + 4), maxW + 1}
	if cfg.Quick {
		colSweep = []int{sumW + 2, clamp(sumW / 2), maxW + 1}
	}
	seen := map[int]bool{}
	var uniq []int
	for _, c := range colSweep {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(uniq)))
	colSweep = uniq

	// Run the zero-reconfiguration reference (index 0) and every shrinking
	// overlay device in parallel; the slowdown column divides by the
	// reference makespan, so ratios are derived during ordered assembly.
	makespans, err := parMap(cfg.Jobs, 1+len(colSweep), func(i int) (sim.Time, error) {
		if i == 0 {
			optRef := defaultOpt(cfg)
			optRef.Geometry.Cols = colSweep[0]
			mergedRes, err := runSet(optRef, defaultOS(), mkSet(),
				func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
					names := make([]string, len(stages))
					for j, s := range stages {
						names[j] = s.Name
					}
					m, _, err := baseline.NewMerged(k, e, names)
					if err != nil {
						panic(err)
					}
					return m
				})
			if err != nil {
				return 0, err
			}
			return mergedRes.Makespan, nil
		}
		// Overlaying on a shrinking device: as many stages resident as
		// fit, the rest swapping through the overlay area.
		cols := colSweep[i-1]
		opt := defaultOpt(cfg)
		opt.Geometry.Cols = cols
		k := residentPrefix(cols)
		resident := make([]string, 0, k)
		for _, s := range stages[:k] {
			resident = append(resident, s.Name)
		}
		res, err := runSet(opt, defaultOS(), mkSet(),
			func(kk *sim.Kernel, e *core.Engine) hostos.FPGA {
				om, _, err := core.NewOverlayManager(kk, e, resident)
				if err != nil {
					panic(err)
				}
				return om
			})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	ref := makespans[0]
	rows := defaultOpt(cfg).Geometry.Rows
	devCells := colSweep[0] * rows
	tbl.AddRow(fmt.Sprintf("%d (merged)", colSweep[0]), devCells, appCells,
		float64(appCells)/float64(devCells), ms(ref), 1.0)
	for j, cols := range colSweep {
		devCells := cols * rows
		tbl.AddRow(cols, devCells, appCells, float64(appCells)/float64(devCells),
			ms(makespans[j+1]), float64(makespans[j+1])/float64(ref))
	}
	return tbl, nil
}

// F2SchedulingModes — §4: the non-preemptable exclusive FPGA collapses
// parallelism ("implicitly forcing the scheduling to a strictly FIFO
// policy"); dynamic loading and partitioning restore it.
func F2SchedulingModes(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F2",
		Title:   "Task wait time: exclusive vs dynamic loading vs partitioning",
		Note:    "paper §4: exclusive assignment makes everyone else wait; VFPGA techniques do not",
		Columns: []string{"tasks", "manager", "mean_wait_ms", "mean_block_ms", "makespan_ms"},
	}
	taskSweep := []int{2, 4, 8}
	if cfg.Quick {
		taskSweep = []int{2, 4}
	}
	pool := []*netlist.Netlist{netlist.Parity(16), netlist.Adder(8), netlist.ALU(8), netlist.Comparator(16)}
	mkSet := func(n int) *workload.Set {
		set := &workload.Set{Circuits: pool}
		for ti := 0; ti < n; ti++ {
			c := pool[ti%len(pool)]
			var prog []hostos.Op
			for op := 0; op < 4; op++ {
				prog = append(prog,
					hostos.Compute(500*sim.Microsecond),
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 50_000}))
			}
			set.Tasks = append(set.Tasks, workload.TaskSpec{Name: fmt.Sprintf("t%d", ti), Program: prog})
		}
		return set
	}
	managers := []struct {
		name string
		mk   func(*sim.Kernel, *core.Engine) hostos.FPGA
	}{
		{"exclusive (non-preemptable)", func(k *sim.Kernel, e *core.Engine) hostos.FPGA { return baseline.NewExclusive(k, e) }},
		{"dynamic loading", dynamicMgr},
		{"variable partitions", partitionMgr(core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true})},
	}
	type point struct {
		tasks int
		mgr   int
	}
	var points []point
	for _, n := range taskSweep {
		for mi := range managers {
			points = append(points, point{n, mi})
		}
	}
	rows, err := parRows(cfg.Jobs, len(points), func(i int) ([]any, error) {
		pt := points[i]
		m := managers[pt.mgr]
		// A 1 ms slice forces interleaving, so holders of the exclusive
		// device yield the CPU between operations while keeping the FPGA.
		osCfg := defaultOS()
		osCfg.TimeSlice = 1 * sim.Millisecond
		res, err := runSet(defaultOpt(cfg), osCfg, mkSet(pt.tasks), m.mk)
		if err != nil {
			return nil, err
		}
		return []any{pt.tasks, m.name, ms(res.MeanWait), ms(res.MeanBlock), ms(res.Makespan)}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// F3MergedVsDynamic — §3: merging all circuits into one configuration is
// the trivial solution when the device is big enough; dynamic loading is
// what remains when it is not.
func F3MergedVsDynamic(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F3",
		Title:   "Merged configuration vs dynamic loading across device sizes",
		Note:    "paper §3: 'if the FPGA is large enough ... merge all circuits into only one'",
		Columns: []string{"device_cols", "merged_makespan_ms", "dynamic_makespan_ms", "dynamic_loads"},
	}
	pool := []*netlist.Netlist{netlist.Parity(16), netlist.Adder(8), netlist.ALU(8), netlist.Multiplier(4)}
	names := make([]string, len(pool))
	for i, c := range pool {
		names[i] = c.Name
	}
	mkSet := func() *workload.Set {
		return workload.Synthetic(workload.SyntheticConfig{
			Tasks:       6,
			OpsPerTask:  5,
			EvalsPerOp:  40_000,
			ComputeTime: 200 * sim.Microsecond,
			CircuitPool: pool,
			SwitchProb:  0.5,
			Seed:        cfg.Seed + 13,
		})
	}
	// Probe the merged footprint once: merged fits iff the strip widths
	// sum within the device columns.
	probe, err := engineFor(defaultOpt(cfg), pool)
	if err != nil {
		return nil, err
	}
	sumW := 0
	for _, c := range pool {
		sumW += probe.Lib[c.Name].BS.W
	}

	colSweep := []int{6, 9, 12, 16, 24}
	if cfg.Quick {
		colSweep = []int{6, 16}
	}
	rows, err := parRows(cfg.Jobs, len(colSweep), func(i int) ([]any, error) {
		cols := colSweep[i]
		opt := defaultOpt(cfg)
		opt.Geometry.Cols = cols
		merged := fmt.Sprintf("n/a (needs %d cols)", sumW)
		if sumW <= cols {
			mres, err := runSet(opt, defaultOS(), mkSet(),
				func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
					m, _, err := baseline.NewMerged(k, e, names)
					if err != nil {
						panic(err)
					}
					return m
				})
			if err != nil {
				return nil, err
			}
			merged = ms(mres.Makespan)
		}
		dres, err := runSet(opt, defaultOS(), mkSet(), dynamicMgr)
		if err != nil {
			return nil, err
		}
		return []any{cols, merged, ms(dres.Makespan), dres.Engine.M.Loads.Value()}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// F4Fragmentation — §4: variable partitions fragment under churn; garbage
// collection merges idle fragments at relocation cost.
func F4Fragmentation(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F4",
		Title:   "External fragmentation under churn, GC off vs on",
		Note:    "paper §4: merge idle partitions so no task waits while total space suffices",
		Columns: []string{"gc", "mean_frag", "max_frag", "blocks", "mean_block_ms", "gc_runs", "relocations", "makespan_ms"},
	}
	small := 24
	wide := 6
	if cfg.Quick {
		small, wide = 10, 3
	}
	// Churn: a stream of narrow long-lived tasks creates a checkerboard of
	// partitions; staggered exits leave holes. Wide tasks then need more
	// contiguous columns than any single hole provides — the paper's
	// "space may be actually available even if split in more idle
	// existing partitions".
	narrowPool := []*netlist.Netlist{netlist.Parity(16), netlist.Adder(8), netlist.Comparator(16)}
	widePool := []*netlist.Netlist{netlist.Multiplier(6), netlist.Multiplier(8)}
	mkSet := func() *workload.Set {
		src := rng.New(cfg.Seed + 17)
		set := &workload.Set{Circuits: append(append([]*netlist.Netlist{}, narrowPool...), widePool...)}
		arrival := sim.Time(0)
		for i := 0; i < small; i++ {
			taskSrc := src.Split()
			arrival += sim.Time(float64(sim.Millisecond) * taskSrc.ExpFloat64())
			c := narrowPool[taskSrc.Intn(len(narrowPool))]
			dur := sim.Time(taskSrc.Intn(5)+1) * 2 * sim.Millisecond
			set.Tasks = append(set.Tasks, workload.TaskSpec{
				Name:    fmt.Sprintf("small%d", i),
				Arrival: arrival,
				Program: []hostos.Op{
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 50_000}),
					hostos.Compute(dur),
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 50_000}),
				},
			})
		}
		for i := 0; i < wide; i++ {
			c := widePool[i%len(widePool)]
			set.Tasks = append(set.Tasks, workload.TaskSpec{
				Name:    fmt.Sprintf("wide%d", i),
				Arrival: sim.Time(6+5*i) * sim.Millisecond,
				Program: []hostos.Op{
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 80_000}),
				},
			})
		}
		return set
	}
	gcSweep := []bool{false, true}
	rows, err := parRows(cfg.Jobs, len(gcSweep), func(i int) ([]any, error) {
		gc := gcSweep[i]
		k := sim.New()
		set := mkSet()
		opt := defaultOpt(cfg)
		opt.Geometry.Cols = 12 // tight enough that holes matter
		e, err := engineFor(opt, set.Circuits)
		if err != nil {
			return nil, err
		}
		pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: gc,
		})
		if err != nil {
			return nil, err
		}
		os := hostos.New(k, defaultOS(), pm)
		pm.AttachOS(os)
		set.Spawn(os)
		frag := stats.NewSample(false)
		// Sample fragmentation every millisecond while the run progresses.
		for !os.AllDone() {
			fired := k.RunUntil(k.Now() + sim.Millisecond)
			total, largest := pm.FreeCols()
			if total > 0 && total < opt.Geometry.Cols {
				frag.Observe(1 - float64(largest)/float64(total))
			}
			if fired == 0 && k.Pending() == 0 && !os.AllDone() {
				return nil, fmt.Errorf("bench F4: deadlock with gc=%v", gc)
			}
		}
		var meanBlock sim.Time
		for _, t := range os.Tasks() {
			meanBlock += t.BlockWait / sim.Time(len(os.Tasks()))
		}
		return []any{gc, frag.Mean(), frag.Max(), e.M.Blocks.Value(), ms(meanBlock),
			e.M.GCRuns.Value(), e.M.Relocations.Value(), ms(os.Makespan())}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// F5Pagination — §2: page size trades fault frequency against per-fault
// cost; the replacement policy decides how well locality is exploited.
func F5Pagination(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F5",
		Title:   "Demand paging: page size x replacement policy",
		Note:    "paper §2: configurations split into fixed-size pages loaded on demand",
		Columns: []string{"page_cells", "pages", "frames", "policy", "faults", "fault_rate", "config_ms", "makespan_ms"},
	}
	circuit := netlist.Multiplier(8)
	refs := 300
	if cfg.Quick {
		refs = 80
	}
	pageSweep := []int{8, 16, 32}
	if cfg.Quick {
		pageSweep = []int{8, 32}
	}
	policies := []core.ReplacePolicy{core.LRU, core.PageFIFO, core.Clock, core.Random}
	if cfg.Quick {
		policies = []core.ReplacePolicy{core.LRU, core.Random}
	}
	type point struct {
		pageCells int
		policy    core.ReplacePolicy
	}
	var points []point
	for _, pageCells := range pageSweep {
		for _, policy := range policies {
			points = append(points, point{pageCells, policy})
		}
	}
	rows, err := parRows(cfg.Jobs, len(points), func(i int) ([]any, error) {
		pt := points[i]
		// Probe the page count (a cache hit after the first worker).
		probe, err := engineFor(defaultOpt(cfg), []*netlist.Netlist{circuit})
		if err != nil {
			return nil, err
		}
		pages := (probe.Lib[circuit.Name].Cells() + pt.pageCells - 1) / pt.pageCells
		frames := pages/2 + 1
		set := workload.Paged(workload.PagedConfig{
			Circuit: circuit,
			Refs:    refs,
			Pages:   pages,
			WorkSet: 3,
			Skew:    1.2,
			Evals:   5_000,
			Seed:    cfg.Seed + 19,
		})
		res, err := runSet(defaultOpt(cfg), defaultOS(), set,
			func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				pl, err := core.NewPagedLoader(k, e, core.PagedConfig{
					PageCells: pt.pageCells, Frames: frames, Policy: pt.policy, Seed: cfg.Seed,
				})
				if err != nil {
					panic(err)
				}
				return pl
			})
		if err != nil {
			return nil, err
		}
		e := res.Engine
		faults := e.M.PageFaults.Value()
		return []any{pt.pageCells, pages, frames, pt.policy.String(), faults,
			float64(faults) / float64(refs*3), ms(e.M.ConfigTime), ms(res.Makespan)}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}

// F6Segmentation — §2: decompose a function into self-contained
// sub-functions loaded on demand; the monolithic alternative needs a
// device as large as all segments together.
func F6Segmentation(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F6",
		Title:   "Segmentation vs monolithic configuration",
		Note:    "paper §2: variable-size self-contained sub-functions vs one merged download",
		Columns: []string{"approach", "device_cols", "app_cells", "loads", "makespan_ms"},
	}
	stages := []*netlist.Netlist{
		netlist.ALU(8), netlist.Multiplier(4), netlist.BarrelShifter(16), netlist.PopCount(32),
	}
	mono, err := netlist.Concat("monolithic", stages...)
	if err != nil {
		return nil, err
	}
	passes := 3
	if cfg.Quick {
		passes = 2
	}
	segSet := func() *workload.Set {
		var prog []hostos.Op
		for p := 0; p < passes; p++ {
			for _, s := range stages {
				prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: s.Name, Evaluations: 50_000}))
			}
		}
		return &workload.Set{Tasks: []workload.TaskSpec{{Name: "app", Program: prog}}, Circuits: stages}
	}
	monoSet := func() *workload.Set {
		var prog []hostos.Op
		for p := 0; p < passes; p++ {
			for range stages {
				prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: mono.Name, Evaluations: 50_000}))
			}
		}
		return &workload.Set{Tasks: []workload.TaskSpec{{Name: "app", Program: prog}}, Circuits: []*netlist.Netlist{mono}}
	}

	// Automatic segmentation input: one large netlist (an 8x8 multiplier)
	// cut into k level-balanced stages by netlist.Segment — the paper's
	// "self-contained sub-functions having variable size" derived
	// mechanically rather than by hand.
	big := netlist.Multiplier(8)
	ks := []int{2, 4}
	if cfg.Quick {
		ks = []int{2}
	}

	// Phase 1 — probes. Strip compilation dominates this experiment, so
	// the independent probe compilations (hand stages + monolith, the
	// whole mul8, and each auto-segmentation) run in parallel; the
	// device-sizing arithmetic below consumes their widths.
	type probeResult struct {
		engine *core.Engine
		segs   []*netlist.Netlist // auto-segmentation probes only
	}
	probes, err := parMap(cfg.Jobs, 2+len(ks), func(i int) (probeResult, error) {
		switch i {
		case 0:
			e, err := engineFor(defaultOpt(cfg), append(append([]*netlist.Netlist{}, stages...), mono))
			return probeResult{engine: e}, err
		case 1:
			e, err := engineFor(defaultOpt(cfg), []*netlist.Netlist{big})
			return probeResult{engine: e}, err
		default:
			segs, err := netlist.Segment(big, ks[i-2])
			if err != nil {
				return probeResult{}, err
			}
			e, err := engineFor(defaultOpt(cfg), segs)
			return probeResult{engine: e, segs: segs}, err
		}
	})
	if err != nil {
		return nil, err
	}
	probe, wholeProbe := probes[0].engine, probes[1].engine
	maxSegW, segCells := 0, 0
	for _, s := range stages {
		c := probe.Lib[s.Name]
		segCells += c.Cells()
		if c.BS.W > maxSegW {
			maxSegW = c.BS.W
		}
	}
	monoW := probe.Lib[mono.Name].BS.W
	wholeW := wholeProbe.Lib[big.Name].BS.W

	// Phase 2 — runs: monolithic big, segmented small, one per
	// auto-segmentation k, and the whole-mul8 reference.
	runs, err := parRows(cfg.Jobs, 3+len(ks), func(i int) ([]any, error) {
		switch i {
		case 0: // monolithic on a device sized for it
			optBig := defaultOpt(cfg)
			optBig.Geometry.Cols = monoW + 2
			res, err := runSet(optBig, defaultOS(), monoSet(), dynamicMgr)
			if err != nil {
				return nil, err
			}
			return []any{"monolithic (big device)", optBig.Geometry.Cols, probe.Lib[mono.Name].Cells(),
				res.Engine.M.Loads.Value(), ms(res.Makespan)}, nil
		case 1: // segmented on a small device sized for the largest segment
			optSmall := defaultOpt(cfg)
			optSmall.Geometry.Cols = maxSegW + 2
			res, err := runSet(optSmall, defaultOS(), segSet(), dynamicMgr)
			if err != nil {
				return nil, err
			}
			return []any{"segmented (small device)", optSmall.Geometry.Cols, segCells,
				res.Engine.M.Loads.Value(), ms(res.Makespan)}, nil
		case 2 + len(ks): // whole mul8 reference on a device sized for it
			var prog []hostos.Op
			for p := 0; p < passes; p++ {
				for j := 0; j < 4; j++ {
					prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: big.Name, Evaluations: 50_000}))
				}
			}
			optWhole := defaultOpt(cfg)
			optWhole.Geometry.Cols = wholeW + 2
			res, err := runSet(optWhole, defaultOS(),
				&workload.Set{Tasks: []workload.TaskSpec{{Name: "app", Program: prog}}, Circuits: []*netlist.Netlist{big}},
				dynamicMgr)
			if err != nil {
				return nil, err
			}
			return []any{"whole mul8 (big device)", optWhole.Geometry.Cols,
				wholeProbe.Lib[big.Name].Cells(), res.Engine.M.Loads.Value(), ms(res.Makespan)}, nil
		default: // auto-segmented mul8 at ks[i-2]
			kSeg := ks[i-2]
			segs := probes[i].segs
			segProbe := probes[i].engine
			maxSegCols, totalCells := 0, 0
			for _, s := range segs {
				c := segProbe.Lib[s.Name]
				totalCells += c.Cells()
				if c.BS.W > maxSegCols {
					maxSegCols = c.BS.W
				}
			}
			var prog []hostos.Op
			for p := 0; p < passes; p++ {
				for _, s := range segs {
					prog = append(prog, hostos.UseFPGA(hostos.FPGARequest{Circuit: s.Name, Evaluations: 50_000}))
				}
			}
			set := &workload.Set{Tasks: []workload.TaskSpec{{Name: "app", Program: prog}}, Circuits: segs}
			optSeg := defaultOpt(cfg)
			optSeg.Geometry.Cols = maxSegCols + 2
			res, err := runSet(optSeg, defaultOS(), set, dynamicMgr)
			if err != nil {
				return nil, err
			}
			return []any{fmt.Sprintf("auto-segmented mul8 (k=%d)", kSeg), optSeg.Geometry.Cols,
				totalCells, res.Engine.M.Loads.Value(), ms(res.Makespan)}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	tbl.AddRow(runs[0]...)
	tbl.AddRow(runs[1]...)
	// Monolithic on the small device: infeasible by construction.
	tbl.AddRow("monolithic (small device)", maxSegW+2, probe.Lib[mono.Name].Cells(),
		"n/a", fmt.Sprintf("infeasible: needs %d cols", monoW))
	addRows(tbl, runs[2:])
	return tbl, nil
}

// F7Applications — §5's scenarios: multimedia codec switching, telecom
// protocol adaptation, embedded diagnosis. VFPGA on a small device is
// compared with software-only execution and a merged big-FPGA.
func F7Applications(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F7",
		Title:   "Application scenarios: VFPGA vs software vs big FPGA",
		Note:    "paper §5: cost reduction expands the market — same workloads, smaller device",
		Columns: []string{"scenario", "manager", "device_cols", "makespan_ms", "mean_turnaround_ms", "loads"},
	}
	scenarios := []struct {
		name string
		set  func() *workload.Set
		os   hostos.Config
	}{
		{"multimedia", func() *workload.Set {
			c := workload.DefaultMultimedia()
			c.Seed = cfg.Seed + 23
			if cfg.Quick {
				c.Streams, c.Frames = 2, 8
			}
			return workload.Multimedia(c)
		}, defaultOS()},
		{"telecom", func() *workload.Set {
			c := workload.DefaultTelecom()
			c.Seed = cfg.Seed + 29
			if cfg.Quick {
				c.Sessions = 4
			}
			return workload.Telecom(c)
		}, defaultOS()},
		{"diagnosis", func() *workload.Set {
			c := workload.DefaultDiagnosis()
			c.Seed = cfg.Seed + 31
			if cfg.Quick {
				c.ControlOps = 20
			}
			return workload.Diagnosis(c)
		}, hostos.Config{Policy: hostos.Priority, TimeSlice: 10 * sim.Millisecond, CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond}},
		{"storage", func() *workload.Set {
			c := workload.DefaultStorage()
			c.Seed = cfg.Seed + 41
			if cfg.Quick {
				c.Requests = 6
			}
			return workload.Storage(c)
		}, defaultOS()},
	}
	// Scenarios fan out in parallel, and each scenario fans its manager
	// comparison out again; rows flatten back in scenario-then-manager
	// order.
	perScenario, err := parMap(cfg.Jobs, len(scenarios), func(si int) ([][]any, error) {
		sc := scenarios[si]
		// Probe widths to size the small and big devices.
		probeSet := sc.set()
		probe, err := engineFor(defaultOpt(cfg), probeSet.Circuits)
		if err != nil {
			return nil, err
		}
		sumW, maxW := 0, 0
		var names []string
		for _, c := range probeSet.Circuits {
			w := probe.Lib[c.Name].BS.W
			sumW += w
			if w > maxW {
				maxW = w
			}
			names = append(names, c.Name)
		}
		smallCols := maxW + 2
		bigCols := sumW + 2

		managers := []struct {
			name string
			cols int
			mk   func(*sim.Kernel, *core.Engine) hostos.FPGA
		}{
			{"software only", smallCols, func(k *sim.Kernel, e *core.Engine) hostos.FPGA { return baseline.NewSoftware(e, 20) }},
			{"vfpga dynamic (small)", smallCols, dynamicMgr},
			{"vfpga partitions (mid)", (smallCols + bigCols) / 2,
				partitionMgr(core.PartitionConfig{Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true})},
			{"merged big FPGA", bigCols, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				m, _, err := baseline.NewMerged(k, e, names)
				if err != nil {
					panic(err)
				}
				return m
			}},
		}
		return parRows(cfg.Jobs, len(managers), func(mi int) ([]any, error) {
			m := managers[mi]
			opt := defaultOpt(cfg)
			opt.Geometry.Cols = m.cols
			res, err := runSet(opt, sc.os, sc.set(), m.mk)
			if err != nil {
				return nil, fmt.Errorf("F7 %s/%s: %w", sc.name, m.name, err)
			}
			return []any{sc.name, m.name, m.cols, ms(res.Makespan), ms(res.MeanTurnaround),
				res.Engine.M.Loads.Value()}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perScenario {
		addRows(tbl, rows)
	}
	return tbl, nil
}
