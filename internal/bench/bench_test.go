package bench

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Config { return Config{Seed: 1, Quick: true} }

// runExp executes an experiment in quick mode and returns its table.
func runExp(t *testing.T, id string) *traceTable {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tbl, err := e.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s row width %d != %d columns", id, len(row), len(tbl.Columns))
		}
	}
	return &traceTable{tbl.Columns, tbl.Rows}
}

type traceTable struct {
	cols []string
	rows [][]string
}

func (t *traceTable) col(name string) int {
	for i, c := range t.cols {
		if c == name {
			return i
		}
	}
	return -1
}

func (t *traceTable) f(row int, col string) float64 {
	v, err := strconv.ParseFloat(t.rows[row][t.col(col)], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s malformed", e.ID)
		}
	}
	for _, want := range []string{"T1", "T2", "T3", "T4", "T5", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "A1"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find invented an experiment")
	}
}

func TestT1Shape(t *testing.T) {
	tbl := runExp(t, "T1")
	// Full-only reconfiguration must be less efficient than partial at
	// the same work per op (the paper's feasibility claim).
	for i := 0; i+2 < len(tbl.rows); i += 3 {
		partial := tbl.f(i, "efficiency")
		full := tbl.f(i+2, "efficiency")
		if full >= partial {
			t.Fatalf("row %d: full efficiency %.3f >= partial %.3f", i, full, partial)
		}
	}
	// Efficiency rises with work per switch.
	first := tbl.f(0, "efficiency")
	last := tbl.f(len(tbl.rows)-3, "efficiency")
	if last <= first {
		t.Fatalf("efficiency should rise with evals/op: %.3f -> %.3f", first, last)
	}
}

func TestT2Shape(t *testing.T) {
	tbl := runExp(t, "T2")
	// Save/restore loses no work; rollback redoes some.
	for i := range tbl.rows {
		policy := tbl.rows[i][tbl.col("policy")]
		redone := tbl.f(i, "redone_ms")
		switch policy {
		case "save-restore", "non-preemptable":
			if redone != 0 {
				t.Fatalf("%s redid %.3f ms", policy, redone)
			}
		case "rollback":
			if redone <= 0 {
				t.Fatalf("rollback redid nothing")
			}
		}
	}
}

func TestT3Shape(t *testing.T) {
	tbl := runExp(t, "T3")
	// Any partitioned manager must reload less than whole-device dynamic.
	dynLoads := tbl.f(0, "loads")
	for i := 1; i < len(tbl.rows); i++ {
		if tbl.f(i, "loads") > dynLoads {
			t.Fatalf("%s loads %.0f > dynamic %.0f", tbl.rows[i][0], tbl.f(i, "loads"), dynLoads)
		}
	}
}

func TestT4Shape(t *testing.T) {
	tbl := runExp(t, "T4")
	// More resident circuits -> fewer loads.
	for i := 1; i < len(tbl.rows); i++ {
		if tbl.f(i, "loads") > tbl.f(i-1, "loads") {
			t.Fatalf("loads increased with larger resident set: row %d", i)
		}
	}
	if tbl.f(len(tbl.rows)-1, "loads") >= tbl.f(0, "loads") {
		t.Fatal("resident set saved no loads at all")
	}
}

func TestT5Shape(t *testing.T) {
	tbl := runExp(t, "T5")
	// Fewer pins -> higher mux factor -> proportionally slower.
	for i := 1; i < len(tbl.rows); i++ {
		if tbl.f(i, "mux_factor") <= tbl.f(i-1, "mux_factor") {
			t.Fatal("mux factor should rise as pins shrink")
		}
		if tbl.f(i, "slowdown") <= tbl.f(i-1, "slowdown") {
			t.Fatal("slowdown should rise with mux factor")
		}
	}
}

func TestF1Shape(t *testing.T) {
	tbl := runExp(t, "F1")
	// The merged reference row is the fastest; smaller devices cost more.
	ref := tbl.f(0, "makespan_ms")
	for i := 1; i < len(tbl.rows); i++ {
		if tbl.f(i, "makespan_ms") < ref {
			t.Fatalf("row %d beats the zero-reconfig reference", i)
		}
	}
	// The smallest device must still complete (the headline claim) with a
	// size ratio > 1 (application larger than device).
	last := len(tbl.rows) - 1
	if tbl.f(last, "size_ratio") <= 1 {
		t.Fatalf("smallest device not actually smaller than the application: ratio %.2f",
			tbl.f(last, "size_ratio"))
	}
}

func TestF2Shape(t *testing.T) {
	tbl := runExp(t, "F2")
	// At the largest task count, the exclusive baseline blocks more than
	// the partitioned manager.
	n := len(tbl.rows)
	exclBlock := tbl.f(n-3, "mean_block_ms")
	partBlock := tbl.f(n-1, "mean_block_ms")
	if exclBlock <= partBlock {
		t.Fatalf("exclusive block %.3f <= partitioned %.3f", exclBlock, partBlock)
	}
}

func TestF3Shape(t *testing.T) {
	tbl := runExp(t, "F3")
	// Small device: merged infeasible; large device: merged beats dynamic.
	if !strings.HasPrefix(tbl.rows[0][tbl.col("merged_makespan_ms")], "n/a") {
		t.Fatal("merged should not fit the smallest device")
	}
	last := len(tbl.rows) - 1
	merged := tbl.f(last, "merged_makespan_ms")
	dynamic := tbl.f(last, "dynamic_makespan_ms")
	if merged >= dynamic {
		t.Fatalf("on a big device merged %.3f should beat dynamic %.3f", merged, dynamic)
	}
}

func TestF4Shape(t *testing.T) {
	tbl := runExp(t, "F4")
	if len(tbl.rows) != 2 {
		t.Fatalf("rows %d", len(tbl.rows))
	}
	gcOff, gcOn := 0, 1
	if tbl.f(gcOn, "gc_runs") > 0 && tbl.f(gcOn, "relocations") == 0 {
		t.Fatal("GC ran without relocations")
	}
	if tbl.f(gcOff, "gc_runs") != 0 {
		t.Fatal("GC ran while disabled")
	}
}

func TestF5Shape(t *testing.T) {
	tbl := runExp(t, "F5")
	for i := range tbl.rows {
		rate := tbl.f(i, "fault_rate")
		if rate < 0 || rate > 1 {
			t.Fatalf("fault rate %.3f out of range", rate)
		}
		if tbl.f(i, "faults") <= 0 {
			t.Fatal("no faults at all")
		}
	}
}

func TestF6Shape(t *testing.T) {
	tbl := runExp(t, "F6")
	if len(tbl.rows) < 5 {
		t.Fatalf("rows %d", len(tbl.rows))
	}
	// Segmented runs on a smaller device than monolithic needs.
	monoCols := tbl.f(0, "device_cols")
	segCols := tbl.f(1, "device_cols")
	if segCols >= monoCols {
		t.Fatalf("segmented device %d not smaller than monolithic %d", int(segCols), int(monoCols))
	}
	if !strings.Contains(tbl.rows[2][tbl.col("makespan_ms")], "infeasible") {
		t.Fatal("monolithic-on-small row should be infeasible")
	}
	// Auto-segmentation: smaller device than the whole circuit needs, at
	// a makespan cost.
	last := len(tbl.rows) - 1 // whole mul8 reference
	autoRow := 3              // k=2
	if tbl.f(autoRow, "device_cols") >= tbl.f(last, "device_cols") {
		t.Fatal("auto-segmented device not smaller than whole-circuit device")
	}
	if tbl.f(autoRow, "makespan_ms") <= tbl.f(last, "makespan_ms") {
		t.Fatal("auto-segmentation should cost makespan")
	}
}

func TestF9Shape(t *testing.T) {
	tbl := runExp(t, "F9")
	if len(tbl.rows) != 2 {
		t.Fatalf("rows %d, want partition+amorphous", len(tbl.rows))
	}
	part, amor := 0, 1
	if got := tbl.rows[part][tbl.col("manager")]; got != "partition" {
		t.Fatalf("row 0 manager %q", got)
	}
	if got := tbl.rows[amor][tbl.col("manager")]; got != "amorphous" {
		t.Fatalf("row 1 manager %q", got)
	}
	// The tentpole's acceptance axis: on the identical churn the amorphous
	// manager must win on sustained utilization or tail admission latency.
	hwWin := tbl.f(amor, "hw_util") > tbl.f(part, "hw_util")
	tailWin := tbl.f(amor, "p95_block_ms") < tbl.f(part, "p95_block_ms")
	if !hwWin && !tailWin {
		t.Fatalf("amorphous wins neither axis: hw_util %.4f vs %.4f, p95_block %.3f vs %.3f",
			tbl.f(amor, "hw_util"), tbl.f(part, "hw_util"),
			tbl.f(amor, "p95_block_ms"), tbl.f(part, "p95_block_ms"))
	}
	// The adoption cache means a recurring circuit reattaches without a
	// fresh configuration, so loads must not exceed the partition run's.
	if tbl.f(amor, "loads") > tbl.f(part, "loads") {
		t.Fatalf("amorphous loads %.0f > partition %.0f", tbl.f(amor, "loads"), tbl.f(part, "loads"))
	}
}

func TestF7Shape(t *testing.T) {
	tbl := runExp(t, "F7")
	// Within each scenario: software is slowest; merged big FPGA loads 0
	// extra at run time... (init loads counted), and the dynamic VFPGA on
	// the small device completes everything.
	byScenario := map[string][][]string{}
	for _, row := range tbl.rows {
		byScenario[row[0]] = append(byScenario[row[0]], row)
	}
	if len(byScenario) != 4 {
		t.Fatalf("scenarios %d, want multimedia/telecom/diagnosis/storage", len(byScenario))
	}
	mk := tbl.col("makespan_ms")
	for name, rows := range byScenario {
		soft, _ := strconv.ParseFloat(rows[0][mk], 64)
		merged, _ := strconv.ParseFloat(rows[3][mk], 64)
		if soft <= merged {
			t.Fatalf("%s: software %.3f should be slower than big FPGA %.3f", name, soft, merged)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	e, _ := Find("T3")
	a, err := e.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("T3 not deterministic")
	}
}
