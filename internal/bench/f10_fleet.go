package bench

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/fleet"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// F10 — the fleet-scale bake-off: the same 10k-job churn mix replayed
// through each placement policy over a virtual rack. Placement is
// strip-packing with delays one level above the boards: every job is a
// rectangle whose width is its widest real compiled strip on the bench
// geometry and whose height is a modeled service time, and the policy
// decides which node's open strip it lands in. The replay (see
// fleet.RunBakeoff) is pure virtual time, so the rows measure routing
// quality alone — identical arrivals, identical rectangles, identical
// mid-run node failure.

// fleetClassPool is the churn mix: recurring narrow strips that
// checkerboard boards, a mid band, and wide multipliers that demand
// contiguity — the same tension the F4/F9 fragmentation studies create,
// lifted to fleet scale. Service time models evaluation work at the
// simulated 100 MHz fabric clock (evals × 10 ns).
func fleetClassPool() []struct {
	nl     *netlist.Netlist
	evals  int64
	weight int
} {
	return []struct {
		nl     *netlist.Netlist
		evals  int64
		weight int
	}{
		{netlist.Parity(16), 40_000, 5},
		{netlist.Adder(8), 60_000, 3},
		{netlist.ALU(8), 80_000, 2},
		{netlist.Multiplier(6), 120_000, 2},
		{netlist.Multiplier(8), 160_000, 1},
	}
}

// FleetBakeoffConfig builds the F10 scenario: class widths come from
// real strip compiles on the bench geometry, the arrival rate is tuned
// for ~90% offered load on the healthy fleet, and one node fails about
// 40% through the expected arrival span so every policy absorbs the
// same casualty.
func FleetBakeoffConfig(cfg Config) (fleet.BakeoffConfig, error) {
	geo := benchGeometry()
	jobs := 12_000
	if cfg.Quick {
		jobs = 1_500
	}
	// 12-column boards make contiguity scarce: the widest class fills
	// most of a board, so routing a wide strip to a checkerboarded node
	// blocks its whole queue — the failure mode packing exists to avoid.
	bcfg := fleet.BakeoffConfig{
		Nodes: 4, BoardsPerNode: 2, Cols: 12,
		Jobs: jobs, Seed: cfg.Seed,
		FailNode: 1,
	}
	opt := defaultOpt(cfg)
	var meanArea float64
	var totalWeight int
	for i, cl := range fleetClassPool() {
		tm := opt.Timing
		c, err := compile.CompileStrip(cl.nl, geo.Rows, geo.TracksPerChannel,
			compile.Options{Seed: opt.Seed + uint64(i), Timing: &tm})
		if err != nil {
			return fleet.BakeoffConfig{}, fmt.Errorf("bench F10: compile %s: %w", cl.nl.Name, err)
		}
		w, _ := c.Footprint()
		dur := sim.Time(cl.evals) * 10 * sim.Nanosecond
		bcfg.Classes = append(bcfg.Classes, fleet.JobClass{
			Name: cl.nl.Name, Width: w, Duration: dur, Weight: cl.weight,
		})
		meanArea += float64(w) * float64(dur) * float64(cl.weight)
		totalWeight += cl.weight
	}
	meanArea /= float64(totalWeight)
	// Offered load ~0.9: mean inter-arrival = E[width×duration] over
	// 90% of the fleet's column capacity. High enough that a policy's
	// packing quality shows up in queue delay, low enough to stay stable.
	totalCols := float64(bcfg.Nodes * bcfg.BoardsPerNode * bcfg.Cols)
	bcfg.MeanInterval = sim.Time(meanArea / (0.9 * totalCols))
	// The casualty lands ~40% through the arrival span: enough history
	// to have packed the failed node, enough future to measure recovery.
	bcfg.FailAt = sim.Time(jobs) * bcfg.MeanInterval * 4 / 10
	return bcfg, nil
}

// F10PlacementBakeoff — fleet placement policies under identical churn:
// sustained hardware utilization, tail admission latency and
// displacement counts per policy. The packing policy should beat the
// random control on both utilization and p99 admission latency; firstfit
// sits between.
func F10PlacementBakeoff(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F10",
		Title:   "Fleet placement-policy bake-off under churn with a node casualty",
		Note:    "same arrivals, rectangles and mid-run node failure per policy; only routing differs",
		Columns: []string{"policy", "jobs", "completed", "hw_util", "p50_admit_ms", "p99_admit_ms", "requeues", "mean_score", "makespan_ms"},
	}
	bcfg, err := FleetBakeoffConfig(cfg)
	if err != nil {
		return nil, err
	}
	policies := fleet.PolicyNames
	rows, err := parRows(cfg.Jobs, len(policies), func(i int) ([]any, error) {
		row, err := fleet.RunBakeoff(bcfg, policies[i])
		if err != nil {
			return nil, err
		}
		return []any{row.Policy, row.Jobs, row.Completed, row.HWUtil,
			row.P50AdmitMS, row.P99AdmitMS, row.Requeues, row.MeanScore, row.MakespanMS}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}
