package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// F9AmorphousRegions — §4 refined: fixed-boundary variable partitions
// vs amorphous flexible-boundary regions on the same fragmenting churn.
// The amorphous manager slides neighbors instead of splitting and
// merging slots, and keeps exited strips resident as an adoption cache,
// so a recurring circuit reattaches at zero configuration cost. The row
// pair records the before/after of the tentpole: sustained utilization
// and tail admission (block) latency under identical load.
func F9AmorphousRegions(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "F9",
		Title:   "Amorphous regions vs variable partitions under churn",
		Note:    "flexible boundaries slide instead of split/merge; exited strips stay cached for adoption",
		Columns: []string{"manager", "mean_frag", "max_frag", "util_mean_clbs", "hw_util", "blocks", "p95_block_ms", "loads", "relocations", "makespan_ms"},
	}
	small := 24
	wide := 6
	if cfg.Quick {
		small, wide = 10, 3
	}
	// The F4 churn shape, kept verbatim so the comparison isolates the
	// residency model: narrow recurring tasks checkerboard the device,
	// staggered exits leave holes, and wide tasks demand contiguity no
	// single hole provides.
	narrowPool := []*netlist.Netlist{netlist.Parity(16), netlist.Adder(8), netlist.Comparator(16)}
	widePool := []*netlist.Netlist{netlist.Multiplier(6), netlist.Multiplier(8)}
	mkSet := func() *workload.Set {
		src := rng.New(cfg.Seed + 17)
		set := &workload.Set{Circuits: append(append([]*netlist.Netlist{}, narrowPool...), widePool...)}
		arrival := sim.Time(0)
		for i := 0; i < small; i++ {
			taskSrc := src.Split()
			arrival += sim.Time(float64(sim.Millisecond) * taskSrc.ExpFloat64())
			c := narrowPool[taskSrc.Intn(len(narrowPool))]
			dur := sim.Time(taskSrc.Intn(5)+1) * 2 * sim.Millisecond
			set.Tasks = append(set.Tasks, workload.TaskSpec{
				Name:    fmt.Sprintf("small%d", i),
				Arrival: arrival,
				Program: []hostos.Op{
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 50_000}),
					hostos.Compute(dur),
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 50_000}),
				},
			})
		}
		for i := 0; i < wide; i++ {
			c := widePool[i%len(widePool)]
			set.Tasks = append(set.Tasks, workload.TaskSpec{
				Name:    fmt.Sprintf("wide%d", i),
				Arrival: sim.Time(6+5*i) * sim.Millisecond,
				Program: []hostos.Op{
					hostos.UseFPGA(hostos.FPGARequest{Circuit: c.Name, Evaluations: 80_000}),
				},
			})
		}
		return set
	}
	managers := []string{"partition", "amorphous"}
	rows, err := parRows(cfg.Jobs, len(managers), func(i int) ([]any, error) {
		k := sim.New()
		set := mkSet()
		opt := defaultOpt(cfg)
		opt.Geometry.Cols = 12 // tight enough that holes matter
		e, err := engineFor(opt, set.Circuits)
		if err != nil {
			return nil, err
		}
		var mgr hostos.FPGA
		var frag func() core.FragStats
		switch managers[i] {
		case "partition":
			pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
				Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
			})
			if err != nil {
				return nil, err
			}
			mgr, frag = pm, pm.Frag
		case "amorphous":
			am := core.NewAmorphousManager(k, e, core.DefaultAmorphousConfig())
			mgr, frag = am, am.Frag
		}
		os := hostos.New(k, defaultOS(), mgr)
		if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
			att.AttachOS(os)
		}
		set.Spawn(os)
		fragSample := stats.NewSample(false)
		// Sample fragmentation every millisecond while the run progresses.
		for !os.AllDone() {
			fired := k.RunUntil(k.Now() + sim.Millisecond)
			f := frag()
			if f.FreeCols > 0 && f.FreeCols < opt.Geometry.Cols {
				fragSample.Observe(f.Ratio())
			}
			if fired == 0 && k.Pending() == 0 && !os.AllDone() {
				return nil, fmt.Errorf("bench F9: deadlock with manager=%s", managers[i])
			}
		}
		block := stats.NewSample(true)
		var hwTotal sim.Time
		for _, t := range os.Tasks() {
			block.Observe(float64(t.BlockWait))
			hwTotal += t.HWTime
		}
		// Sustained utilization: useful evaluation time delivered per unit
		// of makespan. The two runs execute the identical workload, so
		// whichever residency model finishes it in less virtual time kept
		// the device doing more useful work per cycle. UtilMean cannot
		// show this — it averages configured CLBs over each run's own
		// (different) makespan.
		hwUtil := float64(hwTotal) / float64(os.Makespan())
		snap := e.M.Snapshot(k.Now())
		return []any{managers[i], fragSample.Mean(), fragSample.Max(), snap.UtilMean, hwUtil,
			e.M.Blocks.Value(), ms(sim.Time(block.Quantile(0.95))),
			e.M.Loads.Value(), e.M.Relocations.Value(), ms(os.Makespan())}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}
