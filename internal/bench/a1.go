package bench

import (
	"sort"

	"repro/internal/compile"
	"repro/internal/netlist"
	"repro/internal/trace"
)

// A1OptimizerAblation — toolchain ablation: what the logic optimizer
// (constant folding, CSE, dead-logic sweep) is worth in CLB area and
// download time. The paper's feasibility argument depends on download
// time, which is proportional to configured cells; the optimizer is a
// direct lever on it.
func A1OptimizerAblation(cfg Config) (*trace.Table, error) {
	tbl := &trace.Table{
		ID:      "A1",
		Title:   "Logic optimizer ablation: CLB area and download time",
		Note:    "ablation: config time ~ cells, so netlist optimization buys reconfiguration speed",
		Columns: []string{"circuit", "cells_raw", "cells_opt", "saving", "config_raw_ms", "config_opt_ms", "clock_raw", "clock_opt"},
	}
	names := []string{"adder16", "cla16", "alu8", "cmp16", "prienc8", "mul4", "popcount16", "sevenseg", "sort4x4", "crc16"}
	if cfg.Quick {
		names = []string{"alu8", "prienc8", "sevenseg"}
	}
	sort.Strings(names)
	reg := netlist.Registry()
	opt := defaultOpt(cfg)
	tm := opt.Timing
	rows, err := parRows(cfg.Jobs, len(names), func(i int) ([]any, error) {
		name := names[i]
		nl := reg[name]()
		raw, err := stripCache.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
			compile.Options{Seed: cfg.Seed + 3, Timing: &tm, DisableOpt: true})
		if err != nil {
			return nil, err
		}
		optc, err := stripCache.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
			compile.Options{Seed: cfg.Seed + 3, Timing: &tm})
		if err != nil {
			return nil, err
		}
		saving := 1 - float64(optc.Cells())/float64(raw.Cells())
		return []any{name, raw.Cells(), optc.Cells(), saving,
			ms(raw.BS.ConfigCost(tm)), ms(optc.BS.ConfigCost(tm)),
			raw.ClockPeriod.String(), optc.ClockPeriod.String()}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(tbl, rows)
	return tbl, nil
}
