// Package place assigns the cells of a technology-mapped design to CLB
// locations inside a rectangular region. Placements are expressed in
// region-relative coordinates, which is what makes compiled circuits
// relocatable: the paper's variable partitioning and garbage collection
// depend on loading the same configuration "virtually in any location of
// the FPGA".
//
// The placer is a greedy scan-order seed refined by simulated annealing
// over half-perimeter wirelength. It is deterministic for a given seed.
package place

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/techmap"
)

// Loc is a region-relative CLB coordinate.
type Loc struct {
	X, Y int
}

// Placement maps every cell of a mapped design to a distinct location in a
// W x H region (origin at (0,0); the loader translates on download).
type Placement struct {
	Mapped *techmap.Mapped
	W, H   int
	Cells  []Loc // indexed by CellID
	// InPorts and OutPorts are the nominal boundary positions of the
	// primary inputs and outputs, used for wirelength and routing; the
	// manager binds them to physical device pins at load time.
	InPorts  []Loc
	OutPorts []Loc
	// Wirelength is the final half-perimeter wirelength (quality metric).
	Wirelength int
}

// Options tunes the placer.
type Options struct {
	Seed uint64
	// Effort scales the annealing schedule; 0 selects the default. Higher
	// effort improves wirelength at linear cost.
	Effort int
}

// Shape returns a near-square region shape with enough cells for the
// design plus routing slack. The minimum slack keeps the router from
// being boxed in on dense designs.
func Shape(cells int) (w, h int) {
	if cells <= 0 {
		return 1, 1
	}
	target := cells + cells/8 + 1 // ~12% slack
	w = int(math.Ceil(math.Sqrt(float64(target))))
	h = (target + w - 1) / w
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// net is a source position index plus sink position indices into the
// placer's combined position table.
type net struct {
	pins []int // indices into pos; pins[0] is the source
}

// placer state: positions 0..numCells-1 are movable cells; the rest are
// fixed port positions.
type placer struct {
	m        *techmap.Mapped
	w, h     int
	cellLoc  []Loc
	inPorts  []Loc
	outPorts []Loc
	nets     []net
	netsAt   [][]int // nets touching each cell
	src      *rng.Source
}

// Place places m into a w x h region. It returns an error if the region
// is too small.
func Place(m *techmap.Mapped, w, h int, opt Options) (*Placement, error) {
	if m.NumCells() > w*h {
		return nil, fmt.Errorf("place: %s needs %d cells, region %dx%d has %d",
			m.Name, m.NumCells(), w, h, w*h)
	}
	p := &placer{m: m, w: w, h: h, src: rng.New(opt.Seed ^ 0x9e3779b97f4a7c15)}
	p.seedPorts()
	p.seedCells()
	p.buildNets()
	effort := opt.Effort
	if effort <= 0 {
		effort = 1
	}
	p.anneal(effort)
	res := &Placement{
		Mapped:   m,
		W:        w,
		H:        h,
		Cells:    p.cellLoc,
		InPorts:  p.inPorts,
		OutPorts: p.outPorts,
	}
	res.Wirelength = res.TotalWirelength()
	return res, nil
}

// seedPorts distributes input ports along the left edge and output ports
// along the right edge.
func (p *placer) seedPorts() {
	spread := func(n, edgeX int) []Loc {
		locs := make([]Loc, n)
		for i := range locs {
			y := 0
			if n > 1 {
				y = i * (p.h - 1) / (n - 1)
			}
			locs[i] = Loc{X: edgeX, Y: y}
		}
		return locs
	}
	p.inPorts = spread(p.m.NumInputs, 0)
	p.outPorts = spread(len(p.m.Outputs), p.w-1)
}

// seedCells assigns initial locations in scan order, which keeps
// topologically adjacent cells physically adjacent (cells are created in
// topological-ish order by the mapper).
func (p *placer) seedCells() {
	p.cellLoc = make([]Loc, p.m.NumCells())
	for i := range p.cellLoc {
		p.cellLoc[i] = Loc{X: i % p.w, Y: i / p.w}
	}
}

// position returns the current location of a combined position index:
// [0, numCells) are cells, then input ports, then output ports.
func (p *placer) position(idx int) Loc {
	n := p.m.NumCells()
	if idx < n {
		return p.cellLoc[idx]
	}
	idx -= n
	if idx < len(p.inPorts) {
		return p.inPorts[idx]
	}
	return p.outPorts[idx-len(p.inPorts)]
}

// buildNets creates one net per driving signal.
func (p *placer) buildNets() {
	n := p.m.NumCells()
	bySource := map[int][]int{} // source position index -> sink position indices
	addSink := func(sig techmap.Signal, sinkIdx int) {
		switch sig.Kind {
		case techmap.SigCell:
			bySource[int(sig.Cell)] = append(bySource[int(sig.Cell)], sinkIdx)
		case techmap.SigInput:
			bySource[n+sig.Input] = append(bySource[n+sig.Input], sinkIdx)
		}
	}
	for ci := range p.m.Cells {
		for _, in := range p.m.Cells[ci].Inputs {
			addSink(in, ci)
		}
	}
	for oi, sig := range p.m.Outputs {
		addSink(sig, n+p.m.NumInputs+oi)
	}
	p.netsAt = make([][]int, n)
	// Deterministic net order: iterate sources in index order.
	for srcIdx := 0; srcIdx < n+p.m.NumInputs; srcIdx++ {
		sinks, ok := bySource[srcIdx]
		if !ok {
			continue
		}
		pins := append([]int{srcIdx}, sinks...)
		netID := len(p.nets)
		p.nets = append(p.nets, net{pins: pins})
		for _, pin := range pins {
			if pin < n {
				p.netsAt[pin] = append(p.netsAt[pin], netID)
			}
		}
	}
}

// hpwl returns the half-perimeter wirelength of one net.
func (p *placer) hpwl(nt *net) int {
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := -1, -1
	for _, pin := range nt.pins {
		l := p.position(pin)
		if l.X < minX {
			minX = l.X
		}
		if l.X > maxX {
			maxX = l.X
		}
		if l.Y < minY {
			minY = l.Y
		}
		if l.Y > maxY {
			maxY = l.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// costAround sums the wirelength of all nets touching the given cells.
func (p *placer) costAround(cells ...int) int {
	seen := map[int]bool{}
	total := 0
	for _, c := range cells {
		if c < 0 || c >= len(p.netsAt) {
			continue
		}
		for _, nid := range p.netsAt[c] {
			if !seen[nid] {
				seen[nid] = true
				total += p.hpwl(&p.nets[nid])
			}
		}
	}
	return total
}

// anneal runs simulated annealing with swap and relocate moves.
func (p *placer) anneal(effort int) {
	nCells := p.m.NumCells()
	if nCells <= 1 || len(p.nets) == 0 {
		return
	}
	occupied := make(map[Loc]int, nCells) // loc -> cell index
	for i, l := range p.cellLoc {
		occupied[l] = i
	}
	iters := effort * 160 * nCells
	temp := float64(p.w + p.h)
	cooling := math.Pow(0.005/temp, 1/float64(iters+1))
	for it := 0; it < iters; it++ {
		ci := p.src.Intn(nCells)
		target := Loc{X: p.src.Intn(p.w), Y: p.src.Intn(p.h)}
		cj, swap := occupied[target]
		if swap && cj == ci {
			temp *= cooling
			continue
		}
		var before, after int
		if swap {
			before = p.costAround(ci, cj)
			p.cellLoc[ci], p.cellLoc[cj] = p.cellLoc[cj], p.cellLoc[ci]
			after = p.costAround(ci, cj)
		} else {
			before = p.costAround(ci)
			old := p.cellLoc[ci]
			p.cellLoc[ci] = target
			after = p.costAround(ci)
			if accept(before, after, temp, p.src) {
				delete(occupied, old)
				occupied[target] = ci
				temp *= cooling
				continue
			}
			p.cellLoc[ci] = old
			temp *= cooling
			continue
		}
		if accept(before, after, temp, p.src) {
			occupied[p.cellLoc[ci]] = ci
			occupied[p.cellLoc[cj]] = cj
		} else {
			p.cellLoc[ci], p.cellLoc[cj] = p.cellLoc[cj], p.cellLoc[ci]
		}
		temp *= cooling
	}
}

func accept(before, after int, temp float64, src *rng.Source) bool {
	if after <= before {
		return true
	}
	return src.Float64() < math.Exp(float64(before-after)/temp)
}

// TotalWirelength recomputes the HPWL of the placement (exposed for tests
// and reports).
func (pl *Placement) TotalWirelength() int {
	p := &placer{m: pl.Mapped, w: pl.W, h: pl.H, cellLoc: pl.Cells, inPorts: pl.InPorts, outPorts: pl.OutPorts}
	p.buildNets()
	total := 0
	for i := range p.nets {
		total += p.hpwl(&p.nets[i])
	}
	return total
}

// Validate checks that the placement is legal: every cell inside the
// region, no two cells on the same location.
func (pl *Placement) Validate() error {
	seen := make(map[Loc]techmap.CellID, len(pl.Cells))
	for i, l := range pl.Cells {
		if l.X < 0 || l.X >= pl.W || l.Y < 0 || l.Y >= pl.H {
			return fmt.Errorf("place: cell %d at %v outside %dx%d", i, l, pl.W, pl.H)
		}
		if prev, dup := seen[l]; dup {
			return fmt.Errorf("place: cells %d and %d share %v", prev, i, l)
		}
		seen[l] = techmap.CellID(i)
	}
	return nil
}
