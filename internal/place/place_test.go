package place

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/techmap"
)

func mustMap(t *testing.T, nl *netlist.Netlist) *techmap.Mapped {
	t.Helper()
	m, err := techmap.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestShape(t *testing.T) {
	cases := []struct{ cells, minArea int }{
		{0, 1}, {1, 1}, {10, 10}, {100, 100}, {576, 576},
	}
	for _, c := range cases {
		w, h := Shape(c.cells)
		if w*h < c.minArea {
			t.Fatalf("Shape(%d) = %dx%d too small", c.cells, w, h)
		}
		if c.cells > 4 && w*h > 2*c.cells+4 {
			t.Fatalf("Shape(%d) = %dx%d wastes too much", c.cells, w, h)
		}
	}
}

func TestPlaceLegal(t *testing.T) {
	for _, nl := range []*netlist.Netlist{
		netlist.Adder(8), netlist.Multiplier(4), netlist.Counter(8), netlist.ALU(8),
	} {
		m := mustMap(t, nl)
		w, h := Shape(m.NumCells())
		p, err := Place(m, w, h, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", nl.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", nl.Name, err)
		}
		if len(p.InPorts) != m.NumInputs || len(p.OutPorts) != len(m.Outputs) {
			t.Fatalf("%s: port counts wrong", nl.Name)
		}
	}
}

func TestPlaceTooSmall(t *testing.T) {
	m := mustMap(t, netlist.Adder(8))
	if _, err := Place(m, 2, 2, Options{}); err == nil {
		t.Fatal("placement into too-small region accepted")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	m := mustMap(t, netlist.Adder(16))
	w, h := Shape(m.NumCells())
	a, err := Place(m, w, h, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(m, w, h, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d placed differently across identical runs", i)
		}
	}
}

func TestAnnealingImprovesOverScanOrder(t *testing.T) {
	m := mustMap(t, netlist.Multiplier(6))
	w, h := Shape(m.NumCells())
	// Scan-order-only baseline: effort so tiny annealing barely runs is
	// not expressible, so construct the seed placement by hand.
	seed := &Placement{Mapped: m, W: w, H: h}
	seed.Cells = make([]Loc, m.NumCells())
	for i := range seed.Cells {
		seed.Cells[i] = Loc{X: i % w, Y: i / w}
	}
	p := &placer{m: m, w: w, h: h}
	p.seedPorts()
	seed.InPorts, seed.OutPorts = p.inPorts, p.outPorts
	base := seed.TotalWirelength()

	annealed, err := Place(m, w, h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Wirelength > base {
		t.Fatalf("annealed WL %d worse than scan-order %d", annealed.Wirelength, base)
	}
}

func TestHigherEffortNotWorse(t *testing.T) {
	m := mustMap(t, netlist.ALU(8))
	w, h := Shape(m.NumCells())
	low, err := Place(m, w, h, Options{Seed: 5, Effort: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Place(m, w, h, Options{Seed: 5, Effort: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Annealing is stochastic; allow a small regression margin.
	if float64(high.Wirelength) > 1.15*float64(low.Wirelength) {
		t.Fatalf("effort 4 WL %d much worse than effort 1 WL %d", high.Wirelength, low.Wirelength)
	}
}

func TestZeroCellDesign(t *testing.T) {
	b := netlist.NewBuilder("wire")
	b.Output("y", b.Input("a"))
	m := mustMap(t, b.MustBuild())
	p, err := Place(m, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWirelengthConsistent(t *testing.T) {
	m := mustMap(t, netlist.Adder(8))
	w, h := Shape(m.NumCells())
	p, err := Place(m, w, h, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if p.Wirelength != p.TotalWirelength() {
		t.Fatalf("stored WL %d != recomputed %d", p.Wirelength, p.TotalWirelength())
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	m := mustMap(t, netlist.Adder(4))
	w, h := Shape(m.NumCells())
	p, err := Place(m, w, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Cells[1] = p.Cells[0]
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping cells not caught")
	}
}

func TestValidateCatchesOutOfRegion(t *testing.T) {
	m := mustMap(t, netlist.Adder(4))
	w, h := Shape(m.NumCells())
	p, err := Place(m, w, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Cells[0] = Loc{X: w, Y: 0}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-region cell not caught")
	}
}

func BenchmarkPlaceAdder16(b *testing.B) {
	m, err := techmap.Map(netlist.Adder(16))
	if err != nil {
		b.Fatal(err)
	}
	w, h := Shape(m.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(m, w, h, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
