package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Managers lists the hostos.FPGA implementations a board can run.
var Managers = []string{"dynamic", "partition", "amorphous", "overlay", "paged", "multi", "exclusive", "software", "merged"}

// BoardConfig describes one simulated board of the pool. The simulated
// hardware is built from this config once, then reset to its pristine
// snapshot between jobs (see boardRuntime) — with a full rebuild as the
// fallback — so per-job results are exactly what a direct hostos run of
// the same workload produces, independent of queue order and of whatever
// ran on the board before.
type BoardConfig struct {
	// Manager is one of Managers.
	Manager string
	// Cols and Rows shape the device.
	Cols, Rows int
	// SubBoards is the device count for the multi manager (ignored
	// otherwise; minimum 1).
	SubBoards int
	// Sched and Slice configure the host OS scheduler.
	Sched string
	Slice sim.Time
	// Seed is the board's compilation seed (the engine's Options.Seed).
	Seed uint64
	// QueueDepth bounds the board's job queue; submissions beyond it get
	// 429 backpressure.
	QueueDepth int
	// Faults, when non-nil, arms this board's engines with the fault
	// plan (each engine derives its own stream from it). Every job sees
	// the injector at its post-construction stream position — cold builds
	// get a fresh injector, warm resets replay a clone to the captured
	// position — so which faults a job sees depends only on the plan and
	// the job's own op sequence, never on queue order.
	Faults *fault.Plan
}

// DefaultBoardConfig returns a dynamic-loader board on the default
// 32x16 device.
func DefaultBoardConfig() BoardConfig {
	return BoardConfig{
		Manager: "dynamic", Cols: 32, Rows: 16, SubBoards: 2,
		Sched: "rr", Slice: 10 * sim.Millisecond, Seed: 1, QueueDepth: 16,
	}
}

// Validate rejects configs the runner cannot build.
func (bc *BoardConfig) Validate() error {
	found := false
	for _, m := range Managers {
		if bc.Manager == m {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("serve: unknown manager %q (have %v)", bc.Manager, Managers)
	}
	switch bc.Sched {
	case "fifo", "rr", "priority":
	default:
		return fmt.Errorf("serve: unknown scheduler %q", bc.Sched)
	}
	if bc.Cols <= 0 || bc.Rows <= 0 {
		return fmt.Errorf("serve: bad geometry %dx%d", bc.Cols, bc.Rows)
	}
	if bc.QueueDepth <= 0 {
		return fmt.Errorf("serve: queue depth must be positive")
	}
	return nil
}

// NewDirectRunner returns a loadgen.RunFunc that executes each spec on
// a board built from bc: the same cold path as runJob, memoized by the
// spec's canonical JSON. Memoization is sound because a job's result is
// a pure function of (config, spec) — the warm-board equivalence suite
// pins that — so a trace with repeated specs costs one simulation per
// distinct spec. A fault escalation is a job outcome (Failed with the
// typed kind); any other error is infrastructure and aborts the replay.
// The returned func keeps single-goroutine state: call it from one
// goroutine (loadgen.Execute does).
func NewDirectRunner(bc BoardConfig) (loadgen.RunFunc, error) {
	if err := bc.Validate(); err != nil {
		return nil, err
	}
	cache := compile.NewStripCache(compile.DefaultCacheCapacity)
	memo := map[string]loadgen.Outcome{}
	return func(tenant string, spec *workload.Spec) (loadgen.Outcome, error) {
		key, err := json.Marshal(spec)
		if err != nil {
			return loadgen.Outcome{}, fmt.Errorf("serve: canonicalize spec: %w", err)
		}
		if o, ok := memo[string(key)]; ok {
			return o, nil
		}
		res, err := runJob(cache, bc, spec, false)
		var o loadgen.Outcome
		switch {
		case err == nil:
			o = loadgen.Outcome{Service: res.Makespan}
		default:
			esc, ok := fault.AsEscalation(err)
			if !ok {
				return loadgen.Outcome{}, err
			}
			o = loadgen.Outcome{Failed: true, FaultKind: esc.Kind.String()}
		}
		memo[string(key)] = o
		return o, nil
	}, nil
}

// runJob executes one workload spec on a freshly built board and
// returns the wire-form result: build the stack cold, run once, drop it.
// It is the warm path's rebuild fallback and the reference the warm
// equivalence suite compares against. It is called from the board's
// goroutine only: everything it builds (kernel, engine, managers, OS) is
// single-goroutine state confined to that stack.
func runJob(cache *compile.StripCache, bc BoardConfig, spec *workload.Spec, withTrace bool) (res *JobResult, err error) {
	// rt.run recovers panics raised while simulating; this recover covers
	// the build path too, so a panicking constructor fails the job, not
	// the daemon. Fault escalations stay typed through both.
	defer func() {
		if r := recover(); r != nil {
			if esc, ok := fault.AsEscalation(r); ok {
				res, err = nil, esc
				return
			}
			res, err = nil, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	set, err := spec.Build()
	if err != nil {
		return nil, err
	}
	circs, err := compileSet(cache, bc, set)
	if err != nil {
		return nil, err
	}
	rt, err := buildRuntime(bc, set, circs)
	if err != nil {
		return nil, err
	}
	return rt.run(set, circs, withTrace, false)
}
