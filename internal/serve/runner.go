package serve

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Managers lists the hostos.FPGA implementations a board can run.
var Managers = []string{"dynamic", "partition", "overlay", "paged", "multi", "exclusive", "software", "merged"}

// BoardConfig describes one simulated board of the pool. The simulated
// hardware is rebuilt from this config for every job — the moral
// equivalent of fully reprogramming the physical FPGA between tenants —
// so per-job results are exactly what a direct hostos run of the same
// workload produces, independent of queue order and of whatever ran on
// the board before.
type BoardConfig struct {
	// Manager is one of Managers.
	Manager string
	// Cols and Rows shape the device.
	Cols, Rows int
	// SubBoards is the device count for the multi manager (ignored
	// otherwise; minimum 1).
	SubBoards int
	// Sched and Slice configure the host OS scheduler.
	Sched string
	Slice sim.Time
	// Seed is the board's compilation seed (the engine's Options.Seed).
	Seed uint64
	// QueueDepth bounds the board's job queue; submissions beyond it get
	// 429 backpressure.
	QueueDepth int
	// Faults, when non-nil, arms this board's engines with the fault
	// plan (each engine derives its own stream from it). A fresh
	// injector is built per job, like the board itself, so which faults
	// a job sees depends only on the plan and the job's own op sequence,
	// never on queue order.
	Faults *fault.Plan
}

// DefaultBoardConfig returns a dynamic-loader board on the default
// 32x16 device.
func DefaultBoardConfig() BoardConfig {
	return BoardConfig{
		Manager: "dynamic", Cols: 32, Rows: 16, SubBoards: 2,
		Sched: "rr", Slice: 10 * sim.Millisecond, Seed: 1, QueueDepth: 16,
	}
}

// Validate rejects configs the runner cannot build.
func (bc *BoardConfig) Validate() error {
	found := false
	for _, m := range Managers {
		if bc.Manager == m {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("serve: unknown manager %q (have %v)", bc.Manager, Managers)
	}
	switch bc.Sched {
	case "fifo", "rr", "priority":
	default:
		return fmt.Errorf("serve: unknown scheduler %q", bc.Sched)
	}
	if bc.Cols <= 0 || bc.Rows <= 0 {
		return fmt.Errorf("serve: bad geometry %dx%d", bc.Cols, bc.Rows)
	}
	if bc.QueueDepth <= 0 {
		return fmt.Errorf("serve: queue depth must be positive")
	}
	return nil
}

// runJob executes one workload spec on a freshly built board and
// returns the wire-form result. It is called from the board's goroutine
// only: everything it builds (kernel, engine, managers, OS) is
// single-goroutine state confined to that stack.
func runJob(cache *compile.StripCache, bc BoardConfig, spec *workload.Spec, withTrace bool) (res *JobResult, err error) {
	// A panicking job must fail, not take the daemon down with it: every
	// piece of simulation state is confined to this call (the board is
	// rebuilt per job), so recovery cannot leave shared state corrupted.
	// A fault escalation stays typed through the recover so the pool can
	// quarantine the board and requeue the job.
	defer func() {
		if r := recover(); r != nil {
			if esc, ok := fault.AsEscalation(r); ok {
				res, err = nil, esc
				return
			}
			res, err = nil, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	set, err := spec.Build()
	if err != nil {
		return nil, err
	}

	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = bc.Cols, bc.Rows
	opt.Seed = bc.Seed
	k := sim.New()

	engIdx := 0
	newEngine := func() (*core.Engine, error) {
		e := core.NewEngine(opt)
		if bc.Faults != nil {
			plan := bc.Faults.Derive(uint64(engIdx))
			e.Ledger().InjectFaults(fault.NewInjector(plan))
		}
		engIdx++
		for i, nl := range set.Circuits {
			tm := opt.Timing
			c, err := cache.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
				compile.Options{Seed: opt.Seed + uint64(i), Timing: &tm})
			if err != nil {
				return nil, fmt.Errorf("serve: compile %s: %w", nl.Name, err)
			}
			e.Lib[nl.Name] = c
		}
		return e, nil
	}

	e, err := newEngine()
	if err != nil {
		return nil, err
	}
	engines := []*core.Engine{e}

	var mgr hostos.FPGA
	switch bc.Manager {
	case "dynamic":
		mgr = core.NewDynamicLoader(k, e)
	case "partition":
		pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return nil, err
		}
		mgr = pm
	case "overlay":
		om, _, err := core.NewOverlayManager(k, e, set.CircuitNames()[:1])
		if err != nil {
			return nil, err
		}
		mgr = om
	case "paged":
		pl, err := core.NewPagedLoader(k, e, core.PagedConfig{PageCells: 16, Policy: core.LRU, Seed: bc.Seed})
		if err != nil {
			return nil, err
		}
		mgr = pl
	case "multi":
		n := bc.SubBoards
		if n < 1 {
			n = 1
		}
		for i := 1; i < n; i++ {
			be, err := newEngine()
			if err != nil {
				return nil, err
			}
			engines = append(engines, be)
		}
		mm, err := core.NewMultiManager(k, engines, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return nil, err
		}
		mgr = mm
	case "exclusive":
		mgr = baseline.NewExclusive(k, e)
	case "software":
		mgr = baseline.NewSoftware(e, 20)
	case "merged":
		m, _, err := baseline.NewMerged(k, e, set.CircuitNames())
		if err != nil {
			return nil, err
		}
		mgr = m
	default:
		return nil, fmt.Errorf("serve: unknown manager %q", bc.Manager)
	}

	osCfg := hostos.Config{TimeSlice: bc.Slice, CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond}
	switch bc.Sched {
	case "fifo":
		osCfg.Policy = hostos.FIFO
	case "rr":
		osCfg.Policy = hostos.RR
	case "priority":
		osCfg.Policy = hostos.Priority
	default:
		return nil, fmt.Errorf("serve: unknown scheduler %q", bc.Sched)
	}
	osim := hostos.New(k, osCfg, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}

	var tlog *hostos.EventLog
	var devLogs []*core.DeviceLog
	if withTrace {
		tlog = hostos.NewEventLog(0)
		osim.AttachTrace(tlog)
		for _, eng := range engines {
			dl := core.NewDeviceLog(0)
			eng.Ledger().AttachLog(dl)
			devLogs = append(devLogs, dl)
		}
	}

	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		return nil, fmt.Errorf("serve: simulation ended with unfinished tasks")
	}

	res = &JobResult{
		Makespan:    osim.Makespan(),
		CtxSwitches: osim.CtxSwitches,
		LintClean:   true,
	}
	for _, t := range osim.Tasks() {
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        t.Name,
			Turnaround:  t.Turnaround(),
			CPUTime:     t.CPUTime,
			HWTime:      t.HWTime,
			Overhead:    t.Overhead,
			ReadyWait:   t.ReadyWait,
			BlockWait:   t.BlockWait,
			Preemptions: t.Preemptions,
			Acquires:    t.Acquires,
		})
	}
	for _, eng := range engines {
		res.Metrics = append(res.Metrics, eng.M.Snapshot(k.Now()))
	}
	if lt, ok := mgr.(core.LintTargeter); ok {
		diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pass < diags[j].Pass })
		for _, d := range diags {
			res.LintDiags = append(res.LintDiags, d.String())
		}
		res.LintClean = !lint.HasErrors(diags)
	}
	if withTrace {
		res.Timeline = core.MergeTimeline(tlog, devLogs...).Events
	}
	return res, nil
}
