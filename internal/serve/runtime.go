// Warm boards: the simulated stack (kernel, engines, manager, host OS)
// is expensive to build — place-and-route compilation dominates — and,
// per job, almost all of it is rebuilt into an identical pristine state.
// A boardRuntime builds the stack once, captures a per-engine pristine
// image (fabric snapshot, metrics, pins, residents, fault-injector
// position), and resets to that image between jobs instead of
// rebuilding: the moral equivalent of restoring a saved full-device
// configuration instead of re-deriving it, the virtualization outlook
// the paper's §2 sketches. Results are bit-for-bit those of a fresh
// rebuild — the equivalence suite in warm_test.go pins that — so warm
// reuse is purely a service-time optimization.

package serve

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/workload"
)

// jobResetter is the warm-reset hook every manager implements: return
// the manager's own bookkeeping to its post-construction state. Device
// and metrics state is reset separately via Ledger.ResetForJob.
type jobResetter interface{ ResetForJob() }

// boardRuntime is one board's resident simulated stack, reused across
// jobs. It is owned by the board's worker goroutine exclusively; nothing
// in it is safe for concurrent use.
type boardRuntime struct {
	bc      BoardConfig
	k       *sim.Kernel
	engines []*core.Engine
	images  []*core.PristineImage
	mgr     hostos.FPGA
	osim    *hostos.OS

	// setDependent marks managers that bake the construction job's
	// circuits into device state (overlay, merged): warm reuse needs the
	// next job to compile to exactly the same circuits. names and circs
	// record what this runtime was built for, in set order.
	setDependent bool
	names        []string
	circs        []*compile.Circuit
}

// boardOptions maps a board config onto engine options.
func boardOptions(bc BoardConfig) core.Options {
	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = bc.Cols, bc.Rows
	opt.Seed = bc.Seed
	return opt
}

// compileSet compiles every circuit of the set through the shared strip
// cache, with the same per-circuit seeds the engines have always used,
// and returns them in set order. The cache canonicalizes: identical
// netlists compiled with identical options return the same *Circuit.
func compileSet(cache *compile.StripCache, bc BoardConfig, set *workload.Set) ([]*compile.Circuit, error) {
	opt := boardOptions(bc)
	circs := make([]*compile.Circuit, 0, len(set.Circuits))
	for i, nl := range set.Circuits {
		tm := opt.Timing
		c, err := cache.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
			compile.Options{Seed: opt.Seed + uint64(i), Timing: &tm})
		if err != nil {
			return nil, fmt.Errorf("serve: compile %s: %w", nl.Name, err)
		}
		circs = append(circs, c)
	}
	return circs, nil
}

// SpecWidth returns the widest compiled strip among the spec's circuits
// on the given board geometry — the placement-relevant footprint of a
// job (its rectangle width in the strip-packing-with-delays view). The
// compiles go through the shared cache, so repeated calls for the same
// spec are lookups, not work.
func SpecWidth(cache *compile.StripCache, bc BoardConfig, spec *workload.Spec) (int, error) {
	set, err := spec.Build()
	if err != nil {
		return 0, err
	}
	circs, err := compileSet(cache, bc, set)
	if err != nil {
		return 0, err
	}
	w := 0
	for _, c := range circs {
		if cw, _ := c.Footprint(); cw > w {
			w = cw
		}
	}
	return w, nil
}

// buildRuntime constructs the full simulated stack for one board config
// and circuit set — exactly the construction the per-job rebuild used to
// do — and captures each engine's pristine image for later warm resets.
// The images are taken after manager construction (overlay and merged
// configure the device then) and before any tracing or spawning, so a
// restore lands on the state a fresh build would present to its first
// job.
func buildRuntime(bc BoardConfig, set *workload.Set, circs []*compile.Circuit) (*boardRuntime, error) {
	opt := boardOptions(bc)
	k := sim.New()
	names := set.CircuitNames()

	engIdx := 0
	newEngine := func() *core.Engine {
		e := core.NewEngine(opt)
		if bc.Faults != nil {
			// Each engine derives its own stream from the board plan, keyed
			// by engine index only: which faults a job sees depends on the
			// plan and the job's own op sequence, never on queue order.
			plan := bc.Faults.Derive(uint64(engIdx))
			e.Ledger().InjectFaults(fault.NewInjector(plan))
		}
		engIdx++
		for i, name := range names {
			e.Lib[name] = circs[i]
		}
		return e
	}

	e := newEngine()
	engines := []*core.Engine{e}

	var mgr hostos.FPGA
	switch bc.Manager {
	case "dynamic":
		mgr = core.NewDynamicLoader(k, e)
	case "partition":
		pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return nil, err
		}
		mgr = pm
	case "amorphous":
		mgr = core.NewAmorphousManager(k, e, core.DefaultAmorphousConfig())
	case "overlay":
		// workload.Spec.Build rejects empty sets with ErrNoCircuits, but
		// guard the index anyway: a panic here would read as a board bug.
		if len(names) == 0 {
			return nil, fmt.Errorf("serve: overlay manager: %w", workload.ErrNoCircuits)
		}
		om, _, err := core.NewOverlayManager(k, e, names[:1])
		if err != nil {
			return nil, err
		}
		mgr = om
	case "paged":
		pl, err := core.NewPagedLoader(k, e, core.PagedConfig{PageCells: 16, Policy: core.LRU, Seed: bc.Seed})
		if err != nil {
			return nil, err
		}
		mgr = pl
	case "multi":
		n := bc.SubBoards
		if n < 1 {
			n = 1
		}
		for i := 1; i < n; i++ {
			engines = append(engines, newEngine())
		}
		mm, err := core.NewMultiManager(k, engines, core.PartitionConfig{
			Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
		})
		if err != nil {
			return nil, err
		}
		mgr = mm
	case "exclusive":
		mgr = baseline.NewExclusive(k, e)
	case "software":
		mgr = baseline.NewSoftware(e, 20)
	case "merged":
		if len(names) == 0 {
			return nil, fmt.Errorf("serve: merged baseline: %w", workload.ErrNoCircuits)
		}
		m, _, err := baseline.NewMerged(k, e, names)
		if err != nil {
			return nil, err
		}
		mgr = m
	default:
		return nil, fmt.Errorf("serve: unknown manager %q", bc.Manager)
	}

	osCfg := hostos.Config{TimeSlice: bc.Slice, CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond}
	switch bc.Sched {
	case "fifo":
		osCfg.Policy = hostos.FIFO
	case "rr":
		osCfg.Policy = hostos.RR
	case "priority":
		osCfg.Policy = hostos.Priority
	default:
		return nil, fmt.Errorf("serve: unknown scheduler %q", bc.Sched)
	}
	osim := hostos.New(k, osCfg, mgr)
	if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}

	rt := &boardRuntime{
		bc: bc, k: k, engines: engines, mgr: mgr, osim: osim,
		setDependent: bc.Manager == "overlay" || bc.Manager == "merged",
		names:        names,
		circs:        append([]*compile.Circuit(nil), circs...),
	}
	for _, eng := range engines {
		rt.images = append(rt.images, eng.CapturePristine())
	}
	return rt, nil
}

// compatible reports whether this runtime, built for a previous job, can
// be warm-reset for a job over the given circuit set. Set-independent
// managers always can: the reset swaps the circuit library wholesale.
// Overlay and merged configured the device from the construction set, so
// they need the same circuit names compiling to the same circuits (the
// strip cache makes that a pointer comparison).
func (rt *boardRuntime) compatible(set *workload.Set, circs []*compile.Circuit) bool {
	if !rt.setDependent {
		return true
	}
	if len(circs) != len(rt.circs) {
		return false
	}
	for i, c := range circs {
		if rt.circs[i] != c || rt.names[i] != set.Circuits[i].Name {
			return false
		}
	}
	return true
}

// reset returns the whole stack to the pristine state buildRuntime
// captured, then points the engine libraries at the new job's circuits.
// After it returns, running the job is indistinguishable from running it
// on a freshly built board.
func (rt *boardRuntime) reset(set *workload.Set, circs []*compile.Circuit) error {
	rt.k.Reset()
	for i, eng := range rt.engines {
		if err := eng.Ledger().ResetForJob(rt.images[i]); err != nil {
			return err
		}
		lib := make(map[string]*compile.Circuit, len(circs))
		for j, nl := range set.Circuits {
			lib[nl.Name] = circs[j]
		}
		eng.Lib = lib
	}
	r, ok := rt.mgr.(jobResetter)
	if !ok {
		return fmt.Errorf("serve: manager %q cannot warm-reset", rt.bc.Manager)
	}
	r.ResetForJob()
	rt.osim.Reset()
	return nil
}

// run executes one job on the runtime and returns the wire-form result.
// warm asks for a snapshot-restore reset first (the runtime already ran
// a job); a fresh runtime runs cold, with no reset. Called from the
// board's worker goroutine only.
func (rt *boardRuntime) run(set *workload.Set, circs []*compile.Circuit, withTrace, warm bool) (res *JobResult, err error) {
	// A panicking job must fail, not take the daemon down with it. The
	// caller discards the runtime on any error, so recovery cannot leak
	// corrupted state into the next job. A fault escalation stays typed
	// through the recover so the pool can quarantine the board.
	defer func() {
		if r := recover(); r != nil {
			if esc, ok := fault.AsEscalation(r); ok {
				res, err = nil, esc
				return
			}
			res, err = nil, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	if warm {
		if err := rt.reset(set, circs); err != nil {
			return nil, err
		}
	}

	var tlog *hostos.EventLog
	var devLogs []*core.DeviceLog
	if withTrace {
		tlog = hostos.NewEventLog(0)
		rt.osim.AttachTrace(tlog)
		for _, eng := range rt.engines {
			dl := core.NewDeviceLog(0)
			eng.Ledger().AttachLog(dl)
			devLogs = append(devLogs, dl)
		}
	}

	set.Spawn(rt.osim)
	rt.k.Run()
	if !rt.osim.AllDone() {
		return nil, fmt.Errorf("serve: simulation ended with unfinished tasks")
	}

	res = &JobResult{
		Makespan:    rt.osim.Makespan(),
		CtxSwitches: rt.osim.CtxSwitches,
		LintClean:   true,
	}
	for _, t := range rt.osim.Tasks() {
		res.Tasks = append(res.Tasks, TaskResult{
			Name:        t.Name,
			Turnaround:  t.Turnaround(),
			CPUTime:     t.CPUTime,
			HWTime:      t.HWTime,
			Overhead:    t.Overhead,
			ReadyWait:   t.ReadyWait,
			BlockWait:   t.BlockWait,
			Preemptions: t.Preemptions,
			Acquires:    t.Acquires,
		})
	}
	for _, eng := range rt.engines {
		res.Metrics = append(res.Metrics, eng.M.Snapshot(rt.k.Now()))
	}
	if lt, ok := rt.mgr.(core.LintTargeter); ok {
		diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pass < diags[j].Pass })
		for _, d := range diags {
			res.LintDiags = append(res.LintDiags, d.String())
		}
		res.LintClean = !lint.HasErrors(diags)
	}
	if withTrace {
		res.Timeline = core.MergeTimeline(tlog, devLogs...).Events
	}
	return res, nil
}
