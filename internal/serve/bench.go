// Cold-vs-warm serving benchmark, exported for cmd/vfpgabench: the same
// job served by a full board rebuild (fresh compile cache — the true
// cold start, place and route included) vs. a warm snapshot-restore
// reset. This measures wall-clock service latency of the daemon's
// runner, not virtual time; serve sits at the wall-clock boundary on
// purpose, outside the simclock determinism contract.

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/compile"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ColdWarmBench reports wall-clock job service latency, cold vs. warm.
type ColdWarmBench struct {
	Manager    string  `json:"manager"`
	Scenario   string  `json:"scenario"`
	Jobs       int     `json:"jobs"`
	ColdP50NS  int64   `json:"cold_p50_ns"`
	ColdP95NS  int64   `json:"cold_p95_ns"`
	WarmP50NS  int64   `json:"warm_p50_ns"`
	WarmP95NS  int64   `json:"warm_p95_ns"`
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP95 float64 `json:"speedup_p95"`
}

// BenchColdVsWarm serves the spec's job `jobs` times cold and `jobs`
// times warm on the given board config and returns latency quantiles.
// Cold builds everything from scratch each time, compile cache included;
// warm builds once, then resets from the pristine snapshot per job.
func BenchColdVsWarm(bc BoardConfig, spec *workload.Spec, scenario string, jobs int) (ColdWarmBench, error) {
	if jobs < 1 {
		jobs = 1
	}
	out := ColdWarmBench{Manager: bc.Manager, Scenario: scenario, Jobs: jobs}

	cold := stats.NewSample(true)
	for i := 0; i < jobs; i++ {
		cache := compile.NewStripCache(compile.DefaultCacheCapacity)
		start := time.Now()
		if _, err := runJob(cache, bc, spec, false); err != nil {
			return out, fmt.Errorf("serve: cold bench job %d: %w", i, err)
		}
		cold.Observe(float64(time.Since(start).Nanoseconds()))
	}

	warm := stats.NewSample(true)
	cache := compile.NewStripCache(compile.DefaultCacheCapacity)
	set, err := spec.Build()
	if err != nil {
		return out, err
	}
	circs, err := compileSet(cache, bc, set)
	if err != nil {
		return out, err
	}
	rt, err := buildRuntime(bc, set, circs)
	if err != nil {
		return out, err
	}
	if _, err := rt.run(set, circs, false, false); err != nil {
		return out, fmt.Errorf("serve: warm bench first job: %w", err)
	}
	for i := 0; i < jobs; i++ {
		start := time.Now()
		if _, err := rt.run(set, circs, false, true); err != nil {
			return out, fmt.Errorf("serve: warm bench job %d: %w", i, err)
		}
		warm.Observe(float64(time.Since(start).Nanoseconds()))
	}

	out.ColdP50NS = int64(cold.Quantile(0.5))
	out.ColdP95NS = int64(cold.Quantile(0.95))
	out.WarmP50NS = int64(warm.Quantile(0.5))
	out.WarmP95NS = int64(warm.Quantile(0.95))
	if out.WarmP50NS > 0 {
		out.SpeedupP50 = float64(out.ColdP50NS) / float64(out.WarmP50NS)
	}
	if out.WarmP95NS > 0 {
		out.SpeedupP95 = float64(out.ColdP95NS) / float64(out.WarmP95NS)
	}
	return out, nil
}

// WriteJSON renders the benchmark record, indented, trailing newline.
func (b ColdWarmBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
