package serve

// Idle-cycle defragmentation tests. boardMaint runs on the worker
// goroutine between jobs; these tests call it directly on a hand-built
// warm runtime so the fragmentation layout — and therefore every
// counter — is exact, with one end-to-end run through the HTTP surface
// on top.

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/workload"
)

// fragBoard builds a single-board pool with a resident warm runtime
// over the given builtin scenario's circuit set. No job has run: the
// engine ledger is empty, so tests lay out residency explicitly.
func fragBoard(t *testing.T, manager, scenario string) (*Pool, *board) {
	t.Helper()
	bc := DefaultBoardConfig()
	bc.Manager = manager
	p, err := NewPool([]BoardConfig{bc}, PoolOptions{Outcomes: NewAdmission(TenantLimits{}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.BuiltinSpec(scenario)
	if err != nil {
		t.Fatal(err)
	}
	set, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	circs, err := compileSet(p.cache, bc, set)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := buildRuntime(bc, set, circs)
	if err != nil {
		t.Fatal(err)
	}
	b := p.boards[0]
	b.rt = rt
	return p, b
}

// fragment loads two strips of circuit ci with a hole between them —
// two free spans, ratio > 0 — and returns the strip width.
func fragment(t *testing.T, b *board, ci int) int {
	t.Helper()
	eng := b.rt.engines[0]
	c := b.rt.circs[ci]
	w := c.BS.W
	eng.Ledger().Load("frag-a", c, 0, false)
	eng.Ledger().Load("frag-b", c, w+3, false)
	return w
}

func TestBoardMaintCompacts(t *testing.T) {
	p, b := fragBoard(t, "amorphous", "multimedia")
	p.compactWatermark, p.compactBudget = 0.05, 0
	w := fragment(t, b, 0)

	p.boardMaint(b)
	bi := b.info()
	if bi.Compactions != 1 || bi.CompactionMoved != 1 || bi.CompactionAborts != 0 {
		t.Fatalf("after maint: %+v", bi)
	}
	if bi.Fragmentation != 0 {
		t.Fatalf("fragmentation = %v after a full pack, want 0", bi.Fragmentation)
	}
	if want := b.cfg.Cols - 2*w; bi.LargestFreeCols != want {
		t.Fatalf("largest free = %d, want %d", bi.LargestFreeCols, want)
	}
	// The device is packed: another idle cycle finds nothing to do.
	p.boardMaint(b)
	if bi := b.info(); bi.Compactions != 1 {
		t.Fatalf("idle maint compacted a packed device: %+v", bi)
	}
}

func TestBoardMaintWatermark(t *testing.T) {
	p, b := fragBoard(t, "amorphous", "multimedia")
	fragment(t, b, 0)

	// Watermark disabled: maint samples the gauges but never compacts.
	p.compactWatermark = 0
	p.boardMaint(b)
	bi := b.info()
	if bi.Compactions != 0 {
		t.Fatalf("disabled compaction ran: %+v", bi)
	}
	if bi.Fragmentation <= 0 || bi.LargestFreeCols <= 0 {
		t.Fatalf("fragmentation not sampled: %+v", bi)
	}
	// A watermark above the current ratio leaves the layout alone too.
	p.compactWatermark = 0.99
	p.boardMaint(b)
	if bi := b.info(); bi.Compactions != 0 {
		t.Fatalf("under-watermark compaction ran: %+v", bi)
	}
}

func TestBoardMaintAbortRetries(t *testing.T) {
	p, b := fragBoard(t, "amorphous", "telecom")
	p.compactWatermark = 0.05
	// Readback faults only fire on stateful strips: pick a sequential
	// circuit from the set. The fault aborts the pass before the strip
	// is touched; the layout survives and the next idle cycle retries.
	seq := -1
	for i, c := range b.rt.circs {
		if c.Sequential {
			seq = i
			break
		}
	}
	if seq < 0 {
		t.Fatal("telecom set has no sequential circuit")
	}
	fragment(t, b, seq)
	plan, err := fault.ParseSpec("seed=3,retries=0,readback-flip@1")
	if err != nil {
		t.Fatal(err)
	}
	b.rt.engines[0].Ledger().InjectFaults(fault.NewInjector(plan))

	p.boardMaint(b)
	bi := b.info()
	if bi.Compactions != 1 || bi.CompactionAborts != 1 || bi.CompactionMoved != 0 {
		t.Fatalf("after faulted maint: %+v", bi)
	}
	if q := b.isQuarantined(); q {
		t.Fatal("compaction abort quarantined the board")
	}
	if bi.Fragmentation <= 0 {
		t.Fatalf("aborted pass should leave the hole: %+v", bi)
	}

	p.boardMaint(b)
	bi = b.info()
	if bi.Compactions != 2 || bi.CompactionMoved != 1 || bi.CompactionAborts != 1 {
		t.Fatalf("after retry maint: %+v", bi)
	}
	if bi.Fragmentation != 0 {
		t.Fatalf("retry did not pack: %+v", bi)
	}
}

func TestBoardMaintSkipsQuarantined(t *testing.T) {
	p, b := fragBoard(t, "amorphous", "multimedia")
	p.compactWatermark = 0.05
	fragment(t, b, 0)
	b.quarantine("config-error")

	p.boardMaint(b)
	if bi := b.info(); bi.Compactions != 0 || bi.Fragmentation != 0 {
		t.Fatalf("quarantined board maintained: %+v", bi)
	}
}

// TestCompactionEndToEnd drives an amorphous board through the HTTP
// surface with a low watermark: the job leaves cached strips behind, the
// idle cycle defragments, and the result shows up on /v1/boards. The
// next job must still be a byte-identical warm reset — compaction
// between jobs never leaks into results.
func TestCompactionEndToEnd(t *testing.T) {
	bc := DefaultBoardConfig()
	bc.Manager = "amorphous"
	s := newTestServer(t, Config{
		Boards:           []BoardConfig{bc},
		CompactWatermark: 0.01,
	})
	s.Start()
	defer s.Drain()

	j1 := submitOK(t, s, "alpha", "multimedia")
	waitDone(t, j1)
	j2 := submitOK(t, s, "alpha", "multimedia")
	waitDone(t, j2)

	st1, st2 := j1.Status(), j2.Status()
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("jobs: %+v / %+v", st1, st2)
	}
	if !st1.Result.LintClean || !st2.Result.LintClean {
		t.Fatalf("lint diags: %v / %v", st1.Result.LintDiags, st2.Result.LintDiags)
	}
	if st1.Result.Makespan != st2.Result.Makespan {
		t.Fatalf("warm job diverged: makespan %v vs %v", st1.Result.Makespan, st2.Result.Makespan)
	}
	s.Drain()
	bi := s.pool.boards[0].info()
	if bi.WarmResets != 1 {
		t.Fatalf("second job did not warm-reset: %+v", bi)
	}
	if bi.LargestFreeCols <= 0 {
		t.Fatalf("fragmentation gauges never sampled: %+v", bi)
	}
}
