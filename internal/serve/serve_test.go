package serve

// Server-level tests. They exercise the HTTP surface through the real
// handler (no network) and reach into the pool for the deterministic
// hooks: the worker gate holds queues full without sleeps, and the
// injected admission clock makes throttling decisions reproducible.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// newTestServer builds a Server over one default dynamic board.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Boards == nil {
		cfg.Boards = []BoardConfig{DefaultBoardConfig()}
	}
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do runs one request through the handler.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func submitBody(t *testing.T, tenant, scenario string) string {
	t.Helper()
	spec, err := workload.BuiltinSpec(scenario)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(SubmitRequest{Tenant: tenant, Workload: spec})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// submitOK submits and returns the accepted job.
func submitOK(t *testing.T, s *Server, tenant, scenario string) *Job {
	t.Helper()
	rec := do(t, s, "POST", "/v1/jobs", submitBody(t, tenant, scenario))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202 (body %s)", rec.Code, rec.Body)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, ok := s.pool.Job(resp.ID)
	if !ok {
		t.Fatalf("job %s not registered", resp.ID)
	}
	return j
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(time.Minute):
		t.Fatalf("job %s did not finish", j.id)
	}
}

// directRun reproduces the same workload on a hand-built hostos stack,
// bypassing the serve layer entirely: fresh kernel, engine compiled
// without the strip cache, dynamic loader. Per-job results from the
// daemon must be byte-identical to this.
func directRun(t *testing.T, spec *workload.Spec, bc BoardConfig) *JobResult {
	t.Helper()
	set, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = bc.Cols, bc.Rows
	opt.Seed = bc.Seed
	k := sim.New()
	e := core.NewEngine(opt)
	for i, nl := range set.Circuits {
		tm := opt.Timing
		c, err := compile.CompileStrip(nl, opt.Geometry.Rows, opt.Geometry.TracksPerChannel,
			compile.Options{Seed: opt.Seed + uint64(i), Timing: &tm})
		if err != nil {
			t.Fatal(err)
		}
		e.Lib[nl.Name] = c
	}
	mgr := core.NewDynamicLoader(k, e)
	osim := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: bc.Slice,
		CtxSwitch: 50 * sim.Microsecond, Syscall: 10 * sim.Microsecond,
	}, mgr)
	if att, ok := any(mgr).(interface{ AttachOS(*hostos.OS) }); ok {
		att.AttachOS(osim)
	}
	set.Spawn(osim)
	k.Run()
	if !osim.AllDone() {
		t.Fatal("direct run did not complete")
	}
	res := &JobResult{Makespan: osim.Makespan(), CtxSwitches: osim.CtxSwitches}
	for _, task := range osim.Tasks() {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: task.Name, Turnaround: task.Turnaround(), CPUTime: task.CPUTime,
			HWTime: task.HWTime, Overhead: task.Overhead, ReadyWait: task.ReadyWait,
			BlockWait: task.BlockWait, Preemptions: task.Preemptions, Acquires: task.Acquires,
		})
	}
	res.Metrics = append(res.Metrics, e.M.Snapshot(k.Now()))
	return res
}

// comparable strips a JobResult down to the fields a direct run also
// produces and renders them as JSON.
func comparableJSON(t *testing.T, r *JobResult) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Tasks       []TaskResult           `json:"tasks"`
		Makespan    sim.Time               `json:"makespan_ns"`
		CtxSwitches int64                  `json:"ctx_switches"`
		Metrics     []core.MetricsSnapshot `json:"metrics"`
	}{r.Tasks, r.Makespan, r.CtxSwitches, r.Metrics})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobResultMatchesDirectRun is the determinism contract: a job run
// through the daemon — queues, workers, shared compile cache and all —
// returns byte-identical task metrics and device counters to the same
// workload run by hand on a fresh hostos stack.
func TestJobResultMatchesDirectRun(t *testing.T) {
	for _, scenario := range []string{"multimedia", "telecom", "synthetic"} {
		t.Run(scenario, func(t *testing.T) {
			s := newTestServer(t, Config{})
			s.Start()
			defer s.Drain()

			// Two submissions of the same spec: exercises both the cold and
			// warm compile-cache paths.
			first := submitOK(t, s, "acme", scenario)
			waitDone(t, first)
			second := submitOK(t, s, "acme", scenario)
			waitDone(t, second)
			if first.Status().State != StateDone || second.Status().State != StateDone {
				t.Fatalf("jobs did not complete: %+v %+v", first.Status(), second.Status())
			}

			spec, err := workload.BuiltinSpec(scenario)
			if err != nil {
				t.Fatal(err)
			}
			want := comparableJSON(t, directRun(t, &spec, DefaultBoardConfig()))
			if got := comparableJSON(t, first.Status().Result); got != want {
				t.Errorf("first job diverged from direct run:\n got %s\nwant %s", got, want)
			}
			if got := comparableJSON(t, second.Status().Result); got != want {
				t.Errorf("second job (cached compile) diverged from direct run:\n got %s\nwant %s", got, want)
			}
			if !first.Status().Result.LintClean {
				t.Errorf("job left lint-dirty device state: %v", first.Status().Result.LintDiags)
			}
		})
	}
}

// TestBackpressure fills the only board's queue before the workers
// start: exactly QueueDepth submissions are accepted, and every one
// after that is a 429 with a Retry-After hint.
func TestBackpressure(t *testing.T) {
	bc := DefaultBoardConfig()
	bc.QueueDepth = 3
	s := newTestServer(t, Config{Boards: []BoardConfig{bc}, Tenant: TenantLimits{Rate: 0}})

	var accepted []*Job
	for i := 0; i < bc.QueueDepth; i++ {
		accepted = append(accepted, submitOK(t, s, "acme", "multimedia"))
	}
	for i := 0; i < 2; i++ {
		rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "acme", "multimedia"))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("over-capacity submit %d: got %d, want 429", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
	snaps := s.adm.Snapshot()
	if len(snaps) != 1 || snaps[0].QueueFull != 2 {
		t.Errorf("queue-full accounting: %+v", snaps)
	}

	// Backpressure is not failure: once the workers start, everything
	// accepted completes.
	s.Start()
	for _, j := range accepted {
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
		}
	}
	s.Drain()
}

// TestTenantThrottle drives the token bucket with a hand-cranked clock.
func TestTenantThrottle(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestServer(t, Config{
		Tenant: TenantLimits{Rate: 1, Burst: 2},
		Now:    func() time.Time { return now },
	})
	// Workers intentionally not started: admission decisions are
	// independent of execution.

	for i := 0; i < 2; i++ { // burst
		if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "a", "multimedia")); rec.Code != http.StatusAccepted {
			t.Fatalf("burst submit %d: got %d", i, rec.Code)
		}
	}
	rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "a", "multimedia"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: got %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (empty bucket, 1 token/s)", ra)
	}
	// Tenants are isolated: b still has its full burst.
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "b", "multimedia")); rec.Code != http.StatusAccepted {
		t.Fatalf("tenant b: got %d, want 202", rec.Code)
	}
	// One second later a regrows exactly one token.
	now = now.Add(time.Second)
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "a", "multimedia")); rec.Code != http.StatusAccepted {
		t.Fatalf("post-refill submit: got %d, want 202", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "a", "multimedia")); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second post-refill submit: got %d, want 429", rec.Code)
	}
}

// TestDrain checks the shutdown contract: drain finishes every accepted
// job, then the API answers 503 and /healthz reports draining.
func TestDrain(t *testing.T) {
	bc := DefaultBoardConfig()
	s := newTestServer(t, Config{Boards: []BoardConfig{bc}, Tenant: TenantLimits{Rate: 0}})
	s.pool.gate = make(chan struct{}, 8)
	s.Start()

	jobs := []*Job{
		submitOK(t, s, "acme", "multimedia"),
		submitOK(t, s, "acme", "multimedia"),
		submitOK(t, s, "acme", "multimedia"),
	}
	if rec := do(t, s, "GET", "/healthz", ""); !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz before drain: %s", rec.Body)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	for range jobs {
		s.pool.gate <- struct{}{}
	}
	select {
	case <-drained:
	case <-time.After(time.Minute):
		t.Fatal("drain did not complete")
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s after drain: state %s (%s)", st.ID, st.State, st.Error)
		}
	}
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "acme", "multimedia")); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: got %d, want 503", rec.Code)
	}
	if rec := do(t, s, "GET", "/healthz", ""); !strings.Contains(rec.Body.String(), `"draining"`) {
		t.Errorf("healthz after drain: %s", rec.Body)
	}
	// Drain is idempotent.
	s.Drain()
}

// TestCancelQueued cancels a job while it waits in the queue; the
// worker must fail it without running it.
func TestCancelQueued(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	s.pool.gate = make(chan struct{}, 8)
	s.Start()
	defer func() {
		go s.Drain()
		s.pool.gate <- struct{}{}
		s.pool.gate <- struct{}{}
	}()

	first := submitOK(t, s, "acme", "multimedia")
	second := submitOK(t, s, "acme", "multimedia")
	if rec := do(t, s, "DELETE", "/v1/jobs/"+second.id, ""); rec.Code != http.StatusOK {
		t.Fatalf("cancel: got %d", rec.Code)
	}
	s.pool.gate <- struct{}{}
	s.pool.gate <- struct{}{}
	waitDone(t, first)
	waitDone(t, second)
	if st := first.Status(); st.State != StateDone {
		t.Errorf("uncancelled job: state %s (%s)", st.State, st.Error)
	}
	st := second.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "context canceled") {
		t.Errorf("cancelled job: state %s error %q, want failed/context canceled", st.State, st.Error)
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty tenant", `{"workload":{"scenario":"multimedia"}}`, http.StatusBadRequest},
		{"unknown scenario", `{"tenant":"a","workload":{"scenario":"nope"}}`, http.StatusBadRequest},
		{"unknown field", `{"tenant":"a","workload":{"scenario":"multimedia"},"bogus":1}`, http.StatusBadRequest},
		{"mismatched block", `{"tenant":"a","workload":{"scenario":"multimedia","telecom":{}}}`, http.StatusBadRequest},
		{"bad board pin", `{"tenant":"a","workload":{"scenario":"multimedia"},"board":7}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := do(t, s, "POST", "/v1/jobs", c.body)
			if rec.Code != c.want {
				t.Errorf("got %d, want %d (body %s)", rec.Code, c.want, rec.Body)
			}
		})
	}
	if rec := do(t, s, "GET", "/v1/jobs/j999999", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", rec.Code)
	}
}

// TestBoardPin runs every manager as a pinned single-job board, proving
// the whole manager matrix works behind the service.
func TestBoardPin(t *testing.T) {
	var cfgs []BoardConfig
	for _, m := range Managers {
		bc := DefaultBoardConfig()
		bc.Manager = m
		cfgs = append(cfgs, bc)
	}
	s := newTestServer(t, Config{Boards: cfgs, Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()

	spec, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range Managers {
		body, err := json.Marshal(SubmitRequest{Tenant: "acme", Workload: spec, Board: &i})
		if err != nil {
			t.Fatal(err)
		}
		rec := do(t, s, "POST", "/v1/jobs", string(body))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("manager %s: submit got %d (%s)", m, rec.Code, rec.Body)
		}
		var resp SubmitResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Board != i {
			t.Errorf("manager %s: ran on board %d, pinned to %d", m, resp.Board, i)
		}
		j, _ := s.pool.Job(resp.ID)
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Errorf("manager %s: state %s (%s)", m, st.State, st.Error)
		}
	}
	rec := do(t, s, "GET", "/v1/boards", "")
	var infos []BoardInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(Managers) {
		t.Fatalf("boards: got %d, want %d", len(infos), len(Managers))
	}
	for i, bi := range infos {
		if bi.JobsDone != 1 {
			t.Errorf("board %d (%s): %d jobs done, want 1", i, bi.Manager, bi.JobsDone)
		}
	}
}

// TestJobTimeoutWhileQueued: a deadline that expires in the queue fails
// the job without running it.
func TestJobTimeoutWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	s.pool.gate = make(chan struct{}, 8)
	s.Start()

	spec, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SubmitRequest{Tenant: "acme", Workload: spec, TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "POST", "/v1/jobs", string(body))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d", rec.Code)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, _ := s.pool.Job(resp.ID)
	<-j.ctx.Done() // deadline fires while the gated worker holds the job queued
	s.pool.gate <- struct{}{}
	waitDone(t, j)
	if st := j.Status(); st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Errorf("timed-out job: state %s error %q", st.State, st.Error)
	}
	go s.Drain()
	s.pool.gate <- struct{}{}
}

// TestSubmitSequenceIDs pins the job id format the load generator and
// the docs rely on.
func TestSubmitSequenceIDs(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	j1 := submitOK(t, s, "a", "multimedia")
	j2 := submitOK(t, s, "a", "multimedia")
	if j1.id != "j000001" || j2.id != "j000002" {
		t.Errorf("ids %q %q, want j000001 j000002", j1.id, j2.id)
	}
	if fmt.Sprintf("j%06d", 3) != "j000003" {
		t.Error("id format drifted")
	}
}

// TestJobPanicDoesNotKillDaemon: a workload whose tasks have empty
// programs makes hostos panic at spawn; the worker must convert that
// into a failed job and keep serving.
func TestJobPanicDoesNotKillDaemon(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()

	// Explicit zeros defeat the defaults merge: one session, zero
	// packets, zero compute → an empty task program.
	body := `{"tenant":"acme","workload":{"scenario":"telecom","telecom":{"sessions":1,"packets_per":0,"cycles_per_pkt":0}}}`
	rec := do(t, s, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d (%s)", rec.Code, rec.Body)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, _ := s.pool.Job(resp.ID)
	waitDone(t, j)
	if st := j.Status(); st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Errorf("bad job: state %s error %q, want failed/panicked", st.State, st.Error)
	}

	// The board survives and runs the next job normally.
	good := submitOK(t, s, "acme", "multimedia")
	waitDone(t, good)
	if st := good.Status(); st.State != StateDone {
		t.Errorf("follow-up job: state %s (%s)", st.State, st.Error)
	}
}

// TestPartialParamBlock: omitted block fields take scenario defaults
// end to end through the API.
func TestPartialParamBlock(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()

	body := `{"tenant":"acme","workload":{"scenario":"telecom","telecom":{"sessions":4}}}`
	rec := do(t, s, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d (%s)", rec.Code, rec.Body)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, _ := s.pool.Job(resp.ID)
	waitDone(t, j)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("partial-block job: state %s (%s)", st.State, st.Error)
	}
	if n := len(st.Result.Tasks); n != 4 {
		t.Errorf("got %d tasks, want 4 sessions", n)
	}
}
