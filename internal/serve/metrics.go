package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Prometheus text exposition (version 0.0.4), hand-rolled: one writer,
// deterministic series order (boards by id, tenants sorted, label sets
// fixed), no timestamps and no wall-clock values, so a fixed scenario
// exposes byte-identical text — the golden test pins that, which is
// what keeps dashboards from breaking silently.

// metricsWriter accumulates families in emission order.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) family(name, help, typ string) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series writes one sample line. Labels come as ordered key/value pairs.
func (m *metricsWriter) series(name string, value string, kv ...string) {
	if m.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(kv) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, kv[i], escapeLabel(kv[i+1]))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, m.err = io.WriteString(m.w, b.String())
}

func (m *metricsWriter) int(name string, v int64, kv ...string) {
	m.series(name, strconv.FormatInt(v, 10), kv...)
}

// float renders with a fixed four decimal places so a fixed scenario
// stays byte-identical across platforms.
func (m *metricsWriter) float(name string, v float64, kv ...string) {
	m.series(name, strconv.FormatFloat(v, 'f', 4, 64), kv...)
}

// ledgerOpCounts flattens a metrics snapshot into the per-op counter
// series, in fixed order.
func ledgerOpCounts(s core.MetricsSnapshot) []struct {
	Op string
	N  int64
} {
	return []struct {
		Op string
		N  int64
	}{
		{"load", s.Loads},
		{"evict", s.Evictions},
		{"readback", s.Readbacks},
		{"restore", s.Restores},
		{"rollback", s.Rollbacks},
		{"page_fault", s.PageFaults},
		{"page_load", s.PageLoads},
		{"gc", s.GCRuns},
		{"relocate", s.Relocations},
		{"block", s.Blocks},
		{"muxed", s.MuxedOps},
		{"fault", s.FaultsInjected},
		{"fault_retry", s.FaultRetries},
		{"fault_recovery", s.FaultRecoveries},
		{"fault_escalation", s.FaultEscalations},
	}
}

// writeMetrics renders the whole exposition.
func (s *Server) writeMetrics(w io.Writer) error {
	m := &metricsWriter{w: w}

	m.family("vfpgad_build_info", "Build identification; value is always 1.", "gauge")
	m.series("vfpgad_build_info", "1", "version", s.version)

	m.family("vfpgad_draining", "1 while the daemon is draining, 0 otherwise.", "gauge")
	draining := int64(0)
	if s.pool.IsDraining() {
		draining = 1
	}
	m.int("vfpgad_draining", draining)

	m.family("vfpgad_boards", "Number of boards in the pool.", "gauge")
	m.int("vfpgad_boards", int64(len(s.pool.boards)))

	// Admission and job outcomes, per tenant.
	tenants := s.adm.Snapshot()
	m.family("vfpgad_admission_total", "Submissions by admission decision.", "counter")
	for _, t := range tenants {
		m.int("vfpgad_admission_total", t.Admitted, "tenant", t.Tenant, "decision", "admitted")
		m.int("vfpgad_admission_total", t.Throttled, "tenant", t.Tenant, "decision", "throttled")
		m.int("vfpgad_admission_total", t.QueueFull, "tenant", t.Tenant, "decision", "queue_full")
	}
	m.family("vfpgad_jobs_total", "Finished jobs by outcome.", "counter")
	for _, t := range tenants {
		m.int("vfpgad_jobs_total", t.Completed, "tenant", t.Tenant, "outcome", "completed")
		m.int("vfpgad_jobs_total", t.Failed, "tenant", t.Tenant, "outcome", "failed")
	}

	// Board occupancy and queues.
	m.family("vfpgad_board_busy", "1 while the board is running a job.", "gauge")
	infos := make([]BoardInfo, 0, len(s.pool.boards))
	aggs := make([]core.MetricsSnapshot, 0, len(s.pool.boards))
	for _, b := range s.pool.boards {
		infos = append(infos, b.info())
		b.mu.Lock()
		aggs = append(aggs, b.agg)
		b.mu.Unlock()
	}
	for _, bi := range infos {
		busy := int64(0)
		if bi.State == "busy" {
			busy = 1
		}
		m.int("vfpgad_board_busy", busy, "board", strconv.Itoa(bi.ID), "manager", bi.Manager)
	}
	m.family("vfpgad_queue_depth", "Jobs waiting in the board queue.", "gauge")
	for _, bi := range infos {
		m.int("vfpgad_queue_depth", int64(bi.QueueDepth), "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_queue_capacity", "Board queue capacity.", "gauge")
	for _, bi := range infos {
		m.int("vfpgad_queue_capacity", int64(bi.QueueCap), "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_board_jobs_total", "Jobs finished by the board, by outcome.", "counter")
	for _, bi := range infos {
		m.int("vfpgad_board_jobs_total", bi.JobsDone, "board", strconv.Itoa(bi.ID), "outcome", "completed")
		m.int("vfpgad_board_jobs_total", bi.JobsFailed, "board", strconv.Itoa(bi.ID), "outcome", "failed")
	}
	m.family("vfpgad_board_resets_total", "Jobs started on the board by reset mode: warm snapshot-restore vs. cold rebuild.", "counter")
	for _, bi := range infos {
		m.int("vfpgad_board_resets_total", bi.WarmResets, "board", strconv.Itoa(bi.ID), "mode", "warm")
		m.int("vfpgad_board_resets_total", bi.ColdResets, "board", strconv.Itoa(bi.ID), "mode", "cold")
	}
	m.family("vfpgad_board_fragmentation", "External-fragmentation ratio of the board's device after its last job or compaction pass (0 means one contiguous free extent).", "gauge")
	for _, bi := range infos {
		m.float("vfpgad_board_fragmentation", bi.Fragmentation, "board", strconv.Itoa(bi.ID), "manager", bi.Manager)
	}
	m.family("vfpgad_board_largest_free_cols", "Widest contiguous free column extent on the board's device.", "gauge")
	for _, bi := range infos {
		m.int("vfpgad_board_largest_free_cols", int64(bi.LargestFreeCols), "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_compactions_total", "Idle-cycle defragmentation passes the board ran.", "counter")
	for _, bi := range infos {
		m.int("vfpgad_compactions_total", bi.Compactions, "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_compaction_moved_total", "Strips relocated by idle-cycle compaction.", "counter")
	for _, bi := range infos {
		m.int("vfpgad_compaction_moved_total", bi.CompactionMoved, "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_compaction_aborts_total", "Compaction passes cut short by an injected fault (retried on a later idle cycle).", "counter")
	for _, bi := range infos {
		m.int("vfpgad_compaction_aborts_total", bi.CompactionAborts, "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_board_quarantined", "1 while the board is quarantined after a fault escalation.", "gauge")
	for _, bi := range infos {
		quarantined := int64(0)
		if bi.Quarantined {
			quarantined = 1
		}
		m.int("vfpgad_board_quarantined", quarantined, "board", strconv.Itoa(bi.ID), "manager", bi.Manager)
	}
	m.family("vfpgad_board_escalations_total", "Fault escalations the board saw.", "counter")
	for _, bi := range infos {
		m.int("vfpgad_board_escalations_total", bi.Escalations, "board", strconv.Itoa(bi.ID))
	}
	m.family("vfpgad_job_requeues_total", "Jobs rerun on another board after a quarantine.", "counter")
	m.int("vfpgad_job_requeues_total", s.pool.RequeueCount())

	// Job service time, in virtual nanoseconds (makespan of completed
	// jobs). The _sum/_count series belong to the summary family per the
	// exposition format; their names are built from a variable so the
	// analyzer's declared-family check keys on the summary name.
	p50, p95, svcSum, svcCount := s.pool.ServiceStats()
	svcFamily := "vfpgad_job_service_time_ns"
	m.family("vfpgad_job_service_time_ns", "Virtual service time of completed jobs (makespan, ns).", "summary")
	m.int("vfpgad_job_service_time_ns", p50, "quantile", "0.5")
	m.int("vfpgad_job_service_time_ns", p95, "quantile", "0.95")
	m.int(svcFamily+"_sum", svcSum)
	m.int(svcFamily+"_count", svcCount)

	// The same service-time sample sliced per tenant: the load harness
	// reads these to cross-check its per-tenant latency breakdowns.
	tenantSvcFamily := "vfpgad_tenant_service_time_ns"
	m.family("vfpgad_tenant_service_time_ns", "Virtual service time of completed jobs by tenant (makespan, ns).", "summary")
	for _, ts := range s.pool.TenantServiceStats() {
		m.int("vfpgad_tenant_service_time_ns", ts.P50, "tenant", ts.Tenant, "quantile", "0.5")
		m.int("vfpgad_tenant_service_time_ns", ts.P95, "tenant", ts.Tenant, "quantile", "0.95")
		m.int(tenantSvcFamily+"_sum", ts.Sum, "tenant", ts.Tenant)
		m.int(tenantSvcFamily+"_count", ts.Count, "tenant", ts.Tenant)
	}

	// Device-side ledger counters accumulated across jobs, per board.
	m.family("vfpgad_ledger_ops_total", "Residency-ledger operations across all jobs.", "counter")
	for i, agg := range aggs {
		for _, oc := range ledgerOpCounts(agg) {
			m.int("vfpgad_ledger_ops_total", oc.N, "board", strconv.Itoa(i), "op", oc.Op)
		}
	}
	m.family("vfpgad_device_time_ns_total", "Virtual nanoseconds of device overhead across all jobs.", "counter")
	for i, agg := range aggs {
		m.int("vfpgad_device_time_ns_total", int64(agg.ConfigTime), "board", strconv.Itoa(i), "kind", "config")
		m.int("vfpgad_device_time_ns_total", int64(agg.ReadbackTime), "board", strconv.Itoa(i), "kind", "readback")
		m.int("vfpgad_device_time_ns_total", int64(agg.RestoreTime), "board", strconv.Itoa(i), "kind", "restore")
		m.int("vfpgad_device_time_ns_total", int64(agg.FaultTime), "board", strconv.Itoa(i), "kind", "fault")
	}

	// Compile-cache effectiveness (shared across boards).
	cs := s.pool.cache.Stats()
	m.family("vfpgad_compile_cache_lookups_total", "Strip-cache lookups by result.", "counter")
	m.int("vfpgad_compile_cache_lookups_total", cs.Hits, "result", "hit")
	m.int("vfpgad_compile_cache_lookups_total", cs.Misses, "result", "miss")
	m.int("vfpgad_compile_cache_lookups_total", cs.Dedups, "result", "dedup")
	m.family("vfpgad_compile_cache_evictions_total", "Strip-cache LRU evictions.", "counter")
	m.int("vfpgad_compile_cache_evictions_total", cs.Evictions)
	m.family("vfpgad_compile_cache_entries", "Strips currently cached.", "gauge")
	m.int("vfpgad_compile_cache_entries", int64(cs.Size))
	m.family("vfpgad_compile_cache_capacity", "Strip-cache LRU bound.", "gauge")
	m.int("vfpgad_compile_cache_capacity", int64(cs.Capacity))

	return m.err
}
