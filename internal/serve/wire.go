// Package serve turns the simulation stack into a long-running
// multi-tenant service: vfpgad. A Server owns a pool of simulated
// boards; each board runs on its own goroutine behind a bounded
// channel-based job queue, because the engines, ledgers and kernels
// under it are single-goroutine by design (see core.Engine). On top of
// the pool the serve layer adds per-tenant token-bucket admission
// control, explicit 429/Retry-After backpressure once queues fill,
// request deadlines and cancellation via context, graceful drain on
// SIGTERM, and operational telemetry in Prometheus text exposition
// format.
//
// The HTTP/JSON API:
//
//	POST   /v1/jobs       submit a workload.Spec for a tenant → job id
//	GET    /v1/jobs/{id}  job status, per-task results, core metrics
//	DELETE /v1/jobs/{id}  cancel a queued job
//	GET    /v1/boards     board occupancy and queue depths
//	GET    /healthz       liveness + version
//	GET    /metrics       Prometheus text exposition
package serve

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Tenant is the submitting tenant (required; admission control and
	// accounting are per tenant).
	Tenant string `json:"tenant"`
	// Workload is the workload to run.
	Workload workload.Spec `json:"workload"`
	// Board pins the job to one board; nil lets the pool pick the least
	// loaded one.
	Board *int `json:"board,omitempty"`
	// Node pins the job to one node of a fleet; only valid against a
	// fleet front-end (vfpgad -nodes > 1). A single-node daemon rejects
	// it with 400. When both Node and Board are set, Board names a board
	// of the pinned node.
	Node *int `json:"node,omitempty"`
	// TimeoutMS bounds the job's total wall-clock lifetime (queue wait
	// included); 0 means no deadline. An expired job fails instead of
	// running.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace includes the merged scheduler+device timeline in the result.
	Trace bool `json:"trace,omitempty"`
}

// SubmitResponse is the body of a 202 from POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	Board int    `json:"board"`
	// Node is the fleet node the job was routed to; present only from a
	// fleet front-end.
	Node int `json:"node,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant"`
	State  string     `json:"state"`
	Board  int        `json:"board"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	// FaultKind types a failure caused by injected-fault escalation
	// ("config-error", "readback-flip", ...); empty otherwise. Clients
	// distinguish chaos-campaign casualties from real bugs by this field.
	FaultKind string `json:"fault_kind,omitempty"`
	// Requeues counts how many times the job was handed to another board
	// after its original board was quarantined.
	Requeues int `json:"requeues,omitempty"`
}

// TaskResult is one simulated task's metrics, in virtual nanoseconds.
type TaskResult struct {
	Name        string   `json:"name"`
	Turnaround  sim.Time `json:"turnaround_ns"`
	CPUTime     sim.Time `json:"cpu_ns"`
	HWTime      sim.Time `json:"hw_ns"`
	Overhead    sim.Time `json:"overhead_ns"`
	ReadyWait   sim.Time `json:"ready_wait_ns"`
	BlockWait   sim.Time `json:"block_wait_ns"`
	Preemptions int64    `json:"preemptions"`
	Acquires    int64    `json:"acquires"`
}

// JobResult is a completed job's payload: exactly what the same workload
// run directly through hostos produces, plus the device-side metrics of
// every engine the board's manager drove (one for most managers, several
// for multi).
type JobResult struct {
	Tasks       []TaskResult           `json:"tasks"`
	Makespan    sim.Time               `json:"makespan_ns"`
	CtxSwitches int64                  `json:"ctx_switches"`
	Metrics     []core.MetricsSnapshot `json:"metrics"`
	// LintClean reports that the post-run device-state audit (the same
	// passes as vfpgasim -lint) found no errors; diagnostics, when any,
	// are in LintDiags.
	LintClean bool                  `json:"lint_clean"`
	LintDiags []string              `json:"lint_diags,omitempty"`
	Timeline  []trace.TimelineEvent `json:"timeline,omitempty"`
}

// BoardInfo is one entry of GET /v1/boards.
type BoardInfo struct {
	ID         int    `json:"id"`
	Manager    string `json:"manager"`
	Cols       int    `json:"cols"`
	Rows       int    `json:"rows"`
	State      string `json:"state"` // "idle" | "busy" | "quarantined"
	CurrentJob string `json:"current_job,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	JobsDone   int64  `json:"jobs_done"`
	JobsFailed int64  `json:"jobs_failed"`
	// Quarantined boards run nothing: an injected fault exhausted the
	// ledger's retry budget there. FaultKind is the escalated kind and
	// Escalations the number of escalated jobs the board saw.
	Quarantined bool   `json:"quarantined,omitempty"`
	FaultKind   string `json:"fault_kind,omitempty"`
	Escalations int64  `json:"escalations,omitempty"`
	// Warm reports that the board holds a warm runtime: the next
	// compatible job is reset from the pristine snapshot instead of
	// rebuilding the simulated stack. WarmResets and ColdResets count
	// jobs started on a snapshot-restore reset vs. a full (re)build.
	Warm       bool  `json:"warm"`
	WarmResets int64 `json:"warm_resets"`
	ColdResets int64 `json:"cold_resets"`
	// Fragmentation is the device's external-fragmentation ratio after
	// the board's last job or compaction pass (worst engine; 0 means the
	// free columns form one contiguous extent), and LargestFreeCols the
	// widest contiguous free extent. Compactions counts idle-cycle
	// defragmentation passes, CompactionMoved the strips those passes
	// relocated, and CompactionAborts the passes an injected fault cut
	// short (retried on a later idle cycle).
	Fragmentation    float64 `json:"fragmentation"`
	LargestFreeCols  int     `json:"largest_free_cols"`
	Compactions      int64   `json:"compactions"`
	CompactionMoved  int64   `json:"compaction_moved"`
	CompactionAborts int64   `json:"compaction_aborts"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status  string `json:"status"` // "ok" | "draining"
	Version string `json:"version"`
	Boards  int    `json:"boards"`
	// Nodes is the fleet size; present only from a fleet front-end.
	Nodes int `json:"nodes,omitempty"`
}

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}
