package serve

// The /metrics contract: a fixed scenario produces byte-identical
// exposition text (pinned by a golden file), and every line obeys the
// Prometheus text-format rules an expfmt parser would enforce.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenScenario drives one board through a fixed job sequence and
// returns the exposition text: two jobs for tenant alpha (the second a
// full compile-cache hit), one throttled alpha submission, one job for
// tenant beta.
func goldenScenario(t *testing.T) string {
	t.Helper()
	s := newTestServer(t, Config{
		Tenant:  TenantLimits{Rate: 1, Burst: 2},
		Version: "test",
		Now:     func() time.Time { return time.Unix(1000, 0) },
	})
	s.Start()
	defer s.Drain()

	waitDone(t, submitOK(t, s, "alpha", "multimedia"))
	waitDone(t, submitOK(t, s, "alpha", "multimedia"))
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "alpha", "multimedia")); rec.Code != 429 {
		t.Fatalf("throttle submit: got %d, want 429", rec.Code)
	}
	waitDone(t, submitOK(t, s, "beta", "telecom"))

	var buf bytes.Buffer
	if err := s.writeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestMetricsGolden(t *testing.T) {
	got := goldenScenario(t)
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("metrics exposition diverged from golden file (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?$`)
)

// TestMetricsWellFormed validates the exposition line by line against
// the text-format grammar: every sample belongs to a family declared by
// a preceding TYPE line, families are declared once, and no line is
// anything other than HELP, TYPE, or a sample.
func TestMetricsWellFormed(t *testing.T) {
	text := goldenScenario(t)
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end in a newline")
	}
	declared := map[string]string{} // family -> type
	// belongs reports whether a sample name is owned by a declared
	// family: its own name, or — for summary/histogram families — the
	// family name plus a _sum/_count (or _bucket) suffix.
	belongs := func(name string) bool {
		if declared[name] != "" {
			return true
		}
		for _, sfx := range []string{"_sum", "_count", "_bucket"} {
			base := strings.TrimSuffix(name, sfx)
			if base == name {
				continue
			}
			if typ := declared[base]; typ == "summary" || typ == "histogram" {
				return sfx != "_bucket" || typ == "histogram"
			}
		}
		return false
	}
	samples := 0
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if declared[m[1]] != "" {
				t.Errorf("line %d: family %s declared twice", i+1, m[1])
			}
			declared[m[1]] = m[2]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed sample: %q", i+1, line)
				continue
			}
			if !belongs(m[1]) {
				t.Errorf("line %d: sample for undeclared family %s", i+1, m[1])
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
	// Spot-check the counters the scenario pins.
	for _, want := range []string{
		`vfpgad_admission_total{tenant="alpha",decision="admitted"} 2`,
		`vfpgad_admission_total{tenant="alpha",decision="throttled"} 1`,
		`vfpgad_jobs_total{tenant="alpha",outcome="completed"} 2`,
		`vfpgad_jobs_total{tenant="beta",outcome="completed"} 1`,
		`vfpgad_tenant_service_time_ns_count{tenant="alpha"} 2`,
		`vfpgad_tenant_service_time_ns_count{tenant="beta"} 1`,
		`vfpgad_build_info{version="test"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	m := &metricsWriter{w: &buf}
	m.series("x_total", "1", "label", "a\"b\\c\nd")
	if m.err != nil {
		t.Fatal(m.err)
	}
	want := `x_total{label="a\"b\\c\nd"} 1` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("escaped line = %q, want %q", got, want)
	}
	if !sampleRe.MatchString(strings.TrimSuffix(buf.String(), "\n")) {
		t.Errorf("escaped line does not parse: %q", buf.String())
	}
}
