package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// TenantLimits parameterizes the per-tenant token bucket: a tenant may
// hold up to Burst tokens and regains Rate tokens per second; one token
// admits one job. Rate <= 0 disables throttling (every submission is
// admitted as far as the bucket is concerned — queues still push back).
type TenantLimits struct {
	Rate  float64
	Burst float64
}

// DefaultTenantLimits allows short bursts over a sustained 20 jobs/s.
func DefaultTenantLimits() TenantLimits { return TenantLimits{Rate: 20, Burst: 40} }

// tenantState is one tenant's bucket plus admission/outcome accounting.
type tenantState struct {
	tokens float64
	last   time.Time

	admitted  int64 // passed the bucket (may still bounce off a full queue)
	throttled int64 // rejected by the bucket
	queueFull int64 // admitted by the bucket, rejected by queue backpressure
	completed int64
	failed    int64
}

// Admission is the long-term scheduler of the service: it decides, per
// tenant, whether a submission may enter the system at all. The clock is
// injectable so tests (and the metrics golden file) are deterministic.
//
// One Admission serves one budget domain. A single daemon owns its own;
// a fleet scheduler shares one across every node, so the token budget —
// and the Retry-After hint computed from it — reflects the whole fleet's
// capacity for the tenant, not whichever node the request landed on.
type Admission struct {
	// limits and now are set once at construction and never reassigned;
	// they sit above mu, which guards only the tenant table below it.
	limits TenantLimits
	now    func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewAdmission builds an admission controller; a nil clock means
// time.Now.
func NewAdmission(limits TenantLimits, now func() time.Time) *Admission {
	if now == nil {
		now = time.Now
	}
	return &Admission{limits: limits, now: now, tenants: map[string]*tenantState{}}
}

func (a *Admission) stateLocked(tenant string) *tenantState {
	ts := a.tenants[tenant]
	if ts == nil {
		ts = &tenantState{tokens: a.limits.Burst, last: a.now()}
		a.tenants[tenant] = ts
	}
	return ts
}

// Allow spends one token for tenant. When the bucket is empty it returns
// false and how long until a token accrues (the Retry-After hint).
func (a *Admission) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.stateLocked(tenant)
	if a.limits.Rate <= 0 {
		ts.admitted++
		return true, 0
	}
	now := a.now()
	ts.tokens = math.Min(a.limits.Burst, ts.tokens+a.limits.Rate*now.Sub(ts.last).Seconds())
	ts.last = now
	if ts.tokens >= 1 {
		ts.tokens--
		ts.admitted++
		return true, 0
	}
	ts.throttled++
	return false, time.Duration((1 - ts.tokens) / a.limits.Rate * float64(time.Second))
}

// Note* record submission outcomes after the bucket decision.
// NoteCompleted and NoteFailed make Admission an OutcomeSink.

// NoteQueueFull records a submission admitted by the bucket but bounced
// off queue backpressure.
func (a *Admission) NoteQueueFull(tenant string) {
	a.bump(tenant, func(ts *tenantState) { ts.queueFull++ })
}

// NoteCompleted records a finished job.
func (a *Admission) NoteCompleted(tenant string) {
	a.bump(tenant, func(ts *tenantState) { ts.completed++ })
}

// NoteFailed records a failed job.
func (a *Admission) NoteFailed(tenant string) { a.bump(tenant, func(ts *tenantState) { ts.failed++ }) }

func (a *Admission) bump(tenant string, f func(*tenantState)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f(a.stateLocked(tenant))
}

// TenantCounters is a consistent snapshot of one tenant's accounting.
type TenantCounters struct {
	Tenant    string
	Admitted  int64
	Throttled int64
	QueueFull int64
	Completed int64
	Failed    int64
}

// Snapshot returns every tenant's counters, sorted by tenant name for
// deterministic exposition.
func (a *Admission) Snapshot() []TenantCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantCounters, 0, len(a.tenants))
	for name, ts := range a.tenants {
		out = append(out, TenantCounters{
			Tenant: name, Admitted: ts.admitted, Throttled: ts.throttled,
			QueueFull: ts.queueFull, Completed: ts.completed, Failed: ts.failed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
