package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Config parameterizes a Server.
type Config struct {
	// Boards describes the pool; at least one is required.
	Boards []BoardConfig
	// Tenant is the per-tenant admission limit.
	Tenant TenantLimits
	// Version is reported by /healthz and /metrics (build info).
	Version string
	// Now is the admission clock; nil means time.Now. Injectable for
	// deterministic tests.
	Now func() time.Time
	// Faults arms every board with a fault-injection campaign derived
	// from this plan (board i gets Derive(i), so boards fail
	// independently but reproducibly). Boards with their own Faults plan
	// keep it. Nil means no injection anywhere.
	Faults *fault.Plan
	// CompactWatermark turns on idle-cycle defragmentation: after a job,
	// a board whose queue is empty and whose external-fragmentation
	// ratio is at or above the watermark runs a compaction pass through
	// its ledger. <= 0 disables compaction.
	CompactWatermark float64
	// CompactBudget bounds the virtual device time one compaction pass
	// may spend on relocations; 0 means unbounded (pack fully).
	CompactBudget sim.Time
	// Admission, when non-nil, replaces the server's own per-tenant
	// bucket — the fleet layer shares one Admission across every node so
	// budgets (and Retry-After hints) are fleet-wide, not per daemon.
	// Tenant is ignored when Admission is set.
	Admission *Admission
}

// Server is the vfpgad service: board pool + admission + HTTP handlers.
type Server struct {
	pool    *Pool
	adm     *Admission
	version string
	mux     *http.ServeMux
}

// New builds a Server. Call Start before serving traffic; until then
// submissions queue but nothing runs (tests use that window to fill
// queues deterministically).
func New(cfg Config) (*Server, error) {
	adm := cfg.Admission
	if adm == nil {
		adm = NewAdmission(cfg.Tenant, cfg.Now)
	}
	boards := append([]BoardConfig(nil), cfg.Boards...)
	if cfg.Faults != nil {
		for i := range boards {
			if boards[i].Faults == nil {
				plan := cfg.Faults.Derive(uint64(i))
				boards[i].Faults = &plan
			}
		}
	}
	p, err := NewPool(boards, PoolOptions{
		Outcomes:         adm,
		CompactWatermark: cfg.CompactWatermark,
		CompactBudget:    cfg.CompactBudget,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{pool: p, adm: adm, version: cfg.Version}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/boards", s.handleBoards)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the board workers.
func (s *Server) Start() { s.pool.Start() }

// Drain stops intake and blocks until every accepted job has finished.
func (s *Server) Drain() { s.pool.Drain() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "tenant is required")
		return
	}
	if err := req.Workload.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad workload: %v", err)
		return
	}
	if req.Node != nil {
		writeError(w, http.StatusBadRequest, "node pinning requires a fleet (vfpgad -nodes > 1)")
		return
	}

	if ok, retry := s.adm.Allow(req.Tenant); !ok {
		secs := int(retry / time.Second)
		if retry%time.Second != 0 || secs == 0 {
			secs++ // round up: retrying earlier than the hint just throttles again
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "tenant %q over admission rate", req.Tenant)
		return
	}

	// The job's context outlives the HTTP request: it governs the job's
	// whole lifetime, so a deadline set here still fires while queued.
	ctx, cancel := context.WithCancel(context.Background())
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	spec := req.Workload
	j, err := s.pool.Submit(SubmitArgs{
		Tenant: req.Tenant, Spec: &spec, Trace: req.Trace,
		Board: req.Board, Ctx: ctx, Cancel: cancel,
	})
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	case errors.Is(err, ErrNoSuchBoard):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrBoardQuarantined):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, ErrNoHealthyBoard):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		s.adm.NoteQueueFull(req.Tenant)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all board queues full")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID(), Board: j.Status().Board})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	// Cancellation is advisory: a queued job fails when its worker picks
	// it up; a running or finished job is unaffected (the simulation is
	// not preemptible mid-run).
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleBoards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.BoardInfos())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.pool.IsDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, Health{Status: status, Version: s.version, Boards: len(s.pool.boards)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.writeMetrics(w)
}
