package serve

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/workload"
)

// NewDirectRunner must report the same virtual makespan the cold path
// produces, and memoize by spec so repeated entries are free.
func TestDirectRunnerMatchesColdPath(t *testing.T) {
	bc := DefaultBoardConfig()
	run, err := NewDirectRunner(bc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	first, err := run("alpha", &spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Failed || first.Service <= 0 {
		t.Fatalf("direct run outcome: %+v", first)
	}
	again, err := run("beta", &spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("memoized outcome diverged: %+v vs %+v", again, first)
	}
	res, err := runJob(compile.NewStripCache(compile.DefaultCacheCapacity), bc, &spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != first.Service {
		t.Fatalf("runner makespan %d != cold path %d", first.Service, res.Makespan)
	}
}

func TestDirectRunnerRejectsBadConfig(t *testing.T) {
	bc := DefaultBoardConfig()
	bc.Manager = "bogus"
	if _, err := NewDirectRunner(bc); err == nil {
		t.Fatal("invalid board config accepted")
	}
}
