package serve

// Graceful degradation under injected faults: a board whose ledger
// escalates is quarantined, its jobs rerun on healthy boards or fail
// with a typed reason, and the quarantine is visible on /v1/boards and
// /metrics. Fault plans here are scripted (retries=0, fault on the
// first config op), so board outcomes are exact, not probabilistic.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fault"
)

// escalatingPlan always escalates on the first configuration op.
func escalatingPlan(t *testing.T) *fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec("seed=1,retries=0,config-error@1")
	if err != nil {
		t.Fatal(err)
	}
	return &plan
}

// TestQuarantineAndRequeue: board 0 escalates on its first job; the
// pool quarantines it and reruns every displaced job — the escalated
// one and the ones still queued behind it — on healthy board 1.
func TestQuarantineAndRequeue(t *testing.T) {
	faulty := DefaultBoardConfig()
	faulty.Faults = escalatingPlan(t)
	healthy := DefaultBoardConfig()
	s := newTestServer(t, Config{Boards: []BoardConfig{faulty, healthy}, Tenant: TenantLimits{Rate: 0}})

	// Workers not started yet: four submissions alternate over the two
	// idle boards, so board 0 holds two of them when it quarantines.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, submitOK(t, s, "acme", "multimedia"))
	}
	s.Start()
	for _, j := range jobs {
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s: state %s (%s)", st.ID, st.State, st.Error)
		} else if st.Board != 1 {
			t.Errorf("job %s finished on board %d, want 1 (0 is quarantined)", st.ID, st.Board)
		}
	}
	if n := s.pool.RequeueCount(); n != 2 {
		t.Errorf("requeues = %d, want 2 (escalated job + queued-behind job)", n)
	}

	rec := do(t, s, "GET", "/v1/boards", "")
	var infos []BoardInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if !infos[0].Quarantined || infos[0].State != "quarantined" || infos[0].FaultKind != "config-error" {
		t.Errorf("board 0 not quarantined as expected: %+v", infos[0])
	}
	if infos[0].Escalations != 1 {
		t.Errorf("board 0 escalations = %d, want 1", infos[0].Escalations)
	}
	if infos[1].Quarantined || infos[1].JobsDone != 4 {
		t.Errorf("board 1 should have run all 4 jobs: %+v", infos[1])
	}

	rec = do(t, s, "GET", "/metrics", "")
	for _, want := range []string{
		`vfpgad_board_quarantined{board="0",manager="dynamic"} 1`,
		`vfpgad_board_quarantined{board="1",manager="dynamic"} 0`,
		`vfpgad_job_requeues_total 2`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics lack %q", want)
		}
	}
	s.Drain()
}

// TestPinnedJobFailsTyped: a job pinned to the board that escalates is
// never rerun elsewhere — it fails with the fault kind — and further
// pins to the quarantined board are 409.
func TestPinnedJobFailsTyped(t *testing.T) {
	faulty := DefaultBoardConfig()
	faulty.Faults = escalatingPlan(t)
	s := newTestServer(t, Config{Boards: []BoardConfig{faulty, DefaultBoardConfig()}, Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()

	body := strings.Replace(submitBody(t, "acme", "multimedia"), `{"tenant"`, `{"board":0,"tenant"`, 1)
	rec := do(t, s, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("pinned submit: got %d (%s)", rec.Code, rec.Body)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	j, _ := s.pool.Job(resp.ID)
	waitDone(t, j)
	st := j.Status()
	if st.State != StateFailed || st.FaultKind != "config-error" || st.Requeues != 0 {
		t.Errorf("pinned escalated job: %+v, want failed/config-error/0 requeues", st)
	}
	if !strings.Contains(st.Error, "fault:") {
		t.Errorf("error %q lacks the typed fault prefix", st.Error)
	}

	// The board is now quarantined: pinning to it is a 409 conflict.
	if rec := do(t, s, "POST", "/v1/jobs", body); rec.Code != http.StatusConflict {
		t.Errorf("pin to quarantined board: got %d, want 409", rec.Code)
	}
	// Unpinned work still flows to the healthy board.
	good := submitOK(t, s, "acme", "multimedia")
	waitDone(t, good)
	if gst := good.Status(); gst.State != StateDone || gst.Board != 1 {
		t.Errorf("unpinned job after quarantine: %+v", gst)
	}
}

// TestAllBoardsQuarantined: with no healthy board left, a displaced job
// fails with its typed reason and new submissions get 503.
func TestAllBoardsQuarantined(t *testing.T) {
	faulty := DefaultBoardConfig()
	faulty.Faults = escalatingPlan(t)
	s := newTestServer(t, Config{Boards: []BoardConfig{faulty}, Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()

	j := submitOK(t, s, "acme", "multimedia")
	waitDone(t, j)
	st := j.Status()
	if st.State != StateFailed || st.FaultKind != "config-error" {
		t.Errorf("job on sole faulty board: %+v, want failed/config-error", st)
	}
	if rec := do(t, s, "POST", "/v1/jobs", submitBody(t, "acme", "multimedia")); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submit with every board quarantined: got %d, want 503", rec.Code)
	}
}

// TestConfigFaultsDerivesPerBoard: a pool-level plan fans out into
// distinct per-board plans (independent failure streams), without
// overriding a board's own plan.
func TestConfigFaultsDerivesPerBoard(t *testing.T) {
	plan, err := fault.ParseSpec("seed=42,config-error=0.5")
	if err != nil {
		t.Fatal(err)
	}
	own := escalatingPlan(t)
	bc := DefaultBoardConfig()
	withOwn := DefaultBoardConfig()
	withOwn.Faults = own
	s := newTestServer(t, Config{Boards: []BoardConfig{bc, bc, withOwn}, Faults: &plan})
	b0, b1, b2 := s.pool.boards[0].cfg.Faults, s.pool.boards[1].cfg.Faults, s.pool.boards[2].cfg.Faults
	if b0 == nil || b1 == nil {
		t.Fatal("pool-level plan not fanned out")
	}
	if b0.Seed == b1.Seed {
		t.Error("derived board plans share a seed")
	}
	if b2 != own {
		t.Error("board-level plan overridden by pool-level one")
	}
}
