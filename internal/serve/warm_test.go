package serve

// The warm-board contract: a job run on a warm-reset runtime is
// byte-identical to the same job on a freshly built board — tasks,
// metrics, lint, merged timeline, even the typed error when a fault
// escalates — for every manager, with and without faults, with and
// without tracing, independent of what ran on the board before.

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/workload"
)

func specFor(t testing.TB, scenario string) *workload.Spec {
	t.Helper()
	s, err := workload.BuiltinSpec(scenario)
	if err != nil {
		t.Fatal(err)
	}
	return &s
}

// recoverablePlan injects faults with enough retry budget that most jobs
// complete (with fault metrics); when one does escalate, warm and fresh
// must escalate identically.
func recoverablePlan(t testing.TB) *fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec("seed=7,retries=2,backoff=20us,config-error=0.2,readback-flip=0.1")
	if err != nil {
		t.Fatal(err)
	}
	return &plan
}

// encodeOutcome renders a (result, error) pair for byte comparison.
func encodeOutcome(t testing.TB, res *JobResult, err error) []byte {
	t.Helper()
	if err != nil {
		return []byte("error: " + err.Error())
	}
	b, jerr := json.Marshal(res)
	if jerr != nil {
		t.Fatal(jerr)
	}
	return b
}

func TestWarmResetEquivalence(t *testing.T) {
	// The third and fourth jobs repeat earlier scenarios, so every
	// manager — including overlay and merged, whose warm reuse is gated
	// on an identical circuit set — takes the warm path at least once.
	scenarios := []string{"multimedia", "telecom", "multimedia", "multimedia"}
	for _, mgr := range Managers {
		for _, withFaults := range []bool{false, true} {
			for _, withTrace := range []bool{false, true} {
				name := fmt.Sprintf("%s/faults=%v/trace=%v", mgr, withFaults, withTrace)
				t.Run(name, func(t *testing.T) {
					bc := DefaultBoardConfig()
					bc.Manager = mgr
					if withFaults {
						bc.Faults = recoverablePlan(t)
					}
					cache := compile.NewStripCache(compile.DefaultCacheCapacity)
					var rt *boardRuntime
					warmRuns := 0
					for i, scenario := range scenarios {
						spec := specFor(t, scenario)
						set, err := spec.Build()
						if err != nil {
							t.Fatal(err)
						}
						circs, err := compileSet(cache, bc, set)
						if err != nil {
							t.Fatal(err)
						}
						warm := rt != nil && rt.compatible(set, circs)
						if !warm {
							rt, err = buildRuntime(bc, set, circs)
							if err != nil {
								t.Fatal(err)
							}
						} else {
							warmRuns++
						}
						gotRes, gotErr := rt.run(set, circs, withTrace, warm)
						if gotErr != nil {
							rt = nil // what the pool does: discard on any failure
						}
						wantRes, wantErr := runJob(cache, bc, spec, withTrace)
						got := encodeOutcome(t, gotRes, gotErr)
						want := encodeOutcome(t, wantRes, wantErr)
						if string(got) != string(want) {
							t.Errorf("job %d (%s, warm=%v) diverged from fresh rebuild:\n--- warm ---\n%s\n--- fresh ---\n%s",
								i, scenario, warm, got, want)
						}
					}
					if warmRuns == 0 {
						t.Errorf("no job took the warm path; the suite proved nothing")
					}
				})
			}
		}
	}
}

// TestWarmCompatibleGating pins the reuse rule: set-independent managers
// warm-reset across different circuit sets, overlay and merged only
// across identical ones.
func TestWarmCompatibleGating(t *testing.T) {
	cache := compile.NewStripCache(compile.DefaultCacheCapacity)
	for _, mgr := range Managers {
		bc := DefaultBoardConfig()
		bc.Manager = mgr
		setA, err := specFor(t, "multimedia").Build()
		if err != nil {
			t.Fatal(err)
		}
		circsA, err := compileSet(cache, bc, setA)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := buildRuntime(bc, setA, circsA)
		if err != nil {
			t.Fatalf("%s: %v", mgr, err)
		}
		setB, err := specFor(t, "telecom").Build()
		if err != nil {
			t.Fatal(err)
		}
		circsB, err := compileSet(cache, bc, setB)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.compatible(setA, circsA) {
			t.Errorf("%s: runtime not compatible with its own construction set", mgr)
		}
		setDependent := mgr == "overlay" || mgr == "merged"
		if got := rt.compatible(setB, circsB); got != !setDependent {
			t.Errorf("%s: compatible(other set) = %v, want %v", mgr, got, !setDependent)
		}
	}
}

// TestPoolWarmCounters drives real jobs through the pool and checks the
// warm/cold accounting surfaced on BoardInfo.
func TestPoolWarmCounters(t *testing.T) {
	s := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0}})
	s.Start()
	defer s.Drain()
	for i := 0; i < 3; i++ {
		waitDone(t, submitOK(t, s, "acme", "multimedia"))
	}
	bi := s.pool.boards[0].info()
	if bi.ColdResets != 1 || bi.WarmResets != 2 {
		t.Errorf("resets = %d cold / %d warm, want 1/2", bi.ColdResets, bi.WarmResets)
	}
	if !bi.Warm {
		t.Errorf("board should report a resident warm runtime: %+v", bi)
	}
}

// BenchmarkJobColdVsWarm measures the tentpole's point: serving a job by
// snapshot-restore reset vs. rebuilding the whole stack from scratch
// (fresh compile cache — the true cold start, place and route included).
func BenchmarkJobColdVsWarm(b *testing.B) {
	bc := DefaultBoardConfig()
	spec := specFor(b, "multimedia")
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := compile.NewStripCache(compile.DefaultCacheCapacity)
			if _, err := runJob(cache, bc, spec, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := compile.NewStripCache(compile.DefaultCacheCapacity)
		set, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		circs, err := compileSet(cache, bc, set)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := buildRuntime(bc, set, circs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rt.run(set, circs, false, false); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.run(set, circs, false, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// An empty circuit set must fail at Build time with the typed workload
// error for the set-pinning managers (overlay, merged index the circuit
// list at construction), not panic on `names[:1]`.
func TestEmptySetTypedError(t *testing.T) {
	for _, mgr := range []string{"overlay", "merged"} {
		bc := DefaultBoardConfig()
		bc.Manager = mgr
		if _, err := buildRuntime(bc, &workload.Set{}, nil); !errors.Is(err, workload.ErrNoCircuits) {
			t.Errorf("%s: buildRuntime(empty set) = %v, want ErrNoCircuits", mgr, err)
		}
	}
}
