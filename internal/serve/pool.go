package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Submission errors mapped to HTTP statuses by the server layer.
var (
	// ErrQueueFull is backpressure: every eligible board queue is at
	// capacity (429).
	ErrQueueFull = errors.New("serve: board queues full")
	// ErrDraining means the pool is shutting down (503).
	ErrDraining = errors.New("serve: draining")
	// ErrNoSuchBoard rejects a pin to a board id outside the pool (400).
	ErrNoSuchBoard = errors.New("serve: no such board")
	// ErrBoardQuarantined rejects a pin to a board taken out of service
	// by a fault escalation (409).
	ErrBoardQuarantined = errors.New("serve: board quarantined")
	// ErrNoHealthyBoard means every board is quarantined (503).
	ErrNoHealthyBoard = errors.New("serve: no healthy board")
)

// Job is one unit of work moving through a Pool. Jobs are created by
// Pool.Submit; ID, Done, Status and Cancel are valid from the moment
// Submit returns.
type Job struct {
	id     string
	tenant string
	spec   *workload.Spec
	trace  bool
	ctx    context.Context
	cancel context.CancelFunc

	// pinned jobs asked for one specific board; they are never rerun
	// elsewhere when that board is quarantined. Written once before the
	// first channel send, read by workers after the receive.
	pinned bool
	// done is created at construction and closed exactly once (under
	// mu, in finish); waiting on it needs no lock.
	done chan struct{}

	mu        sync.Mutex
	state     string
	board     int
	errMsg    string
	faultKind string
	requeues  int
	result    *JobResult
}

// ID returns the pool-assigned job id.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the job's context. Cancellation is advisory: a queued
// job fails when its worker picks it up; a running or finished job is
// unaffected (the simulation is not preemptible mid-run).
func (j *Job) Cancel() { j.cancel() }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

func (j *Job) finish(res *JobResult, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		if esc, ok := fault.AsEscalation(err); ok {
			j.faultKind = esc.Kind.String()
		}
	} else {
		j.state = StateDone
		j.result = res
	}
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Tenant: j.tenant, State: j.state, Board: j.board,
		Error: j.errMsg, Result: j.result,
		FaultKind: j.faultKind, Requeues: j.requeues,
	}
}

// noteFault records the typed fault reason on a job that never ran
// because its board was already quarantined.
func (j *Job) noteFault(kind string) {
	j.mu.Lock()
	j.faultKind = kind
	j.mu.Unlock()
}

// board is one execution slot: a config, a bounded queue and the
// accumulated accounting of everything it ran.
type board struct {
	id    int
	cfg   BoardConfig
	queue chan *Job

	// rt is the board's warm runtime: the simulated stack kept resident
	// across jobs and reset to its pristine snapshot instead of rebuilt.
	// nil until the first job builds it, and discarded whenever a job
	// fails (mid-job state is not pristine). Owned by the board's worker
	// goroutine exclusively; like pool.wg/gate it sits above mu because
	// the fields below mu are the ones mu guards.
	rt *boardRuntime

	mu      sync.Mutex
	current string // running job id ("" when idle)
	done    int64
	failed  int64
	agg     core.MetricsSnapshot // summed device metrics across jobs
	// quarantined boards accept nothing and run nothing: a fault
	// escalation exhausted the ledger's retry budget here. quarKind is
	// the first escalated kind; escalations counts escalated jobs.
	quarantined bool
	quarKind    string
	escalations int64
	// warm mirrors rt != nil for readers outside the worker goroutine;
	// warmResets/coldResets count jobs started on a snapshot-restore
	// reset vs. a full (re)build.
	warm       bool
	warmResets int64
	coldResets int64
	// fragRatio, largestFree and frag are the board's fragmentation
	// view, sampled from the warm runtime after every job and after
	// every compaction pass (a discarded runtime keeps the last sample).
	// A board that has never run a job reports one full-width free span:
	// fleet placement must see fresh capacity, not zero. frag is the
	// merged FragStats across the board's engines; fragRatio keeps the
	// worst single engine's ratio. compactions counts idle-cycle defrag
	// passes, compactionMoved the strips they relocated, compactionAborts
	// the passes an injected fault cut short.
	fragRatio        float64
	largestFree      int
	frag             core.FragStats
	compactions      int64
	compactionMoved  int64
	compactionAborts int64
}

// sampleFrag refreshes the board's exported fragmentation view from the
// warm runtime's engines: the worst external-fragmentation ratio and the
// widest contiguous free extent across them (a multi-device board
// reports its most fragmented device), plus the merged FragStats the
// fleet layer aggregates. Runs on the board's worker goroutine, the
// sole owner of b.rt.
func (b *board) sampleFrag() {
	if b.rt == nil {
		return
	}
	var ratio float64
	largest := 0
	var merged core.FragStats
	for _, eng := range b.rt.engines {
		f := eng.Ledger().Frag()
		if r := f.Ratio(); r > ratio {
			ratio = r
		}
		if f.LargestFree > largest {
			largest = f.LargestFree
		}
		merged.Merge(f)
	}
	b.mu.Lock()
	b.fragRatio, b.largestFree, b.frag = ratio, largest, merged
	b.mu.Unlock()
}

// noteReset records how a job's board state was prepared.
func (b *board) noteReset(warm bool) {
	b.mu.Lock()
	if warm {
		b.warmResets++
	} else {
		b.coldResets++
	}
	b.mu.Unlock()
}

// quarantine takes the board out of service (idempotent; the first
// escalated kind sticks as the reason).
func (b *board) quarantine(kind string) {
	b.mu.Lock()
	b.current = ""
	b.escalations++
	if !b.quarantined {
		b.quarantined = true
		b.quarKind = kind
	}
	b.mu.Unlock()
}

func (b *board) quarantineState() (kind string, quarantined bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.quarKind, b.quarantined
}

func (b *board) isQuarantined() bool {
	_, q := b.quarantineState()
	return q
}

func (b *board) info() BoardInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := "idle"
	if b.current != "" {
		state = "busy"
	}
	if b.quarantined {
		state = "quarantined"
	}
	return BoardInfo{
		ID: b.id, Manager: b.cfg.Manager, Cols: b.cfg.Cols, Rows: b.cfg.Rows,
		State: state, CurrentJob: b.current,
		QueueDepth: len(b.queue), QueueCap: cap(b.queue),
		JobsDone: b.done, JobsFailed: b.failed,
		Quarantined: b.quarantined, FaultKind: b.quarKind, Escalations: b.escalations,
		Warm: b.warm, WarmResets: b.warmResets, ColdResets: b.coldResets,
		Fragmentation: b.fragRatio, LargestFreeCols: b.largestFree,
		Compactions: b.compactions, CompactionMoved: b.compactionMoved,
		CompactionAborts: b.compactionAborts,
	}
}

// OutcomeSink receives per-tenant job outcomes from a Pool, after the
// admission decision. Admission implements it; a fleet scheduler hands
// one shared Admission to every node's pool so the accounting — and the
// token budget it informs — stays fleet-wide.
type OutcomeSink interface {
	NoteCompleted(tenant string)
	NoteFailed(tenant string)
}

// noopSink is the nil-safe default outcome sink.
type noopSink struct{}

func (noopSink) NoteCompleted(string) {}
func (noopSink) NoteFailed(string)    {}

// PoolOptions parameterizes a Pool beyond its board configs.
type PoolOptions struct {
	// Outcomes receives per-tenant completion/failure notes; nil means
	// no accounting.
	Outcomes OutcomeSink
	// Cache is the strip-compile cache; nil builds a private one. A
	// fleet shares one cache across its nodes' pools, so a circuit
	// compiled on any node is warm everywhere.
	Cache *compile.StripCache
	// CompactWatermark turns on idle-cycle defragmentation (see
	// Config.CompactWatermark); <= 0 disables it.
	CompactWatermark float64
	// CompactBudget bounds one compaction pass's relocation time; 0
	// means unbounded.
	CompactBudget sim.Time
}

// Pool owns the boards and the job store. One worker goroutine per
// board drains that board's queue; boards never share simulation state,
// only the concurrency-safe compile cache.
type Pool struct {
	boards   []*board
	cache    *compile.StripCache
	outcomes OutcomeSink

	// wg and gate are self-synchronized and sit above mu: fields below
	// mu are the ones mu guards. gate, when non-nil, makes every worker
	// consume one token before running each job — a test hook to hold
	// queues full deterministically. Both are written before Start().
	wg   sync.WaitGroup
	gate chan struct{}

	// compactWatermark and compactBudget configure idle-cycle
	// defragmentation; both are written before Start() and read only by
	// the worker goroutines. A watermark <= 0 disables compaction.
	compactWatermark float64
	compactBudget    sim.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int64
	requeues int64 // jobs handed to another board after a quarantine
	draining bool
	// svc samples completed jobs' virtual service time (makespan, ns)
	// across all boards, feeding the /metrics summary; tenantSvc holds
	// the same sample sliced per tenant. Observations are retained for
	// quantiles; one float per job is fine at this scale.
	svc       *stats.Sample
	tenantSvc map[string]*stats.Sample
}

// observeService records one completed job's virtual service time,
// both in the pool-wide sample and the tenant's slice of it.
func (p *Pool) observeService(tenant string, ns int64) {
	p.mu.Lock()
	p.svc.Observe(float64(ns))
	ts := p.tenantSvc[tenant]
	if ts == nil {
		ts = stats.NewSample(true)
		p.tenantSvc[tenant] = ts
	}
	ts.Observe(float64(ns))
	p.mu.Unlock()
}

// ServiceStats returns the p50/p95 quantiles, sum and count of the
// service-time sample, all in virtual nanoseconds.
func (p *Pool) ServiceStats() (p50, p95, sum, count int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.svc.Quantile(0.5)), int64(p.svc.Quantile(0.95)),
		int64(p.svc.Sum()), p.svc.Count()
}

// TenantServiceSummary is one tenant's slice of the service-time
// sample, in virtual nanoseconds.
type TenantServiceSummary struct {
	Tenant string
	P50    int64
	P95    int64
	Sum    int64
	Count  int64
}

// TenantServiceStats returns per-tenant service-time summaries, sorted
// by tenant so emission order is deterministic.
func (p *Pool) TenantServiceStats() []TenantServiceSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantServiceSummary, 0, len(p.tenantSvc))
	for tenant, s := range p.tenantSvc {
		out = append(out, TenantServiceSummary{
			Tenant: tenant,
			P50:    int64(s.Quantile(0.5)),
			P95:    int64(s.Quantile(0.95)),
			Sum:    int64(s.Sum()),
			Count:  s.Count(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// NewPool builds a pool over the given boards. Call Start before
// expecting work to run; until then submissions queue but nothing
// executes (tests use that window to fill queues deterministically).
func NewPool(cfgs []BoardConfig, opts PoolOptions) (*Pool, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("serve: a pool needs at least one board")
	}
	outcomes := opts.Outcomes
	if outcomes == nil {
		outcomes = noopSink{}
	}
	cache := opts.Cache
	if cache == nil {
		cache = compile.NewStripCache(compile.DefaultCacheCapacity)
	}
	p := &Pool{
		cache:            cache,
		outcomes:         outcomes,
		compactWatermark: opts.CompactWatermark,
		compactBudget:    opts.CompactBudget,
		jobs:             map[string]*Job{},
		svc:              stats.NewSample(true),
		tenantSvc:        map[string]*stats.Sample{},
	}
	for i, bc := range cfgs {
		if err := bc.Validate(); err != nil {
			return nil, fmt.Errorf("board %d: %w", i, err)
		}
		p.boards = append(p.boards, &board{
			id: i, cfg: bc, queue: make(chan *Job, bc.QueueDepth),
			largestFree: bc.Cols,
			frag:        core.FreshFrag(bc.Cols),
		})
	}
	return p, nil
}

// Start launches one worker goroutine per board.
func (p *Pool) Start() {
	for _, b := range p.boards {
		p.wg.Add(1)
		go p.worker(b)
	}
}

func (p *Pool) worker(b *board) {
	defer p.wg.Done()
	for j := range b.queue {
		if p.gate != nil {
			<-p.gate
		}
		p.runOne(b, j)
		p.boardMaint(b)
	}
}

// boardMaint runs on b's worker goroutine after every job: it samples
// the board's fragmentation view and, when the queue is idle and the
// ratio has crossed the configured watermark, spends the idle cycle on
// a budgeted compaction pass through each engine's ledger. The pass
// charges real relocation costs, but the next job starts from the
// pristine image anyway (warm reset or rebuild), so job results stay
// independent of whether the board defragmented in between — compaction
// here models reclaiming otherwise-dead device time, and its effect is
// visible through the board's exported fragmentation gauges.
func (p *Pool) boardMaint(b *board) {
	if b.rt == nil || b.isQuarantined() {
		return
	}
	b.sampleFrag()
	if p.compactWatermark <= 0 || len(b.queue) != 0 {
		return
	}
	var moved, aborts int64
	ran := false
	for _, eng := range b.rt.engines {
		f := eng.Ledger().Frag()
		// One mid-device hole is enough to cross a low watermark, but
		// with a single free span there is nothing to merge.
		if f.Ratio() < p.compactWatermark || f.FreeSpans < 2 {
			continue
		}
		res := p.compactEngine(eng)
		ran = true
		moved += int64(res.Moved)
		if res.Err != nil {
			aborts++
		}
	}
	if !ran {
		return
	}
	b.mu.Lock()
	b.compactions++
	b.compactionMoved += moved
	b.compactionAborts += aborts
	b.mu.Unlock()
	b.sampleFrag()
}

// compactEngine runs one budgeted compaction pass over an engine's
// ledger, converting any stray panic into an aborted result. An abort —
// an injected fault firing mid-move — never quarantines the board: the
// ledger already resolved the fault (strip kept or cleanly dropped),
// and the next idle cycle simply retries.
func (p *Pool) compactEngine(eng *core.Engine) (res core.CompactResult) {
	defer func() {
		if r := recover(); r != nil {
			res = core.CompactResult{Err: fmt.Errorf("serve: compaction panicked: %v", r)}
		}
	}()
	return eng.Ledger().Compact(p.compactBudget)
}

func (p *Pool) runOne(b *board, j *Job) {
	if err := j.ctx.Err(); err != nil {
		// Canceled or deadline-expired while queued: fail without
		// spending board time on it.
		j.finish(nil, fmt.Errorf("job %s not run: %w", j.id, err))
		b.mu.Lock()
		b.failed++
		b.mu.Unlock()
		p.outcomes.NoteFailed(j.tenant)
		return
	}
	if kind, quarantined := b.quarantineState(); quarantined {
		// The board was quarantined with this job still in its queue:
		// hand the job to a healthy board, or fail it with the typed
		// fault reason so the caller can tell casualty from bug.
		if p.requeue(j) {
			return
		}
		j.noteFault(kind)
		j.finish(nil, fmt.Errorf("serve: board %d quarantined (%s); no healthy board for job %s", b.id, kind, j.id))
		b.mu.Lock()
		b.failed++
		b.mu.Unlock()
		p.outcomes.NoteFailed(j.tenant)
		return
	}
	b.mu.Lock()
	b.current = j.id
	b.mu.Unlock()
	j.setRunning()

	res, err := p.runWarm(b, j)

	if esc, ok := fault.AsEscalation(err); ok {
		// Retry budget exhausted on this board: take it out of service
		// and rerun the job on a healthy one when possible. Pinned jobs
		// fail in place — the client asked for exactly this board.
		b.quarantine(esc.Kind.String())
		if p.requeue(j) {
			return
		}
		j.finish(nil, err)
		b.mu.Lock()
		b.failed++
		b.mu.Unlock()
		p.outcomes.NoteFailed(j.tenant)
		return
	}

	b.mu.Lock()
	b.current = ""
	if err != nil {
		b.failed++
	} else {
		b.done++
		for _, m := range res.Metrics {
			b.agg.Accumulate(m)
		}
	}
	b.mu.Unlock()
	if err != nil {
		p.outcomes.NoteFailed(j.tenant)
	} else {
		p.observeService(j.tenant, int64(res.Makespan))
		p.outcomes.NoteCompleted(j.tenant)
	}
	j.finish(res, err)
}

// runWarm executes j on b, reusing the board's warm runtime when one is
// resident and compatible with the job's circuit set, and rebuilding the
// whole simulated stack otherwise. Any failure — build error, fault
// escalation, panic — discards the runtime: mid-job state is not
// pristine and must not leak into the next job (a quarantined board thus
// requeues cold). Runs on b's worker goroutine, the sole owner of b.rt.
func (p *Pool) runWarm(b *board, j *Job) (res *JobResult, err error) {
	defer func() {
		// rt.run recovers its own panics; this one covers the build path,
		// so a panicking constructor fails the job, not the worker.
		if r := recover(); r != nil {
			if esc, ok := fault.AsEscalation(r); ok {
				res, err = nil, esc
			} else {
				res, err = nil, fmt.Errorf("serve: job panicked: %v", r)
			}
		}
		if err != nil {
			b.rt = nil
		}
		b.mu.Lock()
		b.warm = b.rt != nil
		b.mu.Unlock()
	}()
	set, err := j.spec.Build()
	if err != nil {
		return nil, err
	}
	circs, err := compileSet(p.cache, b.cfg, set)
	if err != nil {
		return nil, err
	}
	warm := b.rt != nil && b.rt.compatible(set, circs)
	if !warm {
		b.rt = nil
		rt, err := buildRuntime(b.cfg, set, circs)
		if err != nil {
			return nil, err
		}
		b.rt = rt
	}
	b.noteReset(warm)
	return b.rt.run(set, circs, j.trace, warm)
}

// SubmitArgs describes one submission into a Pool.
type SubmitArgs struct {
	// Tenant is the submitting tenant (accounting is per tenant).
	Tenant string
	// Spec is the workload to run.
	Spec *workload.Spec
	// Trace includes the merged timeline in the result.
	Trace bool
	// Board pins the job to one board id; nil lets the pool pick the
	// least loaded healthy board.
	Board *int
	// Ctx bounds the job's whole lifetime (nil means Background); a
	// deadline set here still fires while queued. Cancel, when non-nil,
	// must cancel Ctx: the pool invokes it when the job reaches a
	// terminal state. When Cancel is nil the pool derives its own. A
	// fleet scheduler passes a per-attempt context derived from the
	// fleet job's, so one attempt finishing never cancels the next.
	Ctx    context.Context
	Cancel context.CancelFunc
}

// Submit enqueues a job and returns it. On error the job was not
// accepted and its context, when pool-derived, is already canceled.
func (p *Pool) Submit(args SubmitArgs) (*Job, error) {
	ctx, cancel := args.Ctx, args.Cancel
	if ctx == nil {
		ctx = context.Background()
	}
	if cancel == nil {
		ctx, cancel = context.WithCancel(ctx)
	}
	j := &Job{
		tenant: args.Tenant, spec: args.Spec, trace: args.Trace,
		ctx: ctx, cancel: cancel,
		state: StateQueued, done: make(chan struct{}),
	}
	if _, err := p.submit(j, args.Board); err != nil {
		cancel()
		return nil, err
	}
	return j, nil
}

// submit enqueues a job: onto the pinned board when pin is non-nil,
// otherwise onto the board with the most free queue capacity (ties to
// the lowest id). A full queue — or all full queues — is backpressure,
// not an error of the job. The whole decision runs under the pool lock
// so it cannot interleave with drain closing the queues.
func (p *Pool) submit(j *Job, pin *int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return 0, ErrDraining
	}
	var candidates []*board
	if pin != nil {
		if *pin < 0 || *pin >= len(p.boards) {
			return 0, fmt.Errorf("%w: %d", ErrNoSuchBoard, *pin)
		}
		b := p.boards[*pin]
		if b.isQuarantined() {
			return 0, fmt.Errorf("%w: board %d", ErrBoardQuarantined, *pin)
		}
		candidates = []*board{b}
		j.pinned = true
	} else {
		for _, b := range p.boards {
			if !b.isQuarantined() {
				candidates = append(candidates, b)
			}
		}
		if len(candidates) == 0 {
			return 0, ErrNoHealthyBoard
		}
	}
	ordered := orderByLoad(candidates)
	// All job fields are written before the channel send: the send
	// happens-before the worker's receive, so the worker may read them
	// without holding j.mu.
	j.id = fmt.Sprintf("j%06d", p.seq+1)
	for _, target := range ordered {
		j.mu.Lock()
		j.board = target.id
		j.mu.Unlock()
		select {
		case target.queue <- j:
			p.seq++
			p.jobs[j.id] = j
			return target.id, nil
		default: // full; try the next board
		}
	}
	return 0, ErrQueueFull
}

// orderByLoad returns the boards sorted by load — queued jobs plus the
// one in flight, since a running job no longer occupies the queue —
// stable, so ties keep board order.
func orderByLoad(candidates []*board) []*board {
	ordered := append([]*board(nil), candidates...)
	loads := make(map[*board]int, len(ordered))
	for _, b := range ordered {
		n := len(b.queue)
		b.mu.Lock()
		if b.current != "" {
			n++
		}
		b.mu.Unlock()
		loads[b] = n
	}
	sort.SliceStable(ordered, func(a, b int) bool { return loads[ordered[a]] < loads[ordered[b]] })
	return ordered
}

// requeue hands a job displaced by a quarantine to a healthy board.
// Bounded: each job moves at most len(boards)-1 times, so a campaign
// that quarantines every board still terminates. Runs under the pool
// lock so it cannot interleave with drain closing the queues.
func (p *Pool) requeue(j *Job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining || j.pinned {
		return false
	}
	j.mu.Lock()
	exhausted := j.requeues >= len(p.boards)-1
	j.mu.Unlock()
	if exhausted {
		return false
	}
	var healthy []*board
	for _, b := range p.boards {
		if !b.isQuarantined() {
			healthy = append(healthy, b)
		}
	}
	for _, target := range orderByLoad(healthy) {
		j.mu.Lock()
		j.board = target.id
		j.state = StateQueued
		j.requeues++
		j.mu.Unlock()
		select {
		case target.queue <- j:
			p.requeues++
			return true
		default: // full; try the next board
		}
		j.mu.Lock()
		j.requeues--
		j.mu.Unlock()
	}
	return false
}

// RequeueCount reports jobs handed to another board after a quarantine.
func (p *Pool) RequeueCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requeues
}

// Job returns the job by id.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// BoardInfos returns a snapshot of every board, in board-id order.
func (p *Pool) BoardInfos() []BoardInfo {
	infos := make([]BoardInfo, 0, len(p.boards))
	for _, b := range p.boards {
		infos = append(infos, b.info())
	}
	return infos
}

// FragSnapshots returns each board's merged ledger fragmentation stats,
// in board-id order. Fleet placement aggregates these per node; a board
// that has never run a job reports one full-width free span.
func (p *Pool) FragSnapshots() []core.FragStats {
	out := make([]core.FragStats, 0, len(p.boards))
	for _, b := range p.boards {
		b.mu.Lock()
		out = append(out, b.frag)
		b.mu.Unlock()
	}
	return out
}

// CacheStats reports the pool's strip-cache counters.
func (p *Pool) CacheStats() compile.CacheStats { return p.cache.Stats() }

// Drain stops intake, lets every queued job finish, and waits for the
// workers to exit. Safe to call more than once.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		// Closing under the lock excludes in-flight submit sends.
		for _, b := range p.boards {
			close(b.queue)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// IsDraining reports whether Drain has begun.
func (p *Pool) IsDraining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}
