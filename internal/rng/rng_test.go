package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	child := a.Split()
	// Drawing from the child must not change the parent's future stream
	// relative to a reference that splits but never draws from the child.
	ref := New(7)
	_ = ref.Split()
	for i := 0; i < 10; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != ref.Uint64() {
			t.Fatalf("parent stream perturbed by child draws at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v too far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyBased(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		seen := make(map[int]bool)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via decomposition: (a*b) mod 2^64 must equal lo, and the
		// identity hi*2^64 + lo == a*b holds iff lo matches wrapped product
		// and hi matches the upper bits computed a second way.
		if lo != a*b {
			return false
		}
		hi2, _ := mul64(b, a) // commutativity
		return hi == hi2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRange(t *testing.T) {
	s := New(23)
	z := NewZipf(s, 10, 1.2)
	for i := 0; i < 5000; i++ {
		v := z.Draw()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(29)
	z := NewZipf(s, 20, 1.5)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] || counts[5] <= counts[19] {
		t.Fatalf("Zipf(1.5) counts are not skewed: %v", counts)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	s := New(31)
	z := NewZipf(s, 8, 0)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/8) > 0.08*n/8 {
			t.Fatalf("Zipf(0) bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_,0,_) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1024, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}
