// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic component in the repository (workload generators,
// placement annealing, replacement policies with random eviction, ...)
// draws from an rng.Source created from an explicit seed, so that every
// experiment is exactly reproducible. The generator is splitmix64, which
// is tiny, fast, and passes the statistical tests that matter at the
// scale of this simulator.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
// The zero value is a valid generator seeded with 0; most callers should
// use New with an explicit seed instead.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new Source whose stream is independent of s.
// It is used to give each subsystem its own stream so that adding draws
// in one subsystem does not perturb another.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection-free approximation is overkill
	// here; simple modulo bias is negligible for the small n we use, but
	// we still use the widening multiply trick for uniformity.
	hi, _ := mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	hi, _ := mul64(s.Uint64(), uint64(n))
	return int64(hi)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by 1/lambda for rate lambda.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		u2 := s.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	tLo, tHi := t&mask32, t>>32
	t = aLo*bHi + tLo
	lo |= (t & mask32) << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// Zipf draws integers in [0, n) with a Zipf(s) distribution: rank r has
// probability proportional to 1/(r+1)^s. It precomputes the CDF, so draws
// are O(log n).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// s == 0 degenerates to the uniform distribution. It panics if n <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
