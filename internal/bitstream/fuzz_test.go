package bitstream_test

// Fuzz target for the on-disk bitstream format: ReadJSON on arbitrary
// bytes must never panic and must only hand back bitstreams that pass
// Validate — anything it accepts has to survive a Write/Read round trip
// byte-identically, since managers trust loaded bitstreams blindly.

import (
	"bytes"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// fuzzSeedBitstream is a minimal valid two-cell design: a registered
// cell fed by the input port, chained into the output driver.
func fuzzSeedBitstream() *bitstream.Bitstream {
	return &bitstream.Bitstream{
		Name: "seed", W: 2, H: 1, NumIn: 1, NumOut: 1,
		Cells: []bitstream.CellWrite{
			{X: 0, Y: 0, UseFF: true, Inputs: [fabric.LUTInputs]bitstream.Src{{Kind: bitstream.SrcPort, Port: 0}}},
			{X: 1, Y: 0, Inputs: [fabric.LUTInputs]bitstream.Src{{Kind: bitstream.SrcRel, DX: 0, DY: 0}}},
		},
		OutDrivers: []bitstream.Src{{Kind: bitstream.SrcRel, DX: 1, DY: 0}},
		FFCells:    1,
	}
}

func FuzzBitstreamParse(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedBitstream().WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, seed := range []string{
		`{"version":1,"bitstream":null}`,
		`{"version":2,"bitstream":{}}`,
		`{"version":1,"bitstream":{"Name":"x","W":1,"H":1}}`,
		`{"version":1,"bitstream":{"Name":"x","W":-1,"H":1}}`,
		`{"version":1,"bitstream":{"Name":"x","W":1,"H":1,"Cells":[{"X":5,"Y":0}]}}`,
		`garbage`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := bitstream.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just must not panic
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid bitstream: %v", err)
		}
		var first bytes.Buffer
		if err := b.WriteJSON(&first); err != nil {
			t.Fatalf("accepted bitstream failed to write: %v", err)
		}
		again, err := bitstream.ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("written form rejected on re-read: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := again.WriteJSON(&second); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialized form is not a fixpoint:\n first %s\nsecond %s", first.Bytes(), second.Bytes())
		}
	})
}
