// Package bitstream encodes placed-and-routed designs as relocatable
// configuration data. A Bitstream stores region-relative coordinates
// only, so the loader can download the same configuration at any origin —
// the property the paper requires for variable partitions and garbage
// collection ("creating a relocatable circuit to be loaded virtually in
// any location of the FPGA").
//
// The package also splits bitstreams into fixed-size pages, the unit of
// the paper's pagination technique.
package bitstream

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/techmap"
)

// SrcKind enumerates relocatable signal sources.
type SrcKind uint8

// Relocatable source kinds.
const (
	SrcNone SrcKind = iota
	SrcRel          // the CLB at region-relative (DX, DY)
	SrcPort         // circuit input port Port
	SrcConst0
	SrcConst1
)

// Src is a relocatable signal source.
type Src struct {
	Kind   SrcKind
	DX, DY int
	Port   int
}

// CellWrite is the configuration of one CLB at a region-relative location.
type CellWrite struct {
	X, Y   int
	LUT    [1 << fabric.LUTInputs]bool
	Inputs [fabric.LUTInputs]Src
	UseFF  bool
	FFInit bool
}

// Bitstream is a relocatable configuration image for a W x H region.
type Bitstream struct {
	Name   string
	W, H   int
	Cells  []CellWrite
	NumIn  int
	NumOut int
	// OutDrivers gives, per output port, the source that drives it.
	OutDrivers []Src
	// Delay is the critical-path delay of the routed design.
	Delay sim.Time
	// FFCells is the number of registered cells (the state volume for
	// readback/restore).
	FFCells int
	// TotalHops is the total routed wire length (diagnostic).
	TotalHops int
}

// NumCells returns the number of configured CLBs.
func (b *Bitstream) NumCells() int { return len(b.Cells) }

// Region returns the bitstream's footprint placed at the given origin.
func (b *Bitstream) Region(x, y int) fabric.Region {
	return fabric.Region{X: x, Y: y, W: b.W, H: b.H}
}

// String renders a one-line summary.
func (b *Bitstream) String() string {
	return fmt.Sprintf("%s: %dx%d region, %d cells (%d FF), %d in, %d out, delay %v",
		b.Name, b.W, b.H, b.NumCells(), b.FFCells, b.NumIn, b.NumOut, b.Delay)
}

func relSrc(sig techmap.Signal, r *route.Result) Src {
	switch sig.Kind {
	case techmap.SigConst:
		if sig.Const {
			return Src{Kind: SrcConst1}
		}
		return Src{Kind: SrcConst0}
	case techmap.SigInput:
		return Src{Kind: SrcPort, Port: sig.Input}
	case techmap.SigCell:
		l := r.P.Cells[sig.Cell]
		return Src{Kind: SrcRel, DX: l.X, DY: l.Y}
	}
	panic("bitstream: bad signal kind")
}

// Generate encodes a routed design into a relocatable bitstream.
func Generate(r *route.Result, timing fabric.Timing) *Bitstream {
	m := r.P.Mapped
	b := &Bitstream{
		Name:      m.Name,
		W:         r.P.W,
		H:         r.P.H,
		NumIn:     m.NumInputs,
		NumOut:    len(m.Outputs),
		TotalHops: r.TotalHops,
		Delay:     r.CriticalPath(timing.LUTDelay, timing.HopDelay),
	}
	for ci := range m.Cells {
		cell := &m.Cells[ci]
		cw := CellWrite{
			X:      r.P.Cells[ci].X,
			Y:      r.P.Cells[ci].Y,
			LUT:    cell.LUT,
			UseFF:  cell.UseFF,
			FFInit: cell.FFInit,
		}
		for k, in := range cell.Inputs {
			cw.Inputs[k] = relSrc(in, r)
		}
		b.Cells = append(b.Cells, cw)
		if cell.UseFF {
			b.FFCells++
		}
	}
	for _, o := range m.Outputs {
		b.OutDrivers = append(b.OutDrivers, relSrc(o, r))
	}
	return b
}

// PinBinding assigns device pins to the circuit's ports at load time.
type PinBinding struct {
	In  []int // device pin per input port; -1 leaves the port unbound
	Out []int // device pin per output port; -1 leaves the port unbound
}

// translate converts a relocatable source to a device source at origin
// (ox, oy) under the given pin binding.
func translate(s Src, ox, oy int, binding *PinBinding) (fabric.Source, error) {
	switch s.Kind {
	case SrcNone:
		return fabric.Source{}, nil
	case SrcConst0:
		return fabric.ConstSource(false), nil
	case SrcConst1:
		return fabric.ConstSource(true), nil
	case SrcRel:
		return fabric.CLBSource(ox+s.DX, oy+s.DY), nil
	case SrcPort:
		if s.Port >= len(binding.In) || binding.In[s.Port] < 0 {
			return fabric.Source{}, fmt.Errorf("bitstream: input port %d unbound", s.Port)
		}
		return fabric.PinSource(binding.In[s.Port]), nil
	}
	return fabric.Source{}, fmt.Errorf("bitstream: bad source kind %d", s.Kind)
}

// Apply downloads the bitstream onto dev with its region origin at
// (ox, oy), binding circuit ports to device pins. It returns the number of
// CLB cells and pins written, which the configuration port timing model
// converts to download time. Apply only writes configuration RAM; the
// caller is responsible for region reservation.
func (b *Bitstream) Apply(dev *fabric.Device, ox, oy int, binding *PinBinding) (cells, pins int, err error) {
	g := dev.Geometry()
	if !g.Bounds().ContainsRegion(b.Region(ox, oy)) {
		return 0, 0, fmt.Errorf("bitstream: %s at (%d,%d) exceeds device %v", b.Name, ox, oy, g)
	}
	if len(binding.In) != b.NumIn || len(binding.Out) != b.NumOut {
		return 0, 0, fmt.Errorf("bitstream: %s binding has %d/%d pins, want %d/%d",
			b.Name, len(binding.In), len(binding.Out), b.NumIn, b.NumOut)
	}
	return b.applyCells(dev, ox, oy, binding, b.Cells)
}

// ApplyPage downloads a single page (a subset of the cells) at the same
// origin and binding; used by the demand-paging loader.
func (b *Bitstream) ApplyPage(dev *fabric.Device, ox, oy int, binding *PinBinding, page Page) (cells, pins int, err error) {
	g := dev.Geometry()
	if !g.Bounds().ContainsRegion(b.Region(ox, oy)) {
		return 0, 0, fmt.Errorf("bitstream: %s page %d at (%d,%d) exceeds device %v", b.Name, page.Index, ox, oy, g)
	}
	// Pages never configure output pins; the full-circuit port map is
	// established by the loader once.
	c, _, err := b.applyCells(dev, ox, oy, binding, page.Cells)
	return c, 0, err
}

func (b *Bitstream) applyCells(dev *fabric.Device, ox, oy int, binding *PinBinding, cws []CellWrite) (cells, pins int, err error) {
	for _, cw := range cws {
		cfg := fabric.CLBConfig{Used: true, LUT: cw.LUT, UseFF: cw.UseFF, FFInit: cw.FFInit}
		for k, s := range cw.Inputs {
			src, err := translate(s, ox, oy, binding)
			if err != nil {
				return cells, pins, err
			}
			cfg.Inputs[k] = src
		}
		dev.WriteCLB(ox+cw.X, oy+cw.Y, cfg)
		cells++
	}
	for i, pin := range binding.In {
		if pin < 0 {
			continue
		}
		_ = i
		dev.WritePin(pin, fabric.PinConfig{Mode: fabric.PinInput})
		pins++
	}
	for o, pin := range binding.Out {
		if pin < 0 {
			continue
		}
		drv, err := translate(b.OutDrivers[o], ox, oy, binding)
		if err != nil {
			return cells, pins, err
		}
		dev.WritePin(pin, fabric.PinConfig{Mode: fabric.PinOutput, Driver: drv})
		pins++
	}
	return cells, pins, nil
}

// Page is a fixed-size portion of a bitstream: the unit of pagination.
type Page struct {
	Index int
	Cells []CellWrite
}

// Pages splits the bitstream into pages of at most pageCells CLBs each,
// in deterministic cell order. The last page may be smaller.
func (b *Bitstream) Pages(pageCells int) []Page {
	if pageCells <= 0 {
		panic("bitstream: non-positive page size")
	}
	var pages []Page
	for start := 0; start < len(b.Cells); start += pageCells {
		end := start + pageCells
		if end > len(b.Cells) {
			end = len(b.Cells)
		}
		pages = append(pages, Page{Index: len(pages), Cells: b.Cells[start:end]})
	}
	return pages
}

// ConfigCost returns the partial-reconfiguration time to download the
// whole bitstream (cells plus bound pins).
func (b *Bitstream) ConfigCost(t fabric.Timing) sim.Time {
	return t.PartialConfigTime(b.NumCells(), b.NumIn+b.NumOut)
}
