package bitstream

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/rng"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, nl := range []*netlist.Netlist{netlist.Adder(8), netlist.Counter(8), netlist.ALU(8)} {
		bs := gen(t, nl)
		var buf bytes.Buffer
		if err := bs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bs, got) {
			t.Fatalf("%s: round trip not identical", nl.Name)
		}
	}
}

func TestJSONRoundTripFunctional(t *testing.T) {
	// A deserialized bitstream must behave identically on the device.
	nl := netlist.ALU(8)
	bs := gen(t, nl)
	var buf bytes.Buffer
	if err := bs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	devA := fabric.NewDevice(fabric.DefaultGeometry())
	devB := fabric.NewDevice(fabric.DefaultGeometry())
	pb := fullBinding(bs, 0)
	if _, _, err := bs.Apply(devA, 0, 0, pb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.Apply(devB, 0, 0, pb); err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	for cyc := 0; cyc < 32; cyc++ {
		for i := 0; i < bs.NumIn; i++ {
			v := src.Bool()
			devA.SetPin(pb.In[i], v)
			devB.SetPin(pb.In[i], v)
		}
		a, err := devA.Eval()
		if err != nil {
			t.Fatal(err)
		}
		b, err := devB.Eval()
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < bs.NumOut; o++ {
			if a[pb.Out[o]] != b[pb.Out[o]] {
				t.Fatalf("deserialized bitstream diverged at cycle %d output %d", cyc, o)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"bitstream":null}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Bitstream { return gen(t, netlist.Adder(8)) }

	bs := mk()
	bs.Cells[0].X = bs.W + 5
	if err := bs.Validate(); err == nil {
		t.Fatal("out-of-region cell accepted")
	}

	bs = mk()
	bs.Cells[1].X, bs.Cells[1].Y = bs.Cells[0].X, bs.Cells[0].Y
	if err := bs.Validate(); err == nil {
		t.Fatal("overlapping cells accepted")
	}

	bs = mk()
	bs.Cells[0].Inputs[0] = Src{Kind: SrcPort, Port: bs.NumIn + 3}
	if err := bs.Validate(); err == nil {
		t.Fatal("out-of-range port source accepted")
	}

	bs = mk()
	bs.FFCells = 99
	if err := bs.Validate(); err == nil {
		t.Fatal("wrong FF count accepted")
	}

	bs = mk()
	bs.OutDrivers = bs.OutDrivers[:1]
	if err := bs.Validate(); err == nil {
		t.Fatal("truncated out drivers accepted")
	}

	bs = mk()
	bs.Name = ""
	if err := bs.Validate(); err == nil {
		t.Fatal("unnamed bitstream accepted")
	}

	bs = mk()
	bs.W = 0
	if err := bs.Validate(); err == nil {
		t.Fatal("zero footprint accepted")
	}
}

func TestValidateAcceptsGenerated(t *testing.T) {
	for name, genf := range netlist.Registry() {
		bs := gen(t, genf())
		if err := bs.Validate(); err != nil {
			t.Fatalf("%s: generated bitstream invalid: %v", name, err)
		}
	}
}
