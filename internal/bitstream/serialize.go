package bitstream

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the bitstream. The format is a stable, versioned
// JSON document — the repository's equivalent of a configuration file on
// disk, letting tools compile once and managers load later.
func (b *Bitstream) WriteJSON(w io.Writer) error {
	doc := jsonDoc{Version: formatVersion, Bitstream: b}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// ReadJSON deserializes and validates a bitstream written by WriteJSON.
func ReadJSON(r io.Reader) (*Bitstream, error) {
	var doc jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("bitstream: decode: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("bitstream: unsupported format version %d (want %d)", doc.Version, formatVersion)
	}
	if doc.Bitstream == nil {
		return nil, fmt.Errorf("bitstream: empty document")
	}
	if err := doc.Bitstream.Validate(); err != nil {
		return nil, err
	}
	return doc.Bitstream, nil
}

const formatVersion = 1

type jsonDoc struct {
	Version   int        `json:"version"`
	Bitstream *Bitstream `json:"bitstream"`
}

// Validate checks the structural invariants a loader depends on: a
// positive footprint, every cell inside the region, every source legal.
// It is called by ReadJSON and is exported for callers that construct or
// mutate bitstreams programmatically.
func (b *Bitstream) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("bitstream: missing name")
	}
	if b.W <= 0 || b.H <= 0 {
		return fmt.Errorf("bitstream %s: non-positive footprint %dx%d", b.Name, b.W, b.H)
	}
	if b.NumIn < 0 || b.NumOut < 0 {
		return fmt.Errorf("bitstream %s: negative port counts", b.Name)
	}
	if len(b.OutDrivers) != b.NumOut {
		return fmt.Errorf("bitstream %s: %d out drivers for %d outputs", b.Name, len(b.OutDrivers), b.NumOut)
	}
	ffs := 0
	seen := make(map[[2]int]bool, len(b.Cells))
	for i, cw := range b.Cells {
		if cw.X < 0 || cw.X >= b.W || cw.Y < 0 || cw.Y >= b.H {
			return fmt.Errorf("bitstream %s: cell %d at (%d,%d) outside %dx%d", b.Name, i, cw.X, cw.Y, b.W, b.H)
		}
		at := [2]int{cw.X, cw.Y}
		if seen[at] {
			return fmt.Errorf("bitstream %s: two cells at (%d,%d)", b.Name, cw.X, cw.Y)
		}
		seen[at] = true
		if cw.UseFF {
			ffs++
		}
		for k, src := range cw.Inputs {
			if err := b.checkSrc(src); err != nil {
				return fmt.Errorf("bitstream %s: cell %d input %d: %w", b.Name, i, k, err)
			}
		}
	}
	if ffs != b.FFCells {
		return fmt.Errorf("bitstream %s: FFCells %d but %d registered cells", b.Name, b.FFCells, ffs)
	}
	for o, src := range b.OutDrivers {
		if err := b.checkSrc(src); err != nil {
			return fmt.Errorf("bitstream %s: output %d: %w", b.Name, o, err)
		}
	}
	if b.Delay < 0 {
		return fmt.Errorf("bitstream %s: negative delay", b.Name)
	}
	return nil
}

func (b *Bitstream) checkSrc(s Src) error {
	switch s.Kind {
	case SrcNone, SrcConst0, SrcConst1:
		return nil
	case SrcRel:
		if s.DX < 0 || s.DX >= b.W || s.DY < 0 || s.DY >= b.H {
			return fmt.Errorf("relative source (%d,%d) outside %dx%d", s.DX, s.DY, b.W, b.H)
		}
		return nil
	case SrcPort:
		if s.Port < 0 || s.Port >= b.NumIn {
			return fmt.Errorf("port source %d outside %d inputs", s.Port, b.NumIn)
		}
		return nil
	}
	return fmt.Errorf("unknown source kind %d", s.Kind)
}
