package bitstream

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/techmap"
)

// routed compiles a library circuit through map+place+route (without the
// compile facade, which lives above this package).
func routed(t *testing.T, nl *netlist.Netlist) *route.Result {
	t.Helper()
	m, err := techmap.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	w, h := place.Shape(m.NumCells())
	p, err := place.Place(m, w, h, place.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, 12, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func gen(t *testing.T, nl *netlist.Netlist) *Bitstream {
	t.Helper()
	return Generate(routed(t, nl), fabric.DefaultTiming())
}

func fullBinding(b *Bitstream, base int) *PinBinding {
	pb := &PinBinding{}
	p := base
	for i := 0; i < b.NumIn; i++ {
		pb.In = append(pb.In, p)
		p++
	}
	for i := 0; i < b.NumOut; i++ {
		pb.Out = append(pb.Out, p)
		p++
	}
	return pb
}

func TestGenerateShape(t *testing.T) {
	nl := netlist.Adder(8)
	bs := gen(t, nl)
	if bs.Name != "adder8" {
		t.Fatalf("name %q", bs.Name)
	}
	if bs.NumIn != nl.NumInputs() || bs.NumOut != nl.NumOutputs() {
		t.Fatal("port counts wrong")
	}
	if bs.NumCells() == 0 || bs.FFCells != 0 {
		t.Fatalf("cells %d ff %d", bs.NumCells(), bs.FFCells)
	}
	if bs.Delay <= 0 {
		t.Fatal("no delay")
	}
	if len(bs.OutDrivers) != bs.NumOut {
		t.Fatal("out drivers wrong")
	}
	if !strings.Contains(bs.String(), "adder8") {
		t.Fatal("summary")
	}
}

func TestSequentialFFCells(t *testing.T) {
	bs := gen(t, netlist.Counter(8))
	if bs.FFCells != 8 {
		t.Fatalf("FF cells %d, want 8", bs.FFCells)
	}
}

func TestCellsStayInsideRegion(t *testing.T) {
	bs := gen(t, netlist.Multiplier(4))
	for _, cw := range bs.Cells {
		if cw.X < 0 || cw.X >= bs.W || cw.Y < 0 || cw.Y >= bs.H {
			t.Fatalf("cell (%d,%d) outside %dx%d", cw.X, cw.Y, bs.W, bs.H)
		}
		for _, in := range cw.Inputs {
			if in.Kind == SrcRel && (in.DX < 0 || in.DX >= bs.W || in.DY < 0 || in.DY >= bs.H) {
				t.Fatalf("relative source (%d,%d) outside region", in.DX, in.DY)
			}
			if in.Kind == SrcPort && (in.Port < 0 || in.Port >= bs.NumIn) {
				t.Fatalf("port source %d out of range", in.Port)
			}
		}
	}
}

func TestApplyCounts(t *testing.T) {
	bs := gen(t, netlist.Adder(8))
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	cells, pins, err := bs.Apply(dev, 1, 1, fullBinding(bs, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cells != bs.NumCells() {
		t.Fatalf("cells written %d, want %d", cells, bs.NumCells())
	}
	if pins != bs.NumIn+bs.NumOut {
		t.Fatalf("pins written %d, want %d", pins, bs.NumIn+bs.NumOut)
	}
	if dev.UsedCells() != bs.NumCells() {
		t.Fatal("device cell count mismatch")
	}
}

func TestApplyUnboundPortsSkipped(t *testing.T) {
	// Output pins may be left unbound (-1); input ports referenced by
	// cells must be bound.
	bs := gen(t, netlist.Adder(8))
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	pb := fullBinding(bs, 0)
	for i := range pb.Out {
		pb.Out[i] = -1
	}
	_, pins, err := bs.Apply(dev, 0, 0, pb)
	if err != nil {
		t.Fatal(err)
	}
	if pins != bs.NumIn {
		t.Fatalf("pins %d, want only the %d inputs", pins, bs.NumIn)
	}
}

func TestApplyUnboundInputRejected(t *testing.T) {
	bs := gen(t, netlist.Adder(8))
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	pb := fullBinding(bs, 0)
	pb.In[0] = -1
	if _, _, err := bs.Apply(dev, 0, 0, pb); err == nil {
		t.Fatal("unbound referenced input accepted")
	}
}

func TestApplyOutOfBounds(t *testing.T) {
	bs := gen(t, netlist.Adder(8))
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	g := dev.Geometry()
	if _, _, err := bs.Apply(dev, g.Cols-1, 0, fullBinding(bs, 0)); err == nil {
		t.Fatal("out-of-bounds apply accepted")
	}
}

func TestPagesPartitionCells(t *testing.T) {
	bs := gen(t, netlist.ALU(8))
	for _, size := range []int{1, 3, 7, 1000} {
		pages := bs.Pages(size)
		total := 0
		for i, p := range pages {
			if p.Index != i {
				t.Fatalf("page index %d != %d", p.Index, i)
			}
			if len(p.Cells) == 0 || len(p.Cells) > size {
				t.Fatalf("page %d has %d cells (size %d)", i, len(p.Cells), size)
			}
			total += len(p.Cells)
		}
		if total != bs.NumCells() {
			t.Fatalf("pages cover %d cells, want %d", total, bs.NumCells())
		}
	}
}

func TestPagesInvalidSizePanics(t *testing.T) {
	bs := gen(t, netlist.Adder(8))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	bs.Pages(0)
}

func TestApplyPageSubset(t *testing.T) {
	bs := gen(t, netlist.ALU(8))
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	pages := bs.Pages(5)
	cells, pins, err := bs.ApplyPage(dev, 0, 0, fullBinding(bs, 0), pages[0])
	if err != nil {
		t.Fatal(err)
	}
	if cells != len(pages[0].Cells) || pins != 0 {
		t.Fatalf("page apply wrote %d cells %d pins", cells, pins)
	}
	if dev.UsedCells() != len(pages[0].Cells) {
		t.Fatal("device holds wrong cell count after one page")
	}
}

func TestConfigCostScalesWithCells(t *testing.T) {
	small := gen(t, netlist.Parity(16))
	big := gen(t, netlist.Multiplier(4))
	tm := fabric.DefaultTiming()
	if small.ConfigCost(tm) >= big.ConfigCost(tm) {
		t.Fatalf("parity %v should cost less than mul4 %v", small.ConfigCost(tm), big.ConfigCost(tm))
	}
}

func TestRegionPlacement(t *testing.T) {
	bs := gen(t, netlist.Adder(8))
	r := bs.Region(3, 4)
	if r.X != 3 || r.Y != 4 || r.W != bs.W || r.H != bs.H {
		t.Fatalf("region %v", r)
	}
}

func TestConstSources(t *testing.T) {
	// A circuit with constant-driven logic must encode SrcConst, not ports.
	b := netlist.NewBuilder("consty")
	a := b.Input("a")
	b.Output("y", b.And(a, b.Const(true)))
	b.Output("z", b.Const(false))
	bs := gen(t, b.MustBuild())
	if bs.OutDrivers[1].Kind != SrcConst0 {
		t.Fatalf("const output driver kind %d", bs.OutDrivers[1].Kind)
	}
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	pb := fullBinding(bs, 0)
	if _, _, err := bs.Apply(dev, 0, 0, pb); err != nil {
		t.Fatal(err)
	}
	dev.SetPin(pb.In[0], true)
	out, err := dev.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !out[pb.Out[0]] || out[pb.Out[1]] {
		t.Fatalf("const logic wrong: %v", out)
	}
}
