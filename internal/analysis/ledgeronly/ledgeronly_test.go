package ledgeronly_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ledgeronly"
)

func TestOutsideCore(t *testing.T) {
	analysistest.Run(t, ledgeronly.Analyzer, "testdata/src/outside", "")
}

func TestInsideCore(t *testing.T) {
	analysistest.Run(t, ledgeronly.Analyzer, "testdata/src/corepkg", "repro/internal/core")
}
