// Package ledgeronly enforces the PR 3 architecture rule: core.Ledger is
// the only place that performs fabric configuration/readback writes and
// bumps core.Metrics. Managers — inside core and in baseline — are pure
// policy; the serve and bench layers consume snapshots. Concretely:
//
//   - no package outside internal/core may write a core.Metrics field or
//     call a Counter mutator on one;
//   - no package outside internal/core, internal/fabric and
//     internal/bitstream may call the fabric configuration/readback
//     mutators (Device.WriteCLB/ClearRegion/WritePin/WriteRegionState/
//     ReadRegionState, Bitstream.Apply/ApplyPage);
//   - inside internal/core both are confined to ledger.go and engine.go
//     (the transaction layer itself); manager files route through Ledger
//     ops.
//
// The examples/ demos deliberately drive a raw device below the manager
// layer and are exempt. MetricsSnapshot values are plain data and may be
// accumulated anywhere.
package ledgeronly

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

const corePath = "repro/internal/core"

// coreFiles are the files inside internal/core allowed to touch metrics
// and the device: the ledger transaction layer and the engine it sits in.
var coreFiles = map[string]bool{"ledger.go": true, "engine.go": true}

// deviceMutators are the fabric configuration/readback entry points.
var deviceMutators = map[string]bool{
	"WriteCLB": true, "ClearRegion": true, "WritePin": true,
	"WriteRegionState": true, "ReadRegionState": true,
}

// bitstreamMutators write a configuration image into a device.
var bitstreamMutators = map[string]bool{"Apply": true, "ApplyPage": true}

// counterMutators mutate a stats.Counter in place.
var counterMutators = map[string]bool{"Inc": true, "Add": true}

// Analyzer is the ledgeronly analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ledgeronly",
	Doc:  "fabric/metrics mutation only through core.Ledger (ledger.go/engine.go); managers stay pure policy",
	Run:  run,
}

func isMetricsBase(pass *analysis.Pass, e ast.Expr) bool {
	return astq.IsNamed(pass.Info.TypeOf(e), corePath, "Metrics")
}

// MetricsWrite is one site that mutates a core.Metrics field.
type MetricsWrite struct {
	Pos   token.Pos
	Field string
}

// MetricsWrites finds every mutation of a core.Metrics field in the
// pass's files: direct assignments/IncDec on a Metrics field, and
// Inc/Add calls on a Counter held in one.
func MetricsWrites(pass *analysis.Pass) []MetricsWrite {
	var writes []MetricsWrite
	record := func(pos token.Pos, field string) {
		writes = append(writes, MetricsWrite{Pos: pos, Field: field})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range x.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isMetricsBase(pass, sel.X) {
						record(sel.Pos(), sel.Sel.Name)
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && isMetricsBase(pass, sel.X) {
					record(sel.Pos(), sel.Sel.Name)
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if !ok || !counterMutators[sel.Sel.Name] {
					return true
				}
				if field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isMetricsBase(pass, field.X) {
					record(x.Pos(), field.Sel.Name)
				}
			}
			return true
		})
	}
	return writes
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, "repro/examples/") {
		return nil
	}
	inCore := path == corePath
	allowedInFile := func(pos token.Pos) bool {
		if !inCore {
			return false
		}
		return coreFiles[filepath.Base(pass.Fset.Position(pos).Filename)]
	}

	for _, w := range MetricsWrites(pass) {
		if allowedInFile(w.Pos) {
			continue
		}
		if inCore {
			pass.Reportf(w.Pos, "core.Metrics.%s mutated outside the ledger; managers are pure policy — route through a Ledger op", w.Field)
		} else {
			pass.Reportf(w.Pos, "core.Metrics.%s mutated outside internal/core; only the ledger accounts device metrics", w.Field)
		}
	}

	if path == "repro/internal/fabric" || path == "repro/internal/bitstream" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var what string
			switch {
			case fn.Pkg().Path() == "repro/internal/fabric" && deviceMutators[fn.Name()]:
				what = "fabric.Device." + fn.Name()
			case fn.Pkg().Path() == "repro/internal/bitstream" && bitstreamMutators[fn.Name()]:
				what = "bitstream." + fn.Name()
			default:
				return true
			}
			if allowedInFile(call.Pos()) {
				return true
			}
			if inCore {
				pass.Reportf(call.Pos(), "%s called outside the ledger; managers are pure policy — route through a Ledger op", what)
			} else {
				pass.Reportf(call.Pos(), "%s called outside internal/core; device configuration and readback go through core.Ledger", what)
			}
			return true
		})
	}
	return nil
}
