// Package outside is a ledgeronly fixture for code beyond internal/core:
// mutating core.Metrics or calling the fabric configuration/readback
// mutators is flagged; reading counters and accumulating snapshots is not.
package outside

import (
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/fabric"
)

func bump(m *core.Metrics) {
	m.Loads.Inc()      // want `core\.Metrics\.Loads mutated outside internal/core`
	m.Rollbacks.Add(2) // want `core\.Metrics\.Rollbacks mutated outside internal/core`
	m.FaultTime += 10  // want `core\.Metrics\.FaultTime mutated outside internal/core`
}

func poke(dev *fabric.Device, bs *bitstream.Bitstream) {
	dev.WriteCLB(0, 0, fabric.CLBConfig{})   // want `fabric\.Device\.WriteCLB called outside internal/core`
	dev.ClearRegion(fabric.Region{})         // want `fabric\.Device\.ClearRegion called outside internal/core`
	_ = dev.ReadRegionState(fabric.Region{}) // want `fabric\.Device\.ReadRegionState called outside internal/core`
	_, _, _ = bs.Apply(dev, 0, 0, nil)       // want `bitstream\.Apply called outside internal/core`
}

// Reading metrics and accumulating snapshots is plain data flow.
func report(m *core.Metrics) int64 {
	var sum core.MetricsSnapshot
	sum.Accumulate(m.Snapshot(0))
	sum.Loads += 4
	return m.Loads.Value()
}

func hook(m *core.Metrics) {
	m.Evictions.Inc() //vfpgavet:ignore ledgeronly -- test hook priming a counter
}
