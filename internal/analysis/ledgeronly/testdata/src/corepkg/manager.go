package corepkg

// manager is pure policy; bumping metrics here bypasses the ledger.
type manager struct{ m *Metrics }

func (mg *manager) sneak() {
	mg.m.Loads.Inc() // want `core\.Metrics\.Loads mutated outside the ledger`
}

func (mg *manager) decide() int { return 1 }
