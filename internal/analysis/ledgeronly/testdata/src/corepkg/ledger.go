// Package corepkg is a ledgeronly fixture type-checked under the import
// path repro/internal/core itself: metrics mutation is legal only in
// ledger.go and engine.go; manager files must route through Ledger ops.
package corepkg

type counter struct{ n int64 }

func (c *counter) Inc() { c.n++ }

// Metrics stands in for the real core.Metrics; under the fixture import
// path the analyzer sees it as exactly that type.
type Metrics struct {
	Loads  counter
	Blocks counter
}

// Ledger lives in ledger.go, the file allowed to account.
type Ledger struct{ m *Metrics }

func (l *Ledger) load() { l.m.Loads.Inc() }
