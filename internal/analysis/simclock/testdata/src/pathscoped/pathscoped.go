// Package pathscoped is a simclock fixture type-checked under the
// import path repro/internal/route, one of the listed deterministic
// packages, so the scope applies with no directive.
package pathscoped

import "time"

func deadline() time.Time {
	return time.Now() // want `wall clock in deterministic package: time.Now`
}
