// Package clean is a simclock fixture: the same wall-clock and global
// rand calls as the det fixture, but in a package that is neither listed
// in DeterministicPackages nor opted in by directive — nothing may be
// reported.
package clean

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

func globalRand() int {
	return rand.Intn(10)
}
