// Package det is a simclock fixture: a package opted into the
// determinism contract via the directive below.
//
//vfpgavet:deterministic
package det

import (
	"math/rand"
	rand2 "math/rand/v2"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall clock in deterministic package: time.Now`
	return time.Since(start) // want `wall clock in deterministic package: time.Since`
}

func sleeps() {
	time.Sleep(1)   // want `wall clock in deterministic package: time.Sleep`
	<-time.After(1) // want `wall clock in deterministic package: time.After`
	_ = time.Tick   // want `wall clock in deterministic package: time.Tick`
}

func globalRand() int {
	n := rand.Intn(10)   // want `global rand in deterministic package: rand.Intn`
	f := rand2.Float64() // want `global rand in deterministic package: rand.Float64`
	_ = rand.Perm(3)     // want `global rand in deterministic package: rand.Perm`
	return n + int(f*10)
}

// Seeded sources and pure constructors are fine.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// Values and types from the time package that do not read the clock are
// fine.
func pure(d time.Duration) time.Duration {
	return d + time.Millisecond
}

func suppressed() time.Time {
	//vfpgavet:ignore simclock -- boundary code, documented
	return time.Now()
}
