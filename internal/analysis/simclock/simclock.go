// Package simclock forbids wall-clock and global-rand use in the
// deterministic packages of the stack. Every byte-identical golden —
// merged timelines, /metrics expositions, fault campaigns — rests on the
// rule that simulated components advance only sim.Time and draw only
// from seeded internal/rng streams. A single time.Now or math/rand call
// smuggled into core or the router breaks reproducibility in ways tests
// catch late or never; this analyzer rejects the reference at vet time.
package simclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// DeterministicPackages lists the packages under the determinism
// contract: simulated time only, seeded rng streams only. The serve and
// cmd layers sit at the wall-clock boundary on purpose (admission
// buckets, load generators) and are deliberately absent.
var DeterministicPackages = []string{
	"repro/internal/core",
	"repro/internal/fabric",
	"repro/internal/fault",
	"repro/internal/compile",
	"repro/internal/route",
	"repro/internal/bench",
}

// Directive opts any other package into the deterministic scope.
const Directive = "//vfpgavet:deterministic"

// InScope reports whether the pass's package is under the determinism
// contract, either by membership in DeterministicPackages or by carrying
// the opt-in directive comment.
func InScope(pass *analysis.Pass) bool {
	for _, p := range DeterministicPackages {
		if pass.Pkg.Path() == p {
			return true
		}
	}
	return astq.HasDirective(pass.Files, Directive)
}

// forbiddenTime are the time package functions that read or wait on the
// wall clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRand are the math/rand package-level functions that do not
// touch the shared global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the simclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock (time.Now/Sleep/...) and global math/rand in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !InScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall clock in deterministic package: time.%s; use sim.Time, the kernel clock, or an injected clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand in deterministic package: %s.%s; draw from a seeded internal/rng stream", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
