package simclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simclock"
)

// The det fixture opts in via the //vfpgavet:deterministic directive and
// must report every wall-clock and global-rand reference; the clean
// fixture makes the same calls outside the deterministic scope and must
// stay silent.
func TestSimclock(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer, "testdata/src/det", "")
	analysistest.Run(t, simclock.Analyzer, "testdata/src/clean", "")
}

// A fixture type-checked under a listed deterministic import path is in
// scope without any directive.
func TestSimclockPathScope(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer, "testdata/src/pathscoped", "repro/internal/route")
}
