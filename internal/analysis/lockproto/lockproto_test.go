package lockproto_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockproto"
)

func TestGuardProtocol(t *testing.T) {
	analysistest.Run(t, lockproto.Analyzer, "testdata/src/guard", "")
}

func TestMutexFields(t *testing.T) {
	analysistest.Run(t, lockproto.Analyzer, "testdata/src/mufields", "")
}
