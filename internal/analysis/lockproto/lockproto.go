// Package lockproto checks the two locking conventions the stack relies
// on:
//
//  1. Single-goroutine guard. A type with an enter() method built on
//     Mutex.TryLock (core.Ledger) asserts single-goroutine ownership at
//     every mutating entry point. Every exported method that mutates
//     receiver state — directly, through a counter mutator, or
//     transitively through unexported same-type methods — must open with
//     exactly `defer recv.enter()()`. Calls to other exported methods
//     are not traversed: delegation (Load calling TryLoad) relies on the
//     callee's own guard, and adding a second would self-deadlock.
//
//  2. Mutex-after-mu layout. In a struct with a field `mu sync.Mutex`
//     (or RWMutex), every field declared after mu is guarded by it. Any
//     access to a guarded field must be preceded, textually within an
//     enclosing function, by `<base>.mu.Lock()` (or RLock/TryLock) on
//     the same base expression — unless the enclosing function's name
//     ends in "Locked" (caller holds the lock) or starts with new/New
//     (value under construction, not yet shared). Fields that need no
//     lock (write-once config, self-synchronized atomics and WaitGroups)
//     belong above mu.
package lockproto

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Analyzer is the lockproto analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockproto",
	Doc:  "guarded types assert the single-goroutine guard; fields below a mu are accessed with it held",
	Run:  run,
}

// counterMutators are methods that mutate state through a field chain.
var counterMutators = map[string]bool{
	"Inc": true, "Add": true, "Dec": true, "Set": true, "Emit": true,
}

// lockCalls acquire a mutex.
var lockCalls = map[string]bool{"Lock": true, "RLock": true, "TryLock": true}

func run(pass *analysis.Pass) error {
	methods := collectMethods(pass)
	checkGuardProtocol(pass, methods)
	checkMutexFields(pass)
	return nil
}

// --- rule 1: single-goroutine guard ---

// collectMethods indexes every method declaration by receiver type name.
func collectMethods(pass *analysis.Pass) map[string]map[string]*ast.FuncDecl {
	methods := map[string]map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tn := recvTypeName(fd)
			if tn == "" {
				continue
			}
			if methods[tn] == nil {
				methods[tn] = map[string]*ast.FuncDecl{}
			}
			methods[tn][fd.Name.Name] = fd
		}
	}
	return methods
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func recvVarName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func checkGuardProtocol(pass *analysis.Pass, methods map[string]map[string]*ast.FuncDecl) {
	for typeName, byName := range methods {
		enter, ok := byName["enter"]
		if !ok || enter.Body == nil || !astq.Mentions(enter.Body, "TryLock") {
			continue
		}
		for name, fd := range byName {
			if !ast.IsExported(name) || fd.Body == nil {
				continue
			}
			recv := recvVarName(fd)
			if recv == "" || recv == "_" {
				continue
			}
			if !mutates(pass, fd, byName, map[string]bool{name: true}) {
				continue
			}
			if startsWithGuard(fd.Body, recv) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"exported (*%s).%s mutates guarded state without the single-goroutine assertion; its first statement must be `defer %s.enter()()`",
				typeName, name, recv)
		}
	}
}

// startsWithGuard reports whether body begins with `defer recv.enter()()`.
func startsWithGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	def, ok := body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	inner, ok := ast.Unparen(def.Call.Fun).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "enter" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == recv
}

// mutates reports whether fd writes receiver state: a receiver-rooted
// assignment, IncDec or delete, a counter-mutator call on a
// receiver-rooted chain, or transitively an unexported same-type method
// doing any of those.
func mutates(pass *analysis.Pass, fd *ast.FuncDecl, byName map[string]*ast.FuncDecl, visited map[string]bool) bool {
	recv := recvVarName(fd)
	if recv == "" {
		return false
	}
	rootedInRecv := func(e ast.Expr) bool {
		id := astq.RootIdent(e)
		return id != nil && id.Name == recv
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if rootedInRecv(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if rootedInRecv(x.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin && rootedInRecv(x.Args[0]) {
					found = true
				}
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !rootedInRecv(sel.X) {
				return true
			}
			if counterMutators[sel.Sel.Name] {
				found = true
				return true
			}
			// Transit into unexported same-type methods only.
			callee := astq.Callee(pass.Info, x)
			if callee == nil || ast.IsExported(callee.Name()) || visited[callee.Name()] {
				return true
			}
			target, ok := byName[callee.Name()]
			if !ok || target.Body == nil {
				return true
			}
			visited[callee.Name()] = true
			if mutates(pass, target, byName, visited) {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- rule 2: fields below mu ---

type guardedStruct struct {
	name   string
	fields map[string]bool
}

func collectGuardedStructs(pass *analysis.Pass) map[string]guardedStruct {
	out := map[string]guardedStruct{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			guarded := map[string]bool{}
			seenMu := false
			for _, field := range st.Fields.List {
				isMu := false
				for _, name := range field.Names {
					if name.Name == "mu" {
						isMu = true
					}
				}
				if isMu {
					t := pass.Info.TypeOf(field.Type)
					if astq.IsNamed(t, "sync", "Mutex") || astq.IsNamed(t, "sync", "RWMutex") {
						seenMu = true
						continue
					}
				}
				if seenMu {
					for _, name := range field.Names {
						guarded[name.Name] = true
					}
				}
			}
			if seenMu && len(guarded) > 0 {
				out[ts.Name.Name] = guardedStruct{name: ts.Name.Name, fields: guarded}
			}
			return true
		})
	}
	return out
}

func checkMutexFields(pass *analysis.Pass) {
	structs := collectGuardedStructs(pass)
	if len(structs) == 0 {
		return
	}
	for _, f := range pass.Files {
		type fnScope struct {
			name string
			body *ast.BlockStmt
		}
		var scopes []fnScope
		astq.EnclosingFuncs(f, func(name string, _ *ast.FieldList, body *ast.BlockStmt) {
			scopes = append(scopes, fnScope{name: name, body: body})
		})
		enclosing := func(pos token.Pos) []fnScope {
			var out []fnScope
			for _, s := range scopes {
				if astq.PosInside(pos, s.body) {
					out = append(out, s)
				}
			}
			return out
		}

		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			named := astq.Named(pass.Info.TypeOf(sel.X))
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pass.Pkg.Path() {
				return true
			}
			gs, ok := structs[named.Obj().Name()]
			if !ok || !gs.fields[sel.Sel.Name] {
				return true
			}
			base := astq.BaseString(sel.X)
			encl := enclosing(sel.Pos())
			if len(encl) == 0 {
				return true // package-level expression
			}
			for _, s := range encl {
				if exemptName(s.name) || lockHeldBefore(pass, s.body, base, sel.Pos()) {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"%s.%s accessed without %s.mu held (no preceding %s.mu.Lock in the enclosing function); lock first, or give the helper a Locked suffix",
				base, sel.Sel.Name, base, base)
			return true
		})
	}
}

// exemptName reports whether the enclosing function's name waives the
// lock requirement: helpers called with the lock held by convention end
// in "Locked"; constructors build values nothing else can see yet.
func exemptName(name string) bool {
	return strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked") ||
		strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New")
}

// lockHeldBefore reports whether body contains `<base>.mu.Lock()` (or
// RLock/TryLock) textually before pos.
func lockHeldBefore(pass *analysis.Pass, body *ast.BlockStmt, base string, pos token.Pos) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || held {
			return !held
		}
		if call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockCalls[sel.Sel.Name] {
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != "mu" {
			return true
		}
		if astq.BaseString(mu.X) == base {
			held = true
		}
		return !held
	})
	return held
}
