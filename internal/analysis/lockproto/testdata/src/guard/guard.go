// Package guard is a lockproto fixture for the single-goroutine guard:
// a type with an enter()/TryLock assertion must open every exported
// mutating method with `defer recv.enter()()`.
package guard

import "sync"

type counter struct{ n int64 }

func (c *counter) Inc() { c.n++ }

type Ledger struct {
	k         int
	total     counter
	residents map[int]int
	guard     sync.Mutex
}

func (l *Ledger) enter() func() {
	if !l.guard.TryLock() {
		panic("concurrent use")
	}
	return l.guard.Unlock
}

// Guarded correctly.
func (l *Ledger) Load(x int) {
	defer l.enter()()
	l.residents[x] = x
	l.total.Inc()
}

func (l *Ledger) Evict(x int) { // want `exported \(\*Ledger\)\.Evict mutates guarded state without the single-goroutine assertion`
	delete(l.residents, x)
}

func (l *Ledger) Bind(k int) { // want `exported \(\*Ledger\)\.Bind mutates guarded state`
	if k != 0 {
		l.k = k
	}
}

// Transitive: Note mutates through an unexported helper.
func (l *Ledger) Note() { // want `exported \(\*Ledger\)\.Note mutates guarded state`
	l.bump()
}

func (l *Ledger) bump() { l.total.Inc() }

// Reads need no guard.
func (l *Ledger) Count() int { return len(l.residents) }

// Delegation to an exported method relies on the callee's own guard;
// adding a second enter() here would self-deadlock.
func (l *Ledger) MustLoad(x int) { l.Load(x) }
