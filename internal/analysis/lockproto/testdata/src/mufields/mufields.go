// Package mufields is a lockproto fixture for the mu-layout rule:
// fields declared after a `mu sync.Mutex` are accessed only with the
// lock held, from a *Locked helper, or inside a constructor.
package mufields

import "sync"

type pool struct {
	boards []int // above mu: not guarded

	mu   sync.Mutex
	jobs map[string]int
	seq  int
}

func (p *pool) submit(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	p.jobs[id] = p.seq
}

func (p *pool) leak(id string) int {
	return p.jobs[id] // want `p\.jobs accessed without p\.mu held`
}

func peek(p *pool) int {
	return p.seq // want `p\.seq accessed without p\.mu held`
}

// The Locked suffix marks helpers whose callers hold the lock.
func (p *pool) sizeLocked() int { return len(p.jobs) }

// Constructors mutate a value nothing else can see yet.
func newPool() *pool {
	p := &pool{jobs: map[string]int{}}
	p.seq = 1
	return p
}

// A closure under the outer function's lock is covered.
func (p *pool) bump(f func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	func() { p.seq++ }()
}

// Unguarded fields above mu need no lock.
func (p *pool) boardCount() int { return len(p.boards) }

func (p *pool) audit() int {
	return p.seq //vfpgavet:ignore lockproto -- racy read is tolerated here
}
