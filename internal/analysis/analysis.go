// Package analysis is the custom static-analysis layer of the stack: a
// deliberately small reimplementation of the golang.org/x/tools
// go/analysis model on the standard library alone (the module carries no
// dependencies). PRs 3-5 left the correctness of the whole system
// resting on unwritten contracts — managers are pure policy that mutate
// fabric and metrics only through core.Ledger, deterministic paths never
// touch the wall clock or global rand, fault handling goes through typed
// escalation errors. The analyzers under this package turn those
// contracts into compile-time facts, the same way internal/lint turned
// the paper's netlist/bitstream invariants into a verifier.
//
// An Analyzer declares either a per-package Run or a whole-module
// RunModule (for cross-package invariants such as single-writer metric
// counters). The driver (cmd/vfpgavet) loads type-checked packages via
// internal/analysis/load and funnels diagnostics through the shared
// filtering in Run: test-file exclusion per analyzer, and inline
// suppression annotations of the form
//
//	//vfpgavet:ignore ledgeronly,simclock -- reason
//
// which silence the named analyzers (all of them when no names are
// given) on the annotation's own line and the line that follows.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Analyzer is one named invariant checker. Exactly one of Run (invoked
// once per package) and RunModule (invoked once with every loaded
// package, for cross-package invariants) must be set.
type Analyzer struct {
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// IncludeTests keeps diagnostics located in _test.go files; most
	// analyzers drop them (tests may deliberately poke at internals).
	IncludeTests bool

	Run       func(*Pass) error
	RunModule func([]*Pass) error
}

// Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message [analyzer]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Validate checks the analyzer set is well-formed: unique names, exactly
// one of Run/RunModule each.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunModule == nil) {
			return fmt.Errorf("analysis: analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppression annotations and per-
// analyzer test-file exclusion are applied here so the driver, the
// fixture harness and the CLI tests all share one filtering semantics.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	modulePasses := map[string][]*Pass{}
	for _, pkg := range pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			a := a
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if !a.IncludeTests && strings.HasSuffix(d.Pos.Filename, "_test.go") {
					return
				}
				if sup.covers(d.Pos, a.Name) {
					return
				}
				diags = append(diags, d)
			}
			if a.Run != nil {
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
				}
			} else {
				modulePasses[a.Name] = append(modulePasses[a.Name], pass)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if err := a.RunModule(modulePasses[a.Name]); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// --- suppression annotations ---

var ignoreRe = regexp.MustCompile(`^//\s*vfpgavet:ignore\b\s*([a-z0-9_,\s]*)`)

// suppression records, per file and line, which analyzers are silenced.
// The empty set value means "all analyzers".
type suppression map[string]map[int][]string

func suppressions(fset *token.FileSet, files []*ast.File) suppression {
	sup := suppression{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var names []string
				for _, n := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					names = append(names, n)
				}
				pos := fset.Position(c.Pos())
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = map[int][]string{}
				}
				// The annotation covers its own line and the next one, so
				// it works both trailing a statement and on the line above.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if names == nil {
						sup[pos.Filename][line] = []string{}
					} else {
						sup[pos.Filename][line] = append(sup[pos.Filename][line], names...)
					}
				}
			}
		}
	}
	return sup
}

func (s suppression) covers(pos token.Position, analyzer string) bool {
	names, ok := s[pos.Filename][pos.Line]
	if !ok {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == analyzer {
			return true
		}
	}
	return false
}
