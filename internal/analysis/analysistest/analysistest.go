// Package analysistest runs one analyzer over a fixture directory and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on the
// in-repo framework.
//
// Expectations are comments of the form
//
//	m.Loads.Inc() // want `outside internal/core`
//	bad()         // want `first finding` `second finding`
//
// Each backquoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line; lines without
// a want comment must produce no diagnostics, so every fixture is both a
// positive and a negative test.
//
// Fixtures live under testdata/src/<name>/ and are ordinary compilable
// Go packages: they may import anything in this module plus the std
// packages baked into the shared index (time, math/rand, fmt, ...).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// stdExtras are std packages fixtures may import even though the module
// itself does not depend on them.
var stdExtras = []string{
	"errors", "fmt", "math/rand", "math/rand/v2", "os", "sort", "strings", "time",
}

var (
	indexOnce sync.Once
	indexVal  *load.Index
	indexErr  error
)

// index returns the shared export-data index over the whole module (plus
// stdExtras), built once per test binary.
func index(t *testing.T) *load.Index {
	t.Helper()
	indexOnce.Do(func() {
		indexVal, _, indexErr = load.Load(load.Options{Dir: moduleRoot()},
			append([]string{"./..."}, stdExtras...)...)
	})
	if indexErr != nil {
		t.Fatalf("analysistest: building index: %v", indexErr)
	}
	return indexVal
}

// moduleRoot locates the repository root relative to this source file,
// so fixture tests work from any package directory.
func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

// Run analyzes the fixture package in dir (relative to the calling
// test's package directory, conventionally "testdata/src/<name>") under
// the import path asPath and compares diagnostics against the fixture's
// want comments. Pass asPath "" for a neutral fixture path.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	ix := index(t)
	if asPath == "" {
		asPath = "repro/fixture/" + filepath.Base(dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := ix.CheckDir(abs, asPath)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	check(t, pkg.Fset, pkg.Files, diags)
}

// want is one expectation: a position and a message pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	var errs []string
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re))
		}
	}
	for _, e := range errs {
		t.Error(e)
	}
}
