package typederr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/typederr"
)

func TestTypederr(t *testing.T) {
	analysistest.Run(t, typederr.Analyzer, "testdata/src/errs", "")
}
