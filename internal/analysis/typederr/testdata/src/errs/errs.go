// Package errs is a typederr fixture: string matching on error text and
// unwrapped fmt.Errorf chains are flagged; typed inspection and proper
// %w wrapping are not.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("sentinel")

type opError struct{ Op string }

func (e *opError) Error() string { return "op " + e.Op + " failed" }

func matches(err error) bool {
	if strings.Contains(err.Error(), "failed") { // want `matching on an error string with strings.Contains`
		return true
	}
	if strings.HasPrefix(err.Error(), "op ") { // want `matching on an error string with strings.HasPrefix`
		return true
	}
	return false
}

func compares(err error) bool {
	if err.Error() == "sentinel" { // want `comparing an error string against "sentinel"`
		return true
	}
	return err.Error()[:3] != "op " // want `comparing an error string against "op "`
}

func wrapsBadly(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `fmt.Errorf formats an error without %w`
}

func wrapsConcrete(e *opError) error {
	return fmt.Errorf("escalated: %v", e) // want `fmt.Errorf formats an error without %w`
}

// Typed inspection, %w wrapping, and non-error formatting are all fine.
func good(err error) error {
	if errors.Is(err, errSentinel) {
		return nil
	}
	var oe *opError
	if errors.As(err, &oe) {
		return fmt.Errorf("op %s: %w", oe.Op, err)
	}
	if r := recover(); r != nil {
		return fmt.Errorf("panicked: %v", r)
	}
	return fmt.Errorf("count %d of %s", 3, "x")
}

// Comparing two error strings to each other (no constant side) is not
// the pattern this analyzer chases.
func equalMessages(a, b error) bool { return a.Error() == b.Error() }

func suppressed(err error) bool {
	return strings.Contains(err.Error(), "x") //vfpgavet:ignore typederr -- asserting rendered text
}
