// Package typederr forbids stringly-typed error handling. PR 5
// introduced typed fault escalation (*fault.EscalationError,
// fault.AsEscalation) precisely so the serve layer can tell a casualty
// from a bug without parsing messages; matching on err.Error() text
// resurrects the fragility. The analyzer flags error-string matching
// (strings.Contains/HasPrefix/... and ==/!= against constants) and
// fmt.Errorf calls that format an error argument without wrapping it
// via %w, which silently severs errors.Is/errors.As chains.
package typederr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Analyzer is the typederr analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "typederr",
	Doc:          "forbid matching on error strings and fmt.Errorf wrapping without %w",
	IncludeTests: true,
	Run:          run,
}

// stringMatchers are the strings-package functions whose use on an error
// string indicates matching by text.
var stringMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"Index": true, "EqualFold": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkStringMatch(pass, x)
				checkErrorf(pass, x)
			case *ast.BinaryExpr:
				checkComparison(pass, x)
			}
			return true
		})
	}
	return nil
}

// isErrorString reports whether e contains a call to the Error() method
// of a value implementing error (walking through slices, indexes, ...).
func isErrorString(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && implementsError(t) {
			found = true
		}
		return !found
	})
	return found
}

func implementsError(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astq.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchers[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorString(pass.Info, arg) {
			pass.Reportf(call.Pos(),
				"matching on an error string with strings.%s; use errors.Is/errors.As (or fault.AsEscalation) against a typed error", fn.Name())
			return
		}
	}
}

func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		errSide, constSide := pair[0], pair[1]
		tv, ok := pass.Info.Types[constSide]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if isErrorString(pass.Info, errSide) {
			pass.Reportf(b.Pos(),
				"comparing an error string against %s; use errors.Is/errors.As (or fault.AsEscalation) against a typed error", types.ExprString(constSide))
			return
		}
	}
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astq.Callee(pass.Info, call)
	if !astq.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		// Only concrete error types and the error interface itself count;
		// an any-typed argument (e.g. a recover() result) may not be an
		// error at all.
		if implementsError(t) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w; wrap it so errors.Is/errors.As keep working")
			return
		}
	}
}
