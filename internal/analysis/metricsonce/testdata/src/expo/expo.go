// Package expo is a metricsonce fixture for the exposition half: family
// names, help strings, types, duplicate registration and orphan series.
package expo

type metricsWriter struct{}

func (m *metricsWriter) family(name, help, typ string) {}

func (m *metricsWriter) series(name string, value string, kv ...string) {}

func (m *metricsWriter) int(name string, v int64, kv ...string) {
	m.series(name, "0", kv...) // non-constant name: skipped, not flagged
}

func (m *metricsWriter) float(name string, v float64, kv ...string) {
	m.series(name, "0.0", kv...) // non-constant name: skipped, not flagged
}

func write(m *metricsWriter) {
	m.family("vfpgad_jobs_total", "Finished jobs by outcome.", "counter")
	m.int("vfpgad_jobs_total", 1, "outcome", "completed")
	m.family("vfpga_util_clbs", "Configured CLBs.", "gauge")
	m.series("vfpga_util_clbs", "0.5")

	m.family("Bad-Name", "Case and dashes.", "counter")     // want `metric family "Bad-Name" does not match`
	m.family("vfpgad_helpless", "", "gauge")                // want `empty help string`
	m.family("vfpgad_typo_total", "Typo'd type.", "counts") // want `invalid type "counts"`
	m.family("vfpgad_jobs_total", "Again.", "counter")      // want `metric family "vfpgad_jobs_total" declared more than once`

	m.float("vfpga_util_clbs", 0.5)

	m.int("vfpgad_orphan_total", 3)      // want `metric series "vfpgad_orphan_total" has no registered family`
	m.float("vfpgad_orphan_ratio", 0.25) // want `metric series "vfpgad_orphan_ratio" has no registered family`
}
