// Package fieldsplit is a metricsonce fixture type-checked as
// repro/internal/core: the Loads counter is accounted in ledger.go (two
// sites) and also bumped from manager.go, which splits its accounting
// across files and gets flagged there.
package fieldsplit

type counter struct{ n int64 }

func (c *counter) Inc() { c.n++ }

// Metrics stands in for the real core.Metrics under the fixture path.
type Metrics struct {
	Loads  counter
	Blocks counter
}

type Ledger struct{ m *Metrics }

func (l *Ledger) load() { l.m.Loads.Inc() }

func (l *Ledger) loadPage() {
	l.m.Loads.Inc()
	l.m.Blocks.Inc()
}
