package fieldsplit

type manager struct{ m *Metrics }

func (g *manager) sneak() {
	g.m.Loads.Inc() // want `core\.Metrics\.Loads written here and in ledger\.go`
}
