package metricsonce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricsonce"
)

func TestExposition(t *testing.T) {
	analysistest.Run(t, metricsonce.Analyzer, "testdata/src/expo", "")
}

func TestFieldSplit(t *testing.T) {
	analysistest.Run(t, metricsonce.Analyzer, "testdata/src/fieldsplit", "repro/internal/core")
}
