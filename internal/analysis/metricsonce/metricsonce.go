// Package metricsonce enforces single-site accounting, module-wide:
//
//   - every core.Metrics field is written from exactly one file (today
//     ledger.go for the op counters, engine.go for Util) — a counter with
//     two accounting files double-counts or drifts, which is exactly the
//     bug class the conformance audit exists to catch;
//   - the /metrics exposition is well-formed at compile time: every
//     family name matches ^vfpgad?_[a-z0-9_]+$, carries a non-empty help
//     string and a valid Prometheus type, is declared at most once, and
//     every series emitted under a literal name has a declared family.
//
// Both halves are cross-package properties, so the analyzer runs once
// over the whole module (RunModule) rather than per package. Sites in
// _test.go files do not count: tests prime counters deliberately.
// Exposition names that are not string constants are skipped; the only
// such sites are the int/float->series forwarding helpers inside
// metricsWriter.
package metricsonce

import (
	"go/ast"
	"go/constant"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
	"repro/internal/analysis/ledgeronly"
)

// Analyzer is the metricsonce analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "metricsonce",
	Doc:       "each core.Metrics field written from one file; /metrics families registered once, named and typed correctly",
	RunModule: runModule,
}

var familyNameRe = regexp.MustCompile(`^vfpgad?_[a-z0-9_]+$`)

// familyTypes are the Prometheus exposition metric types.
var familyTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

type site struct {
	pass *analysis.Pass
	pos  token.Pos
	file string // absolute filename
}

func runModule(passes []*analysis.Pass) error {
	checkFieldWriters(passes)
	checkExposition(passes)
	return nil
}

// checkFieldWriters groups every core.Metrics write site by field and
// reports the sites outside the field's primary accounting file (the one
// holding the most sites; ties break to the lexicographically first).
func checkFieldWriters(passes []*analysis.Pass) {
	byField := map[string][]site{}
	var order []string
	for _, pass := range passes {
		for _, w := range ledgeronly.MetricsWrites(pass) {
			file := pass.Fset.Position(w.Pos).Filename
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			if _, seen := byField[w.Field]; !seen {
				order = append(order, w.Field)
			}
			byField[w.Field] = append(byField[w.Field], site{pass: pass, pos: w.Pos, file: file})
		}
	}
	for _, field := range order {
		sites := byField[field]
		counts := map[string]int{}
		for _, s := range sites {
			counts[s.file]++
		}
		if len(counts) < 2 {
			continue
		}
		primary := ""
		for file, n := range counts {
			if primary == "" || n > counts[primary] || (n == counts[primary] && file < primary) {
				primary = file
			}
		}
		for _, s := range sites {
			if s.file == primary {
				continue
			}
			s.pass.Reportf(s.pos,
				"core.Metrics.%s written here and in %s; each counter has a single accounting file",
				field, filepath.Base(primary))
		}
	}
}

type familyDecl struct {
	site
	name string
}

// checkExposition validates metricsWriter.family/series/int call sites.
func checkExposition(passes []*analysis.Pass) {
	var families []familyDecl
	declared := map[string]site{}
	type use struct {
		site
		name string
	}
	var uses []use

	for _, pass := range passes {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				named := astq.Named(pass.Info.TypeOf(sel.X))
				if named == nil || named.Obj().Name() != "metricsWriter" {
					return true
				}
				name, isConst := constString(pass, call.Args[0])
				if !isConst {
					return true
				}
				s := site{pass: pass, pos: call.Pos(), file: pass.Fset.Position(call.Pos()).Filename}
				switch sel.Sel.Name {
				case "family":
					families = append(families, familyDecl{site: s, name: name})
					if len(call.Args) >= 3 {
						checkFamilyArgs(pass, call, name)
					}
				case "series", "int", "float":
					uses = append(uses, use{site: s, name: name})
				}
				return true
			})
		}
	}

	for _, fam := range families {
		if first, dup := declared[fam.name]; dup {
			fam.pass.Reportf(fam.pos, "metric family %q declared more than once (first at %s)",
				fam.name, fam.pass.Fset.Position(first.pos))
			continue
		}
		declared[fam.name] = fam.site
	}
	for _, u := range uses {
		if _, ok := declared[u.name]; !ok {
			u.pass.Reportf(u.pos, "metric series %q has no registered family; declare it with family(name, help, type) first", u.name)
		}
	}
}

func checkFamilyArgs(pass *analysis.Pass, call *ast.CallExpr, name string) {
	if !familyNameRe.MatchString(name) {
		pass.Reportf(call.Pos(), "metric family %q does not match ^vfpgad?_[a-z0-9_]+$", name)
	}
	if help, ok := constString(pass, call.Args[1]); ok && help == "" {
		pass.Reportf(call.Pos(), "metric family %q has an empty help string", name)
	}
	if typ, ok := constString(pass, call.Args[2]); ok && !familyTypes[typ] {
		pass.Reportf(call.Pos(), "metric family %q has invalid type %q (want counter, gauge, histogram, summary or untyped)", name, typ)
	}
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
