// Package astq holds the small AST and type-query helpers shared by the
// vfpgavet analyzers. Everything here compares types by package path and
// name, never by object identity: the loader type-checks each analyzed
// package from source while importing its dependencies from export
// data, so the "same" named type can be represented by distinct
// *types.Named values across passes.
package astq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Callee resolves the function a call expression invokes, or nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// Named returns the named type under t, unwrapping one level of pointer,
// or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// IsNamed reports whether t (or *t) is the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() == name &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// RootIdent returns the identifier at the root of a selector/index/call
// chain: RootIdent(`l.e.M.Loads`) = l, RootIdent(`p.jobs[id]`) = p.
// It returns nil when the chain does not bottom out in an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// BaseString renders the receiver chain of a selector without its final
// field: BaseString(`s.pool.jobs`) = "s.pool". Non-ident chains
// (function calls, index expressions) render with a placeholder so they
// never collide with a plain chain.
func BaseString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return BaseString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return BaseString(x.X)
	case *ast.IndexExpr:
		return BaseString(x.X) + "[]"
	default:
		return "?"
	}
}

// HasDirective reports whether any comment in files is exactly the given
// directive (e.g. "//vfpgavet:deterministic").
func HasDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == directive {
					return true
				}
			}
		}
	}
	return false
}

// EnclosingFuncs pairs each function declaration or literal in f with a
// visitor: walk calls fn(decl, body) for every *ast.FuncDecl with a body
// and every *ast.FuncLit. The name is "" for literals.
func EnclosingFuncs(f *ast.File, fn func(name string, recv *ast.FieldList, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				fn(x.Name.Name, x.Recv, x.Body)
			}
		case *ast.FuncLit:
			fn("", nil, x.Body)
		}
		return true
	})
}

// Mentions reports whether the identifier name occurs anywhere under n.
func Mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// PosInside reports whether pos lies within [node.Pos(), node.End()].
func PosInside(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos <= n.End()
}
