// Package load turns Go packages into type-checked syntax for the
// vfpgavet analyzers using nothing beyond the standard library and the
// go command. It shells out once to `go list -export -deps`, which
// compiles every requested package (entirely offline, against the build
// cache) and reports the export-data file of each dependency; target
// packages are then parsed from source and type-checked with the
// standard gc importer reading that export data. This is the same
// division of labour as golang.org/x/tools/go/packages, scoped down to
// what a single-module analysis driver needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path, without any test-variant
	// suffix ("repro/internal/fault", never "repro/internal/fault [...]").
	ImportPath string
	Dir        string
	// Test marks a test variant: the package was compiled with its
	// in-package _test.go files included.
	Test bool

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Options configures a Load call.
type Options struct {
	// Dir is the directory go list runs in (the module root). Empty
	// means the current directory.
	Dir string
	// Tests includes in-package and external test variants of the
	// matched packages.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// Index resolves import paths to export data for one `go list` run. It
// also exposes CheckDir so fixture harnesses can type-check source
// directories that are not part of the module's package graph (testdata
// fixtures) against the module's real packages.
type Index struct {
	Fset    *token.FileSet
	exports map[string]string
	base    types.Importer
}

// Load lists patterns (plus any extra std packages fixtures may need),
// compiles them for export data, and type-checks every matched
// non-standard package from source. It returns the shared Index and the
// checked packages in go list order.
func Load(opts Options, patterns ...string) (*Index, []*Package, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,ForTest,ImportMap"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}

	var entries []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		entries = append(entries, &p)
	}

	ix := &Index{Fset: token.NewFileSet(), exports: map[string]string{}}
	for _, e := range entries {
		if e.Export != "" {
			ix.exports[e.ImportPath] = e.Export
		}
	}
	ix.base = importer.ForCompiler(ix.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ix.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	// When a test variant of a package is listed, it strictly extends the
	// plain one (same files plus _test.go), so analyzing both would
	// duplicate every diagnostic in the shared files.
	hasVariant := map[string]bool{}
	for _, e := range entries {
		if e.ForTest != "" && basePath(e.ImportPath) == e.ForTest {
			hasVariant[e.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, e := range entries {
		switch {
		case e.DepOnly, e.Standard, len(e.GoFiles) == 0:
			continue
		case strings.HasSuffix(e.ImportPath, ".test") && e.Name == "main":
			continue // generated test-main package
		case e.ForTest == "" && hasVariant[e.ImportPath]:
			continue // superseded by its test variant
		}
		pkg, err := ix.check(e)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return ix, pkgs, nil
}

// basePath strips a test-variant suffix: "p [p.test]" -> "p".
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func (ix *Index) check(e *listPackage) (*Package, error) {
	files, err := ix.parse(e.Dir, e.GoFiles)
	if err != nil {
		return nil, err
	}
	path := basePath(e.ImportPath)
	pkg, info, err := ix.typeCheck(path, files, e.ImportMap)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		Dir:        e.Dir,
		Test:       e.ForTest != "" || strings.HasSuffix(path, "_test"),
		Fset:       ix.Fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// CheckDir parses every non-test .go file in dir as a single package and
// type-checks it under the given import path (which controls how
// path-scoped analyzers see the package). The fixture harness uses this
// for testdata packages, which may import any package the Index was
// loaded with.
func (ix *Index) CheckDir(dir, asPath string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") && !strings.HasSuffix(de.Name(), "_test.go") {
			names = append(names, de.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	files, err := ix.parse(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := ix.typeCheck(asPath, files, nil)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: asPath, Dir: dir, Fset: ix.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

func (ix *Index) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ix.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func (ix *Index) typeCheck(path string, files []*ast.File, importMap map[string]string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &mappedImporter{base: ix.base, m: importMap},
	}
	pkg, err := conf.Check(path, ix.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// mappedImporter applies one package's ImportMap (test-variant and
// vendor rewrites) before consulting the shared export index.
type mappedImporter struct {
	base types.Importer
	m    map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.base.Import(path)
}
