// Package pathscoped is the mapiter fixture type-checked under the
// import path repro/internal/netlist — the package whose Segment bug
// motivated this analyzer — so path scoping applies with no directive.
package pathscoped

func segments(m map[int]string) []string {
	var segs []string
	for _, s := range m {
		segs = append(segs, s) // want `append to segs inside range over map with no sort of segs`
	}
	return segs
}
