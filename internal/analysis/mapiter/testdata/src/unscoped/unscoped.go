// Package unscoped has no directive and an import path outside the
// deterministic set: map ranges here are not mapiter's business.
package unscoped

func values(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v)
	}
	return vs
}
