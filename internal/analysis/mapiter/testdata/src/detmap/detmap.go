// Package detmap is a mapiter fixture: map ranges that leak iteration
// order into appends, output, hashes or channels are flagged; sorted
// key collection and order-independent folds are not.
//
//vfpgavet:deterministic
package detmap

import (
	"fmt"
	"io"
	"sort"
)

// The canonical rescued pattern: collect keys, sort, use.
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func leak(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append to ks inside range over map with no sort of ks`
	}
	return ks
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map`
	}
}

func digest(h io.Writer, m map[string][]byte) {
	for _, v := range m {
		h.Write(v) // want `Write call inside range over map feeds a writer or hash`
	}
}

func feed(ch chan<- string, m map[string]bool) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Counting and map-to-map transforms are order independent.
func count(m map[string]int) int {
	total := 0
	inverse := map[int]string{}
	for k, v := range m {
		total += v
		inverse[v] = k
	}
	return total
}

func primed(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v) //vfpgavet:ignore mapiter -- order asserted by the caller
	}
	return vs
}
