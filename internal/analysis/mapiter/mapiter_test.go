package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiter"
)

func TestDirectiveScoped(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "testdata/src/detmap", "")
}

func TestUnscoped(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "testdata/src/unscoped", "")
}

func TestPathScoped(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "testdata/src/pathscoped", "repro/internal/netlist")
}
