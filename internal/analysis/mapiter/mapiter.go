// Package mapiter chases the PR 2 netlist.Segment bug class: iterating a
// Go map in a package whose outputs must be deterministic, and letting
// the random iteration order leak into a result. A range over a map is
// flagged when its body
//
//   - appends to a slice that the enclosing function never sorts
//     (sort.* / slices.* call mentioning the slice rescues it),
//   - writes output directly (fmt print family, or a Write/WriteString/
//     WriteByte/WriteRune method — which also covers hashing, since
//     hash.Hash is written to), or
//   - sends on a channel.
//
// Order-independent bodies — counting, summing, building another map —
// are untouched. Scope: the deterministic simulation packages plus every
// package whose artifacts are golden-tested or hashed (netlist, place,
// trace, hostos, bitstream, sim, stats, workload, lint, techmap, serve,
// baseline, rng), and any package carrying the
// //vfpgavet:deterministic directive.
package mapiter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
	"repro/internal/analysis/simclock"
)

// Analyzer is the mapiter analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "no map iteration order leaking into appends, output or hashes in deterministic packages",
	Run:  run,
}

// extraPackages widens the simclock scope to every package with
// golden-tested or hashed artifacts.
var extraPackages = []string{
	"repro/internal/netlist",
	"repro/internal/place",
	"repro/internal/trace",
	"repro/internal/hostos",
	"repro/internal/bitstream",
	"repro/internal/sim",
	"repro/internal/stats",
	"repro/internal/workload",
	"repro/internal/lint",
	"repro/internal/techmap",
	"repro/internal/serve",
	"repro/internal/baseline",
	"repro/internal/rng",
}

func inScope(pass *analysis.Pass) bool {
	if simclock.InScope(pass) {
		return true
	}
	for _, p := range extraPackages {
		if pass.Pkg.Path() == p {
			return true
		}
	}
	return false
}

// printFuncs are the fmt functions that emit output.
var printFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// writeMethods emit bytes into a writer or hash.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		// Collect every function body so a range statement can be paired
		// with its innermost enclosing function for the sort rescue.
		var bodies []*ast.BlockStmt
		astq.EnclosingFuncs(f, func(_ string, _ *ast.FieldList, body *ast.BlockStmt) {
			bodies = append(bodies, body)
		})
		innermost := func(n ast.Node) *ast.BlockStmt {
			var best *ast.BlockStmt
			for _, b := range bodies {
				if astq.PosInside(n.Pos(), b) && (best == nil || b.Pos() > best.Pos()) {
					best = b
				}
			}
			return best
		}

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rs, innermost(rs))
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				if isBuiltinAppend(pass.Info, id) {
					checkAppend(pass, x, encl)
				}
				return true
			}
			if fn := astq.Callee(pass.Info, x); fn != nil {
				sig, _ := fn.Type().(*types.Signature)
				switch {
				case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()]:
					pass.Reportf(x.Pos(), "fmt.%s inside range over map; iteration order is random — iterate a sorted key slice", fn.Name())
				case sig != nil && sig.Recv() != nil && writeMethods[fn.Name()]:
					pass.Reportf(x.Pos(), "%s call inside range over map feeds a writer or hash; iteration order is random — iterate a sorted key slice", fn.Name())
				}
			}
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside range over map; iteration order is random — iterate a sorted key slice")
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// checkAppend flags v = append(v, ...) under a map range unless the
// enclosing function contains a sort/slices call mentioning v.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, encl *ast.BlockStmt) {
	root := astq.RootIdent(call.Args[0])
	if root == nil {
		return
	}
	if encl != nil && hasSortOf(pass, encl, root.Name) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s inside range over map with no sort of %s in the enclosing function; iteration order is random", root.Name, root.Name)
}

func hasSortOf(pass *analysis.Pass, body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := astq.Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if astq.Mentions(call, name) {
			found = true
		}
		return !found
	})
	return found
}
