package compile

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/techmap"
)

// TestFuzzEquivalence drives randomly generated circuits through the
// whole flow — technology mapping, placement, routing, bitstream
// generation, download, fabric execution — and checks every stage against
// the gate-level golden model. This is the repository's strongest
// correctness argument: the flow is validated on arbitrary structure,
// not just the hand-written library.
func TestFuzzEquivalence(t *testing.T) {
	cases := []netlist.RandomConfig{
		{Inputs: 3, Outputs: 2, Gates: 10},
		{Inputs: 8, Outputs: 4, Gates: 40, ConstProb: 0.05},
		{Inputs: 12, Outputs: 8, Gates: 90, ConstProb: 0.1},
		{Inputs: 6, Outputs: 6, Gates: 50, DFFProb: 0.2},
		{Inputs: 10, Outputs: 5, Gates: 80, DFFProb: 0.35, ConstProb: 0.05},
		{Inputs: 4, Outputs: 3, Gates: 25, DFFProb: 0.5},
		{Inputs: 16, Outputs: 10, Gates: 120, ConstProb: 0.02},
		{Inputs: 1, Outputs: 1, Gates: 3},
	}
	for ci, cfg := range cases {
		for rep := 0; rep < 3; rep++ {
			seed := uint64(1000*ci + rep + 1)
			name := fmt.Sprintf("case%d_rep%d", ci, rep)
			cfg := cfg
			t.Run(name, func(t *testing.T) {
				src := rng.New(seed)
				nl := netlist.Random(src, cfg)

				// Stage 1: mapped design vs netlist.
				m, err := techmap.Map(nl)
				if err != nil {
					t.Fatalf("map: %v", err)
				}
				msim, err := techmap.NewSimulator(m)
				if err != nil {
					t.Fatalf("mapped sim: %v", err)
				}
				golden := netlist.NewSimulator(nl)
				stim := src.Split()
				for cyc := 0; cyc < 24; cyc++ {
					in := make([]bool, nl.NumInputs())
					for i := range in {
						in[i] = stim.Bool()
					}
					var want, got []bool
					if nl.IsSequential() {
						want, got = golden.Step(in), msim.Step(in)
					} else {
						want, got = golden.Eval(in), msim.Eval(in)
					}
					for o := range want {
						if want[o] != got[o] {
							t.Fatalf("mapped mismatch cyc %d out %d", cyc, o)
						}
					}
				}

				// Stage 2: full flow onto the fabric at a shifted origin.
				c, err := Compile(nl, Options{Seed: seed})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				geom := fabric.DefaultGeometry()
				if c.BS.W+3 > geom.Cols || c.BS.H+2 > geom.Rows {
					geom.Cols = c.BS.W + 6
					geom.Rows = c.BS.H + 4
				}
				needPins := c.BS.NumIn + c.BS.NumOut
				if geom.NumPins() < needPins {
					geom.PinsPerSide = (needPins + 3) / 4
				}
				dev := fabric.NewDevice(geom)
				binding := loadAt(t, dev, c, 3, 2, 0)
				golden.Reset()
				stim2 := rng.New(seed ^ 0xabcdef)
				for cyc := 0; cyc < 24; cyc++ {
					in := make([]bool, nl.NumInputs())
					for i := range in {
						in[i] = stim2.Bool()
						dev.SetPin(binding.In[i], in[i])
					}
					var want []bool
					var got map[int]bool
					var err error
					if nl.IsSequential() {
						want = golden.Step(in)
						got, err = dev.Step()
					} else {
						want = golden.Eval(in)
						got, err = dev.Eval()
					}
					if err != nil {
						t.Fatalf("fabric cyc %d: %v", cyc, err)
					}
					for o := range want {
						if got[binding.Out[o]] != want[o] {
							t.Fatalf("fabric mismatch cyc %d out %d (%s)", cyc, o, nl.Name)
						}
					}
				}
			})
		}
	}
}

// TestFuzzStateRoundTrip checks, on random sequential circuits, that
// fabric readback/restore resumes exactly — the §3 preemption invariant
// on arbitrary state machines.
func TestFuzzStateRoundTrip(t *testing.T) {
	for rep := 0; rep < 5; rep++ {
		seed := uint64(777 + rep)
		src := rng.New(seed)
		nl := netlist.Random(src, netlist.RandomConfig{Inputs: 5, Outputs: 4, Gates: 40, DFFProb: 0.4})
		if !nl.IsSequential() {
			continue
		}
		c, err := Compile(nl, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		dev := fabric.NewDevice(fabric.DefaultGeometry())
		binding := loadAt(t, dev, c, 0, 0, 0)
		stim := src.Split()
		applyIn := func() []bool {
			in := make([]bool, nl.NumInputs())
			for i := range in {
				in[i] = stim.Bool()
				dev.SetPin(binding.In[i], in[i])
			}
			return in
		}
		for i := 0; i < 13; i++ {
			applyIn()
			if _, err := dev.Step(); err != nil {
				t.Fatal(err)
			}
		}
		region := c.BS.Region(0, 0)
		saved := dev.ReadRegionState(region)
		// Run ahead with different inputs, then restore.
		for i := 0; i < 7; i++ {
			applyIn()
			if _, err := dev.Step(); err != nil {
				t.Fatal(err)
			}
		}
		dev.WriteRegionState(region, saved)
		after := dev.ReadRegionState(region)
		for i := range saved {
			if saved[i] != after[i] {
				t.Fatalf("rep %d: state bit %d not restored", rep, i)
			}
		}
	}
}
