package compile

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/netlist"
)

func testKey(name string, seed uint64) CacheKey {
	return CacheKey{Name: name, Rows: 8, Tracks: 4, Seed: seed}
}

func TestCacheSingleflight(t *testing.T) {
	sc := NewStripCache(16)
	key := testKey("sf", 1)
	const waiters = 8

	gate := make(chan struct{})
	var compiles int
	var wg sync.WaitGroup
	want := &Circuit{Name: "sf"}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := sc.get(key, func() (*Circuit, error) {
				compiles++ // inside the flight: only one goroutine may get here
				<-gate
				return want, nil
			})
			if err != nil || c != want {
				t.Errorf("get: %v %v", c, err)
			}
		}()
	}
	// Wait until every goroutine has either claimed the flight or parked
	// on it, then release the one compiler.
	for sc.Stats().Misses+sc.Stats().Dedups < waiters {
	}
	close(gate)
	wg.Wait()

	st := sc.Stats()
	if compiles != 1 {
		t.Fatalf("compiled %d times, want 1", compiles)
	}
	if st.Misses != 1 || st.Dedups != waiters-1 {
		t.Fatalf("misses=%d dedups=%d, want 1 and %d", st.Misses, st.Dedups, waiters-1)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight=%d after completion", st.InFlight)
	}
	// A later lookup is a plain hit.
	if _, err := sc.get(key, func() (*Circuit, error) {
		t.Fatal("recompiled a cached key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Hits != 1 {
		t.Fatalf("hits=%d, want 1", st.Hits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	sc := NewStripCache(2)
	mk := func(seed uint64) func() (*Circuit, error) {
		return func() (*Circuit, error) { return &Circuit{}, nil }
	}
	a, b, c := testKey("a", 1), testKey("b", 2), testKey("c", 3)
	sc.get(a, mk(1))
	sc.get(b, mk(2))
	sc.get(a, mk(1)) // touch a: b is now LRU
	sc.get(c, mk(3)) // evicts b
	if sc.Len() != 2 {
		t.Fatalf("len=%d, want 2", sc.Len())
	}
	st := sc.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	sc.get(a, func() (*Circuit, error) {
		t.Fatal("a was evicted; expected b (the LRU) to go")
		return nil, nil
	})
	sc.get(c, func() (*Circuit, error) {
		t.Fatal("c was evicted; expected b (the LRU) to go")
		return nil, nil
	})
	recompiled := false
	sc.get(b, func() (*Circuit, error) {
		recompiled = true
		return &Circuit{}, nil
	})
	if !recompiled {
		t.Fatal("b survived eviction")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	sc := NewStripCache(4)
	key := testKey("err", 1)
	boom := errors.New("boom")
	if _, err := sc.get(key, func() (*Circuit, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if sc.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// Next lookup compiles again (and can succeed).
	c, err := sc.get(key, func() (*Circuit, error) { return &Circuit{}, nil })
	if err != nil || c == nil {
		t.Fatalf("retry after error: %v %v", c, err)
	}
}

func TestCacheKeyIncludesAllInputs(t *testing.T) {
	sc := NewStripCache(0) // 0 => default capacity
	if sc.Stats().Capacity != DefaultCacheCapacity {
		t.Fatalf("capacity=%d, want default %d", sc.Stats().Capacity, DefaultCacheCapacity)
	}
	nl := netlist.Counter(4)
	base := Options{Seed: 7}
	variants := []Options{
		{Seed: 8},
		{Seed: 7, Effort: 3},
		{Seed: 7, DisableOpt: true},
	}
	if _, err := sc.CompileStrip(nl, 8, 4, base); err != nil {
		t.Fatal(err)
	}
	for _, opt := range variants {
		if _, err := sc.CompileStrip(nl, 8, 4, opt); err != nil {
			t.Fatal(err)
		}
	}
	st := sc.Stats()
	if st.Misses != int64(1+len(variants)) || st.Hits != 0 {
		t.Fatalf("misses=%d hits=%d: option variants collided in the key", st.Misses, st.Hits)
	}
	// Same options again: pure hit.
	if _, err := sc.CompileStrip(nl, 8, 4, base); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Hits != 1 {
		t.Fatalf("hits=%d, want 1", st.Hits)
	}
	if got := sc.Stats().HitRate(); got <= 0 || got >= 1 {
		t.Fatalf("hit rate %v out of range", got)
	}
}
