// Strip-compilation cache: the concurrent compile service behind the
// experiment harness.
//
// Strip compilation (map+place+route+bitgen) is the dominant cost of
// every experiment, and it is a pure function of its inputs, so results
// are shared process-wide. StripCache provides three things the parallel
// runner needs that a plain map cannot:
//
//   - singleflight deduplication: concurrent workers requesting the same
//     key block on one compilation instead of redoing it;
//   - bounded LRU eviction, so a long-lived process cannot grow the cache
//     without limit;
//   - hit/miss/in-flight counters (internal/stats) for the perf record.
package compile

import (
	"container/list"
	"sync"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// CacheKey identifies one strip compilation. Every flow input that can
// change the compiled output participates in the key, so two lookups with
// equal keys always denote byte-identical circuits — the property that
// makes sharing the cache between concurrent experiments deterministic.
// Netlist names are assumed to identify netlist content (true for the
// registry library and the deterministic Segment/Concat derivations).
type CacheKey struct {
	Name       string
	Rows       int
	Tracks     int
	Seed       uint64
	Effort     int
	DisableOpt bool
	Timing     fabric.Timing
}

// CacheStats is a snapshot of a StripCache's counters.
type CacheStats struct {
	Hits      int64 // lookups answered from the cache
	Misses    int64 // lookups that compiled
	Dedups    int64 // lookups that joined an in-flight compilation
	Evictions int64 // entries displaced by the LRU bound
	InFlight  int64 // compilations running right now
	Size      int   // entries currently cached
	Capacity  int   // LRU bound
}

// Lookups returns the total number of cache lookups.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses + s.Dedups }

// HitRate returns the fraction of lookups that avoided a compilation
// (cache hits plus singleflight joins), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.Dedups) / float64(n)
}

type cacheEntry struct {
	key CacheKey
	c   *Circuit
}

// flight is one in-progress compilation; joiners wait on done.
type flight struct {
	done chan struct{}
	c    *Circuit
	err  error
}

// StripCache is a concurrent, bounded, deduplicating cache over
// CompileStrip. The zero value is not usable; use NewStripCache.
type StripCache struct {
	// The counters are self-synchronized atomics, and capacity is fixed
	// at construction; both sit above mu, which guards only the LRU
	// structures below it.
	hits, misses, dedups, evictions stats.AtomicCounter
	inFlight                        stats.AtomicCounter
	capacity                        int

	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[CacheKey]*list.Element
	inflight map[CacheKey]*flight
}

// DefaultCacheCapacity bounds a StripCache when NewStripCache is given a
// non-positive capacity. The full harness compiles a few dozen distinct
// (circuit, geometry, seed) keys; 512 leaves generous headroom while
// keeping a long-lived process bounded.
const DefaultCacheCapacity = 512

// NewStripCache returns an empty cache holding at most capacity circuits
// (<= 0 selects DefaultCacheCapacity).
func NewStripCache(capacity int) *StripCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &StripCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  map[CacheKey]*list.Element{},
		inflight: map[CacheKey]*flight{},
	}
}

// CompileStrip returns the strip compilation of nl for the given shape and
// options, compiling at most once per key even under concurrent callers.
// The returned Circuit is shared and must be treated as immutable (every
// consumer in this repository already does).
func (sc *StripCache) CompileStrip(nl *netlist.Netlist, rows, tracks int, opt Options) (*Circuit, error) {
	timing := fabric.DefaultTiming()
	if opt.Timing != nil {
		timing = *opt.Timing
	}
	key := CacheKey{
		Name:       nl.Name,
		Rows:       rows,
		Tracks:     tracks,
		Seed:       opt.Seed,
		Effort:     opt.Effort,
		DisableOpt: opt.DisableOpt,
		Timing:     timing,
	}
	return sc.get(key, func() (*Circuit, error) {
		return CompileStrip(nl, rows, tracks, opt)
	})
}

// get looks key up, joining an in-flight compilation or running fn once.
// Failed compilations are delivered to all waiters but never cached, so a
// transient caller error does not poison the key.
func (sc *StripCache) get(key CacheKey, fn func() (*Circuit, error)) (*Circuit, error) {
	sc.mu.Lock()
	if el, ok := sc.entries[key]; ok {
		sc.lru.MoveToFront(el)
		sc.hits.Inc()
		sc.mu.Unlock()
		return el.Value.(*cacheEntry).c, nil
	}
	if f, ok := sc.inflight[key]; ok {
		sc.dedups.Inc()
		sc.mu.Unlock()
		<-f.done
		return f.c, f.err
	}
	f := &flight{done: make(chan struct{})}
	sc.inflight[key] = f
	sc.misses.Inc()
	sc.inFlight.Inc()
	sc.mu.Unlock()

	f.c, f.err = fn()

	sc.mu.Lock()
	delete(sc.inflight, key)
	sc.inFlight.Dec()
	if f.err == nil {
		sc.entries[key] = sc.lru.PushFront(&cacheEntry{key: key, c: f.c})
		for sc.lru.Len() > sc.capacity {
			oldest := sc.lru.Back()
			sc.lru.Remove(oldest)
			delete(sc.entries, oldest.Value.(*cacheEntry).key)
			sc.evictions.Inc()
		}
	}
	sc.mu.Unlock()
	close(f.done)
	return f.c, f.err
}

// Len returns the number of cached circuits.
func (sc *StripCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (sc *StripCache) Stats() CacheStats {
	sc.mu.Lock()
	size := sc.lru.Len()
	sc.mu.Unlock()
	return CacheStats{
		Hits:      sc.hits.Value(),
		Misses:    sc.misses.Value(),
		Dedups:    sc.dedups.Value(),
		Evictions: sc.evictions.Value(),
		InFlight:  sc.inFlight.Value(),
		Size:      size,
		Capacity:  sc.capacity,
	}
}
