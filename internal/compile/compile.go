// Package compile is the end-to-end CAD flow facade: it takes a gate-level
// netlist through technology mapping, placement, routing and bitstream
// generation, producing the relocatable configuration image plus the
// timing the operating system needs (critical path, clock period, download
// cost, state volume).
//
// Compilation happens "offline" — in the paper's model, the task designer
// compiles configurations before the task is loaded; at run time the
// operating system only downloads bitstreams. Accordingly nothing here is
// charged to virtual time.
package compile

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/techmap"
)

// Options tunes the flow.
type Options struct {
	// Seed drives the placer.
	Seed uint64
	// Effort scales placement effort (0 = default).
	Effort int
	// Tracks is the channel capacity to route against; 0 uses the
	// device-default geometry's capacity.
	Tracks int
	// W, H force the region shape; 0 lets the flow choose, growing the
	// region until the design routes.
	W, H int
	// MaxGrowth bounds the number of region-growth retries (0 = default).
	MaxGrowth int
	// Timing supplies delay constants; the zero value selects
	// fabric.DefaultTiming.
	Timing *fabric.Timing
	// DisableOpt skips the netlist optimization pass (constant folding,
	// CSE, dead-logic removal) — the ablation knob for measuring what the
	// logic optimizer is worth in CLBs.
	DisableOpt bool
	// Verify runs the static verifier (internal/lint) on the compiled
	// netlist and generated bitstream, and fails the flow on any
	// error-severity diagnostic — so broken artifacts are rejected
	// before they ever reach a fabric.
	Verify bool
}

// Circuit is a fully compiled design: everything the VFPGA manager needs
// to load, run, preempt, relocate and page it.
type Circuit struct {
	Name    string
	Netlist *netlist.Netlist
	Mapped  *techmap.Mapped
	Placed  *place.Placement
	Routed  *route.Result
	BS      *bitstream.Bitstream
	// ClockPeriod is the operating clock period (critical path with the
	// device's floor applied).
	ClockPeriod sim.Time
	// Sequential reports whether the circuit holds state.
	Sequential bool
}

// Cells returns the circuit's area in CLBs.
func (c *Circuit) Cells() int { return c.BS.NumCells() }

// Footprint returns the region shape the circuit occupies.
func (c *Circuit) Footprint() (w, h int) { return c.BS.W, c.BS.H }

// String renders a one-line report.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %dx%d, %d cells, clk %v, seq=%v",
		c.Name, c.BS.W, c.BS.H, c.Cells(), c.ClockPeriod, c.Sequential)
}

// Compile runs the full flow on nl.
func Compile(nl *netlist.Netlist, opt Options) (*Circuit, error) {
	timing := fabric.DefaultTiming()
	if opt.Timing != nil {
		timing = *opt.Timing
	}
	tracks := opt.Tracks
	if tracks <= 0 {
		tracks = fabric.DefaultGeometry().TracksPerChannel
	}
	maxGrowth := opt.MaxGrowth
	if maxGrowth <= 0 {
		maxGrowth = 6
	}

	src := nl
	if !opt.DisableOpt {
		src = netlist.Optimize(nl)
	}
	m, err := techmap.Map(src)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", nl.Name, err)
	}

	w, h := opt.W, opt.H
	chooseShape := w <= 0 || h <= 0
	if chooseShape {
		w, h = place.Shape(m.NumCells())
	}

	var lastErr error
	for attempt := 0; attempt <= maxGrowth; attempt++ {
		p, err := place.Place(m, w, h, place.Options{Seed: opt.Seed + uint64(attempt), Effort: opt.Effort})
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", nl.Name, err)
		}
		r, err := route.Route(p, tracks, route.Options{})
		if err == nil {
			bs := bitstream.Generate(r, timing)
			c := &Circuit{
				Name:        nl.Name,
				Netlist:     nl,
				Mapped:      m,
				Placed:      p,
				Routed:      r,
				BS:          bs,
				ClockPeriod: timing.ClockPeriod(bs.Delay),
				Sequential:  nl.IsSequential(),
			}
			if opt.Verify {
				if errs := lint.Errors(Verify(c)); len(errs) > 0 {
					return nil, fmt.Errorf("compile %s: verify: %s (and %d more diagnostic(s))",
						nl.Name, errs[0], len(errs)-1)
				}
			}
			return c, nil
		}
		lastErr = err
		if !chooseShape {
			break // the caller pinned the shape; do not grow
		}
		// Grow the region ~20% per retry to give the router room.
		if w <= h {
			w++
		} else {
			h++
		}
		w += w / 10
		h += h / 10
	}
	return nil, fmt.Errorf("compile %s: %w", nl.Name, lastErr)
}

// Verify runs the static verifier over a compiled circuit — the source
// netlist plus the generated bitstream — and returns every diagnostic.
// Callers that only care about hard violations gate on lint.Errors;
// Options.Verify wires this into the flow itself.
func Verify(c *Circuit) []lint.Diagnostic {
	return lint.RunTarget(&lint.Target{Netlist: c.Netlist, Bitstream: c.BS}, lint.Options{})
}

// MustCompile is Compile that panics on error, for tests and examples
// operating on library circuits known to route.
func MustCompile(nl *netlist.Netlist, opt Options) *Circuit {
	c, err := Compile(nl, opt)
	if err != nil {
		panic(err)
	}
	return c
}

// CompileStrip compiles nl into a full-height column strip of the given
// row count, growing the width until the design routes. Column strips are
// the allocation unit of the VFPGA managers: partitioning, overlaying and
// garbage collection all deal in contiguous column ranges, the direct
// analogue of the paper's memory-style partitions.
func CompileStrip(nl *netlist.Netlist, rows, tracks int, opt Options) (*Circuit, error) {
	src := nl
	if !opt.DisableOpt {
		src = netlist.Optimize(nl)
	}
	m, err := techmap.Map(src)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", nl.Name, err)
	}
	cells := m.NumCells()
	minW := (cells + cells/8 + rows - 1) / rows
	if minW < 1 {
		minW = 1
	}
	var lastErr error
	for w := minW; w <= minW+8; w++ {
		opt := opt
		opt.W, opt.H = w, rows
		c, err := Compile(nl, opt)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("compile %s as %d-row strip: %w", nl.Name, rows, lastErr)
}
