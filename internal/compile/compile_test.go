package compile

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/rng"
)

// loadAt applies a compiled circuit at the given origin, binding its ports
// to consecutive device pins starting at pinBase. It returns the binding.
func loadAt(t *testing.T, dev *fabric.Device, c *Circuit, ox, oy, pinBase int) *bitstream.PinBinding {
	t.Helper()
	binding := &bitstream.PinBinding{}
	p := pinBase
	for i := 0; i < c.BS.NumIn; i++ {
		binding.In = append(binding.In, p)
		p++
	}
	for i := 0; i < c.BS.NumOut; i++ {
		binding.Out = append(binding.Out, p)
		p++
	}
	if _, _, err := c.BS.Apply(dev, ox, oy, binding); err != nil {
		t.Fatalf("apply %s: %v", c.Name, err)
	}
	// Every configuration the tests download must survive the
	// fabric-level verifier: no dangling sources, no config loops.
	if errs := lint.Errors(lint.RunTarget(&lint.Target{Name: c.Name, Device: dev}, lint.Options{})); len(errs) > 0 {
		t.Fatalf("device after loading %s: %v", c.Name, errs)
	}
	return binding
}

// driveEqual checks that the device region computes the same function as
// the netlist golden model over random stimulus.
func driveEqual(t *testing.T, dev *fabric.Device, c *Circuit, binding *bitstream.PinBinding, cycles int, seed uint64) {
	t.Helper()
	golden := netlist.NewSimulator(c.Netlist)
	src := rng.New(seed)
	for cyc := 0; cyc < cycles; cyc++ {
		in := make([]bool, c.BS.NumIn)
		for i := range in {
			in[i] = src.Bool()
			dev.SetPin(binding.In[i], in[i])
		}
		var want []bool
		var got map[int]bool
		var err error
		if c.Sequential {
			want = golden.Step(in)
			got, err = dev.Step()
		} else {
			want = golden.Eval(in)
			got, err = dev.Eval()
		}
		if err != nil {
			t.Fatalf("%s cycle %d: %v", c.Name, cyc, err)
		}
		for o := range want {
			if got[binding.Out[o]] != want[o] {
				t.Fatalf("%s cycle %d output %d (%s): fabric %v, want %v",
					c.Name, cyc, o, c.Netlist.OutputNames()[o], got[binding.Out[o]], want[o])
			}
		}
	}
}

func TestCompileAndRunOnFabric(t *testing.T) {
	reg := netlist.Registry()
	// A representative slice of the library: combinational datapaths,
	// wide fanin, deep logic, and sequential machines.
	names := []string{"adder16", "mul4", "alu8", "popcount16", "rotl8",
		"counter8", "lfsr16", "crc8", "acc8", "shreg16", "cmp16", "prienc8"}
	for i, name := range names {
		name := name
		seed := uint64(100 + i)
		t.Run(name, func(t *testing.T) {
			c, err := Compile(reg[name](), Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			dev := fabric.NewDevice(fabric.DefaultGeometry())
			binding := loadAt(t, dev, c, 0, 0, 0)
			driveEqual(t, dev, c, binding, 48, seed)
		})
	}
}

func TestRelocationPreservesFunction(t *testing.T) {
	// The same bitstream loaded at two different origins simultaneously
	// must compute correctly at both — the relocatability property that
	// variable partitioning and garbage collection rely on.
	c := MustCompile(netlist.Adder(8), Options{Seed: 9})
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	b1 := loadAt(t, dev, c, 0, 0, 0)
	ox := c.BS.W + 2
	oy := c.BS.H + 3
	b2 := loadAt(t, dev, c, ox, oy, 64)

	golden := netlist.NewSimulator(c.Netlist)
	src := rng.New(17)
	for cyc := 0; cyc < 32; cyc++ {
		in1 := make([]bool, c.BS.NumIn)
		in2 := make([]bool, c.BS.NumIn)
		for i := range in1 {
			in1[i] = src.Bool()
			in2[i] = src.Bool()
			dev.SetPin(b1.In[i], in1[i])
			dev.SetPin(b2.In[i], in2[i])
		}
		got, err := dev.Eval()
		if err != nil {
			t.Fatal(err)
		}
		want1 := golden.Eval(in1)
		want2 := golden.Eval(in2)
		for o := range want1 {
			if got[b1.Out[o]] != want1[o] {
				t.Fatalf("copy 1 output %d wrong at cycle %d", o, cyc)
			}
			if got[b2.Out[o]] != want2[o] {
				t.Fatalf("relocated copy output %d wrong at cycle %d", o, cyc)
			}
		}
	}
}

func TestTwoSequentialCircuitsShareClock(t *testing.T) {
	// Two independent counters loaded side by side advance together under
	// the global Step, without interfering.
	c := MustCompile(netlist.Counter(8), Options{Seed: 5})
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	b1 := loadAt(t, dev, c, 0, 0, 0)
	b2 := loadAt(t, dev, c, c.BS.W+1, 0, 32)
	dev.SetPin(b1.In[0], true)  // en
	dev.SetPin(b2.In[0], false) // disabled
	for i := 0; i < 10; i++ {
		if _, err := dev.Step(); err != nil {
			t.Fatal(err)
		}
	}
	read := func(b *bitstream.PinBinding) uint64 {
		out, err := dev.Eval()
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]bool, 8)
		for i := 0; i < 8; i++ {
			bits[i] = out[b.Out[i]]
		}
		return netlist.BoolsToUint(bits)
	}
	if got := read(b1); got != 10 {
		t.Fatalf("enabled counter = %d, want 10", got)
	}
	if got := read(b2); got != 0 {
		t.Fatalf("disabled counter = %d, want 0", got)
	}
}

func TestStateReadbackRestoreOnFabric(t *testing.T) {
	// Preemption round-trip on the device: run, read back FF state, trash
	// the region with another load, reload and restore, continue exactly.
	c := MustCompile(netlist.Counter(8), Options{Seed: 3})
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	binding := loadAt(t, dev, c, 2, 2, 0)
	dev.SetPin(binding.In[0], true)
	for i := 0; i < 23; i++ {
		if _, err := dev.Step(); err != nil {
			t.Fatal(err)
		}
	}
	region := c.BS.Region(2, 2)
	saved := dev.ReadRegionState(region)
	if len(saved) != c.BS.FFCells {
		t.Fatalf("readback %d FFs, want %d", len(saved), c.BS.FFCells)
	}

	// Preempt: clear and reuse the region for something else.
	dev.ClearRegion(region)
	other := MustCompile(netlist.Parity(16), Options{Seed: 4})
	loadAt(t, dev, other, 2, 2, 100)

	// Resume: reload, restore, check the counter continues from 23.
	dev.ClearRegion(fabric.Region{X: 2, Y: 2, W: other.BS.W, H: other.BS.H})
	binding = loadAt(t, dev, c, 2, 2, 0)
	dev.WriteRegionState(region, saved)
	dev.SetPin(binding.In[0], true)
	out, err := dev.Eval()
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]bool, 8)
	for i := range bits {
		bits[i] = out[binding.Out[i]]
	}
	if got := netlist.BoolsToUint(bits); got != 23 {
		t.Fatalf("restored counter = %d, want 23", got)
	}
}

func TestPagedLoadEndsFunctional(t *testing.T) {
	c := MustCompile(netlist.ALU(8), Options{Seed: 21})
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	binding := &bitstream.PinBinding{}
	p := 0
	for i := 0; i < c.BS.NumIn; i++ {
		binding.In = append(binding.In, p)
		p++
	}
	for i := 0; i < c.BS.NumOut; i++ {
		binding.Out = append(binding.Out, p)
		p++
	}
	pages := c.BS.Pages(7)
	if len(pages) < 2 {
		t.Fatalf("alu8 split into %d pages, want several", len(pages))
	}
	total := 0
	for _, pg := range pages {
		n, _, err := c.BS.ApplyPage(dev, 0, 0, binding, pg)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != c.BS.NumCells() {
		t.Fatalf("pages wrote %d cells, want %d", total, c.BS.NumCells())
	}
	// Pages do not configure pins; do a full Apply of the port map via the
	// zero-cost route: re-apply with no cells is not exposed, so apply the
	// last page again after configuring pins through Apply.
	if _, _, err := c.BS.Apply(dev, 0, 0, binding); err != nil {
		t.Fatal(err)
	}
	driveEqual(t, dev, c, binding, 32, 77)
}

func TestApplyOutOfBoundsRejected(t *testing.T) {
	c := MustCompile(netlist.Adder(8), Options{Seed: 1})
	dev := fabric.NewDevice(fabric.Geometry{Cols: 4, Rows: 4, TracksPerChannel: 8, PinsPerSide: 8})
	binding := &bitstream.PinBinding{In: make([]int, c.BS.NumIn), Out: make([]int, c.BS.NumOut)}
	if _, _, err := c.BS.Apply(dev, 0, 0, binding); err == nil {
		t.Fatal("oversized apply accepted")
	}
}

func TestApplyBindingMismatchRejected(t *testing.T) {
	c := MustCompile(netlist.Adder(8), Options{Seed: 1})
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	binding := &bitstream.PinBinding{In: []int{0}, Out: []int{1}}
	if _, _, err := c.BS.Apply(dev, 0, 0, binding); err == nil {
		t.Fatal("mismatched binding accepted")
	}
}

func TestPinnedShapeNoGrowth(t *testing.T) {
	// Pinning an inadequate shape must fail rather than silently grow.
	if _, err := Compile(netlist.Multiplier(6), Options{Seed: 1, W: 3, H: 3}); err == nil {
		t.Fatal("pinned tiny shape accepted")
	}
}

func TestConfigCostSane(t *testing.T) {
	c := MustCompile(netlist.Adder(16), Options{Seed: 1})
	tm := fabric.DefaultTiming()
	cost := c.BS.ConfigCost(tm)
	if cost <= 0 {
		t.Fatal("non-positive config cost")
	}
	if full := tm.FullConfigTime(fabric.DefaultGeometry()); cost >= full {
		t.Fatalf("partial cost %v >= full config %v", cost, full)
	}
}

func TestClockPeriodAtLeastFloor(t *testing.T) {
	c := MustCompile(netlist.Parity(16), Options{Seed: 1})
	if c.ClockPeriod < fabric.DefaultTiming().MinClock {
		t.Fatalf("clock period %v below floor", c.ClockPeriod)
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := MustCompile(netlist.ALU(8), Options{Seed: 33})
	b := MustCompile(netlist.ALU(8), Options{Seed: 33})
	if a.Cells() != b.Cells() || a.ClockPeriod != b.ClockPeriod || a.BS.TotalHops != b.BS.TotalHops {
		t.Fatal("compile not deterministic")
	}
}

func TestBitstreamSummary(t *testing.T) {
	c := MustCompile(netlist.Adder(8), Options{Seed: 1})
	if c.BS.String() == "" || c.String() == "" {
		t.Fatal("empty summaries")
	}
}

func BenchmarkCompileAdder16(b *testing.B) {
	nl := netlist.Adder(16)
	for i := 0; i < b.N; i++ {
		if _, err := Compile(nl, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimizerAblation(t *testing.T) {
	// The optimizer may only shrink (or keep) the CLB count, never grow
	// it, and must not change behaviour (behaviour is covered by the fuzz
	// tests; here we check the area ablation on real library circuits).
	for _, nl := range []*netlist.Netlist{
		netlist.PriorityEncoder(8), // constant-heavy mux ladder
		netlist.Comparator(16),     // constant-seeded scan chain
		netlist.ALU(8),
	} {
		raw := MustCompile(nl, Options{Seed: 2, DisableOpt: true})
		opt := MustCompile(nl, Options{Seed: 2})
		if opt.Cells() > raw.Cells() {
			t.Fatalf("%s: optimizer grew area %d -> %d", nl.Name, raw.Cells(), opt.Cells())
		}
		t.Logf("%s: %d cells raw, %d optimized", nl.Name, raw.Cells(), opt.Cells())
	}
}

func TestOptimizedCircuitStillEquivalentOnFabric(t *testing.T) {
	// End-to-end: optimization happens inside Compile, so the standard
	// equivalence drive covers it; exercise the const-heavy encoder.
	c, err := Compile(netlist.PriorityEncoder(8), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dev := fabric.NewDevice(fabric.DefaultGeometry())
	binding := loadAt(t, dev, c, 1, 1, 0)
	driveEqual(t, dev, c, binding, 64, 99)
}

// TestVerifyHookRejectsCorruptArtifacts compiles with the static
// verifier enabled, then corrupts the bitstream and checks the verifier
// catches it — the compile-time gate that keeps broken configurations
// off the fabric.
func TestVerifyHookRejectsCorruptArtifacts(t *testing.T) {
	c, err := Compile(netlist.Counter(8), Options{Seed: 1, Verify: true})
	if err != nil {
		t.Fatalf("verified compile failed on a library circuit: %v", err)
	}
	if errs := lint.Errors(Verify(c)); len(errs) > 0 {
		t.Fatalf("fresh artifact has lint errors: %v", errs)
	}
	// Push a cell write outside the claimed region: relocation would
	// scribble over a neighboring partition.
	c.BS.Cells[0].X = c.BS.W + 3
	if errs := lint.Errors(Verify(c)); len(errs) == 0 {
		t.Fatal("out-of-region cell write not detected")
	}
	// Lie about the state volume: readback/restore vectors would tear.
	c2 := MustCompile(netlist.Counter(8), Options{Seed: 1})
	c2.BS.FFCells++
	if errs := lint.Errors(Verify(c2)); len(errs) == 0 {
		t.Fatal("state-volume mismatch not detected")
	}
}

// TestLibraryCompilesVerified sweeps every registry circuit through the
// flow with Verify on: the whole seed library must produce artifacts
// the static verifier accepts.
func TestLibraryCompilesVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-library sweep")
	}
	for name, gen := range netlist.Registry() {
		if _, err := Compile(gen(), Options{Seed: 1, Verify: true}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
