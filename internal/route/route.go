// Package route routes the connections of a placed design through the
// fabric's channel graph using PathFinder-style negotiated congestion:
// every source-to-sink connection gets a shortest path, connections bid
// for channel segments, and congestion history pushes latecomers around
// hot spots until no channel exceeds its track capacity.
//
// Routing is what grounds two physical effects the paper leans on: a
// region must have spare cells/channels to be routable (area slack), and
// wire delay grows with distance (placement quality shows up in the clock
// period).
package route

import (
	"container/heap"
	"fmt"

	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/techmap"
)

// Sink identifies the endpoint of a connection: either a LUT input pin of
// a cell, or a primary output port.
type Sink struct {
	IsPort bool
	Cell   techmap.CellID // when !IsPort
	Input  int            // LUT pin index when !IsPort
	Port   int            // output port index when IsPort
}

// Connection is one routed source-to-sink path.
type Connection struct {
	Src  techmap.Signal // SigCell or SigInput (constants are not routed)
	Sink Sink
	Path []place.Loc // traversed cells, endpoints included
}

// Hops returns the number of channel segments the connection crosses.
func (c *Connection) Hops() int { return len(c.Path) - 1 }

// Result is a complete legal routing.
type Result struct {
	P          *place.Placement
	Conns      []Connection
	Tracks     int // channel capacity routed against
	MaxUse     int // maximum channel occupancy achieved
	Iterations int // negotiation iterations used
	TotalHops  int
}

// Options tunes the router.
type Options struct {
	// MaxIterations bounds the negotiation loop; 0 selects the default.
	MaxIterations int
}

// edge indexes the undirected channel between two adjacent cells.
// Horizontal edges: between (x,y) and (x+1,y); vertical between (x,y) and
// (x,y+1).
type edgeID int

type grid struct {
	w, h int
}

func (g grid) nodes() int { return g.w * g.h }
func (g grid) node(l place.Loc) int {
	return l.Y*g.w + l.X
}
func (g grid) loc(n int) place.Loc { return place.Loc{X: n % g.w, Y: n / g.w} }

// hEdges are indexed first, then vEdges.
func (g grid) numEdges() int { return (g.w-1)*g.h + g.w*(g.h-1) }

// edgeBetween returns the edge id between two adjacent nodes.
func (g grid) edgeBetween(a, b int) edgeID {
	la, lb := g.loc(a), g.loc(b)
	if la.Y == lb.Y { // horizontal
		x := la.X
		if lb.X < x {
			x = lb.X
		}
		return edgeID(la.Y*(g.w-1) + x)
	}
	y := la.Y
	if lb.Y < y {
		y = lb.Y
	}
	return edgeID((g.w-1)*g.h + y*g.w + la.X)
}

// neighbors appends the orthogonal neighbors of node n to buf.
func (g grid) neighbors(n int, buf []int) []int {
	l := g.loc(n)
	if l.X > 0 {
		buf = append(buf, n-1)
	}
	if l.X < g.w-1 {
		buf = append(buf, n+1)
	}
	if l.Y > 0 {
		buf = append(buf, n-g.w)
	}
	if l.Y < g.h-1 {
		buf = append(buf, n+g.w)
	}
	return buf
}

// connections enumerates every routable connection of a placement in
// deterministic order.
func connections(p *place.Placement) []Connection {
	var conns []Connection
	for ci := range p.Mapped.Cells {
		for k, in := range p.Mapped.Cells[ci].Inputs {
			if in.Kind == techmap.SigConst {
				continue
			}
			conns = append(conns, Connection{
				Src:  in,
				Sink: Sink{Cell: techmap.CellID(ci), Input: k},
			})
		}
	}
	for oi, sig := range p.Mapped.Outputs {
		if sig.Kind == techmap.SigConst {
			continue
		}
		conns = append(conns, Connection{
			Src:  sig,
			Sink: Sink{IsPort: true, Port: oi},
		})
	}
	return conns
}

func (r *Result) srcLoc(sig techmap.Signal) place.Loc {
	if sig.Kind == techmap.SigCell {
		return r.P.Cells[sig.Cell]
	}
	return r.P.InPorts[sig.Input]
}

func (r *Result) sinkLoc(s Sink) place.Loc {
	if s.IsPort {
		return r.P.OutPorts[s.Port]
	}
	return r.P.Cells[s.Cell]
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	cost float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// Route produces a legal routing of p against the given channel capacity.
func Route(p *place.Placement, tracks int, opt Options) (*Result, error) {
	if tracks <= 0 {
		return nil, fmt.Errorf("route: non-positive track count %d", tracks)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 40
	}
	g := grid{w: p.W, h: p.H}
	res := &Result{P: p, Tracks: tracks, Conns: connections(p)}

	// Group connections into nets by driving signal: a net's fanout shares
	// one routing tree, so a channel segment carries a net once no matter
	// how many sinks lie beyond it.
	netOf := map[techmap.Signal][]int{}
	var netOrder []techmap.Signal
	for i := range res.Conns {
		s := res.Conns[i].Src
		if _, ok := netOf[s]; !ok {
			netOrder = append(netOrder, s)
		}
		netOf[s] = append(netOf[s], i)
	}

	occ := make([]int, g.numEdges())      // present occupancy
	hist := make([]float64, g.numEdges()) // history cost
	paths := make([][]int, len(res.Conns))
	inNet := make([]bool, g.numEdges()) // scratch: edges already in current net

	presFac := 0.5
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// Rip up everything and re-route in order with current costs.
		for i := range occ {
			occ[i] = 0
		}
		for _, src := range netOrder {
			conns := netOf[src]
			var netEdges []edgeID
			for _, i := range conns {
				c := &res.Conns[i]
				from, to := g.node(res.srcLoc(c.Src)), g.node(res.sinkLoc(c.Sink))
				path := shortestPath(g, from, to, func(e edgeID) float64 {
					if inNet[e] {
						return 1e-4 // already carried by this net: reuse freely
					}
					over := float64(occ[e] + 1 - tracks)
					if over < 0 {
						over = 0
					}
					return (1 + hist[e]) * (1 + over*presFac)
				})
				paths[i] = path
				for k := 0; k+1 < len(path); k++ {
					e := g.edgeBetween(path[k], path[k+1])
					if !inNet[e] {
						inNet[e] = true
						netEdges = append(netEdges, e)
						occ[e]++
					}
				}
			}
			for _, e := range netEdges {
				inNet[e] = false
			}
		}
		// Check for overuse.
		maxUse, over := 0, false
		for e, u := range occ {
			if u > maxUse {
				maxUse = u
			}
			if u > tracks {
				over = true
				hist[e] += float64(u - tracks)
			}
		}
		res.MaxUse = maxUse
		if !over {
			res.TotalHops = 0
			for i := range res.Conns {
				res.Conns[i].Path = make([]place.Loc, len(paths[i]))
				for k, n := range paths[i] {
					res.Conns[i].Path[k] = g.loc(n)
				}
				res.TotalHops += res.Conns[i].Hops()
			}
			return res, nil
		}
		presFac *= 1.6
	}
	return nil, fmt.Errorf("route: %s unroutable in %dx%d with %d tracks after %d iterations (max use %d)",
		p.Mapped.Name, p.W, p.H, tracks, maxIter, res.MaxUse)
}

// shortestPath runs Dijkstra over the grid with the given edge cost.
func shortestPath(g grid, from, to int, cost func(edgeID) float64) []int {
	if from == to {
		return []int{from}
	}
	dist := make([]float64, g.nodes())
	prev := make([]int, g.nodes())
	done := make([]bool, g.nodes())
	for i := range dist {
		dist[i] = -1
		prev[i] = -1
	}
	dist[from] = 0
	q := &pq{{node: from}}
	var nbuf [4]int
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			break
		}
		for _, nb := range g.neighbors(it.node, nbuf[:0]) {
			if done[nb] {
				continue
			}
			c := it.cost + cost(g.edgeBetween(it.node, nb))
			if dist[nb] < 0 || c < dist[nb] {
				dist[nb] = c
				prev[nb] = it.node
				heap.Push(q, pqItem{node: nb, cost: c})
			}
		}
	}
	if prev[to] == -1 && to != from {
		panic("route: grid is connected; unreachable node")
	}
	var rev []int
	for n := to; n != -1; n = prev[n] {
		rev = append(rev, n)
		if n == from {
			break
		}
	}
	path := make([]int, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path
}

// CriticalPath returns the longest combinational delay through the routed
// design: LUT delay per logic level plus hop delay per channel segment,
// over all register-to-register, input-to-register, register-to-output
// and input-to-output paths.
func (r *Result) CriticalPath(lutDelay, hopDelay sim.Time) sim.Time {
	m := r.P.Mapped
	// hops[sink] for cell-input connections, indexed [cell][pin].
	hops := make(map[[2]int]int)
	outHops := make(map[int]int)
	for i := range r.Conns {
		c := &r.Conns[i]
		if c.Sink.IsPort {
			outHops[c.Sink.Port] = c.Hops()
		} else {
			hops[[2]int{int(c.Sink.Cell), c.Sink.Input}] = c.Hops()
		}
	}
	// arrival time of each cell's output (combinational cells only; FF
	// outputs and inputs are time-zero sources).
	arrival := make([]sim.Time, len(m.Cells))
	state := make([]uint8, len(m.Cells))
	crit := sim.Time(0)
	var arrive func(ci int) sim.Time
	inputArrival := func(ci int) sim.Time {
		worst := sim.Time(0)
		for k, in := range m.Cells[ci].Inputs {
			var src sim.Time
			switch in.Kind {
			case techmap.SigCell:
				if !m.Cells[in.Cell].UseFF {
					src = arrive(int(in.Cell))
				}
			case techmap.SigInput, techmap.SigConst:
				src = 0
			}
			t := src + sim.Time(hops[[2]int{ci, k}])*hopDelay
			if t > worst {
				worst = t
			}
		}
		return worst
	}
	arrive = func(ci int) sim.Time {
		if state[ci] == 2 {
			return arrival[ci]
		}
		if state[ci] == 1 {
			return 0 // cycles only via FFs; guarded by techmap validation
		}
		state[ci] = 1
		arrival[ci] = inputArrival(ci) + lutDelay
		state[ci] = 2
		return arrival[ci]
	}
	for ci := range m.Cells {
		// Every cell's D/LUT input path terminates a timing path when the
		// cell is registered; otherwise it contributes via consumers, but
		// we still take it as a lower bound (covers dangling comb cells).
		t := inputArrival(ci) + lutDelay
		if t > crit {
			crit = t
		}
	}
	for oi, sig := range m.Outputs {
		var src sim.Time
		if sig.Kind == techmap.SigCell && !m.Cells[sig.Cell].UseFF {
			src = arrive(int(sig.Cell))
		}
		t := src + sim.Time(outHops[oi])*hopDelay
		if t > crit {
			crit = t
		}
	}
	return crit
}
