// Package route routes the connections of a placed design through the
// fabric's channel graph using PathFinder-style negotiated congestion:
// every source-to-sink connection gets a shortest path, connections bid
// for channel segments, and congestion history pushes latecomers around
// hot spots until no channel exceeds its track capacity.
//
// Routing is what grounds two physical effects the paper leans on: a
// region must have spare cells/channels to be routable (area slack), and
// wire delay grows with distance (placement quality shows up in the clock
// period).
package route

import (
	"fmt"

	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/techmap"
)

// Sink identifies the endpoint of a connection: either a LUT input pin of
// a cell, or a primary output port.
type Sink struct {
	IsPort bool
	Cell   techmap.CellID // when !IsPort
	Input  int            // LUT pin index when !IsPort
	Port   int            // output port index when IsPort
}

// Connection is one routed source-to-sink path.
type Connection struct {
	Src  techmap.Signal // SigCell or SigInput (constants are not routed)
	Sink Sink
	Path []place.Loc // traversed cells, endpoints included
}

// Hops returns the number of channel segments the connection crosses.
func (c *Connection) Hops() int { return len(c.Path) - 1 }

// Result is a complete legal routing.
type Result struct {
	P          *place.Placement
	Conns      []Connection
	Tracks     int // channel capacity routed against
	MaxUse     int // maximum channel occupancy achieved
	Iterations int // negotiation iterations used
	TotalHops  int
}

// Options tunes the router.
type Options struct {
	// MaxIterations bounds the negotiation loop; 0 selects the default.
	MaxIterations int
}

// edge indexes the undirected channel between two adjacent cells.
// Horizontal edges: between (x,y) and (x+1,y); vertical between (x,y) and
// (x,y+1).
type edgeID int

type grid struct {
	w, h int
}

func (g grid) nodes() int { return g.w * g.h }
func (g grid) node(l place.Loc) int {
	return l.Y*g.w + l.X
}
func (g grid) loc(n int) place.Loc { return place.Loc{X: n % g.w, Y: n / g.w} }

// hEdges are indexed first, then vEdges.
func (g grid) numEdges() int { return (g.w-1)*g.h + g.w*(g.h-1) }

// edgeBetween returns the edge id between two adjacent nodes.
func (g grid) edgeBetween(a, b int) edgeID {
	la, lb := g.loc(a), g.loc(b)
	if la.Y == lb.Y { // horizontal
		x := la.X
		if lb.X < x {
			x = lb.X
		}
		return edgeID(la.Y*(g.w-1) + x)
	}
	y := la.Y
	if lb.Y < y {
		y = lb.Y
	}
	return edgeID((g.w-1)*g.h + y*g.w + la.X)
}

// neighbors appends the orthogonal neighbors of node n to buf.
func (g grid) neighbors(n int, buf []int) []int {
	l := g.loc(n)
	if l.X > 0 {
		buf = append(buf, n-1)
	}
	if l.X < g.w-1 {
		buf = append(buf, n+1)
	}
	if l.Y > 0 {
		buf = append(buf, n-g.w)
	}
	if l.Y < g.h-1 {
		buf = append(buf, n+g.w)
	}
	return buf
}

// connections enumerates every routable connection of a placement in
// deterministic order.
func connections(p *place.Placement) []Connection {
	var conns []Connection
	for ci := range p.Mapped.Cells {
		for k, in := range p.Mapped.Cells[ci].Inputs {
			if in.Kind == techmap.SigConst {
				continue
			}
			conns = append(conns, Connection{
				Src:  in,
				Sink: Sink{Cell: techmap.CellID(ci), Input: k},
			})
		}
	}
	for oi, sig := range p.Mapped.Outputs {
		if sig.Kind == techmap.SigConst {
			continue
		}
		conns = append(conns, Connection{
			Src:  sig,
			Sink: Sink{IsPort: true, Port: oi},
		})
	}
	return conns
}

func (r *Result) srcLoc(sig techmap.Signal) place.Loc {
	if sig.Kind == techmap.SigCell {
		return r.P.Cells[sig.Cell]
	}
	return r.P.InPorts[sig.Input]
}

func (r *Result) sinkLoc(s Sink) place.Loc {
	if s.IsPort {
		return r.P.OutPorts[s.Port]
	}
	return r.P.Cells[s.Cell]
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	cost float64
}

// routeScratch holds every buffer shortestPath needs, so the thousands of
// per-net searches a negotiation run performs share one set of
// allocations. Visited state is generation-stamped instead of cleared:
// bumping gen invalidates dist/prev/done for all nodes in O(1).
type routeScratch struct {
	dist    []float64
	prev    []int
	seenGen []uint32 // seenGen[n] == gen: dist/prev valid this search
	doneGen []uint32 // doneGen[n] == gen: node settled this search
	gen     uint32
	heap    []pqItem // manual binary min-heap (container/heap boxes items)
	path    []int
}

func newRouteScratch(nodes int) *routeScratch {
	s := &routeScratch{}
	s.ensure(nodes)
	return s
}

// ensure sizes the node-indexed buffers for a grid of n nodes.
func (s *routeScratch) ensure(n int) {
	if len(s.dist) >= n {
		return
	}
	s.dist = make([]float64, n)
	s.prev = make([]int, n)
	s.seenGen = make([]uint32, n)
	s.doneGen = make([]uint32, n)
	s.gen = 0
}

// nextGen starts a new search, handling the (theoretical) wraparound.
func (s *routeScratch) nextGen() {
	s.gen++
	if s.gen == 0 { // wrapped: stale stamps could collide, so clear
		for i := range s.seenGen {
			s.seenGen[i] = 0
			s.doneGen[i] = 0
		}
		s.gen = 1
	}
}

func (s *routeScratch) hpush(it pqItem) {
	s.heap = append(s.heap, it)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].cost <= s.heap[i].cost {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *routeScratch) hpop() pqItem {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && s.heap[l].cost < s.heap[min].cost {
			min = l
		}
		if r < last && s.heap[r].cost < s.heap[min].cost {
			min = r
		}
		if min == i {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
	return top
}

// Route produces a legal routing of p against the given channel capacity.
func Route(p *place.Placement, tracks int, opt Options) (*Result, error) {
	if tracks <= 0 {
		return nil, fmt.Errorf("route: non-positive track count %d", tracks)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 40
	}
	g := grid{w: p.W, h: p.H}
	res := &Result{P: p, Tracks: tracks, Conns: connections(p)}

	// Group connections into nets by driving signal: a net's fanout shares
	// one routing tree, so a channel segment carries a net once no matter
	// how many sinks lie beyond it.
	netOf := map[techmap.Signal][]int{}
	var netOrder []techmap.Signal
	for i := range res.Conns {
		s := res.Conns[i].Src
		if _, ok := netOf[s]; !ok {
			netOrder = append(netOrder, s)
		}
		netOf[s] = append(netOf[s], i)
	}

	occ := make([]int, g.numEdges())      // present occupancy
	hist := make([]float64, g.numEdges()) // history cost
	paths := make([][]int, len(res.Conns))
	inNet := make([]bool, g.numEdges()) // scratch: edges already in current net

	presFac := 0.5
	scratch := newRouteScratch(g.nodes())
	// One cost closure for the whole negotiation: it reads presFac and the
	// occupancy arrays by reference, so allocating it per connection (as a
	// literal in the loop would) is pure garbage-collector churn.
	cost := func(e edgeID) float64 {
		if inNet[e] {
			return 1e-4 // already carried by this net: reuse freely
		}
		over := float64(occ[e] + 1 - tracks)
		if over < 0 {
			over = 0
		}
		return (1 + hist[e]) * (1 + over*presFac)
	}
	var netEdges []edgeID
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// Rip up everything and re-route in order with current costs.
		for i := range occ {
			occ[i] = 0
		}
		for _, src := range netOrder {
			conns := netOf[src]
			netEdges = netEdges[:0]
			for _, i := range conns {
				c := &res.Conns[i]
				from, to := g.node(res.srcLoc(c.Src)), g.node(res.sinkLoc(c.Sink))
				path := scratch.shortestPath(g, from, to, cost)
				paths[i] = append(paths[i][:0], path...)
				for k := 0; k+1 < len(path); k++ {
					e := g.edgeBetween(path[k], path[k+1])
					if !inNet[e] {
						inNet[e] = true
						netEdges = append(netEdges, e)
						occ[e]++
					}
				}
			}
			for _, e := range netEdges {
				inNet[e] = false
			}
		}
		// Check for overuse.
		maxUse, over := 0, false
		for e, u := range occ {
			if u > maxUse {
				maxUse = u
			}
			if u > tracks {
				over = true
				hist[e] += float64(u - tracks)
			}
		}
		res.MaxUse = maxUse
		if !over {
			res.TotalHops = 0
			for i := range res.Conns {
				res.Conns[i].Path = make([]place.Loc, len(paths[i]))
				for k, n := range paths[i] {
					res.Conns[i].Path[k] = g.loc(n)
				}
				res.TotalHops += res.Conns[i].Hops()
			}
			return res, nil
		}
		presFac *= 1.6
	}
	return nil, fmt.Errorf("route: %s unroutable in %dx%d with %d tracks after %d iterations (max use %d)",
		p.Mapped.Name, p.W, p.H, tracks, maxIter, res.MaxUse)
}

// shortestPath runs Dijkstra over the grid with the given edge cost. The
// returned slice aliases the scratch buffer and is valid only until the
// next call; callers that keep a path must copy it. Beyond amortized
// buffer growth the search allocates nothing.
func (s *routeScratch) shortestPath(g grid, from, to int, cost func(edgeID) float64) []int {
	s.path = s.path[:0]
	if from == to {
		s.path = append(s.path, from)
		return s.path
	}
	s.ensure(g.nodes())
	s.nextGen()
	s.heap = s.heap[:0]
	s.dist[from] = 0
	s.prev[from] = -1
	s.seenGen[from] = s.gen
	s.hpush(pqItem{node: from})
	var nbuf [4]int
	for len(s.heap) > 0 {
		it := s.hpop()
		if s.doneGen[it.node] == s.gen {
			continue
		}
		s.doneGen[it.node] = s.gen
		if it.node == to {
			break
		}
		for _, nb := range g.neighbors(it.node, nbuf[:0]) {
			if s.doneGen[nb] == s.gen {
				continue
			}
			c := it.cost + cost(g.edgeBetween(it.node, nb))
			if s.seenGen[nb] != s.gen || c < s.dist[nb] {
				s.seenGen[nb] = s.gen
				s.dist[nb] = c
				s.prev[nb] = it.node
				s.hpush(pqItem{node: nb, cost: c})
			}
		}
	}
	if s.doneGen[to] != s.gen {
		panic("route: grid is connected; unreachable node")
	}
	for n := to; n != -1; n = s.prev[n] {
		s.path = append(s.path, n)
		if n == from {
			break
		}
	}
	for i, j := 0, len(s.path)-1; i < j; i, j = i+1, j-1 {
		s.path[i], s.path[j] = s.path[j], s.path[i]
	}
	return s.path
}

// CriticalPath returns the longest combinational delay through the routed
// design: LUT delay per logic level plus hop delay per channel segment,
// over all register-to-register, input-to-register, register-to-output
// and input-to-output paths.
func (r *Result) CriticalPath(lutDelay, hopDelay sim.Time) sim.Time {
	m := r.P.Mapped
	// hops[sink] for cell-input connections, indexed [cell][pin].
	hops := make(map[[2]int]int)
	outHops := make(map[int]int)
	for i := range r.Conns {
		c := &r.Conns[i]
		if c.Sink.IsPort {
			outHops[c.Sink.Port] = c.Hops()
		} else {
			hops[[2]int{int(c.Sink.Cell), c.Sink.Input}] = c.Hops()
		}
	}
	// arrival time of each cell's output (combinational cells only; FF
	// outputs and inputs are time-zero sources).
	arrival := make([]sim.Time, len(m.Cells))
	state := make([]uint8, len(m.Cells))
	crit := sim.Time(0)
	var arrive func(ci int) sim.Time
	inputArrival := func(ci int) sim.Time {
		worst := sim.Time(0)
		for k, in := range m.Cells[ci].Inputs {
			var src sim.Time
			switch in.Kind {
			case techmap.SigCell:
				if !m.Cells[in.Cell].UseFF {
					src = arrive(int(in.Cell))
				}
			case techmap.SigInput, techmap.SigConst:
				src = 0
			}
			t := src + sim.Time(hops[[2]int{ci, k}])*hopDelay
			if t > worst {
				worst = t
			}
		}
		return worst
	}
	arrive = func(ci int) sim.Time {
		if state[ci] == 2 {
			return arrival[ci]
		}
		if state[ci] == 1 {
			return 0 // cycles only via FFs; guarded by techmap validation
		}
		state[ci] = 1
		arrival[ci] = inputArrival(ci) + lutDelay
		state[ci] = 2
		return arrival[ci]
	}
	for ci := range m.Cells {
		// Every cell's D/LUT input path terminates a timing path when the
		// cell is registered; otherwise it contributes via consumers, but
		// we still take it as a lower bound (covers dangling comb cells).
		t := inputArrival(ci) + lutDelay
		if t > crit {
			crit = t
		}
	}
	for oi, sig := range m.Outputs {
		var src sim.Time
		if sig.Kind == techmap.SigCell && !m.Cells[sig.Cell].UseFF {
			src = arrive(int(sig.Cell))
		}
		t := src + sim.Time(outHops[oi])*hopDelay
		if t > crit {
			crit = t
		}
	}
	return crit
}
