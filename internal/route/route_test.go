package route

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/techmap"
)

func placed(t *testing.T, nl *netlist.Netlist) *place.Placement {
	t.Helper()
	m, err := techmap.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	w, h := place.Shape(m.NumCells())
	p, err := place.Place(m, w, h, place.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouteLibrarySample(t *testing.T) {
	for _, nl := range []*netlist.Netlist{
		netlist.Adder(8), netlist.Multiplier(4), netlist.Counter(8),
		netlist.ALU(8), netlist.LFSR(16, []int{15, 13, 12, 10}),
	} {
		p := placed(t, nl)
		r, err := Route(p, 12, Options{})
		if err != nil {
			t.Fatalf("%s: %v", nl.Name, err)
		}
		if r.MaxUse > 12 {
			t.Fatalf("%s: max use %d exceeds capacity", nl.Name, r.MaxUse)
		}
		if r.TotalHops <= 0 {
			t.Fatalf("%s: no hops routed", nl.Name)
		}
	}
}

func TestRouteCoversAllConnections(t *testing.T) {
	p := placed(t, netlist.Adder(8))
	r, err := Route(p, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Count expected connections: every non-const cell input + non-const output.
	want := 0
	for _, c := range p.Mapped.Cells {
		for _, in := range c.Inputs {
			if in.Kind != techmap.SigConst {
				want++
			}
		}
	}
	for _, o := range p.Mapped.Outputs {
		if o.Kind != techmap.SigConst {
			want++
		}
	}
	if len(r.Conns) != want {
		t.Fatalf("routed %d connections, want %d", len(r.Conns), want)
	}
	for i := range r.Conns {
		c := &r.Conns[i]
		if len(c.Path) == 0 {
			t.Fatalf("connection %d has empty path", i)
		}
		if c.Path[0] != r.srcLoc(c.Src) || c.Path[len(c.Path)-1] != r.sinkLoc(c.Sink) {
			t.Fatalf("connection %d endpoints wrong", i)
		}
		for k := 0; k+1 < len(c.Path); k++ {
			dx := c.Path[k+1].X - c.Path[k].X
			dy := c.Path[k+1].Y - c.Path[k].Y
			if dx*dx+dy*dy != 1 {
				t.Fatalf("connection %d path not orthogonally contiguous", i)
			}
		}
	}
}

func TestRouteRespectsCapacity(t *testing.T) {
	p := placed(t, netlist.Multiplier(4))
	r, err := Route(p, 6, Options{})
	if err != nil {
		t.Skipf("mul4 unroutable at 6 tracks in this placement: %v", err)
	}
	// Occupancy counts each net once per edge, however many sinks share it.
	g := grid{w: p.W, h: p.H}
	used := map[techmap.Signal]map[edgeID]bool{}
	for i := range r.Conns {
		c := &r.Conns[i]
		set := used[c.Src]
		if set == nil {
			set = map[edgeID]bool{}
			used[c.Src] = set
		}
		for k := 0; k+1 < len(c.Path); k++ {
			set[g.edgeBetween(g.node(c.Path[k]), g.node(c.Path[k+1]))] = true
		}
	}
	occ := make([]int, g.numEdges())
	for _, set := range used {
		for e := range set {
			occ[e]++
		}
	}
	for e, u := range occ {
		if u > 6 {
			t.Fatalf("edge %d used by %d nets with capacity 6", e, u)
		}
	}
}

func TestRouteFailsOnImpossibleCapacity(t *testing.T) {
	p := placed(t, netlist.Multiplier(6))
	if _, err := Route(p, 1, Options{MaxIterations: 5}); err == nil {
		t.Fatal("1-track routing of mul6 should fail")
	}
}

func TestRouteInvalidTracks(t *testing.T) {
	p := placed(t, netlist.Adder(4))
	if _, err := Route(p, 0, Options{}); err == nil {
		t.Fatal("0 tracks accepted")
	}
}

func TestCriticalPathPositiveAndScales(t *testing.T) {
	p := placed(t, netlist.Multiplier(4))
	r, err := Route(p, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp1 := r.CriticalPath(3*sim.Nanosecond, 1*sim.Nanosecond)
	if cp1 <= 0 {
		t.Fatalf("critical path %v", cp1)
	}
	cp2 := r.CriticalPath(6*sim.Nanosecond, 2*sim.Nanosecond)
	if cp2 != 2*cp1 {
		t.Fatalf("critical path does not scale linearly: %v vs %v", cp1, cp2)
	}
	// Deeper logic must have a longer critical path than a single LUT.
	if cp1 < sim.Time(p.Mapped.Depth)*3*sim.Nanosecond {
		t.Fatalf("critical path %v below depth*LUT %d", cp1, p.Mapped.Depth*3)
	}
}

func TestCriticalPathSequentialBounded(t *testing.T) {
	// A counter's register-to-register paths are short; the critical path
	// should be far below the whole-design-serial bound.
	p := placed(t, netlist.Counter(16))
	r, err := Route(p, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := r.CriticalPath(3*sim.Nanosecond, 1*sim.Nanosecond)
	if cp <= 0 {
		t.Fatal("zero critical path for sequential design")
	}
	serialBound := sim.Time(len(p.Mapped.Cells)) * 10 * sim.Nanosecond
	if cp > serialBound {
		t.Fatalf("critical path %v exceeds serial bound %v", cp, serialBound)
	}
}

func TestGridEdgeIndexing(t *testing.T) {
	g := grid{w: 4, h: 3}
	if g.numEdges() != (4-1)*3+4*(3-1) {
		t.Fatalf("numEdges = %d", g.numEdges())
	}
	seen := map[edgeID]bool{}
	for n := 0; n < g.nodes(); n++ {
		var buf [4]int
		for _, nb := range g.neighbors(n, buf[:0]) {
			e := g.edgeBetween(n, nb)
			if e < 0 || int(e) >= g.numEdges() {
				t.Fatalf("edge id %d out of range", e)
			}
			if g.edgeBetween(nb, n) != e {
				t.Fatal("edge id not symmetric")
			}
			seen[e] = true
		}
	}
	if len(seen) != g.numEdges() {
		t.Fatalf("enumerated %d distinct edges, want %d", len(seen), g.numEdges())
	}
}

func TestShortestPathStraightLine(t *testing.T) {
	g := grid{w: 5, h: 5}
	s := newRouteScratch(g.nodes())
	path := s.shortestPath(g, g.node(place.Loc{X: 0, Y: 2}), g.node(place.Loc{X: 4, Y: 2}),
		func(edgeID) float64 { return 1 })
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5", len(path))
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := grid{w: 3, h: 3}
	s := newRouteScratch(g.nodes())
	path := s.shortestPath(g, 4, 4, func(edgeID) float64 { return 1 })
	if len(path) != 1 || path[0] != 4 {
		t.Fatalf("self path = %v", path)
	}
}

func TestShortestPathAvoidsExpensiveEdges(t *testing.T) {
	// Make the direct row expensive; the path should detour.
	g := grid{w: 3, h: 2}
	direct := g.edgeBetween(g.node(place.Loc{X: 0, Y: 0}), g.node(place.Loc{X: 1, Y: 0}))
	s := newRouteScratch(g.nodes())
	path := s.shortestPath(g, g.node(place.Loc{X: 0, Y: 0}), g.node(place.Loc{X: 2, Y: 0}),
		func(e edgeID) float64 {
			if e == direct {
				return 100
			}
			return 1
		})
	if len(path) != 5 { // detour via row 1
		t.Fatalf("expected detour of 4 hops, got path %v", path)
	}
}

// TestShortestPathScratchReuse checks that a reused scratch returns the
// same paths as a fresh one: generation stamping must fully invalidate
// earlier searches, including ones over a different cost field.
func TestShortestPathScratchReuse(t *testing.T) {
	g := grid{w: 7, h: 5}
	reused := newRouteScratch(g.nodes())
	src := rng.New(42)
	costs := make([]float64, g.numEdges())
	for trial := 0; trial < 50; trial++ {
		for i := range costs {
			costs[i] = 0.1 + src.Float64()
		}
		cost := func(e edgeID) float64 { return costs[e] }
		from := src.Intn(g.nodes())
		to := src.Intn(g.nodes())
		got := reused.shortestPath(g, from, to, cost)
		want := newRouteScratch(g.nodes()).shortestPath(g, from, to, cost)
		if len(got) != len(want) {
			t.Fatalf("trial %d: path length %d != fresh %d", trial, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d: path diverges at hop %d: %v vs %v", trial, k, got, want)
			}
		}
	}
}

// BenchmarkRouteShortestPath locks in the allocation win: after warmup a
// search must not allocate (the scratch owns every buffer).
func BenchmarkRouteShortestPath(b *testing.B) {
	g := grid{w: 32, h: 16}
	s := newRouteScratch(g.nodes())
	cost := func(e edgeID) float64 { return 1 + float64(e%7)*0.25 }
	from, to := 0, g.nodes()-1
	s.shortestPath(g, from, to, cost) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.shortestPath(g, from, to, cost)
	}
}

func BenchmarkRouteAdder16(b *testing.B) {
	m, err := techmap.Map(netlist.Adder(16))
	if err != nil {
		b.Fatal(err)
	}
	w, h := place.Shape(m.NumCells())
	p, err := place.Place(m, w, h, place.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(p, 12, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
