package route

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rng"
	"repro/internal/techmap"
)

// TestFuzzRouteLegality routes randomly generated circuits and verifies
// the structural legality of every result: contiguous orthogonal paths,
// correct endpoints, and per-net channel occupancy within capacity.
func TestFuzzRouteLegality(t *testing.T) {
	for rep := 0; rep < 10; rep++ {
		seed := uint64(500 + rep)
		src := rng.New(seed)
		nl := netlist.Random(src, netlist.RandomConfig{
			Inputs:  src.Intn(10) + 2,
			Outputs: src.Intn(8) + 1,
			Gates:   src.Intn(80) + 10,
			DFFProb: src.Float64() * 0.3,
		})
		m, err := techmap.Map(nl)
		if err != nil {
			t.Fatalf("rep %d map: %v", rep, err)
		}
		if m.NumCells() == 0 {
			continue
		}
		w, h := place.Shape(m.NumCells())
		p, err := place.Place(m, w, h, place.Options{Seed: seed})
		if err != nil {
			t.Fatalf("rep %d place: %v", rep, err)
		}
		r, err := Route(p, 12, Options{})
		if err != nil {
			// Random dense designs may genuinely exceed capacity; a clean
			// error is acceptable, silent corruption is not.
			t.Logf("rep %d unroutable (acceptable): %v", rep, err)
			continue
		}
		// Path legality.
		for i := range r.Conns {
			c := &r.Conns[i]
			if len(c.Path) == 0 {
				t.Fatalf("rep %d: empty path", rep)
			}
			if c.Path[0] != r.srcLoc(c.Src) || c.Path[len(c.Path)-1] != r.sinkLoc(c.Sink) {
				t.Fatalf("rep %d: endpoints wrong", rep)
			}
			for k := 0; k+1 < len(c.Path); k++ {
				dx := c.Path[k+1].X - c.Path[k].X
				dy := c.Path[k+1].Y - c.Path[k].Y
				if dx*dx+dy*dy != 1 {
					t.Fatalf("rep %d: non-orthogonal hop", rep)
				}
				if c.Path[k].X < 0 || c.Path[k].X >= p.W || c.Path[k].Y < 0 || c.Path[k].Y >= p.H {
					t.Fatalf("rep %d: path leaves region", rep)
				}
			}
		}
		// Per-net occupancy within capacity.
		g := grid{w: p.W, h: p.H}
		used := map[techmap.Signal]map[edgeID]bool{}
		for i := range r.Conns {
			c := &r.Conns[i]
			set := used[c.Src]
			if set == nil {
				set = map[edgeID]bool{}
				used[c.Src] = set
			}
			for k := 0; k+1 < len(c.Path); k++ {
				set[g.edgeBetween(g.node(c.Path[k]), g.node(c.Path[k+1]))] = true
			}
		}
		occ := make([]int, g.numEdges())
		for _, set := range used {
			for e := range set {
				occ[e]++
			}
		}
		for e, u := range occ {
			if u > 12 {
				t.Fatalf("rep %d: edge %d carries %d nets (capacity 12)", rep, e, u)
			}
		}
		// Timing is well-defined.
		if cp := r.CriticalPath(3, 1); cp < 0 {
			t.Fatalf("rep %d: negative critical path", rep)
		}
	}
}
