package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Geometry = fabric.Geometry{Cols: 24, Rows: 8, TracksPerChannel: 12, PinsPerSide: 24}
	e := core.NewEngine(opt)
	for _, nl := range []*netlist.Netlist{netlist.Adder(8), netlist.Parity(16), netlist.Counter(8)} {
		if err := e.AddCircuit(nl); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func fpgaOp(circuit string, evals int64) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Evaluations: evals})
}

func TestExclusiveSerializes(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	x := NewExclusive(k, e)
	os := hostos.New(k, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond}, x)
	x.AttachOS(os)
	a, _ := os.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100_000), hostos.Compute(2 * sim.Millisecond)})
	b, _ := os.Spawn("b", 0, []hostos.Op{hostos.Compute(100 * sim.Microsecond), fpgaOp("parity16", 100)})
	k.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if b.BlockWait == 0 {
		t.Fatal("b should have waited for the exclusive device")
	}
	if b.Finished <= a.Finished {
		t.Fatal("b must finish after a exits")
	}
	if e.M.Blocks.Value() == 0 {
		t.Fatal("blocks not counted")
	}
	if x.Holder() != nil {
		t.Fatal("device not released")
	}
}

func TestExclusiveNonPreemptable(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	x := NewExclusive(k, e)
	os := hostos.New(k, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond}, x)
	x.AttachOS(os)
	hw, _ := os.Spawn("hw", 0, []hostos.Op{fpgaOp("adder8", 400_000)})
	os.Spawn("cpu", 0, []hostos.Op{hostos.Compute(sim.Millisecond)})
	k.Run()
	if hw.Preemptions != 0 {
		t.Fatal("exclusive op was preempted")
	}
}

func TestExclusiveSameTaskSwitchesCircuits(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	x := NewExclusive(k, e)
	os := hostos.New(k, hostos.Config{Policy: hostos.FIFO}, x)
	x.AttachOS(os)
	a, _ := os.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 10), fpgaOp("parity16", 10), fpgaOp("adder8", 10)})
	k.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if e.M.Loads.Value() != 3 {
		t.Fatalf("loads = %d, want 3 (holder may still reconfigure)", e.M.Loads.Value())
	}
}

func TestMergedZeroReconfig(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	m, initCost, err := NewMerged(k, e, []string{"adder8", "parity16"})
	if err != nil {
		t.Fatal(err)
	}
	if initCost <= 0 {
		t.Fatal("no init cost")
	}
	loadsAfterInit := e.M.Loads.Value()
	os := hostos.New(k, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond}, m)
	a, _ := os.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000), fpgaOp("parity16", 1000), fpgaOp("adder8", 1000)})
	k.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if e.M.Loads.Value() != loadsAfterInit {
		t.Fatal("merged baseline reconfigured at run time")
	}
	if a.Overhead >= sim.Millisecond {
		t.Fatalf("merged overhead %v should be tiny", a.Overhead)
	}
}

func TestMergedRejectsOversizedSet(t *testing.T) {
	k := sim.New()
	opt := core.DefaultOptions()
	opt.Geometry = fabric.Geometry{Cols: 4, Rows: 8, TracksPerChannel: 12, PinsPerSide: 24}
	e := core.NewEngine(opt)
	if err := e.AddCircuit(netlist.Adder(8)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddCircuit(netlist.Multiplier(4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewMerged(k, e, []string{"adder8", "mul4"}); err == nil {
		t.Fatal("merged set larger than device accepted")
	}
}

func TestMergedRejectsUnknownCircuit(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	m, _, err := NewMerged(k, e, []string{"adder8"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(nil, "parity16"); err == nil {
		t.Fatal("unmerged circuit registered")
	}
}

func TestSoftwareSlowdown(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	s := NewSoftware(e, 20)
	os := hostos.New(k, hostos.Config{Policy: hostos.FIFO}, s)
	a, _ := os.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000)})
	k.Run()
	hwTime := sim.Time(1000) * e.Lib["adder8"].ClockPeriod
	if a.HWTime != 20*hwTime {
		t.Fatalf("software time %v, want %v", a.HWTime, 20*hwTime)
	}
	if e.M.Loads.Value() != 0 {
		t.Fatal("software baseline loaded a bitstream")
	}
}

func TestSoftwareDefaultSlowdown(t *testing.T) {
	if NewSoftware(testEngine(t), 0).Slowdown != 20 {
		t.Fatal("default slowdown not applied")
	}
}

func TestSoftwarePreemptionLossless(t *testing.T) {
	k := sim.New()
	e := testEngine(t)
	s := NewSoftware(e, 10)
	os := hostos.New(k, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond}, s)
	hw, _ := os.Spawn("hw", 0, []hostos.Op{fpgaOp("adder8", 40_000)})
	os.Spawn("cpu", 0, []hostos.Op{hostos.Compute(3 * sim.Millisecond)})
	k.Run()
	want := sim.Time(40_000) * e.Lib["adder8"].ClockPeriod * 10
	if hw.HWTime != want {
		t.Fatalf("software HW time %v, want %v", hw.HWTime, want)
	}
}
