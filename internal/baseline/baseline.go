// Package baseline implements the comparison points the paper argues
// against (or names as limiting cases):
//
//   - Exclusive — §4's "more drastic solution": the FPGA is a
//     non-preemptable resource held by one task until it completes, with
//     everyone else suspended ("implicitly forcing the scheduling to a
//     strictly FIFO policy");
//   - Merged — §3's "trivial solution": if the FPGA is large enough,
//     merge all circuits into one configuration and never reconfigure;
//   - Software — run the algorithm on the host processor instead, at the
//     slowdown the paper's motivation assumes FPGAs exist to avoid.
//
// All three implement hostos.FPGA, so experiments swap them for the VFPGA
// managers without touching the workload.
package baseline

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// Exclusive models the non-preemptable FPGA: the first task to use it
// holds it until exit; reconfiguration happens only between holders.
type Exclusive struct {
	E  *core.Engine
	K  *sim.Kernel
	OS *hostos.OS

	holder   *hostos.Task
	resident string
	pins     []int
	mux      int
	waiters  []*hostos.Task
}

var _ hostos.FPGA = (*Exclusive)(nil)

// NewExclusive returns an exclusive-FPGA baseline over the engine.
func NewExclusive(k *sim.Kernel, e *core.Engine) *Exclusive {
	return &Exclusive{E: e, K: k}
}

// AttachOS wires the baseline to the OS for unblocking waiters.
func (x *Exclusive) AttachOS(os *hostos.OS) { x.OS = os }

// Register implements hostos.FPGA.
func (x *Exclusive) Register(t *hostos.Task, circuit string) error {
	_, err := x.E.Circuit(circuit)
	return err
}

func (x *Exclusive) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := x.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// Acquire implements hostos.FPGA: the device is granted whole, FIFO.
func (x *Exclusive) Acquire(t *hostos.Task) (sim.Time, bool) {
	if x.holder != nil && x.holder != t {
		x.E.M.Blocks.Inc()
		x.waiters = append(x.waiters, t)
		return 0, false
	}
	x.holder = t
	c := x.circuitOf(t)
	if x.resident == c.Name {
		return 0, true
	}
	var cost sim.Time
	if x.resident != "" {
		old, _ := x.E.Circuit(x.resident)
		x.E.Dev.ClearRegion(old.BS.Region(0, 0))
		x.E.FreePins(x.pins)
		x.E.M.Evictions.Inc()
	}
	pins, mux, err := x.E.AllocPins(c.BS.NumIn + c.BS.NumOut)
	if err != nil {
		panic(fmt.Sprintf("baseline: %v", err))
	}
	in, out := pinBinding(c, pins)
	if _, _, err := c.BS.Apply(x.E.Dev, 0, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
		panic(fmt.Sprintf("baseline: apply %s: %v", c.Name, err))
	}
	if x.E.Opt.Timing.PartialReconfig {
		cost = c.BS.ConfigCost(x.E.Opt.Timing)
	} else {
		cost = x.E.Opt.Timing.FullConfigTime(x.E.Opt.Geometry)
	}
	x.E.M.Loads.Inc()
	x.E.M.ConfigTime += cost
	x.resident = c.Name
	x.pins = pins
	x.mux = mux
	return cost, true
}

// ExecTime implements hostos.FPGA.
func (x *Exclusive) ExecTime(t *hostos.Task) sim.Time {
	c := x.circuitOf(t)
	req := t.CurrentRequest()
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	mux := x.mux
	if mux == 0 {
		mux = 1
	}
	return x.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA: never (the defining property).
func (x *Exclusive) Preemptable(t *hostos.Task) bool { return false }

// Preempt implements hostos.FPGA; unreachable given Preemptable.
func (x *Exclusive) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	panic("baseline: exclusive FPGA cannot be preempted")
}

// Resume implements hostos.FPGA; in-flight ops are never interrupted, so
// resuming costs nothing (the op state is intact).
func (x *Exclusive) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA: the resource stays with the holder.
func (x *Exclusive) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA: the holder's exit releases the device.
func (x *Exclusive) Remove(t *hostos.Task) {
	if x.holder != t {
		return
	}
	x.holder = nil
	ws := x.waiters
	x.waiters = nil
	for _, w := range ws {
		x.OS.Unblock(w)
	}
}

// Holder returns the task currently owning the device (nil if free).
func (x *Exclusive) Holder() *hostos.Task { return x.holder }

// Merged models the all-circuits-in-one configuration: every registered
// circuit is loaded side by side at initialization and never moves. It
// fails construction when the device is too small — which is exactly the
// regime the VFPGA exists for.
type Merged struct {
	E     *core.Engine
	K     *sim.Kernel
	slots map[string]int // circuit -> strip origin column
	muxOf map[string]int
}

var _ hostos.FPGA = (*Merged)(nil)

// NewMerged loads every circuit in the engine library (in the given
// deterministic order) side by side. It returns the initialization cost
// (one big download) or an error if the circuits do not all fit.
func NewMerged(k *sim.Kernel, e *core.Engine, order []string) (*Merged, sim.Time, error) {
	m := &Merged{E: e, K: k, slots: map[string]int{}, muxOf: map[string]int{}}
	x := 0
	var cost sim.Time
	for _, name := range order {
		c, err := e.Circuit(name)
		if err != nil {
			return nil, 0, err
		}
		if x+c.BS.W > e.Opt.Geometry.Cols {
			return nil, 0, fmt.Errorf("baseline: merged circuits need more than %d columns (%s does not fit at %d)",
				e.Opt.Geometry.Cols, name, x)
		}
		pins, mux, err := e.AllocPins(c.BS.NumIn + c.BS.NumOut)
		if err != nil {
			return nil, 0, err
		}
		in, out := pinBinding(c, pins)
		if _, _, err := c.BS.Apply(e.Dev, x, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
			return nil, 0, err
		}
		m.slots[name] = x
		m.muxOf[name] = mux
		cost += c.BS.ConfigCost(e.Opt.Timing)
		e.M.Loads.Inc()
		x += c.BS.W
	}
	e.M.ConfigTime += cost
	return m, cost, nil
}

// Register implements hostos.FPGA.
func (m *Merged) Register(t *hostos.Task, circuit string) error {
	if _, ok := m.slots[circuit]; !ok {
		return fmt.Errorf("baseline: circuit %q not merged at init", circuit)
	}
	return nil
}

// Acquire implements hostos.FPGA: everything is always loaded.
func (m *Merged) Acquire(t *hostos.Task) (sim.Time, bool) { return 0, true }

// ExecTime implements hostos.FPGA.
func (m *Merged) ExecTime(t *hostos.Task) sim.Time {
	req := t.CurrentRequest()
	c, err := m.E.Circuit(req.Circuit)
	if err != nil {
		panic(err)
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return m.E.ExecQuantum(pure, m.muxOf[req.Circuit])
}

// Preemptable implements hostos.FPGA: circuits never move, so preemption
// is free.
func (m *Merged) Preemptable(t *hostos.Task) bool { return true }

// Preempt implements hostos.FPGA.
func (m *Merged) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA.
func (m *Merged) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA.
func (m *Merged) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA.
func (m *Merged) Remove(t *hostos.Task) {}

// Software runs every "FPGA" operation on the host CPU at a slowdown
// factor — the no-FPGA null hypothesis of the paper's motivation.
type Software struct {
	E *core.Engine
	// Slowdown multiplies the hardware execution time (the paper's
	// motivation: general-purpose processors "cannot satisfy performance
	// requirements"). Typical datapaths gain 10-100x on FPGAs.
	Slowdown int64
}

var _ hostos.FPGA = (*Software)(nil)

// NewSoftware returns a software-execution baseline.
func NewSoftware(e *core.Engine, slowdown int64) *Software {
	if slowdown <= 0 {
		slowdown = 20
	}
	return &Software{E: e, Slowdown: slowdown}
}

// Register implements hostos.FPGA.
func (s *Software) Register(t *hostos.Task, circuit string) error {
	_, err := s.E.Circuit(circuit)
	return err
}

// Acquire implements hostos.FPGA: there is nothing to load.
func (s *Software) Acquire(t *hostos.Task) (sim.Time, bool) { return 0, true }

// ExecTime implements hostos.FPGA.
func (s *Software) ExecTime(t *hostos.Task) sim.Time {
	req := t.CurrentRequest()
	c, err := s.E.Circuit(req.Circuit)
	if err != nil {
		panic(err)
	}
	return sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod * sim.Time(s.Slowdown)
}

// Preemptable implements hostos.FPGA: software state lives in memory.
func (s *Software) Preemptable(t *hostos.Task) bool { return true }

// Preempt implements hostos.FPGA: no work is lost.
func (s *Software) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	return 0, done
}

// Resume implements hostos.FPGA.
func (s *Software) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA.
func (s *Software) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA.
func (s *Software) Remove(t *hostos.Task) {}

// pinBinding mirrors core's wrap-around binding for baselines.
func pinBinding(c *compile.Circuit, pins []int) ([]int, []int) {
	in := make([]int, c.BS.NumIn)
	out := make([]int, c.BS.NumOut)
	if len(pins) == 0 {
		for i := range in {
			in[i] = -1
		}
		for i := range out {
			out[i] = -1
		}
		return in, out
	}
	k := 0
	for i := range in {
		in[i] = pins[k%len(pins)]
		k++
	}
	for i := range out {
		out[i] = pins[k%len(pins)]
		k++
	}
	return in, out
}
