// Package baseline implements the comparison points the paper argues
// against (or names as limiting cases):
//
//   - Exclusive — §4's "more drastic solution": the FPGA is a
//     non-preemptable resource held by one task until it completes, with
//     everyone else suspended ("implicitly forcing the scheduling to a
//     strictly FIFO policy");
//   - Merged — §3's "trivial solution": if the FPGA is large enough,
//     merge all circuits into one configuration and never reconfigure;
//   - Software — run the algorithm on the host processor instead, at the
//     slowdown the paper's motivation assumes FPGAs exist to avoid.
//
// All three implement hostos.FPGA, so experiments swap them for the VFPGA
// managers without touching the workload. The device-backed baselines go
// through the same residency ledger as the managers, so their costs and
// metrics are charged identically and their runs are traceable.
package baseline

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// Exclusive models the non-preemptable FPGA: the first task to use it
// holds it until exit; reconfiguration happens only between holders.
type Exclusive struct {
	E  *core.Engine
	K  *sim.Kernel
	OS *hostos.OS

	holder  *hostos.Task
	waiters []*hostos.Task
}

var _ hostos.FPGA = (*Exclusive)(nil)

// NewExclusive returns an exclusive-FPGA baseline over the engine.
func NewExclusive(k *sim.Kernel, e *core.Engine) *Exclusive {
	e.Ledger().Bind(k)
	return &Exclusive{E: e, K: k}
}

// AttachOS wires the baseline to the OS for unblocking waiters.
func (x *Exclusive) AttachOS(os *hostos.OS) { x.OS = os }

// ResetForJob returns the baseline to its post-construction state (no
// holder, no waiters) for warm-board reuse. The device configuration a
// past holder left resident is cleared by the engine's pristine-image
// restore, which runs alongside this.
func (x *Exclusive) ResetForJob() {
	x.holder = nil
	x.waiters = nil
}

// Register implements hostos.FPGA.
func (x *Exclusive) Register(t *hostos.Task, circuit string) error {
	_, err := x.E.Circuit(circuit)
	return err
}

func (x *Exclusive) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := x.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// Acquire implements hostos.FPGA: the device is granted whole, FIFO.
func (x *Exclusive) Acquire(t *hostos.Task) (sim.Time, bool) {
	led := x.E.Ledger()
	if x.holder != nil && x.holder != t {
		led.NoteBlock(t.Name)
		x.waiters = append(x.waiters, t)
		return 0, false
	}
	x.holder = t
	c := x.circuitOf(t)
	if r := led.ResidentAt(0); r != nil {
		if r.Circuit == c.Name {
			return 0, true
		}
		led.Evict(0)
	}
	// Without partial reconfiguration the whole device is rewritten.
	_, cost := led.Load(t.Name, c, 0, true)
	return cost, true
}

// ExecTime implements hostos.FPGA.
func (x *Exclusive) ExecTime(t *hostos.Task) sim.Time {
	c := x.circuitOf(t)
	req := t.CurrentRequest()
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	mux := 1
	if r := x.E.Ledger().ResidentAt(0); r != nil {
		mux = r.Mux
	}
	return x.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA: never (the defining property).
func (x *Exclusive) Preemptable(t *hostos.Task) bool { return false }

// Preempt implements hostos.FPGA; unreachable given Preemptable.
func (x *Exclusive) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	panic("baseline: exclusive FPGA cannot be preempted")
}

// Resume implements hostos.FPGA; in-flight ops are never interrupted, so
// resuming costs nothing (the op state is intact).
func (x *Exclusive) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA: the resource stays with the holder.
func (x *Exclusive) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA: the holder's exit releases the device.
// The configuration stays resident (the next holder may want it).
func (x *Exclusive) Remove(t *hostos.Task) {
	if x.holder != t {
		return
	}
	x.holder = nil
	ws := x.waiters
	x.waiters = nil
	for _, w := range ws {
		x.OS.Unblock(w)
	}
}

// Holder returns the task currently owning the device (nil if free).
func (x *Exclusive) Holder() *hostos.Task { return x.holder }

// LintTargets implements core.LintTargeter.
func (x *Exclusive) LintTargets() []*lint.Target {
	return []*lint.Target{x.E.Ledger().LintTarget("exclusive")}
}

// Merged models the all-circuits-in-one configuration: every registered
// circuit is loaded side by side at initialization and never moves. It
// fails construction when the device is too small — which is exactly the
// regime the VFPGA exists for.
type Merged struct {
	E     *core.Engine
	K     *sim.Kernel
	slots map[string]int // circuit -> strip origin column
}

var _ hostos.FPGA = (*Merged)(nil)

// NewMerged loads every circuit in the engine library (in the given
// deterministic order) side by side. It returns the initialization cost
// (one big download) or an error if the circuits do not all fit.
func NewMerged(k *sim.Kernel, e *core.Engine, order []string) (*Merged, sim.Time, error) {
	e.Ledger().Bind(k)
	m := &Merged{E: e, K: k, slots: map[string]int{}}
	led := e.Ledger()
	x := 0
	var cost sim.Time
	for _, name := range order {
		c, err := e.Circuit(name)
		if err != nil {
			return nil, 0, err
		}
		if x+c.BS.W > e.Opt.Geometry.Cols {
			return nil, 0, fmt.Errorf("baseline: merged circuits need more than %d columns (%s does not fit at %d)",
				e.Opt.Geometry.Cols, name, x)
		}
		_, loadCost, err := led.TryLoad("", c, x, false)
		if err != nil {
			return nil, 0, err
		}
		m.slots[name] = x
		cost += loadCost
		x += c.BS.W
	}
	return m, cost, nil
}

// ResetForJob is a no-op: the merged configuration is loaded once at
// construction and never changes, and the slot table is immutable. Warm
// reuse is valid only when the engine is reset to the pristine image
// captured after this baseline's construction, with the same compiled
// circuits.
func (m *Merged) ResetForJob() {}

// Register implements hostos.FPGA.
func (m *Merged) Register(t *hostos.Task, circuit string) error {
	if _, ok := m.slots[circuit]; !ok {
		return fmt.Errorf("baseline: circuit %q not merged at init", circuit)
	}
	return nil
}

// Acquire implements hostos.FPGA: everything is always loaded.
func (m *Merged) Acquire(t *hostos.Task) (sim.Time, bool) { return 0, true }

// ExecTime implements hostos.FPGA.
func (m *Merged) ExecTime(t *hostos.Task) sim.Time {
	req := t.CurrentRequest()
	c, err := m.E.Circuit(req.Circuit)
	if err != nil {
		panic(err)
	}
	mux := 1
	if r := m.E.Ledger().ResidentAt(m.slots[req.Circuit]); r != nil {
		mux = r.Mux
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return m.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA: circuits never move, so preemption
// is free.
func (m *Merged) Preemptable(t *hostos.Task) bool { return true }

// Preempt implements hostos.FPGA.
func (m *Merged) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA.
func (m *Merged) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA.
func (m *Merged) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA.
func (m *Merged) Remove(t *hostos.Task) {}

// LintTargets implements core.LintTargeter.
func (m *Merged) LintTargets() []*lint.Target {
	return []*lint.Target{m.E.Ledger().LintTarget("merged")}
}

// Software runs every "FPGA" operation on the host CPU at a slowdown
// factor — the no-FPGA null hypothesis of the paper's motivation.
type Software struct {
	E *core.Engine
	// Slowdown multiplies the hardware execution time (the paper's
	// motivation: general-purpose processors "cannot satisfy performance
	// requirements"). Typical datapaths gain 10-100x on FPGAs.
	Slowdown int64
}

var _ hostos.FPGA = (*Software)(nil)

// NewSoftware returns a software-execution baseline.
func NewSoftware(e *core.Engine, slowdown int64) *Software {
	if slowdown <= 0 {
		slowdown = 20
	}
	return &Software{E: e, Slowdown: slowdown}
}

// ResetForJob is a no-op: software execution keeps no cross-job state.
func (s *Software) ResetForJob() {}

// Register implements hostos.FPGA.
func (s *Software) Register(t *hostos.Task, circuit string) error {
	_, err := s.E.Circuit(circuit)
	return err
}

// Acquire implements hostos.FPGA: there is nothing to load.
func (s *Software) Acquire(t *hostos.Task) (sim.Time, bool) { return 0, true }

// ExecTime implements hostos.FPGA.
func (s *Software) ExecTime(t *hostos.Task) sim.Time {
	req := t.CurrentRequest()
	c, err := s.E.Circuit(req.Circuit)
	if err != nil {
		panic(err)
	}
	return sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod * sim.Time(s.Slowdown)
}

// Preemptable implements hostos.FPGA: software state lives in memory.
func (s *Software) Preemptable(t *hostos.Task) bool { return true }

// Preempt implements hostos.FPGA: no work is lost.
func (s *Software) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	return 0, done
}

// Resume implements hostos.FPGA.
func (s *Software) Resume(t *hostos.Task) sim.Time { return 0 }

// Complete implements hostos.FPGA.
func (s *Software) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA.
func (s *Software) Remove(t *hostos.Task) {}

// LintTargets implements core.LintTargeter: nothing on a device, but an
// empty device target keeps the verifier wiring uniform.
func (s *Software) LintTargets() []*lint.Target {
	return []*lint.Target{s.E.Ledger().LintTarget("software")}
}
