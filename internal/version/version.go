// Package version derives one identification string for every binary in
// this module from the build metadata the Go toolchain embeds: module
// version (for tagged builds), VCS revision and dirty marker. Deployed
// binaries report it via -version; vfpgad additionally serves it in
// /healthz and as a build-info metric label.
package version

import (
	"fmt"
	"runtime/debug"
)

// String returns the module version string, e.g.
//
//	(devel) rev 1a2b3c4d5e6f (modified), go1.24.0
//
// It degrades gracefully when build info is unavailable (go run of a
// single file, stripped test binaries).
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev string
	modified := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	out := v
	if rev != "" {
		out += " rev " + rev
		if modified {
			out += " (modified)"
		}
	}
	return fmt.Sprintf("%s, %s", out, bi.GoVersion)
}
