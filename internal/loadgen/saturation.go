package loadgen

import (
	"fmt"

	"repro/internal/workload"
)

// CurvePoint is one offered-load step of a throughput curve: the model
// replayed at one speedup.
type CurvePoint struct {
	Speedup        float64 `json:"speedup"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	P50Ns          int64   `json:"p50_ns"`
	P95Ns          int64   `json:"p95_ns"`
	P99Ns          int64   `json:"p99_ns"`
	Throttled      int     `json:"throttled"`
	SLOMet         bool    `json:"slo_met"`
}

func pointAt(tr *workload.Trace, outcomes []Outcome, cfg ModelConfig, slo SLO) (CurvePoint, error) {
	res, err := Replay(tr, outcomes, cfg)
	if err != nil {
		return CurvePoint{}, err
	}
	s := &res.Summary
	return CurvePoint{
		Speedup:        cfg.Speedup,
		OfferedPerSec:  s.OfferedPerSec,
		AchievedPerSec: s.AchievedPerSec,
		P50Ns:          s.P50Ns,
		P95Ns:          s.P95Ns,
		P99Ns:          s.P99Ns,
		Throttled:      s.Throttled,
		SLOMet:         slo.Met(s),
	}, nil
}

// Curve replays the trace at each speedup in order and returns one point
// per step: the offered-vs-achieved throughput curve with its latency
// quantiles. Execution happens once (outcomes are reused); each point is
// a pure model replay.
func Curve(tr *workload.Trace, outcomes []Outcome, base ModelConfig, speedups []float64, slo SLO) ([]CurvePoint, error) {
	if len(speedups) == 0 {
		return nil, fmt.Errorf("loadgen: curve needs at least one speedup")
	}
	pts := make([]CurvePoint, 0, len(speedups))
	for _, sp := range speedups {
		cfg := base
		cfg.Speedup = sp
		pt, err := pointAt(tr, outcomes, cfg, slo)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// SaturationPoint is the outcome of a saturation search: the highest
// offered load (speedup) at which the SLO still held.
type SaturationPoint struct {
	SLO string `json:"slo"`
	// Met is false when even the lowest probed speedup violated the SLO;
	// the point fields then describe that lowest probe.
	Met bool `json:"met"`
	// Saturated is false when the highest probed speedup still met the
	// SLO — the search never found the wall inside [lo, hi].
	Saturated bool       `json:"saturated"`
	Point     CurvePoint `json:"point"`
}

// Saturate binary-searches speedup in [lo, hi] for the highest offered
// load whose replay still meets the SLO. iters halvings bound the work;
// the search is over a deterministic model, so the result is exact to
// the final interval width and reproducible.
func Saturate(tr *workload.Trace, outcomes []Outcome, base ModelConfig, slo SLO, lo, hi float64, iters int) (SaturationPoint, error) {
	if !(lo > 0) || hi < lo || iters <= 0 {
		return SaturationPoint{}, fmt.Errorf("loadgen: saturation search needs 0 < lo <= hi and iters > 0")
	}
	at := func(sp float64) (CurvePoint, error) {
		cfg := base
		cfg.Speedup = sp
		return pointAt(tr, outcomes, cfg, slo)
	}
	loPt, err := at(lo)
	if err != nil {
		return SaturationPoint{}, err
	}
	if !loPt.SLOMet {
		return SaturationPoint{SLO: slo.String(), Met: false, Saturated: true, Point: loPt}, nil
	}
	hiPt, err := at(hi)
	if err != nil {
		return SaturationPoint{}, err
	}
	if hiPt.SLOMet {
		return SaturationPoint{SLO: slo.String(), Met: true, Saturated: false, Point: hiPt}, nil
	}
	best := loPt
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		pt, err := at(mid)
		if err != nil {
			return SaturationPoint{}, err
		}
		if pt.SLOMet {
			best, lo = pt, mid
		} else {
			hi = mid
		}
	}
	return SaturationPoint{SLO: slo.String(), Met: true, Saturated: true, Point: best}, nil
}
