// Package loadgen is the open-loop, trace-driven load harness of the
// serving stack: arrival-process generators that record workload.Trace
// files, and a deterministic replay pipeline that turns a trace plus the
// measured outcome of each submission into latency quantiles, per-tenant
// error/throttle breakdowns, offered-vs-achieved throughput curves, and
// a saturation point under a declared latency SLO.
//
// The split that makes replay reproducible: executing a trace entry on
// the serving stack yields a virtual-time Outcome (the job's makespan is
// a pure function of the spec — the warm-board equivalence suite pins
// that), and everything else — queueing, admission, latency, saturation
// — is computed here in virtual time by a K-server FIFO model. Real
// submissions happen at the wall-clock boundary (cmd/vfpgaload paces
// them open-loop against a live daemon); the numbers the harness emits
// are all virtual, so the same trace file and speedup produce
// byte-identical CSV and JSON results on every run, single node or
// fleet. This package is therefore under the determinism contract:
//
//vfpgavet:deterministic
package loadgen

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Outcome is what actually running one trace entry on the serving stack
// produced: the job's virtual makespan, and whether it failed (with the
// typed injected-fault kind when the failure was a chaos-campaign
// casualty). Outcomes are pure values: equal specs yield equal outcomes.
type Outcome struct {
	Service   sim.Time `json:"service_ns"`
	Failed    bool     `json:"failed,omitempty"`
	FaultKind string   `json:"fault_kind,omitempty"`
}

// RunFunc executes one submission on the serving stack and reports its
// outcome. A non-nil error aborts the whole replay (infrastructure
// broke); a job that merely failed comes back as Outcome.Failed.
type RunFunc func(tenant string, spec *workload.Spec) (Outcome, error)

// Execute runs every trace entry through run, in entry order, and
// returns the per-entry outcomes the model consumes. Implementations
// that memoize by spec (serve.NewDirectRunner) make this cheap for
// traces with repeated specs.
func Execute(tr *workload.Trace, run RunFunc) ([]Outcome, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	out := make([]Outcome, len(tr.Entries))
	for i := range tr.Entries {
		e := &tr.Entries[i]
		o, err := run(e.Tenant, &e.Spec)
		if err != nil {
			return nil, fmt.Errorf("loadgen: entry %d (%s/%s): %w", i, e.Tenant, e.Spec.Scenario, err)
		}
		out[i] = o
	}
	return out, nil
}
