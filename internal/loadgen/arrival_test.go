package loadgen_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/workload"
)

func poissonConfig(jobs int) loadgen.GenConfig {
	return loadgen.GenConfig{
		Arrival:      loadgen.ArrivalPoisson,
		Jobs:         jobs,
		MeanInterval: sim.Time(1 * 1e6), // 1ms
		Seed:         42,
		Mix:          loadgen.DefaultMix(3),
	}
}

func interArrivals(tr *workload.Trace) []float64 {
	gaps := make([]float64, 0, len(tr.Entries))
	prev := sim.Time(0)
	for _, e := range tr.Entries {
		gaps = append(gaps, float64(e.At-prev))
		prev = e.At
	}
	return gaps
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Poisson arrivals must be exponential: sample mean near MeanInterval
// and coefficient of variation near 1.
func TestPoissonInterArrivalShape(t *testing.T) {
	cfg := poissonConfig(20000)
	tr, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != cfg.Jobs {
		t.Fatalf("generated %d entries, want %d", len(tr.Entries), cfg.Jobs)
	}
	mean, std := meanStd(interArrivals(tr))
	want := float64(cfg.MeanInterval)
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("inter-arrival mean = %.0f ns, want within 3%% of %.0f", mean, want)
	}
	cv := std / mean
	if cv < 0.95 || cv > 1.05 {
		t.Fatalf("inter-arrival CV = %.3f, want ~1 for exponential gaps", cv)
	}
}

// On-off arrivals must be bursty: overall rate diluted by the duty
// cycle On/(On+Off), and gap CV well above the Poisson 1.
func TestOnOffDutyCycleShape(t *testing.T) {
	cfg := loadgen.GenConfig{
		Arrival:      loadgen.ArrivalOnOff,
		Jobs:         20000,
		MeanInterval: sim.Time(100 * 1e3), // 0.1ms while on
		OnMean:       sim.Time(10 * 1e6),  // 10ms bursts
		OffMean:      sim.Time(10 * 1e6),  // 10ms silences
		Seed:         7,
		Mix:          loadgen.DefaultMix(2),
	}
	tr, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Duty cycle 0.5 => effective mean gap ~ MeanInterval/0.5.
	mean, std := meanStd(interArrivals(tr))
	want := float64(cfg.MeanInterval) * (float64(cfg.OnMean+cfg.OffMean) / float64(cfg.OnMean))
	if math.Abs(mean-want)/want > 0.10 {
		t.Fatalf("on-off effective mean gap = %.0f ns, want within 10%% of %.0f", mean, want)
	}
	if cv := std / mean; cv < 2 {
		t.Fatalf("on-off gap CV = %.3f, want >= 2 (burstier than Poisson)", cv)
	}
}

// Same config must regenerate the identical trace, byte for byte, and
// the mix stream must not perturb the arrival clock.
func TestGenerateDeterministicAndSplitStreams(t *testing.T) {
	cfg := poissonConfig(500)
	a, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bw, err := b.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aw, bw) {
		t.Fatal("same GenConfig produced different traces")
	}

	narrow := cfg
	narrow.Mix = []loadgen.MixEntry{{Tenant: "solo", Scenario: "multimedia", Weight: 1}}
	c, err := loadgen.Generate(narrow)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Entries {
		if a.Entries[i].At != c.Entries[i].At {
			t.Fatalf("entry %d: changing the mix moved the arrival clock (%d vs %d)", i, a.Entries[i].At, c.Entries[i].At)
		}
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	base := poissonConfig(10)
	cases := []struct {
		name   string
		mutate func(*loadgen.GenConfig)
	}{
		{"unknown arrival", func(c *loadgen.GenConfig) { c.Arrival = "lognormal" }},
		{"zero jobs", func(c *loadgen.GenConfig) { c.Jobs = 0 }},
		{"zero interval", func(c *loadgen.GenConfig) { c.MeanInterval = 0 }},
		{"empty mix", func(c *loadgen.GenConfig) { c.Mix = nil }},
		{"bad scenario", func(c *loadgen.GenConfig) { c.Mix[0].Scenario = "nope" }},
		{"empty tenant", func(c *loadgen.GenConfig) { c.Mix[0].Tenant = "" }},
		{"zero weight", func(c *loadgen.GenConfig) { c.Mix[0].Weight = 0 }},
		{"onoff without phases", func(c *loadgen.GenConfig) { c.Arrival = loadgen.ArrivalOnOff }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := poissonConfig(10)
			cfg.Mix = append([]loadgen.MixEntry(nil), base.Mix...)
			tc.mutate(&cfg)
			if _, err := loadgen.Generate(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
