package loadgen

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultCurveSpeedups is the sweep behind the bench record's (and
// vfpgaload -trace's) throughput curve.
var DefaultCurveSpeedups = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}

// Default saturation search bounds: speedup 1/4x..64x of the recorded
// trace, 20 halvings (final interval < 0.01% of the range).
const (
	SaturateLo    = 0.25
	SaturateHi    = 64
	SaturateIters = 20
)

// DefaultBenchConfig is the recipe behind both the committed golden
// trace and vfpgabench's load section: Poisson arrivals, 60 jobs at a
// 100ms mean interval, all five scenario families spread over three
// tenants. With DefaultBenchServers boards and the measured mean
// service time (~189ms virtual), baseline utilization sits near 0.5 —
// comfortably inside DefaultBenchSLO, which the saturation search then
// pushes to the wall.
func DefaultBenchConfig() GenConfig {
	return GenConfig{
		Arrival:      ArrivalPoisson,
		Jobs:         60,
		MeanInterval: 100 * sim.Millisecond,
		Seed:         1234,
		Mix:          DefaultMix(3),
	}
}

// Defaults paired with DefaultBenchConfig.
const (
	DefaultBenchServers = 4
	DefaultBenchSLO     = "p99<750ms"
)

// BenchRecord is the "load" section of BENCH_serve.json: the generator
// recipe, the baseline replay at recorded speed, the throughput curve,
// and the saturation point under the declared SLO.
type BenchRecord struct {
	Gen        GenConfig       `json:"gen"`
	SLO        string          `json:"slo"`
	Baseline   ReplaySummary   `json:"baseline"`
	Curve      []CurvePoint    `json:"curve"`
	Saturation SaturationPoint `json:"saturation"`
}

// RunBench generates a trace from cfg, executes it once through run,
// then replays the model at speedup 1 (baseline), across the default
// curve, and through the saturation search. Deterministic end to end:
// the only non-model input is run's measured virtual makespans, which
// are themselves pure per spec.
func RunBench(cfg GenConfig, servers int, sloSpec string, run RunFunc) (*BenchRecord, error) {
	slo, err := ParseSLO(sloSpec)
	if err != nil {
		return nil, err
	}
	tr, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	outcomes, err := Execute(tr, run)
	if err != nil {
		return nil, err
	}
	base := ModelConfig{Servers: servers, Speedup: 1}
	res, err := Replay(tr, outcomes, base)
	if err != nil {
		return nil, err
	}
	curve, err := Curve(tr, outcomes, base, DefaultCurveSpeedups, slo)
	if err != nil {
		return nil, err
	}
	sat, err := Saturate(tr, outcomes, base, slo, SaturateLo, SaturateHi, SaturateIters)
	if err != nil {
		return nil, fmt.Errorf("loadgen: saturation search: %w", err)
	}
	return &BenchRecord{
		Gen:        cfg,
		SLO:        sloSpec,
		Baseline:   res.Summary,
		Curve:      curve,
		Saturation: sat,
	}, nil
}
