package loadgen_test

import (
	"bytes"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// evenTrace returns n single-tenant arrivals spaced gap apart, plus a
// uniform outcome list with the given service time.
func evenTrace(t *testing.T, n int, gap, service sim.Time) (*workload.Trace, []loadgen.Outcome) {
	t.Helper()
	spec, err := workload.BuiltinSpec("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Version: workload.TraceVersion, Seed: 1, Tenants: []string{"solo"}}
	outcomes := make([]loadgen.Outcome, n)
	for i := 0; i < n; i++ {
		tr.Entries = append(tr.Entries, workload.TraceEntry{At: sim.Time(i) * gap, Tenant: "solo", Spec: spec})
		outcomes[i] = loadgen.Outcome{Service: service}
	}
	return tr, outcomes
}

func TestReplayNoContention(t *testing.T) {
	tr, outcomes := evenTrace(t, 10, 1000, 800)
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 2, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Requests {
		if r.Wait != 0 || r.Latency != 800 || r.Outcome != loadgen.OutcomeOK {
			t.Fatalf("uncontended request queued: %+v", r)
		}
	}
	s := res.Summary
	if s.Completed != 10 || s.Failed != 0 || s.Throttled != 0 {
		t.Fatalf("counts off: %+v", s)
	}
	if s.MakespanNs != int64(9*1000+800) {
		t.Fatalf("makespan = %d, want %d", s.MakespanNs, 9*1000+800)
	}
}

func TestReplayFIFOQueueing(t *testing.T) {
	spec, err := workload.BuiltinSpec("storage")
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{
		Version: workload.TraceVersion, Seed: 1, Tenants: []string{"a", "b"},
		Entries: []workload.TraceEntry{
			{At: 0, Tenant: "a", Spec: spec},
			{At: 0, Tenant: "b", Spec: spec},
		},
	}
	outcomes := []loadgen.Outcome{{Service: 100}, {Service: 50}}
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 1, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Requests[0], res.Requests[1]
	if first.Wait != 0 || first.Latency != 100 {
		t.Fatalf("first: %+v", first)
	}
	if second.Wait != 100 || second.Latency != 150 {
		t.Fatalf("second must queue behind first (FIFO): %+v", second)
	}
}

func TestReplaySpeedupCompressesArrivals(t *testing.T) {
	tr, outcomes := evenTrace(t, 2, 1000, 600)
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 1, Speedup: 4})
	if err != nil {
		t.Fatal(err)
	}
	second := res.Requests[1]
	if second.Arrival != 250 {
		t.Fatalf("speedup 4 should scale arrival 1000 -> 250, got %d", second.Arrival)
	}
	if second.Wait != 350 || second.Latency != 950 {
		t.Fatalf("compressed arrivals must queue: %+v", second)
	}
}

func TestReplayTokenBucketThrottles(t *testing.T) {
	tr, outcomes := evenTrace(t, 3, 1000, 10)
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{
		Servers: 1, Speedup: 1, AdmitRate: 1, AdmitBurst: 1, // 1 token/s: only the burst token exists at ns scale
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests[0].Outcome != loadgen.OutcomeOK {
		t.Fatalf("burst token should admit the first request: %+v", res.Requests[0])
	}
	for _, r := range res.Requests[1:] {
		if r.Outcome != loadgen.OutcomeThrottled {
			t.Fatalf("empty bucket should throttle: %+v", r)
		}
		if r.Latency != 0 || r.Wait != 0 {
			t.Fatalf("throttled request must not accrue latency: %+v", r)
		}
	}
	if s := res.Summary; s.Throttled != 2 || s.Completed != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
}

func TestReplayRecordsFailures(t *testing.T) {
	tr, outcomes := evenTrace(t, 3, 1000, 100)
	outcomes[1] = loadgen.Outcome{Service: 100, Failed: true, FaultKind: "bitstream-corrupt"}
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 1, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Requests[1]; r.Outcome != loadgen.OutcomeFailed || r.FaultKind != "bitstream-corrupt" {
		t.Fatalf("failure not recorded: %+v", r)
	}
	s := res.Summary
	if s.Completed != 2 || s.Failed != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
	if len(s.Tenants) != 1 || s.Tenants[0].Faults["bitstream-corrupt"] != 1 {
		t.Fatalf("fault breakdown missing: %+v", s.Tenants)
	}
}

func TestReplayRejectsMismatchedOutcomes(t *testing.T) {
	tr, outcomes := evenTrace(t, 3, 1000, 100)
	if _, err := loadgen.Replay(tr, outcomes[:2], loadgen.ModelConfig{Servers: 1, Speedup: 1}); err == nil {
		t.Fatal("mismatched outcome count accepted")
	}
	if _, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 0, Speedup: 1}); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: 1, Speedup: 0}); err == nil {
		t.Fatal("zero speedup accepted")
	}
}

func TestReplayByteIdentical(t *testing.T) {
	tr, outcomes := evenTrace(t, 200, 700, 650)
	cfg := loadgen.ModelConfig{Servers: 2, Speedup: 3, AdmitRate: 1e6, AdmitBurst: 8}
	var sums [2][]byte
	var csvs [2][]byte
	for i := 0; i < 2; i++ {
		res, err := loadgen.Replay(tr, outcomes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sums[i], err = loadgen.EncodeSummary(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := loadgen.WriteCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		csvs[i] = buf.Bytes()
	}
	if !bytes.Equal(sums[0], sums[1]) {
		t.Fatal("summary JSON differs across identical replays")
	}
	if !bytes.Equal(csvs[0], csvs[1]) {
		t.Fatal("CSV differs across identical replays")
	}
}

func TestParseSLO(t *testing.T) {
	slo, err := loadgen.ParseSLO("p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Quantile != 0.99 || slo.Bound != 50*1e6 {
		t.Fatalf("parsed %+v", slo)
	}
	for _, bad := range []string{"", "p99", "p99<", "p0<1ms", "p100<1ms", "q99<1ms", "p99<-1ms", "p99<fast"} {
		if _, err := loadgen.ParseSLO(bad); err == nil {
			t.Fatalf("ParseSLO(%q) accepted", bad)
		}
	}
	// The bound is strict: p99 exactly at the bound violates it.
	at := &loadgen.ReplaySummary{P99Ns: 50 * 1e6}
	if slo.Met(at) {
		t.Fatal("p99 == bound must violate a strict < SLO")
	}
	at.P99Ns--
	if !slo.Met(at) {
		t.Fatal("p99 < bound must meet the SLO")
	}
}

func TestCurveAndSaturation(t *testing.T) {
	// Even arrivals every 1000ns, service 800ns, one server: the system
	// saturates near speedup 1.25, where offered load crosses capacity.
	tr, outcomes := evenTrace(t, 1000, 1000, 800)
	base := loadgen.ModelConfig{Servers: 1, Speedup: 1}
	slo, err := loadgen.ParseSLO("p99<1us")
	if err != nil {
		t.Fatal(err)
	}
	curve, err := loadgen.Curve(tr, outcomes, base, []float64{0.5, 1, 2, 4}, slo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].OfferedPerSec <= curve[i-1].OfferedPerSec {
			t.Fatalf("offered load must grow with speedup: %+v", curve)
		}
		if curve[i].P99Ns < curve[i-1].P99Ns {
			t.Fatalf("p99 must not improve under more load: %+v", curve)
		}
	}
	if !curve[1].SLOMet || curve[3].SLOMet {
		t.Fatalf("SLO must hold at speedup 1 and break at 4: %+v", curve)
	}

	sat, err := loadgen.Saturate(tr, outcomes, base, slo, 0.25, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Met || !sat.Saturated {
		t.Fatalf("search should find an interior saturation point: %+v", sat)
	}
	if sat.Point.Speedup < 1.0 || sat.Point.Speedup > 1.6 {
		t.Fatalf("saturation speedup = %v, want near the 1.25 capacity crossing", sat.Point.Speedup)
	}
	if !sat.Point.SLOMet {
		t.Fatal("reported saturation point must itself meet the SLO")
	}
}

func TestSaturateEdges(t *testing.T) {
	tr, outcomes := evenTrace(t, 100, 1000, 800)
	base := loadgen.ModelConfig{Servers: 1, Speedup: 1}
	tight, err := loadgen.ParseSLO("p99<1ns")
	if err != nil {
		t.Fatal(err)
	}
	sat, err := loadgen.Saturate(tr, outcomes, base, tight, 0.25, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Met {
		t.Fatalf("unmeetable SLO reported met: %+v", sat)
	}
	loose, err := loadgen.ParseSLO("p99<10s")
	if err != nil {
		t.Fatal(err)
	}
	sat, err = loadgen.Saturate(tr, outcomes, base, loose, 0.25, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Met || sat.Saturated {
		t.Fatalf("trivially-met SLO should report unsaturated at hi: %+v", sat)
	}
}

func TestExecuteRunsEntriesInOrder(t *testing.T) {
	tr, _ := evenTrace(t, 5, 1000, 0)
	var seen []string
	outcomes, err := loadgen.Execute(tr, func(tenant string, spec *workload.Spec) (loadgen.Outcome, error) {
		seen = append(seen, tenant+"/"+spec.Scenario)
		return loadgen.Outcome{Service: sim.Time(len(seen))}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 || len(seen) != 5 {
		t.Fatalf("ran %d/%d entries", len(seen), len(outcomes))
	}
	for i, o := range outcomes {
		if o.Service != sim.Time(i+1) {
			t.Fatalf("outcomes out of order: %+v", outcomes)
		}
	}
}
