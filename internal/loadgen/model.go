package loadgen

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Request outcome labels in CSV/JSON results.
const (
	OutcomeOK        = "ok"
	OutcomeFailed    = "failed"
	OutcomeThrottled = "throttled"
)

// ModelConfig parameterizes one replay of a trace through the virtual
// K-server queueing model.
type ModelConfig struct {
	// Servers is K: how many boards serve the FIFO queue.
	Servers int `json:"servers"`
	// Speedup divides every arrival timestamp: 2.0 offers the trace at
	// twice its recorded rate. Service times are unchanged, so speedup is
	// the offered-load knob the saturation search turns.
	Speedup float64 `json:"speedup"`
	// AdmitRate/AdmitBurst configure the per-tenant virtual token bucket
	// (tokens per virtual second / bucket capacity). Zero rate disables
	// admission control; requests arriving to an empty bucket are
	// throttled (the virtual 429) and never reach a server.
	AdmitRate  float64 `json:"admit_rate,omitempty"`
	AdmitBurst float64 `json:"admit_burst,omitempty"`
}

func (c *ModelConfig) validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("loadgen: model needs servers > 0")
	}
	if !(c.Speedup > 0) {
		return fmt.Errorf("loadgen: model needs speedup > 0")
	}
	if c.AdmitRate < 0 || c.AdmitBurst < 0 {
		return fmt.Errorf("loadgen: admission rate/burst must be non-negative")
	}
	if c.AdmitRate > 0 && c.AdmitBurst < 1 {
		return fmt.Errorf("loadgen: admission burst must be >= 1 when rate is set")
	}
	return nil
}

// Request is one trace entry's fate in a replay: when it arrived (after
// speedup scaling), how long it queued, its service time, end-to-end
// latency, and how it ended.
type Request struct {
	Seq       int      `json:"seq"`
	Tenant    string   `json:"tenant"`
	Scenario  string   `json:"scenario"`
	Arrival   sim.Time `json:"arrival_ns"`
	Wait      sim.Time `json:"wait_ns"`
	Service   sim.Time `json:"service_ns"`
	Latency   sim.Time `json:"latency_ns"`
	Outcome   string   `json:"outcome"`
	FaultKind string   `json:"fault_kind,omitempty"`
}

// TenantStats is the per-tenant slice of a replay: counts by outcome,
// fault-kind breakdown, and latency quantiles over served requests.
type TenantStats struct {
	Tenant    string         `json:"tenant"`
	Submitted int            `json:"submitted"`
	Completed int            `json:"completed"`
	Failed    int            `json:"failed"`
	Throttled int            `json:"throttled"`
	Faults    map[string]int `json:"faults,omitempty"`
	P50Ns     int64          `json:"p50_ns"`
	P95Ns     int64          `json:"p95_ns"`
	P99Ns     int64          `json:"p99_ns"`
	MaxNs     int64          `json:"max_ns"`
	MeanNs    int64          `json:"mean_ns"`
}

// ReplaySummary is the aggregate view of one replay — everything the
// bench record and SLO checks need, without the per-request rows.
type ReplaySummary struct {
	Servers        int           `json:"servers"`
	Speedup        float64       `json:"speedup"`
	Jobs           int           `json:"jobs"`
	Completed      int           `json:"completed"`
	Failed         int           `json:"failed"`
	Throttled      int           `json:"throttled"`
	OfferedPerSec  float64       `json:"offered_per_sec"`
	AchievedPerSec float64       `json:"achieved_per_sec"`
	MakespanNs     int64         `json:"makespan_ns"`
	P50Ns          int64         `json:"p50_ns"`
	P95Ns          int64         `json:"p95_ns"`
	P99Ns          int64         `json:"p99_ns"`
	MaxNs          int64         `json:"max_ns"`
	MeanNs         int64         `json:"mean_ns"`
	Tenants        []TenantStats `json:"tenants"`
}

// Result is one full replay: the summary plus every request row.
type Result struct {
	Summary  ReplaySummary `json:"summary"`
	Requests []Request     `json:"requests"`
}

type tenantAcc struct {
	stats TenantStats
	rec   *LatencyRecorder
}

// Replay pushes the trace through the virtual queueing model: arrivals
// at At/Speedup, per-tenant token-bucket admission, then a K-server FIFO
// where each admitted request takes the earliest-free server and holds
// it for its measured virtual service time. outcomes must be positional
// per trace entry (from Execute). Everything is integer virtual time or
// order-fixed float arithmetic, so equal inputs give equal Results,
// byte for byte.
func Replay(tr *workload.Trace, outcomes []Outcome, cfg ModelConfig) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(outcomes) != len(tr.Entries) {
		return nil, fmt.Errorf("loadgen: %d outcomes for %d trace entries", len(outcomes), len(tr.Entries))
	}

	free := make([]sim.Time, cfg.Servers)
	type bucket struct {
		tokens float64
		last   sim.Time
	}
	buckets := map[string]*bucket{}
	accs := map[string]*tenantAcc{}
	for _, t := range tr.Tenants {
		buckets[t] = &bucket{tokens: cfg.AdmitBurst}
		accs[t] = &tenantAcc{stats: TenantStats{Tenant: t}, rec: NewLatencyRecorder()}
	}

	total := NewLatencyRecorder()
	res := &Result{Requests: make([]Request, 0, len(tr.Entries))}
	var makespan sim.Time
	for i := range tr.Entries {
		e := &tr.Entries[i]
		o := outcomes[i]
		arrival := sim.Time(float64(e.At) / cfg.Speedup)
		req := Request{Seq: i, Tenant: e.Tenant, Scenario: e.Spec.Scenario, Arrival: arrival}
		acc := accs[e.Tenant]
		acc.stats.Submitted++

		admitted := true
		if cfg.AdmitRate > 0 {
			b := buckets[e.Tenant]
			b.tokens += float64(arrival-b.last) * cfg.AdmitRate / 1e9
			if b.tokens > cfg.AdmitBurst {
				b.tokens = cfg.AdmitBurst
			}
			b.last = arrival
			if b.tokens >= 1 {
				b.tokens--
			} else {
				admitted = false
			}
		}
		if !admitted {
			req.Outcome = OutcomeThrottled
			acc.stats.Throttled++
			res.Requests = append(res.Requests, req)
			continue
		}

		// Earliest-free server; FIFO order is trace order.
		srv := 0
		for s := 1; s < cfg.Servers; s++ {
			if free[s] < free[srv] {
				srv = s
			}
		}
		start := arrival
		if free[srv] > start {
			start = free[srv]
		}
		finish := start + o.Service
		free[srv] = finish
		if finish > makespan {
			makespan = finish
		}
		req.Wait = start - arrival
		req.Service = o.Service
		req.Latency = finish - arrival
		if o.Failed {
			req.Outcome = OutcomeFailed
			req.FaultKind = o.FaultKind
			acc.stats.Failed++
			if o.FaultKind != "" {
				if acc.stats.Faults == nil {
					acc.stats.Faults = map[string]int{}
				}
				acc.stats.Faults[o.FaultKind]++
			}
		} else {
			req.Outcome = OutcomeOK
			acc.stats.Completed++
		}
		acc.rec.Observe(req.Latency)
		total.Observe(req.Latency)
		res.Requests = append(res.Requests, req)
	}

	sum := ReplaySummary{
		Servers:    cfg.Servers,
		Speedup:    cfg.Speedup,
		Jobs:       len(tr.Entries),
		MakespanNs: int64(makespan),
		P50Ns:      int64(total.Quantile(0.50)),
		P95Ns:      int64(total.Quantile(0.95)),
		P99Ns:      int64(total.Quantile(0.99)),
		MaxNs:      int64(total.Max()),
	}
	if total.Count() > 0 {
		sum.MeanNs = total.Sum() / total.Count()
	}
	for _, t := range tr.Tenants { // Tenants is validated unique; sorted emission
		acc := accs[t]
		acc.stats.P50Ns = int64(acc.rec.Quantile(0.50))
		acc.stats.P95Ns = int64(acc.rec.Quantile(0.95))
		acc.stats.P99Ns = int64(acc.rec.Quantile(0.99))
		acc.stats.MaxNs = int64(acc.rec.Max())
		if acc.rec.Count() > 0 {
			acc.stats.MeanNs = acc.rec.Sum() / acc.rec.Count()
		}
		sum.Completed += acc.stats.Completed
		sum.Failed += acc.stats.Failed
		sum.Throttled += acc.stats.Throttled
		sum.Tenants = append(sum.Tenants, acc.stats)
	}
	sort.Slice(sum.Tenants, func(i, j int) bool { return sum.Tenants[i].Tenant < sum.Tenants[j].Tenant })

	// Offered load is arrivals over the (scaled) arrival span; achieved
	// is completions over the full makespan. Spans are clamped to 1 ns so
	// single-entry traces stay finite.
	span := sim.Time(float64(tr.Duration()) / cfg.Speedup)
	if span < 1 {
		span = 1
	}
	sum.OfferedPerSec = float64(len(tr.Entries)) / (float64(span) / 1e9)
	mk := makespan
	if mk < 1 {
		mk = 1
	}
	sum.AchievedPerSec = float64(sum.Completed) / (float64(mk) / 1e9)
	res.Summary = sum
	return res, nil
}
