package loadgen_test

// The byte-identical replay contract, pinned end to end: the committed
// golden trace, executed on the real serving stack (serve's direct
// runner) and replayed through the model, must reproduce the committed
// CSV and bench-summary JSON exactly — twice, from independent runners,
// and split across a simulated fleet. Run with -update to regenerate
// the golden files after an intentional change to the model, the
// generator, or the simulated hardware.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	goldenTracePath   = "testdata/golden_trace.json"
	goldenCSVPath     = "testdata/golden_results.csv"
	goldenSummaryPath = "testdata/golden_summary.json"
)

// goldenRun generates/loads the golden trace and produces the CSV and
// bench-record JSON from a fresh direct runner.
func goldenRun(t *testing.T) (trace, csv, summary []byte) {
	t.Helper()
	cfg := loadgen.DefaultBenchConfig()
	tr, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err = tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	run, err := serve.NewDirectRunner(serve.DefaultBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := loadgen.Execute(tr, run)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Replay(tr, outcomes, loadgen.ModelConfig{Servers: loadgen.DefaultBenchServers, Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loadgen.WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	csv = buf.Bytes()

	rec, err := loadgen.RunBench(cfg, loadgen.DefaultBenchServers, loadgen.DefaultBenchSLO, run)
	if err != nil {
		t.Fatal(err)
	}
	summary, err = loadgen.EncodeSummary(rec)
	if err != nil {
		t.Fatal(err)
	}
	return trace, csv, summary
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden (run with -update if intended)\n--- got ---\n%s", path, got)
	}
}

// TestGoldenReplayByteIdentical runs the whole pipeline twice, from
// independent runners, and pins every artifact to the committed bytes.
func TestGoldenReplayByteIdentical(t *testing.T) {
	trace1, csv1, sum1 := goldenRun(t)
	checkGolden(t, goldenTracePath, trace1)
	checkGolden(t, goldenCSVPath, csv1)
	checkGolden(t, goldenSummaryPath, sum1)

	trace2, csv2, sum2 := goldenRun(t)
	if !bytes.Equal(trace1, trace2) || !bytes.Equal(csv1, csv2) || !bytes.Equal(sum1, sum2) {
		t.Fatal("second independent run diverged from the first")
	}
}

// TestGoldenSaturationMeaningful guards the committed operating point:
// the SLO holds at recorded speed and breaks inside the search range,
// so the saturation point is interior, not a degenerate endpoint.
func TestGoldenSaturationMeaningful(t *testing.T) {
	data, err := os.ReadFile(goldenSummaryPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec loadgen.BenchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("committed summary does not decode strictly: %v", err)
	}
	slo, err := loadgen.ParseSLO(rec.SLO)
	if err != nil {
		t.Fatal(err)
	}
	if !slo.Met(&rec.Baseline) {
		t.Fatalf("SLO %s not met at recorded speed: p99=%dns", rec.SLO, rec.Baseline.P99Ns)
	}
	if !rec.Saturation.Met || !rec.Saturation.Saturated {
		t.Fatalf("saturation point is degenerate: %+v", rec.Saturation)
	}
	if rec.Saturation.Point.Speedup <= 1 {
		t.Fatalf("saturation below recorded speed: %+v", rec.Saturation.Point)
	}
	if rec.Baseline.Failed != 0 {
		t.Fatalf("golden run has failed jobs: %+v", rec.Baseline)
	}
}

// TestGoldenFleetReplayDeterministic splits the golden trace round-robin
// across two simulated targets — what vfpgaload -targets does — replays
// each shard on its own model, and checks the merged artifacts are
// byte-identical across two independent runs.
func TestGoldenFleetReplayDeterministic(t *testing.T) {
	data, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	tr, err := workload.DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	runFleet := func() []byte {
		var merged bytes.Buffer
		for shard := 0; shard < 2; shard++ {
			sub := &workload.Trace{Version: tr.Version, Seed: tr.Seed, Tenants: tr.Tenants}
			for i := range tr.Entries {
				if i%2 == shard {
					sub.Entries = append(sub.Entries, tr.Entries[i])
				}
			}
			run, err := serve.NewDirectRunner(serve.DefaultBoardConfig())
			if err != nil {
				t.Fatal(err)
			}
			outcomes, err := loadgen.Execute(sub, run)
			if err != nil {
				t.Fatal(err)
			}
			res, err := loadgen.Replay(sub, outcomes, loadgen.ModelConfig{Servers: 2, Speedup: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := loadgen.WriteCSV(&merged, res); err != nil {
				t.Fatal(err)
			}
			sum, err := loadgen.EncodeSummary(res.Summary)
			if err != nil {
				t.Fatal(err)
			}
			merged.Write(sum)
		}
		return merged.Bytes()
	}
	first := runFleet()
	second := runFleet()
	if !bytes.Equal(first, second) {
		t.Fatal("fleet-split replay diverged across runs")
	}
}
