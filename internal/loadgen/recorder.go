package loadgen

import (
	"math/bits"

	"repro/internal/sim"
)

// LatencyRecorder is a log-linear bucketed latency accumulator in the
// HDR-histogram mold: values below 16 ns land in exact unit buckets,
// larger values in 16 sub-buckets per power of two, so any quantile is
// reported with relative error at most 1/16 while Observe stays O(1)
// and the memory footprint fixed. Quantiles come back as the bucket's
// inclusive upper bound — a deterministic integer, which is what lets
// replay results be compared byte for byte.
type LatencyRecorder struct {
	counts [960]int64 // 16 unit buckets + 59 majors x 16 minors
	n      int64
	sum    int64
	min    sim.Time
	max    sim.Time
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{min: -1} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 16 {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // >= 4
	shift := msb - 4
	minor := int(v>>shift) & 15
	return 16 + (msb-4)*16 + minor
}

// bucketUpper returns the largest value mapping to bucket idx.
func bucketUpper(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	major := (idx-16)/16 + 4
	minor := int64((idx - 16) % 16)
	width := int64(1) << (major - 4)
	lower := (16 + minor) << (major - 4)
	return lower + width - 1
}

// Observe records one latency. Negative values clamp to zero (they can
// only arise from arithmetic bugs upstream; the recorder stays total).
func (r *LatencyRecorder) Observe(v sim.Time) {
	if v < 0 {
		v = 0
	}
	r.counts[bucketIndex(int64(v))]++
	r.n++
	r.sum += int64(v)
	if r.min < 0 || v < r.min {
		r.min = v
	}
	if v > r.max {
		r.max = v
	}
}

// Count returns the number of observations.
func (r *LatencyRecorder) Count() int64 { return r.n }

// Sum returns the sum of all observations in nanoseconds.
func (r *LatencyRecorder) Sum() int64 { return r.sum }

// Min returns the smallest observation, or 0 when empty.
func (r *LatencyRecorder) Min() sim.Time {
	if r.min < 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation, or 0 when empty.
func (r *LatencyRecorder) Max() sim.Time { return r.max }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over
// the buckets: the upper bound of the bucket holding the rank-th
// observation, capped at the exact observed maximum. Returns 0 for an
// empty recorder.
func (r *LatencyRecorder) Quantile(q float64) sim.Time {
	if r.n == 0 {
		return 0
	}
	rank := int64(q * float64(r.n))
	if float64(rank) < q*float64(r.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > r.n {
		rank = r.n
	}
	var seen int64
	for idx, c := range r.counts {
		seen += c
		if seen >= rank {
			v := sim.Time(bucketUpper(idx))
			if v > r.max {
				v = r.max
			}
			return v
		}
	}
	return r.max
}

// Merge folds other's observations into r.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	for i, c := range other.counts {
		r.counts[i] += c
	}
	r.n += other.n
	r.sum += other.sum
	if other.n > 0 {
		if r.min < 0 || (other.min >= 0 && other.min < r.min) {
			r.min = other.min
		}
		if other.max > r.max {
			r.max = other.max
		}
	}
}
