package loadgen

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Arrival process names understood by Generate.
const (
	ArrivalPoisson = "poisson"
	ArrivalOnOff   = "onoff"
)

// MixEntry weights one (tenant, scenario) pair in the generated stream.
type MixEntry struct {
	Tenant   string `json:"tenant"`
	Scenario string `json:"scenario"`
	Weight   int    `json:"weight"`
}

// GenConfig parameterizes trace generation: an arrival process plus a
// per-tenant scenario mix. Everything is virtual time and seeded rng, so
// a config is a pure recipe: Generate is a function, and regenerating a
// committed trace from its recorded config must reproduce it byte for
// byte (the golden trace test pins that).
type GenConfig struct {
	// Arrival is the process: ArrivalPoisson (exponential inter-arrival
	// times with mean MeanInterval) or ArrivalOnOff (bursts: during an
	// exponential on-phase of mean OnMean, arrivals come at MeanInterval;
	// exponential off-phases of mean OffMean are silent).
	Arrival string `json:"arrival"`
	// Jobs is the number of entries to generate.
	Jobs int `json:"jobs"`
	// MeanInterval is the mean inter-arrival time while arrivals flow.
	MeanInterval sim.Time `json:"mean_interval_ns"`
	// OnMean and OffMean shape the on-off process; ignored for poisson.
	OnMean  sim.Time `json:"on_mean_ns,omitempty"`
	OffMean sim.Time `json:"off_mean_ns,omitempty"`
	// Seed drives both the arrival clock and the mix picks, on split
	// streams so one does not perturb the other.
	Seed uint64 `json:"seed"`
	// Mix is the weighted (tenant, scenario) pool; every scenario uses
	// its builtin default parameters, fully spelled out in the trace.
	Mix []MixEntry `json:"mix"`
}

// DefaultMix spreads every builtin scenario family across the given
// number of tenants ("tenant-0".."tenant-N-1"), weight 1 each: the
// widest per-tenant scenario mix the registry offers.
func DefaultMix(tenants int) []MixEntry {
	var mix []MixEntry
	for i := 0; i < tenants; i++ {
		for _, sc := range workload.Scenarios() {
			mix = append(mix, MixEntry{Tenant: fmt.Sprintf("tenant-%d", i), Scenario: sc, Weight: 1})
		}
	}
	return mix
}

func (c *GenConfig) validate() error {
	switch c.Arrival {
	case ArrivalPoisson:
	case ArrivalOnOff:
		if c.OnMean <= 0 || c.OffMean <= 0 {
			return fmt.Errorf("loadgen: onoff arrivals need positive on/off means")
		}
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q (have %q, %q)", c.Arrival, ArrivalPoisson, ArrivalOnOff)
	}
	if c.Jobs <= 0 {
		return fmt.Errorf("loadgen: generation needs jobs > 0")
	}
	if c.MeanInterval <= 0 {
		return fmt.Errorf("loadgen: generation needs a positive mean interval")
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("loadgen: generation needs a non-empty mix")
	}
	for _, m := range c.Mix {
		if m.Tenant == "" || m.Weight <= 0 {
			return fmt.Errorf("loadgen: mix entry needs a tenant and positive weight")
		}
		if _, err := workload.BuiltinSpec(m.Scenario); err != nil {
			return err
		}
	}
	return nil
}

// Generate records one trace from the config: seeded, deterministic,
// strict-decodable. The arrival clock and the mix picks draw from split
// rng streams, so changing the mix does not move the timestamps.
func Generate(cfg GenConfig) (*workload.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	clock := root.Split()
	picks := root.Split()

	totalWeight := 0
	tenantSet := map[string]bool{}
	for _, m := range cfg.Mix {
		totalWeight += m.Weight
		tenantSet[m.Tenant] = true
	}
	tenants := make([]string, 0, len(tenantSet))
	for t := range tenantSet {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	tr := &workload.Trace{Version: workload.TraceVersion, Seed: cfg.Seed, Tenants: tenants}
	t := sim.Time(0)
	on := true
	phaseEnd := sim.Time(0)
	if cfg.Arrival == ArrivalOnOff {
		phaseEnd = exp(clock, cfg.OnMean)
	}
	for len(tr.Entries) < cfg.Jobs {
		switch cfg.Arrival {
		case ArrivalPoisson:
			t += exp(clock, cfg.MeanInterval)
		case ArrivalOnOff:
			if !on {
				t = phaseEnd
				phaseEnd = t + exp(clock, cfg.OnMean)
				on = true
				continue
			}
			dt := exp(clock, cfg.MeanInterval)
			if t+dt > phaseEnd {
				t = phaseEnd
				phaseEnd = t + exp(clock, cfg.OffMean)
				on = false
				continue
			}
			t += dt
		}
		pick := picks.Intn(totalWeight)
		var chosen MixEntry
		for _, m := range cfg.Mix {
			if pick < m.Weight {
				chosen = m
				break
			}
			pick -= m.Weight
		}
		spec, err := workload.BuiltinSpec(chosen.Scenario)
		if err != nil {
			return nil, err
		}
		tr.Entries = append(tr.Entries, workload.TraceEntry{At: t, Tenant: chosen.Tenant, Spec: spec})
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: generated trace invalid: %w", err)
	}
	return tr, nil
}

// exp draws an exponentially distributed duration with the given mean.
func exp(src *rng.Source, mean sim.Time) sim.Time {
	return sim.Time(src.ExpFloat64() * float64(mean))
}
