package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
)

// csvHeader is the fixed column set of per-request result CSVs.
const csvHeader = "seq,tenant,scenario,arrival_ns,wait_ns,service_ns,latency_ns,outcome,fault_kind\n"

// WriteCSV emits one row per request in seq order, preceded by the
// header. All values are integers or plain labels, so equal Results
// write byte-identical CSVs.
func WriteCSV(w io.Writer, res *Result) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return fmt.Errorf("loadgen: write csv: %w", err)
	}
	for i := range res.Requests {
		r := &res.Requests[i]
		_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%d,%s,%s\n",
			r.Seq, r.Tenant, r.Scenario, int64(r.Arrival), int64(r.Wait), int64(r.Service), int64(r.Latency), r.Outcome, r.FaultKind)
		if err != nil {
			return fmt.Errorf("loadgen: write csv: %w", err)
		}
	}
	return nil
}

// EncodeSummary renders any result/summary/bench value as canonical
// indented JSON with a trailing newline — the byte form golden tests
// compare against.
func EncodeSummary(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encode summary: %w", err)
	}
	return append(data, '\n'), nil
}
