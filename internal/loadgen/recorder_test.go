package loadgen_test

import (
	"sort"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/rng"
	"repro/internal/sim"
)

// exactQuantile is the brute-force nearest-rank quantile the recorder's
// bucketed answer is checked against.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// The recorder must bound every quantile from above with relative error
// at most 1/16 (its bucket width), across distributions that stress both
// the unit buckets and the log-linear range.
func TestRecorderQuantileVsBruteForce(t *testing.T) {
	distributions := map[string]func(src *rng.Source) int64{
		"uniform-small": func(src *rng.Source) int64 { return src.Int63n(64) },
		"uniform-wide":  func(src *rng.Source) int64 { return src.Int63n(50_000_000) },
		"exponential":   func(src *rng.Source) int64 { return int64(src.ExpFloat64() * 5e6) },
		"bimodal": func(src *rng.Source) int64 {
			if src.Bool() {
				return 1_000 + src.Int63n(100)
			}
			return 80_000_000 + src.Int63n(1_000_000)
		},
	}
	names := make([]string, 0, len(distributions))
	for name := range distributions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		draw := distributions[name]
		t.Run(name, func(t *testing.T) {
			src := rng.New(11)
			rec := loadgen.NewLatencyRecorder()
			vals := make([]int64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := draw(src)
				vals = append(vals, v)
				rec.Observe(sim.Time(v))
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0} {
				exact := exactQuantile(vals, q)
				got := int64(rec.Quantile(q))
				if got < exact {
					t.Fatalf("q=%v: recorder %d below exact %d (must bound from above)", q, got, exact)
				}
				if limit := exact + exact/16 + 1; got > limit {
					t.Fatalf("q=%v: recorder %d exceeds exact %d by more than 1/16", q, got, exact)
				}
			}
			if got, want := rec.Count(), int64(len(vals)); got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
			if got, want := int64(rec.Min()), vals[0]; got != want {
				t.Fatalf("Min = %d, want %d", got, want)
			}
			if got, want := int64(rec.Max()), vals[len(vals)-1]; got != want {
				t.Fatalf("Max = %d, want %d", got, want)
			}
		})
	}
}

func TestRecorderEmptyAndClamp(t *testing.T) {
	rec := loadgen.NewLatencyRecorder()
	if rec.Quantile(0.99) != 0 || rec.Min() != 0 || rec.Max() != 0 || rec.Count() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	rec.Observe(-5)
	if rec.Min() != 0 || rec.Max() != 0 || rec.Count() != 1 {
		t.Fatal("negative observation must clamp to zero")
	}
}

func TestRecorderMerge(t *testing.T) {
	a := loadgen.NewLatencyRecorder()
	b := loadgen.NewLatencyRecorder()
	whole := loadgen.NewLatencyRecorder()
	src := rng.New(3)
	for i := 0; i < 2000; i++ {
		v := sim.Time(src.Int63n(10_000_000))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merge lost counts")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}
