package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// SLO is a parsed latency objective like "p99<50ms": a quantile of the
// end-to-end latency distribution that must stay strictly below a bound.
type SLO struct {
	Quantile float64
	Bound    sim.Time
	spec     string
}

// ParseSLO parses "p<quantile><<duration>", e.g. "p99<50ms", "p50<1ms",
// "p99.9<2s". The duration uses Go syntax (time.ParseDuration).
func ParseSLO(s string) (SLO, error) {
	lhs, rhs, ok := strings.Cut(s, "<")
	if !ok || !strings.HasPrefix(lhs, "p") {
		return SLO{}, fmt.Errorf("loadgen: SLO %q must look like p99<50ms", s)
	}
	pct, err := strconv.ParseFloat(lhs[1:], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return SLO{}, fmt.Errorf("loadgen: SLO %q needs a quantile in (0, 100)", s)
	}
	d, err := time.ParseDuration(rhs)
	if err != nil {
		return SLO{}, fmt.Errorf("loadgen: SLO %q needs a duration bound: %w", s, err)
	}
	if d <= 0 {
		return SLO{}, fmt.Errorf("loadgen: SLO %q needs a positive duration bound", s)
	}
	return SLO{Quantile: pct / 100, Bound: sim.Time(d.Nanoseconds()), spec: s}, nil
}

// String returns the original spec.
func (s SLO) String() string { return s.spec }

// Met reports whether the summary's latency quantile is strictly below
// the bound, per the "<" in the spec.
func (s SLO) Met(sum *ReplaySummary) bool {
	return s.quantileOf(sum) < s.Bound
}

func (s SLO) quantileOf(sum *ReplaySummary) sim.Time {
	// The summary carries the three canonical quantiles; anything else
	// maps to the nearest one at or above the requested point, erring
	// toward the stricter (higher) quantile.
	switch {
	case s.Quantile <= 0.50:
		return sim.Time(sum.P50Ns)
	case s.Quantile <= 0.95:
		return sim.Time(sum.P95Ns)
	case s.Quantile <= 0.99:
		return sim.Time(sum.P99Ns)
	default:
		return sim.Time(sum.MaxNs)
	}
}
