package core

import (
	"fmt"

	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// MultiManager virtualizes a set of FPGA boards as one resource — the
// paper's §2 remark that "a computing system composed only of FPGA-based
// boards" can be virtualized the same way. Each board is a device with
// its own partition manager; tasks are placed on a board on first use
// and stay there (their partitions, pins and saved state are per-board).
//
// Placement policy: the board with the largest free strip that fits the
// request; ties break to the lower board index (deterministic).
type MultiManager struct {
	Boards []*PartitionManager
}

var _ hostos.FPGA = (*MultiManager)(nil)

// NewMultiManager builds n boards with identical geometry and partition
// configuration. Each board gets its own Engine (device, pins, metrics);
// circuits are shared across boards' libraries (they are immutable).
func NewMultiManager(k *sim.Kernel, engines []*Engine, cfg PartitionConfig) (*MultiManager, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("core: multi-manager needs at least one board")
	}
	m := &MultiManager{}
	for _, e := range engines {
		pm, err := NewPartitionManager(k, e, cfg)
		if err != nil {
			return nil, err
		}
		m.Boards = append(m.Boards, pm)
	}
	return m, nil
}

// AttachOS wires every board to the OS.
func (m *MultiManager) AttachOS(os *hostos.OS) {
	for _, b := range m.Boards {
		b.AttachOS(os)
	}
}

// ResetForJob resets every board's partition manager for warm-board
// reuse (each board's engine is reset separately via Ledger.ResetForJob).
func (m *MultiManager) ResetForJob() {
	for _, b := range m.Boards {
		b.ResetForJob()
	}
}

// Register implements hostos.FPGA: the circuit must fit at least one
// board.
func (m *MultiManager) Register(t *hostos.Task, circuit string) error {
	var lastErr error
	for _, b := range m.Boards {
		if err := b.Register(t, circuit); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// boardOf returns the board already hosting the task, or nil.
func (m *MultiManager) boardOf(t *hostos.Task) *PartitionManager {
	for _, b := range m.Boards {
		if b.byTask[t.ID] != nil {
			return b
		}
		for k := range b.saved {
			if k.task == t.ID {
				return b
			}
		}
		for _, w := range b.waiters {
			if w == t {
				return b
			}
		}
	}
	return nil
}

// chooseBoard picks the board for a task's first allocation.
func (m *MultiManager) chooseBoard(t *hostos.Task) *PartitionManager {
	c, err := m.Boards[0].E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	need := c.BS.W
	var best *PartitionManager
	bestFree := -1
	for _, b := range m.Boards {
		if c.BS.W > b.E.Opt.Geometry.Cols {
			continue // circuit cannot fit this board at all
		}
		_, largest := b.FreeCols()
		if largest >= need && largest > bestFree {
			best, bestFree = b, largest
		}
	}
	if best != nil {
		return best
	}
	// Nothing fits right now: queue on the least-loaded feasible board.
	var fallback *PartitionManager
	bestTotal := -1
	for _, b := range m.Boards {
		if c.BS.W > b.E.Opt.Geometry.Cols {
			continue
		}
		total, _ := b.FreeCols()
		if total > bestTotal {
			fallback, bestTotal = b, total
		}
	}
	if fallback == nil {
		panic(fmt.Sprintf("core: circuit %s fits no board (Register should have rejected it)", c.Name))
	}
	return fallback
}

// Acquire implements hostos.FPGA.
func (m *MultiManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	b := m.boardOf(t)
	if b == nil {
		b = m.chooseBoard(t)
	}
	return b.Acquire(t)
}

// ExecTime implements hostos.FPGA.
func (m *MultiManager) ExecTime(t *hostos.Task) sim.Time {
	return m.mustBoard(t).ExecTime(t)
}

// Preemptable implements hostos.FPGA.
func (m *MultiManager) Preemptable(t *hostos.Task) bool {
	return m.mustBoard(t).Preemptable(t)
}

// Preempt implements hostos.FPGA.
func (m *MultiManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	return m.mustBoard(t).Preempt(t, done, total)
}

// Resume implements hostos.FPGA.
func (m *MultiManager) Resume(t *hostos.Task) sim.Time {
	return m.mustBoard(t).Resume(t)
}

// Complete implements hostos.FPGA.
func (m *MultiManager) Complete(t *hostos.Task) {
	m.mustBoard(t).Complete(t)
}

// Remove implements hostos.FPGA: release on the hosting board; tasks
// suspended on ANY board get a fresh chance, since the exit may have
// freed the pins or columns they were waiting for.
func (m *MultiManager) Remove(t *hostos.Task) {
	if b := m.boardOf(t); b != nil {
		b.Remove(t)
	}
	for _, b := range m.Boards {
		b.wakeWaiters()
	}
}

func (m *MultiManager) mustBoard(t *hostos.Task) *PartitionManager {
	if b := m.boardOf(t); b != nil {
		return b
	}
	panic(fmt.Sprintf("core: task %s has no board", t.Name))
}

// Metrics aggregates a counter across boards.
func (m *MultiManager) TotalLoads() int64 {
	var n int64
	for _, b := range m.Boards {
		n += b.E.M.Loads.Value()
	}
	return n
}

// TotalBlocks sums suspension events across boards.
func (m *MultiManager) TotalBlocks() int64 {
	var n int64
	for _, b := range m.Boards {
		n += b.E.M.Blocks.Value()
	}
	return n
}

// LintTargets implements LintTargeter: one target per board, so the
// static verifier audits every device of the set.
func (m *MultiManager) LintTargets() []*lint.Target {
	out := make([]*lint.Target, 0, len(m.Boards))
	for i, b := range m.Boards {
		tgt := b.LintTarget()
		tgt.Name = fmt.Sprintf("board%d/%s", i, tgt.Name)
		out = append(out, tgt)
	}
	return out
}
