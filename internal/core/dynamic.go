package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// DynamicLoader implements the paper's §3 dynamic loading: the whole
// device holds one configuration at a time, downloaded when the running
// task needs it. Tasks never block — contention shows up as
// reconfiguration time instead. A configuration shared by several tasks
// (the paper's device-driver case) stays resident across them; sequential
// state is virtualized per task via readback/restore.
type DynamicLoader struct {
	E *Engine
	K *sim.Kernel

	resident      string
	residentPins  []int
	residentMux   int
	stateOwner    hostos.TaskID // whose state the on-device FFs hold
	hasStateOwner bool

	// saved holds per-task flip-flop state for circuits whose on-device
	// state was displaced (preemption or eviction).
	saved map[hostos.TaskID]map[string][]bool
	// rolledBack marks in-flight ops that must restart from reset state.
	rolledBack map[hostos.TaskID]bool
	// rollbackStreak counts consecutive rollbacks of a task's current op;
	// after rollbackLimit the op runs non-preemptable to completion, or a
	// long operation under persistent contention would starve forever.
	rollbackStreak map[hostos.TaskID]int
}

// rollbackLimit bounds consecutive rollbacks before an operation is
// allowed to run to completion (starvation guard).
const rollbackLimit = 3

var _ hostos.FPGA = (*DynamicLoader)(nil)

// NewDynamicLoader returns a dynamic-loading manager over the engine.
func NewDynamicLoader(k *sim.Kernel, e *Engine) *DynamicLoader {
	return &DynamicLoader{
		E:              e,
		K:              k,
		saved:          map[hostos.TaskID]map[string][]bool{},
		rolledBack:     map[hostos.TaskID]bool{},
		rollbackStreak: map[hostos.TaskID]int{},
	}
}

// Register declares a task's configuration (stored in the engine library;
// workloads pre-populate the library, so registration validates).
func (d *DynamicLoader) Register(t *hostos.Task, circuit string) error {
	_, err := d.E.Circuit(circuit)
	return err
}

func (d *DynamicLoader) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := d.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err) // Register validated at spawn; absence is a program bug
	}
	return c
}

// region returns the on-device footprint of the resident circuit.
func (d *DynamicLoader) region(c *compile.Circuit) fabric.Region {
	return c.BS.Region(0, 0)
}

// ensureLoaded makes the task's circuit resident with the task's state,
// returning the time this costs. It mutates the device immediately; the
// OS charges the returned duration to the task.
func (d *DynamicLoader) ensureLoaded(t *hostos.Task) sim.Time {
	c := d.circuitOf(t)
	tm := d.E.Opt.Timing
	var cost sim.Time

	if d.resident != c.Name {
		// Evict the current resident, saving its owner's sequential state.
		if d.resident != "" {
			old, _ := d.E.Circuit(d.resident)
			if old.Sequential && d.hasStateOwner {
				cost += d.saveState(d.stateOwner, old)
			}
			d.E.Dev.ClearRegion(d.region(old))
			d.E.FreePins(d.residentPins)
			d.residentPins = nil
			d.E.M.Evictions.Inc()
		}
		// Download the new configuration. Without partial reconfiguration
		// the whole device is rewritten (the paper's plain-XC4000 case).
		pins, mux, err := d.E.AllocPins(c.BS.NumIn + c.BS.NumOut)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		in, out := binding(c, pins)
		if _, _, err := c.BS.Apply(d.E.Dev, 0, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
			panic(fmt.Sprintf("core: apply %s: %v", c.Name, err))
		}
		if tm.PartialReconfig {
			cost += c.BS.ConfigCost(tm)
		} else {
			cost += tm.FullConfigTime(d.E.Opt.Geometry)
		}
		d.E.M.Loads.Inc()
		d.E.M.ConfigTime += cost
		d.resident = c.Name
		d.residentPins = pins
		d.residentMux = mux
		if mux > 1 {
			d.E.M.MuxedOps.Inc()
		}
		d.hasStateOwner = false
		d.E.noteUtil(d.K.Now())
	}

	if c.Sequential {
		cost += d.adoptState(t, c)
	}
	return cost
}

// saveState reads back the on-device FF state into the owner's table.
func (d *DynamicLoader) saveState(owner hostos.TaskID, c *compile.Circuit) sim.Time {
	st := d.E.Dev.ReadRegionState(d.region(c))
	m := d.saved[owner]
	if m == nil {
		m = map[string][]bool{}
		d.saved[owner] = m
	}
	m[c.Name] = st
	d.E.M.Readbacks.Inc()
	cost := d.E.Opt.Timing.ReadbackTime(c.BS.FFCells)
	d.E.M.ReadbackTime += cost
	return cost
}

// adoptState makes the on-device FF state belong to task t: restoring
// saved state, resetting after a rollback, or resetting when another
// task's state occupies the registers.
func (d *DynamicLoader) adoptState(t *hostos.Task, c *compile.Circuit) sim.Time {
	if d.hasStateOwner && d.stateOwner == t.ID && !d.rolledBack[t.ID] {
		return 0 // device already holds this task's live state
	}
	var cost sim.Time
	// Save the displaced owner's state first.
	if d.hasStateOwner && d.stateOwner != t.ID {
		cost += d.saveState(d.stateOwner, c)
	}
	region := d.region(c)
	switch {
	case d.rolledBack[t.ID]:
		delete(d.rolledBack, t.ID)
		d.resetState(region, c)
		cost += d.restoreCost(c)
	case d.saved[t.ID][c.Name] != nil:
		d.E.Dev.WriteRegionState(region, d.saved[t.ID][c.Name])
		delete(d.saved[t.ID], c.Name)
		d.E.M.Restores.Inc()
		cost += d.restoreCost(c)
	default:
		// First use: reset to init values (cheap, but still a write).
		d.resetState(region, c)
		cost += d.restoreCost(c)
	}
	d.stateOwner = t.ID
	d.hasStateOwner = true
	return cost
}

func (d *DynamicLoader) restoreCost(c *compile.Circuit) sim.Time {
	cost := d.E.Opt.Timing.RestoreTime(c.BS.FFCells)
	d.E.M.RestoreTime += cost
	return cost
}

// resetState writes every FF in the region back to its configured init
// value, scanning in the device's x-major state order.
func (d *DynamicLoader) resetState(region fabric.Region, c *compile.Circuit) {
	init := make([]bool, 0, c.BS.FFCells)
	for x := region.X; x < region.X+region.W; x++ {
		for y := region.Y; y < region.Y+region.H; y++ {
			cfg := d.E.Dev.CLB(x, y)
			if cfg.Used && cfg.UseFF {
				init = append(init, cfg.FFInit)
			}
		}
	}
	d.E.Dev.WriteRegionState(region, init)
}

// Acquire implements hostos.FPGA: dynamic loading never blocks.
func (d *DynamicLoader) Acquire(t *hostos.Task) (sim.Time, bool) {
	return d.ensureLoaded(t), true
}

// ExecTime implements hostos.FPGA.
func (d *DynamicLoader) ExecTime(t *hostos.Task) sim.Time {
	c := d.circuitOf(t)
	req := t.CurrentRequest()
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return d.E.ExecQuantum(pure, d.residentMux)
}

// Preemptable implements hostos.FPGA.
func (d *DynamicLoader) Preemptable(t *hostos.Task) bool {
	c := d.circuitOf(t)
	if !c.Sequential {
		return true // combinational streams preempt at vector boundaries
	}
	if d.E.Opt.State == Rollback && d.rollbackStreak[t.ID] >= rollbackLimit {
		return false // starvation guard: let the op finish this time
	}
	return d.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA (§3's preemption analysis).
func (d *DynamicLoader) Preempt(t *hostos.Task, done, total sim.Time) (overhead, preserved sim.Time) {
	c := d.circuitOf(t)
	req := t.CurrentRequest()
	if !c.Sequential {
		// The input stream position is task (CPU-side) state: completed
		// evaluations survive; the in-flight vector is re-presented.
		n := req.Evaluations
		if n <= 0 {
			return 0, done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return 0, done
		}
		return 0, (done / per) * per
	}
	switch d.E.Opt.State {
	case SaveRestore:
		overhead = d.saveState(t.ID, c)
		d.hasStateOwner = false
		n := req.Cycles
		if n <= 0 {
			return overhead, done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return overhead, done
		}
		return overhead, (done / per) * per
	case Rollback:
		d.E.M.Rollbacks.Inc()
		d.rolledBack[t.ID] = true
		d.rollbackStreak[t.ID]++
		return 0, 0
	}
	panic("core: Preempt called on non-preemptable operation")
}

// Resume implements hostos.FPGA.
func (d *DynamicLoader) Resume(t *hostos.Task) sim.Time {
	return d.ensureLoaded(t)
}

// Complete implements hostos.FPGA.
func (d *DynamicLoader) Complete(t *hostos.Task) {
	delete(d.rollbackStreak, t.ID)
}

// Remove implements hostos.FPGA.
func (d *DynamicLoader) Remove(t *hostos.Task) {
	delete(d.saved, t.ID)
	delete(d.rolledBack, t.ID)
	delete(d.rollbackStreak, t.ID)
	if d.hasStateOwner && d.stateOwner == t.ID {
		d.hasStateOwner = false
	}
}

// Resident returns the name of the currently loaded circuit ("" if none).
func (d *DynamicLoader) Resident() string { return d.resident }
