package core

import (
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// DynamicLoader implements the paper's §3 dynamic loading: the whole
// device holds one configuration at a time, downloaded when the running
// task needs it. Tasks never block — contention shows up as
// reconfiguration time instead. A configuration shared by several tasks
// (the paper's device-driver case) stays resident across them; sequential
// state is virtualized per task via readback/restore.
//
// The loader is pure policy: every device touch (download, eviction,
// readback, restore, reset) goes through the engine's residency ledger,
// which charges time and metrics and emits the device-side trace.
type DynamicLoader struct {
	E *Engine
	K *sim.Kernel

	stateOwner     hostos.TaskID // whose state the on-device FFs hold
	stateOwnerName string
	hasStateOwner  bool

	// saved holds per-task flip-flop state for circuits whose on-device
	// state was displaced (preemption or eviction).
	saved map[hostos.TaskID]map[string][]bool
	// rolledBack marks in-flight ops that must restart from reset state.
	rolledBack map[hostos.TaskID]bool
	// rollbackStreak counts consecutive rollbacks of a task's current op;
	// after rollbackLimit the op runs non-preemptable to completion, or a
	// long operation under persistent contention would starve forever.
	rollbackStreak map[hostos.TaskID]int
}

// rollbackLimit bounds consecutive rollbacks before an operation is
// allowed to run to completion (starvation guard).
const rollbackLimit = 3

var _ hostos.FPGA = (*DynamicLoader)(nil)

// NewDynamicLoader returns a dynamic-loading manager over the engine.
func NewDynamicLoader(k *sim.Kernel, e *Engine) *DynamicLoader {
	e.Ledger().Bind(k)
	return &DynamicLoader{
		E:              e,
		K:              k,
		saved:          map[hostos.TaskID]map[string][]bool{},
		rolledBack:     map[hostos.TaskID]bool{},
		rollbackStreak: map[hostos.TaskID]int{},
	}
}

// ResetForJob returns the manager to its post-construction state (no
// state owner, empty save/rollback tables) for warm-board reuse. The
// engine itself is reset separately via Ledger.ResetForJob.
func (d *DynamicLoader) ResetForJob() {
	d.stateOwner = 0
	d.stateOwnerName = ""
	d.hasStateOwner = false
	d.saved = map[hostos.TaskID]map[string][]bool{}
	d.rolledBack = map[hostos.TaskID]bool{}
	d.rollbackStreak = map[hostos.TaskID]int{}
}

// Register declares a task's configuration (stored in the engine library;
// workloads pre-populate the library, so registration validates).
func (d *DynamicLoader) Register(t *hostos.Task, circuit string) error {
	_, err := d.E.Circuit(circuit)
	return err
}

func (d *DynamicLoader) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := d.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err) // Register validated at spawn; absence is a program bug
	}
	return c
}

// region returns the on-device footprint of the resident circuit.
func (d *DynamicLoader) region(c *compile.Circuit) fabric.Region {
	return c.BS.Region(0, 0)
}

// ensureLoaded makes the task's circuit resident with the task's state,
// returning the time this costs. It mutates the device immediately; the
// OS charges the returned duration to the task.
func (d *DynamicLoader) ensureLoaded(t *hostos.Task) sim.Time {
	c := d.circuitOf(t)
	led := d.E.Ledger()
	var cost sim.Time

	if cur := led.ResidentAt(0); cur == nil || cur.Circuit != c.Name {
		// Evict the current resident, saving its owner's sequential state.
		if cur != nil {
			if cur.C.Sequential && d.hasStateOwner {
				cost += d.saveState(d.stateOwner, d.stateOwnerName, cur.C)
			}
			led.Evict(0)
		}
		// Download the new configuration. Without partial reconfiguration
		// the whole device is rewritten (the paper's plain-XC4000 case).
		_, loadCost := led.Load(t.Name, c, 0, true)
		cost += loadCost
		d.hasStateOwner = false
	}

	if c.Sequential {
		cost += d.adoptState(t, c)
	}
	return cost
}

// saveState reads back the on-device FF state into the owner's table.
func (d *DynamicLoader) saveState(owner hostos.TaskID, ownerName string, c *compile.Circuit) sim.Time {
	st, cost := d.E.Ledger().Readback(ownerName, c, d.region(c))
	m := d.saved[owner]
	if m == nil {
		m = map[string][]bool{}
		d.saved[owner] = m
	}
	m[c.Name] = st
	return cost
}

// adoptState makes the on-device FF state belong to task t: restoring
// saved state, resetting after a rollback, or resetting when another
// task's state occupies the registers.
func (d *DynamicLoader) adoptState(t *hostos.Task, c *compile.Circuit) sim.Time {
	if d.hasStateOwner && d.stateOwner == t.ID && !d.rolledBack[t.ID] {
		return 0 // device already holds this task's live state
	}
	led := d.E.Ledger()
	var cost sim.Time
	// Save the displaced owner's state first.
	if d.hasStateOwner && d.stateOwner != t.ID {
		cost += d.saveState(d.stateOwner, d.stateOwnerName, c)
	}
	region := d.region(c)
	switch {
	case d.rolledBack[t.ID]:
		delete(d.rolledBack, t.ID)
		cost += led.Reset(t.Name, c, region)
	case d.saved[t.ID][c.Name] != nil:
		cost += led.Restore(t.Name, c, region, d.saved[t.ID][c.Name])
		delete(d.saved[t.ID], c.Name)
	default:
		// First use: reset to init values (cheap, but still a write).
		cost += led.Reset(t.Name, c, region)
	}
	d.stateOwner = t.ID
	d.stateOwnerName = t.Name
	d.hasStateOwner = true
	return cost
}

// Acquire implements hostos.FPGA: dynamic loading never blocks.
func (d *DynamicLoader) Acquire(t *hostos.Task) (sim.Time, bool) {
	return d.ensureLoaded(t), true
}

// ExecTime implements hostos.FPGA.
func (d *DynamicLoader) ExecTime(t *hostos.Task) sim.Time {
	c := d.circuitOf(t)
	req := t.CurrentRequest()
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	mux := 1
	if r := d.E.Ledger().ResidentAt(0); r != nil {
		mux = r.Mux
	}
	return d.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA.
func (d *DynamicLoader) Preemptable(t *hostos.Task) bool {
	c := d.circuitOf(t)
	if !c.Sequential {
		return true // combinational streams preempt at vector boundaries
	}
	if d.E.Opt.State == Rollback && d.rollbackStreak[t.ID] >= rollbackLimit {
		return false // starvation guard: let the op finish this time
	}
	return d.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA (§3's preemption analysis).
func (d *DynamicLoader) Preempt(t *hostos.Task, done, total sim.Time) (overhead, preserved sim.Time) {
	c := d.circuitOf(t)
	req := t.CurrentRequest()
	if !c.Sequential {
		// The input stream position is task (CPU-side) state: completed
		// evaluations survive; the in-flight vector is re-presented.
		n := req.Evaluations
		if n <= 0 {
			return 0, done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return 0, done
		}
		return 0, (done / per) * per
	}
	switch d.E.Opt.State {
	case SaveRestore:
		overhead = d.saveState(t.ID, t.Name, c)
		d.hasStateOwner = false
		n := req.Cycles
		if n <= 0 {
			return overhead, done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return overhead, done
		}
		return overhead, (done / per) * per
	case Rollback:
		d.E.Ledger().Rollback(t.Name, c.Name)
		d.rolledBack[t.ID] = true
		d.rollbackStreak[t.ID]++
		return 0, 0
	}
	panic("core: Preempt called on non-preemptable operation")
}

// Resume implements hostos.FPGA.
func (d *DynamicLoader) Resume(t *hostos.Task) sim.Time {
	return d.ensureLoaded(t)
}

// Complete implements hostos.FPGA.
func (d *DynamicLoader) Complete(t *hostos.Task) {
	delete(d.rollbackStreak, t.ID)
}

// Remove implements hostos.FPGA.
func (d *DynamicLoader) Remove(t *hostos.Task) {
	delete(d.saved, t.ID)
	delete(d.rolledBack, t.ID)
	delete(d.rollbackStreak, t.ID)
	if d.hasStateOwner && d.stateOwner == t.ID {
		d.hasStateOwner = false
	}
}

// Resident returns the name of the currently loaded circuit ("" if none).
func (d *DynamicLoader) Resident() string {
	if r := d.E.Ledger().ResidentAt(0); r != nil {
		return r.Circuit
	}
	return ""
}

// LintTarget exports the manager's live device state for the static
// verifier via the ledger's residency view.
func (d *DynamicLoader) LintTarget() *lint.Target {
	return d.E.Ledger().LintTarget("dynamic")
}

// LintTargets implements LintTargeter.
func (d *DynamicLoader) LintTargets() []*lint.Target {
	return []*lint.Target{d.LintTarget()}
}
