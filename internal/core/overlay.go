package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// OverlayManager implements the paper's §2 overlaying: "part of the FPGA
// [computes] common functions which are frequently used, while the
// remaining part is used to download specific functions which are
// typically rarely used or mutually exclusive".
//
// Resident circuits are loaded once at startup into the left of the
// device and stay pinned; everything else shares a single overlay area on
// the right, holding one configuration at a time (the functions are
// mutually exclusive, as in classic code overlays). Sequential state is
// virtualized per task exactly as in dynamic loading.
type OverlayManager struct {
	E *Engine
	K *sim.Kernel

	residents map[string]*slot
	overlay   slot
	overlayX  int
	overlayW  int

	saved          map[savedKey][]bool
	rolledBack     map[hostos.TaskID]bool
	rollbackStreak map[hostos.TaskID]int
}

// slot is one placed circuit (resident or the overlay area's occupant).
type slot struct {
	x        int
	circuit  *compile.Circuit // nil when empty
	pins     []int
	mux      int
	owner    hostos.TaskID // whose state the FFs hold
	hasOwner bool
}

var _ hostos.FPGA = (*OverlayManager)(nil)

// NewOverlayManager loads the named resident circuits and reserves the
// remaining columns as the overlay area. Resident load time is charged to
// system initialization, not to any task (the paper's device-driver
// downloading "performed once for all tasks").
func NewOverlayManager(k *sim.Kernel, e *Engine, resident []string) (*OverlayManager, sim.Time, error) {
	om := &OverlayManager{
		E:              e,
		K:              k,
		residents:      map[string]*slot{},
		saved:          map[savedKey][]bool{},
		rolledBack:     map[hostos.TaskID]bool{},
		rollbackStreak: map[hostos.TaskID]int{},
	}
	x := 0
	var initCost sim.Time
	for _, name := range resident {
		c, err := e.Circuit(name)
		if err != nil {
			return nil, 0, err
		}
		if x+c.BS.W > e.Opt.Geometry.Cols {
			return nil, 0, fmt.Errorf("core: resident circuits exceed the device (%d+%d > %d cols)",
				x, c.BS.W, e.Opt.Geometry.Cols)
		}
		s := &slot{x: x}
		cost, err := om.loadSlot(s, c)
		if err != nil {
			return nil, 0, err
		}
		initCost += cost
		om.residents[name] = s
		x += c.BS.W
	}
	om.overlayX = x
	om.overlayW = e.Opt.Geometry.Cols - x
	om.overlay = slot{x: x}
	return om, initCost, nil
}

// loadSlot downloads c at the slot's origin.
func (om *OverlayManager) loadSlot(s *slot, c *compile.Circuit) (sim.Time, error) {
	pins, mux, err := om.E.AllocPins(c.BS.NumIn + c.BS.NumOut)
	if err != nil {
		return 0, err
	}
	in, out := binding(c, pins)
	if _, _, err := c.BS.Apply(om.E.Dev, s.x, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
		return 0, err
	}
	s.circuit = c
	s.pins = pins
	s.mux = mux
	s.hasOwner = false
	cost := c.BS.ConfigCost(om.E.Opt.Timing)
	om.E.M.Loads.Inc()
	om.E.M.ConfigTime += cost
	om.E.noteUtil(om.K.Now())
	return cost, nil
}

// Register implements hostos.FPGA: non-resident circuits must fit the
// overlay area.
func (om *OverlayManager) Register(t *hostos.Task, circuit string) error {
	c, err := om.E.Circuit(circuit)
	if err != nil {
		return err
	}
	if _, resident := om.residents[circuit]; resident {
		return nil
	}
	if c.BS.W > om.overlayW {
		return fmt.Errorf("core: circuit %s needs %d columns, overlay area has %d", circuit, c.BS.W, om.overlayW)
	}
	return nil
}

func (om *OverlayManager) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := om.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// slotFor returns the slot holding (or destined to hold) the circuit and
// whether it is already loaded.
func (om *OverlayManager) slotFor(c *compile.Circuit) (*slot, bool) {
	if s, ok := om.residents[c.Name]; ok {
		return s, true
	}
	return &om.overlay, om.overlay.circuit != nil && om.overlay.circuit.Name == c.Name
}

func (om *OverlayManager) region(s *slot) fabric.Region {
	return fabric.Region{X: s.x, Y: 0, W: s.circuit.BS.W, H: om.E.Opt.Geometry.Rows}
}

// ensure makes the task's circuit loaded with the task's state.
func (om *OverlayManager) ensure(t *hostos.Task) sim.Time {
	c := om.circuitOf(t)
	s, loaded := om.slotFor(c)
	var cost sim.Time
	if !loaded {
		// Overlay miss: evict the occupant (saving its owner's state) and
		// download the requested function.
		if s.circuit != nil {
			if s.circuit.Sequential && s.hasOwner {
				cost += om.saveSlot(s)
			}
			om.E.Dev.ClearRegion(om.region(s))
			om.E.FreePins(s.pins)
			om.E.M.Evictions.Inc()
			s.circuit = nil
		}
		loadCost, err := om.loadSlot(s, c)
		if err != nil {
			panic(fmt.Sprintf("core: overlay load %s: %v", c.Name, err))
		}
		cost += loadCost
	}
	if c.Sequential {
		cost += om.adopt(s, t, c)
	}
	return cost
}

func (om *OverlayManager) saveSlot(s *slot) sim.Time {
	st := om.E.Dev.ReadRegionState(om.region(s))
	om.saved[savedKey{s.owner, s.circuit.Name}] = st
	om.E.M.Readbacks.Inc()
	cost := om.E.Opt.Timing.ReadbackTime(s.circuit.BS.FFCells)
	om.E.M.ReadbackTime += cost
	s.hasOwner = false
	return cost
}

func (om *OverlayManager) adopt(s *slot, t *hostos.Task, c *compile.Circuit) sim.Time {
	if s.hasOwner && s.owner == t.ID && !om.rolledBack[t.ID] {
		return 0
	}
	var cost sim.Time
	if s.hasOwner && s.owner != t.ID {
		cost += om.saveSlot(s)
	}
	region := om.region(s)
	key := savedKey{t.ID, c.Name}
	switch {
	case om.rolledBack[t.ID]:
		delete(om.rolledBack, t.ID)
		om.resetSlot(region)
	case om.saved[key] != nil:
		om.E.Dev.WriteRegionState(region, om.saved[key])
		delete(om.saved, key)
		om.E.M.Restores.Inc()
	default:
		om.resetSlot(region)
	}
	rc := om.E.Opt.Timing.RestoreTime(c.BS.FFCells)
	om.E.M.RestoreTime += rc
	cost += rc
	s.owner = t.ID
	s.hasOwner = true
	return cost
}

func (om *OverlayManager) resetSlot(region fabric.Region) {
	var init []bool
	for x := region.X; x < region.X+region.W; x++ {
		for y := region.Y; y < region.Y+region.H; y++ {
			cfg := om.E.Dev.CLB(x, y)
			if cfg.Used && cfg.UseFF {
				init = append(init, cfg.FFInit)
			}
		}
	}
	om.E.Dev.WriteRegionState(region, init)
}

// Acquire implements hostos.FPGA: overlaying never blocks.
func (om *OverlayManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	return om.ensure(t), true
}

// ExecTime implements hostos.FPGA.
func (om *OverlayManager) ExecTime(t *hostos.Task) sim.Time {
	c := om.circuitOf(t)
	s, _ := om.slotFor(c)
	req := t.CurrentRequest()
	mux := s.mux
	if mux == 0 {
		mux = 1
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return om.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA.
func (om *OverlayManager) Preemptable(t *hostos.Task) bool {
	if !om.circuitOf(t).Sequential {
		return true
	}
	if om.E.Opt.State == Rollback && om.rollbackStreak[t.ID] >= rollbackLimit {
		return false // starvation guard (see DynamicLoader)
	}
	return om.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA.
func (om *OverlayManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	c := om.circuitOf(t)
	req := t.CurrentRequest()
	boundary := func(n int64) sim.Time {
		if n <= 0 {
			return done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return done
		}
		return (done / per) * per
	}
	if !c.Sequential {
		return 0, boundary(req.Evaluations)
	}
	switch om.E.Opt.State {
	case SaveRestore:
		s, loaded := om.slotFor(c)
		var overhead sim.Time
		if loaded && s.hasOwner && s.owner == t.ID {
			overhead = om.saveSlot(s)
		}
		return overhead, boundary(req.Cycles)
	case Rollback:
		om.E.M.Rollbacks.Inc()
		om.rolledBack[t.ID] = true
		om.rollbackStreak[t.ID]++
		return 0, 0
	}
	panic("core: Preempt on non-preemptable overlay operation")
}

// Resume implements hostos.FPGA.
func (om *OverlayManager) Resume(t *hostos.Task) sim.Time {
	return om.ensure(t)
}

// Complete implements hostos.FPGA.
func (om *OverlayManager) Complete(t *hostos.Task) {
	delete(om.rollbackStreak, t.ID)
}

// Remove implements hostos.FPGA.
func (om *OverlayManager) Remove(t *hostos.Task) {
	for k := range om.saved {
		if k.task == t.ID {
			delete(om.saved, k)
		}
	}
	delete(om.rolledBack, t.ID)
	delete(om.rollbackStreak, t.ID)
	for _, s := range om.residents {
		if s.hasOwner && s.owner == t.ID {
			s.hasOwner = false
		}
	}
	if om.overlay.hasOwner && om.overlay.owner == t.ID {
		om.overlay.hasOwner = false
	}
}

// OverlayCircuit returns the name of the circuit currently in the overlay
// area ("" if empty).
func (om *OverlayManager) OverlayCircuit() string {
	if om.overlay.circuit == nil {
		return ""
	}
	return om.overlay.circuit.Name
}
