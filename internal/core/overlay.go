package core

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// OverlayManager implements the paper's §2 overlaying: "part of the FPGA
// [computes] common functions which are frequently used, while the
// remaining part is used to download specific functions which are
// typically rarely used or mutually exclusive".
//
// Resident circuits are loaded once at startup into the left of the
// device and stay pinned; everything else shares a single overlay area on
// the right, holding one configuration at a time (the functions are
// mutually exclusive, as in classic code overlays). Sequential state is
// virtualized per task exactly as in dynamic loading. All device touches
// go through the engine's residency ledger.
type OverlayManager struct {
	E *Engine
	K *sim.Kernel

	residents map[string]*slot
	overlay   slot
	overlayX  int
	overlayW  int

	saved          map[savedKey][]bool
	rolledBack     map[hostos.TaskID]bool
	rollbackStreak map[hostos.TaskID]int
}

// slot is one placed circuit (resident or the overlay area's occupant).
// Pins and mux live in the ledger's residency table.
type slot struct {
	x         int
	circuit   *compile.Circuit // nil when empty
	owner     hostos.TaskID    // whose state the FFs hold
	ownerName string
	hasOwner  bool
}

var _ hostos.FPGA = (*OverlayManager)(nil)

// NewOverlayManager loads the named resident circuits and reserves the
// remaining columns as the overlay area. Resident load time is charged to
// system initialization, not to any task (the paper's device-driver
// downloading "performed once for all tasks").
func NewOverlayManager(k *sim.Kernel, e *Engine, resident []string) (*OverlayManager, sim.Time, error) {
	e.Ledger().Bind(k)
	om := &OverlayManager{
		E:              e,
		K:              k,
		residents:      map[string]*slot{},
		saved:          map[savedKey][]bool{},
		rolledBack:     map[hostos.TaskID]bool{},
		rollbackStreak: map[hostos.TaskID]int{},
	}
	x := 0
	var initCost sim.Time
	for _, name := range resident {
		c, err := e.Circuit(name)
		if err != nil {
			return nil, 0, err
		}
		if x+c.BS.W > e.Opt.Geometry.Cols {
			return nil, 0, fmt.Errorf("core: resident circuits exceed the device (%d+%d > %d cols)",
				x, c.BS.W, e.Opt.Geometry.Cols)
		}
		s := &slot{x: x}
		cost, err := om.loadSlot(s, "", c)
		if err != nil {
			return nil, 0, err
		}
		initCost += cost
		om.residents[name] = s
		x += c.BS.W
	}
	om.overlayX = x
	om.overlayW = e.Opt.Geometry.Cols - x
	om.overlay = slot{x: x}
	return om, initCost, nil
}

// ResetForJob returns the manager to its post-construction state for
// warm-board reuse: resident slots keep their construction-time circuits
// (the engine's pristine image holds the matching device configuration
// and residency table) but lose their state owners; the overlay area
// empties; the save/rollback tables clear. Valid only when the engine is
// reset to the pristine image captured right after this manager's
// construction, with the same compiled circuits.
func (om *OverlayManager) ResetForJob() {
	for _, s := range om.residents {
		s.owner = 0
		s.ownerName = ""
		s.hasOwner = false
	}
	om.overlay = slot{x: om.overlayX}
	om.saved = map[savedKey][]bool{}
	om.rolledBack = map[hostos.TaskID]bool{}
	om.rollbackStreak = map[hostos.TaskID]int{}
}

// loadSlot downloads c at the slot's origin on behalf of owner ("" for
// system initialization).
func (om *OverlayManager) loadSlot(s *slot, owner string, c *compile.Circuit) (sim.Time, error) {
	_, cost, err := om.E.Ledger().TryLoad(owner, c, s.x, false)
	if err != nil {
		return 0, err
	}
	s.circuit = c
	s.hasOwner = false
	return cost, nil
}

// Register implements hostos.FPGA: non-resident circuits must fit the
// overlay area.
func (om *OverlayManager) Register(t *hostos.Task, circuit string) error {
	c, err := om.E.Circuit(circuit)
	if err != nil {
		return err
	}
	if _, resident := om.residents[circuit]; resident {
		return nil
	}
	if c.BS.W > om.overlayW {
		return fmt.Errorf("core: circuit %s needs %d columns, overlay area has %d", circuit, c.BS.W, om.overlayW)
	}
	return nil
}

func (om *OverlayManager) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := om.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// slotFor returns the slot holding (or destined to hold) the circuit and
// whether it is already loaded.
func (om *OverlayManager) slotFor(c *compile.Circuit) (*slot, bool) {
	if s, ok := om.residents[c.Name]; ok {
		return s, true
	}
	return &om.overlay, om.overlay.circuit != nil && om.overlay.circuit.Name == c.Name
}

func (om *OverlayManager) region(s *slot) fabric.Region {
	return fabric.Region{X: s.x, Y: 0, W: s.circuit.BS.W, H: om.E.Opt.Geometry.Rows}
}

// ensure makes the task's circuit loaded with the task's state.
func (om *OverlayManager) ensure(t *hostos.Task) sim.Time {
	c := om.circuitOf(t)
	s, loaded := om.slotFor(c)
	var cost sim.Time
	if !loaded {
		// Overlay miss: evict the occupant (saving its owner's state) and
		// download the requested function.
		if s.circuit != nil {
			if s.circuit.Sequential && s.hasOwner {
				cost += om.saveSlot(s)
			}
			om.E.Ledger().Evict(s.x)
			s.circuit = nil
		}
		loadCost, err := om.loadSlot(s, t.Name, c)
		if err != nil {
			// Wrap instead of stringifying: a *fault.EscalationError in the
			// chain must stay typed for the serve layer's recover handler.
			panic(fmt.Errorf("core: overlay load %s: %w", c.Name, err))
		}
		cost += loadCost
	}
	if c.Sequential {
		cost += om.adopt(s, t, c)
	}
	return cost
}

func (om *OverlayManager) saveSlot(s *slot) sim.Time {
	st, cost := om.E.Ledger().Readback(s.ownerName, s.circuit, om.region(s))
	om.saved[savedKey{s.owner, s.circuit.Name}] = st
	s.hasOwner = false
	return cost
}

func (om *OverlayManager) adopt(s *slot, t *hostos.Task, c *compile.Circuit) sim.Time {
	if s.hasOwner && s.owner == t.ID && !om.rolledBack[t.ID] {
		return 0
	}
	led := om.E.Ledger()
	var cost sim.Time
	if s.hasOwner && s.owner != t.ID {
		cost += om.saveSlot(s)
	}
	region := om.region(s)
	key := savedKey{t.ID, c.Name}
	switch {
	case om.rolledBack[t.ID]:
		delete(om.rolledBack, t.ID)
		cost += led.Reset(t.Name, c, region)
	case om.saved[key] != nil:
		cost += led.Restore(t.Name, c, region, om.saved[key])
		delete(om.saved, key)
	default:
		cost += led.Reset(t.Name, c, region)
	}
	s.owner = t.ID
	s.ownerName = t.Name
	s.hasOwner = true
	return cost
}

// Acquire implements hostos.FPGA: overlaying never blocks.
func (om *OverlayManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	return om.ensure(t), true
}

// ExecTime implements hostos.FPGA.
func (om *OverlayManager) ExecTime(t *hostos.Task) sim.Time {
	c := om.circuitOf(t)
	s, _ := om.slotFor(c)
	req := t.CurrentRequest()
	mux := 1
	if r := om.E.Ledger().ResidentAt(s.x); r != nil {
		mux = r.Mux
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return om.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA.
func (om *OverlayManager) Preemptable(t *hostos.Task) bool {
	if !om.circuitOf(t).Sequential {
		return true
	}
	if om.E.Opt.State == Rollback && om.rollbackStreak[t.ID] >= rollbackLimit {
		return false // starvation guard (see DynamicLoader)
	}
	return om.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA.
func (om *OverlayManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	c := om.circuitOf(t)
	req := t.CurrentRequest()
	boundary := func(n int64) sim.Time {
		if n <= 0 {
			return done
		}
		per := total / sim.Time(n)
		if per <= 0 {
			return done
		}
		return (done / per) * per
	}
	if !c.Sequential {
		return 0, boundary(req.Evaluations)
	}
	switch om.E.Opt.State {
	case SaveRestore:
		s, loaded := om.slotFor(c)
		var overhead sim.Time
		if loaded && s.hasOwner && s.owner == t.ID {
			overhead = om.saveSlot(s)
		}
		return overhead, boundary(req.Cycles)
	case Rollback:
		om.E.Ledger().Rollback(t.Name, c.Name)
		om.rolledBack[t.ID] = true
		om.rollbackStreak[t.ID]++
		return 0, 0
	}
	panic("core: Preempt on non-preemptable overlay operation")
}

// Resume implements hostos.FPGA.
func (om *OverlayManager) Resume(t *hostos.Task) sim.Time {
	return om.ensure(t)
}

// Complete implements hostos.FPGA.
func (om *OverlayManager) Complete(t *hostos.Task) {
	delete(om.rollbackStreak, t.ID)
}

// Remove implements hostos.FPGA.
func (om *OverlayManager) Remove(t *hostos.Task) {
	for k := range om.saved {
		if k.task == t.ID {
			delete(om.saved, k)
		}
	}
	delete(om.rolledBack, t.ID)
	delete(om.rollbackStreak, t.ID)
	for _, s := range om.residents {
		if s.hasOwner && s.owner == t.ID {
			s.hasOwner = false
		}
	}
	if om.overlay.hasOwner && om.overlay.owner == t.ID {
		om.overlay.hasOwner = false
	}
}

// OverlayCircuit returns the name of the circuit currently in the overlay
// area ("" if empty).
func (om *OverlayManager) OverlayCircuit() string {
	if om.overlay.circuit == nil {
		return ""
	}
	return om.overlay.circuit.Name
}

// LintTarget exports the manager's live device state for the static
// verifier via the ledger's residency view.
func (om *OverlayManager) LintTarget() *lint.Target {
	return om.E.Ledger().LintTarget("overlay")
}

// LintTargets implements LintTargeter.
func (om *OverlayManager) LintTargets() []*lint.Target {
	return []*lint.Target{om.LintTarget()}
}
