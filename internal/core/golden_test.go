package core_test

// Golden merged-timeline test: a fixed-seed run renders a byte-identical
// scheduler+device trace every time (same determinism bar the benchmark
// harness meets). The whole pipeline — compile, schedule, ledger — is
// rebuilt from scratch per run, so any map-iteration or ordering
// nondeterminism anywhere in the stack shows up as a diff here,
// especially under -race in make check.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// goldenRun executes the fixed scenario and returns the rendered merged
// timeline.
func goldenRun(t *testing.T) string {
	t.Helper()
	k := sim.New()
	e, log := confEngine(t)
	d := core.NewDynamicLoader(k, e)
	os := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 250 * sim.Microsecond,
		CtxSwitch: 10 * sim.Microsecond, Syscall: 2 * sim.Microsecond,
	}, d)
	sched := hostos.NewEventLog(0)
	os.AttachTrace(sched)
	confScript(t, os)
	k.Run()
	if !os.AllDone() {
		t.Fatal("golden scenario did not complete")
	}
	return core.MergeTimeline(sched, log).String()
}

func TestGoldenTimelineDeterministic(t *testing.T) {
	first := goldenRun(t)
	if first == "" {
		t.Fatal("empty merged timeline")
	}
	// The trace must interleave both sources.
	if !strings.Contains(first, "sched") || !strings.Contains(first, "device") {
		t.Fatalf("timeline missing a source:\n%s", first)
	}
	for i := 0; i < 3; i++ {
		if again := goldenRun(t); again != first {
			t.Fatalf("run %d diverged from first run:\n--- first ---\n%s\n--- again ---\n%s", i+2, first, again)
		}
	}
}
