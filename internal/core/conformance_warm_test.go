package core_test

// Warm-reset conformance: CapturePristine + Ledger.ResetForJob (plus the
// manager's own ResetForJob hook) must return every implementation to a
// state where rerunning the same script reproduces the cold run exactly,
// the ledger/metrics audit still balances over the second run, and the
// snapshot-restore reset charges the device's configWrites like the
// full-device configuration write it models.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// deltaSnapshot subtracts the pristine baseline from an end-of-run
// snapshot, so a run after a warm reset can be audited against a device
// log attached after that reset (construction-time ops are in the
// baseline, not in the log). Utilization is run-scoped, not a counter,
// and is left alone.
func deltaSnapshot(after, base core.MetricsSnapshot) core.MetricsSnapshot {
	d := after
	d.Loads -= base.Loads
	d.Evictions -= base.Evictions
	d.Readbacks -= base.Readbacks
	d.Restores -= base.Restores
	d.Rollbacks -= base.Rollbacks
	d.PageFaults -= base.PageFaults
	d.PageLoads -= base.PageLoads
	d.GCRuns -= base.GCRuns
	d.Relocations -= base.Relocations
	d.Blocks -= base.Blocks
	d.MuxedOps -= base.MuxedOps
	d.FaultsInjected -= base.FaultsInjected
	d.FaultRetries -= base.FaultRetries
	d.FaultRecoveries -= base.FaultRecoveries
	d.FaultEscalations -= base.FaultEscalations
	d.ConfigTime -= base.ConfigTime
	d.ReadbackTime -= base.ReadbackTime
	d.RestoreTime -= base.RestoreTime
	d.FaultTime -= base.FaultTime
	return d
}

// auditDelta cross-checks a run's metric deltas against the device log
// covering exactly that run.
func auditDelta(t *testing.T, d core.MetricsSnapshot, log *core.DeviceLog) {
	t.Helper()
	var loads, pageLoads, evictions, readbacks, restores, rollbacks, relocations, blocks, gcruns int64
	var configTime, readbackTime, restoreTime sim.Time
	for _, ev := range log.Events() {
		switch ev.Op {
		case core.OpLoad:
			if ev.Page >= 0 {
				pageLoads++
			} else {
				loads++
			}
			configTime += ev.Cost
		case core.OpEvict:
			if !ev.Voluntary {
				evictions++
			}
		case core.OpReadback:
			readbacks++
			readbackTime += ev.Cost
		case core.OpRestore:
			restores++
			restoreTime += ev.Cost
		case core.OpReset:
			restoreTime += ev.Cost
		case core.OpRollback:
			rollbacks++
		case core.OpRelocate:
			relocations++
			configTime += ev.Cost
		case core.OpBlock:
			blocks++
		case core.OpGC:
			gcruns++
		}
	}
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"Loads", d.Loads, loads},
		{"PageLoads", d.PageLoads, pageLoads},
		{"Evictions", d.Evictions, evictions},
		{"Readbacks", d.Readbacks, readbacks},
		{"Restores", d.Restores, restores},
		{"Rollbacks", d.Rollbacks, rollbacks},
		{"Relocations", d.Relocations, relocations},
		{"Blocks", d.Blocks, blocks},
		{"GCRuns", d.GCRuns, gcruns},
	} {
		if c.got != c.want {
			t.Errorf("warm-run Metrics.%s delta = %d, ledger events say %d", c.name, c.got, c.want)
		}
	}
	for _, c := range []struct {
		name string
		got  sim.Time
		want sim.Time
	}{
		{"ConfigTime", d.ConfigTime, configTime},
		{"ReadbackTime", d.ReadbackTime, readbackTime},
		{"RestoreTime", d.RestoreTime, restoreTime},
	} {
		if c.got != c.want {
			t.Errorf("warm-run Metrics.%s delta = %v, ledger events say %v", c.name, c.got, c.want)
		}
	}
}

func TestConformanceWarmReset(t *testing.T) {
	for _, impl := range confImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			k := sim.New()
			mgr, engines, _ := impl.build(t, k)

			resetter, ok := mgr.(interface{ ResetForJob() })
			if !ok {
				t.Fatalf("%s does not implement ResetForJob", impl.name)
			}

			// Pristine capture, post-construction (overlay and merged have
			// already configured the device by now).
			type pristine struct {
				img  *core.PristineImage
				snap core.MetricsSnapshot
				cw   int64
			}
			baselines := make([]pristine, len(engines))
			for i, e := range engines {
				baselines[i] = pristine{
					img:  e.CapturePristine(),
					snap: e.M.Snapshot(k.Now()),
					cw:   e.Dev.ConfigWrites(),
				}
			}

			runScript := func() sim.Time {
				os := hostos.New(k, hostos.Config{
					Policy: hostos.RR, TimeSlice: 300 * sim.Microsecond,
					CtxSwitch: 10 * sim.Microsecond, Syscall: 2 * sim.Microsecond,
				}, mgr)
				if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
					att.AttachOS(os)
				}
				confScript(t, os)
				k.Run()
				if !os.AllDone() {
					t.Fatal("script did not run to completion")
				}
				return os.Makespan()
			}

			// Cold run.
			coldSpan := runScript()
			coldSnaps := make([]core.MetricsSnapshot, len(engines))
			coldWrites := make([]int64, len(engines))
			for i, e := range engines {
				coldSnaps[i] = e.M.Snapshot(k.Now())
				coldWrites[i] = e.Dev.ConfigWrites() - baselines[i].cw
			}

			// Warm reset: kernel, per-engine ledger restore, manager hook.
			k.Reset()
			warmLogs := make([]*core.DeviceLog, len(engines))
			postReset := make([]int64, len(engines))
			for i, e := range engines {
				preReset := e.Dev.ConfigWrites()
				if err := e.Ledger().ResetForJob(baselines[i].img); err != nil {
					t.Fatalf("engine %d: ResetForJob: %v", i, err)
				}
				// The restore models a full-device configuration write:
				// every CLB cell is charged, exactly once.
				cells := int64(e.Opt.Geometry.Cols * e.Opt.Geometry.Rows)
				if got := e.Dev.ConfigWrites() - preReset; got != cells {
					t.Errorf("engine %d: reset charged %d config writes, want %d (full device)", i, got, cells)
				}
				warmLogs[i] = core.NewDeviceLog(0)
				e.Ledger().AttachLog(warmLogs[i])
				postReset[i] = e.Dev.ConfigWrites()
			}
			resetter.ResetForJob()

			// Warm run: must replay the cold run exactly.
			warmSpan := runScript()
			if warmSpan != coldSpan {
				t.Errorf("warm makespan %v != cold makespan %v", warmSpan, coldSpan)
			}
			for i, e := range engines {
				warmSnap := e.M.Snapshot(k.Now())
				if !reflect.DeepEqual(warmSnap, coldSnaps[i]) {
					t.Errorf("engine %d: warm metrics diverged from cold run:\nwarm: %+v\ncold: %+v", i, warmSnap, coldSnaps[i])
				}
				if got := e.Dev.ConfigWrites() - postReset[i]; got != coldWrites[i] {
					t.Errorf("engine %d: warm run wrote %d config cells, cold run wrote %d", i, got, coldWrites[i])
				}
				auditDelta(t, deltaSnapshot(warmSnap, baselines[i].snap), warmLogs[i])
			}

			// The restored, re-run device must still satisfy the verifier.
			lt, ok := mgr.(core.LintTargeter)
			if !ok {
				t.Fatalf("%s does not implement core.LintTargeter", impl.name)
			}
			diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
			if err != nil {
				t.Fatal(err)
			}
			if lint.HasErrors(diags) {
				t.Errorf("device not lint-clean after warm rerun: %v", lint.Errors(diags))
			}
		})
	}
}
