package core

// Directed tests for the AmorphousManager's policy paths: adoption
// caching, cache reclaim under space pressure, boundary sliding, LRU
// rotation with state save/restore, and block/wake. The conformance and
// property suites cover the contract; these pin the mechanisms.

import (
	"testing"

	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// amorphousEngine builds an engine with exactly the given circuits on a
// cols-wide test device.
func amorphousEngine(t *testing.T, cols int, nls ...*netlist.Netlist) *Engine {
	t.Helper()
	opt := testOptions()
	opt.Geometry.Cols = cols
	e := NewEngine(opt)
	for _, nl := range nls {
		if err := e.AddCircuit(nl); err != nil {
			t.Fatalf("add %s: %v", nl.Name, err)
		}
	}
	return e
}

// stripWidths compiles the test circuits once on a wide device and
// returns their column widths (a pure function of the circuit and row
// count, not of device width).
func stripWidths(t *testing.T) map[string]int {
	t.Helper()
	e := amorphousEngine(t, 64,
		netlist.Adder(8), netlist.Counter(8), netlist.Multiplier(4), netlist.Parity(16))
	w := map[string]int{}
	for name, c := range e.Lib {
		w[name] = c.BS.W
	}
	return w
}

// amTask spawns a one-op task; the kernel is not run, so the task sits
// at its first op and Acquire can be driven directly.
func amTask(t *testing.T, os *hostos.OS, name string, op hostos.Op) *hostos.Task {
	t.Helper()
	task, err := os.Spawn(name, 0, []hostos.Op{op})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func amFixture(t *testing.T, cols int, cfg AmorphousConfig, nls ...*netlist.Netlist) (*Engine, *AmorphousManager, *hostos.OS) {
	t.Helper()
	k := sim.New()
	e := amorphousEngine(t, cols, nls...)
	am := NewAmorphousManager(k, e, cfg)
	os := hostos.New(k, hostos.Config{Policy: hostos.FIFO}, am)
	am.AttachOS(os)
	return e, am, os
}

func TestAmorphousAdoptionCache(t *testing.T) {
	e, am, os := amFixture(t, 24, DefaultAmorphousConfig(), netlist.Counter(8))
	a := amTask(t, os, "a", seqOp("counter8", 100))
	if _, ok := am.Acquire(a); !ok {
		t.Fatal("first acquire blocked")
	}
	if e.M.Loads.Value() != 1 {
		t.Fatalf("loads = %d", e.M.Loads.Value())
	}
	w := e.Lib["counter8"].BS.W

	// Exit demotes the strip to a cached resident: still configured, no
	// owner, and the columns stay occupied.
	am.Remove(a)
	if f := am.Frag(); f.FreeCols != 24-w {
		t.Fatalf("after exit frag = %+v, want %d cached columns held", f, w)
	}
	views := am.Regions()
	cached := 0
	for _, v := range views {
		if !v.Free && v.Owner == "" && v.Circuit == "counter8" {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("cached strips = %d, regions %+v", cached, views)
	}

	// A later task with the same circuit adopts the strip in place: no
	// download, but a sequential adoptee gets its stale flip-flops reset.
	b := amTask(t, os, "b", seqOp("counter8", 100))
	if _, ok := am.Acquire(b); !ok {
		t.Fatal("adopting acquire blocked")
	}
	if e.M.Loads.Value() != 1 {
		t.Fatalf("adoption reloaded: loads = %d", e.M.Loads.Value())
	}
	if am.byTask[b.ID] == nil {
		t.Fatal("adopter not recorded as owner")
	}
}

func TestAmorphousCacheReclaimUnderSpacePressure(t *testing.T) {
	w := stripWidths(t)
	wa, wc, wm := w["adder8"], w["counter8"], w["mul4"]
	cols := wa + wc
	if wm > cols {
		t.Fatalf("mul4 (%d cols) wider than adder8+counter8 (%d): test geometry assumption broken", wm, cols)
	}
	e, am, os := amFixture(t, cols, DefaultAmorphousConfig(),
		netlist.Adder(8), netlist.Counter(8), netlist.Multiplier(4))

	for _, tc := range []struct {
		name string
		op   hostos.Op
	}{{"a", fpgaOp("adder8", 100)}, {"b", seqOp("counter8", 100)}} {
		task := amTask(t, os, tc.name, tc.op)
		if _, ok := am.Acquire(task); !ok {
			t.Fatalf("%s blocked", tc.name)
		}
		am.Remove(task)
	}
	// Device now fully occupied by two caches; the wide request must
	// reclaim them (LRU first) to open a hole.
	d := amTask(t, os, "d", fpgaOp("mul4", 100))
	if _, ok := am.Acquire(d); !ok {
		t.Fatal("wide acquire blocked despite reclaimable caches")
	}
	if got := e.M.Loads.Value(); got != 3 {
		t.Fatalf("loads = %d, want 3 (two cached + one fresh)", got)
	}
	for _, v := range am.Regions() {
		if !v.Free && v.Owner == "" {
			t.Fatalf("cache survived reclaim: %+v", v)
		}
	}
}

func TestAmorphousSlideMergesHoles(t *testing.T) {
	w := stripWidths(t)
	wp, wc, wm := w["parity16"], w["counter8"], w["mul4"]
	if wp >= wm {
		t.Fatalf("parity16 (%d cols) not narrower than mul4 (%d): test geometry assumption broken", wp, wm)
	}
	cols := wp + wc + wm - 1
	cfg := AmorphousConfig{Fit: BestFit, GC: true}
	e, am, os := amFixture(t, cols, cfg,
		netlist.Parity(16), netlist.Counter(8), netlist.Multiplier(4))

	a := amTask(t, os, "a", fpgaOp("parity16", 100))
	b := amTask(t, os, "b", seqOp("counter8", 100))
	for _, task := range []*hostos.Task{a, b} {
		if _, ok := am.Acquire(task); !ok {
			t.Fatalf("%s blocked", task.Name)
		}
	}
	// Caching is off, so a's exit opens a real hole at the left; with the
	// undersized tail that makes two holes, neither wide enough alone.
	am.Remove(a)
	if f := am.Frag(); f.FreeSpans != 2 || f.LargestFree >= wm {
		t.Fatalf("precondition frag = %+v, want two holes each < %d", f, wm)
	}

	d := amTask(t, os, "d", fpgaOp("mul4", 100))
	if _, ok := am.Acquire(d); !ok {
		t.Fatal("wide acquire blocked despite sufficient total free space")
	}
	if e.M.Relocations.Value() < 1 || e.M.GCRuns.Value() != 1 {
		t.Fatalf("relocations = %d, gc runs = %d: boundary slide not charged",
			e.M.Relocations.Value(), e.M.GCRuns.Value())
	}
	// One strip slid, one hole erased: the remaining free space (wp-1
	// columns; possibly none) is one contiguous hole.
	if f := am.Frag(); f.FreeCols != wp-1 || f.Ratio() != 0 {
		t.Fatalf("after slide frag = %+v, want %d contiguous free", f, wp-1)
	}
}

func TestAmorphousRotationSavesAndRestores(t *testing.T) {
	w := stripWidths(t)
	wp, wc, wm := w["parity16"], w["counter8"], w["mul4"]
	cols := wm + wc + wp - 1 // no initial fit for mul4, room for counter8 after
	cfg := AmorphousConfig{Fit: BestFit, Rotate: true}
	e, am, os := amFixture(t, cols, cfg,
		netlist.Parity(16), netlist.Counter(8), netlist.Multiplier(4))

	b := amTask(t, os, "b", seqOp("counter8", 1000))
	a := amTask(t, os, "a", fpgaOp("parity16", 100))
	for _, task := range []*hostos.Task{b, a} {
		if _, ok := am.Acquire(task); !ok {
			t.Fatalf("%s blocked", task.Name)
		}
	}
	// The wide request finds no hole, no caches, no GC: rotation evicts
	// LRU owners — the sequential victim's state is saved on the way out.
	d := amTask(t, os, "d", fpgaOp("mul4", 100))
	if _, ok := am.Acquire(d); !ok {
		t.Fatal("wide acquire blocked despite evictable owners")
	}
	if e.M.Evictions.Value() < 1 {
		t.Fatal("rotation evicted nothing")
	}
	if e.M.Readbacks.Value() < 1 {
		t.Fatal("sequential victim's state not saved")
	}
	if len(am.saved) != 1 {
		t.Fatalf("saved-state entries = %d, want 1", len(am.saved))
	}
	// The displaced task comes back: fresh download plus a restore of the
	// saved flip-flop state, which is then consumed.
	if _, ok := am.Acquire(b); !ok {
		t.Fatal("displaced task could not reacquire")
	}
	if e.M.Restores.Value() != 1 {
		t.Fatalf("restores = %d, want 1", e.M.Restores.Value())
	}
	if len(am.saved) != 0 {
		t.Fatalf("saved state not consumed: %d entries", len(am.saved))
	}
}

func TestAmorphousBlockAndWake(t *testing.T) {
	w := stripWidths(t)
	cfg := AmorphousConfig{Fit: BestFit} // no cache, no GC, no rotation
	k := sim.New()
	e := amorphousEngine(t, w["mul4"], netlist.Multiplier(4))
	am := NewAmorphousManager(k, e, cfg)
	os := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 50 * sim.Microsecond, CtxSwitch: 5 * sim.Microsecond,
	}, am)
	am.AttachOS(os)
	// Two tasks, a one-strip device: round-robin gives b the CPU while a
	// still owns the strip (computing after its FPGA phase), so b must
	// suspend until a exits, then be woken and run to completion.
	if _, err := os.Spawn("a", 0, []hostos.Op{
		fpgaOp("mul4", 100), hostos.Compute(sim.Millisecond),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Spawn("b", 0, []hostos.Op{fpgaOp("mul4", 100)}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !os.AllDone() {
		t.Fatal("waiter never woken")
	}
	if e.M.Blocks.Value() < 1 {
		t.Fatalf("blocks = %d, want >= 1", e.M.Blocks.Value())
	}
	if e.M.Loads.Value() != 2 {
		t.Fatalf("loads = %d", e.M.Loads.Value())
	}
}

func TestRegionMapViews(t *testing.T) {
	rm := NewRegionMap(20)
	if rm.Cols() != 20 {
		t.Fatalf("cols = %d", rm.Cols())
	}
	a := rm.Alloc(rm.FindFree(4, FirstFit), 4, "a")
	rm.Alloc(rm.FindFree(3, FirstFit), 3, "b")
	c := rm.Alloc(rm.FindFree(5, FirstFit), 5, "c")
	rm.Release(a)
	free := rm.FreeList()
	if len(free) != 2 || free[0].X != 0 || free[0].W != 4 || free[1].X != 12 || free[1].W != 8 {
		t.Fatalf("free list = %+v", free)
	}
	in := rm.SpansIn(4, 12)
	if len(in) != 2 || in[0].Owner != "b" || in[1] != c {
		t.Fatalf("spans in [4,12) = %+v", in)
	}
	if in := rm.SpansIn(5, 12); len(in) != 1 || in[0] != c {
		t.Fatalf("partial overlap not excluded: %+v", in)
	}
}

func TestPartitionFragStats(t *testing.T) {
	k := sim.New()
	e := newEngine(t, testOptions())
	pm, err := NewPartitionManager(k, e, PartitionConfig{Mode: VariablePartitions, Fit: BestFit})
	if err != nil {
		t.Fatal(err)
	}
	f := pm.Frag()
	if f.Cols != e.Opt.Geometry.Cols || f.FreeCols != f.Cols || f.FreeSpans != 1 || f.Ratio() != 0 {
		t.Fatalf("empty-device frag = %+v", f)
	}
}
