package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// ledgerFixture returns an engine with the test library, a bound kernel
// and an attached device log.
func ledgerFixture(t *testing.T) (*Engine, *Ledger, *DeviceLog) {
	t.Helper()
	e := newEngine(t, testOptions())
	led := e.Ledger()
	led.Bind(sim.New())
	log := NewDeviceLog(0)
	led.AttachLog(log)
	return e, led, log
}

func TestLedgerLoadRecordsResidency(t *testing.T) {
	e, led, log := ledgerFixture(t)
	c := e.Lib["adder8"]
	mux, cost, err := led.TryLoad("a", c, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if mux < 1 || cost <= 0 {
		t.Fatalf("mux=%d cost=%v", mux, cost)
	}
	if cost != c.BS.ConfigCost(e.Opt.Timing) {
		t.Fatalf("cost = %v, want strip config cost %v", cost, c.BS.ConfigCost(e.Opt.Timing))
	}
	r := led.ResidentAt(0)
	if r == nil || r.Circuit != "adder8" || r.Owner != "a" {
		t.Fatalf("resident = %+v", r)
	}
	if e.M.Loads.Value() != 1 || e.M.ConfigTime != cost {
		t.Fatalf("loads=%d configTime=%v", e.M.Loads.Value(), e.M.ConfigTime)
	}
	if n := len(log.Events()); n != 1 || log.Events()[0].Op != OpLoad {
		t.Fatalf("events = %v", log.Events())
	}
}

func TestLedgerLoadWholeDeviceCost(t *testing.T) {
	// With partial reconfiguration, a whole-device load still only pays the
	// strip's own download; without it, the full serial configuration time.
	e, led, _ := ledgerFixture(t)
	c := e.Lib["adder8"]
	_, cost, err := led.TryLoad("a", c, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := c.BS.ConfigCost(e.Opt.Timing); e.Opt.Timing.PartialReconfig && cost != want {
		t.Fatalf("cost = %v, want strip cost %v under partial reconfiguration", cost, want)
	}
	led.Release(0)
	e.Opt.Timing.PartialReconfig = false
	_, cost, err = led.TryLoad("a", c, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := e.Opt.Timing.FullConfigTime(e.Opt.Geometry); cost != want {
		t.Fatalf("cost = %v, want full-device %v", cost, want)
	}
}

func TestLedgerLoadOccupiedColumnFails(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	led.Load("a", e.Lib["adder8"], 0, false)
	if _, _, err := led.TryLoad("b", e.Lib["mul4"], 0, false); err == nil {
		t.Fatal("double load at column 0 accepted")
	}
}

func TestLedgerEvictVsRelease(t *testing.T) {
	e, led, log := ledgerFixture(t)
	led.Load("a", e.Lib["adder8"], 0, false)
	led.Evict(0)
	led.Load("b", e.Lib["adder8"], 0, false)
	led.Release(0)
	if e.M.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1 (release is voluntary)", e.M.Evictions.Value())
	}
	evs := log.Events()
	if len(evs) != 4 || evs[1].Voluntary || !evs[3].Voluntary {
		t.Fatalf("events = %v", evs)
	}
	if led.ResidentAt(0) != nil {
		t.Fatal("residency survived eviction")
	}
	if e.FreePinCount() != e.Opt.Geometry.NumPins() {
		t.Fatalf("pins leaked: %d free of %d", e.FreePinCount(), e.Opt.Geometry.NumPins())
	}
}

func TestLedgerResetChargesRestoreTimeNotCounter(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	c := e.Lib["counter8"]
	led.Load("a", c, 0, false)
	cost := led.Reset("a", c, c.BS.Region(0, 0))
	if cost <= 0 {
		t.Fatal("reset should cost a state write")
	}
	if e.M.Restores.Value() != 0 {
		t.Fatalf("restores = %d, want 0 (reset is not a restore of saved state)", e.M.Restores.Value())
	}
	if e.M.RestoreTime != cost {
		t.Fatalf("restoreTime = %v, want %v", e.M.RestoreTime, cost)
	}
}

func TestLedgerReadbackRestoreRoundTrip(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	c := e.Lib["counter8"]
	led.Load("a", c, 0, false)
	region := c.BS.Region(0, 0)
	led.Reset("a", c, region)
	st, rcost := led.Readback("a", c, region)
	if rcost <= 0 || len(st) == 0 {
		t.Fatalf("readback cost=%v state=%d bits", rcost, len(st))
	}
	if cost := led.Restore("a", c, region, st); cost <= 0 {
		t.Fatal("restore should cost a state write")
	}
	if e.M.Readbacks.Value() != 1 || e.M.Restores.Value() != 1 {
		t.Fatalf("readbacks=%d restores=%d", e.M.Readbacks.Value(), e.M.Restores.Value())
	}
}

func TestLedgerRelocateMovesResidencyAndState(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	c := e.Lib["counter8"]
	led.Load("a", c, 4, false)
	led.Reset("a", c, c.BS.Region(4, 0))
	before := e.Dev.ReadRegionState(c.BS.Region(4, 0))
	readbacks := e.M.Readbacks.Value()
	cost := led.Relocate(4, 0)
	if cost <= 0 {
		t.Fatal("relocation of a sequential circuit must cost time")
	}
	if led.ResidentAt(4) != nil {
		t.Fatal("old column still resident")
	}
	r := led.ResidentAt(0)
	if r == nil || r.Circuit != "counter8" || r.Region.X != 0 {
		t.Fatalf("resident after relocate = %+v", r)
	}
	after := e.Dev.ReadRegionState(c.BS.Region(0, 0))
	if len(after) != len(before) {
		t.Fatalf("state length changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("FF %d lost across relocation", i)
		}
	}
	if e.M.Relocations.Value() != 1 {
		t.Fatalf("relocations = %d", e.M.Relocations.Value())
	}
	if e.M.Readbacks.Value() != readbacks+1 {
		t.Fatalf("sequential relocation should read back state once")
	}
	if led.Relocate(0, 0) != 0 {
		t.Fatal("no-op relocation should be free")
	}
}

func TestLedgerAnnotations(t *testing.T) {
	e, led, log := ledgerFixture(t)
	led.NoteBlock("a")
	led.NoteGC()
	led.Rollback("a", "counter8")
	if e.M.Blocks.Value() != 1 || e.M.GCRuns.Value() != 1 || e.M.Rollbacks.Value() != 1 {
		t.Fatalf("blocks=%d gc=%d rollbacks=%d",
			e.M.Blocks.Value(), e.M.GCRuns.Value(), e.M.Rollbacks.Value())
	}
	if len(log.Events()) != 3 {
		t.Fatalf("events = %v", log.Events())
	}
}

func TestLedgerPageOps(t *testing.T) {
	e, led, log := ledgerFixture(t)
	cost := led.LoadPage("a", "adder8", 2, 8)
	if cost != e.Opt.Timing.PartialConfigTime(8, 0) {
		t.Fatalf("page cost = %v", cost)
	}
	led.EvictPage("a", "adder8", 2)
	led.ReleasePage("a", "adder8", 3)
	if e.M.PageLoads.Value() != 1 || e.M.PageFaults.Value() != 1 {
		t.Fatalf("pageLoads=%d pageFaults=%d", e.M.PageLoads.Value(), e.M.PageFaults.Value())
	}
	if e.M.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1 (release is voluntary)", e.M.Evictions.Value())
	}
	evs := log.Events()
	if evs[0].Page != 2 || !strings.Contains(evs[0].String(), "page 2") {
		t.Fatalf("page event = %v", evs[0])
	}
}

func TestDeviceLogCap(t *testing.T) {
	log := NewDeviceLog(2)
	for i := 0; i < 5; i++ {
		log.Emit(DeviceEvent{At: sim.Time(i), Op: OpLoad, Page: -1})
	}
	evs := log.Events()
	if len(evs) != 2 || evs[0].At != 3 || evs[1].At != 4 {
		t.Fatalf("capped events = %v", evs)
	}
}

func TestLedgerLintTarget(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	led.Load("a", e.Lib["adder8"], 0, false)
	tgt := led.LintTarget("test")
	if tgt.Name != "test" || tgt.Device != e.Dev {
		t.Fatalf("target = %+v", tgt)
	}
}

// The attach/bind setters share the single-goroutine guard with the
// transaction methods, so wiring an engine from a second goroutine
// mid-operation trips the same assertion as any other concurrent use.
func TestLedgerSettersHoldGuard(t *testing.T) {
	_, led, _ := ledgerFixture(t)
	exit := led.enter() // simulate an operation in flight
	for name, call := range map[string]func(){
		"Bind":         func() { led.Bind(sim.New()) },
		"AttachLog":    func() { led.AttachLog(NewDeviceLog(0)) },
		"InjectFaults": func() { led.InjectFaults(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with an operation in flight did not panic", name)
				}
			}()
			call()
		}()
	}
	exit()
	led.Bind(sim.New()) // uncontended: must not panic
}
