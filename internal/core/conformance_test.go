package core_test

// Conformance suite: every hostos.FPGA implementation — the five VFPGA
// managers and the three baselines — runs the same spawn/preempt/resume/
// complete script and must satisfy the shared contract:
//
//   - Preempt returns overhead ≥ 0 and 0 ≤ preserved ≤ done ≤ total
//     (progress is never invented; overhead is extra time charged on
//     top, not bounded by the op — a readback just before completion
//     legitimately costs more than the work left);
//   - every Metrics counter and time equals what the residency ledger's
//     event log says happened (the accounting is auditable);
//   - no time metric is negative;
//   - after every task exits, the device state passes the static verifier.

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// confCircuits are the circuits the conformance script uses; small enough
// that even Merged fits them side by side on the test device.
var confCircuits = []string{"adder8", "counter8", "mul4"}

func confEngine(t testing.TB) (*core.Engine, *core.DeviceLog) {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Geometry.Cols, opt.Geometry.Rows = 24, 8
	opt.Geometry.TracksPerChannel, opt.Geometry.PinsPerSide = 12, 24
	e := core.NewEngine(opt)
	for _, nl := range []func() *netlist.Netlist{
		func() *netlist.Netlist { return netlist.Adder(8) },
		func() *netlist.Netlist { return netlist.Counter(8) },
		func() *netlist.Netlist { return netlist.Multiplier(4) },
	} {
		if err := e.AddCircuit(nl()); err != nil {
			t.Fatal(err)
		}
	}
	log := core.NewDeviceLog(0)
	e.Ledger().AttachLog(log)
	return e, log
}

// confImpl builds one hostos.FPGA implementation under test, returning
// the manager, every engine behind it (for metric/event auditing) and
// every attached device log.
type confImpl struct {
	name  string
	build func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog)
}

func confImpls() []confImpl {
	one := func(t testing.TB, mk func(k *sim.Kernel, e *core.Engine) hostos.FPGA) func(testing.TB, *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
		return func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			e, log := confEngine(t)
			return mk(k, e), []*core.Engine{e}, []*core.DeviceLog{log}
		}
	}
	return []confImpl{
		{"dynamic", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				return core.NewDynamicLoader(k, e)
			})(t, k)
		}},
		{"overlay", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				om, _, err := core.NewOverlayManager(k, e, []string{"adder8"})
				if err != nil {
					t.Fatal(err)
				}
				return om
			})(t, k)
		}},
		{"paged", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				pl, err := core.NewPagedLoader(k, e, core.PagedConfig{PageCells: 8, Policy: core.LRU})
				if err != nil {
					t.Fatal(err)
				}
				return pl
			})(t, k)
		}},
		{"partition", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				pm, err := core.NewPartitionManager(k, e, core.PartitionConfig{
					Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return pm
			})(t, k)
		}},
		{"amorphous", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				return core.NewAmorphousManager(k, e, core.DefaultAmorphousConfig())
			})(t, k)
		}},
		{"multi", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			e0, l0 := confEngine(t)
			e1, l1 := confEngine(t)
			mm, err := core.NewMultiManager(k, []*core.Engine{e0, e1}, core.PartitionConfig{
				Mode: core.VariablePartitions, Fit: core.BestFit, GC: true, Rotate: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return mm, []*core.Engine{e0, e1}, []*core.DeviceLog{l0, l1}
		}},
		{"exclusive", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				return baseline.NewExclusive(k, e)
			})(t, k)
		}},
		{"merged", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				m, _, err := baseline.NewMerged(k, e, confCircuits)
				if err != nil {
					t.Fatal(err)
				}
				return m
			})(t, k)
		}},
		{"software", func(t testing.TB, k *sim.Kernel) (hostos.FPGA, []*core.Engine, []*core.DeviceLog) {
			return one(t, func(k *sim.Kernel, e *core.Engine) hostos.FPGA {
				return baseline.NewSoftware(e, 20)
			})(t, k)
		}},
	}
}

// checkedFPGA wraps the implementation under test and asserts the
// Preempt contract on every call the scheduler makes.
type checkedFPGA struct {
	hostos.FPGA
	t        *testing.T
	preempts int
}

func (c *checkedFPGA) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	overhead, preserved := c.FPGA.Preempt(t, done, total)
	c.preempts++
	if overhead < 0 {
		c.t.Errorf("Preempt(%s, done=%v, total=%v): negative overhead %v", t.Name, done, total, overhead)
	}
	if preserved < 0 || preserved > done {
		c.t.Errorf("Preempt(%s, done=%v, total=%v): preserved %v outside [0, done]", t.Name, done, total, preserved)
	}
	// Note: overhead+preserved may legitimately exceed total. The OS
	// charges overhead on top of the op (readback near completion costs
	// more than the work left); the random-op conformance sweep reaches
	// such preemptions. Progress itself is bounded by done <= total.
	if done > total {
		c.t.Errorf("Preempt(%s, done=%v, total=%v): done exceeds total", t.Name, done, total)
	}
	return overhead, preserved
}

// confScript spawns the shared workload: combinational and sequential
// operations under a short round-robin slice, so SaveRestore paths,
// evictions and resumes all trigger.
func confScript(t testing.TB, os *hostos.OS) {
	spawn := func(name string, ops ...hostos.Op) {
		if _, err := os.Spawn(name, 0, ops); err != nil {
			t.Fatalf("spawn %s: %v", name, err)
		}
	}
	spawn("alpha",
		hostos.UseFPGA(hostos.FPGARequest{Circuit: "adder8", Evaluations: 50_000}),
		hostos.Compute(200*sim.Microsecond),
		hostos.UseFPGA(hostos.FPGARequest{Circuit: "counter8", Cycles: 50_000}),
	)
	spawn("beta",
		hostos.UseFPGA(hostos.FPGARequest{Circuit: "counter8", Cycles: 80_000}),
		hostos.UseFPGA(hostos.FPGARequest{Circuit: "mul4", Evaluations: 30_000}),
	)
	spawn("gamma",
		hostos.Compute(100*sim.Microsecond),
		hostos.UseFPGA(hostos.FPGARequest{Circuit: "mul4", Evaluations: 60_000}),
	)
}

// auditLedger cross-checks every Metrics counter and time against the
// device log: the ledger is the only writer of both, so they must agree
// exactly.
func auditLedger(t *testing.T, e *core.Engine, log *core.DeviceLog) {
	t.Helper()
	var loads, pageLoads, evictions, readbacks, restores, rollbacks, relocations, blocks, gcruns int64
	var faults, retries int64
	var configTime, readbackTime, restoreTime, faultTime sim.Time
	for _, ev := range log.Events() {
		if ev.Cost < 0 {
			t.Errorf("event %v has negative cost", ev)
		}
		switch ev.Op {
		case core.OpLoad:
			if ev.Page >= 0 {
				pageLoads++
			} else {
				loads++
			}
			configTime += ev.Cost
		case core.OpEvict:
			if !ev.Voluntary {
				evictions++
			}
		case core.OpReadback:
			readbacks++
			readbackTime += ev.Cost
		case core.OpRestore:
			restores++
			restoreTime += ev.Cost
		case core.OpReset:
			restoreTime += ev.Cost
		case core.OpRollback:
			rollbacks++
		case core.OpRelocate:
			relocations++
			configTime += ev.Cost
		case core.OpBlock:
			blocks++
		case core.OpGC:
			gcruns++
		case core.OpFault:
			faults++
			faultTime += ev.Cost
			if ev.Note == "" {
				t.Errorf("fault event %v carries no kind note", ev)
			}
		case core.OpRetry:
			retries++
			faultTime += ev.Cost
		}
	}
	m := &e.M
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"Loads", m.Loads.Value(), loads},
		{"PageLoads", m.PageLoads.Value(), pageLoads},
		{"PageFaults", m.PageFaults.Value(), pageLoads},
		{"Evictions", m.Evictions.Value(), evictions},
		{"Readbacks", m.Readbacks.Value(), readbacks},
		{"Restores", m.Restores.Value(), restores},
		{"Rollbacks", m.Rollbacks.Value(), rollbacks},
		{"Relocations", m.Relocations.Value(), relocations},
		{"Blocks", m.Blocks.Value(), blocks},
		{"GCRuns", m.GCRuns.Value(), gcruns},
		{"FaultsInjected", m.FaultsInjected.Value(), faults},
		{"FaultRetries", m.FaultRetries.Value(), retries},
	} {
		if c.got != c.want {
			t.Errorf("Metrics.%s = %d, ledger events say %d", c.name, c.got, c.want)
		}
	}
	for _, c := range []struct {
		name string
		got  sim.Time
		want sim.Time
	}{
		{"ConfigTime", m.ConfigTime, configTime},
		{"ReadbackTime", m.ReadbackTime, readbackTime},
		{"RestoreTime", m.RestoreTime, restoreTime},
		{"FaultTime", m.FaultTime, faultTime},
	} {
		if c.got < 0 {
			t.Errorf("Metrics.%s = %v is negative", c.name, c.got)
		}
		if c.got != c.want {
			t.Errorf("Metrics.%s = %v, ledger events say %v", c.name, c.got, c.want)
		}
	}
	// Every injected fault is resolved exactly once: by a retry or by an
	// escalation. Recoveries are ops that survived at least one fault, so
	// they can never outnumber the retries that saved them.
	if got := m.FaultRetries.Value() + m.FaultEscalations.Value(); got != m.FaultsInjected.Value() {
		t.Errorf("FaultRetries(%d) + FaultEscalations(%d) = %d, want FaultsInjected = %d",
			m.FaultRetries.Value(), m.FaultEscalations.Value(), got, m.FaultsInjected.Value())
	}
	if m.FaultRecoveries.Value() > m.FaultRetries.Value() {
		t.Errorf("FaultRecoveries = %d exceeds FaultRetries = %d",
			m.FaultRecoveries.Value(), m.FaultRetries.Value())
	}
	// The ledger's incremental fragmentation model must mirror the
	// residency table exactly, whatever sequence of loads, evictions and
	// relocations the run performed.
	if got, want := e.Ledger().Frag(), recomputeFrag(e); got != want {
		t.Errorf("Ledger.Frag() = %+v, residency table says %+v", got, want)
	}
}

// recomputeFrag derives FragStats from scratch out of the residency
// table — the reference the ledger's incremental model is audited
// against.
func recomputeFrag(e *core.Engine) core.FragStats {
	cols := e.Opt.Geometry.Cols
	f := core.FragStats{Cols: cols}
	observe := func(w int) {
		if w <= 0 {
			return
		}
		f.FreeCols += w
		f.FreeSpans++
		if w > f.LargestFree {
			f.LargestFree = w
		}
		b := 0
		for v := w; v > 1 && b < core.FragHistBuckets-1; v >>= 1 {
			b++
		}
		f.Hist[b]++
	}
	at := 0
	for _, r := range e.Ledger().Residents() {
		observe(r.Region.X - at)
		at = r.Region.X + r.Region.W
	}
	observe(cols - at)
	return f
}

func TestConformance(t *testing.T) {
	for _, impl := range confImpls() {
		impl := impl
		for _, pol := range []core.StatePolicy{core.SaveRestore, core.Rollback} {
			pol := pol
			t.Run(fmt.Sprintf("%s/%s", impl.name, pol), func(t *testing.T) {
				k := sim.New()
				mgr, engines, logs := impl.build(t, k)
				for _, e := range engines {
					e.Opt.State = pol
				}
				checked := &checkedFPGA{FPGA: mgr, t: t}
				os := hostos.New(k, hostos.Config{
					Policy: hostos.RR, TimeSlice: 300 * sim.Microsecond,
					CtxSwitch: 10 * sim.Microsecond, Syscall: 2 * sim.Microsecond,
				}, checked)
				if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
					att.AttachOS(os)
				}
				confScript(t, os)
				k.Run()
				if !os.AllDone() {
					t.Fatal("script did not run to completion")
				}
				for _, task := range os.Tasks() {
					if task.Turnaround() < 0 || task.CPUTime < 0 || task.HWTime < 0 ||
						task.Overhead < 0 || task.ReadyWait < 0 || task.BlockWait < 0 {
						t.Errorf("task %s has a negative time metric: %+v", task.Name, task)
					}
				}
				for i, e := range engines {
					auditLedger(t, e, logs[i])
				}
				// Every task has exited (Remove ran): the device state the
				// ledger left behind must pass the static verifier.
				lt, ok := mgr.(core.LintTargeter)
				if !ok {
					t.Fatalf("%s does not implement core.LintTargeter", impl.name)
				}
				diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
				if err != nil {
					t.Fatal(err)
				}
				if lint.HasErrors(diags) {
					t.Errorf("device not lint-clean after all tasks exited: %v", lint.Errors(diags))
				}
			})
		}
	}
}
