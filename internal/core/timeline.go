package core

import (
	"repro/internal/hostos"
	"repro/internal/trace"
)

// MergeTimeline flattens the scheduler's event log and any number of
// device logs (one per board) into a single time-ordered trace.Timeline:
// the host-OS view (who ran, who blocked) interleaved with the device
// view (what the ledger did on whose behalf). At equal timestamps the
// scheduler decision precedes the device operations it caused; the merge
// is stable, so a fixed-seed run renders byte-identically.
//
// Nil logs are skipped, so callers can pass whatever subset a run traced.
func MergeTimeline(sched *hostos.EventLog, devs ...*DeviceLog) *trace.Timeline {
	tl := &trace.Timeline{}
	if sched != nil {
		for _, e := range sched.Events() {
			tl.Add(trace.TimelineEvent{
				At:     e.At,
				Source: trace.SourceSched,
				Task:   e.Task,
				Kind:   e.Kind.String(),
			})
		}
	}
	for _, d := range devs {
		if d == nil {
			continue
		}
		for _, e := range d.Events() {
			tl.Add(trace.TimelineEvent{
				At:     e.At,
				Source: trace.SourceDevice,
				Task:   e.Task,
				Kind:   e.Op.String(),
				Detail: e.Detail(),
			})
		}
	}
	tl.Sort()
	return tl
}
