package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestLedgerCompactPacksLeft(t *testing.T) {
	e, led, log := ledgerFixture(t)
	a, cnt := e.Lib["adder8"], e.Lib["counter8"]
	x1 := a.BS.W + 2
	x2 := x1 + cnt.BS.W + 3
	led.Load("t0", a, 0, false)
	led.Load("t1", cnt, x1, false)
	led.Load("t2", a, x2, false)

	wantCost := led.relocateEstimate(led.ResidentAt(x1)) + led.relocateEstimate(led.ResidentAt(x2))
	res := led.Compact(0)
	if !res.Done || res.Err != nil || res.Moved != 2 {
		t.Fatalf("compact = %+v", res)
	}
	if res.Cost != wantCost {
		t.Fatalf("cost = %v, want %v", res.Cost, wantCost)
	}
	for _, x := range []int{0, a.BS.W, a.BS.W + cnt.BS.W} {
		if led.ResidentAt(x) == nil {
			t.Fatalf("no resident at packed column %d; residents %+v", x, led.Residents())
		}
	}
	used := 2*a.BS.W + cnt.BS.W
	if f := led.Frag(); f.FreeSpans != 1 || f.LargestFree != e.Opt.Geometry.Cols-used || f.Ratio() != 0 {
		t.Fatalf("frag after pack = %+v", f)
	}
	var gcs, relocs int
	for _, ev := range log.Events() {
		switch ev.Op {
		case OpGC:
			gcs++
			if ev.Note != "compact" {
				t.Errorf("gc event note = %q, want compact", ev.Note)
			}
		case OpRelocate:
			relocs++
		}
	}
	if gcs != 1 || relocs != 2 {
		t.Fatalf("gc events = %d, relocate events = %d", gcs, relocs)
	}
	// A second pass finds nothing to do and emits nothing.
	before := len(log.Events())
	if res := led.Compact(0); !res.Done || res.Moved != 0 {
		t.Fatalf("second compact = %+v", res)
	}
	if len(log.Events()) != before || e.M.GCRuns.Value() != 1 {
		t.Fatal("idle compact emitted events or counted a GC run")
	}
}

func TestLedgerCompactBudget(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	a, cnt := e.Lib["adder8"], e.Lib["counter8"]
	x1 := a.BS.W + 2
	x2 := x1 + cnt.BS.W + 3
	led.Load("t0", a, 0, false)
	led.Load("t1", cnt, x1, false)
	led.Load("t2", a, x2, false)
	est1 := led.relocateEstimate(led.ResidentAt(x1))

	// A budget below the first move's estimate does nothing — and charges
	// nothing.
	res := led.Compact(1)
	if res.Done || res.Moved != 0 || res.Cost != 0 || e.M.GCRuns.Value() != 0 {
		t.Fatalf("underbudget compact = %+v, gcruns = %d", res, e.M.GCRuns.Value())
	}
	// A budget covering exactly the first move performs it and stops.
	res = led.Compact(est1)
	if res.Done || res.Moved != 1 || res.Cost != est1 {
		t.Fatalf("one-move compact = %+v, want cost %v", res, est1)
	}
	// The next idle cycle finishes the job.
	res = led.Compact(0)
	if !res.Done || res.Moved != 1 {
		t.Fatalf("final compact = %+v", res)
	}
	if f := led.Frag(); f.Ratio() != 0 {
		t.Fatalf("frag after incremental pack = %+v", f)
	}
}

func TestLedgerCompactReadbackAbort(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	cnt := e.Lib["counter8"]
	led.Load("t0", cnt, 4, false) // hole at 0..4 forces a move
	plan, err := fault.ParseSpec("seed=3,retries=0,readback-flip@1")
	if err != nil {
		t.Fatal(err)
	}
	led.InjectFaults(fault.NewInjector(plan))

	res := led.Compact(0)
	if res.Done || res.Moved != 0 {
		t.Fatalf("faulted compact = %+v", res)
	}
	if esc, ok := fault.AsEscalation(res.Err); !ok || esc.Op != "readback" {
		t.Fatalf("err = %v, want readback escalation", res.Err)
	}
	// A readback escalation aborts before the strip is touched: it stays
	// resident at its old column, nothing is evicted.
	if led.ResidentAt(4) == nil || e.M.Evictions.Value() != 0 {
		t.Fatalf("strip not preserved: residents %+v, evictions %d", led.Residents(), e.M.Evictions.Value())
	}
	// The scripted fault is spent; the retry on the next idle cycle wins.
	res = led.Compact(0)
	if !res.Done || res.Err != nil || res.Moved != 1 || led.ResidentAt(0) == nil {
		t.Fatalf("retry compact = %+v", res)
	}
}

func TestLedgerCompactConfigAbortDropsStrip(t *testing.T) {
	e, led, log := ledgerFixture(t)
	a := e.Lib["adder8"]
	pinsBefore := e.FreePinCount()
	led.Load("t0", a, 5, false)
	plan, err := fault.ParseSpec("seed=3,retries=0,config-error@1")
	if err != nil {
		t.Fatal(err)
	}
	led.InjectFaults(fault.NewInjector(plan))

	res := led.Compact(0)
	if res.Done || res.Moved != 0 {
		t.Fatalf("faulted compact = %+v", res)
	}
	if esc, ok := fault.AsEscalation(res.Err); !ok || esc.Op != "relocate" {
		t.Fatalf("err = %v, want relocate escalation", res.Err)
	}
	// The apply destroyed the strip mid-move: it is dropped cleanly —
	// residency gone, pins refunded, an involuntary eviction on the
	// timeline, and the fragmentation model back to one free hole.
	if len(led.Residents()) != 0 {
		t.Fatalf("residents = %+v, want none", led.Residents())
	}
	if got := e.FreePinCount(); got != pinsBefore {
		t.Fatalf("pins not refunded: %d free, want %d", got, pinsBefore)
	}
	if e.M.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", e.M.Evictions.Value())
	}
	if f := led.Frag(); f.FreeSpans != 1 || f.FreeCols != e.Opt.Geometry.Cols {
		t.Fatalf("frag = %+v, want fully free device", f)
	}
	var evicts int
	for _, ev := range log.Events() {
		if ev.Op == OpEvict && !ev.Voluntary {
			evicts++
		}
	}
	if evicts != 1 {
		t.Fatalf("involuntary evict events = %d, want 1", evicts)
	}
	// With the doomed strip gone, the next pass is a no-op.
	if res := led.Compact(0); !res.Done || res.Moved != 0 || res.Err != nil {
		t.Fatalf("post-abort compact = %+v", res)
	}
}

func TestLedgerCompactRestoreAbortDropsStrip(t *testing.T) {
	e, led, _ := ledgerFixture(t)
	cnt := e.Lib["counter8"]
	led.Load("t0", cnt, 4, false)
	plan, err := fault.ParseSpec("seed=3,retries=0,restore-mismatch@1")
	if err != nil {
		t.Fatal(err)
	}
	led.InjectFaults(fault.NewInjector(plan))

	res := led.Compact(0)
	if esc, ok := fault.AsEscalation(res.Err); !ok || esc.Op != "restore" {
		t.Fatalf("err = %v, want restore escalation", res.Err)
	}
	if len(led.Residents()) != 0 || e.M.Evictions.Value() != 1 {
		t.Fatalf("residents = %+v, evictions = %d", led.Residents(), e.M.Evictions.Value())
	}
	if f := led.Frag(); f.FreeSpans != 1 || f.FreeCols != e.Opt.Geometry.Cols {
		t.Fatalf("frag = %+v, want fully free device", f)
	}
}

// TestPartitionCompactStopsEarly is the regression test for the §4 GC
// fix: compaction now stops as soon as a hole of the requested width
// exists, charging only the relocations actually performed, instead of
// sliding every resident strip.
func TestPartitionCompactStopsEarly(t *testing.T) {
	// Size the device so n strips tile it exactly (no free tail): every
	// hole in the test comes from a release, never from slack.
	probe := newEngine(t, testOptions())
	pc := probe.Lib["parity16"]
	n := probe.Opt.Geometry.Cols / pc.BS.W
	if byPins := probe.FreePinCount() / (pc.BS.NumIn + pc.BS.NumOut); byPins < n {
		n = byPins
	}
	if n < 5 {
		t.Fatalf("only %d parity16 strips fit, need >= 5", n)
	}
	opt := testOptions()
	opt.Geometry.Cols = n * pc.BS.W

	build := func(t *testing.T) (*Engine, *PartitionManager, []*partition) {
		e := newEngine(t, opt)
		pm, err := NewPartitionManager(sim.New(), e, PartitionConfig{
			Mode: VariablePartitions, Fit: FirstFit, GC: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := e.Lib["parity16"]
		w := c.BS.W
		var parts []*partition
		for i := 0; i < n; i++ {
			p := &partition{}
			p.span = pm.rm.Alloc(pm.rm.FindFree(w, FirstFit), w, p)
			e.Ledger().Load(fmt.Sprintf("t%d", i), c, p.span.X, false)
			p.circuit = c.Name
			parts = append(parts, p)
		}
		return e, pm, parts
	}

	// Two single-strip holes; a request for a double-width strip needs
	// exactly one slide to merge them.
	e, pm, parts := build(t)
	need := 2 * parts[0].span.W
	pm.releasePartition(parts[1], false)
	pm.releasePartition(parts[3], false)
	pm.compact(need)
	if got := e.M.Relocations.Value(); got != 1 {
		t.Fatalf("early-stop compact relocated %d strips, want 1", got)
	}
	if e.M.GCRuns.Value() != 1 {
		t.Fatalf("gc runs = %d", e.M.GCRuns.Value())
	}
	if _, largest := pm.FreeCols(); largest < need {
		t.Fatalf("largest hole = %d after compact, need %d", largest, need)
	}

	// The old full pack slides every out-of-place strip.
	e2, pm2, parts2 := build(t)
	pm2.releasePartition(parts2[1], false)
	pm2.releasePartition(parts2[3], false)
	pm2.compact(0)
	if full := e2.M.Relocations.Value(); full <= 1 {
		t.Fatalf("full pack relocated %d strips, expected more than the early stop's 1", full)
	}
}

// TestCompactEventsOnTimeline pins that a compaction pass shows up on
// the merged scheduler+device timeline: one gc event annotated
// "compact" followed by its relocate events.
func TestCompactEventsOnTimeline(t *testing.T) {
	e, led, log := ledgerFixture(t)
	led.Load("t0", e.Lib["adder8"], 5, false)
	if res := led.Compact(0); !res.Done || res.Moved != 1 {
		t.Fatalf("compact = %+v", res)
	}
	_ = e
	tl := MergeTimeline(nil, log)
	tl.Sort()
	var gcAt, relocAt = -1, -1
	for i, ev := range tl.Events {
		if ev.Source != trace.SourceDevice {
			continue
		}
		if ev.Kind == "gc" && strings.Contains(ev.Detail, "compact") && gcAt < 0 {
			gcAt = i
		}
		if ev.Kind == "relocate" && relocAt < 0 {
			relocAt = i
		}
	}
	if gcAt < 0 || relocAt < 0 || gcAt > relocAt {
		t.Fatalf("timeline order gc=%d relocate=%d:\n%s", gcAt, relocAt, tl.String())
	}
}
