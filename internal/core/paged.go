package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/rng"
	"repro/internal/sim"
)

// ReplacePolicy selects the page-replacement discipline (§2 pagination).
type ReplacePolicy int

// Replacement policies.
const (
	LRU ReplacePolicy = iota
	PageFIFO
	Clock
	Random
)

func (p ReplacePolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PageFIFO:
		return "fifo"
	case Clock:
		return "clock"
	case Random:
		return "random"
	}
	return fmt.Sprintf("replace(%d)", int(p))
}

// PagedConfig parameterizes the demand-paged loader.
type PagedConfig struct {
	// PageCells is the page size in CLBs (the fixed-size portion of §2).
	PageCells int
	// Frames is the number of page frames the device provides; 0 derives
	// it from the device capacity.
	Frames int
	Policy ReplacePolicy
	Seed   uint64
}

// pageID identifies one page of one circuit's configuration.
type pageID struct {
	circuit string
	index   int
}

// frame is one resident page slot.
type frame struct {
	page     pageID
	used     bool
	loadedAt int64 // FIFO sequence
	lastUse  int64 // LRU clock
	ref      bool  // Clock reference bit
}

// PagedLoader implements hostos.FPGA with §2's pagination: every
// configuration is divided into fixed-size pages, and an operation touches
// only the pages its request references. Missing pages fault in with a
// partial reconfiguration each; replacement follows the configured policy.
//
// Page frames are a residency/timing view of the configuration RAM: the
// loader charges exact download time per page (through the residency
// ledger, like every other download) and tracks frame contents. It does
// not maintain a functional image on the device — a page placed at an
// arbitrary frame origin would break relative routing, the constraint the
// paper itself raises for relocated configurations; functional correctness
// of page-wise downloads is covered by the bitstream tests.
type PagedLoader struct {
	E   *Engine
	K   *sim.Kernel
	Cfg PagedConfig

	frames  []frame
	where   map[pageID]int // resident page -> frame index
	seq     int64
	hand    int // Clock hand
	src     *rng.Source
	pagesOf map[string][]bitstream.Page
	// users counts the live tasks registered per circuit; when the last
	// user exits, the circuit's resident pages are released so long
	// multi-task runs cannot strand frames (see Remove).
	users map[string]map[hostos.TaskID]bool
}

var _ hostos.FPGA = (*PagedLoader)(nil)

// NewPagedLoader builds a demand-paged manager.
func NewPagedLoader(k *sim.Kernel, e *Engine, cfg PagedConfig) (*PagedLoader, error) {
	if cfg.PageCells <= 0 {
		return nil, fmt.Errorf("core: page size must be positive")
	}
	if cfg.Frames <= 0 {
		cfg.Frames = e.Opt.Geometry.NumCLBs() / cfg.PageCells
	}
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("core: device too small for any page frame")
	}
	e.Ledger().Bind(k)
	return &PagedLoader{
		E:       e,
		K:       k,
		Cfg:     cfg,
		frames:  make([]frame, cfg.Frames),
		where:   map[pageID]int{},
		src:     rng.New(cfg.Seed ^ 0xfeed),
		pagesOf: map[string][]bitstream.Page{},
		users:   map[string]map[hostos.TaskID]bool{},
	}, nil
}

// ResetForJob returns the loader to its post-construction state for
// warm-board reuse: all frames free, an empty page table, the
// replacement clock rewound, and — crucially — the page cache cleared,
// since the next job's circuits may compile differently under the same
// names. The random-replacement stream is re-seeded so page choices
// depend only on the job, never on what ran before.
func (pl *PagedLoader) ResetForJob() {
	pl.frames = make([]frame, pl.Cfg.Frames)
	pl.where = map[pageID]int{}
	pl.seq = 0
	pl.hand = 0
	pl.src = rng.New(pl.Cfg.Seed ^ 0xfeed)
	pl.pagesOf = map[string][]bitstream.Page{}
	pl.users = map[string]map[hostos.TaskID]bool{}
}

// Register implements hostos.FPGA.
func (pl *PagedLoader) Register(t *hostos.Task, circuit string) error {
	c, err := pl.E.Circuit(circuit)
	if err != nil {
		return err
	}
	if _, ok := pl.pagesOf[circuit]; !ok {
		pl.pagesOf[circuit] = c.BS.Pages(pl.Cfg.PageCells)
	}
	if pl.users[circuit] == nil {
		pl.users[circuit] = map[hostos.TaskID]bool{}
	}
	pl.users[circuit][t.ID] = true
	return nil
}

func (pl *PagedLoader) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := pl.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// neededPages resolves the request's page working set.
func (pl *PagedLoader) neededPages(t *hostos.Task) []pageID {
	req := t.CurrentRequest()
	pages := pl.pagesOf[req.Circuit]
	var ids []pageID
	if len(req.Pages) == 0 {
		for i := range pages {
			ids = append(ids, pageID{req.Circuit, i})
		}
		return ids
	}
	for _, p := range req.Pages {
		if p < 0 || p >= len(pages) {
			panic(fmt.Sprintf("core: task %s references page %d of %s which has %d pages",
				t.Name, p, req.Circuit, len(pages)))
		}
		ids = append(ids, pageID{req.Circuit, p})
	}
	return ids
}

// touch records a page hit for recency policies.
func (pl *PagedLoader) touch(fi int) {
	pl.seq++
	pl.frames[fi].lastUse = pl.seq
	pl.frames[fi].ref = true
}

// victim picks a frame to evict, never one in the pinned set.
func (pl *PagedLoader) victim(pinned map[int]bool) int {
	switch pl.Cfg.Policy {
	case LRU, PageFIFO:
		best := -1
		for i := range pl.frames {
			if pinned[i] {
				continue
			}
			if !pl.frames[i].used {
				return i
			}
			key := pl.frames[i].lastUse
			if pl.Cfg.Policy == PageFIFO {
				key = pl.frames[i].loadedAt
			}
			if best == -1 || key < keyOf(&pl.frames[best], pl.Cfg.Policy) {
				best = i
			}
		}
		if best == -1 {
			panic("core: all page frames pinned; working set exceeds frame count")
		}
		return best
	case Clock:
		for spins := 0; spins < 2*len(pl.frames)+1; spins++ {
			i := pl.hand
			pl.hand = (pl.hand + 1) % len(pl.frames)
			if pinned[i] {
				continue
			}
			if !pl.frames[i].used {
				return i
			}
			if pl.frames[i].ref {
				pl.frames[i].ref = false
				continue
			}
			return i
		}
		panic("core: clock found no victim; working set exceeds frame count")
	case Random:
		for tries := 0; tries < 10*len(pl.frames); tries++ {
			i := pl.src.Intn(len(pl.frames))
			if !pinned[i] {
				return i
			}
		}
		panic("core: random found no victim; working set exceeds frame count")
	}
	panic("core: unknown replacement policy")
}

func keyOf(f *frame, p ReplacePolicy) int64 {
	if p == PageFIFO {
		return f.loadedAt
	}
	return f.lastUse
}

// faultIn ensures the given pages are resident, returning the download
// cost (one partial reconfiguration per fault, charged by the ledger).
func (pl *PagedLoader) faultIn(t *hostos.Task, ids []pageID) sim.Time {
	if len(ids) > len(pl.frames) {
		panic(fmt.Sprintf("core: task %s needs %d pages at once with only %d frames",
			t.Name, len(ids), len(pl.frames)))
	}
	// Pin the whole working set so faults never evict pages needed by the
	// same operation.
	pinned := map[int]bool{}
	for _, id := range ids {
		if fi, ok := pl.where[id]; ok {
			pinned[fi] = true
		}
	}
	led := pl.E.Ledger()
	var cost sim.Time
	for _, id := range ids {
		if fi, ok := pl.where[id]; ok {
			pl.touch(fi)
			continue
		}
		fi := pl.victim(pinned)
		if pl.frames[fi].used {
			old := pl.frames[fi].page
			delete(pl.where, old)
			led.EvictPage(t.Name, old.circuit, old.index)
		}
		pl.seq++
		pl.frames[fi] = frame{page: id, used: true, loadedAt: pl.seq, lastUse: pl.seq, ref: true}
		pl.where[id] = fi
		pinned[fi] = true
		pages := pl.pagesOf[id.circuit]
		cost += led.LoadPage(t.Name, id.circuit, id.index, len(pages[id.index].Cells))
	}
	return cost
}

// Acquire implements hostos.FPGA: pagination never blocks; pressure shows
// up as fault time.
func (pl *PagedLoader) Acquire(t *hostos.Task) (sim.Time, bool) {
	return pl.faultIn(t, pl.neededPages(t)), true
}

// ExecTime implements hostos.FPGA.
func (pl *PagedLoader) ExecTime(t *hostos.Task) sim.Time {
	c := pl.circuitOf(t)
	req := t.CurrentRequest()
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return pl.E.ExecQuantum(pure, 1)
}

// Preemptable implements hostos.FPGA.
func (pl *PagedLoader) Preemptable(t *hostos.Task) bool {
	if !pl.circuitOf(t).Sequential {
		return true
	}
	return pl.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA: resident pages stay resident across
// preemption; only vector granularity is lost.
func (pl *PagedLoader) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA: fault back in whatever was evicted while
// the task was away.
func (pl *PagedLoader) Resume(t *hostos.Task) sim.Time {
	return pl.faultIn(t, pl.neededPages(t))
}

// Complete implements hostos.FPGA. Pages stay resident between a task's
// operations on purpose: they are a cache for the task's next request
// (and for other tasks sharing the circuit). Reclamation happens at task
// exit, in Remove.
func (pl *PagedLoader) Complete(t *hostos.Task) {}

// Remove implements hostos.FPGA: the exiting task drops its reference on
// every circuit it registered, and circuits left with no live user have
// their resident pages released — their frames become free (preferred by
// every replacement policy) instead of lingering as phantom residency for
// the rest of a long multi-task run.
func (pl *PagedLoader) Remove(t *hostos.Task) {
	led := pl.E.Ledger()
	// Frames are scanned in index order so the trace stays deterministic.
	for fi := range pl.frames {
		f := &pl.frames[fi]
		if !f.used {
			continue
		}
		us := pl.users[f.page.circuit]
		if us == nil || !us[t.ID] || len(us) > 1 {
			continue
		}
		delete(pl.where, f.page)
		led.ReleasePage(t.Name, f.page.circuit, f.page.index)
		*f = frame{}
	}
	for circuit, us := range pl.users {
		if us[t.ID] {
			delete(us, t.ID)
			if len(us) == 0 {
				delete(pl.users, circuit)
			}
		}
	}
}

// ResidentPages returns the number of currently resident pages.
func (pl *PagedLoader) ResidentPages() int { return len(pl.where) }

// FaultRate returns faults per page reference so far.
func (pl *PagedLoader) FaultRate() float64 {
	refs := pl.E.M.PageFaults.Value() + pl.hits()
	if refs == 0 {
		return 0
	}
	return float64(pl.E.M.PageFaults.Value()) / float64(refs)
}

// hits is derived: every touch that was not a fault.
func (pl *PagedLoader) hits() int64 {
	// seq increments on every touch and every load; loads == PageLoads.
	h := pl.seq - pl.E.M.PageLoads.Value()
	if h < 0 {
		return 0
	}
	return h
}

// LintTarget exports the manager's live device state for the static
// verifier via the ledger. Page frames write no fabric cells (see the
// type comment), so the device view is empty but still checkable.
func (pl *PagedLoader) LintTarget() *lint.Target {
	return pl.E.Ledger().LintTarget("paged")
}

// LintTargets implements LintTargeter.
func (pl *PagedLoader) LintTargets() []*lint.Target {
	return []*lint.Target{pl.LintTarget()}
}
