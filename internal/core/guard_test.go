package core

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

// The ledger's single-goroutine assertion must fail loudly when a second
// goroutine enters while an operation is mid-flight, and must stay
// invisible to well-behaved single-goroutine use (every other test in
// this package exercises that side).
func TestLedgerConcurrencyGuard(t *testing.T) {
	e := NewEngine(DefaultOptions())
	l := e.Ledger()

	// Simulate an operation held mid-flight on another goroutine.
	l.guard.Lock()
	defer l.guard.Unlock()

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		l.NoteBlock("intruder")
	}()
	v := <-done
	if v == nil {
		t.Fatal("concurrent ledger entry did not panic")
	}
	msg, ok := v.(string)
	if !ok || !strings.Contains(msg, "concurrent Ledger use") {
		t.Fatalf("unexpected panic value: %v", v)
	}
}

// Reentrant composite operations (Relocate performs readback + restore
// internally) must not trip the guard.
func TestLedgerGuardAllowsComposites(t *testing.T) {
	e := NewEngine(DefaultOptions())
	nl := netlist.Counter(8)
	if err := e.AddCircuit(nl); err != nil {
		t.Fatal(err)
	}
	c := e.Lib[nl.Name]
	l := e.Ledger()
	if _, _, err := l.TryLoad("t", c, 0, false); err != nil {
		t.Fatal(err)
	}
	l.Relocate(0, c.BS.W+1) // readback + apply + restore under one guard entry
	if got := l.Residents(); len(got) != 1 || got[0].Region.X != c.BS.W+1 {
		t.Fatalf("relocate failed: %+v", got)
	}
}
