package core

import (
	"testing"

	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestExecQuantumApriori(t *testing.T) {
	e := NewEngine(testOptions())
	if got := e.ExecQuantum(100*sim.Microsecond, 1); got != 100*sim.Microsecond {
		t.Fatalf("a-priori quantum %v", got)
	}
	if got := e.ExecQuantum(100*sim.Microsecond, 3); got != 300*sim.Microsecond {
		t.Fatalf("muxed quantum %v", got)
	}
	if got := e.ExecQuantum(0, 5); got != 0 {
		t.Fatalf("zero work quantum %v", got)
	}
}

func TestExecQuantumDoneSignalQuantizes(t *testing.T) {
	opt := testOptions()
	opt.Completion = DoneSignal
	opt.PollInterval = 100 * sim.Microsecond
	opt.PollCost = 1 * sim.Microsecond
	e := NewEngine(opt)
	// 250us of work -> 3 polls -> 300us + 3us poll cost.
	if got := e.ExecQuantum(250*sim.Microsecond, 1); got != 303*sim.Microsecond {
		t.Fatalf("done-signal quantum %v, want 303us", got)
	}
	// Exactly one interval -> one poll.
	if got := e.ExecQuantum(100*sim.Microsecond, 1); got != 101*sim.Microsecond {
		t.Fatalf("exact-interval quantum %v, want 101us", got)
	}
}

func TestEngineDefaultsApplied(t *testing.T) {
	opt := testOptions()
	opt.PollInterval, opt.PollCost = 0, 0
	e := NewEngine(opt)
	if e.Opt.PollInterval <= 0 || e.Opt.PollCost <= 0 {
		t.Fatal("poll defaults not applied")
	}
}

func TestCircuitLookupError(t *testing.T) {
	e := NewEngine(testOptions())
	if _, err := e.Circuit("nope"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestAddCircuitIdempotent(t *testing.T) {
	e := NewEngine(testOptions())
	if err := e.AddCircuit(netlist.Adder(8)); err != nil {
		t.Fatal(err)
	}
	before := e.Lib["adder8"]
	if err := e.AddCircuit(netlist.Adder(8)); err != nil {
		t.Fatal(err)
	}
	if e.Lib["adder8"] != before {
		t.Fatal("re-registration replaced the compiled circuit")
	}
}

func TestBindingWrapsWhenShort(t *testing.T) {
	e := newEngine(t, testOptions())
	c := e.Lib["adder8"]
	pins := []int{0, 1, 2}
	in, out := binding(c, pins)
	if len(in) != c.BS.NumIn || len(out) != c.BS.NumOut {
		t.Fatal("binding lengths wrong")
	}
	for _, p := range append(append([]int{}, in...), out...) {
		if p < 0 || p > 2 {
			t.Fatalf("binding pin %d outside the allocated set", p)
		}
	}
	// Empty pin set leaves everything unbound.
	in, out = binding(c, nil)
	for _, p := range append(append([]int{}, in...), out...) {
		if p != -1 {
			t.Fatal("empty allocation should leave ports unbound")
		}
	}
}

func TestUtilizationTracksLoadsAndEvictions(t *testing.T) {
	h, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO})
	h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100)})
	h.K.Run()
	if h.E.M.Util.Max() <= 0 {
		t.Fatal("utilization never rose")
	}
}
