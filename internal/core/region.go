package core

// Amorphous region support (Nguyen & Hoe's flexible boundaries): the
// device's columns are tracked as contiguous spans whose boundaries
// slide, instead of the paper's disjoint split/merge partitions. Two
// consumers share this file's machinery:
//
//   - RegionMap is the manager-side table: owner-carrying spans with
//     grow/shrink/slide operations, used by PartitionManager (which
//     keeps §4's policy on top) and AmorphousManager (exact-fit spans,
//     neighbor sliding).
//   - fragTracker is the ledger-side model: a sorted, coalesced free
//     list over the residency table, maintained incrementally on every
//     load, evict and relocate, so FragStats is always live.

import (
	"fmt"
	"sort"
)

// FragHistBuckets is the number of power-of-two width buckets in the
// free-span histogram: bucket i counts free spans of width in
// [2^i, 2^(i+1)); the last bucket is open-ended.
const FragHistBuckets = 8

// FragStats measures external fragmentation of a column range: how much
// space is free, how much of it is usable as one contiguous hole, and
// how the rest shatters by size.
type FragStats struct {
	Cols        int                  `json:"cols"`         // columns tracked
	FreeCols    int                  `json:"free_cols"`    // total free columns
	LargestFree int                  `json:"largest_free"` // widest contiguous free span
	FreeSpans   int                  `json:"free_spans"`   // number of free spans
	Hist        [FragHistBuckets]int `json:"hist"`         // free spans by power-of-two width
}

// Ratio returns the external-fragmentation ratio 1 - largest/free: 0
// when the free space is one contiguous hole (or there is none),
// approaching 1 as it shatters into unusable slivers.
func (f FragStats) Ratio() float64 {
	if f.FreeCols == 0 {
		return 0
	}
	return 1 - float64(f.LargestFree)/float64(f.FreeCols)
}

// Merge folds another device's stats into f: totals and the histogram
// add, LargestFree takes the maximum. Merging per-device stats gives a
// board- or node-level view — the fleet layer aggregates every board of
// a node this way to feed placement scoring and the per-node gauges.
func (f *FragStats) Merge(o FragStats) {
	f.Cols += o.Cols
	f.FreeCols += o.FreeCols
	f.FreeSpans += o.FreeSpans
	if o.LargestFree > f.LargestFree {
		f.LargestFree = o.LargestFree
	}
	for i, n := range o.Hist {
		f.Hist[i] += n
	}
}

// FreshFrag returns the stats of a device that has never been touched:
// one free span covering all cols. Exposed so layers that track boards
// before their first job (the serve pool, fleet placement) report full
// capacity rather than zero.
func FreshFrag(cols int) FragStats {
	var f FragStats
	f.Cols = cols
	if cols > 0 {
		f.observe(cols)
	}
	return f
}

func histBucket(w int) int {
	b := 0
	for w > 1 && b < FragHistBuckets-1 {
		w >>= 1
		b++
	}
	return b
}

func (f *FragStats) observe(w int) {
	f.FreeCols += w
	f.FreeSpans++
	if w > f.LargestFree {
		f.LargestFree = w
	}
	f.Hist[histBucket(w)]++
}

// Span is one contiguous column range of a RegionMap. Owner is
// manager-defined payload; nil marks the span free. Occupied spans keep
// object identity across every map operation (including Move), so a
// manager can hold the pointer in its own tables; free-span pointers
// are invalidated by the next mutation.
type Span struct {
	X, W  int
	Owner any
}

// Free reports whether the span is unowned.
func (s *Span) Free() bool { return s.Owner == nil }

// RegionMap tracks contiguous, non-overlapping column spans over a
// [0, cols) device. A sliding map (NewRegionMap) tiles the whole range
// — free space is explicit and coalesced by construction, boundaries
// move on Alloc/Release/Move. A fixed map (NewFixedRegionMap) has
// static slots that never split, merge or move, like §4's fixed
// partition table.
type RegionMap struct {
	cols  int
	fixed bool
	spans []*Span // sorted by X, non-overlapping
}

// NewRegionMap returns a sliding map with one free span covering the
// whole device.
func NewRegionMap(cols int) *RegionMap {
	return &RegionMap{cols: cols, spans: []*Span{{X: 0, W: cols}}}
}

// NewFixedRegionMap carves static slots of the given widths left to
// right; leftover columns beyond the configured widths are unusable (as
// with a partition table that does not cover the disk).
func NewFixedRegionMap(widths []int, cols int) (*RegionMap, error) {
	rm := &RegionMap{cols: cols, fixed: true}
	x := 0
	for _, w := range widths {
		if w <= 0 || x+w > cols {
			return nil, fmt.Errorf("core: fixed partition widths %v exceed %d columns", widths, cols)
		}
		rm.spans = append(rm.spans, &Span{X: x, W: w})
		x += w
	}
	if len(rm.spans) == 0 {
		return nil, fmt.Errorf("core: fixed mode requires FixedWidths")
	}
	return rm, nil
}

// Cols returns the tracked column count.
func (rm *RegionMap) Cols() int { return rm.cols }

// Spans returns the span table sorted by origin (a copied slice over
// the live span objects).
func (rm *RegionMap) Spans() []*Span {
	return append([]*Span(nil), rm.spans...)
}

// FindFree returns a free span of width >= need per the fit policy
// (first-fit: lowest origin; best-fit: smallest adequate width, lowest
// origin on ties), or nil.
func (rm *RegionMap) FindFree(need int, fit FitPolicy) *Span {
	var best *Span
	for _, s := range rm.spans {
		if !s.Free() || s.W < need {
			continue
		}
		if best == nil {
			best = s
			if fit == FirstFit {
				return best
			}
			continue
		}
		if s.W < best.W {
			best = s
		}
	}
	return best
}

// Alloc claims need columns from free span s for owner. In a fixed map
// (and on exact fit) the whole span is claimed; otherwise the front is
// carved off and the remainder stays free, its boundary slid right. It
// returns the claimed span.
func (rm *RegionMap) Alloc(s *Span, need int, owner any) *Span {
	if !s.Free() || s.W < need || need <= 0 {
		panic(fmt.Sprintf("core: region alloc of %d columns from span x=%d w=%d free=%v", need, s.X, s.W, s.Free()))
	}
	if rm.fixed || s.W == need {
		s.Owner = owner
		return s
	}
	claimed := &Span{X: s.X, W: need, Owner: owner}
	s.X += need
	s.W -= need
	rm.insert(claimed)
	return claimed
}

// Release frees s. In a sliding map adjacent free spans coalesce.
func (rm *RegionMap) Release(s *Span) {
	s.Owner = nil
	if !rm.fixed {
		rm.coalesce(s)
	}
}

// Move slides occupied span s so its origin becomes newX. The
// destination must be covered by free space and s's own extent (the
// ledger's Relocate clears the old strip before writing the new one, so
// overlap is fine). s keeps its identity: callers' pointers stay valid.
func (rm *RegionMap) Move(s *Span, newX int) {
	if rm.fixed {
		panic("core: region move in a fixed map")
	}
	if s.Free() {
		panic("core: region move of a free span")
	}
	if newX == s.X {
		return
	}
	owner, w := s.Owner, s.W
	// Free the old extent, letting it coalesce with its neighbors — but
	// keep the table entry in a fresh husk object so s can be reused as
	// the claimed destination span.
	s.Owner = nil
	rm.coalesce(s)
	husk := &Span{X: s.X, W: s.W}
	rm.spans[rm.index(s)] = husk
	// The destination must now lie inside one free span (possibly the
	// husk itself).
	var f *Span
	for _, cand := range rm.spans {
		if cand.Free() && cand.X <= newX && newX+w <= cand.X+cand.W {
			f = cand
			break
		}
	}
	if f == nil {
		panic(fmt.Sprintf("core: region move target [%d,%d) is not free", newX, newX+w))
	}
	fx, fw := f.X, f.W
	s.X, s.W, s.Owner = newX, w, owner
	if newX > fx {
		f.W = newX - fx
		rm.insert(s)
	} else {
		rm.spans[rm.index(f)] = s
	}
	if end := newX + w; end < fx+fw {
		rm.insert(&Span{X: end, W: fx + fw - end})
	}
}

// MaxSlotWidth returns the widest span in the table, free or not — in a
// fixed map, the widest slot a circuit could ever occupy.
func (rm *RegionMap) MaxSlotWidth() int {
	w := 0
	for _, s := range rm.spans {
		if s.W > w {
			w = s.W
		}
	}
	return w
}

// Frag computes the live fragmentation statistics over the map's free
// spans. In a sliding map free spans are coalesced by construction, so
// the numbers are exact; in a fixed map each free slot counts on its
// own (slots never merge).
func (rm *RegionMap) Frag() FragStats {
	f := FragStats{Cols: rm.cols}
	for _, s := range rm.spans {
		if s.Free() {
			f.observe(s.W)
		}
	}
	return f
}

// FreeCols returns the total free width and the largest free span — the
// external-fragmentation measure of experiment F4, shared by every
// consumer through FragStats.
func (rm *RegionMap) FreeCols() (total, largest int) {
	f := rm.Frag()
	return f.FreeCols, f.LargestFree
}

// FreeList returns the free spans by value, sorted by origin.
func (rm *RegionMap) FreeList() []Span {
	var out []Span
	for _, s := range rm.spans {
		if s.Free() {
			out = append(out, *s)
		}
	}
	return out
}

// SpansIn returns the occupied spans lying fully inside [lo, hi),
// sorted by origin.
func (rm *RegionMap) SpansIn(lo, hi int) []*Span {
	var out []*Span
	for _, s := range rm.spans {
		if !s.Free() && s.X >= lo && s.X+s.W <= hi {
			out = append(out, s)
		}
	}
	return out
}

// index returns s's position in the table.
func (rm *RegionMap) index(s *Span) int {
	i := sort.Search(len(rm.spans), func(i int) bool { return rm.spans[i].X >= s.X })
	if i < len(rm.spans) && rm.spans[i] == s {
		return i
	}
	panic("core: span not in region map")
}

// insert places s at its sorted position.
func (rm *RegionMap) insert(s *Span) {
	i := sort.Search(len(rm.spans), func(i int) bool { return rm.spans[i].X >= s.X })
	rm.spans = append(rm.spans, nil)
	copy(rm.spans[i+1:], rm.spans[i:])
	rm.spans[i] = s
}

// coalesce merges s with adjacent free neighbors; s survives, the
// neighbors are removed.
func (rm *RegionMap) coalesce(s *Span) {
	i := rm.index(s)
	for i+1 < len(rm.spans) {
		n := rm.spans[i+1]
		if !n.Free() || s.X+s.W != n.X {
			break
		}
		s.W += n.W
		rm.spans = append(rm.spans[:i+1], rm.spans[i+2:]...)
	}
	for i > 0 {
		n := rm.spans[i-1]
		if !n.Free() || n.X+n.W != s.X {
			break
		}
		s.X = n.X
		s.W += n.W
		rm.spans = append(rm.spans[:i-1], rm.spans[i:]...)
		i--
	}
}

// fragSpan is one free column range of the ledger's tracker.
type fragSpan struct{ x, w int }

// fragTracker is the ledger's incremental fragmentation model: a
// sorted, disjoint, coalesced list of free column ranges over [0, cols),
// mirroring the residency table's complement exactly — including on
// escalation paths, where the table keeps the doomed entry. Updated in
// O(free spans) per operation; FragStats is a scan of the (short) free
// list instead of a walk of the residency table.
type fragTracker struct {
	cols  int
	spans []fragSpan
}

func newFragTracker(cols int) *fragTracker {
	ft := &fragTracker{cols: cols}
	if cols > 0 {
		ft.spans = []fragSpan{{0, cols}}
	}
	return ft
}

// alloc marks [x, x+w) occupied. The range must be free — resident
// strips are disjoint by construction, so a violation is a ledger bug.
func (ft *fragTracker) alloc(x, w int) {
	if w <= 0 {
		return
	}
	i := sort.Search(len(ft.spans), func(i int) bool { return ft.spans[i].x+ft.spans[i].w > x })
	if i == len(ft.spans) || ft.spans[i].x > x || x+w > ft.spans[i].x+ft.spans[i].w {
		panic(fmt.Sprintf("core: fragment tracker: alloc of non-free columns [%d,%d)", x, x+w))
	}
	s := ft.spans[i]
	pre := fragSpan{s.x, x - s.x}
	post := fragSpan{x + w, s.x + s.w - (x + w)}
	switch {
	case pre.w > 0 && post.w > 0:
		ft.spans[i] = pre
		ft.spans = append(ft.spans, fragSpan{})
		copy(ft.spans[i+2:], ft.spans[i+1:])
		ft.spans[i+1] = post
	case pre.w > 0:
		ft.spans[i] = pre
	case post.w > 0:
		ft.spans[i] = post
	default:
		ft.spans = append(ft.spans[:i], ft.spans[i+1:]...)
	}
}

// free marks [x, x+w) free again, coalescing with neighbors. The range
// must be fully occupied and inside the device.
func (ft *fragTracker) free(x, w int) {
	if w <= 0 {
		return
	}
	if x < 0 || x+w > ft.cols {
		panic(fmt.Sprintf("core: fragment tracker: free of columns [%d,%d) outside [0,%d)", x, x+w, ft.cols))
	}
	j := sort.Search(len(ft.spans), func(i int) bool { return ft.spans[i].x >= x })
	if j > 0 && ft.spans[j-1].x+ft.spans[j-1].w > x {
		panic(fmt.Sprintf("core: fragment tracker: free of already-free columns [%d,%d)", x, x+w))
	}
	if j < len(ft.spans) && x+w > ft.spans[j].x {
		panic(fmt.Sprintf("core: fragment tracker: free of already-free columns [%d,%d)", x, x+w))
	}
	mergeLeft := j > 0 && ft.spans[j-1].x+ft.spans[j-1].w == x
	mergeRight := j < len(ft.spans) && x+w == ft.spans[j].x
	switch {
	case mergeLeft && mergeRight:
		ft.spans[j-1].w += w + ft.spans[j].w
		ft.spans = append(ft.spans[:j], ft.spans[j+1:]...)
	case mergeLeft:
		ft.spans[j-1].w += w
	case mergeRight:
		ft.spans[j].x = x
		ft.spans[j].w += w
	default:
		ft.spans = append(ft.spans, fragSpan{})
		copy(ft.spans[j+1:], ft.spans[j:])
		ft.spans[j] = fragSpan{x, w}
	}
}

// stats computes FragStats from the free list.
func (ft *fragTracker) stats() FragStats {
	f := FragStats{Cols: ft.cols}
	for _, s := range ft.spans {
		f.observe(s.w)
	}
	return f
}

// rebuild recomputes the free list from a residency table (warm reset).
func (ft *fragTracker) rebuild(residents map[int]*Resident) {
	ft.spans = ft.spans[:0]
	if ft.cols > 0 {
		ft.spans = append(ft.spans, fragSpan{0, ft.cols})
	}
	xs := make([]int, 0, len(residents))
	for x := range residents {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	for _, x := range xs {
		r := residents[x]
		ft.alloc(r.Region.X, r.Region.W)
	}
}
