package core_test

// Golden faulted-timeline test: a fixed fault plan (seed + scripted
// schedule) over the golden scenario renders a byte-identical merged
// trace every run — injected faults, retries and recoveries included.
// This is the determinism bar the fault injector has to meet before a
// "-faults" reproduction report is worth anything.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// goldenFaultPlan is the pinned campaign: scripted hits on the config,
// readback and restore points plus a low probabilistic drizzle, with two
// retries and a 50us doubling backoff. Every op recovers (the script
// never fires more than Retries times in a row), so the scenario still
// completes.
func goldenFaultPlan(t *testing.T) fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec("seed=1789,retries=2,backoff=50us," +
		"config-error=0.02,config-error@2,pin-glitch@5,readback-flip@1,restore-mismatch@2")
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// goldenFaultRun executes the golden scenario under the pinned fault
// plan and returns the rendered merged timeline plus the engine for
// metric assertions.
func goldenFaultRun(t *testing.T) (string, *core.Engine) {
	t.Helper()
	k := sim.New()
	e, log := confEngine(t)
	e.Ledger().InjectFaults(fault.NewInjector(goldenFaultPlan(t)))
	d := core.NewDynamicLoader(k, e)
	os := hostos.New(k, hostos.Config{
		Policy: hostos.RR, TimeSlice: 250 * sim.Microsecond,
		CtxSwitch: 10 * sim.Microsecond, Syscall: 2 * sim.Microsecond,
	}, d)
	sched := hostos.NewEventLog(0)
	os.AttachTrace(sched)
	confScript(t, os)
	k.Run()
	if !os.AllDone() {
		t.Fatal("faulted golden scenario did not complete")
	}
	return core.MergeTimeline(sched, log).String(), e
}

func TestGoldenTimelineFaulted(t *testing.T) {
	first, e := goldenFaultRun(t)
	if first == "" {
		t.Fatal("empty merged timeline")
	}
	// The injected campaign must be visible on the timeline, typed.
	for _, want := range []string{"fault", "retry", "[config-error]", "[pin-glitch]", "[readback-flip bit ", "[restore-mismatch bit "} {
		if !strings.Contains(first, want) {
			t.Errorf("faulted timeline lacks %q:\n%s", want, first)
		}
	}
	if e.M.FaultsInjected.Value() < 4 {
		t.Errorf("FaultsInjected = %d, want >= 4 (scripted hits)", e.M.FaultsInjected.Value())
	}
	if e.M.FaultEscalations.Value() != 0 {
		t.Errorf("FaultEscalations = %d, want 0 (plan is recoverable)", e.M.FaultEscalations.Value())
	}
	if e.M.FaultRecoveries.Value() == 0 {
		t.Error("no recoveries recorded")
	}
	if e.M.FaultTime <= 0 {
		t.Errorf("FaultTime = %v, want > 0", e.M.FaultTime)
	}
	for i := 0; i < 3; i++ {
		again, _ := goldenFaultRun(t)
		if again != first {
			t.Fatalf("run %d diverged from first run:\n--- first ---\n%s\n--- again ---\n%s", i+2, first, again)
		}
	}
	// And the unfaulted golden run must be untouched by all of this: the
	// injector is opt-in, per ledger.
	if plain := goldenRun(t); strings.Contains(plain, "fault") {
		t.Fatal("fault events leaked into the injector-free golden run")
	}
}

// TestLoadEscalation drives the config point past its retry budget and
// requires the typed escalation error from TryLoad.
func TestLoadEscalation(t *testing.T) {
	plan, err := fault.ParseSpec("seed=3,retries=1,backoff=10us,config-error@1,config-error@2")
	if err != nil {
		t.Fatal(err)
	}
	e, log := confEngine(t)
	e.Ledger().InjectFaults(fault.NewInjector(plan))
	_, _, err = e.Ledger().TryLoad("task", e.Lib["adder8"], 0, false)
	if err == nil {
		t.Fatal("TryLoad succeeded through an exhausted retry budget")
	}
	esc, ok := fault.AsEscalation(err)
	if !ok {
		t.Fatalf("TryLoad error %v is not a typed escalation", err)
	}
	if esc.Kind != fault.ConfigError || esc.Op != "load" || esc.Attempts != 2 {
		t.Fatalf("escalation = %+v", esc)
	}
	var escErr *fault.EscalationError
	if !errors.As(err, &escErr) {
		t.Fatal("errors.As failed on the escalation")
	}
	if e.M.FaultEscalations.Value() != 1 || e.M.FaultRetries.Value() != 1 {
		t.Fatalf("escalations=%d retries=%d, want 1/1",
			e.M.FaultEscalations.Value(), e.M.FaultRetries.Value())
	}
	if e.M.Loads.Value() != 0 {
		t.Fatalf("Loads = %d after escalated load", e.M.Loads.Value())
	}
	// The region was wiped and the pins refunded: the device must be
	// reusable once injection is disarmed.
	e.Ledger().InjectFaults(nil)
	if _, _, err := e.Ledger().TryLoad("task", e.Lib["adder8"], 0, false); err != nil {
		t.Fatalf("reload after escalation: %v", err)
	}
	var faults int
	for _, ev := range log.Events() {
		if ev.Op == core.OpFault {
			faults++
			if !strings.Contains(ev.Note, "config-error") {
				t.Errorf("fault event note %q lacks the kind", ev.Note)
			}
		}
	}
	if faults != 2 {
		t.Fatalf("fault events = %d, want 2", faults)
	}
}

// TestReadbackEscalationPanics pins the escalation path of operations
// that cannot return errors: a typed panic the serve layer can recover.
func TestReadbackEscalationPanics(t *testing.T) {
	plan, err := fault.ParseSpec("seed=5,retries=0,readback-flip@1")
	if err != nil {
		t.Fatal(err)
	}
	e, _ := confEngine(t)
	led := e.Ledger()
	c := e.Lib["counter8"]
	if _, _, err := led.TryLoad("task", c, 0, false); err != nil {
		t.Fatal(err)
	}
	led.InjectFaults(fault.NewInjector(plan))
	defer func() {
		esc, ok := fault.AsEscalation(recover())
		if !ok {
			t.Fatal("readback escalation did not panic with a typed error")
		}
		if esc.Kind != fault.ReadbackFlip || esc.Op != "readback" {
			t.Fatalf("escalation = %+v", esc)
		}
	}()
	led.Readback("task", c, c.BS.Region(0, 0))
}

// TestFaultRecoveryCharged verifies that a recovered load costs more
// than a clean one — wasted download plus backoff — while the nominal
// accounting (Loads, ConfigTime) stays identical.
func TestFaultRecoveryCharged(t *testing.T) {
	clean, _ := confEngine(t)
	_, cleanCost, err := clean.Ledger().TryLoad("task", clean.Lib["adder8"], 0, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.ParseSpec("seed=9,retries=2,backoff=30us,config-timeout@1")
	if err != nil {
		t.Fatal(err)
	}
	faulted, _ := confEngine(t)
	faulted.Ledger().InjectFaults(fault.NewInjector(plan))
	_, faultedCost, err := faulted.Ledger().TryLoad("task", faulted.Lib["adder8"], 0, false)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := 2*cleanCost + 30*sim.Microsecond // timeout charge + first backoff
	if faultedCost != cleanCost+wantExtra {
		t.Fatalf("faulted cost = %v, want clean %v + extra %v", faultedCost, cleanCost, wantExtra)
	}
	if faulted.M.ConfigTime != clean.M.ConfigTime {
		t.Fatalf("ConfigTime polluted by faults: %v vs %v", faulted.M.ConfigTime, clean.M.ConfigTime)
	}
	if faulted.M.FaultTime != wantExtra {
		t.Fatalf("FaultTime = %v, want %v", faulted.M.FaultTime, wantExtra)
	}
	if faulted.M.FaultRecoveries.Value() != 1 {
		t.Fatalf("FaultRecoveries = %d, want 1", faulted.M.FaultRecoveries.Value())
	}
}
