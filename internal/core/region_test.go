package core

import (
	"math/rand"
	"testing"
)

func spanLayout(t *testing.T, rm *RegionMap, want [][3]int) {
	t.Helper()
	spans := rm.Spans()
	if len(spans) != len(want) {
		t.Fatalf("span count = %d, want %d (%v)", len(spans), len(want), spans)
	}
	for i, s := range spans {
		free := 0
		if s.Free() {
			free = 1
		}
		if s.X != want[i][0] || s.W != want[i][1] || free != want[i][2] {
			t.Fatalf("span %d = {x=%d w=%d free=%v}, want {x=%d w=%d free=%d}",
				i, s.X, s.W, s.Free(), want[i][0], want[i][1], want[i][2])
		}
	}
}

func TestRegionMapAllocReleaseCoalesce(t *testing.T) {
	rm := NewRegionMap(20)
	a := rm.Alloc(rm.FindFree(5, FirstFit), 5, "a")
	b := rm.Alloc(rm.FindFree(5, FirstFit), 5, "b")
	c := rm.Alloc(rm.FindFree(5, FirstFit), 5, "c")
	spanLayout(t, rm, [][3]int{{0, 5, 0}, {5, 5, 0}, {10, 5, 0}, {15, 5, 1}})

	rm.Release(b) // hole between a and c
	spanLayout(t, rm, [][3]int{{0, 5, 0}, {5, 5, 1}, {10, 5, 0}, {15, 5, 1}})
	if f := rm.Frag(); f.FreeCols != 10 || f.LargestFree != 5 || f.FreeSpans != 2 {
		t.Fatalf("frag = %+v", f)
	}

	rm.Release(c) // c's span merges with both neighbors
	spanLayout(t, rm, [][3]int{{0, 5, 0}, {5, 15, 1}})
	if f := rm.Frag(); f.FreeCols != 15 || f.LargestFree != 15 || f.FreeSpans != 1 {
		t.Fatalf("frag = %+v", f)
	}
	rm.Release(a)
	spanLayout(t, rm, [][3]int{{0, 20, 1}})
}

func TestRegionMapFitPolicies(t *testing.T) {
	// Layout: holes of width 4 (x=0) and 6 (x=8), tail hole of 3 (x=17).
	rm := NewRegionMap(20)
	h1 := rm.Alloc(rm.FindFree(4, FirstFit), 4, "h1")
	rm.Alloc(rm.FindFree(4, FirstFit), 4, "keep1")
	h2 := rm.Alloc(rm.FindFree(6, FirstFit), 6, "h2")
	rm.Alloc(rm.FindFree(3, FirstFit), 3, "keep2")
	rm.Release(h1)
	rm.Release(h2)

	if s := rm.FindFree(3, FirstFit); s == nil || s.X != 0 {
		t.Fatalf("first-fit(3) = %+v, want hole at 0", s)
	}
	// Best fit prefers the tail hole of exactly 3.
	if s := rm.FindFree(3, BestFit); s == nil || s.X != 17 {
		t.Fatalf("best-fit(3) = %+v, want hole at 17", s)
	}
	if s := rm.FindFree(5, BestFit); s == nil || s.X != 8 {
		t.Fatalf("best-fit(5) = %+v, want hole at 8", s)
	}
	if s := rm.FindFree(7, BestFit); s != nil {
		t.Fatalf("best-fit(7) = %+v, want nil", s)
	}
}

func TestRegionMapMoveKeepsIdentity(t *testing.T) {
	rm := NewRegionMap(20)
	a := rm.Alloc(rm.FindFree(4, FirstFit), 4, "a")
	b := rm.Alloc(rm.FindFree(4, FirstFit), 4, "b")
	rm.Release(a)
	// Slide b left into a's hole; the move overlaps b's own old extent.
	rm.Move(b, 0)
	if b.X != 0 || b.W != 4 || b.Owner != "b" {
		t.Fatalf("b after move = %+v", b)
	}
	spanLayout(t, rm, [][3]int{{0, 4, 0}, {4, 16, 1}})

	// Move right into the middle of a free span: splits it.
	rm.Move(b, 10)
	spanLayout(t, rm, [][3]int{{0, 10, 1}, {10, 4, 0}, {14, 6, 1}})
	if b.X != 10 {
		t.Fatalf("b.X = %d", b.X)
	}
}

func TestRegionMapMovePanics(t *testing.T) {
	rm := NewRegionMap(10)
	a := rm.Alloc(rm.FindFree(4, FirstFit), 4, "a")
	b := rm.Alloc(rm.FindFree(4, FirstFit), 4, "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("move onto an occupied span did not panic")
			}
		}()
		rm.Move(a, 2) // would land on b's columns
	}()
	_ = b
}

func TestFixedRegionMap(t *testing.T) {
	rm, err := NewFixedRegionMap([]int{4, 6, 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MaxSlotWidth() != 6 {
		t.Fatalf("max slot = %d", rm.MaxSlotWidth())
	}
	// Exact-slot claim even when the request is narrower.
	s := rm.FindFree(3, BestFit)
	got := rm.Alloc(s, 3, "a")
	if got.W != 4 {
		t.Fatalf("fixed alloc carved the slot: w=%d", got.W)
	}
	rm.Release(got)
	// Free fixed slots never merge.
	spanLayout(t, rm, [][3]int{{0, 4, 1}, {4, 6, 1}, {10, 4, 1}})
	if f := rm.Frag(); f.FreeSpans != 3 || f.LargestFree != 6 {
		t.Fatalf("frag = %+v", f)
	}

	if _, err := NewFixedRegionMap([]int{9, 9}, 16); err == nil {
		t.Fatal("oversized widths accepted")
	}
	if _, err := NewFixedRegionMap(nil, 16); err == nil {
		t.Fatal("empty widths accepted")
	}
}

func TestFragStatsRatio(t *testing.T) {
	f := FragStats{}
	if f.Ratio() != 0 {
		t.Fatalf("empty ratio = %v", f.Ratio())
	}
	f = FragStats{FreeCols: 10, LargestFree: 10}
	if f.Ratio() != 0 {
		t.Fatalf("contiguous ratio = %v", f.Ratio())
	}
	f = FragStats{FreeCols: 10, LargestFree: 5}
	if f.Ratio() != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", f.Ratio())
	}
}

func TestFragHistBuckets(t *testing.T) {
	for _, c := range []struct{ w, bucket int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {127, 6}, {128, 7}, {100000, 7},
	} {
		if got := histBucket(c.w); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.w, got, c.bucket)
		}
	}
}

// bitmapStats recomputes FragStats from a plain occupancy bitmap — the
// brute-force reference for the incremental tracker.
func bitmapStats(occ []bool) FragStats {
	f := FragStats{Cols: len(occ)}
	run := 0
	flush := func() {
		if run > 0 {
			f.observe(run)
		}
		run = 0
	}
	for _, o := range occ {
		if o {
			flush()
		} else {
			run++
		}
	}
	flush()
	return f
}

// TestFragTrackerProperty drives random alloc/free sequences through the
// incremental tracker and checks it against the brute-force bitmap after
// every operation: the live FragStats must always equal the
// recomputed-from-scratch one.
func TestFragTrackerProperty(t *testing.T) {
	const cols = 48
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ft := newFragTracker(cols)
		occ := make([]bool, cols)
		type strip struct{ x, w int }
		var strips []strip
		for op := 0; op < 2000; op++ {
			if len(strips) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(strips))
				s := strips[i]
				ft.free(s.x, s.w)
				for c := s.x; c < s.x+s.w; c++ {
					occ[c] = false
				}
				strips = append(strips[:i], strips[i+1:]...)
			} else {
				// Pick a random free hole and allocate a random sub-range.
				w := 1 + rng.Intn(6)
				x := rng.Intn(cols - w + 1)
				ok := true
				for c := x; c < x+w; c++ {
					if occ[c] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				ft.alloc(x, w)
				for c := x; c < x+w; c++ {
					occ[c] = true
				}
				strips = append(strips, strip{x, w})
			}
			if got, want := ft.stats(), bitmapStats(occ); got != want {
				t.Fatalf("seed %d op %d: tracker %+v, bitmap %+v", seed, op, got, want)
			}
		}
	}
}

func TestFragTrackerPanics(t *testing.T) {
	for name, f := range map[string]func(*fragTracker){
		"alloc-occupied":   func(ft *fragTracker) { ft.alloc(0, 4); ft.alloc(2, 2) },
		"alloc-straddling": func(ft *fragTracker) { ft.alloc(0, 4); ft.alloc(3, 3) },
		"free-free":        func(ft *fragTracker) { ft.free(0, 2) },
		"free-outside":     func(ft *fragTracker) { ft.free(6, 4) },
	} {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f(newFragTracker(8))
		})
	}
}
