package core

import "repro/internal/sim"

// MetricsSnapshot is the JSON-serializable value form of Metrics: plain
// counters and times, detached from the live engine. The serve layer
// ships snapshots over the wire and accumulates them per board; the
// equality tests compare them byte-for-byte against direct runs.
type MetricsSnapshot struct {
	Loads       int64 `json:"loads"`
	Evictions   int64 `json:"evictions"`
	Readbacks   int64 `json:"readbacks"`
	Restores    int64 `json:"restores"`
	Rollbacks   int64 `json:"rollbacks"`
	PageFaults  int64 `json:"page_faults"`
	PageLoads   int64 `json:"page_loads"`
	GCRuns      int64 `json:"gc_runs"`
	Relocations int64 `json:"relocations"`
	Blocks      int64 `json:"blocks"`
	MuxedOps    int64 `json:"muxed_ops"`

	FaultsInjected   int64 `json:"faults_injected"`
	FaultRetries     int64 `json:"fault_retries"`
	FaultRecoveries  int64 `json:"fault_recoveries"`
	FaultEscalations int64 `json:"fault_escalations"`

	ConfigTime   sim.Time `json:"config_time_ns"`
	ReadbackTime sim.Time `json:"readback_time_ns"`
	RestoreTime  sim.Time `json:"restore_time_ns"`
	FaultTime    sim.Time `json:"fault_time_ns"`

	// UtilMean is the time-weighted mean of configured CLBs over [0, the
	// snapshot time]; UtilMax is the peak. Both describe one run and are
	// deliberately dropped by Accumulate (utilization does not sum).
	UtilMean float64 `json:"util_mean_clbs"`
	UtilMax  float64 `json:"util_max_clbs"`
}

// Snapshot captures the metrics at virtual time now (used to close the
// time-weighted utilization integral).
func (m *Metrics) Snapshot(now sim.Time) MetricsSnapshot {
	return MetricsSnapshot{
		Loads:       m.Loads.Value(),
		Evictions:   m.Evictions.Value(),
		Readbacks:   m.Readbacks.Value(),
		Restores:    m.Restores.Value(),
		Rollbacks:   m.Rollbacks.Value(),
		PageFaults:  m.PageFaults.Value(),
		PageLoads:   m.PageLoads.Value(),
		GCRuns:      m.GCRuns.Value(),
		Relocations: m.Relocations.Value(),
		Blocks:      m.Blocks.Value(),
		MuxedOps:    m.MuxedOps.Value(),

		FaultsInjected:   m.FaultsInjected.Value(),
		FaultRetries:     m.FaultRetries.Value(),
		FaultRecoveries:  m.FaultRecoveries.Value(),
		FaultEscalations: m.FaultEscalations.Value(),

		ConfigTime:   m.ConfigTime,
		ReadbackTime: m.ReadbackTime,
		RestoreTime:  m.RestoreTime,
		FaultTime:    m.FaultTime,

		UtilMean: m.Util.Average(int64(now)),
		UtilMax:  m.Util.Max(),
	}
}

// Accumulate adds o's counters and times into s. The utilization fields
// are zeroed: they are per-run averages and peaks, not summable totals.
func (s *MetricsSnapshot) Accumulate(o MetricsSnapshot) {
	s.Loads += o.Loads
	s.Evictions += o.Evictions
	s.Readbacks += o.Readbacks
	s.Restores += o.Restores
	s.Rollbacks += o.Rollbacks
	s.PageFaults += o.PageFaults
	s.PageLoads += o.PageLoads
	s.GCRuns += o.GCRuns
	s.Relocations += o.Relocations
	s.Blocks += o.Blocks
	s.MuxedOps += o.MuxedOps
	s.FaultsInjected += o.FaultsInjected
	s.FaultRetries += o.FaultRetries
	s.FaultRecoveries += o.FaultRecoveries
	s.FaultEscalations += o.FaultEscalations
	s.ConfigTime += o.ConfigTime
	s.ReadbackTime += o.ReadbackTime
	s.RestoreTime += o.RestoreTime
	s.FaultTime += o.FaultTime
	s.UtilMean, s.UtilMax = 0, 0
}
