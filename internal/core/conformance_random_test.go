package core_test

// Property-based extension of the conformance suite: instead of the one
// hand-written script, seeded random op sequences run over every
// hostos.FPGA implementation and must uphold the same contract — the
// Metrics/event-log audit stays exact and the device ends lint-clean.
// A second sweep arms a probabilistic fault plan and requires the audit
// (fault events included) to stay exact through injected failures and
// recoveries. Everything is keyed by explicit seeds, so a failure
// reproduces with its seed in the test name.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/rng"
	"repro/internal/sim"
)

// randomScript spawns 2-4 tasks of 1-4 random ops each, with random
// arrivals, priorities and scheduler-visible durations drawn from src.
func randomScript(t testing.TB, os *hostos.OS, src *rng.Source) {
	t.Helper()
	tasks := 2 + src.Intn(3)
	for i := 0; i < tasks; i++ {
		var prog []hostos.Op
		ops := 1 + src.Intn(4)
		for o := 0; o < ops; o++ {
			if src.Float64() < 0.3 {
				prog = append(prog, hostos.Compute(sim.Time(1+src.Intn(400))*sim.Microsecond))
				continue
			}
			name := confCircuits[src.Intn(len(confCircuits))]
			req := hostos.FPGARequest{Circuit: name}
			if name == "counter8" {
				req.Cycles = int64(1+src.Intn(90)) * 1000
			} else {
				req.Evaluations = int64(1+src.Intn(90)) * 1000
			}
			prog = append(prog, hostos.UseFPGA(req))
		}
		os.SpawnAt(sim.Time(src.Intn(2000))*sim.Microsecond,
			fmt.Sprintf("t%d", i), src.Intn(3), prog)
	}
}

func runRandomConformance(t *testing.T, seed uint64, plan *fault.Plan) {
	t.Helper()
	for _, impl := range confImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			k := sim.New()
			mgr, engines, logs := impl.build(t, k)
			if plan != nil {
				for i, e := range engines {
					e.Ledger().InjectFaults(fault.NewInjector(plan.Derive(uint64(i))))
				}
			}
			checked := &checkedFPGA{FPGA: mgr, t: t}
			slices := []sim.Time{200 * sim.Microsecond, 300 * sim.Microsecond, 500 * sim.Microsecond}
			src := rng.New(seed)
			os := hostos.New(k, hostos.Config{
				Policy: hostos.RR, TimeSlice: slices[src.Intn(len(slices))],
				CtxSwitch: 10 * sim.Microsecond, Syscall: 2 * sim.Microsecond,
			}, checked)
			if att, ok := mgr.(interface{ AttachOS(*hostos.OS) }); ok {
				att.AttachOS(os)
			}
			randomScript(t, os, src)
			k.Run()
			if !os.AllDone() {
				t.Fatal("random script did not run to completion")
			}
			for i, e := range engines {
				auditLedger(t, e, logs[i])
			}
			lt, ok := mgr.(core.LintTargeter)
			if !ok {
				t.Fatalf("%s does not implement core.LintTargeter", impl.name)
			}
			diags, err := lint.Run(lt.LintTargets(), lint.Options{MinSeverity: lint.Warning})
			if err != nil {
				t.Fatal(err)
			}
			if lint.HasErrors(diags) {
				t.Errorf("device not lint-clean after random script: %v", lint.Errors(diags))
			}
		})
	}
}

func TestConformanceRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomConformance(t, seed, nil)
		})
	}
}

// TestConformanceRandomOpsFaulted repeats the sweep under a recoverable
// fault drizzle: retries are generous enough that escalation is
// effectively impossible, so every run completes and the audit must
// balance fault events against the fault counters exactly.
func TestConformanceRandomOpsFaulted(t *testing.T) {
	plan, err := fault.ParseSpec("seed=77,retries=8,backoff=10us," +
		"config-error=0.1,config-timeout=0.05,readback-flip=0.1,restore-mismatch=0.1,pin-glitch=0.02")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 2; seed++ {
		seedPlan := plan.Derive(seed)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomConformance(t, seed, &seedPlan)
		})
	}
}
