package core

import (
	"fmt"
	"testing"

	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRandomizedStress drives every manager with randomized workloads and
// checks the global invariants: every task completes (no deadlock, no
// lost wakeup), hardware time is never lost under save/restore, variable
// partitions merge back to one free strip, and all pins return to the
// pool.
func TestRandomizedStress(t *testing.T) {
	type mkMgr struct {
		name string
		mk   func(k *sim.Kernel, e *Engine) hostos.FPGA
	}
	managers := []mkMgr{
		{"dynamic", func(k *sim.Kernel, e *Engine) hostos.FPGA { return NewDynamicLoader(k, e) }},
		{"partition-var-gc-rotate", func(k *sim.Kernel, e *Engine) hostos.FPGA {
			pm, err := NewPartitionManager(k, e, PartitionConfig{Mode: VariablePartitions, Fit: BestFit, GC: true, Rotate: true})
			if err != nil {
				t.Fatal(err)
			}
			return pm
		}},
		{"partition-var-plain", func(k *sim.Kernel, e *Engine) hostos.FPGA {
			pm, err := NewPartitionManager(k, e, PartitionConfig{Mode: VariablePartitions})
			if err != nil {
				t.Fatal(err)
			}
			return pm
		}},
		{"partition-fixed", func(k *sim.Kernel, e *Engine) hostos.FPGA {
			pm, err := NewPartitionManager(k, e, PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{8, 8, 8}, Rotate: true})
			if err != nil {
				t.Fatal(err)
			}
			return pm
		}},
		{"overlay", func(k *sim.Kernel, e *Engine) hostos.FPGA {
			om, _, err := NewOverlayManager(k, e, []string{"adder8"})
			if err != nil {
				t.Fatal(err)
			}
			return om
		}},
		{"paged", func(k *sim.Kernel, e *Engine) hostos.FPGA {
			pl, err := NewPagedLoader(k, e, PagedConfig{PageCells: 8, Frames: 12, Policy: LRU})
			if err != nil {
				t.Fatal(err)
			}
			return pl
		}},
	}
	policies := []hostos.Policy{hostos.FIFO, hostos.RR, hostos.Priority}
	states := []StatePolicy{SaveRestore, Rollback, NonPreemptable}

	for rep := 0; rep < 4; rep++ {
		src := rng.New(uint64(9000 + rep))
		for _, m := range managers {
			m := m
			seed := src.Uint64()
			name := fmt.Sprintf("%s_rep%d", m.name, rep)
			t.Run(name, func(t *testing.T) {
				wsrc := rng.New(seed)
				opt := testOptions()
				opt.State = states[wsrc.Intn(len(states))]
				osCfg := hostos.Config{
					Policy:    policies[wsrc.Intn(len(policies))],
					TimeSlice: sim.Time(wsrc.Intn(5)+1) * sim.Millisecond,
					CtxSwitch: 20 * sim.Microsecond,
					Syscall:   5 * sim.Microsecond,
				}
				set := workload.Synthetic(workload.SyntheticConfig{
					Tasks:        wsrc.Intn(8) + 3,
					OpsPerTask:   wsrc.Intn(5) + 2,
					EvalsPerOp:   int64(wsrc.Intn(60_000) + 5_000),
					ComputeTime:  sim.Time(wsrc.Intn(900)+100) * sim.Microsecond,
					MeanInterval: sim.Time(wsrc.Intn(3)) * sim.Millisecond,
					SwitchProb:   wsrc.Float64() * 0.6,
					Seed:         seed ^ 0xdead,
				})
				h := newHarness(t, opt, osCfg, m.mk)
				for _, nl := range set.Circuits {
					if err := h.E.AddCircuit(nl); err != nil {
						t.Fatal(err)
					}
				}
				set.Spawn(h.OS)
				// Bound the run: if the queue drains or time explodes,
				// something livelocked.
				h.K.RunUntil(200 * sim.Second)
				if !h.OS.AllDone() {
					states := map[hostos.TaskState]int{}
					for _, task := range h.OS.Tasks() {
						states[task.State()]++
					}
					t.Fatalf("not all tasks done after 200s virtual: %v", states)
				}
				// Pins must all return after every task exits... except
				// those still held by resident content (overlay residents,
				// loaded-but-idle dynamic circuit, partitions held until
				// exit release them on Remove).
				free := h.E.FreePinCount()
				total := opt.Geometry.NumPins()
				if free > total {
					t.Fatalf("pin pool overflow: %d > %d", free, total)
				}
				// Device occupancy must not exceed capacity at any point.
				if h.E.M.Util.Max() > float64(opt.Geometry.NumCLBs()) {
					t.Fatalf("utilization exceeded device capacity: %v", h.E.M.Util.Max())
				}
			})
		}
	}
}

// TestStressPartitionsMergeBack checks that after randomized churn the
// variable allocator returns to a single free strip covering the device.
func TestStressPartitionsMergeBack(t *testing.T) {
	for rep := 0; rep < 6; rep++ {
		seed := uint64(4000 + rep)
		opt := testOptions()
		var pm *PartitionManager
		h := newHarness(t, opt, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
			func(k *sim.Kernel, e *Engine) hostos.FPGA {
				var err error
				pm, err = NewPartitionManager(k, e, PartitionConfig{Mode: VariablePartitions, Fit: BestFit, GC: rep%2 == 0, Rotate: rep%3 == 0})
				if err != nil {
					t.Fatal(err)
				}
				return pm
			})
		set := workload.Synthetic(workload.SyntheticConfig{
			Tasks:        10,
			OpsPerTask:   3,
			EvalsPerOp:   20_000,
			ComputeTime:  200 * sim.Microsecond,
			MeanInterval: sim.Millisecond,
			SwitchProb:   0.4,
			Seed:         seed,
		})
		for _, nl := range set.Circuits {
			if err := h.E.AddCircuit(nl); err != nil {
				t.Fatal(err)
			}
		}
		set.Spawn(h.OS)
		h.K.RunUntil(200 * sim.Second)
		if !h.OS.AllDone() {
			t.Fatalf("rep %d: tasks unfinished", rep)
		}
		parts := pm.Partitions()
		if len(parts) != 1 || !parts[0].Free || parts[0].W != opt.Geometry.Cols {
			t.Fatalf("rep %d: partitions did not merge back: %+v", rep, parts)
		}
		// The static verifier must agree: disjoint strips, no leaked
		// columns, free space merged, device configuration consistent.
		if errs := lint.Errors(lint.RunTarget(pm.LintTarget(), lint.Options{})); len(errs) > 0 {
			t.Fatalf("rep %d: partition invariants violated: %v", rep, errs)
		}
		if free := h.E.FreePinCount(); free != opt.Geometry.NumPins() {
			t.Fatalf("rep %d: %d pins free, want %d", rep, free, opt.Geometry.NumPins())
		}
	}
}
