package core

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// PartitionMode selects fixed- or variable-size partitions (§4).
type PartitionMode int

// Partition modes.
const (
	// FixedPartitions are carved once from a configuration table and never
	// change until "reboot".
	FixedPartitions PartitionMode = iota
	// VariablePartitions split free space on demand and merge on release,
	// with optional compacting garbage collection.
	VariablePartitions
)

func (m PartitionMode) String() string {
	if m == VariablePartitions {
		return "variable"
	}
	return "fixed"
}

// FitPolicy selects how a free partition is chosen.
type FitPolicy int

// Fit policies.
const (
	FirstFit FitPolicy = iota
	BestFit
)

func (p FitPolicy) String() string {
	if p == BestFit {
		return "best-fit"
	}
	return "first-fit"
}

// PartitionConfig parameterizes the manager.
type PartitionConfig struct {
	Mode PartitionMode
	// FixedWidths lists the column widths of fixed partitions, allocated
	// left to right; required in FixedPartitions mode.
	FixedWidths []int
	Fit         FitPolicy
	// GC enables variable-mode compaction: when no single free strip fits
	// but the total free space would, loaded circuits are relocated.
	GC bool
	// Rotate allows evicting the least-recently-used idle assignment when
	// nothing else fits ("the operating system rotates its assignment
	// among tasks").
	Rotate bool
}

// partition is the manager's payload on an occupied RegionMap span: the
// owning task, the loaded circuit, and rotation bookkeeping. Placement
// itself (origin and width) lives on the span; pins and mux of the
// loaded circuit live in the ledger's residency table, keyed by the
// strip origin.
type partition struct {
	span    *Span
	owner   *hostos.Task
	circuit string
	lastUse sim.Time
	pinned  bool // owner has an in-flight preempted op; never evict
}

func (p *partition) region(rows int) fabric.Region {
	return fabric.Region{X: p.span.X, Y: 0, W: p.span.W, H: rows}
}

// PartitionManager implements hostos.FPGA with §4's partitioning. The
// device is divided into full-height column strips; each strip hosts one
// task's circuit. Tasks suspend when no partition fits; garbage
// collection relocates loaded circuits to merge idle fragments. Every
// device touch goes through the engine's residency ledger, and the
// strip table itself is a RegionMap — the span-scan mechanics (fit
// search, split, merge, fragmentation accounting) are the map's, the §4
// policy is the manager's.
type PartitionManager struct {
	E   *Engine
	K   *sim.Kernel
	Cfg PartitionConfig
	OS  *hostos.OS // set via AttachOS before running

	rm      *RegionMap
	byTask  map[hostos.TaskID]*partition
	waiters []*hostos.Task
	saved   map[savedKey][]bool // displaced sequential state per task+circuit
}

var _ hostos.FPGA = (*PartitionManager)(nil)

// NewPartitionManager builds the manager and carves the initial
// partitions. In fixed mode any leftover columns beyond the configured
// widths are unusable (as with a partition table that does not cover the
// disk); in variable mode one free partition covers the whole device.
func NewPartitionManager(k *sim.Kernel, e *Engine, cfg PartitionConfig) (*PartitionManager, error) {
	e.Ledger().Bind(k)
	pm := &PartitionManager{E: e, K: k, Cfg: cfg, byTask: map[hostos.TaskID]*partition{}}
	if err := pm.carve(); err != nil {
		return nil, err
	}
	return pm, nil
}

// carve builds the initial region map for the configured mode.
func (pm *PartitionManager) carve() error {
	cols := pm.E.Opt.Geometry.Cols
	switch pm.Cfg.Mode {
	case FixedPartitions:
		rm, err := NewFixedRegionMap(pm.Cfg.FixedWidths, cols)
		if err != nil {
			return err
		}
		pm.rm = rm
	case VariablePartitions:
		pm.rm = NewRegionMap(cols)
	default:
		return fmt.Errorf("core: unknown partition mode %d", pm.Cfg.Mode)
	}
	return nil
}

// AttachOS wires the manager to the OS for unblocking suspended tasks.
func (pm *PartitionManager) AttachOS(os *hostos.OS) { pm.OS = os }

// ResetForJob re-carves the initial partitions and clears every
// per-task table, returning the manager to its post-construction state
// for warm-board reuse. The config was validated at construction, so the
// re-carve cannot fail.
func (pm *PartitionManager) ResetForJob() {
	if err := pm.carve(); err != nil {
		panic(err)
	}
	pm.byTask = map[hostos.TaskID]*partition{}
	pm.waiters = nil
	pm.saved = nil
}

// Register implements hostos.FPGA.
func (pm *PartitionManager) Register(t *hostos.Task, circuit string) error {
	c, err := pm.E.Circuit(circuit)
	if err != nil {
		return err
	}
	// A circuit wider than the widest possible partition can never load.
	maxW := pm.rm.MaxSlotWidth()
	if pm.Cfg.Mode == VariablePartitions {
		maxW = pm.E.Opt.Geometry.Cols
	}
	if c.BS.W > maxW {
		return fmt.Errorf("core: circuit %s needs %d columns, widest partition is %d", circuit, c.BS.W, maxW)
	}
	return nil
}

func (pm *PartitionManager) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := pm.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// loadInto downloads circuit c into partition p for task t, returning the
// configuration cost. Any previous content is evicted first (state saved
// for its sequential circuits — within a task, switching algorithms must
// not lose the old algorithm's state if the task returns to it; the paper
// keeps the most recent configuration per task, so we save on switch).
func (pm *PartitionManager) loadInto(p *partition, t *hostos.Task, c *compile.Circuit) sim.Time {
	led := pm.E.Ledger()
	if p.circuit != "" {
		led.Evict(p.span.X)
	}
	_, cost := led.Load(t.Name, c, p.span.X, false)
	p.owner = t
	p.circuit = c.Name
	p.lastUse = pm.K.Now()
	pm.byTask[t.ID] = p
	return cost
}

// releasePartition frees p's span, merging with free neighbors in
// variable mode. displaced marks an involuntary eviction (rotation) as
// opposed to a voluntary release (task exit or partition hand-back).
func (pm *PartitionManager) releasePartition(p *partition, displaced bool) {
	if p.circuit != "" {
		if displaced {
			pm.E.Ledger().Evict(p.span.X)
		} else {
			pm.E.Ledger().Release(p.span.X)
		}
	}
	if p.owner != nil {
		delete(pm.byTask, p.owner.ID)
	}
	p.owner, p.circuit, p.pinned = nil, "", false
	pm.rm.Release(p.span)
}

// FreeCols returns the total free width and the largest free strip —
// the external-fragmentation measure of F4 — straight from the region
// map's shared FragStats.
func (pm *PartitionManager) FreeCols() (total, largest int) {
	return pm.rm.FreeCols()
}

// Frag returns the manager's live fragmentation statistics (a fixed
// table counts each free slot separately; slots never merge).
func (pm *PartitionManager) Frag() FragStats { return pm.rm.Frag() }

// compact relocates occupied partitions leftward so free space merges
// at the right (§4's garbage collection) — but only until a free hole
// of at least need columns exists; need <= 0 packs everything. Each
// moved circuit pays state readback, reconfiguration at the new origin,
// and state restore, all charged by the ledger's Relocate — stopping
// early charges only the relocations actually performed.
func (pm *PartitionManager) compact(need int) sim.Time {
	led := pm.E.Ledger()
	var cost sim.Time
	led.NoteGC()
	x := 0
	for _, s := range pm.rm.Spans() {
		if s.Free() {
			continue
		}
		if need > 0 {
			if _, largest := pm.rm.FreeCols(); largest >= need {
				break
			}
		}
		if s.X != x {
			cost += led.Relocate(s.X, x)
			pm.rm.Move(s, x)
		}
		x += s.W
	}
	return cost
}

// evictLRU releases the least-recently-used unpinned assignment whose
// owner is not t. It returns the state-save cost, or ok=false if nothing
// is evictable.
func (pm *PartitionManager) evictLRU(t *hostos.Task) (cost sim.Time, ok bool) {
	var victim *partition
	for _, s := range pm.rm.Spans() {
		if s.Free() {
			continue
		}
		p := s.Owner.(*partition)
		if p.pinned || p.owner == t {
			continue
		}
		if victim == nil || p.lastUse < victim.lastUse {
			victim = p
		}
	}
	if victim == nil {
		return 0, false
	}
	c, err := pm.E.Circuit(victim.circuit)
	if err != nil {
		panic(err)
	}
	if c.Sequential {
		// Preserve the displaced task's state in OS tables.
		cost += pm.saveFor(victim.span, victim.owner, c)
	}
	pm.releasePartition(victim, true)
	return cost, true
}

// savedKey indexes displaced sequential state per task and circuit; the
// manager restores it when the task's circuit is reloaded.
type savedKey struct {
	task    hostos.TaskID
	circuit string
}

func (pm *PartitionManager) savedMap() map[savedKey][]bool {
	if pm.saved == nil {
		pm.saved = map[savedKey][]bool{}
	}
	return pm.saved
}

func (pm *PartitionManager) saveFor(s *Span, owner *hostos.Task, c *compile.Circuit) sim.Time {
	rows := pm.E.Opt.Geometry.Rows
	region := fabric.Region{X: s.X, Y: 0, W: s.W, H: rows}
	st, cost := pm.E.Ledger().Readback(owner.Name, c, region)
	pm.savedMap()[savedKey{owner.ID, c.Name}] = st
	return cost
}

// restoreFor writes task t's displaced state for c back into partition p.
func (pm *PartitionManager) restoreFor(p *partition, t *hostos.Task, c *compile.Circuit) sim.Time {
	key := savedKey{t.ID, c.Name}
	st, ok := pm.savedMap()[key]
	if !ok {
		return 0
	}
	rows := pm.E.Opt.Geometry.Rows
	cost := pm.E.Ledger().Restore(t.Name, c, p.region(rows), st)
	delete(pm.saved, key)
	return cost
}

// Acquire implements hostos.FPGA.
func (pm *PartitionManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	c := pm.circuitOf(t)
	need := c.BS.W
	var cost sim.Time

	// Already holding a partition?
	if p := pm.byTask[t.ID]; p != nil {
		if p.circuit == c.Name {
			p.lastUse = pm.K.Now()
			return 0, true // loaded and state in place: zero-cost reuse
		}
		if p.span.W >= need {
			// Switch algorithms inside the task's partition, saving the
			// outgoing sequential state.
			if old, err := pm.E.Circuit(p.circuit); err == nil && old.Sequential {
				cost += pm.saveFor(p.span, p.owner, old)
			}
			cost += pm.loadInto(p, t, c)
			cost += pm.restoreFor(p, t, c)
			return cost, true
		}
		// Partition too small for the new algorithm: give it back.
		pm.releasePartition(p, false)
	}

	s := pm.rm.FindFree(need, pm.Cfg.Fit)
	if s == nil && pm.Cfg.Mode == VariablePartitions && pm.Cfg.GC {
		if total, _ := pm.rm.FreeCols(); total >= need {
			cost += pm.compact(need)
			s = pm.rm.FindFree(need, pm.Cfg.Fit)
		}
	}
	if s == nil && pm.Cfg.Rotate {
		for {
			evictCost, ok := pm.evictLRU(t)
			if !ok {
				break
			}
			cost += evictCost
			if s = pm.rm.FindFree(need, pm.Cfg.Fit); s != nil {
				break
			}
			if pm.Cfg.Mode == VariablePartitions && pm.Cfg.GC {
				if total, _ := pm.rm.FreeCols(); total >= need {
					cost += pm.compact(need)
					s = pm.rm.FindFree(need, pm.Cfg.Fit)
					break
				}
			}
		}
	}
	// Pins are a shared physical resource too: a partition without a
	// single free pin cannot be wired to the outside. Treat exhaustion
	// like area shortage (evict under rotation, else suspend).
	if s != nil && pm.E.FreePinCount() == 0 && pm.Cfg.Rotate {
		if evictCost, ok := pm.evictLRU(t); ok {
			cost += evictCost
			s = pm.rm.FindFree(need, pm.Cfg.Fit) // eviction may have reshaped the free list
		}
	}
	if s == nil || pm.E.FreePinCount() == 0 {
		pm.E.Ledger().NoteBlock(t.Name)
		pm.waiters = append(pm.waiters, t)
		return 0, false
	}
	p := &partition{}
	p.span = pm.rm.Alloc(s, need, p)
	cost += pm.loadInto(p, t, c)
	cost += pm.restoreFor(p, t, c)
	return cost, true
}

// ExecTime implements hostos.FPGA.
func (pm *PartitionManager) ExecTime(t *hostos.Task) sim.Time {
	c := pm.circuitOf(t)
	req := t.CurrentRequest()
	mux := 1
	if p := pm.byTask[t.ID]; p != nil {
		if r := pm.E.Ledger().ResidentAt(p.span.X); r != nil {
			mux = r.Mux
		}
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return pm.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA. A partitioned circuit keeps its
// partition across preemption (it is pinned), so preemption costs nothing
// and is always allowed unless policy forbids it.
func (pm *PartitionManager) Preemptable(t *hostos.Task) bool {
	if !pm.circuitOf(t).Sequential {
		return true
	}
	return pm.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA: the state stays in the partition, so
// only the in-flight vector/cycle granularity is lost.
func (pm *PartitionManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	if p := pm.byTask[t.ID]; p != nil {
		p.pinned = true
		p.lastUse = pm.K.Now()
	}
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA: the pinned partition is exactly as the
// task left it.
func (pm *PartitionManager) Resume(t *hostos.Task) sim.Time {
	if p := pm.byTask[t.ID]; p != nil {
		p.lastUse = pm.K.Now()
	}
	return 0
}

// Complete implements hostos.FPGA.
func (pm *PartitionManager) Complete(t *hostos.Task) {
	if p := pm.byTask[t.ID]; p != nil {
		p.pinned = false
		p.lastUse = pm.K.Now()
	}
}

// Remove implements hostos.FPGA: the task's partition is released and
// suspended tasks get a chance to allocate.
func (pm *PartitionManager) Remove(t *hostos.Task) {
	if p := pm.byTask[t.ID]; p != nil {
		pm.releasePartition(p, false)
	}
	for k := range pm.saved {
		if k.task == t.ID {
			delete(pm.saved, k)
		}
	}
	pm.wakeWaiters()
}

// wakeWaiters unblocks every suspended task; each retries its Acquire in
// scheduling order and re-suspends if space is still short.
func (pm *PartitionManager) wakeWaiters() {
	if len(pm.waiters) == 0 {
		return
	}
	ws := pm.waiters
	pm.waiters = nil
	for _, w := range ws {
		pm.OS.Unblock(w)
	}
}

// PartitionView is one row of the manager's partition-table snapshot:
// a column strip, what it holds, and whether it is free.
type PartitionView struct {
	X, W    int
	Circuit string
	Free    bool
}

// Partitions returns a snapshot of the partition table, sorted by
// origin, for inspection, tests and the static verifier.
func (pm *PartitionManager) Partitions() []PartitionView {
	var out []PartitionView
	for _, s := range pm.rm.Spans() {
		v := PartitionView{X: s.X, W: s.W, Free: s.Free()}
		if !s.Free() {
			v.Circuit = s.Owner.(*partition).circuit
		}
		out = append(out, v)
	}
	return out
}

// LintTarget exports the manager's current state as a static-verifier
// target, so callers can audit the §4 invariants (disjoint strips, no
// leaked columns, merged free space) at any point of a run:
//
//	diags := lint.RunTarget(pm.LintTarget(), lint.Options{})
func (pm *PartitionManager) LintTarget() *lint.Target {
	views := make([]lint.PartitionView, 0, len(pm.rm.Spans()))
	for _, v := range pm.Partitions() {
		views = append(views, lint.PartitionView(v))
	}
	return &lint.Target{
		Name:          "partitions(" + pm.Cfg.Mode.String() + ")",
		Partitions:    views,
		Cols:          pm.E.Opt.Geometry.Cols,
		PartitionMode: pm.Cfg.Mode.String(),
		Device:        pm.E.Dev,
	}
}

// LintTargets implements LintTargeter.
func (pm *PartitionManager) LintTargets() []*lint.Target {
	return []*lint.Target{pm.LintTarget()}
}
