package core

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// PartitionMode selects fixed- or variable-size partitions (§4).
type PartitionMode int

// Partition modes.
const (
	// FixedPartitions are carved once from a configuration table and never
	// change until "reboot".
	FixedPartitions PartitionMode = iota
	// VariablePartitions split free space on demand and merge on release,
	// with optional compacting garbage collection.
	VariablePartitions
)

func (m PartitionMode) String() string {
	if m == VariablePartitions {
		return "variable"
	}
	return "fixed"
}

// FitPolicy selects how a free partition is chosen.
type FitPolicy int

// Fit policies.
const (
	FirstFit FitPolicy = iota
	BestFit
)

func (p FitPolicy) String() string {
	if p == BestFit {
		return "best-fit"
	}
	return "first-fit"
}

// PartitionConfig parameterizes the manager.
type PartitionConfig struct {
	Mode PartitionMode
	// FixedWidths lists the column widths of fixed partitions, allocated
	// left to right; required in FixedPartitions mode.
	FixedWidths []int
	Fit         FitPolicy
	// GC enables variable-mode compaction: when no single free strip fits
	// but the total free space would, loaded circuits are relocated.
	GC bool
	// Rotate allows evicting the least-recently-used idle assignment when
	// nothing else fits ("the operating system rotates its assignment
	// among tasks").
	Rotate bool
}

// partition is one column strip of the device. Pins and mux of the loaded
// circuit live in the ledger's residency table, keyed by the strip origin.
type partition struct {
	x, w    int
	owner   *hostos.Task // nil when free
	circuit string       // loaded circuit ("" when empty)
	lastUse sim.Time
	pinned  bool // owner has an in-flight preempted op; never evict
}

func (p *partition) free() bool { return p.owner == nil }

func (p *partition) region(rows int) fabric.Region {
	return fabric.Region{X: p.x, Y: 0, W: p.w, H: rows}
}

// PartitionManager implements hostos.FPGA with §4's partitioning. The
// device is divided into full-height column strips; each strip hosts one
// task's circuit. Tasks suspend when no partition fits; garbage
// collection relocates loaded circuits to merge idle fragments. Every
// device touch goes through the engine's residency ledger.
type PartitionManager struct {
	E   *Engine
	K   *sim.Kernel
	Cfg PartitionConfig
	OS  *hostos.OS // set via AttachOS before running

	parts   []*partition // sorted by x, covering [0, Cols)
	byTask  map[hostos.TaskID]*partition
	waiters []*hostos.Task
	saved   map[savedKey][]bool // displaced sequential state per task+circuit
}

var _ hostos.FPGA = (*PartitionManager)(nil)

// NewPartitionManager builds the manager and carves the initial
// partitions. In fixed mode any leftover columns beyond the configured
// widths are unusable (as with a partition table that does not cover the
// disk); in variable mode one free partition covers the whole device.
func NewPartitionManager(k *sim.Kernel, e *Engine, cfg PartitionConfig) (*PartitionManager, error) {
	e.Ledger().Bind(k)
	pm := &PartitionManager{E: e, K: k, Cfg: cfg, byTask: map[hostos.TaskID]*partition{}}
	cols := e.Opt.Geometry.Cols
	switch cfg.Mode {
	case FixedPartitions:
		x := 0
		for _, w := range cfg.FixedWidths {
			if w <= 0 || x+w > cols {
				return nil, fmt.Errorf("core: fixed partition widths %v exceed %d columns", cfg.FixedWidths, cols)
			}
			pm.parts = append(pm.parts, &partition{x: x, w: w})
			x += w
		}
		if len(pm.parts) == 0 {
			return nil, fmt.Errorf("core: fixed mode requires FixedWidths")
		}
	case VariablePartitions:
		pm.parts = []*partition{{x: 0, w: cols}}
	default:
		return nil, fmt.Errorf("core: unknown partition mode %d", cfg.Mode)
	}
	return pm, nil
}

// AttachOS wires the manager to the OS for unblocking suspended tasks.
func (pm *PartitionManager) AttachOS(os *hostos.OS) { pm.OS = os }

// ResetForJob re-carves the initial partitions and clears every
// per-task table, returning the manager to its post-construction state
// for warm-board reuse. The config was validated at construction, so the
// re-carve cannot fail.
func (pm *PartitionManager) ResetForJob() {
	pm.parts = nil
	switch pm.Cfg.Mode {
	case FixedPartitions:
		x := 0
		for _, w := range pm.Cfg.FixedWidths {
			pm.parts = append(pm.parts, &partition{x: x, w: w})
			x += w
		}
	default:
		pm.parts = []*partition{{x: 0, w: pm.E.Opt.Geometry.Cols}}
	}
	pm.byTask = map[hostos.TaskID]*partition{}
	pm.waiters = nil
	pm.saved = nil
}

// Register implements hostos.FPGA.
func (pm *PartitionManager) Register(t *hostos.Task, circuit string) error {
	c, err := pm.E.Circuit(circuit)
	if err != nil {
		return err
	}
	// A circuit wider than the widest possible partition can never load.
	maxW := 0
	for _, p := range pm.parts {
		if p.w > maxW {
			maxW = p.w
		}
	}
	if pm.Cfg.Mode == VariablePartitions {
		maxW = pm.E.Opt.Geometry.Cols
	}
	if c.BS.W > maxW {
		return fmt.Errorf("core: circuit %s needs %d columns, widest partition is %d", circuit, c.BS.W, maxW)
	}
	return nil
}

func (pm *PartitionManager) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := pm.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

// loadInto downloads circuit c into partition p for task t, returning the
// configuration cost. Any previous content is evicted first (state saved
// for its sequential circuits — within a task, switching algorithms must
// not lose the old algorithm's state if the task returns to it; the paper
// keeps the most recent configuration per task, so we save on switch).
func (pm *PartitionManager) loadInto(p *partition, t *hostos.Task, c *compile.Circuit) sim.Time {
	led := pm.E.Ledger()
	if p.circuit != "" {
		led.Evict(p.x)
	}
	_, cost := led.Load(t.Name, c, p.x, false)
	p.owner = t
	p.circuit = c.Name
	p.lastUse = pm.K.Now()
	pm.byTask[t.ID] = p
	return cost
}

// releasePartition frees p, merging with free neighbors in variable mode.
// displaced marks an involuntary eviction (rotation) as opposed to a
// voluntary release (task exit or partition hand-back).
func (pm *PartitionManager) releasePartition(p *partition, displaced bool) {
	if p.circuit != "" {
		if displaced {
			pm.E.Ledger().Evict(p.x)
		} else {
			pm.E.Ledger().Release(p.x)
		}
	}
	if p.owner != nil {
		delete(pm.byTask, p.owner.ID)
	}
	p.owner, p.circuit, p.pinned = nil, "", false
	if pm.Cfg.Mode == VariablePartitions {
		pm.mergeFree()
	}
}

// mergeFree coalesces adjacent free partitions (variable mode).
func (pm *PartitionManager) mergeFree() {
	sort.Slice(pm.parts, func(i, j int) bool { return pm.parts[i].x < pm.parts[j].x })
	var out []*partition
	for _, p := range pm.parts {
		if n := len(out); n > 0 && out[n-1].free() && p.free() && out[n-1].x+out[n-1].w == p.x {
			out[n-1].w += p.w
			continue
		}
		out = append(out, p)
	}
	pm.parts = out
}

// findFree returns a free partition of width >= need per fit policy, or
// nil.
func (pm *PartitionManager) findFree(need int) *partition {
	var best *partition
	for _, p := range pm.parts {
		if !p.free() || p.w < need {
			continue
		}
		if best == nil {
			best = p
			if pm.Cfg.Fit == FirstFit {
				return best
			}
			continue
		}
		if p.w < best.w {
			best = p
		}
	}
	return best
}

// split carves a need-wide partition out of free partition p (variable
// mode); fixed partitions are used whole.
func (pm *PartitionManager) split(p *partition, need int) *partition {
	if pm.Cfg.Mode != VariablePartitions || p.w == need {
		return p
	}
	rest := &partition{x: p.x + need, w: p.w - need}
	p.w = need
	pm.parts = append(pm.parts, rest)
	sort.Slice(pm.parts, func(i, j int) bool { return pm.parts[i].x < pm.parts[j].x })
	return p
}

// FreeCols returns the total free width and the largest free strip, the
// external-fragmentation measure of F4.
func (pm *PartitionManager) FreeCols() (total, largest int) {
	for _, p := range pm.parts {
		if p.free() {
			total += p.w
			if p.w > largest {
				largest = p.w
			}
		}
	}
	return total, largest
}

// compact relocates every occupied partition leftward so all free space
// merges at the right (§4's garbage collection). Returns the relocation
// cost: each moved circuit pays state readback, reconfiguration at the
// new origin, and state restore — all charged by the ledger's Relocate.
func (pm *PartitionManager) compact() sim.Time {
	led := pm.E.Ledger()
	var cost sim.Time
	led.NoteGC()
	sort.Slice(pm.parts, func(i, j int) bool { return pm.parts[i].x < pm.parts[j].x })
	x := 0
	var packed []*partition
	for _, p := range pm.parts {
		if p.free() {
			continue
		}
		if p.x != x {
			cost += led.Relocate(p.x, x)
			p.x = x
		}
		x += p.w
		packed = append(packed, p)
	}
	if x < pm.E.Opt.Geometry.Cols {
		packed = append(packed, &partition{x: x, w: pm.E.Opt.Geometry.Cols - x})
	}
	pm.parts = packed
	return cost
}

// evictLRU releases the least-recently-used unpinned assignment whose
// owner is not t. It returns the state-save cost, or ok=false if nothing
// is evictable.
func (pm *PartitionManager) evictLRU(t *hostos.Task) (cost sim.Time, ok bool) {
	var victim *partition
	for _, p := range pm.parts {
		if p.free() || p.pinned || p.owner == t {
			continue
		}
		if victim == nil || p.lastUse < victim.lastUse {
			victim = p
		}
	}
	if victim == nil {
		return 0, false
	}
	c, err := pm.E.Circuit(victim.circuit)
	if err != nil {
		panic(err)
	}
	if c.Sequential {
		// Preserve the displaced task's state in OS tables.
		cost += pm.saveFor(victim, c)
	}
	pm.releasePartition(victim, true)
	return cost, true
}

// savedKey indexes displaced sequential state per task and circuit; the
// manager restores it when the task's circuit is reloaded.
type savedKey struct {
	task    hostos.TaskID
	circuit string
}

func (pm *PartitionManager) savedMap() map[savedKey][]bool {
	if pm.saved == nil {
		pm.saved = map[savedKey][]bool{}
	}
	return pm.saved
}

func (pm *PartitionManager) saveFor(p *partition, c *compile.Circuit) sim.Time {
	rows := pm.E.Opt.Geometry.Rows
	st, cost := pm.E.Ledger().Readback(p.owner.Name, c, p.region(rows))
	pm.savedMap()[savedKey{p.owner.ID, c.Name}] = st
	return cost
}

// restoreFor writes task t's displaced state for c back into partition p.
func (pm *PartitionManager) restoreFor(p *partition, t *hostos.Task, c *compile.Circuit) sim.Time {
	key := savedKey{t.ID, c.Name}
	st, ok := pm.savedMap()[key]
	if !ok {
		return 0
	}
	rows := pm.E.Opt.Geometry.Rows
	cost := pm.E.Ledger().Restore(t.Name, c, p.region(rows), st)
	delete(pm.saved, key)
	return cost
}

// Acquire implements hostos.FPGA.
func (pm *PartitionManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	c := pm.circuitOf(t)
	need := c.BS.W
	var cost sim.Time

	// Already holding a partition?
	if p := pm.byTask[t.ID]; p != nil {
		if p.circuit == c.Name {
			p.lastUse = pm.K.Now()
			return 0, true // loaded and state in place: zero-cost reuse
		}
		if p.w >= need {
			// Switch algorithms inside the task's partition, saving the
			// outgoing sequential state.
			if old, err := pm.E.Circuit(p.circuit); err == nil && old.Sequential {
				cost += pm.saveFor(p, old)
			}
			cost += pm.loadInto(p, t, c)
			cost += pm.restoreFor(p, t, c)
			return cost, true
		}
		// Partition too small for the new algorithm: give it back.
		pm.releasePartition(p, false)
	}

	p := pm.findFree(need)
	if p == nil && pm.Cfg.Mode == VariablePartitions && pm.Cfg.GC {
		if total, _ := pm.FreeCols(); total >= need {
			cost += pm.compact()
			p = pm.findFree(need)
		}
	}
	if p == nil && pm.Cfg.Rotate {
		for {
			evictCost, ok := pm.evictLRU(t)
			if !ok {
				break
			}
			cost += evictCost
			if p = pm.findFree(need); p != nil {
				break
			}
			if pm.Cfg.Mode == VariablePartitions && pm.Cfg.GC {
				if total, _ := pm.FreeCols(); total >= need {
					cost += pm.compact()
					p = pm.findFree(need)
					break
				}
			}
		}
	}
	// Pins are a shared physical resource too: a partition without a
	// single free pin cannot be wired to the outside. Treat exhaustion
	// like area shortage (evict under rotation, else suspend).
	if p != nil && pm.E.FreePinCount() == 0 && pm.Cfg.Rotate {
		if evictCost, ok := pm.evictLRU(t); ok {
			cost += evictCost
			p = pm.findFree(need) // eviction may have reshaped the free list
		}
	}
	if p == nil || pm.E.FreePinCount() == 0 {
		pm.E.Ledger().NoteBlock(t.Name)
		pm.waiters = append(pm.waiters, t)
		return 0, false
	}
	p = pm.split(p, need)
	cost += pm.loadInto(p, t, c)
	cost += pm.restoreFor(p, t, c)
	return cost, true
}

// ExecTime implements hostos.FPGA.
func (pm *PartitionManager) ExecTime(t *hostos.Task) sim.Time {
	c := pm.circuitOf(t)
	req := t.CurrentRequest()
	mux := 1
	if p := pm.byTask[t.ID]; p != nil {
		if r := pm.E.Ledger().ResidentAt(p.x); r != nil {
			mux = r.Mux
		}
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return pm.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA. A partitioned circuit keeps its
// partition across preemption (it is pinned), so preemption costs nothing
// and is always allowed unless policy forbids it.
func (pm *PartitionManager) Preemptable(t *hostos.Task) bool {
	if !pm.circuitOf(t).Sequential {
		return true
	}
	return pm.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA: the state stays in the partition, so
// only the in-flight vector/cycle granularity is lost.
func (pm *PartitionManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	if p := pm.byTask[t.ID]; p != nil {
		p.pinned = true
		p.lastUse = pm.K.Now()
	}
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA: the pinned partition is exactly as the
// task left it.
func (pm *PartitionManager) Resume(t *hostos.Task) sim.Time {
	if p := pm.byTask[t.ID]; p != nil {
		p.lastUse = pm.K.Now()
	}
	return 0
}

// Complete implements hostos.FPGA.
func (pm *PartitionManager) Complete(t *hostos.Task) {
	if p := pm.byTask[t.ID]; p != nil {
		p.pinned = false
		p.lastUse = pm.K.Now()
	}
}

// Remove implements hostos.FPGA: the task's partition is released and
// suspended tasks get a chance to allocate.
func (pm *PartitionManager) Remove(t *hostos.Task) {
	if p := pm.byTask[t.ID]; p != nil {
		pm.releasePartition(p, false)
	}
	for k := range pm.saved {
		if k.task == t.ID {
			delete(pm.saved, k)
		}
	}
	pm.wakeWaiters()
}

// wakeWaiters unblocks every suspended task; each retries its Acquire in
// scheduling order and re-suspends if space is still short.
func (pm *PartitionManager) wakeWaiters() {
	if len(pm.waiters) == 0 {
		return
	}
	ws := pm.waiters
	pm.waiters = nil
	for _, w := range ws {
		pm.OS.Unblock(w)
	}
}

// PartitionView is one row of the manager's partition-table snapshot:
// a column strip, what it holds, and whether it is free.
type PartitionView struct {
	X, W    int
	Circuit string
	Free    bool
}

// Partitions returns a snapshot of the partition table, sorted by
// origin, for inspection, tests and the static verifier.
func (pm *PartitionManager) Partitions() []PartitionView {
	sort.Slice(pm.parts, func(i, j int) bool { return pm.parts[i].x < pm.parts[j].x })
	var out []PartitionView
	for _, p := range pm.parts {
		out = append(out, PartitionView{X: p.x, W: p.w, Circuit: p.circuit, Free: p.free()})
	}
	return out
}

// LintTarget exports the manager's current state as a static-verifier
// target, so callers can audit the §4 invariants (disjoint strips, no
// leaked columns, merged free space) at any point of a run:
//
//	diags := lint.RunTarget(pm.LintTarget(), lint.Options{})
func (pm *PartitionManager) LintTarget() *lint.Target {
	views := make([]lint.PartitionView, 0, len(pm.parts))
	for _, v := range pm.Partitions() {
		views = append(views, lint.PartitionView(v))
	}
	return &lint.Target{
		Name:          "partitions(" + pm.Cfg.Mode.String() + ")",
		Partitions:    views,
		Cols:          pm.E.Opt.Geometry.Cols,
		PartitionMode: pm.Cfg.Mode.String(),
		Device:        pm.E.Dev,
	}
}

// LintTargets implements LintTargeter.
func (pm *PartitionManager) LintTargets() []*lint.Target {
	return []*lint.Target{pm.LintTarget()}
}
