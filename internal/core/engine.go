// Package core implements the paper's contribution: the Virtual FPGA.
//
// A physical FPGA (internal/fabric) is multiplexed among the tasks of a
// multitasking host OS (internal/hostos) by operating-system techniques
// borrowed from virtual memory, exactly as the paper proposes:
//
//   - DynamicLoader  — §3 dynamic loading: download a task's configuration
//     when needed, with completion detection (a-priori timing or done
//     signal) and preemption via rollback or state save/restore;
//   - PartitionManager — §4 partitioning: fixed- or variable-size column
//     partitions, task suspension, rotation, and garbage collection with
//     circuit relocation;
//   - OverlayManager — §2 overlaying: frequently-used common functions
//     stay resident while rare ones share an overlay area;
//   - PagedLoader — §2 pagination: configurations split into fixed-size
//     pages loaded on demand with LRU/FIFO/Clock/Random replacement;
//   - pin multiplexing — §2 input/output multiplexing: virtual pins beyond
//     the physical pin count are time-multiplexed at a throughput cost.
//
// All managers implement hostos.FPGA and operate on a real simulated
// device: bitstreams are actually downloaded into configuration RAM and
// flip-flop state is actually read back and restored, so the correctness
// properties (a preempted counter resumes exactly) are testable, not
// assumed.
package core

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StatePolicy selects how sequential circuits survive preemption (§3).
type StatePolicy int

// State policies.
const (
	// SaveRestore reads back flip-flop state on preemption and restores it
	// on resume — requires the observability/controllability the paper
	// demands of preemptable designs.
	SaveRestore StatePolicy = iota
	// Rollback restarts the interrupted operation from its beginning.
	Rollback
	// NonPreemptable refuses mid-operation preemption: the OS lets the
	// operation finish past the time slice.
	NonPreemptable
)

func (p StatePolicy) String() string {
	switch p {
	case SaveRestore:
		return "save-restore"
	case Rollback:
		return "rollback"
	case NonPreemptable:
		return "non-preemptable"
	}
	return fmt.Sprintf("state(%d)", int(p))
}

// CompletionMode selects how the OS learns that the FPGA finished (§3).
type CompletionMode int

// Completion detection modes.
const (
	// Apriori trusts the compiler's timing estimate: the OS waits exactly
	// the computed execution time.
	Apriori CompletionMode = iota
	// DoneSignal adds a service circuit raising a completion flag; the OS
	// polls it, quantizing execution to the polling interval.
	DoneSignal
)

func (m CompletionMode) String() string {
	if m == DoneSignal {
		return "done-signal"
	}
	return "a-priori"
}

// Options parameterizes an Engine.
type Options struct {
	Geometry     fabric.Geometry
	Timing       fabric.Timing
	State        StatePolicy
	Completion   CompletionMode
	PollInterval sim.Time // DoneSignal polling period (0 = 100us)
	PollCost     sim.Time // CPU cost per poll (0 = 1us)
	// Seed drives circuit compilation in the library.
	Seed uint64
}

// DefaultOptions returns the XC4000-calibrated engine configuration.
func DefaultOptions() Options {
	return Options{
		Geometry:     fabric.DefaultGeometry(),
		Timing:       fabric.DefaultTiming(),
		State:        SaveRestore,
		Completion:   Apriori,
		PollInterval: 100 * sim.Microsecond,
		PollCost:     1 * sim.Microsecond,
		Seed:         1,
	}
}

// Metrics aggregates what the managers do to the device.
type Metrics struct {
	Loads       stats.Counter // configuration downloads
	Evictions   stats.Counter // circuits displaced from the device
	Readbacks   stats.Counter // state save operations
	Restores    stats.Counter // state restore operations
	Rollbacks   stats.Counter // operations restarted from scratch
	PageFaults  stats.Counter
	PageLoads   stats.Counter
	GCRuns      stats.Counter
	Relocations stats.Counter // circuits moved by garbage collection
	Blocks      stats.Counter // tasks suspended waiting for FPGA space
	MuxedOps    stats.Counter // operations run with multiplexed pins

	// Fault-injection accounting (zero unless a fault.Injector is armed
	// on the ledger). Every injected fault is followed by exactly one
	// retry or one escalation, so FaultsInjected equals FaultRetries
	// plus FaultEscalations — the conformance audit pins that.
	FaultsInjected   stats.Counter // injected faults detected
	FaultRetries     stats.Counter // recovery retries after a fault
	FaultRecoveries  stats.Counter // operations that succeeded after >=1 fault
	FaultEscalations stats.Counter // operations whose retry budget ran out

	ConfigTime   sim.Time // total time spent downloading configurations
	ReadbackTime sim.Time
	RestoreTime  sim.Time
	FaultTime    sim.Time // time wasted on injected faults and retry backoff

	Util stats.TimeWeighted // CLBs configured, over time
}

// Engine bundles the device, timing model, pin pool, compiled-circuit
// library, metrics and the residency ledger that every manager shares.
//
// An Engine is single-goroutine by design, like the sim.Kernel that
// drives it: the device, metrics, pin pool and ledger perform no
// internal locking. A concurrent serving layer must give each engine
// (and the OS and managers built over it) a dedicated goroutine — the
// vfpgad board pool runs one board per goroutine for exactly this
// reason. The ledger backs this contract with a cheap assertion that
// panics on concurrent mutation (see Ledger).
type Engine struct {
	Dev  *fabric.Device
	Opt  Options
	Lib  map[string]*compile.Circuit
	M    Metrics
	led  Ledger
	pins []int // free pin pool
}

// NewEngine creates a device and an empty circuit library.
func NewEngine(opt Options) *Engine {
	if opt.PollInterval <= 0 {
		opt.PollInterval = 100 * sim.Microsecond
	}
	if opt.PollCost <= 0 {
		opt.PollCost = 1 * sim.Microsecond
	}
	e := &Engine{
		Dev: fabric.NewDevice(opt.Geometry),
		Opt: opt,
		Lib: map[string]*compile.Circuit{},
	}
	e.led = Ledger{e: e, residents: map[int]*Resident{}, frag: newFragTracker(opt.Geometry.Cols)}
	for p := 0; p < opt.Geometry.NumPins(); p++ {
		e.pins = append(e.pins, p)
	}
	return e
}

// Ledger returns the engine's residency ledger — the single transaction
// layer through which every manager touches the device.
func (e *Engine) Ledger() *Ledger { return &e.led }

// PristineImage is an engine's post-construction state, captured once by
// CapturePristine and restored per job by Ledger.ResetForJob: the fabric
// snapshot, the metrics, the free-pin pool, the residency table, and the
// fault injector's stream position. It realizes the paper's §2 outlook —
// "the whole system operation can be virtualized and downloaded at the
// beginning of the activities" — as the warm-board reset image: instead
// of rebuilding the engine stack per job, the serving layer downloads
// this image back onto the (simulated) hardware.
//
// The image is immutable after capture: restores deep-copy everything
// mutable, so no job can corrupt the image another job restores from.
type PristineImage struct {
	snap      *fabric.Snapshot
	metrics   Metrics
	pins      []int
	residents map[int]*Resident
	inj       *fault.Injector // post-construction position (nil when unarmed)
}

// copyResidents deep-copies a residency table (entries and pin slices).
func copyResidents(src map[int]*Resident) map[int]*Resident {
	out := make(map[int]*Resident, len(src))
	for x, r := range src {
		cp := *r
		cp.Pins = append([]int(nil), r.Pins...)
		out[x] = &cp
	}
	return out
}

// CapturePristine snapshots the engine immediately after construction
// (device image, metrics, pin pool, residency table, injector position)
// so Ledger.ResetForJob can later return the engine to exactly this
// state. Capture before attaching any per-job device log or spawning
// work: the image must be the state every job starts from.
func (e *Engine) CapturePristine() *PristineImage {
	img := &PristineImage{
		snap:      e.Dev.Snapshot(),
		metrics:   e.M,
		pins:      append([]int(nil), e.pins...),
		residents: copyResidents(e.led.residents),
	}
	if e.led.inj != nil {
		img.inj = e.led.inj.Clone()
	}
	return img
}

// AddCircuit compiles nl as a full-height strip and registers it under its
// netlist name.
func (e *Engine) AddCircuit(nl *netlist.Netlist) error {
	if _, dup := e.Lib[nl.Name]; dup {
		return nil // idempotent: same generator registered by many tasks
	}
	tm := e.Opt.Timing
	c, err := compile.CompileStrip(nl, e.Opt.Geometry.Rows, e.Opt.Geometry.TracksPerChannel,
		compile.Options{Seed: e.Opt.Seed + uint64(len(e.Lib)), Timing: &tm})
	if err != nil {
		return err
	}
	e.Lib[nl.Name] = c
	return nil
}

// MustAddCircuit is AddCircuit that panics on error.
func (e *Engine) MustAddCircuit(nl *netlist.Netlist) {
	if err := e.AddCircuit(nl); err != nil {
		panic(err)
	}
}

// Circuit returns the named compiled circuit.
func (e *Engine) Circuit(name string) (*compile.Circuit, error) {
	c, ok := e.Lib[name]
	if !ok {
		return nil, fmt.Errorf("core: circuit %q not in library", name)
	}
	return c, nil
}

// AllocPins takes up to want pins from the pool. It returns the pins and
// the multiplexing factor: 1 when fully satisfied, >1 when the circuit's
// virtual pins must be time-multiplexed over fewer physical pins (§2's
// input/output multiplexing). At least one pin is required.
func (e *Engine) AllocPins(want int) (pins []int, mux int, err error) {
	if want == 0 {
		return nil, 1, nil
	}
	if len(e.pins) == 0 {
		return nil, 0, fmt.Errorf("core: no physical pins available")
	}
	n := want
	if n > len(e.pins) {
		n = len(e.pins)
	}
	pins = append(pins, e.pins[:n]...)
	e.pins = e.pins[n:]
	mux = (want + n - 1) / n
	return pins, mux, nil
}

// FreePins returns pins to the pool.
func (e *Engine) FreePins(pins []int) {
	e.pins = append(e.pins, pins...)
	sort.Ints(e.pins) // determinism of future allocations
}

// FreePinCount returns the number of unallocated pins.
func (e *Engine) FreePinCount() int { return len(e.pins) }

// ExecQuantum converts a pure hardware duration into the time the OS
// observes, applying completion detection (§3) and pin multiplexing.
func (e *Engine) ExecQuantum(pure sim.Time, mux int) sim.Time {
	if mux > 1 {
		pure *= sim.Time(mux)
	}
	if e.Opt.Completion == DoneSignal && pure > 0 {
		polls := (pure + e.Opt.PollInterval - 1) / e.Opt.PollInterval
		pure = polls*e.Opt.PollInterval + polls*e.Opt.PollCost
	}
	return pure
}

// noteUtil samples device occupancy into the utilization metric.
func (e *Engine) noteUtil(now sim.Time) {
	e.M.Util.Set(int64(now), float64(e.Dev.UsedCells()))
}

// binding builds a wrap-around pin binding for a circuit given its
// allocated physical pins: with fewer pins than ports, several virtual
// ports share a pin (time multiplexing; functional use requires mux==1).
func binding(c *compile.Circuit, pins []int) ([]int, []int) {
	in := make([]int, c.BS.NumIn)
	out := make([]int, c.BS.NumOut)
	if len(pins) == 0 {
		for i := range in {
			in[i] = -1
		}
		for i := range out {
			out[i] = -1
		}
		return in, out
	}
	k := 0
	for i := range in {
		in[i] = pins[k%len(pins)]
		k++
	}
	for i := range out {
		out[i] = pins[k%len(pins)]
		k++
	}
	return in, out
}
