package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/lint"
	"repro/internal/sim"
)

// LedgerOp enumerates the residency-ledger transaction kinds. The first
// seven are the paper's device mechanics — configuration download (§2/§3),
// state readback and restore (§3's observability/controllability), restart
// after rollback (§3), and garbage-collection relocation (§4). Block and
// GC are annotations: policy decisions that change no device state but
// belong on the same timeline.
type LedgerOp int

// Ledger operation kinds.
const (
	OpLoad     LedgerOp = iota // configuration download (strip or page)
	OpEvict                    // residency displaced or released
	OpReadback                 // flip-flop state saved to OS tables
	OpRestore                  // flip-flop state written back
	OpReset                    // flip-flops forced to configured init values
	OpRollback                 // in-flight operation restarted from scratch
	OpRelocate                 // circuit moved by garbage collection
	OpBlock                    // task suspended waiting for device space
	OpGC                       // compaction run started
	OpFault                    // injected fault detected (download CRC, readback CRC, verify)
	OpRetry                    // recovery retry scheduled after an injected fault
)

func (k LedgerOp) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpEvict:
		return "evict"
	case OpReadback:
		return "readback"
	case OpRestore:
		return "restore"
	case OpReset:
		return "reset"
	case OpRollback:
		return "rollback"
	case OpRelocate:
		return "relocate"
	case OpBlock:
		return "block"
	case OpGC:
		return "gc"
	case OpFault:
		return "fault"
	case OpRetry:
		return "retry"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// DeviceEvent is one structured device-side event: what the ledger did,
// on whose behalf, to which circuit and region, and what it cost. It is
// the device-side counterpart of hostos.Event.
type DeviceEvent struct {
	At      sim.Time
	Op      LedgerOp
	Task    string // owning task ("" for system operations)
	Circuit string
	Region  fabric.Region
	// Page is the configuration-page index for paged loads/evictions,
	// -1 for whole-strip operations.
	Page int
	Cost sim.Time
	// Voluntary marks an OpEvict that released residency at the owner's
	// exit (or hand-back) rather than displacing it for someone else;
	// only involuntary evictions count in Metrics.Evictions.
	Voluntary bool
	// Note annotates fault and retry events (which kind fired, which bit
	// flipped, which attempt follows); empty on ordinary operations.
	Note string
}

// Detail renders everything but the operation kind: circuit, placement,
// cost, and the voluntary marker.
func (e DeviceEvent) Detail() string {
	var b strings.Builder
	if e.Circuit != "" {
		fmt.Fprintf(&b, "%s", e.Circuit)
	}
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page %d", e.Page)
	} else if e.Region.W > 0 {
		fmt.Fprintf(&b, " @x=%d w=%d", e.Region.X, e.Region.W)
	}
	if e.Cost > 0 {
		fmt.Fprintf(&b, " cost=%v", e.Cost)
	}
	if e.Voluntary {
		b.WriteString(" (released)")
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " [%s]", e.Note)
	}
	return strings.TrimSpace(b.String())
}

// String renders the event compactly for traces and debugging.
func (e DeviceEvent) String() string {
	if d := e.Detail(); d != "" {
		return e.Op.String() + " " + d
	}
	return e.Op.String()
}

// DeviceLog records ledger events for post-mortem inspection and merged
// scheduler+device timelines. Attach with Ledger.AttachLog; a nil log
// costs nothing.
type DeviceLog struct {
	events []DeviceEvent
	limit  int
}

// NewDeviceLog returns a log capped at limit events (0 = unbounded).
func NewDeviceLog(limit int) *DeviceLog {
	return &DeviceLog{limit: limit}
}

// Emit appends an event (dropping the oldest beyond the cap).
func (l *DeviceLog) Emit(e DeviceEvent) {
	l.events = append(l.events, e)
	if l.limit > 0 && len(l.events) > l.limit {
		l.events = l.events[len(l.events)-l.limit:]
	}
}

// Events returns the recorded events in emission order.
func (l *DeviceLog) Events() []DeviceEvent { return l.events }

// String renders the raw event list.
func (l *DeviceLog) String() string {
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%12v  %-10s %s\n", e.At, e.Task, e)
	}
	return b.String()
}

// LintTargeter is implemented by every manager: it exports the manager's
// live device state (one target per device) for the static verifier.
type LintTargeter interface {
	LintTargets() []*lint.Target
}

// Resident is one live entry of the ledger's residency table: a
// full-height circuit strip the ledger downloaded and has not yet
// evicted, together with the physical pins it holds.
type Resident struct {
	Circuit string
	C       *compile.Circuit
	Owner   string // task that requested the download ("" for system)
	Region  fabric.Region
	Pins    []int
	Mux     int
}

// Ledger is the transaction layer under every VFPGA manager: the one
// place that performs fabric writes, charges time from the timing model,
// bumps Metrics, and emits device-side trace events. Managers stay pure
// policy — they decide *what* to load, evict or save; the ledger decides
// (and accounts for) *how*.
//
// The ledger also keeps the authoritative residency table (which circuit
// strip sits at which column, holding which pins), which doubles as the
// live state source for the static verifier via LintTarget.
//
// A Ledger (like the Engine it belongs to) is single-goroutine by
// design: the simulation kernel is not a concurrent object, and neither
// are the device, metrics, or residency table under it. Concurrent
// layers (the vfpgad board pool) must confine each engine and its
// managers to one goroutine. Every mutating ledger operation carries a
// cheap mutex-backed assertion that panics on concurrent entry, so
// misuse fails loudly instead of racing.
type Ledger struct {
	e         *Engine
	k         *sim.Kernel
	log       *DeviceLog
	inj       *fault.Injector   // nil = no injection (the common case)
	residents map[int]*Resident // keyed by strip origin column
	frag      *fragTracker      // free-column model mirroring residents

	// guard backs the single-goroutine assertion: TryLock fails only if
	// another operation is mid-flight, which under the ownership contract
	// can only mean a second goroutine.
	guard sync.Mutex
}

// enter asserts the single-goroutine ownership contract on entry to a
// mutating operation and returns the matching exit function. An
// uncontended TryLock is one atomic operation, cheap enough to keep on
// in every build.
func (l *Ledger) enter() func() {
	if !l.guard.TryLock() {
		panic("core: concurrent Ledger use — an Engine and its managers must be confined to a single goroutine")
	}
	return l.guard.Unlock
}

// Bind attaches the simulation clock used to timestamp events. Manager
// constructors call it; the most recent binding wins, so an engine can be
// probed by several short-lived managers (tests do) as long as the ones
// actually running share a kernel.
func (l *Ledger) Bind(k *sim.Kernel) {
	defer l.enter()()
	if k != nil {
		l.k = k
	}
}

// AttachLog starts recording device events into log.
func (l *Ledger) AttachLog(log *DeviceLog) {
	defer l.enter()()
	l.log = log
}

// Log returns the attached device log (nil when tracing is off).
func (l *Ledger) Log() *DeviceLog { return l.log }

// InjectFaults arms the ledger with a fault injector. A nil injector
// (the default) costs one pointer check per operation and changes no
// behaviour, which is what keeps every fault-free output byte-identical.
func (l *Ledger) InjectFaults(inj *fault.Injector) {
	defer l.enter()()
	l.inj = inj
}

// Injector returns the armed fault injector (nil when injection is off).
func (l *Ledger) Injector() *fault.Injector { return l.inj }

// nextFault asks the injector (if any) about the next attempt at point p.
func (l *Ledger) nextFault(p fault.Point) (fault.Kind, uint64) {
	if l.inj == nil {
		return fault.None, 0
	}
	return l.inj.Next(p)
}

// maxAttempts returns the per-operation attempt budget of the armed plan.
func (l *Ledger) maxAttempts() int {
	if l.inj == nil {
		return 1
	}
	plan := l.inj.Plan()
	return plan.MaxAttempts()
}

// noteFault accounts one injected fault: the wasted simulated time goes
// to Metrics.FaultTime (not the op's own time bucket, so fault-free
// accounting stays exact) and the detection shows up on the timeline.
func (l *Ledger) noteFault(owner, circuit string, region fabric.Region, page int, charge sim.Time, note string) {
	l.e.M.FaultsInjected.Inc()
	l.e.M.FaultTime += charge
	l.emitNote(OpFault, owner, circuit, region, page, charge, false, note)
}

// noteRetry accounts the backoff before retry attempt next (1-based
// retry ordinal) and returns the backoff charged.
func (l *Ledger) noteRetry(owner, circuit string, region fabric.Region, page, next int, kind fault.Kind) sim.Time {
	plan := l.inj.Plan()
	backoff := plan.RetryBackoff(next)
	l.e.M.FaultRetries.Inc()
	l.e.M.FaultTime += backoff
	l.emitNote(OpRetry, owner, circuit, region, page, backoff, false,
		fmt.Sprintf("%s attempt %d/%d", kind, next+1, plan.MaxAttempts()))
	return backoff
}

func (l *Ledger) now() sim.Time {
	if l.k == nil {
		return 0
	}
	return l.k.Now()
}

func (l *Ledger) emit(op LedgerOp, task, circuit string, region fabric.Region, page int, cost sim.Time, voluntary bool) {
	l.emitNote(op, task, circuit, region, page, cost, voluntary, "")
}

func (l *Ledger) emitNote(op LedgerOp, task, circuit string, region fabric.Region, page int, cost sim.Time, voluntary bool, note string) {
	if l.log == nil {
		return
	}
	l.log.Emit(DeviceEvent{
		At: l.now(), Op: op, Task: task, Circuit: circuit,
		Region: region, Page: page, Cost: cost, Voluntary: voluntary, Note: note,
	})
}

// ResidentAt returns the residency entry whose strip starts at column x,
// or nil.
func (l *Ledger) ResidentAt(x int) *Resident { return l.residents[x] }

// Residents returns the residency table sorted by origin column.
func (l *Ledger) Residents() []Resident {
	out := make([]Resident, 0, len(l.residents))
	for _, r := range l.residents {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region.X < out[j].Region.X })
	return out
}

// LintTarget exports the ledger's device view as a static-verifier
// target, so any manager — not just the partition manager — can be
// audited mid-run (fabric-config pass: no dangling sources, no
// configuration-level loops).
func (l *Ledger) LintTarget(name string) *lint.Target {
	return &lint.Target{Name: name, Device: l.e.Dev}
}

// ResetForJob restores the engine to the pristine post-construction
// image: the device fabric is overwritten from the snapshot (charging
// configuration-write accounting, as a restore is a full-device
// download), the metrics, free-pin pool and residency table are returned
// to their captured values, the device log is detached, and the fault
// injector is replaced by a fresh clone positioned exactly where the
// captured one was — so a warm job draws the same fault stream a cold
// rebuild would. The kernel binding is kept; the caller resets the
// kernel itself (sim.Kernel.Reset) before running the next job.
func (l *Ledger) ResetForJob(img *PristineImage) error {
	defer l.enter()()
	if err := l.e.Dev.Restore(img.snap); err != nil {
		return err
	}
	l.e.M = img.metrics
	l.e.pins = append([]int(nil), img.pins...)
	l.residents = copyResidents(img.residents)
	l.frag.rebuild(l.residents)
	l.log = nil
	if img.inj != nil {
		l.inj = img.inj.Clone()
	} else {
		l.inj = nil
	}
	return nil
}

// TryLoad downloads circuit c as a full-height strip at column x for
// owner: it allocates pins, applies the bitstream, charges the download
// from the timing model (the full-device serial cost when wholeDevice is
// set and the fabric lacks partial reconfiguration, the strip's own cost
// otherwise), and records the residency. It returns the pin-multiplexing
// factor and the charged cost.
func (l *Ledger) TryLoad(owner string, c *compile.Circuit, x int, wholeDevice bool) (mux int, cost sim.Time, err error) {
	defer l.enter()()
	if r := l.residents[x]; r != nil {
		return 0, 0, fmt.Errorf("core: column %d already holds %s; evict first", x, r.Circuit)
	}
	pins, mux, err := l.e.AllocPins(c.BS.NumIn + c.BS.NumOut)
	if err != nil {
		return 0, 0, err
	}
	in, out := binding(c, pins)
	tm := l.e.Opt.Timing
	var base sim.Time
	if wholeDevice && !tm.PartialReconfig {
		base = tm.FullConfigTime(l.e.Opt.Geometry)
	} else {
		base = c.BS.ConfigCost(tm)
	}
	region := c.BS.Region(x, 0)
	extra, err := l.applyConfig("load", owner, c, x, in, out, region, base)
	if err != nil {
		l.e.FreePins(pins)
		return 0, 0, err
	}
	cost = base + extra
	l.e.M.Loads.Inc()
	l.e.M.ConfigTime += base
	if mux > 1 {
		l.e.M.MuxedOps.Inc()
	}
	l.residents[x] = &Resident{Circuit: c.Name, C: c, Owner: owner, Region: region, Pins: pins, Mux: mux}
	l.frag.alloc(region.X, region.W)
	l.emit(OpLoad, owner, c.Name, region, -1, base, false)
	l.e.noteUtil(l.now())
	return mux, cost, nil
}

// configFaultCharge maps a config-point fault to the simulated time it
// wastes, as a function of the download's nominal cost: a CRC error is
// detected partway through the frame stream, a timeout only after the
// full window has elapsed (plus the discarded download), and a pin
// glitch by the boundary scan after a complete download.
func configFaultCharge(kind fault.Kind, base sim.Time) sim.Time {
	switch kind {
	case fault.ConfigError:
		return base / 2
	case fault.ConfigTimeout:
		return 2 * base
	default: // pin glitch
		return base
	}
}

// applyConfig writes c's bitstream at column x under the fault plan:
// each injected config fault wipes the partial strip, charges wasted
// time into Metrics.FaultTime, and either retries (with doubling
// backoff) or — once the attempt budget is gone — escalates with a
// typed *fault.EscalationError. It returns the fault/backoff time
// charged on top of the caller's nominal cost; on success the device
// holds the applied configuration.
func (l *Ledger) applyConfig(op, owner string, c *compile.Circuit, x int, in, out []int, region fabric.Region, base sim.Time) (sim.Time, error) {
	var extra sim.Time
	attempts := l.maxAttempts()
	for attempt := 1; ; attempt++ {
		if _, _, err := c.BS.Apply(l.e.Dev, x, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
			return extra, fmt.Errorf("core: apply %s at column %d: %w", c.Name, x, err)
		}
		kind, _ := l.nextFault(fault.PointConfig)
		if kind == fault.None {
			if attempt > 1 {
				l.e.M.FaultRecoveries.Inc()
			}
			return extra, nil
		}
		l.e.Dev.ClearRegion(region)
		charge := configFaultCharge(kind, base)
		extra += charge
		if attempt >= attempts {
			l.noteFault(owner, c.Name, region, -1, charge, kind.String()+" escalated")
			l.e.M.FaultEscalations.Inc()
			return extra, &fault.EscalationError{Kind: kind, Op: op, Circuit: c.Name, Attempts: attempt}
		}
		l.noteFault(owner, c.Name, region, -1, charge, kind.String())
		extra += l.noteRetry(owner, c.Name, region, -1, attempt, kind)
	}
}

// Load is TryLoad for contexts where failure is a program bug (managers
// validate fit at Register time).
func (l *Ledger) Load(owner string, c *compile.Circuit, x int, wholeDevice bool) (mux int, cost sim.Time) {
	mux, cost, err := l.TryLoad(owner, c, x, wholeDevice)
	if err != nil {
		panic(err)
	}
	return mux, cost
}

// evict clears the strip at x, returns its pins, and drops the residency.
func (l *Ledger) evict(x int, voluntary bool) {
	r := l.residents[x]
	if r == nil {
		panic(fmt.Sprintf("core: evict of empty column %d", x))
	}
	l.e.Dev.ClearRegion(r.Region)
	l.e.FreePins(r.Pins)
	delete(l.residents, x)
	l.frag.free(r.Region.X, r.Region.W)
	if !voluntary {
		l.e.M.Evictions.Inc()
	}
	l.emit(OpEvict, r.Owner, r.Circuit, r.Region, -1, 0, voluntary)
	l.e.noteUtil(l.now())
}

// Evict displaces the resident strip at column x to make room for
// another circuit. Clearing configuration RAM is free in the timing
// model; the displaced state, if any, must be read back first.
func (l *Ledger) Evict(x int) {
	defer l.enter()()
	l.evict(x, false)
}

// Release returns the strip at column x voluntarily (owner exit or
// hand-back); it clears the device like Evict but is not counted as a
// displacement in Metrics.Evictions.
func (l *Ledger) Release(x int) {
	defer l.enter()()
	l.evict(x, true)
}

// Readback reads the flip-flop state of c's footprint at region into OS
// tables (the paper's §3 observability requirement), charging the
// readback time.
func (l *Ledger) Readback(owner string, c *compile.Circuit, region fabric.Region) ([]bool, sim.Time) {
	defer l.enter()()
	return l.readback(owner, c, region)
}

// readback escalates by panicking with a *fault.EscalationError: its
// callers (preemption paths deep inside managers) have no error return,
// and a failed state save is not a placement condition policy can route
// around. The serve layer maps the panic to a typed job failure.
func (l *Ledger) readback(owner string, c *compile.Circuit, region fabric.Region) ([]bool, sim.Time) {
	cost := l.e.Opt.Timing.ReadbackTime(c.BS.FFCells)
	var extra sim.Time
	attempts := l.maxAttempts()
	for attempt := 1; ; attempt++ {
		st := l.e.Dev.ReadRegionState(region)
		kind, aux := l.nextFault(fault.PointReadback)
		if kind == fault.None {
			l.e.M.Readbacks.Inc()
			l.e.M.ReadbackTime += cost
			if attempt > 1 {
				l.e.M.FaultRecoveries.Inc()
			}
			l.emit(OpReadback, owner, c.Name, region, -1, cost, false)
			return st, cost + extra
		}
		// The shadow CRC catches the flipped bit; the whole read is
		// discarded and its time wasted.
		note := kind.String()
		if len(st) > 0 {
			note = fmt.Sprintf("%s bit %d", kind, int(aux%uint64(len(st))))
		}
		extra += cost
		if attempt >= attempts {
			l.noteFault(owner, c.Name, region, -1, cost, note+" escalated")
			l.e.M.FaultEscalations.Inc()
			panic(&fault.EscalationError{Kind: kind, Op: "readback", Circuit: c.Name, Attempts: attempt})
		}
		l.noteFault(owner, c.Name, region, -1, cost, note)
		extra += l.noteRetry(owner, c.Name, region, -1, attempt, kind)
	}
}

// Restore writes previously saved flip-flop state back into c's
// footprint (§3 controllability), charging the restore time.
func (l *Ledger) Restore(owner string, c *compile.Circuit, region fabric.Region, state []bool) sim.Time {
	defer l.enter()()
	return l.restore(owner, c, region, state)
}

// restore escalates by panic for the same reason readback does.
func (l *Ledger) restore(owner string, c *compile.Circuit, region fabric.Region, state []bool) sim.Time {
	cost := l.e.Opt.Timing.RestoreTime(c.BS.FFCells)
	var extra sim.Time
	attempts := l.maxAttempts()
	for attempt := 1; ; attempt++ {
		kind, aux := l.nextFault(fault.PointRestore)
		if kind == fault.None {
			l.e.Dev.WriteRegionState(region, state)
			l.e.M.Restores.Inc()
			l.e.M.RestoreTime += cost
			if attempt > 1 {
				l.e.M.FaultRecoveries.Inc()
			}
			l.emit(OpRestore, owner, c.Name, region, -1, cost, false)
			return cost + extra
		}
		// The write-back lands with one bit wrong; the verifying readback
		// disagrees and the attempt is rolled back. The corrupted state
		// really reaches the device so an escalated board is observably
		// wrong, not just slow.
		note := kind.String()
		if len(state) > 0 {
			bit := int(aux % uint64(len(state)))
			corrupt := append([]bool(nil), state...)
			corrupt[bit] = !corrupt[bit]
			l.e.Dev.WriteRegionState(region, corrupt)
			note = fmt.Sprintf("%s bit %d", kind, bit)
		}
		extra += cost
		if attempt >= attempts {
			l.noteFault(owner, c.Name, region, -1, cost, note+" escalated")
			l.e.M.FaultEscalations.Inc()
			panic(&fault.EscalationError{Kind: kind, Op: "restore", Circuit: c.Name, Attempts: attempt})
		}
		l.noteFault(owner, c.Name, region, -1, cost, note)
		extra += l.noteRetry(owner, c.Name, region, -1, attempt, kind)
	}
}

// Reset forces every flip-flop in c's footprint back to its configured
// init value (first use, or restart after rollback), scanning in the
// device's x-major state order. It costs a state write but is not a
// restore of saved state, so Metrics.Restores stays untouched.
func (l *Ledger) Reset(owner string, c *compile.Circuit, region fabric.Region) sim.Time {
	defer l.enter()()
	init := make([]bool, 0, c.BS.FFCells)
	for x := region.X; x < region.X+region.W; x++ {
		for y := region.Y; y < region.Y+region.H; y++ {
			cfg := l.e.Dev.CLB(x, y)
			if cfg.Used && cfg.UseFF {
				init = append(init, cfg.FFInit)
			}
		}
	}
	l.e.Dev.WriteRegionState(region, init)
	cost := l.e.Opt.Timing.RestoreTime(c.BS.FFCells)
	l.e.M.RestoreTime += cost
	l.emit(OpReset, owner, c.Name, region, -1, cost, false)
	return cost
}

// Rollback records that owner's in-flight operation on circuit restarts
// from its beginning (§3's alternative to save/restore). The device is
// untouched: the reset happens when the circuit is next adopted.
func (l *Ledger) Rollback(owner, circuit string) {
	defer l.enter()()
	l.e.M.Rollbacks.Inc()
	l.emit(OpRollback, owner, circuit, fabric.Region{}, -1, 0, false)
}

// Relocate moves the resident strip at oldX to newX (§4's garbage
// collection): sequential state is read back, the configuration is
// re-applied at the new origin with the same pins, and the state is
// restored. It returns the total time charged. The regions may overlap —
// the old strip is cleared before the new one is written.
func (l *Ledger) Relocate(oldX, newX int) sim.Time {
	defer l.enter()()
	r := l.residents[oldX]
	if r == nil {
		panic(fmt.Sprintf("core: relocate of empty column %d", oldX))
	}
	if oldX == newX {
		return 0
	}
	if l.residents[newX] != nil {
		panic(fmt.Sprintf("core: relocate target column %d already holds %s", newX, l.residents[newX].Circuit))
	}
	var cost sim.Time
	var state []bool
	if r.C.Sequential {
		st, c := l.readback(r.Owner, r.C, r.Region)
		state, cost = st, c
	}
	l.e.Dev.ClearRegion(r.Region)
	l.frag.free(r.Region.X, r.Region.W)
	in, out := binding(r.C, r.Pins)
	newRegion := r.C.BS.Region(newX, 0)
	ccost := r.C.BS.ConfigCost(l.e.Opt.Timing)
	extra, err := l.applyConfig("relocate", r.Owner, r.C, newX, in, out, newRegion, ccost)
	if err != nil {
		// The residency table keeps the doomed entry at oldX, so the
		// fragmentation model must claim those columns back to stay its
		// exact mirror.
		l.frag.alloc(r.Region.X, r.Region.W)
		if esc, ok := fault.AsEscalation(err); ok {
			// The strip is gone from both columns: relocation cannot be
			// unwound by policy, so escalate like readback does.
			panic(esc)
		}
		panic(fmt.Sprintf("core: relocate %s to column %d: %v", r.Circuit, newX, err))
	}
	l.e.M.ConfigTime += ccost
	cost += ccost + extra
	delete(l.residents, oldX)
	r.Region = newRegion
	l.residents[newX] = r
	l.frag.alloc(newRegion.X, newRegion.W)
	l.e.M.Relocations.Inc()
	l.emit(OpRelocate, r.Owner, r.Circuit, newRegion, -1, ccost, false)
	if r.C.Sequential {
		cost += l.restore(r.Owner, r.C, newRegion, state)
	}
	l.e.noteUtil(l.now())
	return cost
}

// LoadPage charges one demand-paged configuration download of cells CLB
// tiles for page index page of circuit (§2 pagination). Page frames are
// a residency/timing view of configuration RAM, so no fabric cells are
// written (see PagedLoader); the fault, the load and the download time
// are still accounted here, in the same ledger as every other download.
func (l *Ledger) LoadPage(owner, circuit string, page, cells int) sim.Time {
	defer l.enter()()
	base := l.e.Opt.Timing.PartialConfigTime(cells, 0)
	// Page downloads share the configuration port, so they share the
	// config injection point. There is no fabric region to wipe (frames
	// are a residency view); a faulted download is simply re-sent.
	var extra sim.Time
	attempts := l.maxAttempts()
	for attempt := 1; ; attempt++ {
		kind, _ := l.nextFault(fault.PointConfig)
		if kind == fault.None {
			if attempt > 1 {
				l.e.M.FaultRecoveries.Inc()
			}
			break
		}
		charge := configFaultCharge(kind, base)
		extra += charge
		if attempt >= attempts {
			l.noteFault(owner, circuit, fabric.Region{}, page, charge, kind.String()+" escalated")
			l.e.M.FaultEscalations.Inc()
			panic(&fault.EscalationError{Kind: kind, Op: "page", Circuit: circuit, Attempts: attempt})
		}
		l.noteFault(owner, circuit, fabric.Region{}, page, charge, kind.String())
		extra += l.noteRetry(owner, circuit, fabric.Region{}, page, attempt, kind)
	}
	l.e.M.PageFaults.Inc()
	l.e.M.PageLoads.Inc()
	l.e.M.ConfigTime += base
	l.emit(OpLoad, owner, circuit, fabric.Region{}, page, base, false)
	return base + extra
}

// EvictPage records the displacement of a resident page by the
// replacement policy.
func (l *Ledger) EvictPage(owner, circuit string, page int) {
	defer l.enter()()
	l.e.M.Evictions.Inc()
	l.emit(OpEvict, owner, circuit, fabric.Region{}, page, 0, false)
}

// ReleasePage records a page frame freed because no live task references
// its circuit anymore (task exit); like Release it does not count as a
// displacement.
func (l *Ledger) ReleasePage(owner, circuit string, page int) {
	defer l.enter()()
	l.emit(OpEvict, owner, circuit, fabric.Region{}, page, 0, true)
}

// NoteBlock records that owner suspended waiting for device space.
func (l *Ledger) NoteBlock(owner string) {
	defer l.enter()()
	l.e.M.Blocks.Inc()
	l.emit(OpBlock, owner, "", fabric.Region{}, -1, 0, false)
}

// NoteGC records the start of a garbage-collection (compaction) run.
func (l *Ledger) NoteGC() {
	defer l.enter()()
	l.e.M.GCRuns.Inc()
	l.emit(OpGC, "", "", fabric.Region{}, -1, 0, false)
}

// Frag returns the device's live external-fragmentation statistics, per
// the residency table: a column is free when no resident strip covers
// it. The model is maintained incrementally on every load, evict,
// release and relocate; a manager's own view may be narrower (a fixed
// partition table cannot use its slack), never wider.
func (l *Ledger) Frag() FragStats { return l.frag.stats() }

// Adopt transfers the residency at column x to a new owner without
// touching the device: the configured strip is reused in place (the
// amorphous manager's residency cache). Pure bookkeeping — no cost, no
// metrics, no event; any state reset is the adopter's policy to charge.
func (l *Ledger) Adopt(x int, owner string) {
	defer l.enter()()
	r := l.residents[x]
	if r == nil {
		panic(fmt.Sprintf("core: adopt of empty column %d", x))
	}
	r.Owner = owner
}

// CompactResult reports one Compact pass.
type CompactResult struct {
	Moved int      // resident strips relocated
	Cost  sim.Time // simulated time charged through the ledger
	Done  bool     // free space is fully coalesced (nothing left to move)
	Err   error    // typed escalation that aborted the pass, nil otherwise
}

// Compact slides resident strips leftward until the free space is one
// contiguous hole, stopping early when the next move would exceed
// budget (0 = unbounded). Every move is charged through the same
// relocation accounting as Relocate. Unlike Relocate, an injected fault
// that escalates mid-move aborts the pass cleanly: the doomed strip is
// dropped from the device and the residency table (an involuntary
// eviction on the timeline), the typed error is returned in Err, and
// the caller retries on a later idle cycle.
//
// Compact bypasses manager placement policy, so it is for idle,
// between-job use (the serve layer's background compactor): any manager
// whose bookkeeping survives a job must be reset before the board runs
// again, which the warm-board reset already guarantees.
func (l *Ledger) Compact(budget sim.Time) CompactResult {
	defer l.enter()()
	var res CompactResult
	origins := make([]int, 0, len(l.residents))
	for x := range l.residents {
		origins = append(origins, x)
	}
	sort.Ints(origins)
	gcNoted := false
	x := 0
	for _, ox := range origins {
		r := l.residents[ox]
		w := r.Region.W
		if ox != x {
			if budget > 0 && res.Cost+l.relocateEstimate(r) > budget {
				return res
			}
			if !gcNoted {
				l.e.M.GCRuns.Inc()
				l.emitNote(OpGC, "", "", fabric.Region{}, -1, 0, false, "compact")
				gcNoted = true
			}
			cost, err := l.relocateCompact(ox, x)
			res.Cost += cost
			if err != nil {
				res.Err = err
				return res
			}
			res.Moved++
		}
		x += w
	}
	res.Done = true
	return res
}

// relocateEstimate returns the nominal (fault-free) cost of relocating
// r, used to gate Compact's budget before committing to a move.
func (l *Ledger) relocateEstimate(r *Resident) sim.Time {
	tm := l.e.Opt.Timing
	cost := r.C.BS.ConfigCost(tm)
	if r.C.Sequential {
		cost += tm.ReadbackTime(r.C.BS.FFCells) + tm.RestoreTime(r.C.BS.FFCells)
	}
	return cost
}

// relocateCompact is Relocate with escalation returned instead of
// panicked, for Compact's clean-abort contract. A readback escalation
// leaves the strip untouched at oldX; an apply or restore escalation
// has already destroyed (or corrupted) the strip, so it is dropped —
// region cleared, pins refunded, residency removed, an involuntary
// eviction on the timeline — keeping table, fragmentation model and
// audit balanced.
func (l *Ledger) relocateCompact(oldX, newX int) (cost sim.Time, err error) {
	r := l.residents[oldX]
	var state []bool
	if r.C.Sequential {
		st, c, rerr := l.readbackRecover(r)
		cost += c
		if rerr != nil {
			return cost, rerr
		}
		state = st
	}
	l.e.Dev.ClearRegion(r.Region)
	l.frag.free(r.Region.X, r.Region.W)
	in, out := binding(r.C, r.Pins)
	newRegion := r.C.BS.Region(newX, 0)
	ccost := r.C.BS.ConfigCost(l.e.Opt.Timing)
	extra, aerr := l.applyConfig("relocate", r.Owner, r.C, newX, in, out, newRegion, ccost)
	cost += extra
	if aerr != nil {
		if _, ok := fault.AsEscalation(aerr); !ok {
			panic(fmt.Sprintf("core: relocate %s to column %d: %v", r.Circuit, newX, aerr))
		}
		l.e.FreePins(r.Pins)
		delete(l.residents, oldX)
		l.e.M.Evictions.Inc()
		l.emit(OpEvict, r.Owner, r.Circuit, r.Region, -1, 0, false)
		l.e.noteUtil(l.now())
		return cost, aerr
	}
	l.e.M.ConfigTime += ccost
	cost += ccost
	delete(l.residents, oldX)
	r.Region = newRegion
	l.residents[newX] = r
	l.frag.alloc(newRegion.X, newRegion.W)
	l.e.M.Relocations.Inc()
	l.emit(OpRelocate, r.Owner, r.Circuit, newRegion, -1, ccost, false)
	if r.C.Sequential {
		rcost, rerr := l.restoreRecover(r, newRegion, state)
		cost += rcost
		if rerr != nil {
			l.e.Dev.ClearRegion(newRegion)
			l.frag.free(newRegion.X, newRegion.W)
			l.e.FreePins(r.Pins)
			delete(l.residents, newX)
			l.e.M.Evictions.Inc()
			l.emit(OpEvict, r.Owner, r.Circuit, newRegion, -1, 0, false)
			l.e.noteUtil(l.now())
			return cost, rerr
		}
	}
	l.e.noteUtil(l.now())
	return cost, nil
}

// readbackRecover runs readback, converting its escalation panic into
// an error for Compact's abort path.
func (l *Ledger) readbackRecover(r *Resident) (st []bool, cost sim.Time, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			esc, ok := rec.(*fault.EscalationError)
			if !ok {
				panic(rec)
			}
			err = esc
		}
	}()
	st, cost = l.readback(r.Owner, r.C, r.Region)
	return st, cost, nil
}

// restoreRecover runs restore, converting its escalation panic into an
// error for Compact's abort path.
func (l *Ledger) restoreRecover(r *Resident, region fabric.Region, state []bool) (cost sim.Time, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			esc, ok := rec.(*fault.EscalationError)
			if !ok {
				panic(rec)
			}
			err = esc
		}
	}()
	return l.restore(r.Owner, r.C, region, state), nil
}
