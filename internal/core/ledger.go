package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/lint"
	"repro/internal/sim"
)

// LedgerOp enumerates the residency-ledger transaction kinds. The first
// seven are the paper's device mechanics — configuration download (§2/§3),
// state readback and restore (§3's observability/controllability), restart
// after rollback (§3), and garbage-collection relocation (§4). Block and
// GC are annotations: policy decisions that change no device state but
// belong on the same timeline.
type LedgerOp int

// Ledger operation kinds.
const (
	OpLoad     LedgerOp = iota // configuration download (strip or page)
	OpEvict                    // residency displaced or released
	OpReadback                 // flip-flop state saved to OS tables
	OpRestore                  // flip-flop state written back
	OpReset                    // flip-flops forced to configured init values
	OpRollback                 // in-flight operation restarted from scratch
	OpRelocate                 // circuit moved by garbage collection
	OpBlock                    // task suspended waiting for device space
	OpGC                       // compaction run started
)

func (k LedgerOp) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpEvict:
		return "evict"
	case OpReadback:
		return "readback"
	case OpRestore:
		return "restore"
	case OpReset:
		return "reset"
	case OpRollback:
		return "rollback"
	case OpRelocate:
		return "relocate"
	case OpBlock:
		return "block"
	case OpGC:
		return "gc"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// DeviceEvent is one structured device-side event: what the ledger did,
// on whose behalf, to which circuit and region, and what it cost. It is
// the device-side counterpart of hostos.Event.
type DeviceEvent struct {
	At      sim.Time
	Op      LedgerOp
	Task    string // owning task ("" for system operations)
	Circuit string
	Region  fabric.Region
	// Page is the configuration-page index for paged loads/evictions,
	// -1 for whole-strip operations.
	Page int
	Cost sim.Time
	// Voluntary marks an OpEvict that released residency at the owner's
	// exit (or hand-back) rather than displacing it for someone else;
	// only involuntary evictions count in Metrics.Evictions.
	Voluntary bool
}

// Detail renders everything but the operation kind: circuit, placement,
// cost, and the voluntary marker.
func (e DeviceEvent) Detail() string {
	var b strings.Builder
	if e.Circuit != "" {
		fmt.Fprintf(&b, "%s", e.Circuit)
	}
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page %d", e.Page)
	} else if e.Region.W > 0 {
		fmt.Fprintf(&b, " @x=%d w=%d", e.Region.X, e.Region.W)
	}
	if e.Cost > 0 {
		fmt.Fprintf(&b, " cost=%v", e.Cost)
	}
	if e.Voluntary {
		b.WriteString(" (released)")
	}
	return strings.TrimSpace(b.String())
}

// String renders the event compactly for traces and debugging.
func (e DeviceEvent) String() string {
	if d := e.Detail(); d != "" {
		return e.Op.String() + " " + d
	}
	return e.Op.String()
}

// DeviceLog records ledger events for post-mortem inspection and merged
// scheduler+device timelines. Attach with Ledger.AttachLog; a nil log
// costs nothing.
type DeviceLog struct {
	events []DeviceEvent
	limit  int
}

// NewDeviceLog returns a log capped at limit events (0 = unbounded).
func NewDeviceLog(limit int) *DeviceLog {
	return &DeviceLog{limit: limit}
}

// Emit appends an event (dropping the oldest beyond the cap).
func (l *DeviceLog) Emit(e DeviceEvent) {
	l.events = append(l.events, e)
	if l.limit > 0 && len(l.events) > l.limit {
		l.events = l.events[len(l.events)-l.limit:]
	}
}

// Events returns the recorded events in emission order.
func (l *DeviceLog) Events() []DeviceEvent { return l.events }

// String renders the raw event list.
func (l *DeviceLog) String() string {
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%12v  %-10s %s\n", e.At, e.Task, e)
	}
	return b.String()
}

// LintTargeter is implemented by every manager: it exports the manager's
// live device state (one target per device) for the static verifier.
type LintTargeter interface {
	LintTargets() []*lint.Target
}

// Resident is one live entry of the ledger's residency table: a
// full-height circuit strip the ledger downloaded and has not yet
// evicted, together with the physical pins it holds.
type Resident struct {
	Circuit string
	C       *compile.Circuit
	Owner   string // task that requested the download ("" for system)
	Region  fabric.Region
	Pins    []int
	Mux     int
}

// Ledger is the transaction layer under every VFPGA manager: the one
// place that performs fabric writes, charges time from the timing model,
// bumps Metrics, and emits device-side trace events. Managers stay pure
// policy — they decide *what* to load, evict or save; the ledger decides
// (and accounts for) *how*.
//
// The ledger also keeps the authoritative residency table (which circuit
// strip sits at which column, holding which pins), which doubles as the
// live state source for the static verifier via LintTarget.
//
// A Ledger (like the Engine it belongs to) is single-goroutine by
// design: the simulation kernel is not a concurrent object, and neither
// are the device, metrics, or residency table under it. Concurrent
// layers (the vfpgad board pool) must confine each engine and its
// managers to one goroutine. Every mutating ledger operation carries a
// cheap mutex-backed assertion that panics on concurrent entry, so
// misuse fails loudly instead of racing.
type Ledger struct {
	e         *Engine
	k         *sim.Kernel
	log       *DeviceLog
	residents map[int]*Resident // keyed by strip origin column

	// guard backs the single-goroutine assertion: TryLock fails only if
	// another operation is mid-flight, which under the ownership contract
	// can only mean a second goroutine.
	guard sync.Mutex
}

// enter asserts the single-goroutine ownership contract on entry to a
// mutating operation and returns the matching exit function. An
// uncontended TryLock is one atomic operation, cheap enough to keep on
// in every build.
func (l *Ledger) enter() func() {
	if !l.guard.TryLock() {
		panic("core: concurrent Ledger use — an Engine and its managers must be confined to a single goroutine")
	}
	return l.guard.Unlock
}

// Bind attaches the simulation clock used to timestamp events. Manager
// constructors call it; the most recent binding wins, so an engine can be
// probed by several short-lived managers (tests do) as long as the ones
// actually running share a kernel.
func (l *Ledger) Bind(k *sim.Kernel) {
	if k != nil {
		l.k = k
	}
}

// AttachLog starts recording device events into log.
func (l *Ledger) AttachLog(log *DeviceLog) { l.log = log }

// Log returns the attached device log (nil when tracing is off).
func (l *Ledger) Log() *DeviceLog { return l.log }

func (l *Ledger) now() sim.Time {
	if l.k == nil {
		return 0
	}
	return l.k.Now()
}

func (l *Ledger) emit(op LedgerOp, task, circuit string, region fabric.Region, page int, cost sim.Time, voluntary bool) {
	if l.log == nil {
		return
	}
	l.log.Emit(DeviceEvent{
		At: l.now(), Op: op, Task: task, Circuit: circuit,
		Region: region, Page: page, Cost: cost, Voluntary: voluntary,
	})
}

// ResidentAt returns the residency entry whose strip starts at column x,
// or nil.
func (l *Ledger) ResidentAt(x int) *Resident { return l.residents[x] }

// Residents returns the residency table sorted by origin column.
func (l *Ledger) Residents() []Resident {
	out := make([]Resident, 0, len(l.residents))
	for _, r := range l.residents {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region.X < out[j].Region.X })
	return out
}

// LintTarget exports the ledger's device view as a static-verifier
// target, so any manager — not just the partition manager — can be
// audited mid-run (fabric-config pass: no dangling sources, no
// configuration-level loops).
func (l *Ledger) LintTarget(name string) *lint.Target {
	return &lint.Target{Name: name, Device: l.e.Dev}
}

// TryLoad downloads circuit c as a full-height strip at column x for
// owner: it allocates pins, applies the bitstream, charges the download
// from the timing model (the full-device serial cost when wholeDevice is
// set and the fabric lacks partial reconfiguration, the strip's own cost
// otherwise), and records the residency. It returns the pin-multiplexing
// factor and the charged cost.
func (l *Ledger) TryLoad(owner string, c *compile.Circuit, x int, wholeDevice bool) (mux int, cost sim.Time, err error) {
	defer l.enter()()
	if r := l.residents[x]; r != nil {
		return 0, 0, fmt.Errorf("core: column %d already holds %s; evict first", x, r.Circuit)
	}
	pins, mux, err := l.e.AllocPins(c.BS.NumIn + c.BS.NumOut)
	if err != nil {
		return 0, 0, err
	}
	in, out := binding(c, pins)
	if _, _, err := c.BS.Apply(l.e.Dev, x, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
		l.e.FreePins(pins)
		return 0, 0, fmt.Errorf("core: apply %s at column %d: %w", c.Name, x, err)
	}
	tm := l.e.Opt.Timing
	if wholeDevice && !tm.PartialReconfig {
		cost = tm.FullConfigTime(l.e.Opt.Geometry)
	} else {
		cost = c.BS.ConfigCost(tm)
	}
	l.e.M.Loads.Inc()
	l.e.M.ConfigTime += cost
	if mux > 1 {
		l.e.M.MuxedOps.Inc()
	}
	region := c.BS.Region(x, 0)
	l.residents[x] = &Resident{Circuit: c.Name, C: c, Owner: owner, Region: region, Pins: pins, Mux: mux}
	l.emit(OpLoad, owner, c.Name, region, -1, cost, false)
	l.e.noteUtil(l.now())
	return mux, cost, nil
}

// Load is TryLoad for contexts where failure is a program bug (managers
// validate fit at Register time).
func (l *Ledger) Load(owner string, c *compile.Circuit, x int, wholeDevice bool) (mux int, cost sim.Time) {
	mux, cost, err := l.TryLoad(owner, c, x, wholeDevice)
	if err != nil {
		panic(err)
	}
	return mux, cost
}

// evict clears the strip at x, returns its pins, and drops the residency.
func (l *Ledger) evict(x int, voluntary bool) {
	r := l.residents[x]
	if r == nil {
		panic(fmt.Sprintf("core: evict of empty column %d", x))
	}
	l.e.Dev.ClearRegion(r.Region)
	l.e.FreePins(r.Pins)
	delete(l.residents, x)
	if !voluntary {
		l.e.M.Evictions.Inc()
	}
	l.emit(OpEvict, r.Owner, r.Circuit, r.Region, -1, 0, voluntary)
	l.e.noteUtil(l.now())
}

// Evict displaces the resident strip at column x to make room for
// another circuit. Clearing configuration RAM is free in the timing
// model; the displaced state, if any, must be read back first.
func (l *Ledger) Evict(x int) {
	defer l.enter()()
	l.evict(x, false)
}

// Release returns the strip at column x voluntarily (owner exit or
// hand-back); it clears the device like Evict but is not counted as a
// displacement in Metrics.Evictions.
func (l *Ledger) Release(x int) {
	defer l.enter()()
	l.evict(x, true)
}

// Readback reads the flip-flop state of c's footprint at region into OS
// tables (the paper's §3 observability requirement), charging the
// readback time.
func (l *Ledger) Readback(owner string, c *compile.Circuit, region fabric.Region) ([]bool, sim.Time) {
	defer l.enter()()
	return l.readback(owner, c, region)
}

func (l *Ledger) readback(owner string, c *compile.Circuit, region fabric.Region) ([]bool, sim.Time) {
	st := l.e.Dev.ReadRegionState(region)
	cost := l.e.Opt.Timing.ReadbackTime(c.BS.FFCells)
	l.e.M.Readbacks.Inc()
	l.e.M.ReadbackTime += cost
	l.emit(OpReadback, owner, c.Name, region, -1, cost, false)
	return st, cost
}

// Restore writes previously saved flip-flop state back into c's
// footprint (§3 controllability), charging the restore time.
func (l *Ledger) Restore(owner string, c *compile.Circuit, region fabric.Region, state []bool) sim.Time {
	defer l.enter()()
	return l.restore(owner, c, region, state)
}

func (l *Ledger) restore(owner string, c *compile.Circuit, region fabric.Region, state []bool) sim.Time {
	l.e.Dev.WriteRegionState(region, state)
	cost := l.e.Opt.Timing.RestoreTime(c.BS.FFCells)
	l.e.M.Restores.Inc()
	l.e.M.RestoreTime += cost
	l.emit(OpRestore, owner, c.Name, region, -1, cost, false)
	return cost
}

// Reset forces every flip-flop in c's footprint back to its configured
// init value (first use, or restart after rollback), scanning in the
// device's x-major state order. It costs a state write but is not a
// restore of saved state, so Metrics.Restores stays untouched.
func (l *Ledger) Reset(owner string, c *compile.Circuit, region fabric.Region) sim.Time {
	defer l.enter()()
	init := make([]bool, 0, c.BS.FFCells)
	for x := region.X; x < region.X+region.W; x++ {
		for y := region.Y; y < region.Y+region.H; y++ {
			cfg := l.e.Dev.CLB(x, y)
			if cfg.Used && cfg.UseFF {
				init = append(init, cfg.FFInit)
			}
		}
	}
	l.e.Dev.WriteRegionState(region, init)
	cost := l.e.Opt.Timing.RestoreTime(c.BS.FFCells)
	l.e.M.RestoreTime += cost
	l.emit(OpReset, owner, c.Name, region, -1, cost, false)
	return cost
}

// Rollback records that owner's in-flight operation on circuit restarts
// from its beginning (§3's alternative to save/restore). The device is
// untouched: the reset happens when the circuit is next adopted.
func (l *Ledger) Rollback(owner, circuit string) {
	defer l.enter()()
	l.e.M.Rollbacks.Inc()
	l.emit(OpRollback, owner, circuit, fabric.Region{}, -1, 0, false)
}

// Relocate moves the resident strip at oldX to newX (§4's garbage
// collection): sequential state is read back, the configuration is
// re-applied at the new origin with the same pins, and the state is
// restored. It returns the total time charged. The regions may overlap —
// the old strip is cleared before the new one is written.
func (l *Ledger) Relocate(oldX, newX int) sim.Time {
	defer l.enter()()
	r := l.residents[oldX]
	if r == nil {
		panic(fmt.Sprintf("core: relocate of empty column %d", oldX))
	}
	if oldX == newX {
		return 0
	}
	if l.residents[newX] != nil {
		panic(fmt.Sprintf("core: relocate target column %d already holds %s", newX, l.residents[newX].Circuit))
	}
	var cost sim.Time
	var state []bool
	if r.C.Sequential {
		st, c := l.readback(r.Owner, r.C, r.Region)
		state, cost = st, c
	}
	l.e.Dev.ClearRegion(r.Region)
	in, out := binding(r.C, r.Pins)
	if _, _, err := r.C.BS.Apply(l.e.Dev, newX, 0, &bitstream.PinBinding{In: in, Out: out}); err != nil {
		panic(fmt.Sprintf("core: relocate %s to column %d: %v", r.Circuit, newX, err))
	}
	newRegion := r.C.BS.Region(newX, 0)
	ccost := r.C.BS.ConfigCost(l.e.Opt.Timing)
	l.e.M.ConfigTime += ccost
	cost += ccost
	delete(l.residents, oldX)
	r.Region = newRegion
	l.residents[newX] = r
	l.e.M.Relocations.Inc()
	l.emit(OpRelocate, r.Owner, r.Circuit, newRegion, -1, ccost, false)
	if r.C.Sequential {
		cost += l.restore(r.Owner, r.C, newRegion, state)
	}
	l.e.noteUtil(l.now())
	return cost
}

// LoadPage charges one demand-paged configuration download of cells CLB
// tiles for page index page of circuit (§2 pagination). Page frames are
// a residency/timing view of configuration RAM, so no fabric cells are
// written (see PagedLoader); the fault, the load and the download time
// are still accounted here, in the same ledger as every other download.
func (l *Ledger) LoadPage(owner, circuit string, page, cells int) sim.Time {
	defer l.enter()()
	cost := l.e.Opt.Timing.PartialConfigTime(cells, 0)
	l.e.M.PageFaults.Inc()
	l.e.M.PageLoads.Inc()
	l.e.M.ConfigTime += cost
	l.emit(OpLoad, owner, circuit, fabric.Region{}, page, cost, false)
	return cost
}

// EvictPage records the displacement of a resident page by the
// replacement policy.
func (l *Ledger) EvictPage(owner, circuit string, page int) {
	defer l.enter()()
	l.e.M.Evictions.Inc()
	l.emit(OpEvict, owner, circuit, fabric.Region{}, page, 0, false)
}

// ReleasePage records a page frame freed because no live task references
// its circuit anymore (task exit); like Release it does not count as a
// displacement.
func (l *Ledger) ReleasePage(owner, circuit string, page int) {
	defer l.enter()()
	l.emit(OpEvict, owner, circuit, fabric.Region{}, page, 0, true)
}

// NoteBlock records that owner suspended waiting for device space.
func (l *Ledger) NoteBlock(owner string) {
	defer l.enter()()
	l.e.M.Blocks.Inc()
	l.emit(OpBlock, owner, "", fabric.Region{}, -1, 0, false)
}

// NoteGC records the start of a garbage-collection (compaction) run.
func (l *Ledger) NoteGC() {
	defer l.enter()()
	l.e.M.GCRuns.Inc()
	l.emit(OpGC, "", "", fabric.Region{}, -1, 0, false)
}
