package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// testGeometry is a small device so circuit compilation stays fast.
func testGeometry() fabric.Geometry {
	return fabric.Geometry{Cols: 24, Rows: 8, TracksPerChannel: 12, PinsPerSide: 24}
}

func testOptions() Options {
	o := DefaultOptions()
	o.Geometry = testGeometry()
	return o
}

// newEngine builds an engine preloaded with the small test circuits.
func newEngine(t testing.TB, opt Options) *Engine {
	t.Helper()
	e := NewEngine(opt)
	for _, nl := range []*netlist.Netlist{
		netlist.Adder(8),      // comb, ~3 cols
		netlist.Parity(16),    // comb, tiny
		netlist.Counter(8),    // seq
		netlist.Multiplier(4), // comb, wider
		netlist.Accumulator(8),
	} {
		if err := e.AddCircuit(nl); err != nil {
			t.Fatalf("add %s: %v", nl.Name, err)
		}
	}
	return e
}

type harness struct {
	K  *sim.Kernel
	E  *Engine
	OS *hostos.OS
}

func newHarness(t testing.TB, opt Options, osCfg hostos.Config, mk func(*sim.Kernel, *Engine) hostos.FPGA) *harness {
	t.Helper()
	k := sim.New()
	e := newEngine(t, opt)
	mgr := mk(k, e)
	os := hostos.New(k, osCfg, mgr)
	if pm, ok := mgr.(*PartitionManager); ok {
		pm.AttachOS(os)
	}
	return &harness{K: k, E: e, OS: os}
}

func dynHarness(t testing.TB, opt Options, osCfg hostos.Config) (*harness, *DynamicLoader) {
	var d *DynamicLoader
	h := newHarness(t, opt, osCfg, func(k *sim.Kernel, e *Engine) hostos.FPGA {
		d = NewDynamicLoader(k, e)
		return d
	})
	return h, d
}

func fpgaOp(circuit string, evals int64) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Evaluations: evals})
}

func seqOp(circuit string, cycles int64) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Cycles: cycles})
}

// --- DynamicLoader ---

func TestDynamicLoadOnFirstUse(t *testing.T) {
	h, d := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO})
	task, err := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100)})
	if err != nil {
		t.Fatal(err)
	}
	h.K.Run()
	if task.State() != hostos.TaskDone {
		t.Fatalf("state %v", task.State())
	}
	if h.E.M.Loads.Value() != 1 {
		t.Fatalf("loads = %d", h.E.M.Loads.Value())
	}
	if d.Resident() != "adder8" {
		t.Fatalf("resident %q", d.Resident())
	}
	if task.Overhead < h.E.Lib["adder8"].BS.ConfigCost(h.E.Opt.Timing) {
		t.Fatal("config time not charged")
	}
}

func TestDynamicSharedCircuitNoReload(t *testing.T) {
	// Two tasks using the same combinational circuit: one download total
	// (the paper's shared device-driver algorithm).
	h, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO})
	h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100)})
	h.OS.Spawn("b", 0, []hostos.Op{fpgaOp("adder8", 100)})
	h.K.Run()
	if h.E.M.Loads.Value() != 1 {
		t.Fatalf("loads = %d, want 1", h.E.M.Loads.Value())
	}
}

func TestDynamicAlternationReloads(t *testing.T) {
	h, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO})
	h.OS.Spawn("a", 0, []hostos.Op{
		fpgaOp("adder8", 10), fpgaOp("mul4", 10), fpgaOp("adder8", 10), fpgaOp("mul4", 10),
	})
	h.K.Run()
	if got := h.E.M.Loads.Value(); got != 4 {
		t.Fatalf("loads = %d, want 4 (every switch reloads)", got)
	}
	if h.E.M.Evictions.Value() != 3 {
		t.Fatalf("evictions = %d, want 3", h.E.M.Evictions.Value())
	}
}

func TestDynamicFullVsPartialReconfig(t *testing.T) {
	run := func(partial bool) sim.Time {
		opt := testOptions()
		opt.Timing.PartialReconfig = partial
		h, _ := dynHarness(t, opt, hostos.Config{Policy: hostos.FIFO})
		var prog []hostos.Op
		for i := 0; i < 4; i++ {
			prog = append(prog, fpgaOp("adder8", 10), fpgaOp("parity16", 10))
		}
		task, _ := h.OS.Spawn("a", 0, prog)
		h.K.Run()
		return task.Turnaround()
	}
	withPartial := run(true)
	fullOnly := run(false)
	// The paper's point: full serial reconfiguration makes frequent
	// switching an order of magnitude worse than partial reconfiguration.
	if fullOnly < 3*withPartial {
		t.Fatalf("full-only %v should dominate partial %v", fullOnly, withPartial)
	}
	full := fabric.DefaultTiming().FullConfigTime(testGeometry())
	if fullOnly < 8*full {
		t.Fatalf("8 full reconfigs (%v each) should bound %v", full, fullOnly)
	}
}

func TestDynamicSequentialSaveRestore(t *testing.T) {
	// A sequential task preempted by a CPU hog must save and restore FF
	// state and lose no completed cycles.
	opt := testOptions()
	opt.State = SaveRestore
	h, _ := dynHarness(t, opt, hostos.Config{Policy: hostos.RR, TimeSlice: 2 * sim.Millisecond})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{seqOp("counter8", 400_000)}) // 8ms at 20ns
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(6 * sim.Millisecond)})
	h.K.Run()
	if hw.Preemptions == 0 {
		t.Fatal("expected preemptions")
	}
	if h.E.M.Readbacks.Value() == 0 || h.E.M.Restores.Value() == 0 {
		t.Fatalf("readbacks %d restores %d", h.E.M.Readbacks.Value(), h.E.M.Restores.Value())
	}
	want := sim.Time(400_000) * h.E.Lib["counter8"].ClockPeriod
	if hw.HWTime != want {
		t.Fatalf("HW time %v, want %v (no lost work)", hw.HWTime, want)
	}
}

func TestDynamicSequentialRollbackRedoes(t *testing.T) {
	opt := testOptions()
	opt.State = Rollback
	h, _ := dynHarness(t, opt, hostos.Config{Policy: hostos.RR, TimeSlice: 2 * sim.Millisecond})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{seqOp("counter8", 400_000)})
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(6 * sim.Millisecond)})
	h.K.Run()
	want := sim.Time(400_000) * h.E.Lib["counter8"].ClockPeriod
	if hw.HWTime <= want {
		t.Fatalf("rollback should redo work: %v <= %v", hw.HWTime, want)
	}
	if h.E.M.Rollbacks.Value() == 0 {
		t.Fatal("no rollbacks counted")
	}
}

func TestDynamicNonPreemptableRunsThrough(t *testing.T) {
	opt := testOptions()
	opt.State = NonPreemptable
	h, _ := dynHarness(t, opt, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{seqOp("counter8", 400_000)})
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(2 * sim.Millisecond)})
	h.K.Run()
	if hw.Preemptions != 0 {
		t.Fatalf("non-preemptable op preempted %d times", hw.Preemptions)
	}
}

func TestDynamicCombPreemptionLosesNothing(t *testing.T) {
	h, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{fpgaOp("adder8", 400_000)})
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(3 * sim.Millisecond)})
	h.K.Run()
	want := sim.Time(400_000) * h.E.Lib["adder8"].ClockPeriod
	// Stream position is task state: at most one vector redone per preempt.
	slack := sim.Time(hw.Preemptions+1) * h.E.Lib["adder8"].ClockPeriod
	if hw.HWTime < want || hw.HWTime > want+slack {
		t.Fatalf("HW time %v, want %v (+<=%v)", hw.HWTime, want, slack)
	}
	if h.E.M.Readbacks.Value() != 0 {
		t.Fatal("combinational preemption should not read back state")
	}
}

func TestDynamicStateIsolationBetweenTasks(t *testing.T) {
	// Two tasks sharing a sequential circuit must not see each other's
	// state: readbacks/restores swap it.
	h, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{seqOp("counter8", 100_000), seqOp("counter8", 100_000)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{seqOp("counter8", 100_000)})
	h.K.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("tasks not done")
	}
	if h.E.M.Readbacks.Value() == 0 {
		t.Fatal("state swapping requires readbacks")
	}
}

func TestDoneSignalSlowerThanApriori(t *testing.T) {
	run := func(mode CompletionMode) sim.Time {
		opt := testOptions()
		opt.Completion = mode
		h, _ := dynHarness(t, opt, hostos.Config{Policy: hostos.FIFO})
		task, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000)})
		h.K.Run()
		return task.HWTime
	}
	apriori := run(Apriori)
	polled := run(DoneSignal)
	if polled <= apriori {
		t.Fatalf("done-signal %v should cost more than a-priori %v", polled, apriori)
	}
}

// --- pin multiplexing ---

func TestPinMultiplexing(t *testing.T) {
	// A device with very few pins forces time multiplexing: exec time
	// scales by the mux factor.
	optLow := testOptions()
	optLow.Geometry.PinsPerSide = 2 // 8 pins for adder8's 17 in + 9 out
	h, _ := dynHarness(t, optLow, hostos.Config{Policy: hostos.FIFO})
	muxed, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000)})
	h.K.Run()

	h2, _ := dynHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO})
	direct, _ := h2.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000)})
	h2.K.Run()

	if muxed.HWTime < 2*direct.HWTime {
		t.Fatalf("muxed HW time %v not scaled vs direct %v", muxed.HWTime, direct.HWTime)
	}
	if h.E.M.MuxedOps.Value() == 0 {
		t.Fatal("muxed ops not counted")
	}
}

func TestAllocPins(t *testing.T) {
	e := NewEngine(testOptions())
	total := e.FreePinCount()
	pins, mux, err := e.AllocPins(10)
	if err != nil || mux != 1 || len(pins) != 10 {
		t.Fatalf("alloc: %v %d %d", err, mux, len(pins))
	}
	if e.FreePinCount() != total-10 {
		t.Fatal("pool not decremented")
	}
	e.FreePins(pins)
	if e.FreePinCount() != total {
		t.Fatal("pool not restored")
	}
	// Over-allocation multiplexes.
	pins2, mux2, err := e.AllocPins(total + 50)
	if err != nil || mux2 < 2 {
		t.Fatalf("want mux >= 2, got %d (%v)", mux2, err)
	}
	e.FreePins(pins2)
	// Zero-pin request is free.
	if _, mux3, _ := e.AllocPins(0); mux3 != 1 {
		t.Fatal("zero-pin alloc should be mux 1")
	}
}

// --- PartitionManager ---

func partHarness(t testing.TB, opt Options, osCfg hostos.Config, cfg PartitionConfig) (*harness, *PartitionManager) {
	var pm *PartitionManager
	h := newHarness(t, opt, osCfg, func(k *sim.Kernel, e *Engine) hostos.FPGA {
		var err error
		pm, err = NewPartitionManager(k, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pm
	})
	return h, pm
}

func TestPartitionTwoTasksCoexist(t *testing.T) {
	h, pm := partHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000), fpgaOp("adder8", 1000)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{fpgaOp("parity16", 1000), fpgaOp("parity16", 1000)})
	h.K.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	// Each task loads once into its own partition; the second op is free.
	if h.E.M.Loads.Value() != 2 {
		t.Fatalf("loads = %d, want 2", h.E.M.Loads.Value())
	}
	if h.E.M.Blocks.Value() != 0 {
		t.Fatal("nothing should block")
	}
	// After both tasks exit, all partitions merge back into one free strip.
	parts := pm.Partitions()
	if len(parts) != 1 || !parts[0].Free {
		t.Fatalf("partitions after exit: %+v", parts)
	}
}

func TestPartitionBlocksWhenFull(t *testing.T) {
	// Fixed single partition: the second task suspends until the first
	// exits (the paper's waiting-state discussion).
	h, _ := partHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{12}})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100_000), hostos.Compute(sim.Millisecond)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{hostos.Compute(100 * sim.Microsecond), fpgaOp("mul4", 100)})
	h.K.Run()
	if b.BlockWait == 0 {
		t.Fatal("b never blocked")
	}
	if h.E.M.Blocks.Value() == 0 {
		t.Fatal("blocks not counted")
	}
	if b.Finished <= a.Finished {
		t.Fatal("b should finish after a releases the partition")
	}
}

func TestPartitionRotationAvoidsBlocking(t *testing.T) {
	h, _ := partHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{12}, Rotate: true})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 1000), hostos.Compute(5 * sim.Millisecond), fpgaOp("adder8", 1000)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{hostos.Compute(100 * sim.Microsecond), fpgaOp("mul4", 1000)})
	h.K.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if h.E.M.Blocks.Value() != 0 {
		t.Fatal("rotation should avoid blocking")
	}
	if h.E.M.Evictions.Value() == 0 {
		t.Fatal("rotation must evict")
	}
	// a's third op reloads after eviction.
	if h.E.M.Loads.Value() < 3 {
		t.Fatalf("loads = %d, want >= 3", h.E.M.Loads.Value())
	}
}

func TestPartitionVariableSplitsAndMerges(t *testing.T) {
	h, pm := partHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100)})
	h.K.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	// After the only task exits, everything merges back to one free strip.
	parts := pm.Partitions()
	if len(parts) != 1 || !parts[0].Free || parts[0].W != testGeometry().Cols {
		t.Fatalf("partitions after release: %+v", parts)
	}
}

func TestPartitionGCCompacts(t *testing.T) {
	// Create fragmentation: a, b, c allocate; b exits leaving a hole; d
	// needs more than the largest free strip but less than total free.
	geom := testGeometry()
	opt := testOptions()
	opt.Geometry = geom
	h, pm := partHarness(t, opt, hostos.Config{Policy: hostos.Priority, TimeSlice: 10 * sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions, GC: true})

	// Long-running a and c sandwich a short-lived b.
	a, _ := h.OS.Spawn("a", 1, []hostos.Op{fpgaOp("adder8", 10), hostos.Compute(20 * sim.Millisecond), fpgaOp("adder8", 10)})
	b, _ := h.OS.Spawn("b", 2, []hostos.Op{fpgaOp("parity16", 10)})
	c, _ := h.OS.Spawn("c", 3, []hostos.Op{fpgaOp("counter8", 10), hostos.Compute(20 * sim.Millisecond), seqOp("counter8", 10)})
	// d arrives later needing a wide strip.
	h.OS.SpawnAt(5*sim.Millisecond, "d", 4, []hostos.Op{fpgaOp("mul4", 10)})
	h.K.Run()
	for _, task := range []*hostos.Task{a, b, c} {
		if task.State() != hostos.TaskDone {
			t.Fatalf("%s not done", task.Name)
		}
	}
	if !h.OS.AllDone() {
		t.Fatal("d did not finish")
	}
	_ = pm
	if h.E.M.GCRuns.Value() == 0 {
		t.Skip("workload did not fragment enough to trigger GC on this geometry")
	}
	if h.E.M.Relocations.Value() == 0 {
		t.Fatal("GC ran without relocating")
	}
}

func TestPartitionPreemptionKeepsState(t *testing.T) {
	// Partitioned sequential circuits keep state in place: preemption has
	// no readback cost (the partition is not reassigned).
	h, _ := partHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{seqOp("counter8", 400_000)})
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(4 * sim.Millisecond)})
	h.K.Run()
	if hw.Preemptions == 0 {
		t.Fatal("expected preemptions")
	}
	if h.E.M.Readbacks.Value() != 0 {
		t.Fatalf("partitioned preemption should not read back (got %d)", h.E.M.Readbacks.Value())
	}
	want := sim.Time(400_000) * h.E.Lib["counter8"].ClockPeriod
	if hw.HWTime != want {
		t.Fatalf("HW time %v, want %v", hw.HWTime, want)
	}
}

func TestPartitionRegisterRejectsOversized(t *testing.T) {
	h, _ := partHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
		PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{2}})
	if _, err := h.OS.Spawn("big", 0, []hostos.Op{fpgaOp("mul4", 10)}); err == nil {
		t.Fatal("oversized circuit accepted into 2-column partition")
	}
}

func TestPartitionFixedInvalidWidths(t *testing.T) {
	e := newEngine(t, testOptions())
	if _, err := NewPartitionManager(sim.New(), e, PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{1000}}); err == nil {
		t.Fatal("oversized fixed widths accepted")
	}
	if _, err := NewPartitionManager(sim.New(), e, PartitionConfig{Mode: FixedPartitions}); err == nil {
		t.Fatal("empty fixed widths accepted")
	}
}

func TestPartitionBestFitPicksTightest(t *testing.T) {
	h, pm := partHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
		PartitionConfig{Mode: FixedPartitions, FixedWidths: []int{12, 3}, Fit: BestFit})
	// parity16 is 1 column; best fit puts it in the 3-wide partition.
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("parity16", 10), hostos.Compute(sim.Millisecond)})
	h.K.RunUntil(500 * sim.Microsecond)
	_ = a
	parts := pm.Partitions()
	if parts[1].Circuit != "parity16" {
		t.Fatalf("best fit chose wrong partition: %+v", parts)
	}
	h.K.Run()
}

// --- OverlayManager ---

func overlayHarness(t testing.TB, opt Options, osCfg hostos.Config, resident []string) (*harness, *OverlayManager) {
	var om *OverlayManager
	h := newHarness(t, opt, osCfg, func(k *sim.Kernel, e *Engine) hostos.FPGA {
		var err error
		om, _, err = NewOverlayManager(k, e, resident)
		if err != nil {
			t.Fatal(err)
		}
		return om
	})
	return h, om
}

func TestOverlayResidentHitFree(t *testing.T) {
	h, _ := overlayHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO}, []string{"adder8"})
	loadsAfterInit := h.E.M.Loads.Value()
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100), fpgaOp("adder8", 100)})
	h.K.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if h.E.M.Loads.Value() != loadsAfterInit {
		t.Fatal("resident circuit reloaded")
	}
}

func TestOverlayMissesSwap(t *testing.T) {
	h, om := overlayHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO}, []string{"adder8"})
	base := h.E.M.Loads.Value()
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{
		fpgaOp("parity16", 10), fpgaOp("mul4", 10), fpgaOp("parity16", 10),
	})
	h.K.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if got := h.E.M.Loads.Value() - base; got != 3 {
		t.Fatalf("overlay loads = %d, want 3 (every miss swaps)", got)
	}
	if om.OverlayCircuit() != "parity16" {
		t.Fatalf("overlay holds %q", om.OverlayCircuit())
	}
}

func TestOverlayRejectsOversizedNonResident(t *testing.T) {
	// Residents fill most of the device; a wide circuit cannot overlay.
	opt := testOptions()
	opt.Geometry.Cols = 8
	h, _ := overlayHarness(t, opt, hostos.Config{Policy: hostos.FIFO}, []string{"adder8", "counter8"})
	if _, err := h.OS.Spawn("big", 0, []hostos.Op{fpgaOp("mul4", 10)}); err == nil {
		t.Fatal("oversized overlay circuit accepted")
	}
}

func TestOverlaySequentialStatePerTask(t *testing.T) {
	h, _ := overlayHarness(t, testOptions(), hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond}, []string{"counter8"})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{seqOp("counter8", 200_000)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{seqOp("counter8", 200_000)})
	h.K.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	want := sim.Time(200_000) * h.E.Lib["counter8"].ClockPeriod
	if a.HWTime != want || b.HWTime != want {
		t.Fatalf("HW times %v %v, want %v", a.HWTime, b.HWTime, want)
	}
	if h.E.M.Readbacks.Value() == 0 {
		t.Fatal("per-task state on a shared resident requires readbacks")
	}
}

// --- PagedLoader ---

func pagedHarness(t testing.TB, opt Options, osCfg hostos.Config, cfg PagedConfig) (*harness, *PagedLoader) {
	var pl *PagedLoader
	h := newHarness(t, opt, osCfg, func(k *sim.Kernel, e *Engine) hostos.FPGA {
		var err error
		pl, err = NewPagedLoader(k, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	})
	return h, pl
}

func pagedOp(circuit string, evals int64, pages ...int) hostos.Op {
	return hostos.UseFPGA(hostos.FPGARequest{Circuit: circuit, Evaluations: evals, Pages: pages})
}

func TestPagedFirstTouchFaultsAll(t *testing.T) {
	h, pl := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
		PagedConfig{PageCells: 8, Frames: 16, Policy: LRU})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("adder8", 100)})
	h.K.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	pages := (h.E.Lib["adder8"].Cells() + 7) / 8
	if got := h.E.M.PageFaults.Value(); got != int64(pages) {
		t.Fatalf("faults = %d, want %d", got, pages)
	}
	// The exiting task was the circuit's last user, so its frames are
	// released rather than stranded (Remove's reclamation).
	if pl.ResidentPages() != 0 {
		t.Fatalf("resident = %d, want 0 after last user exited", pl.ResidentPages())
	}
	if h.E.M.Evictions.Value() != 0 {
		t.Fatalf("evictions = %d, want 0 (release at exit is voluntary)", h.E.M.Evictions.Value())
	}
}

func TestPagedHitIsFree(t *testing.T) {
	h, _ := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
		PagedConfig{PageCells: 8, Frames: 16, Policy: LRU})
	h.OS.Spawn("a", 0, []hostos.Op{pagedOp("adder8", 10, 0), pagedOp("adder8", 10, 0)})
	h.K.Run()
	if h.E.M.PageFaults.Value() != 1 {
		t.Fatalf("faults = %d, want 1 (second touch hits)", h.E.M.PageFaults.Value())
	}
}

func TestPagedEvictionUnderPressure(t *testing.T) {
	h, _ := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
		PagedConfig{PageCells: 4, Frames: 2, Policy: LRU})
	h.OS.Spawn("a", 0, []hostos.Op{
		pagedOp("adder8", 10, 0), pagedOp("adder8", 10, 1), pagedOp("adder8", 10, 2),
		pagedOp("adder8", 10, 0), // evicted by now under LRU with 2 frames
	})
	h.K.Run()
	if h.E.M.PageFaults.Value() != 4 {
		t.Fatalf("faults = %d, want 4", h.E.M.PageFaults.Value())
	}
	if h.E.M.Evictions.Value() == 0 {
		t.Fatal("no evictions under frame pressure")
	}
}

func TestPagedLRUBeatsRandomOnReuse(t *testing.T) {
	run := func(policy ReplacePolicy) int64 {
		h, _ := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
			PagedConfig{PageCells: 4, Frames: 3, Policy: policy, Seed: 7})
		var prog []hostos.Op
		// Hot pages 0,1 with an occasional cold page (2 or 3 alternating):
		// the hot set fits in the 3 frames, so LRU always sacrifices the
		// stale cold page, while Random sometimes evicts a hot one.
		for i := 0; i < 30; i++ {
			prog = append(prog, pagedOp("adder8", 1, 0), pagedOp("adder8", 1, 1))
			if i%5 == 0 {
				prog = append(prog, pagedOp("adder8", 1, 2+(i/5)%2))
			}
		}
		h.OS.Spawn("a", 0, prog)
		h.K.Run()
		return h.E.M.PageFaults.Value()
	}
	lru := run(LRU)
	random := run(Random)
	if lru > random {
		t.Fatalf("LRU faults %d > Random faults %d on a reuse-heavy string", lru, random)
	}
}

func TestPagedPoliciesAllTerminate(t *testing.T) {
	for _, policy := range []ReplacePolicy{LRU, PageFIFO, Clock, Random} {
		h, _ := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
			PagedConfig{PageCells: 4, Frames: 2, Policy: policy, Seed: 3})
		var prog []hostos.Op
		for i := 0; i < 10; i++ {
			prog = append(prog, pagedOp("adder8", 1, i%4))
		}
		a, _ := h.OS.Spawn("a", 0, prog)
		h.K.Run()
		if a.State() != hostos.TaskDone {
			t.Fatalf("%v: not done", policy)
		}
	}
}

func TestPagedInvalidConfigs(t *testing.T) {
	e := newEngine(t, testOptions())
	if _, err := NewPagedLoader(sim.New(), e, PagedConfig{PageCells: 0}); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestPagedMoreFramesFewerFaults(t *testing.T) {
	run := func(frames int) int64 {
		h, _ := pagedHarness(t, testOptions(), hostos.Config{Policy: hostos.FIFO},
			PagedConfig{PageCells: 4, Frames: frames, Policy: LRU})
		var prog []hostos.Op
		for i := 0; i < 20; i++ {
			prog = append(prog, pagedOp("adder8", 1, i%4))
		}
		h.OS.Spawn("a", 0, prog)
		h.K.Run()
		return h.E.M.PageFaults.Value()
	}
	few := run(2)
	many := run(8)
	if many >= few {
		t.Fatalf("more frames should fault less: %d vs %d", many, few)
	}
}

func TestStatePolicyStrings(t *testing.T) {
	if SaveRestore.String() != "save-restore" || Rollback.String() != "rollback" ||
		NonPreemptable.String() != "non-preemptable" {
		t.Fatal("state policy names")
	}
	if Apriori.String() != "a-priori" || DoneSignal.String() != "done-signal" {
		t.Fatal("completion names")
	}
	if LRU.String() != "lru" || Clock.String() != "clock" {
		t.Fatal("replace names")
	}
	if FixedPartitions.String() != "fixed" || VariablePartitions.String() != "variable" {
		t.Fatal("mode names")
	}
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" {
		t.Fatal("fit names")
	}
}
