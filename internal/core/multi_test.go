package core

import (
	"testing"

	"repro/internal/hostos"
	"repro/internal/sim"
)

func multiHarness(t testing.TB, boards int, opt Options, osCfg hostos.Config, cfg PartitionConfig) (*harness, *MultiManager) {
	t.Helper()
	k := sim.New()
	var engines []*Engine
	for i := 0; i < boards; i++ {
		engines = append(engines, newEngine(t, opt))
	}
	mm, err := NewMultiManager(k, engines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	os := hostos.New(k, osCfg, mm)
	mm.AttachOS(os)
	return &harness{K: k, E: engines[0], OS: os}, mm
}

func TestMultiSpreadsTasksAcrossBoards(t *testing.T) {
	opt := testOptions()
	opt.Geometry.Cols = 8 // each board is small
	h, mm := multiHarness(t, 2, opt, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions, Fit: BestFit})
	// Two tasks whose circuits each need several columns: with one 8-col
	// board one would block; with two boards both proceed.
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("mul4", 50_000), hostos.Compute(2 * sim.Millisecond)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{hostos.Compute(100 * sim.Microsecond), fpgaOp("mul4", 50_000)})
	h.K.Run()
	if a.State() != hostos.TaskDone || b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if mm.TotalBlocks() != 0 {
		t.Fatalf("blocks = %d with two boards", mm.TotalBlocks())
	}
	used := 0
	for _, board := range mm.Boards {
		if board.E.Dev.ConfigWrites() > 0 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("used %d boards, want 2", used)
	}
}

func TestMultiSingleBoardBlocks(t *testing.T) {
	opt := testOptions()
	opt.Geometry.Cols = 5 // one mul4 strip fills the board
	h, mm := multiHarness(t, 1, opt, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions, Fit: BestFit})
	h.OS.Spawn("a", 0, []hostos.Op{fpgaOp("mul4", 100_000), hostos.Compute(2 * sim.Millisecond)})
	b, _ := h.OS.Spawn("b", 0, []hostos.Op{hostos.Compute(100 * sim.Microsecond), fpgaOp("mul4", 100)})
	h.K.Run()
	if b.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	if mm.TotalBlocks() == 0 {
		t.Fatal("single small board should have blocked")
	}
}

func TestMultiTaskStaysOnItsBoard(t *testing.T) {
	opt := testOptions()
	h, mm := multiHarness(t, 3, opt, hostos.Config{Policy: hostos.FIFO},
		PartitionConfig{Mode: VariablePartitions})
	a, _ := h.OS.Spawn("a", 0, []hostos.Op{
		seqOp("counter8", 10_000), hostos.Compute(sim.Millisecond), seqOp("counter8", 10_000),
	})
	h.K.Run()
	if a.State() != hostos.TaskDone {
		t.Fatal("not done")
	}
	// One load total: the second op reuses the same board's partition.
	if mm.TotalLoads() != 1 {
		t.Fatalf("loads = %d, want 1 (sticky board)", mm.TotalLoads())
	}
}

func TestMultiRegisterRejectsUnfittable(t *testing.T) {
	opt := testOptions()
	opt.Geometry.Cols = 2
	h, _ := multiHarness(t, 2, opt, hostos.Config{Policy: hostos.FIFO},
		PartitionConfig{Mode: VariablePartitions})
	if _, err := h.OS.Spawn("big", 0, []hostos.Op{fpgaOp("mul4", 10)}); err == nil {
		t.Fatal("circuit too wide for every board accepted")
	}
}

func TestMultiNeedsBoards(t *testing.T) {
	if _, err := NewMultiManager(sim.New(), nil, PartitionConfig{Mode: VariablePartitions}); err == nil {
		t.Fatal("zero boards accepted")
	}
}

func TestMultiSequentialStatePreserved(t *testing.T) {
	opt := testOptions()
	h, _ := multiHarness(t, 2, opt, hostos.Config{Policy: hostos.RR, TimeSlice: sim.Millisecond},
		PartitionConfig{Mode: VariablePartitions})
	hw, _ := h.OS.Spawn("hw", 0, []hostos.Op{seqOp("counter8", 400_000)})
	h.OS.Spawn("cpu", 0, []hostos.Op{hostos.Compute(4 * sim.Millisecond)})
	h.K.Run()
	want := sim.Time(400_000) * h.E.Lib["counter8"].ClockPeriod
	if hw.HWTime != want {
		t.Fatalf("HW time %v, want %v", hw.HWTime, want)
	}
	if hw.Preemptions == 0 {
		t.Fatal("expected preemptions")
	}
}
