package core

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/lint"
	"repro/internal/sim"
)

// AmorphousConfig parameterizes the amorphous manager.
type AmorphousConfig struct {
	Fit FitPolicy
	// GC enables on-demand boundary sliding: when no single free span
	// fits but the total free space would, resident strips slide to
	// merge adjacent holes (only as many as the request needs).
	GC bool
	// Rotate allows evicting the least-recently-used idle assignment
	// when nothing else fits.
	Rotate bool
	// Cache keeps an exited task's configured strip resident as an
	// unowned cache: a later task requesting the same circuit adopts it
	// in place for zero configuration cost (sequential circuits pay a
	// state reset). Cached strips are the first thing reclaimed under
	// space or pin pressure.
	Cache bool
}

// DefaultAmorphousConfig returns the full amorphous policy: best-fit
// exact spans, boundary-sliding GC, LRU rotation and residency caching.
func DefaultAmorphousConfig() AmorphousConfig {
	return AmorphousConfig{Fit: BestFit, GC: true, Rotate: true, Cache: true}
}

// aspan is the amorphous manager's payload on an occupied span: nil
// owner marks a cached (unowned) resident strip.
type aspan struct {
	owner   *hostos.Task
	circuit string
	lastUse sim.Time
	pinned  bool // owner has an in-flight preempted op; never evict
}

// AmorphousManager implements hostos.FPGA with flexible-boundary
// regions in the style of Nguyen & Hoe's amorphous DPR, replacing §4's
// disjoint split/merge partitions: every circuit gets an exact-fit
// column span, boundaries slide instead of partitions splitting, and
// on-demand GC merges adjacent holes by sliding the strips between them
// rather than packing the whole device. Exited tasks' strips stay
// resident as an adoption cache (the virtual-memory page cache applied
// to configurations), so a recurring circuit re-enters at zero
// configuration cost — at the price of post-exit fragmentation, which
// the serve layer's background compactor grinds back down between jobs.
type AmorphousManager struct {
	E   *Engine
	K   *sim.Kernel
	Cfg AmorphousConfig
	OS  *hostos.OS // set via AttachOS before running

	rm      *RegionMap
	byTask  map[hostos.TaskID]*Span
	waiters []*hostos.Task
	saved   map[savedKey][]bool // displaced sequential state per task+circuit
}

var _ hostos.FPGA = (*AmorphousManager)(nil)

// NewAmorphousManager builds the manager over an empty sliding region
// map covering the whole device.
func NewAmorphousManager(k *sim.Kernel, e *Engine, cfg AmorphousConfig) *AmorphousManager {
	e.Ledger().Bind(k)
	return &AmorphousManager{
		E: e, K: k, Cfg: cfg,
		rm:     NewRegionMap(e.Opt.Geometry.Cols),
		byTask: map[hostos.TaskID]*Span{},
	}
}

// AttachOS wires the manager to the OS for unblocking suspended tasks.
func (am *AmorphousManager) AttachOS(os *hostos.OS) { am.OS = os }

// ResetForJob clears every region and per-task table, returning the
// manager to its post-construction state for warm-board reuse.
func (am *AmorphousManager) ResetForJob() {
	am.rm = NewRegionMap(am.E.Opt.Geometry.Cols)
	am.byTask = map[hostos.TaskID]*Span{}
	am.waiters = nil
	am.saved = nil
}

// Register implements hostos.FPGA.
func (am *AmorphousManager) Register(t *hostos.Task, circuit string) error {
	c, err := am.E.Circuit(circuit)
	if err != nil {
		return err
	}
	if c.BS.W > am.E.Opt.Geometry.Cols {
		return fmt.Errorf("core: circuit %s needs %d columns, device has %d", circuit, c.BS.W, am.E.Opt.Geometry.Cols)
	}
	return nil
}

func (am *AmorphousManager) circuitOf(t *hostos.Task) *compile.Circuit {
	c, err := am.E.Circuit(t.CurrentRequest().Circuit)
	if err != nil {
		panic(err)
	}
	return c
}

func (am *AmorphousManager) region(s *Span) fabric.Region {
	return fabric.Region{X: s.X, Y: 0, W: s.W, H: am.E.Opt.Geometry.Rows}
}

func (am *AmorphousManager) savedMap() map[savedKey][]bool {
	if am.saved == nil {
		am.saved = map[savedKey][]bool{}
	}
	return am.saved
}

// saveFor reads the sequential state of owner's circuit c out of span s
// into OS tables.
func (am *AmorphousManager) saveFor(s *Span, owner *hostos.Task, c *compile.Circuit) sim.Time {
	st, cost := am.E.Ledger().Readback(owner.Name, c, am.region(s))
	am.savedMap()[savedKey{owner.ID, c.Name}] = st
	return cost
}

// restoreFor writes task t's displaced state for c back into span s; if
// none is saved, a sequential circuit's flip-flops are reset instead
// (the strip may carry a previous user's state — adopted caches do).
func (am *AmorphousManager) restoreFor(s *Span, t *hostos.Task, c *compile.Circuit, resetStale bool) sim.Time {
	key := savedKey{t.ID, c.Name}
	led := am.E.Ledger()
	if st, ok := am.savedMap()[key]; ok {
		cost := led.Restore(t.Name, c, am.region(s), st)
		delete(am.saved, key)
		return cost
	}
	if resetStale && c.Sequential {
		return led.Reset(t.Name, c, am.region(s))
	}
	return 0
}

// dropSpan releases the resident strip in span s. displaced marks an
// involuntary eviction (rotation) as opposed to a voluntary release
// (task exit, cache reclaim).
func (am *AmorphousManager) dropSpan(s *Span, displaced bool) {
	as := s.Owner.(*aspan)
	if displaced {
		am.E.Ledger().Evict(s.X)
	} else {
		am.E.Ledger().Release(s.X)
	}
	if as.owner != nil {
		delete(am.byTask, as.owner.ID)
	}
	am.rm.Release(s)
}

// cacheFor returns the most-recently-used cached span holding circuit,
// or nil.
func (am *AmorphousManager) cacheFor(circuit string) *Span {
	var best *Span
	for _, s := range am.rm.Spans() {
		if s.Free() {
			continue
		}
		as := s.Owner.(*aspan)
		if as.owner != nil || as.circuit != circuit {
			continue
		}
		if best == nil || as.lastUse > best.Owner.(*aspan).lastUse {
			best = s
		}
	}
	return best
}

// dropOneCache reclaims the least-recently-used cached strip, returning
// false when no cache remains.
func (am *AmorphousManager) dropOneCache() bool {
	var victim *Span
	for _, s := range am.rm.Spans() {
		if s.Free() {
			continue
		}
		as := s.Owner.(*aspan)
		if as.owner != nil {
			continue
		}
		if victim == nil || as.lastUse < victim.Owner.(*aspan).lastUse {
			victim = s
		}
	}
	if victim == nil {
		return false
	}
	am.dropSpan(victim, false)
	return true
}

// dropCachesFor reclaims cached strips (LRU first) until a free span of
// width need exists or no cache remains.
func (am *AmorphousManager) dropCachesFor(need int) {
	for am.rm.FindFree(need, am.Cfg.Fit) == nil && am.dropOneCache() {
	}
}

// slideFor merges adjacent free holes by sliding the occupied strips
// between them leftward — the amorphous answer to §4's stop-the-world
// compaction: boundaries move just enough to open a hole of width need,
// and every move is charged through the ledger's Relocate. Each round
// erases one hole, so the loop terminates.
func (am *AmorphousManager) slideFor(need int) sim.Time {
	led := am.E.Ledger()
	var cost sim.Time
	led.NoteGC()
	for {
		gaps := am.rm.FreeList()
		for _, g := range gaps {
			if g.W >= need {
				return cost
			}
		}
		if len(gaps) < 2 {
			return cost
		}
		// Merge the pair of adjacent holes with the narrowest occupied
		// block between them: fewest columns relocated per hole erased.
		best, bestW := -1, 0
		for i := 0; i+1 < len(gaps); i++ {
			between := gaps[i+1].X - (gaps[i].X + gaps[i].W)
			if best < 0 || between < bestW {
				best, bestW = i, between
			}
		}
		g := gaps[best]
		for _, s := range am.rm.SpansIn(g.X+g.W, gaps[best+1].X) {
			cost += led.Relocate(s.X, s.X-g.W)
			am.rm.Move(s, s.X-g.W)
		}
	}
}

// evictLRU displaces the least-recently-used unpinned owned strip whose
// owner is not t. It returns the state-save cost, or ok=false if
// nothing is evictable.
func (am *AmorphousManager) evictLRU(t *hostos.Task) (cost sim.Time, ok bool) {
	var victim *Span
	for _, s := range am.rm.Spans() {
		if s.Free() {
			continue
		}
		as := s.Owner.(*aspan)
		if as.owner == nil || as.pinned || as.owner == t {
			continue
		}
		if victim == nil || as.lastUse < victim.Owner.(*aspan).lastUse {
			victim = s
		}
	}
	if victim == nil {
		return 0, false
	}
	as := victim.Owner.(*aspan)
	c, err := am.E.Circuit(as.circuit)
	if err != nil {
		panic(err)
	}
	if c.Sequential {
		cost += am.saveFor(victim, as.owner, c)
	}
	am.dropSpan(victim, true)
	return cost, true
}

// releaseOwn gives up task t's span when it switches circuits: the
// outgoing strip is demoted to a cached resident (or dropped when
// caching is off).
func (am *AmorphousManager) releaseOwn(t *hostos.Task, s *Span) {
	as := s.Owner.(*aspan)
	if am.Cfg.Cache {
		delete(am.byTask, t.ID)
		as.owner = nil
		as.pinned = false
		as.lastUse = am.K.Now()
		return
	}
	am.dropSpan(s, false)
}

// Acquire implements hostos.FPGA.
func (am *AmorphousManager) Acquire(t *hostos.Task) (sim.Time, bool) {
	c := am.circuitOf(t)
	need := c.BS.W
	now := am.K.Now()
	var cost sim.Time

	// Already holding a span?
	if sp := am.byTask[t.ID]; sp != nil {
		as := sp.Owner.(*aspan)
		if as.circuit == c.Name {
			as.lastUse = now
			return 0, true // loaded and state in place: zero-cost reuse
		}
		// Switching algorithms: save the outgoing sequential state, then
		// let the old strip go (into the cache — the task may switch
		// back). The new circuit allocates fresh below; exact-fit spans
		// never reuse a differently-sized hole in place.
		if old, err := am.E.Circuit(as.circuit); err == nil && old.Sequential {
			cost += am.saveFor(sp, t, old)
		}
		am.releaseOwn(t, sp)
	}

	// A cached strip with this circuit is adopted in place: no download,
	// no pin allocation — the whole point of keeping it resident.
	if sp := am.cacheFor(c.Name); sp != nil {
		as := sp.Owner.(*aspan)
		as.owner = t
		as.lastUse = now
		am.byTask[t.ID] = sp
		am.E.Ledger().Adopt(sp.X, t.Name)
		cost += am.restoreFor(sp, t, c, true)
		return cost, true
	}

	s := am.rm.FindFree(need, am.Cfg.Fit)
	if s == nil && am.Cfg.Cache {
		am.dropCachesFor(need)
		s = am.rm.FindFree(need, am.Cfg.Fit)
	}
	if s == nil && am.Cfg.GC {
		if f := am.rm.Frag(); f.FreeCols >= need {
			cost += am.slideFor(need)
			s = am.rm.FindFree(need, am.Cfg.Fit)
		}
	}
	if s == nil && am.Cfg.Rotate {
		for {
			evictCost, ok := am.evictLRU(t)
			if !ok {
				break
			}
			cost += evictCost
			if s = am.rm.FindFree(need, am.Cfg.Fit); s != nil {
				break
			}
			if am.Cfg.GC {
				if f := am.rm.Frag(); f.FreeCols >= need {
					cost += am.slideFor(need)
					s = am.rm.FindFree(need, am.Cfg.Fit)
					break
				}
			}
		}
	}
	// Pins are a shared physical resource: cached strips hold theirs, and
	// caching must never starve a fresh download below a full (mux-free)
	// pin binding — so caches are reclaimed whenever free pins fall short
	// of the circuit's full port count, then rotation handles genuine
	// exhaustion like area shortage.
	if s != nil {
		wantPins := c.BS.NumIn + c.BS.NumOut
		changed := false
		for am.E.FreePinCount() < wantPins && am.dropOneCache() {
			changed = true
		}
		if am.E.FreePinCount() == 0 && am.Cfg.Rotate {
			if evictCost, ok := am.evictLRU(t); ok {
				cost += evictCost
				changed = true
			}
		}
		if changed {
			s = am.rm.FindFree(need, am.Cfg.Fit) // reclaim reshaped the free list
		}
	}
	if s == nil || am.E.FreePinCount() == 0 {
		am.E.Ledger().NoteBlock(t.Name)
		am.waiters = append(am.waiters, t)
		return 0, false
	}
	as := &aspan{owner: t, circuit: c.Name, lastUse: now}
	sp := am.rm.Alloc(s, need, as)
	am.byTask[t.ID] = sp
	_, loadCost := am.E.Ledger().Load(t.Name, c, sp.X, false)
	cost += loadCost
	cost += am.restoreFor(sp, t, c, false) // fresh strip: FFs at init values
	return cost, true
}

// ExecTime implements hostos.FPGA.
func (am *AmorphousManager) ExecTime(t *hostos.Task) sim.Time {
	c := am.circuitOf(t)
	req := t.CurrentRequest()
	mux := 1
	if sp := am.byTask[t.ID]; sp != nil {
		if r := am.E.Ledger().ResidentAt(sp.X); r != nil {
			mux = r.Mux
		}
	}
	pure := sim.Time(req.Evaluations+req.Cycles) * c.ClockPeriod
	return am.E.ExecQuantum(pure, mux)
}

// Preemptable implements hostos.FPGA: a resident circuit keeps its span
// across preemption (it is pinned), so preemption costs nothing unless
// policy forbids it.
func (am *AmorphousManager) Preemptable(t *hostos.Task) bool {
	if !am.circuitOf(t).Sequential {
		return true
	}
	return am.E.Opt.State != NonPreemptable
}

// Preempt implements hostos.FPGA: the state stays in the span, so only
// the in-flight vector/cycle granularity is lost.
func (am *AmorphousManager) Preempt(t *hostos.Task, done, total sim.Time) (sim.Time, sim.Time) {
	if sp := am.byTask[t.ID]; sp != nil {
		as := sp.Owner.(*aspan)
		as.pinned = true
		as.lastUse = am.K.Now()
	}
	req := t.CurrentRequest()
	n := req.Evaluations + req.Cycles
	if n <= 0 {
		return 0, done
	}
	per := total / sim.Time(n)
	if per <= 0 {
		return 0, done
	}
	return 0, (done / per) * per
}

// Resume implements hostos.FPGA: the pinned span is exactly as the task
// left it.
func (am *AmorphousManager) Resume(t *hostos.Task) sim.Time {
	if sp := am.byTask[t.ID]; sp != nil {
		sp.Owner.(*aspan).lastUse = am.K.Now()
	}
	return 0
}

// Complete implements hostos.FPGA.
func (am *AmorphousManager) Complete(t *hostos.Task) {
	if sp := am.byTask[t.ID]; sp != nil {
		as := sp.Owner.(*aspan)
		as.pinned = false
		as.lastUse = am.K.Now()
	}
}

// Remove implements hostos.FPGA: the exiting task's strip is demoted to
// a cached resident (or released outright when caching is off), its
// saved state is purged, and suspended tasks get a chance to allocate.
func (am *AmorphousManager) Remove(t *hostos.Task) {
	if sp := am.byTask[t.ID]; sp != nil {
		am.releaseOwn(t, sp)
	}
	for k := range am.saved {
		if k.task == t.ID {
			delete(am.saved, k)
		}
	}
	am.wakeWaiters()
}

// wakeWaiters unblocks every suspended task; each retries its Acquire
// in scheduling order and re-suspends if space is still short.
func (am *AmorphousManager) wakeWaiters() {
	if len(am.waiters) == 0 {
		return
	}
	ws := am.waiters
	am.waiters = nil
	for _, w := range ws {
		am.OS.Unblock(w)
	}
}

// Frag returns the manager's live fragmentation statistics.
func (am *AmorphousManager) Frag() FragStats { return am.rm.Frag() }

// Regions returns a snapshot of the region map, sorted by origin, for
// inspection, tests and the static verifier. Cached strips report their
// circuit with an empty owner.
func (am *AmorphousManager) Regions() []lint.RegionView {
	var out []lint.RegionView
	for _, s := range am.rm.Spans() {
		v := lint.RegionView{X: s.X, W: s.W, Free: s.Free()}
		if !s.Free() {
			as := s.Owner.(*aspan)
			v.Circuit = as.circuit
			if as.owner != nil {
				v.Owner = as.owner.Name
			}
		}
		out = append(out, v)
	}
	return out
}

// LintTarget exports the manager's current state as a static-verifier
// target for the region-state pass (exact tiling, no shared columns,
// coalesced free spans).
func (am *AmorphousManager) LintTarget() *lint.Target {
	return &lint.Target{
		Name:    "amorphous",
		Regions: am.Regions(),
		Cols:    am.E.Opt.Geometry.Cols,
		Device:  am.E.Dev,
	}
}

// LintTargets implements LintTargeter.
func (am *AmorphousManager) LintTargets() []*lint.Target {
	return []*lint.Target{am.LintTarget()}
}
