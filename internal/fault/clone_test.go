package fault

import (
	"reflect"
	"testing"
)

// Clone must position a fresh injector exactly where the original is:
// identical counts at clone time and byte-identical future draws at
// every point, regardless of how the original's attempts were
// interleaved across points.
func TestInjectorClone(t *testing.T) {
	plan, err := ParseSpec("seed=7,retries=2,backoff=20us,config-error=0.2,readback-flip=0.15,restore-mismatch=0.1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	// Advance the points unevenly, the way construction does (config
	// writes dominate, readback/restore trail).
	for i := 0; i < 11; i++ {
		in.Next(PointConfig)
	}
	for i := 0; i < 4; i++ {
		in.Next(PointReadback)
	}
	in.Next(PointRestore)

	clone := in.Clone()
	if got, want := clone.Counts(), in.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("clone counts %v, original %v", got, want)
	}

	// Future draws must match one-for-one at every point.
	for p := Point(0); p < numPoints; p++ {
		for i := 0; i < 32; i++ {
			wantKind, wantAux := in.Next(p)
			gotKind, gotAux := clone.Next(p)
			if gotKind != wantKind || gotAux != wantAux {
				t.Fatalf("point %v draw %d: clone (%v, %d) diverged from original (%v, %d)",
					p, i, gotKind, gotAux, wantKind, wantAux)
			}
		}
	}
}

// A clone is independent: consuming draws on one must not move the
// other.
func TestInjectorCloneIndependent(t *testing.T) {
	plan, err := ParseSpec("seed=3,config-error=0.5")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	in.Next(PointConfig)
	a := in.Clone()
	b := in.Clone()
	// Burn draws on a only; b must still replay in's future.
	for i := 0; i < 10; i++ {
		a.Next(PointConfig)
	}
	for i := 0; i < 10; i++ {
		wantKind, wantAux := in.Next(PointConfig)
		gotKind, gotAux := b.Next(PointConfig)
		if gotKind != wantKind || gotAux != wantAux {
			t.Fatalf("draw %d: sibling clone diverged after the other clone advanced", i)
		}
	}
}
