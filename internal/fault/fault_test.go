package fault

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// drive runs n decisions at each point and renders the outcomes, so two
// injectors can be compared for byte-identical behaviour.
func drive(in *Injector, n int) string {
	var out string
	for p := Point(0); p < numPoints; p++ {
		for i := 0; i < n; i++ {
			k, aux := in.Next(p)
			out += fmt.Sprintf("%v/%d:%v/%d\n", p, i, k, aux%8)
		}
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	plan, err := ParseSpec("seed=42,config-error=0.3,config-timeout=0.1,readback-flip=0.2,restore-mismatch=0.2,pin-glitch=0.05")
	if err != nil {
		t.Fatal(err)
	}
	a := drive(NewInjector(plan), 200)
	b := drive(NewInjector(plan), 200)
	if a != b {
		t.Fatal("same plan, different outcomes")
	}
	if drive(NewInjector(plan.Derive(1)), 200) == a {
		t.Fatal("derived plan reproduced the base stream")
	}
}

// TestInjectorPointIsolation pins the stream-per-point contract: extra
// draws at one point must not change another point's outcomes.
func TestInjectorPointIsolation(t *testing.T) {
	plan, _ := ParseSpec("seed=7,config-error=0.5,readback-flip=0.5")
	a := NewInjector(plan)
	b := NewInjector(plan)
	for i := 0; i < 50; i++ {
		a.Next(PointConfig) // perturb only the config stream
	}
	for i := 0; i < 50; i++ {
		ka, _ := a.Next(PointReadback)
		kb, _ := b.Next(PointReadback)
		if ka != kb {
			t.Fatalf("readback outcome %d diverged after config-only draws: %v vs %v", i, ka, kb)
		}
	}
}

func TestScriptedSchedule(t *testing.T) {
	plan, err := ParseSpec("seed=1,config-error@2,config-timeout@4,readback-flip@1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	var got []Kind
	for i := 0; i < 5; i++ {
		k, _ := in.Next(PointConfig)
		got = append(got, k)
	}
	want := []Kind{None, ConfigError, None, ConfigTimeout, None}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("config attempt %d: got %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if k, _ := in.Next(PointReadback); k != ReadbackFlip {
		t.Fatalf("readback attempt 1: got %v, want readback-flip", k)
	}
	if k, _ := in.Next(PointReadback); k != None {
		t.Fatalf("readback attempt 2: got %v, want none", k)
	}
	if c := in.Counts(); c[ConfigError] != 1 || c[ConfigTimeout] != 1 || c[ReadbackFlip] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if in.Summary() == "" {
		t.Fatal("summary empty after injections")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"seed=42,retries=2,backoff=50µs,config-error=0.1,readback-flip@3",
		"seed=1",
		"seed=9,retries=0,config-timeout=0.25,pin-glitch@1,pin-glitch@7",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		q, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", p.String(), s, err)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip %q: %q != %q", s, p.String(), q.String())
		}
		if drive(NewInjector(p), 50) != drive(NewInjector(q), 50) {
			t.Fatalf("round trip of %q changed behaviour", s)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"seed=x",
		"bogus=1",
		"config-error=1.5",
		"config-error@0",
		"retries=99",
		"backoff=-1s",
		"config-error=0.6,config-timeout=0.6", // config point sums > 1
		"no-equals-sign",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestRetryPolicy(t *testing.T) {
	var p Plan
	if got := p.MaxAttempts(); got != 1+DefaultRetries {
		t.Fatalf("default MaxAttempts = %d", got)
	}
	if got := p.RetryBackoff(1); got != DefaultBackoff {
		t.Fatalf("default backoff = %v", got)
	}
	p.Retries, p.Backoff = -1, 10*sim.Microsecond
	if got := p.MaxAttempts(); got != 1 {
		t.Fatalf("retries=-1 MaxAttempts = %d", got)
	}
	p.Retries = 2
	if got := p.RetryBackoff(3); got != 40*sim.Microsecond {
		t.Fatalf("backoff(3) = %v, want doubling", got)
	}
}

func TestAsEscalation(t *testing.T) {
	esc := &EscalationError{Kind: ConfigError, Op: "load", Circuit: "adder8", Attempts: 3}
	if _, ok := AsEscalation(esc); !ok {
		t.Fatal("raw value not recognized")
	}
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", esc))
	got, ok := AsEscalation(wrapped)
	if !ok || got != esc {
		t.Fatal("wrapped error not recognized")
	}
	if _, ok := AsEscalation(errors.New("plain")); ok {
		t.Fatal("plain error recognized")
	}
	if _, ok := AsEscalation("panic string"); ok {
		t.Fatal("string recognized")
	}
	//vfpgavet:ignore typederr -- this test asserts the rendered text itself
	if esc.Error() == "" || esc.Error()[:6] != "fault:" {
		t.Fatalf("error text %q lacks the typed prefix", esc.Error())
	}
}
