// Package fault is a seeded, deterministic fault injector for the
// residency ledger. The paper's premise — configuration downloads are
// slow and fragile, readback/restore can fail mid-flight — only turns
// into a testable claim when failures can be provoked on demand and the
// recovery that follows is byte-reproducible. A Plan (seed plus per-kind
// probabilities and/or an explicit scripted schedule) fully determines
// which ledger operations fail and how; an Injector executes the plan
// one attempt at a time, consuming a fixed number of pseudo-random draws
// per decision so interleaving never perturbs the outcome of unrelated
// injection points.
//
// The package is a leaf: it knows nothing about engines, devices or
// managers. The ledger asks "does this attempt fail, and how?" and
// applies the consequences (wasted time, corrupted bits, retry backoff,
// escalation) itself.
package fault

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind enumerates the injectable failure modes, each tied to one of the
// paper's device mechanics (see DESIGN §3.4).
type Kind int

// Fault kinds.
const (
	// None means the attempt succeeds.
	None Kind = iota
	// ConfigError is a configuration download that fails its CRC check
	// partway through the frame stream.
	ConfigError
	// ConfigTimeout is a configuration port that never raises DONE; the
	// host waits out the full window before giving up.
	ConfigTimeout
	// ReadbackFlip corrupts one bit of the readback stream; the shadow
	// CRC detects it and the saved state is discarded.
	ReadbackFlip
	// RestoreMismatch is a state write-back whose verifying readback
	// disagrees with what was written.
	RestoreMismatch
	// PinGlitch is a pin-multiplexing misconfiguration detected by the
	// post-download boundary scan.
	PinGlitch
	numKinds
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ConfigError:
		return "config-error"
	case ConfigTimeout:
		return "config-timeout"
	case ReadbackFlip:
		return "readback-flip"
	case RestoreMismatch:
		return "restore-mismatch"
	case PinGlitch:
		return "pin-glitch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a spec-file kind name.
func ParseKind(s string) (Kind, bool) {
	for k := ConfigError; k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return None, false
}

// Kinds returns the injectable kinds in fixed order.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := ConfigError; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Point identifies a ledger injection site. Each site owns an
// independent pseudo-random stream and occurrence counter, so faults at
// one site never change what happens at another.
type Point int

// Injection points.
const (
	// PointConfig covers every configuration-port write: strip loads,
	// page loads, and relocation re-writes.
	PointConfig Point = iota
	// PointReadback covers flip-flop state readback.
	PointReadback
	// PointRestore covers flip-flop state write-back.
	PointRestore
	numPoints
)

func (p Point) String() string {
	switch p {
	case PointConfig:
		return "config"
	case PointReadback:
		return "readback"
	case PointRestore:
		return "restore"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Point returns the injection site a kind strikes.
func (k Kind) Point() Point {
	switch k {
	case ReadbackFlip:
		return PointReadback
	case RestoreMismatch:
		return PointRestore
	default:
		return PointConfig
	}
}

// pointKinds lists, per point, the kinds drawn there, in the fixed order
// the cumulative-probability walk uses.
var pointKinds = [numPoints][]Kind{
	PointConfig:   {ConfigError, ConfigTimeout, PinGlitch},
	PointReadback: {ReadbackFlip},
	PointRestore:  {RestoreMismatch},
}

// Retry-policy defaults, used when a Plan leaves them zero.
const (
	DefaultRetries = 3
	DefaultBackoff = 100 * sim.Microsecond
	// MaxRetries bounds the policy so backoff shifts cannot overflow.
	MaxRetries = 16
)

// Plan is the reproducible description of a fault campaign: a seed, a
// probability per kind, an optional scripted schedule (fire kind k on
// its site's n-th attempt), and the ledger's retry policy. Two equal
// plans driving equal op sequences inject exactly the same faults.
type Plan struct {
	// Seed roots every injection stream.
	Seed uint64
	// Prob is the per-attempt probability of each kind (0 when absent).
	Prob map[Kind]float64
	// Script fires kind k deterministically on the listed 1-based
	// attempt numbers of its injection point, regardless of Prob.
	Script map[Kind][]int
	// Retries bounds recovery attempts per operation (0 = DefaultRetries;
	// negative = no retries, first fault escalates).
	Retries int
	// Backoff is the simulated-time penalty before retry n, charged as
	// Backoff << (n-1) (0 = DefaultBackoff).
	Backoff sim.Time
}

// MaxAttempts returns the total attempts allowed per operation: the
// first try plus the plan's bounded retries.
func (p *Plan) MaxAttempts() int {
	r := p.Retries
	if r == 0 {
		r = DefaultRetries
	}
	if r < 0 {
		r = 0
	}
	if r > MaxRetries {
		r = MaxRetries
	}
	return 1 + r
}

// RetryBackoff returns the simulated backoff charged before retry
// number n (1-based): base << (n-1).
func (p *Plan) RetryBackoff(n int) sim.Time {
	b := p.Backoff
	if b <= 0 {
		b = DefaultBackoff
	}
	if n < 1 {
		n = 1
	}
	return b << uint(n-1)
}

// Derive returns the plan re-seeded for a sub-stream (a board of a
// pool, an engine of a multi-board manager): probabilities, script and
// retry policy are shared, only the random streams diverge. Derivation
// composes — Derive(a).Derive(b) and Derive(b).Derive(a) differ — and
// mixes the salt through splitmix64 finalization so neighbouring salts
// give unrelated streams.
func (p Plan) Derive(salt uint64) Plan {
	q := p
	z := p.Seed + 0x9e3779b97f4a7c15*(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	q.Seed = z ^ (z >> 31)
	return q
}

// Injector executes a Plan. It is single-goroutine, like the ledger
// that owns it.
type Injector struct {
	plan     Plan
	streams  [numPoints]*rng.Source
	attempts [numPoints]int // attempts decided so far, per point
	counts   [numKinds]int64
}

// NewInjector returns an injector at the start of the plan's streams.
func NewInjector(plan Plan) *Injector {
	in := &Injector{plan: plan}
	root := rng.New(plan.Seed)
	for p := Point(0); p < numPoints; p++ {
		in.streams[p] = root.Split()
	}
	return in
}

// Plan returns the plan the injector executes.
func (in *Injector) Plan() Plan { return in.plan }

// Next decides the fate of the next attempt at point p. It returns the
// injected kind (None for success) and an auxiliary random payload the
// caller may use to pick which bit to corrupt. Every call consumes
// exactly two draws from p's stream, whether or not a fault fires, so
// outcomes depend only on the plan and the per-point attempt ordinal.
func (in *Injector) Next(p Point) (Kind, uint64) {
	in.attempts[p]++
	occ := in.attempts[p]
	u := in.streams[p].Float64()
	aux := in.streams[p].Uint64()
	kind := None
	for _, k := range pointKinds[p] {
		for _, n := range in.plan.Script[k] {
			if n == occ {
				kind = k
			}
		}
	}
	if kind == None {
		acc := 0.0
		for _, k := range pointKinds[p] {
			acc += in.plan.Prob[k]
			if u < acc {
				kind = k
				break
			}
		}
	}
	if kind != None {
		in.counts[kind]++
	}
	return kind, aux
}

// Clone returns an independent injector positioned exactly where in is:
// same plan, same per-point attempt ordinals, same injected-fault counts,
// and — because Next consumes a fixed number of draws per attempt — the
// same stream positions. It works by replaying the recorded attempts
// against a fresh injector, so the clone's future draws are byte-for-byte
// the draws in would have produced. Warm-board serving uses this to
// capture an injector's post-construction position once and restore it
// per job without re-running construction.
func (in *Injector) Clone() *Injector {
	out := NewInjector(in.plan)
	for p := Point(0); p < numPoints; p++ {
		for i := 0; i < in.attempts[p]; i++ {
			out.Next(p)
		}
	}
	return out
}

// Counts returns how many faults of each kind have been injected.
func (in *Injector) Counts() map[Kind]int64 {
	out := map[Kind]int64{}
	for k := ConfigError; k < numKinds; k++ {
		if in.counts[k] > 0 {
			out[k] = in.counts[k]
		}
	}
	return out
}

// Summary renders the injected-fault counts compactly ("" when none).
func (in *Injector) Summary() string {
	var b []byte
	for k := ConfigError; k < numKinds; k++ {
		if in.counts[k] == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", k, in.counts[k])...)
	}
	return string(b)
}

// EscalationError reports an operation whose bounded retries were all
// consumed by injected faults. It travels as an error (TryLoad) or as a
// panic value (operations whose signatures cannot fail); AsEscalation
// recovers it from either.
type EscalationError struct {
	Kind     Kind   // the kind that fired on the final attempt
	Op       string // ledger operation ("load", "readback", "restore", "page")
	Circuit  string
	Attempts int
}

func (e *EscalationError) Error() string {
	return fmt.Sprintf("fault: %s on %s %s: retries exhausted after %d attempts", e.Kind, e.Op, e.Circuit, e.Attempts)
}

// AsEscalation extracts an EscalationError from an error chain or a
// recovered panic value.
func AsEscalation(v any) (*EscalationError, bool) {
	switch x := v.(type) {
	case *EscalationError:
		return x, true
	case error:
		var esc *EscalationError
		if errors.As(x, &esc) {
			return esc, true
		}
	}
	return nil, false
}
