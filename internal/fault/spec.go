package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// ParseSpec parses the -faults command-line grammar: comma-separated
// entries of
//
//	seed=N            stream seed (default 1)
//	retries=N         bounded retries per op (default 3; 'retries=-1' disables)
//	backoff=DUR       base simulated backoff, doubling per retry (default 100us)
//	<kind>=P          per-attempt probability of kind, P in [0,1]
//	<kind>@N          scripted: fire kind on its site's N-th attempt (repeatable)
//
// with kinds config-error, config-timeout, readback-flip,
// restore-mismatch, pin-glitch. Example:
//
//	seed=42,retries=2,backoff=50us,config-error=0.1,readback-flip@3
func ParseSpec(s string) (Plan, error) {
	p := Plan{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("fault: empty spec")
	}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		if i := strings.IndexByte(ent, '@'); i >= 0 {
			kind, ok := ParseKind(ent[:i])
			if !ok {
				return p, fmt.Errorf("fault: unknown kind %q in %q", ent[:i], ent)
			}
			n, err := strconv.Atoi(ent[i+1:])
			if err != nil || n < 1 {
				return p, fmt.Errorf("fault: bad attempt number in %q (want kind@N, N >= 1)", ent)
			}
			if p.Script == nil {
				p.Script = map[Kind][]int{}
			}
			p.Script[kind] = append(p.Script[kind], n)
			continue
		}
		i := strings.IndexByte(ent, '=')
		if i < 0 {
			return p, fmt.Errorf("fault: bad entry %q (want key=value or kind@N)", ent)
		}
		key, val := ent[:i], ent[i+1:]
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = n
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n > MaxRetries {
				return p, fmt.Errorf("fault: bad retries %q (want -1..%d)", val, MaxRetries)
			}
			if n <= 0 {
				n = -1 // distinguish "no retries" from "default"
			}
			p.Retries = n
		case "backoff":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return p, fmt.Errorf("fault: bad backoff %q", val)
			}
			p.Backoff = sim.Time(d.Nanoseconds())
		default:
			kind, ok := ParseKind(key)
			if !ok {
				return p, fmt.Errorf("fault: unknown key %q in %q", key, ent)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("fault: bad probability %q for %s (want [0,1])", val, kind)
			}
			if p.Prob == nil {
				p.Prob = map[Kind]float64{}
			}
			p.Prob[kind] = f
		}
	}
	for pt, kinds := range pointKinds {
		sum := 0.0
		for _, k := range kinds {
			sum += p.Prob[k]
		}
		if sum > 1 {
			return p, fmt.Errorf("fault: probabilities at the %v point sum to %.3f > 1", Point(pt), sum)
		}
	}
	for _, ns := range p.Script {
		sort.Ints(ns)
	}
	return p, nil
}

// String renders the plan in the canonical spec grammar, parseable by
// ParseSpec.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	if p.Retries != 0 {
		r := p.Retries
		if r < 0 {
			r = 0
		}
		fmt.Fprintf(&b, ",retries=%d", r)
	}
	if p.Backoff > 0 {
		fmt.Fprintf(&b, ",backoff=%s", time.Duration(p.Backoff))
	}
	for _, k := range Kinds() {
		if f, ok := p.Prob[k]; ok && f > 0 {
			fmt.Fprintf(&b, ",%s=%s", k, strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	for _, k := range Kinds() {
		ns := append([]int(nil), p.Script[k]...)
		sort.Ints(ns)
		for _, n := range ns {
			fmt.Fprintf(&b, ",%s@%d", k, n)
		}
	}
	return b.String()
}
