package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// The netlist-domain passes deliberately avoid Netlist.TopoOrder: lint
// targets may be hand-assembled (or deserialized) netlists that never
// went through Builder.Build, so every traversal here recomputes what it
// needs and tolerates structurally damaged graphs.

func nodePos(t *Target, nl *netlist.Netlist, id netlist.NodeID) string {
	nd := &nl.Nodes[id]
	if nd.Name != "" {
		return fmt.Sprintf("%s: node %d (%v %q)", nl.Name, id, nd.Kind, nd.Name)
	}
	return fmt.Sprintf("%s: node %d (%v)", nl.Name, id, nd.Kind)
}

// faninOK reports whether every fanin index of every node is a valid
// node id; traversal passes bail out on damaged graphs and let
// net-drive report the damage.
func faninOK(nl *netlist.Netlist) bool {
	for i := range nl.Nodes {
		for _, f := range nl.Nodes[i].Fanin {
			if f < 0 || int(f) >= len(nl.Nodes) {
				return false
			}
		}
	}
	return true
}

// passCombLoop detects combinational cycles: Kahn's algorithm over the
// combinational edges (a DFF's D input is a sequential edge and is
// excluded). Any node left unordered sits on a cycle.
func passCombLoop(t *Target, r *Reporter) {
	for _, nl := range t.netlists() {
		combLoopOne(t, nl, r)
	}
}

func combLoopOne(t *Target, nl *netlist.Netlist, r *Reporter) {
	if !faninOK(nl) {
		return
	}
	n := len(nl.Nodes)
	indeg := make([]int, n)
	succ := make([][]netlist.NodeID, n)
	for i := range nl.Nodes {
		nd := &nl.Nodes[i]
		if nd.Kind == netlist.KindDFF {
			continue
		}
		for _, f := range nd.Fanin {
			indeg[i]++
			succ[f] = append(succ[f], netlist.NodeID(i))
		}
	}
	queue := make([]netlist.NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, netlist.NodeID(i))
		}
	}
	ordered := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		ordered++
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if ordered == n {
		return
	}
	// Walk one concrete cycle for the message: follow combinational
	// fanins within the leftover set until a node repeats.
	inCycle := func(id netlist.NodeID) bool { return indeg[id] > 0 }
	var start netlist.NodeID = -1
	for i := 0; i < n; i++ {
		if inCycle(netlist.NodeID(i)) {
			start = netlist.NodeID(i)
			break
		}
	}
	seen := map[netlist.NodeID]int{}
	var path []netlist.NodeID
	cur := start
	for {
		if at, ok := seen[cur]; ok {
			path = path[at:]
			break
		}
		seen[cur] = len(path)
		path = append(path, cur)
		next := netlist.NodeID(-1)
		for _, f := range nl.Nodes[cur].Fanin {
			if inCycle(f) {
				next = f
				break
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	names := make([]string, 0, len(path))
	for _, id := range path {
		names = append(names, fmt.Sprintf("%d(%v)", id, nl.Nodes[id].Kind))
	}
	r.Errorf(nodePos(t, nl, start),
		"combinational loop through %d node(s): %s", n-ordered, strings.Join(names, " <- "))
}

// passNetDrive checks drive structure: damaged graphs (bad ids, arity
// mismatches, reads from output ports), multiply-driven nets (duplicate
// port names — in this single-driver graph representation, a name
// collision is how a net acquires two drivers), dangling gate outputs
// and unused input ports.
func passNetDrive(t *Target, r *Reporter) {
	for _, nl := range t.netlists() {
		netDriveOne(t, nl, r)
	}
}

func netDriveOne(t *Target, nl *netlist.Netlist, r *Reporter) {
	damaged := false
	for i := range nl.Nodes {
		nd := &nl.Nodes[i]
		if nd.ID != netlist.NodeID(i) {
			r.Errorf(nodePos(t, nl, netlist.NodeID(i)), "node id %d does not match its slot %d", nd.ID, i)
		}
		if want := nd.Kind.Arity(); want >= 0 && len(nd.Fanin) != want {
			r.Errorf(nodePos(t, nl, netlist.NodeID(i)), "%v node has %d fanin(s), want %d", nd.Kind, len(nd.Fanin), want)
		}
		for _, f := range nd.Fanin {
			if f < 0 || int(f) >= len(nl.Nodes) {
				r.Errorf(nodePos(t, nl, netlist.NodeID(i)), "fanin %d is outside the node table (%d nodes)", f, len(nl.Nodes))
				damaged = true
				continue
			}
			if nl.Nodes[f].Kind == netlist.KindOutput {
				r.Errorf(nodePos(t, nl, netlist.NodeID(i)), "reads from output port node %d", f)
			}
		}
	}
	// Multiply-driven: two ports with the same name alias one net under
	// two drivers (Concat and Segment both rely on names being unique).
	seen := map[string]netlist.NodeID{}
	for _, lists := range [][]netlist.NodeID{nl.Inputs, nl.Outputs} {
		for _, id := range lists {
			if int(id) >= len(nl.Nodes) {
				continue
			}
			nd := &nl.Nodes[id]
			if nd.Name == "" {
				r.Errorf(nodePos(t, nl, id), "unnamed %v port", nd.Kind)
				continue
			}
			if prev, dup := seen[nd.Name]; dup {
				r.Errorf(nodePos(t, nl, id), "multiply-driven net: port %q already declared at node %d", nd.Name, prev)
			} else {
				seen[nd.Name] = id
			}
		}
	}
	if damaged {
		return
	}
	// Dangling: a driver nobody consumes.
	consumed := make([]bool, len(nl.Nodes))
	for i := range nl.Nodes {
		for _, f := range nl.Nodes[i].Fanin {
			consumed[f] = true
		}
	}
	for i := range nl.Nodes {
		if consumed[i] {
			continue
		}
		switch nl.Nodes[i].Kind {
		case netlist.KindInput:
			r.Warnf(nodePos(t, nl, netlist.NodeID(i)), "unused input port")
		case netlist.KindOutput, netlist.KindConst, netlist.KindDFF:
			// Outputs are sinks; unused constants are harmless noise the
			// optimizer folds; dangling DFFs are seq-preempt's finding.
		default:
			r.Warnf(nodePos(t, nl, netlist.NodeID(i)), "dangling net: gate output has no consumers")
		}
	}
}

// busBit parses "name[idx]" port names; ok is false for scalar ports.
func busBit(name string) (base string, idx int, ok bool) {
	if !strings.HasSuffix(name, "]") {
		return "", 0, false
	}
	open := strings.LastIndexByte(name, '[')
	if open <= 0 {
		return "", 0, false
	}
	v, err := strconv.Atoi(name[open+1 : len(name)-1])
	if err != nil || v < 0 {
		return "", 0, false
	}
	return name[:open], v, true
}

// passPortWidth checks bus-shaped port groups for width consistency —
// a bus "q" declared via ports q[0..w) must have every bit exactly once
// and no scalar port aliasing the base name — and, when the target
// carries a Segment stage chain, that the boundary-wire interface
// between stages is complete: every wire a stage imports was exported
// by an earlier stage (or is an original primary input), and the chain
// reproduces every original output. These are the width/interface bugs
// Concat and Segment can introduce when port names collide or a stage
// boundary drops a wire.
func passPortWidth(t *Target, r *Reporter) {
	if t.Netlist != nil {
		portWidthOne(t, t.Netlist, true, r)
	}
	// A segment stage legitimately carries a partial bus slice (the bits
	// its gates happen to produce), so only duplicate bits and scalar
	// aliasing are wrong within a stage; completeness is checked across
	// the whole chain below.
	for _, st := range t.Segments {
		portWidthOne(t, st, false, r)
	}
	if len(t.Segments) > 0 && t.Netlist != nil {
		segmentChain(t, r)
	}
}

func portWidthOne(t *Target, nl *netlist.Netlist, wantComplete bool, r *Reporter) {
	check := func(dir string, names []string) {
		type group struct {
			bits map[int][]string // idx -> names claiming it
			max  int
		}
		groups := map[string]*group{}
		scalars := map[string]bool{}
		for _, name := range names {
			base, idx, ok := busBit(name)
			if !ok {
				scalars[name] = true
				continue
			}
			g := groups[base]
			if g == nil {
				g = &group{bits: map[int][]string{}}
				groups[base] = g
			}
			g.bits[idx] = append(g.bits[idx], name)
			if idx > g.max {
				g.max = idx
			}
		}
		bases := make([]string, 0, len(groups))
		for base := range groups {
			bases = append(bases, base)
		}
		sort.Strings(bases)
		for _, base := range bases {
			g := groups[base]
			pos := fmt.Sprintf("%s: %s bus %q", nl.Name, dir, base)
			if scalars[base] {
				r.Errorf(pos, "scalar port %q aliases bus bits %s[0..%d]", base, base, g.max)
			}
			var missing []string
			for i := 0; i <= g.max; i++ {
				switch n := len(g.bits[i]); {
				case n == 0:
					missing = append(missing, strconv.Itoa(i))
				case n > 1:
					r.Errorf(pos, "bit %d declared %d times", i, n)
				}
			}
			if wantComplete && len(missing) > 0 {
				r.Errorf(pos, "width mismatch: bits 0..%d declared but bit(s) %s missing",
					g.max, strings.Join(missing, ","))
			}
		}
	}
	check("input", nl.InputNames())
	check("output", nl.OutputNames())
}

// segmentChain replays the host-side wire environment of EvalSegments
// symbolically: stage k may only import original inputs and wires
// exported by stages < k.
func segmentChain(t *Target, r *Reporter) {
	orig := t.Netlist
	produced := map[string]string{} // wire/port name -> producing stage
	for _, name := range orig.InputNames() {
		produced[name] = "primary inputs"
	}
	for _, st := range t.Segments {
		pos := fmt.Sprintf("%s: stage %s", orig.Name, st.Name)
		for _, name := range st.InputNames() {
			if _, ok := produced[name]; !ok {
				r.Errorf(pos, "imports wire %q that no earlier stage exports", name)
			}
		}
		for _, name := range st.OutputNames() {
			if by, dup := produced[name]; dup && by != "primary inputs" {
				r.Errorf(pos, "re-exports wire %q already produced by %s", name, by)
			}
			produced[name] = st.Name
		}
	}
	for _, name := range orig.OutputNames() {
		if _, ok := produced[name]; !ok {
			r.Errorf(fmt.Sprintf("%s: segment chain", orig.Name),
				"original output %q is produced by no stage", name)
		}
	}
}

// liveSet marks every node from which some primary output is reachable
// (reverse reachability over all fanin edges; DFFs are transparent, so
// state feeding observable logic is itself observable).
func liveSet(nl *netlist.Netlist) []bool {
	live := make([]bool, len(nl.Nodes))
	var stack []netlist.NodeID
	for _, o := range nl.Outputs {
		if int(o) < len(nl.Nodes) && !live[o] {
			live[o] = true
			stack = append(stack, o)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range nl.Nodes[id].Fanin {
			if !live[f] {
				live[f] = true
				stack = append(stack, f)
			}
		}
	}
	return live
}

// passDeadLogic flags gates that cannot influence any primary output.
// Dead logic still costs CLBs, download time and (registered) readback
// volume, and the optimizer is entitled to delete it — so its presence
// in a hand-written netlist is almost always a wiring mistake.
func passDeadLogic(t *Target, r *Reporter) {
	for _, nl := range t.netlists() {
		if !faninOK(nl) {
			continue
		}
		live := liveSet(nl)
		for i := range nl.Nodes {
			if live[i] {
				continue
			}
			switch nl.Nodes[i].Kind {
			case netlist.KindInput, netlist.KindOutput, netlist.KindConst, netlist.KindDFF:
				// inputs/consts: net-drive's finding; DFFs: seq-preempt's.
			default:
				r.Warnf(nodePos(t, nl, netlist.NodeID(i)), "dead logic: no path to any output")
			}
		}
	}
}

// passSeqPreempt checks the paper's preemption requirement: to suspend
// a hardware task, the OS must be able to observe (read back) and later
// restore every bit of its sequential state. A flip-flop that cannot
// reach any output is dead state — the mapper may drop it, and nothing
// can verify that a preempt/resume round trip preserved it. When the
// compiled bitstream is present, the pass also cross-checks that the
// netlist's state volume survived mapping into registered cells.
func passSeqPreempt(t *Target, r *Reporter) {
	nl := t.Netlist
	if nl != nil && faninOK(nl) && nl.IsSequential() {
		live := liveSet(nl)
		unobservable := 0
		for _, id := range nl.DFFs {
			if int(id) >= len(nl.Nodes) || live[id] {
				continue
			}
			unobservable++
			r.Warnf(nodePos(t, nl, id),
				"flip-flop state is not observable: no path from this DFF to any output, so a preempt/restore round trip cannot be verified")
		}
		if unobservable > 0 {
			r.Warnf(nl.Name+": sequential state",
				"%d of %d flip-flops are unobservable; the circuit is not fully preemptable", unobservable, len(nl.DFFs))
		}
	}
	bs := t.Bitstream
	if bs == nil {
		return
	}
	ffCells := 0
	for i := range bs.Cells {
		if bs.Cells[i].UseFF {
			ffCells++
		}
	}
	if ffCells != bs.FFCells {
		r.Errorf(bs.Name+": state volume",
			"FFCells metadata says %d but %d cells are registered; readback/restore vectors will mismatch", bs.FFCells, ffCells)
	}
	if nl != nil && nl.IsSequential() && ffCells == 0 {
		r.Errorf(bs.Name+": state volume",
			"sequential netlist (%d DFFs) mapped to zero registered cells: state cannot be read back", nl.NumDFFs())
	}
	if nl != nil && ffCells > 0 && ffCells < nl.NumDFFs() {
		r.Infof(bs.Name+": state volume",
			"%d of %d netlist flip-flops survive as registered cells (optimizer pruning)", ffCells, nl.NumDFFs())
	}
}

// netlists returns the netlist set the per-netlist passes run over: the
// main target plus every segment stage.
func (t *Target) netlists() []*netlist.Netlist {
	var out []*netlist.Netlist
	if t.Netlist != nil {
		out = append(out, t.Netlist)
	}
	out = append(out, t.Segments...)
	return out
}
