package lint

import (
	"sort"

	"repro/internal/fault"
)

// passFaultPlan validates a fault-injection campaign before it is armed:
// a malformed plan otherwise fails silently (an out-of-range probability
// clamps, an unordered script misfires) and the run it drives looks
// plausible while injecting the wrong campaign.
//
//   - every probability lies in [0, 1], and the kinds sharing an
//     injection point sum to at most 1 (the injector walks their
//     cumulative distribution in one draw);
//   - script occurrence lists are 1-based and strictly increasing — a
//     duplicate or out-of-order entry means an attempt was listed twice;
//   - only known kinds appear (the zero Kind "none" is not injectable);
//   - the retry policy is representable: Retries within ±MaxRetries and
//     a non-negative backoff.
func passFaultPlan(t *Target, r *Reporter) {
	p := t.FaultPlan
	if p == nil {
		return
	}
	label := t.label()

	valid := map[fault.Kind]bool{}
	for _, k := range fault.Kinds() {
		valid[k] = true
	}

	pointSums := map[fault.Point]float64{}
	for _, k := range orderedKinds(p.Prob, valid, r, label, "prob") {
		pr := p.Prob[k]
		if pr < 0 || pr > 1 {
			r.Errorf(pos(label, "prob", k), "probability %g outside [0, 1]", pr)
			continue
		}
		pointSums[k.Point()] += pr
	}
	for _, pt := range []fault.Point{fault.PointConfig, fault.PointReadback, fault.PointRestore} {
		if sum := pointSums[pt]; sum > 1 {
			r.Errorf(label+":point "+pt.String(),
				"kind probabilities at this injection point sum to %g > 1; the cumulative draw cannot represent that", sum)
		}
	}

	for _, k := range orderedKinds(p.Script, valid, r, label, "script") {
		occ := p.Script[k]
		prev := 0
		for i, n := range occ {
			switch {
			case n < 1:
				r.Errorf(pos(label, "script", k), "occurrence %d is %d; attempts are numbered from 1", i, n)
			case n == prev:
				r.Errorf(pos(label, "script", k), "occurrence %d repeats attempt %d; an attempt fires at most once", i, n)
			case n < prev:
				r.Errorf(pos(label, "script", k), "occurrences must be strictly increasing; %d follows %d", n, prev)
			}
			prev = n
		}
	}

	if p.Retries > fault.MaxRetries || p.Retries < -fault.MaxRetries {
		r.Errorf(label+":retries", "retries %d outside [-%d, %d] (negative means escalate on first fault)",
			p.Retries, fault.MaxRetries, fault.MaxRetries)
	}
	if p.Backoff < 0 {
		r.Errorf(label+":backoff", "negative backoff %v", p.Backoff)
	}
	if len(p.Prob) == 0 && len(p.Script) == 0 {
		r.Infof(label+":plan", "plan injects nothing: no probabilities and no script")
	}
}

// orderedKinds reports unknown kinds in m and returns the valid ones,
// both in ascending kind order (map iteration order must never reach
// the diagnostic stream).
func orderedKinds[V any](m map[fault.Kind]V, valid map[fault.Kind]bool, r *Reporter, label, section string) []fault.Kind {
	all := make([]fault.Kind, 0, len(m))
	for k := range m {
		all = append(all, k)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for _, k := range all {
		if !valid[k] {
			r.Errorf(pos(label, section, k), "unknown fault kind")
			continue
		}
		out = append(out, k)
	}
	return out
}

func pos(label, section string, k fault.Kind) string {
	return label + ":" + section + " " + k.String()
}
