package lint

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestFaultPlanSkipsNilPlan(t *testing.T) {
	diags := only(t, "fault-plan", &Target{Name: "empty"})
	wantNone(t, diags)
}

func TestFaultPlanCleanPlan(t *testing.T) {
	plan := fault.Plan{
		Seed:    7,
		Prob:    map[fault.Kind]float64{fault.ConfigError: 0.05, fault.ReadbackFlip: 0.1},
		Script:  map[fault.Kind][]int{fault.PinGlitch: {1, 3, 8}},
		Retries: 2,
		Backoff: sim.Time(100),
	}
	diags := only(t, "fault-plan", &Target{Name: "campaign", FaultPlan: &plan})
	wantNone(t, diags)
}

func TestFaultPlanProbabilityRange(t *testing.T) {
	plan := fault.Plan{Prob: map[fault.Kind]float64{
		fault.ConfigError:   -0.1,
		fault.ConfigTimeout: 1.5,
	}}
	diags := only(t, "fault-plan", &Target{Name: "p", FaultPlan: &plan})
	wantDiag(t, diags, Error, "probability -0.1 outside [0, 1]")
	wantDiag(t, diags, Error, "probability 1.5 outside [0, 1]")
}

func TestFaultPlanPointSumOverflow(t *testing.T) {
	// Three kinds share PointConfig; individually legal, jointly > 1.
	plan := fault.Plan{Prob: map[fault.Kind]float64{
		fault.ConfigError:   0.5,
		fault.ConfigTimeout: 0.4,
		fault.PinGlitch:     0.3,
	}}
	diags := only(t, "fault-plan", &Target{Name: "p", FaultPlan: &plan})
	wantDiag(t, diags, Error, "sum to 1.2 > 1")
	// Kinds at other points are unaffected even at probability 1.
	plan = fault.Plan{Prob: map[fault.Kind]float64{
		fault.ConfigError:  1,
		fault.ReadbackFlip: 1,
	}}
	wantNone(t, only(t, "fault-plan", &Target{Name: "p", FaultPlan: &plan}))
}

func TestFaultPlanScriptOrdering(t *testing.T) {
	plan := fault.Plan{Script: map[fault.Kind][]int{
		fault.ConfigError:     {0},
		fault.ReadbackFlip:    {2, 2},
		fault.RestoreMismatch: {5, 3},
	}}
	diags := only(t, "fault-plan", &Target{Name: "s", FaultPlan: &plan})
	wantDiag(t, diags, Error, "attempts are numbered from 1")
	wantDiag(t, diags, Error, "repeats attempt 2")
	wantDiag(t, diags, Error, "strictly increasing; 3 follows 5")
}

func TestFaultPlanUnknownKind(t *testing.T) {
	plan := fault.Plan{
		Prob:   map[fault.Kind]float64{fault.None: 0.5},
		Script: map[fault.Kind][]int{fault.Kind(99): {1}},
	}
	diags := only(t, "fault-plan", &Target{Name: "k", FaultPlan: &plan})
	if got := len(Errors(diags)); got != 2 {
		t.Fatalf("want 2 unknown-kind errors, got %d: %v", got, diags)
	}
	wantDiag(t, diags, Error, "unknown fault kind")
}

func TestFaultPlanRetryPolicy(t *testing.T) {
	plan := fault.Plan{Retries: fault.MaxRetries + 1}
	diags := only(t, "fault-plan", &Target{Name: "r", FaultPlan: &plan})
	wantDiag(t, diags, Error, "retries 17 outside")
	plan = fault.Plan{Backoff: sim.Time(-1)}
	diags = only(t, "fault-plan", &Target{Name: "r", FaultPlan: &plan})
	wantDiag(t, diags, Error, "negative backoff")
	// Negative retries within range mean escalate-on-first-fault: legal.
	plan = fault.Plan{Retries: -1, Prob: map[fault.Kind]float64{fault.ConfigError: 0.1}}
	wantNone(t, only(t, "fault-plan", &Target{Name: "r", FaultPlan: &plan}))
}

func TestFaultPlanEmptyPlanIsInfo(t *testing.T) {
	plan := fault.Plan{Seed: 3, Retries: 2}
	diags := only(t, "fault-plan", &Target{Name: "idle", FaultPlan: &plan})
	wantDiag(t, diags, Info, "plan injects nothing")
	if HasErrors(diags) {
		t.Fatalf("empty plan must not error: %v", diags)
	}
}

// TestFaultPlanDiagnosticOrderDeterministic guards the pass against the
// exact bug class it polices elsewhere: diagnostics sourced from a map
// must not depend on iteration order.
func TestFaultPlanDiagnosticOrderDeterministic(t *testing.T) {
	plan := fault.Plan{Prob: map[fault.Kind]float64{
		fault.ConfigError:   2,
		fault.ConfigTimeout: 2,
		fault.ReadbackFlip:  2,
		fault.PinGlitch:     2,
	}}
	first := only(t, "fault-plan", &Target{Name: "d", FaultPlan: &plan})
	for i := 0; i < 20; i++ {
		again := only(t, "fault-plan", &Target{Name: "d", FaultPlan: &plan})
		if len(again) != len(first) {
			t.Fatalf("diagnostic count changed across runs: %d vs %d", len(first), len(again))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("diagnostic order unstable at %d: %v vs %v", j, first[j], again[j])
			}
		}
	}
}
